// Quickstart: encode a handful of images into a PCR dataset, then read the
// whole dataset back at three different qualities — without re-encoding and
// with purely sequential partial reads.
//
//   ./quickstart [output_dir]
#include <cstdio>

#include "core/pcr_dataset.h"
#include "data/dataset_spec.h"
#include "image/metrics.h"
#include "image/ppm.h"
#include "jpeg/codec.h"
#include "storage/env.h"
#include "util/logging.h"

using namespace pcr;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/pcr_quickstart";
  Env* env = Env::Default();

  // 1. Make a few labelled JPEG images (stand-ins for your dataset).
  printf("== 1. encoding 24 images into a PCR dataset at %s\n", dir.c_str());
  PcrWriterOptions options;
  options.images_per_record = 8;  // 3 records.
  auto writer = PcrDatasetWriter::Create(env, dir, options);
  PCR_CHECK(writer.ok()) << writer.status();

  DatasetSpec spec = DatasetSpec::TestTiny();
  spec.base_width = 200;
  spec.base_height = 150;
  for (int i = 0; i < 24; ++i) {
    const int label = i % spec.num_classes;
    const Image img = GenerateImage(spec, label, /*instance_seed=*/i);
    // Baseline JPEG in, like a normal camera file; the writer transcodes to
    // progressive losslessly (the jpegtran step of the paper).
    jpeg::EncodeOptions encode_options;
    encode_options.quality = 90;
    auto bytes = jpeg::Encode(img, encode_options);
    PCR_CHECK(bytes.ok()) << bytes.status();
    PCR_CHECK((*writer)->AddImage(Slice(*bytes), label).ok());
  }
  PCR_CHECK((*writer)->Finish().ok());

  // 2. Open it and look at the quality/byte trade-off.
  auto dataset = PcrDataset::Open(env, dir);
  PCR_CHECK(dataset.ok()) << dataset.status();
  printf("   records=%d images=%d scan groups=%d total=%.1f KiB\n",
         (*dataset)->num_records(), (*dataset)->num_images(),
         (*dataset)->num_scan_groups(),
         (*dataset)->total_bytes() / 1024.0);

  printf("\n== 2. one dataset, many qualities (record 0)\n");
  printf("   reads split into the loader pipeline's two stages: FetchRecord "
         "(storage) then AssembleRecord (CPU)\n");
  printf("   %-10s %-14s %-10s\n", "group", "bytes fetched", "MSSIM");
  auto reference = (*dataset)->ReadRecord(0, 10);
  PCR_CHECK(reference.ok());
  const Image ref_img = jpeg::Decode(reference->jpeg(0)).MoveValue();
  for (int group : {1, 2, 5, 10}) {
    // I/O stage: one sequential partial read, no parsing or decoding.
    auto raw = (*dataset)->FetchRecord(0, group);
    PCR_CHECK(raw.ok()) << raw.status();
    const uint64_t fetched = raw->bytes_read;
    // Decode stage: assemble standalone JPEG streams from the raw prefix.
    auto batch = (*dataset)->AssembleRecord(std::move(*raw));
    PCR_CHECK(batch.ok()) << batch.status();
    const Image img = jpeg::Decode(batch->jpeg(0)).MoveValue();
    printf("   %-10d %-14.1f %-10.4f\n", group, fetched / 1024.0,
           Msssim(ref_img, img));
  }

  // 3. Save one image at two qualities for visual inspection.
  auto low = (*dataset)->ReadRecord(0, 1);
  PCR_CHECK(low.ok());
  const Image low_img = jpeg::Decode(low->jpeg(0)).MoveValue();
  PCR_CHECK(env->WriteStringToFile(dir + "/sample_scan1.ppm",
                                   Slice(EncodePpm(low_img))).ok());
  PCR_CHECK(env->WriteStringToFile(dir + "/sample_scan10.ppm",
                                   Slice(EncodePpm(ref_img))).ok());
  printf("\n== 3. wrote %s/sample_scan{1,10}.ppm for inspection\n",
         dir.c_str());
  printf("done.\n");
  return 0;
}
