// Dynamic scan-group tuning during training (§4.5 / §A.6.2): start at full
// quality, measure per-group gradient cosine similarity against the true
// gradient, and drop to the cheapest safe quality — switching is free
// because every quality lives in the same PCR file.
//
//   ./adaptive_training
#include <cstdio>

#include "core/pcr_dataset.h"
#include "data/dataset_builder.h"
#include "data/dataset_spec.h"
#include "sim/pipeline_sim.h"
#include "storage/env.h"
#include "train/dataset_cache.h"
#include "train/trainer.h"
#include "tune/dynamic_tuner.h"
#include "tune/static_tuner.h"
#include "util/logging.h"

using namespace pcr;

int main() {
  Env* env = Env::Default();
  DatasetSpec spec = DatasetSpec::TestTiny();
  spec.num_images = 240;
  spec.num_classes = 4;
  spec.base_width = 180;
  spec.base_height = 140;
  spec.images_per_record = 24;
  auto built = BuildSyntheticDataset(env, "/tmp/pcr_train_example", spec,
                                     BuildFormats{});
  PCR_CHECK(built.ok()) << built.status();
  auto dataset = PcrDataset::Open(env, built->pcr_dir).MoveValue();

  // Static recommendation first (MSSIM threshold, §4.4).
  StaticTunerOptions static_options;
  static_options.sample_images = 16;
  auto static_pick = PickScanGroupStatic(dataset.get(), static_options);
  PCR_CHECK(static_pick.ok()) << static_pick.status();
  printf("static tuner (MSSIM >= 0.95) recommends scan group %d\n\n",
         *static_pick);

  // Dynamic tuning with gradient cosine similarity.
  CachedDatasetOptions cache_options;
  cache_options.scan_groups = {1, 2, 5, 10};
  cache_options.features.grid = 10;
  auto cached = CachedDataset::Build(dataset.get(), cache_options).MoveValue();
  SoftmaxClassifier model(cached.feature_dim(), cached.num_classes(), 1);
  TrainerOptions trainer_options;
  trainer_options.base_lr = 0.3;
  trainer_options.warmup_epochs = 2;
  trainer_options.decay_epochs = {25};
  Trainer trainer(&cached, &model, trainer_options);

  DeviceProfile storage = DeviceProfile::CephCluster();
  storage.read_bandwidth_bytes_per_sec = 3.0 * (1 << 20);
  TrainingPipelineSim sim(dataset.get(), storage,
                          ComputeProfile::ShuffleNetV2(), DecodeCostModel{},
                          PipelineSimOptions{});

  CosineTunerOptions tuner_options;
  tuner_options.first_tune_epoch = 3;
  tuner_options.tune_every = 12;
  tuner_options.cosine_threshold = 0.90;
  CosineTuner tuner(tuner_options);

  printf("%-8s %-12s %-14s %-14s\n", "epoch", "scan group", "sim time (s)",
         "accuracy (%)");
  double sim_time = 0;
  size_t events_seen = 0;
  for (int epoch = 0; epoch < 40; ++epoch) {
    auto policy = tuner.Advise(&trainer);
    sim_time += sim.SimulateEpoch(policy.get()).elapsed_seconds;
    trainer.RunEpochMixture(policy.get());
    while (events_seen < tuner.events().size()) {
      const TuneEvent& event = tuner.events()[events_seen++];
      printf("  [tune @ epoch %d]", event.epoch);
      for (const auto& [group, cosine] : event.probes) {
        printf("  g%d cos=%.3f", group, cosine);
      }
      printf("  -> chose group %d\n", event.chosen_group);
    }
    if (epoch % 8 == 0 || epoch == 39) {
      printf("%-8d %-12d %-14.1f %-14.1f\n", epoch,
             tuner.current_group() == 0 ? 10 : tuner.current_group(),
             sim_time, trainer.TestAccuracy());
    }
  }
  printf("\nthe tuner drops to the cheapest scan group whose gradient stays "
         "aligned with the full-quality gradient (threshold 0.90), cutting "
         "epoch time without hurting accuracy.\n");
  return 0;
}
