// Train a classifier against a PCR dataset at different scan groups and see
// the bandwidth/accuracy trade-off, with simulated cluster time from the
// pipeline model — a miniature of the paper's Figure 4 experiment.
//
//   ./train_with_pcr
#include <cstdio>

#include "core/pcr_dataset.h"
#include "data/dataset_builder.h"
#include "data/dataset_spec.h"
#include "loader/scan_policy.h"
#include "sim/pipeline_sim.h"
#include "storage/env.h"
#include "train/dataset_cache.h"
#include "train/trainer.h"
#include "util/logging.h"

using namespace pcr;

int main() {
  Env* env = Env::Default();

  // Build (or reuse) a small synthetic dataset in PCR form.
  DatasetSpec spec = DatasetSpec::TestTiny();
  spec.num_images = 240;
  spec.num_classes = 4;
  spec.base_width = 180;
  spec.base_height = 140;
  spec.images_per_record = 24;
  BuildFormats formats;
  auto built = BuildSyntheticDataset(env, "/tmp/pcr_train_example", spec,
                                     formats);
  PCR_CHECK(built.ok()) << built.status();
  auto dataset = PcrDataset::Open(env, built->pcr_dir).MoveValue();
  printf("dataset: %d images, %d records, %d scan groups\n",
         dataset->num_images(), dataset->num_records(),
         dataset->num_scan_groups());

  // Decode every quality view once and cache features. The build is fed by
  // the staged LoaderPipeline: storage fetches and JPEG decodes overlap.
  CachedDatasetOptions cache_options;
  cache_options.scan_groups = {1, 2, 5, 10};
  cache_options.features.grid = 10;
  cache_options.io_threads = 2;
  cache_options.decode_threads = 4;
  auto cached = CachedDataset::Build(dataset.get(), cache_options).MoveValue();
  printf("cached features: dim=%d classes=%d train=%d test=%d\n\n",
         cached.feature_dim(), cached.num_classes(), cached.train_size(),
         cached.test_size());

  // A slow simulated storage pool makes the experiment I/O bound.
  DeviceProfile storage = DeviceProfile::CephCluster();
  storage.read_bandwidth_bytes_per_sec = 3.0 * (1 << 20);

  printf("%-12s %-16s %-18s %-14s %-12s\n", "scan group", "sim time (s)",
         "stall io/dec (s)", "accuracy (%)", "loss");
  for (int group : {1, 2, 5, 10}) {
    SoftmaxClassifier model(cached.feature_dim(), cached.num_classes(), 1);
    TrainerOptions trainer_options;
    trainer_options.base_lr = 0.3;
    trainer_options.warmup_epochs = 2;
    trainer_options.decay_epochs = {25};
    Trainer trainer(&cached, &model, trainer_options);
    TrainingPipelineSim sim(dataset.get(), storage,
                            ComputeProfile::ShuffleNetV2(), DecodeCostModel{},
                            PipelineSimOptions{});
    FixedScanPolicy policy(group);
    double sim_time = 0;
    double io_stall = 0, decode_stall = 0;
    double loss = 0;
    for (int epoch = 0; epoch < 40; ++epoch) {
      const auto epoch_result = sim.SimulateEpoch(&policy);
      sim_time += epoch_result.elapsed_seconds;
      io_stall += epoch_result.io_bound_stall_seconds;
      decode_stall += epoch_result.decode_bound_stall_seconds;
      loss = trainer.RunEpoch(group);
    }
    printf("%-12d %-16.1f %6.1f / %-9.1f %-14.1f %-12.3f\n", group, sim_time,
           io_stall, decode_stall, trainer.TestAccuracy(), loss);
  }
  printf("\nlower scan groups read fewer bytes per epoch, so the same number "
         "of epochs completes sooner; quality only suffers if the task "
         "needed the discarded detail.\n");
  return 0;
}
