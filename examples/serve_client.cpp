// Serving-daemon quickstart: build a tiny PCR dataset, stream an epoch from
// a PcrDaemon over a unix socket, and print the daemon-side serving stats.
//
//   ./serve_client                      # in-process daemon on a tmp socket
//   ./serve_client <socket> <dataset>   # against an already-running daemon
//
// The second form is what the CI daemon-integration job uses: it launches
// examples/serve_daemon separately and points this client (and the test
// suite) at its socket.
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "core/pcr_dataset.h"
#include "data/dataset_spec.h"
#include "jpeg/codec.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "storage/env.h"
#include "util/logging.h"

using namespace pcr;

namespace {
// Builds a small synthetic PCR dataset (procedural images, like quickstart).
std::string BuildTinyDataset(Env* env, const std::string& dir) {
  PcrWriterOptions options;
  options.images_per_record = 8;
  auto writer = PcrDatasetWriter::Create(env, dir, options);
  PCR_CHECK(writer.ok()) << writer.status();
  DatasetSpec spec = DatasetSpec::TestTiny();
  spec.base_width = 160;
  spec.base_height = 120;
  for (int i = 0; i < 32; ++i) {
    const int label = i % spec.num_classes;
    const Image img = GenerateImage(spec, label, /*instance_seed=*/i);
    jpeg::EncodeOptions encode_options;
    encode_options.quality = 90;
    auto bytes = jpeg::Encode(img, encode_options);
    PCR_CHECK(bytes.ok()) << bytes.status();
    PCR_CHECK((*writer)->AddImage(Slice(*bytes), label).ok());
  }
  PCR_CHECK((*writer)->Finish().ok());
  return dir;
}
}  // namespace

int main(int argc, char** argv) {
  Env* env = Env::Default();
  std::unique_ptr<serve::PcrDaemon> local_daemon;
  std::string socket_path, dataset_dir;
  if (argc >= 3) {
    socket_path = argv[1];
    dataset_dir = argv[2];
  } else {
    const std::string pid = std::to_string(::getpid());
    dataset_dir = BuildTinyDataset(env, "/tmp/pcr_serve_demo_" + pid);
    socket_path = "/tmp/pcrd_demo_" + pid + ".sock";
    serve::DaemonOptions options;
    options.socket_path = socket_path;
    local_daemon = serve::PcrDaemon::Start(env, options).MoveValue();
    printf("== started in-process daemon on %s\n", socket_path.c_str());
  }

  auto client =
      serve::PcrClient::Connect(socket_path, "serve-client-demo").MoveValue();
  printf("== connected to %s (max %u streams, %u in-flight/stream)\n",
         client->server().server_name.c_str(), client->server().max_streams,
         client->server().max_inflight_per_stream);

  serve::OpenStreamRequest open;
  open.dataset_dir = dataset_dir;
  open.max_epochs = 1;
  open.shuffle = true;
  open.seed = 7;
  auto stream = client->OpenStream(open).MoveValue();
  printf("== stream %llu: %u records, %u images, serving scan group %u/%u "
         "(cache namespace %llx)\n",
         static_cast<unsigned long long>(stream.stream_id),
         stream.num_records, stream.num_images, stream.scan_group,
         stream.num_scan_groups,
         static_cast<unsigned long long>(stream.cache_dataset_id));

  int64_t images = 0;
  uint64_t pixel_bytes = 0;
  for (;;) {
    auto batch = client->NextBatch(stream.stream_id).MoveValue();
    if (batch.end_of_stream) break;
    for (const serve::WireImage& wire : batch.images) {
      const Image img = serve::PcrClient::ToImage(wire).MoveValue();
      pixel_bytes += img.size_bytes();
      ++images;
    }
  }
  printf("== epoch complete: %lld images, %.1f MiB of decoded pixels\n",
         static_cast<long long>(images), pixel_bytes / (1024.0 * 1024.0));

  auto stats = client->GetStats(stream.stream_id).MoveValue();
  for (const serve::StreamStats& s : stats.streams) {
    printf("== daemon stats: %lld batches, batch p50 %.2f ms p99 %.2f ms, "
           "cache %lld hits / %lld misses\n",
           static_cast<long long>(s.served_batches), s.batch_p50_sec * 1e3,
           s.batch_p99_sec * 1e3, static_cast<long long>(s.cache_hits),
           static_cast<long long>(s.cache_misses));
  }
  client->CloseStream(stream.stream_id).MoveValue();
  printf("done.\n");
  return 0;
}
