// Standalone PCR serving daemon: one process feeding many trainer clients
// over a unix-domain socket. This is the binary the daemon-integration CI
// job launches; examples/serve_client (or any PcrClient) connects to it.
//
//   ./serve_daemon <socket_path> [--max-streams N] [--cache-mb M]
//
// Runs until SIGINT/SIGTERM, then shuts down in bounded time (in-flight
// NextBatch requests unblock with Aborted). Status lines go to stderr so CI
// can capture them as the daemon log artifact.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "serve/daemon.h"
#include "storage/env.h"
#include "util/logging.h"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <socket_path> [--max-streams N] [--cache-mb M]\n",
                 argv[0]);
    return 2;
  }
  pcr::serve::DaemonOptions options;
  options.socket_path = argv[1];
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-streams") == 0 && i + 1 < argc) {
      options.max_streams = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--cache-mb") == 0 && i + 1 < argc) {
      options.decode_cache_bytes =
          static_cast<uint64_t>(std::atoll(argv[++i])) << 20;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  auto daemon = pcr::serve::PcrDaemon::Start(pcr::Env::Default(), options);
  if (!daemon.ok()) {
    std::fprintf(stderr, "failed to start: %s\n",
                 daemon.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "pcrd listening on %s (max %d streams, %d in-flight/stream, "
               "%llu MiB decode cache)\n",
               options.socket_path.c_str(), options.max_streams,
               options.max_inflight_per_stream,
               static_cast<unsigned long long>(options.decode_cache_bytes >>
                                               20));

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    // Periodic heartbeat with the admission gauge; cheap enough to leave on.
    for (int i = 0; i < 50 && !g_stop; ++i) {
      struct timespec ts = {0, 100 * 1000 * 1000};
      nanosleep(&ts, nullptr);
    }
    if (!g_stop) {
      std::fprintf(stderr, "pcrd: %d active stream(s)\n",
                   (*daemon)->active_streams());
    }
  }
  std::fprintf(stderr, "pcrd: shutting down\n");
  (*daemon)->Stop();
  std::fprintf(stderr, "pcrd: stopped\n");
  return 0;
}
