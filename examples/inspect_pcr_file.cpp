// Inspect the physical layout of a .pcr record file: header, scan-group
// extents, per-image deltas — the on-disk picture of the paper's Figure 3.
//
//   ./inspect_pcr_file [pcr_dataset_dir]
// (builds a tiny dataset if no directory is given)
#include <cstdio>

#include "core/pcr_dataset.h"
#include "core/pcr_format.h"
#include "data/dataset_builder.h"
#include "data/dataset_spec.h"
#include "storage/env.h"
#include "util/logging.h"
#include "util/string_util.h"

using namespace pcr;

int main(int argc, char** argv) {
  Env* env = Env::Default();
  std::string dir;
  if (argc > 1) {
    dir = argv[1];
  } else {
    DatasetSpec spec = DatasetSpec::TestTiny();
    spec.images_per_record = 6;
    spec.num_images = 12;
    auto built = BuildSyntheticDataset(env, "/tmp/pcr_inspect_example", spec,
                                       BuildFormats{});
    PCR_CHECK(built.ok()) << built.status();
    dir = built->pcr_dir;
  }

  auto dataset = PcrDataset::Open(env, dir).MoveValue();
  printf("dataset %s: %d records, %d images, %d scan groups\n\n", dir.c_str(),
         dataset->num_records(), dataset->num_images(),
         dataset->num_scan_groups());

  const std::string& path = dataset->record_path(0);
  std::string bytes;
  PCR_CHECK(env->ReadFileToString(path, &bytes).ok());
  auto header = ParsePcrHeader(Slice(bytes)).MoveValue();

  printf("record 0 (%s): %zu bytes total\n", path.c_str(), bytes.size());
  printf("  header: %llu bytes (labels + per-image JPEG headers + group "
         "index)\n",
         static_cast<unsigned long long>(header.header_bytes));
  printf("  labels:");
  for (int64_t l : header.labels) printf(" %lld", static_cast<long long>(l));
  printf("\n\n  %-6s %-12s %-12s %-40s\n", "group", "offset", "bytes",
         "per-image delta bytes");
  for (int g = 0; g < header.num_groups; ++g) {
    uint64_t group_bytes = 0;
    std::string per_image;
    for (uint64_t s : header.group_sizes[g]) {
      group_bytes += s;
      per_image += StrFormat("%llu ", static_cast<unsigned long long>(s));
    }
    printf("  %-6d %-12llu %-12llu %-40s\n", g + 1,
           static_cast<unsigned long long>(header.header_bytes +
                                           header.GroupStart(g)),
           static_cast<unsigned long long>(group_bytes), per_image.c_str());
  }

  printf("\nreading scan group g = one sequential read of the first "
         "prefix_bytes(g) bytes:\n");
  for (int g : {1, 2, 5, 10}) {
    printf("  g=%-2d -> %llu bytes (%.0f%% of the file)\n", g,
           static_cast<unsigned long long>(dataset->RecordReadBytes(0, g)),
           100.0 * dataset->RecordReadBytes(0, g) / bytes.size());
  }
  return 0;
}
