#!/usr/bin/env sh
# Usage: check_shm_supported.sh
#
# Exit 0 when this machine can run the serving daemon's shared-memory data
# plane, 1 when it cannot, 2 on usage error. CI's daemon-integration job
# calls this as a cheap pre-flight so a runner without anonymous shared
# memory skips the shm-plane coverage (with a note) instead of failing on
# the runtime fallback path — which the socket-plane tests cover anyway.
# Mirrors scripts/check_uring_supported.sh for kernel tiers.
set -eu

if [ "$#" -ne 0 ]; then
  echo "usage: $0" >&2
  exit 2
fi

# The segment allocator prefers memfd_create (Linux 3.17) and falls back to
# shm_open, which needs a writable /dev/shm. Either path suffices.
memfd_ok=1
kernel="$(uname -r)"
major="${kernel%%.*}"
rest="${kernel#*.}"
minor="${rest%%[!0-9]*}"
case "$major" in
  ''|*[!0-9]*) major=0 ;;
esac
case "$minor" in
  ''|*[!0-9]*) minor=0 ;;
esac
if [ "$major" -lt 3 ] || { [ "$major" -eq 3 ] && [ "$minor" -lt 17 ]; }; then
  memfd_ok=0
fi

shm_open_ok=0
if [ -d /dev/shm ] && [ -w /dev/shm ]; then
  shm_open_ok=1
fi

if [ "$memfd_ok" -eq 0 ] && [ "$shm_open_ok" -eq 0 ]; then
  exit 1
fi

# Headroom: the serve suite maps tens of MB of slot rings per stream. An
# exhausted tmpfs would fail ftruncate at runtime; catch it here. df -P is
# POSIX and prints 1024-byte blocks in column 4.
if [ -d /dev/shm ]; then
  avail_kb="$(df -P /dev/shm 2>/dev/null | awk 'NR==2 {print $4}')"
  case "$avail_kb" in
    ''|*[!0-9]*) avail_kb=0 ;;
  esac
  if [ "$avail_kb" -ne 0 ] && [ "$avail_kb" -lt 65536 ]; then
    exit 1
  fi
fi

exit 0
