#!/usr/bin/env sh
# Usage: check_uring_supported.sh <sync|threads|uring>
#
# Exit 0 when this machine can run the given storage backend, 1 when it
# cannot, 2 on usage error. CI's per-backend test loops call this as a
# cheap pre-flight so forcing PCR_FORCE_IO=uring on a kernel without
# io_uring skips (with a note) instead of failing on the runtime fallback
# warning. Mirrors scripts/check_arch_supported.sh for kernel tiers.
set -eu

backend="${1:-}"
case "$backend" in
  sync|threads)
    exit 0
    ;;
  uring)
    # io_uring shipped in Linux 5.1; some hardened kernels carry it but
    # disable it via sysctl (kernel.io_uring_disabled: 1 = privileged
    # only, 2 = off). The runtime probe in the loader double-checks with a
    # real io_uring_setup call; this is the cheap shell-level mirror.
    if [ -r /proc/sys/kernel/io_uring_disabled ]; then
      disabled="$(cat /proc/sys/kernel/io_uring_disabled)"
      if [ "$disabled" -ge 2 ]; then
        exit 1
      fi
      if [ "$disabled" -eq 1 ] && [ "$(id -u)" -ne 0 ]; then
        exit 1
      fi
    fi
    kernel="$(uname -r)"
    major="${kernel%%.*}"
    rest="${kernel#*.}"
    minor="${rest%%[!0-9]*}"
    case "$major" in
      ''|*[!0-9]*) major=0 ;;
    esac
    case "$minor" in
      ''|*[!0-9]*) minor=0 ;;
    esac
    if [ "$major" -gt 5 ] || { [ "$major" -eq 5 ] && [ "$minor" -ge 1 ]; }; then
      exit 0
    fi
    exit 1
    ;;
  *)
    echo "usage: $0 <sync|threads|uring>" >&2
    exit 2
    ;;
esac
