#!/usr/bin/env python3
"""CI bench-regression gate.

Compares a bench run's items/sec against a committed baseline (e.g.
BENCH_pr3.json) and fails when any benchmark regresses by more than the
threshold.

CI machines differ from the machine a baseline was recorded on, so by
default ratios are normalized by the median current/baseline ratio across
the common benchmarks: the median absorbs the machine-speed factor, and a
*relative* regression — one benchmark cratering while its siblings hold —
sticks out regardless of the runner. Pass --absolute to compare raw numbers
(only meaningful when baseline and current come from the same machine).

Supported input shapes (auto-detected):
  * google-benchmark JSON:   {"benchmarks": [{"name", "items_per_second"}]}
  * bench_common --json:     {"metrics": [{"name", "items_per_sec"}]}
  * committed baseline:      {"items_per_second": {"<key>": {name: value}}}
    (select <key> with --baseline-key), or a flat {name: value} map.

Exit status: 0 = no regression, 1 = regression(s), 2 = usage/parse error.
"""

import argparse
import json
import statistics
import sys


def extract_items_per_sec(data, baseline_key=None):
    """Returns {benchmark name: items per second} from any supported shape."""
    if "benchmarks" in data:  # google-benchmark --benchmark_out format.
        out = {}
        for bench in data["benchmarks"]:
            # Skip aggregate rows (mean/median/stddev) when repetitions ran.
            if bench.get("run_type") == "aggregate":
                continue
            if "items_per_second" in bench:
                out[bench["name"]] = float(bench["items_per_second"])
        return out
    if "metrics" in data:  # bench_common --json format.
        return {
            m["name"]: float(m["items_per_sec"])
            for m in data["metrics"]
            if float(m.get("items_per_sec", 0)) > 0
        }
    if "items_per_second" in data:  # Committed BENCH_*.json baseline.
        table = data["items_per_second"]
        if baseline_key:
            if baseline_key not in table:
                raise ValueError(
                    f"baseline key {baseline_key!r} not in {sorted(table)}")
            table = table[baseline_key]
        return {name: float(value) for name, value in table.items()}
    # Flat {name: value} map.
    flat = {
        name: float(value)
        for name, value in data.items()
        if isinstance(value, (int, float))
    }
    if not flat:
        raise ValueError("unrecognized bench JSON shape")
    return flat


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON (e.g. BENCH_pr3.json)")
    parser.add_argument("--baseline-key", default=None,
                        help="sub-table inside the baseline's "
                        "items_per_second map (e.g. pr3)")
    parser.add_argument("--current", required=True,
                        help="bench JSON from this run")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fail when a benchmark drops more than this "
                        "fraction (default 0.25)")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw items/sec instead of "
                        "median-normalized ratios")
    parser.add_argument("--min-common", type=int, default=3,
                        help="minimum benchmarks common to both files "
                        "(default 3)")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = extract_items_per_sec(json.load(f), args.baseline_key)
        with open(args.current) as f:
            current = extract_items_per_sec(json.load(f))
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    # Zero-rate baseline entries carry no signal (and would divide by zero).
    common = sorted(name for name in set(baseline) & set(current)
                    if baseline[name] > 0)
    if len(common) < args.min_common:
        print(f"error: only {len(common)} nonzero benchmark(s) common to "
              f"baseline and current (need {args.min_common}); baseline has "
              f"{sorted(baseline)}, current has {sorted(current)}",
              file=sys.stderr)
        return 2

    ratios = {name: current[name] / baseline[name] for name in common}
    scale = 1.0 if args.absolute else statistics.median(ratios.values())
    mode = ("absolute" if args.absolute
            else f"median-normalized (machine factor {scale:.3f}x)")
    print(f"bench regression gate: {len(common)} benchmarks, "
          f"threshold -{args.threshold:.0%}, {mode}")

    width = max(len(name) for name in common)
    regressions = []
    for name in common:
        normalized = ratios[name] / scale
        flag = ""
        if normalized < 1.0 - args.threshold:
            flag = "  << REGRESSION"
            regressions.append((name, normalized))
        print(f"  {name:<{width}}  baseline {baseline[name]:>12.1f}  "
              f"current {current[name]:>12.1f}  relative {normalized:>6.2f}x"
              f"{flag}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}:")
        for name, normalized in regressions:
            print(f"  {name}: {normalized:.2f}x of baseline "
                  f"(limit {1.0 - args.threshold:.2f}x)")
        return 1
    print("\nOK: no benchmark regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
