#!/usr/bin/env python3
"""CI bench-regression gate.

Compares a bench run's items/sec against a committed baseline (e.g.
BENCH_pr5.json) and fails when any benchmark regresses by more than the
threshold.

CI machines differ from the machine a baseline was recorded on, so by
default ratios are normalized by the median current/baseline ratio across
the common benchmarks: the median absorbs the machine-speed factor, and a
*relative* regression — one benchmark cratering while its siblings hold —
sticks out regardless of the runner. Pass --absolute to compare raw numbers
(only meaningful when baseline and current come from the same machine, or
when the numbers are machine-independent, e.g. simulated rates).

Two invocation modes:

  Single pair:   --baseline FILE [--baseline-key KEY] --current FILE
  Suite:         --suite FILE --bench-dir DIR

In suite mode the suite file doubles as the baseline: its "tracked" list
names each gated bench with its own baseline sub-table, current JSON file
(relative to --bench-dir), threshold, and comparison mode:

  "tracked": [
    {"name": "codec", "baseline_key": "codec",
     "current": "bench_micro_codec.json", "threshold": 0.25},
    {"name": "fig9", "baseline_key": "fig9_smoke",
     "current": "bench_fig9_loading_rates.json",
     "threshold": 0.15, "absolute": true}
  ]

A suite may also carry "ratio_checks": floors and/or ceilings on the ratio
of two benchmarks *within one current run* — machine-independent by
construction, so they gate speedup properties (e.g. the AVX2 IDCT must
beat scalar; the uring backend's syscalls-per-record must stay a fraction
of the threads backend's) rather than absolute rates:

  "ratio_checks": [
    {"name": "idct-avx2-speedup", "current": "bench_micro_codec.json",
     "numerator": "BM_IdctBlock/avx2", "denominator": "BM_IdctBlock/scalar",
     "min_ratio": 1.1},
    {"name": "uring-syscall-ceiling", "current": "bench_cache_epochs.json",
     "numerator": "backend_uring/syscalls_per_record",
     "denominator": "backend_threads/syscalls_per_record",
     "max_ratio": 0.25}
  ]

An entry carries "min_ratio", "max_ratio", or both.

A ratio check whose numerator or denominator is absent from the current
run (e.g. a SIMD tier the runner's CPU cannot execute, reported as a
skipped benchmark with no rate) is skipped with a note, not failed.

"value_checks" gate a single metric of one current run against absolute
bounds. "max_value" is the lower-is-better mode — the metric slot carries
a latency in seconds (e.g. a p99) and the check is a ceiling; "min_value"
floors quantities like a fairness ratio or a machine-independent rate. An
entry carries "min_value", "max_value", or both; a metric absent from the
current run is skipped with a note, like ratio checks, but a present value
gates — including 0 (a starved client's fairness ratio must FAIL its
floor, not skip):

  "value_checks": [
    {"name": "serve-batch-p99-ceiling",
     "current": "bench_serve_loadgen.json",
     "metric": "serve_8c/batch_p99_sec", "max_value": 0.5},
    {"name": "serve-fairness-floor",
     "current": "bench_serve_loadgen.json",
     "metric": "serve_8c/fairness_ratio", "min_value": 0.7}
  ]

Supported input shapes (auto-detected):
  * google-benchmark JSON:   {"benchmarks": [{"name", "items_per_second"}]}
  * bench_common --json:     {"metrics": [{"name", "items_per_sec"}]}
  * committed baseline:      {"items_per_second": {"<key>": {name: value}}}
    (select <key> with --baseline-key), or a flat {name: value} map.

Exit status: 0 = no regression, 1 = regression(s), 2 = usage/parse error.
"""

import argparse
import json
import os
import statistics
import sys


def extract_items_per_sec(data, baseline_key=None, keep_nonpositive=False):
    """Returns {benchmark name: items per second} from any supported shape.

    Zero/negative rates are dropped by default — they mean "benchmark
    skipped on this runner" to the ratio checks and would divide-by-zero
    the gates. Pass keep_nonpositive=True when presence must be
    distinguishable from absence (value checks: a reported 0 is a real,
    gateable measurement — e.g. a fully starved client's fairness ratio).
    """
    if "benchmarks" in data:  # google-benchmark --benchmark_out format.
        # With --benchmark_repetitions=N the file has N iteration rows per
        # name (plus aggregate rows, skipped here); the per-name median
        # keeps one noisy repetition from tripping a gate.
        runs = {}
        for bench in data["benchmarks"]:
            if bench.get("run_type") == "aggregate":
                continue
            if "items_per_second" in bench:
                runs.setdefault(bench["name"], []).append(
                    float(bench["items_per_second"]))
        return {name: statistics.median(values)
                for name, values in runs.items()}
    if "metrics" in data:  # bench_common --json format.
        return {
            m["name"]: float(m["items_per_sec"])
            for m in data["metrics"]
            if keep_nonpositive or float(m.get("items_per_sec", 0)) > 0
        }
    if "items_per_second" in data:  # Committed BENCH_*.json baseline.
        table = data["items_per_second"]
        if baseline_key:
            if baseline_key not in table:
                raise ValueError(
                    f"baseline key {baseline_key!r} not in {sorted(table)}")
            table = table[baseline_key]
        return {name: float(value) for name, value in table.items()}
    # Flat {name: value} map.
    flat = {
        name: float(value)
        for name, value in data.items()
        if isinstance(value, (int, float))
    }
    if not flat:
        raise ValueError("unrecognized bench JSON shape")
    return flat


def run_gate(baseline, current, threshold, absolute, min_common, label=""):
    """One baseline-vs-current comparison. Returns 0 (ok), 1, or 2."""
    # Zero-rate baseline entries carry no signal (and would divide by zero).
    common = sorted(name for name in set(baseline) & set(current)
                    if baseline[name] > 0)
    if len(common) < min_common:
        print(f"error: only {len(common)} nonzero benchmark(s) common to "
              f"baseline and current (need {min_common}); baseline has "
              f"{sorted(baseline)}, current has {sorted(current)}",
              file=sys.stderr)
        return 2

    ratios = {name: current[name] / baseline[name] for name in common}
    scale = 1.0 if absolute else statistics.median(ratios.values())
    mode = ("absolute" if absolute
            else f"median-normalized (machine factor {scale:.3f}x)")
    tag = f" [{label}]" if label else ""
    print(f"bench regression gate{tag}: {len(common)} benchmarks, "
          f"threshold -{threshold:.0%}, {mode}")

    width = max(len(name) for name in common)
    regressions = []
    for name in common:
        normalized = ratios[name] / scale
        flag = ""
        if normalized < 1.0 - threshold:
            flag = "  << REGRESSION"
            regressions.append((name, normalized))
        print(f"  {name:<{width}}  baseline {baseline[name]:>12.1f}  "
              f"current {current[name]:>12.1f}  relative {normalized:>6.2f}x"
              f"{flag}")

    if regressions:
        print(f"\nFAIL{tag}: {len(regressions)} benchmark(s) regressed more "
              f"than {threshold:.0%}:")
        for name, normalized in regressions:
            print(f"  {name}: {normalized:.2f}x of baseline "
                  f"(limit {1.0 - threshold:.2f}x)")
        return 1
    print(f"\nOK{tag}: no benchmark regressed beyond the threshold")
    return 0


def run_ratio_checks(suite, bench_dir):
    """Gates within-run benchmark ratios (machine-independent bounds).

    Each entry carries "min_ratio" (floor), "max_ratio" (ceiling), or both.
    Returns 0 (all bounds hold or were skipped for missing rates) or 1.
    Missing numerator/denominator entries — a tier the runner cannot
    execute reports no rate — skip the check rather than fail it.
    """
    worst = 0
    for entry in suite.get("ratio_checks", []):
        label = entry.get("name", "?")
        try:
            current_path = os.path.join(bench_dir, entry["current"])
            with open(current_path) as f:
                current = extract_items_per_sec(json.load(f))
            num_name = entry["numerator"]
            den_name = entry["denominator"]
            min_ratio = (float(entry["min_ratio"])
                         if "min_ratio" in entry else None)
            max_ratio = (float(entry["max_ratio"])
                         if "max_ratio" in entry else None)
            if min_ratio is None and max_ratio is None:
                raise ValueError(
                    f"ratio check {label!r} needs min_ratio or max_ratio")
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
            print(f"error[{label}]: {e}", file=sys.stderr)
            worst = max(worst, 2)
            continue
        missing = [n for n in (num_name, den_name)
                   if current.get(n, 0.0) <= 0]
        if missing:
            print(f"ratio check [{label}]: SKIPPED — no rate for "
                  f"{', '.join(missing)} (tier unsupported on this runner?)")
            continue
        ratio = current[num_name] / current[den_name]
        ok = ((min_ratio is None or ratio >= min_ratio) and
              (max_ratio is None or ratio <= max_ratio))
        parts = []
        if min_ratio is not None:
            parts.append(f"(floor {min_ratio:.2f}x)")
        if max_ratio is not None:
            parts.append(f"(ceiling {max_ratio:.2f}x)")
        bounds = " ".join(parts)
        print(f"ratio check [{label}]: {num_name} / {den_name} = "
              f"{ratio:.2f}x {bounds} {'OK' if ok else '<< FAIL'}")
        if not ok:
            worst = max(worst, 1)
    return worst


def run_value_checks(suite, bench_dir):
    """Gates single metrics against absolute floors/ceilings.

    "max_value" is the lower-is-better mode (latency ceilings on p99
    seconds); "min_value" floors fairness ratios and machine-independent
    rates. Returns 0 (all bounds hold or were skipped for missing
    metrics), 1, or 2.

    Only a metric *absent* from the current run skips its check; a
    present value gates, including 0 — a fairness ratio of 0 is one
    client fully starved, the exact condition its floor exists for.
    """
    worst = 0
    for entry in suite.get("value_checks", []):
        label = entry.get("name", "?")
        try:
            current_path = os.path.join(bench_dir, entry["current"])
            with open(current_path) as f:
                current = extract_items_per_sec(json.load(f),
                                                keep_nonpositive=True)
            metric = entry["metric"]
            min_value = (float(entry["min_value"])
                         if "min_value" in entry else None)
            max_value = (float(entry["max_value"])
                         if "max_value" in entry else None)
            if min_value is None and max_value is None:
                raise ValueError(
                    f"value check {label!r} needs min_value or max_value")
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
            print(f"error[{label}]: {e}", file=sys.stderr)
            worst = max(worst, 2)
            continue
        if metric not in current:
            print(f"value check [{label}]: SKIPPED — no value for {metric} "
                  f"(bench skipped on this runner?)")
            continue
        value = current[metric]
        ok = ((min_value is None or value >= min_value) and
              (max_value is None or value <= max_value))
        parts = []
        if min_value is not None:
            parts.append(f"(floor {min_value:g})")
        if max_value is not None:
            parts.append(f"(ceiling {max_value:g})")
        bounds = " ".join(parts)
        print(f"value check [{label}]: {metric} = {value:g} {bounds} "
              f"{'OK' if ok else '<< FAIL'}")
        if not ok:
            worst = max(worst, 1)
    return worst


def run_suite(suite_path, bench_dir):
    """Runs every tracked bench of a suite file. Worst status wins."""
    try:
        with open(suite_path) as f:
            suite = json.load(f)
        tracked = suite.get("tracked")
        if not tracked:
            raise ValueError(f"{suite_path} has no 'tracked' list")
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    worst = 0
    for entry in tracked:
        label = entry.get("name", entry.get("baseline_key", "?"))
        try:
            baseline = extract_items_per_sec(suite,
                                             entry.get("baseline_key"))
            current_path = os.path.join(bench_dir, entry["current"])
            with open(current_path) as f:
                current = extract_items_per_sec(json.load(f))
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
            print(f"error[{label}]: {e}", file=sys.stderr)
            worst = max(worst, 2)
            continue
        status = run_gate(baseline, current,
                          threshold=float(entry.get("threshold", 0.25)),
                          absolute=bool(entry.get("absolute", False)),
                          min_common=int(entry.get("min_common", 3)),
                          label=label)
        worst = max(worst, status)
        print()
    worst = max(worst, run_ratio_checks(suite, bench_dir))
    worst = max(worst, run_value_checks(suite, bench_dir))
    return worst


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline",
                        help="committed baseline JSON (e.g. BENCH_pr5.json)")
    parser.add_argument("--baseline-key", default=None,
                        help="sub-table inside the baseline's "
                        "items_per_second map (e.g. codec)")
    parser.add_argument("--current", help="bench JSON from this run")
    parser.add_argument("--suite", default=None,
                        help="suite baseline with a 'tracked' list; gates "
                        "every tracked bench in one run")
    parser.add_argument("--bench-dir", default=".",
                        help="directory holding the tracked benches' current "
                        "JSON files (suite mode, default .)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fail when a benchmark drops more than this "
                        "fraction (default 0.25)")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw items/sec instead of "
                        "median-normalized ratios")
    parser.add_argument("--min-common", type=int, default=3,
                        help="minimum benchmarks common to both files "
                        "(default 3)")
    args = parser.parse_args()

    if args.suite:
        return run_suite(args.suite, args.bench_dir)

    if not args.baseline or not args.current:
        parser.error("either --suite or both --baseline and --current "
                     "are required")
    try:
        with open(args.baseline) as f:
            baseline = extract_items_per_sec(json.load(f), args.baseline_key)
        with open(args.current) as f:
            current = extract_items_per_sec(json.load(f))
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    return run_gate(baseline, current, args.threshold, args.absolute,
                    args.min_common)


if __name__ == "__main__":
    sys.exit(main())
