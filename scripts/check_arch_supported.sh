#!/usr/bin/env sh
# Usage: check_arch_supported.sh <scalar|sse2|avx2>
#
# Exit 0 when this machine can execute the given kernel tier, 1 when it
# cannot, 2 on usage error. CI's per-kernel-path test loops call this as a
# cheap pre-flight so forcing a tier the runner's CPU lacks skips (with a
# note) instead of silently running the scalar fallback and claiming SIMD
# coverage.
set -eu

tier="${1:-}"
case "$tier" in
  scalar)
    exit 0
    ;;
  sse2|avx2)
    # Linux: flag list in /proc/cpuinfo. Anything else: be conservative.
    if [ -r /proc/cpuinfo ]; then
      if grep -q -m1 -w "$tier" /proc/cpuinfo; then
        exit 0
      fi
      exit 1
    fi
    echo "check_arch_supported.sh: no /proc/cpuinfo; assuming $tier absent" >&2
    exit 1
    ;;
  *)
    echo "usage: $0 <scalar|sse2|avx2>" >&2
    exit 2
    ;;
esac
