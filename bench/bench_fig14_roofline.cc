// Figure 14: the byte-intensity roofline — "The system can process more
// images per second when a higher data rate is achieved via PCR data
// reduction. This trend continues until the compute units become saturated."
// Sweeps mean bytes/image and prints predicted throughput min(Xc, W/E[s]),
// marking where each ImageNet-like scan group lands.
#include <cstdio>

#include "bench_common.h"
#include "sim/queueing.h"

using namespace pcr;
using namespace pcr::bench;

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  printf("Figure 14: throughput vs byte intensity (roofline)\n\n");
  const DatasetSpec spec = DatasetSpec::ImageNetLike();
  DatasetHandle handle = GetDataset(spec);
  RecordSource* source = handle.pcr.get();
  const DeviceProfile storage = CalibratedStorage(source, spec.name);

  IoModel io;
  io.bandwidth_bytes_per_sec = storage.read_bandwidth_bytes_per_sec;

  // Scan-group byte intensities (the "notches" in the paper's figure).
  printf("scan-group byte intensities (bytes/image):");
  for (int g : {1, 2, 5, 10}) {
    printf("  g%d=%.0f", g, source->MeanImageBytes(g));
  }
  printf("\n\n");

  TablePrinter table({"bytes/image", "data rate (img/s)", "ResNet18 rate",
                      "ShuffleNet rate", "regime"});
  const double resnet = ComputeProfile::ResNet18().ClusterRate();
  const double shuffle = ComputeProfile::ShuffleNetV2().ClusterRate();
  for (double bytes = 512; bytes <= 64 * 1024; bytes *= 2) {
    const double data_rate = DataPipelineThroughput(io, bytes);
    const double r = RooflineThroughput(io, resnet, bytes);
    const double s = RooflineThroughput(io, shuffle, bytes);
    const char* regime = data_rate > shuffle          ? "compute-bound (both)"
                         : data_rate > resnet         ? "ShuffleNet I/O-bound"
                                                      : "I/O-bound (both)";
    table.AddRow({HumanBytes(bytes), StrFormat("%.0f", data_rate),
                  StrFormat("%.0f", r), StrFormat("%.0f", s), regime});
  }
  table.Print();

  // Validate the roofline against the discrete-event simulator.
  printf("\nmodel-vs-simulator check (imagenet_like, ResNet18):\n");
  TablePrinter check({"scan group", "roofline (img/s)", "simulated (img/s)",
                      "ratio"});
  for (int g : {1, 2, 5, 10}) {
    const double predicted =
        RooflineThroughput(io, resnet, source->MeanImageBytes(g));
    PipelineSimOptions options;
    options.model_decode_cost = false;
    TrainingPipelineSim sim(source, storage, ComputeProfile::ResNet18(),
                            DecodeCostModel{}, options);
    FixedScanPolicy policy(g);
    const double simulated = sim.SimulateEpoch(&policy).images_per_sec;
    ReportMetric("group_" + std::to_string(g) + "/roofline_images_per_sec", 1,
                 0, source->MeanImageBytes(g), predicted);
    ReportMetric("group_" + std::to_string(g) + "/simulated_images_per_sec",
                 1, 0, source->MeanImageBytes(g), simulated);
    check.AddRow({StrFormat("%d", g), StrFormat("%.0f", predicted),
                  StrFormat("%.0f", simulated),
                  StrFormat("%.3f", simulated / predicted)});
  }
  check.Print();
  printf("paper check: throughput rises ~1/bytes until the compute roof; "
         "simulator within a few %% of the analytic roofline.\n");
  return 0;
}
