// Figure 12: "The sizes of images in ImageNet" — log2-bucketed histogram of
// per-image JPEG sizes of the ImageNet-like dataset. Paper checks: unimodal
// mass near the mode with a long tail of small/large outliers.
#include <cstdio>

#include "bench_common.h"
#include "core/file_per_image.h"
#include "util/stats.h"
#include "util/string_util.h"

using namespace pcr;
using namespace pcr::bench;

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  const DatasetSpec spec = DatasetSpec::ImageNetLike();
  DatasetHandle handle = GetDataset(spec, false, /*with_fpi_format=*/true);
  Env* env = Env::Default();
  auto fpi = FilePerImageDataset::Open(env, handle.built.file_per_image_dir);
  PCR_CHECK(fpi.ok()) << fpi.status();

  Log2Histogram hist;
  SampleSet sizes;
  for (int i = 0; i < (*fpi)->num_images(); ++i) {
    const double bytes = static_cast<double>((*fpi)->RecordReadBytes(i, 1));
    hist.Add(bytes);
    sizes.Add(bytes);
  }

  printf("Figure 12: per-image JPEG size distribution (%s)\n\n",
         spec.name.c_str());
  TablePrinter table({"size bucket", "probability", "bar"});
  for (const auto& [bucket_lo, probability] : hist.NormalizedRows()) {
    std::string bar(static_cast<size_t>(probability * 120), '#');
    table.AddRow({HumanBytes(bucket_lo), StrFormat("%.3f", probability),
                  bar});
  }
  table.Print();
  printf("\nmean %.1f KiB  median %.1f KiB  p5 %.1f KiB  p95 %.1f KiB\n",
         sizes.Mean() / 1024, sizes.Median() / 1024,
         sizes.Percentile(5) / 1024, sizes.Percentile(95) / 1024);
  ReportMetric("image_bytes/mean", (*fpi)->num_images(), 0, sizes.Mean(), 0);
  ReportMetric("image_bytes/median", (*fpi)->num_images(), 0, sizes.Median(),
               0);
  printf("paper check: unimodal, most mass within ~2 buckets of the mode, "
         "outliers on both sides.\n");
  return 0;
}
