// Figure 11: "Data loading stalls are periodic and followed by extents of
// prefetched data. Lower scan groups reduce stall time." Per-iteration data
// stall trace (iterations 40-65, as in the paper) for ImageNet-like /
// ResNet-18 at groups {1, 2, 5, baseline}.
#include <cstdio>

#include "bench_common.h"
#include "loader/scan_policy.h"

using namespace pcr;
using namespace pcr::bench;

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  printf("Figure 11: per-iteration data-stall trace (imagenet_like, "
         "ResNet18)\n\n");
  const DatasetSpec spec = DatasetSpec::ImageNetLike();
  DatasetHandle handle = GetDataset(spec);
  RecordSource* source = handle.pcr.get();
  const DeviceProfile storage = CalibratedStorage(source, spec.name);
  const ModelProxy model = ModelProxy::ResNet18();

  TablePrinter table({"iteration", "group_1 (s)", "group_2 (s)",
                      "group_5 (s)", "baseline (s)"});
  std::vector<std::vector<double>> stalls;
  std::vector<EpochSimResult> results;
  for (int group : {1, 2, 5, 10}) {
    // Shallow prefetch queue accentuates the periodic stall pattern.
    PipelineSimOptions options;
    options.prefetch_depth = 4;
    TrainingPipelineSim sim(source, storage, model.compute, DecodeCostModel{},
                            options);
    FixedScanPolicy policy(group);
    auto result = sim.SimulateRecords(70, &policy, /*keep_trace=*/true);
    std::vector<double> s;
    for (const auto& it : result.trace) s.push_back(it.data_stall_seconds);
    stalls.push_back(std::move(s));
    results.push_back(std::move(result));
  }
  for (int iter = 40; iter <= 65; ++iter) {
    table.AddRow({StrFormat("%d", iter),
                  StrFormat("%.3f", stalls[0][iter]),
                  StrFormat("%.3f", stalls[1][iter]),
                  StrFormat("%.3f", stalls[2][iter]),
                  StrFormat("%.3f", stalls[3][iter])});
  }
  table.Print();
  printf("\ntotal stall over 70 iterations: g1 %.2fs  g2 %.2fs  g5 %.2fs  "
         "baseline %.2fs\n",
         results[0].stall_seconds, results[1].stall_seconds,
         results[2].stall_seconds, results[3].stall_seconds);
  {
    const int groups[] = {1, 2, 5, 10};
    for (size_t i = 0; i < results.size(); ++i) {
      ReportMetric("group_" + std::to_string(groups[i]) + "/stall_seconds",
                   results[i].images, results[i].stall_seconds,
                   static_cast<double>(results[i].bytes_read),
                   results[i].images_per_sec);
    }
  }

  // Per-stage attribution of loader time and stalls (the storage-vs-CPU
  // breakdown behind the figure's claim that stalls are I/O driven).
  printf("\nper-stage loader breakdown over the 70 iterations:\n");
  TablePrinter stages({"group", "io (s)", "decode (s)", "stall io-bound (s)",
                       "stall decode-bound (s)"});
  const char* names[] = {"1", "2", "5", "baseline"};
  for (size_t i = 0; i < results.size(); ++i) {
    stages.AddRow({names[i], StrFormat("%.2f", results[i].io_seconds),
                   StrFormat("%.2f", results[i].decode_seconds),
                   StrFormat("%.2f", results[i].io_bound_stall_seconds),
                   StrFormat("%.2f", results[i].decode_bound_stall_seconds)});
  }
  stages.Print();
  printf("\npaper check: baseline shows the largest stalls; lower scan groups "
         "reduce stall magnitude; stalls are storage-attributed (io-bound), "
         "not decode-attributed.\n");

  // Async I/O: the same 70-iteration trace with the loader keeping several
  // fetches in flight. Overlapping the per-read fixed costs shrinks the
  // io-bound stalls the tables above attribute to storage.
  {
    printf("\nasync I/O: stalls vs in-flight window (baseline quality):\n");
    TablePrinter windows({"window", "stall (s)", "stall io-bound (s)",
                          "stall decode-bound (s)", "img/s"});
    for (int window : {1, 2, 4, 8}) {
      PipelineSimOptions options;
      options.prefetch_depth = 4;
      options.io_inflight_window = window;
      TrainingPipelineSim sim(source, storage, model.compute,
                              DecodeCostModel{}, options);
      FixedScanPolicy policy(10);
      const auto result = sim.SimulateRecords(70, &policy);
      windows.AddRow({StrFormat("%d", window),
                      StrFormat("%.2f", result.stall_seconds),
                      StrFormat("%.2f", result.io_bound_stall_seconds),
                      StrFormat("%.2f", result.decode_bound_stall_seconds),
                      StrFormat("%.0f", result.images_per_sec)});
      ReportMetric("window_" + std::to_string(window) + "/stall_seconds",
                   result.images, result.stall_seconds,
                   static_cast<double>(result.bytes_read),
                   result.images_per_sec);
    }
    windows.Print();
    printf("check: stalls shrink monotonically as the window deepens; the "
           "remaining stall is the bandwidth floor no queue depth removes.\n");
  }

  // Decoded-record cache across epochs: with the working set resident,
  // epoch 2's iterations are cache-served — the periodic stalls of the
  // tables above disappear entirely (no storage reads, no decodes).
  {
    PipelineSimOptions options;
    options.prefetch_depth = 4;
    options.decode_cache_bytes = 8ull << 30;
    TrainingPipelineSim sim(source, storage, model.compute, DecodeCostModel{},
                            options);
    FixedScanPolicy baseline_policy(10);
    const auto epoch1 = sim.SimulateEpoch(&baseline_policy);
    const auto epoch2 = sim.SimulateEpoch(&baseline_policy);
    ReportMetric("cache/epoch2_stall_seconds", epoch2.records,
                 epoch2.stall_seconds,
                 static_cast<double>(epoch2.bytes_read),
                 epoch2.images_per_sec);
    ReportMetric("cache/epoch2_hit_seconds_saved", epoch2.records,
                 epoch2.cache_hit_seconds_saved, 0, 0);
    printf("\ndecoded-record cache (baseline quality, resident working "
           "set):\n  epoch 1 (populate): stall %.2fs, %.0f img/s\n  epoch 2 "
           "(cache-served): %lld/%d hits, stall %.2fs, %.0f img/s, loader "
           "seconds saved %.2fs\n",
           epoch1.stall_seconds, epoch1.images_per_sec,
           static_cast<long long>(epoch2.cache_hits), epoch2.records,
           epoch2.stall_seconds, epoch2.images_per_sec,
           epoch2.cache_hit_seconds_saved);
  }
  return 0;
}
