// Figure 8: "Adaptive tuning on HAM10000 for the same number of epochs ...
// even with a simple strategy, the dynamic approach is able to achieve the
// same accuracy and is more efficient than using all scans."
//
// Loss-plateau autotuner (§4.5): train at full quality until the loss
// plateaus, checkpoint, probe candidate groups, roll back, continue at the
// chosen group. Probe epochs are charged to simulated time.
#include <cstdio>

#include "bench_common.h"
#include "tune/dynamic_tuner.h"

using namespace pcr;
using namespace pcr::bench;

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  printf("Figure 8: loss-based adaptive scan-group tuning on HAM10000\n");
  const DatasetSpec spec = DatasetSpec::Ham10000Like();
  DatasetHandle handle = GetDataset(spec);
  RecordSource* source = handle.pcr.get();
  const TrainRecipe recipe = TrainRecipe::ForDataset(spec.name);
  const DeviceProfile storage = CalibratedStorage(source, spec.name);

  for (const ModelProxy& model :
       {ModelProxy::ResNet18(), ModelProxy::ShuffleNetV2()}) {
    CachedDatasetOptions cache_options;
    cache_options.scan_groups = {1, 2, 5, 10};
    cache_options.features = model.features;
    auto cached = CachedDataset::Build(source, cache_options).MoveValue();

    struct RunResult {
      std::string name;
      double seconds;
      double accuracy;
      std::string schedule;
    };
    std::vector<RunResult> runs;

    // Baseline: all scans, fixed.
    {
      auto classifier =
          model.MakeClassifier(cached.feature_dim(), cached.num_classes(), 1);
      Trainer trainer(&cached, classifier.get(), recipe.trainer);
      TrainingPipelineSim sim(source, storage, model.compute,
                              DecodeCostModel{}, PipelineSimOptions{});
      FixedScanPolicy policy(10);
      double t = 0;
      for (int e = 0; e < recipe.epochs; ++e) {
        t += sim.SimulateEpoch(&policy).elapsed_seconds;
        trainer.RunEpoch(10);
      }
      runs.push_back({"baseline(10)", t, trainer.TestAccuracy(), "10"});
    }

    // Dynamic: loss-plateau tuner.
    {
      auto classifier =
          model.MakeClassifier(cached.feature_dim(), cached.num_classes(), 1);
      Trainer trainer(&cached, classifier.get(), recipe.trainer);
      TrainingPipelineSim sim(source, storage, model.compute,
                              DecodeCostModel{}, PipelineSimOptions{});
      LossPlateauTunerOptions tuner_options;
      tuner_options.candidate_groups = {1, 2, 5, 10};
      LossPlateauTuner tuner(tuner_options);

      double t = 0;
      std::string schedule;
      size_t events_seen = 0;
      int last_group = 10;
      for (int e = 0; e < recipe.epochs; ++e) {
        tuner.Step(&trainer);
        // Charge this epoch plus any probe epochs the tuner ran.
        const int group = tuner.current_group() == 0 ? 10
                                                     : tuner.current_group();
        FixedScanPolicy policy(group);
        t += sim.SimulateEpoch(&policy).elapsed_seconds;
        while (events_seen < tuner.events().size()) {
          const TuneEvent& event = tuner.events()[events_seen++];
          for (const auto& [probe_group, loss] : event.probes) {
            FixedScanPolicy probe_policy(probe_group);
            t += sim.SimulateEpoch(&probe_policy).elapsed_seconds;
          }
          schedule += StrFormat("e%d->g%d ", event.epoch, event.chosen_group);
        }
        if (group != last_group) last_group = group;
      }
      if (schedule.empty()) schedule = "no tune events";
      runs.push_back({"dynamic(plateau)", t, trainer.TestAccuracy(),
                      schedule});
    }

    printf("\n-- %s / %s (%d epochs each) --\n", spec.name.c_str(),
           model.name.c_str(), recipe.epochs);
    TablePrinter table({"strategy", "sim time (s)", "final acc (%)",
                        "speedup", "tuning schedule"});
    for (const auto& run : runs) {
      ReportMetric(model.name + "/" + run.name + "/sim_seconds", recipe.epochs,
                   run.seconds, 0, run.accuracy);
      table.AddRow({run.name, StrFormat("%.1f", run.seconds),
                    StrFormat("%.1f", run.accuracy),
                    StrFormat("%.2fx", runs[0].seconds / run.seconds),
                    run.schedule});
    }
    table.Print();
  }
  printf("\npaper check: dynamic tuning reaches baseline accuracy in less "
         "time; training speeds up when scan groups shift down.\n");
  return 0;
}
