// Figure 19: "cosine distances between true gradient (e.g., scan 10) and
// the gradient with respect to a scan group" on HAM10000/ShuffleNet,
// including the 50%/85% mixture variants — mixing raises the similarity of
// low scans ("the tolerance to lower scans is increased").
#include <cstdio>

#include "bench_common.h"
#include "train/trainer.h"

using namespace pcr;
using namespace pcr::bench;

namespace {

// Gradient of mixture training = expectation over the group distribution.
std::vector<float> MixtureGradient(const Trainer& trainer,
                                   const std::vector<int>& groups,
                                   const std::vector<double>& weights,
                                   int max_examples) {
  std::vector<float> acc;
  double total = 0;
  for (size_t i = 0; i < groups.size(); ++i) total += weights[i];
  for (size_t i = 0; i < groups.size(); ++i) {
    const auto g = trainer.GradientForGroup(groups[i], max_examples);
    if (acc.empty()) acc.assign(g.size(), 0.0f);
    const float w = static_cast<float>(weights[i] / total);
    for (size_t k = 0; k < g.size(); ++k) acc[k] += w * g[k];
  }
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  printf("Figure 19: gradient cosine similarity vs scan group "
         "(ham10000_like, ShuffleNet proxy)\n\n");
  const DatasetSpec spec = DatasetSpec::Ham10000Like();
  DatasetHandle handle = GetDataset(spec);
  const ModelProxy model = ModelProxy::ShuffleNetV2();

  CachedDatasetOptions cache_options;
  cache_options.scan_groups = {1, 2, 5, 10};
  cache_options.features = model.features;
  auto cached =
      CachedDataset::Build(handle.pcr.get(), cache_options).MoveValue();
  auto classifier =
      model.MakeClassifier(cached.feature_dim(), cached.num_classes(), 3);
  TrainerOptions trainer_options =
      TrainRecipe::ForDataset(spec.name).trainer;
  Trainer trainer(&cached, classifier.get(), trainer_options);

  const std::vector<int> groups = {1, 2, 5, 10};
  const int grad_examples = 384;

  TablePrinter table({"epoch", "cos(g1)", "cos(g2)", "cos(g5)", "cos(g10)",
                      "cos(g1,mix50)", "cos(g1,mix85)"});
  for (int epoch = 0; epoch <= 60; epoch += 10) {
    const auto ref = trainer.GradientForGroup(10, grad_examples);
    std::vector<std::string> row = {StrFormat("%d", epoch)};
    for (int g : groups) {
      const double cos = CosineSimilarity(
          trainer.GradientForGroup(g, grad_examples), ref);
      ReportMetric("epoch_" + std::to_string(epoch) + "/cos_g" +
                       std::to_string(g),
                   grad_examples, 0, 0, cos);
      row.push_back(StrFormat("%.3f", cos));
    }
    // Mixtures centered on group 1: weight w on g1, 1 on each other group.
    for (double w : {10.0, 100.0}) {
      const auto mix = MixtureGradient(trainer, groups, {w, 1.0, 1.0, 1.0},
                                       grad_examples);
      row.push_back(StrFormat("%.3f", CosineSimilarity(mix, ref)));
    }
    table.AddRow(row);
    if (epoch < 60) {
      for (int e = 0; e < 10; ++e) trainer.RunEpoch(10);
    }
  }
  table.Print();
  printf("\npaper checks: cosine rises with scan group (cos(g10)=1 by "
         "definition); mixtures pull group 1's gradient toward the true "
         "gradient, so a fixed similarity cutoff admits lower scans.\n");
  return 0;
}
