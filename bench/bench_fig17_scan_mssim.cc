// Figure 17: "The reconstruction quality (measured with MSSIM) of using
// various amounts of scans." Per dataset: mean + IQR MSSIM per scan group.
// Paper checks: monotone increase, diminishing returns after ~scan 5, scan
// groups >= 5 at MSSIM ~0.95+.
#include <cstdio>

#include "bench_common.h"
#include "tune/static_tuner.h"
#include "util/string_util.h"

using namespace pcr;
using namespace pcr::bench;

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  printf("Figure 17: MSSIM per scan group\n\n");
  for (const DatasetSpec& spec :
       {DatasetSpec::ImageNetLike(), DatasetSpec::Ham10000Like(),
        DatasetSpec::CarsLike(), DatasetSpec::CelebAHqLike()}) {
    DatasetHandle handle = GetDataset(spec);

    StaticTunerOptions options;
    options.sample_images = 24;
    auto profile = ProfileScanGroups(handle.pcr.get(), options);
    PCR_CHECK(profile.ok()) << profile.status();

    printf("-- %s --\n", spec.name.c_str());
    TablePrinter table({"scan", "mean MSSIM", "p25", "p75", "mean KiB/img"});
    for (const auto& q : *profile) {
      ReportMetric(spec.name + "/group_" + std::to_string(q.scan_group) +
                       "/mean_mssim",
                   options.sample_images, 0, q.mean_bytes_per_image,
                   q.mean_mssim);
      table.AddRow({StrFormat("%d", q.scan_group),
                    StrFormat("%.4f", q.mean_mssim),
                    StrFormat("%.4f", q.p25_mssim),
                    StrFormat("%.4f", q.p75_mssim),
                    StrFormat("%.1f", q.mean_bytes_per_image / 1024.0)});
    }
    table.Print();
    const int pick = PickFromProfile(*profile, 0.95);
    printf("static tuner pick (MSSIM >= 0.95): scan group %d\n\n", pick);
  }
  return 0;
}
