// Figure 7: "MSSIM vs accuracy for the Cars dataset (with/without cropping)
// using Shufflenet. There is a linear relationship between MSSIM and the
// final test accuracy [and] scan groups cluster by MSSIM and accuracy."
//
// We train at every scan group, regress final accuracy on the group's mean
// MSSIM, and report slope/intercept/p-value for crop and no-crop
// augmentation variants (the paper reports y=296.8x-246.2 / y=405.0x-331.0
// with p < 1e-5 on the real dataset).
#include <cstdio>

#include "bench_common.h"
#include "tune/static_tuner.h"
#include "util/stats.h"

using namespace pcr;
using namespace pcr::bench;

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  printf("Figure 7: MSSIM vs final accuracy regression (cars_like, "
         "ShuffleNet proxy)\n\n");
  const DatasetSpec spec = DatasetSpec::CarsLike();
  DatasetHandle handle = GetDataset(spec);

  StaticTunerOptions tuner_options;
  tuner_options.sample_images = 24;
  auto profile = ProfileScanGroups(handle.pcr.get(), tuner_options);
  PCR_CHECK(profile.ok()) << profile.status();

  TimeToAccuracyConfig config;
  config.scan_groups = {1, 2, 3, 5, 7, 10};
  config.repeats = 1;

  for (const bool crop : {true, false}) {
    ModelProxy model = ModelProxy::ShuffleNetV2();
    model.name = crop ? "ShuffleNet(crop)" : "ShuffleNet(no-crop)";
    if (crop) {
      model.features.crop = 160;
      model.features.random_augment = true;
    }
    const auto results = RunTimeToAccuracy(spec, model, config);

    std::vector<double> mssim, accuracy;
    printf("-- %s --\n", model.name.c_str());
    TablePrinter table({"scan group", "MSSIM", "final acc (%)"});
    for (const auto& r : results) {
      const double m = (*profile)[r.scan_group - 1].mean_mssim;
      mssim.push_back(m);
      accuracy.push_back(r.final_accuracy);
      table.AddRow({StrFormat("%d", r.scan_group), StrFormat("%.4f", m),
                    StrFormat("%.1f", r.final_accuracy)});
    }
    table.Print();
    const LinearFit fit = FitLinear(mssim, accuracy);
    ReportMetric(model.name + "/fit_slope", results.size(), 0, 0, fit.slope);
    ReportMetric(model.name + "/fit_r2", results.size(), 0, 0, fit.r2);
    printf("fit: acc = %.1f * MSSIM + %.1f   r^2=%.3f  p-value=%.2e\n\n",
           fit.slope, fit.intercept, fit.r2, fit.p_value);
  }
  printf("paper check: positive slope, small p-value, and scan groups with "
         "similar MSSIM (2-4, 6-9) clustering at similar accuracy.\n");
  return 0;
}
