// Figures 23-28 (appendix sweeps): accuracy and training loss for every
// dataset x model at groups {1,2,5,baseline}, on both the time axis
// (Figs 23-26) and the epoch axis (Figs 27/28 — which check that lower scan
// groups do NOT improve per-epoch accuracy, i.e. the time-to-accuracy wins
// come from bandwidth, not regularization).
#include <cstdio>

#include "bench_common.h"

using namespace pcr;
using namespace pcr::bench;

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  printf("Figures 23-28: full accuracy/loss sweeps\n");
  TimeToAccuracyConfig config;
  config.scan_groups = {1, 2, 5, 10};
  config.repeats = 1;  // The headline figures use 2; sweeps trade repeats
                       // for coverage.
  config.eval_every = 20;

  for (const DatasetSpec& spec :
       {DatasetSpec::ImageNetLike(), DatasetSpec::Ham10000Like(),
        DatasetSpec::CarsLike(), DatasetSpec::CelebAHqLike()}) {
    for (const ModelProxy& model :
         {ModelProxy::ResNet18(), ModelProxy::ShuffleNetV2()}) {
      const auto results = RunTimeToAccuracy(spec, model, config);
      printf("\n== %s / %s ==\n", spec.name.c_str(), model.name.c_str());
      TablePrinter table({"scan group", "final acc (%)", "final loss",
                          "acc@25% epochs", "acc@50% epochs",
                          "epoch time (s)"});
      for (const auto& r : results) {
        ReportMetric(spec.name + "/" + model.name + "/group_" +
                         std::to_string(r.scan_group) + "/final_accuracy",
                     r.curve.back().epoch, r.total_seconds, 0,
                     r.final_accuracy);
        const size_t q1 = r.curve.size() / 4;
        const size_t q2 = r.curve.size() / 2;
        table.AddRow({r.scan_group == 10 ? "baseline(10)"
                                         : StrFormat("group_%d", r.scan_group),
                      StrFormat("%.1f", r.final_accuracy),
                      StrFormat("%.3f", r.curve.back().train_loss),
                      StrFormat("%.1f", r.curve[q1].test_accuracy),
                      StrFormat("%.1f", r.curve[q2].test_accuracy),
                      StrFormat("%.2f",
                                r.total_seconds / r.curve.back().epoch)});
      }
      table.Print();
      // Fig 27/28 check: per-epoch accuracy of low groups must not beat the
      // baseline (compression is not acting as a regularizer).
      const double base_final = results.back().final_accuracy;
      bool regularizer = false;
      for (const auto& r : results) {
        if (r.scan_group < 10 && r.final_accuracy > base_final + 2.0) {
          regularizer = true;
        }
      }
      printf("per-epoch check: lower scans %s improve final accuracy "
             "(paper: they don't).\n",
             regularizer ? "DO" : "do not");
    }
  }
  return 0;
}
