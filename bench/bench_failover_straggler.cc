// Fault-tolerant read path under degraded storage: the two numbers the
// regression gate holds this subsystem to.
//
//  (1) Healthy-path overhead: a ReplicatedRecordSource over two clean
//      replicas must not tax throughput versus a plain single-replica
//      source — replication bookkeeping (rotation, health scoring, plan
//      alternates) rides along for free when nothing fails. Gated at
//      replicated >= 0.95x plain within one run.
//  (2) Hedged-read tail cut: with one replica stalling a deterministic
//      fraction of its reads (a straggler device), hedging a slow fetch to
//      the healthy replica must cut the fetch p99 by >= 2x versus running
//      the same schedule unhedged. The straggler is a seeded
//      FaultInjectionEnv schedule, so every repetition (and every CI run)
//      races the identical fault sequence.
//
// Both sections run the real wall-clock LoaderPipeline over SimEnv replicas
// on a RealClock — per-op device latency makes fetch service times
// millisecond-scale so percentiles are meaningful, while keeping the whole
// bench sub-second. Medians over REPS repetitions absorb scheduler noise;
// the stall magnitude (20 ms vs ~1 ms service) dominates the p99 either
// way, which is what makes a 2x floor safe to gate.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/pcr_dataset.h"
#include "core/replicated_record_source.h"
#include "data/dataset_spec.h"
#include "jpeg/codec.h"
#include "loader/pipeline.h"
#include "storage/fault_env.h"
#include "storage/sim_env.h"
#include "util/stats.h"

using namespace pcr;
using namespace pcr::bench;

namespace {

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A fast storage device with a visible per-request setup cost: fetch
/// service time ~1 ms, so a 20 ms injected stall is a 20x outlier.
DeviceProfile StragglerProneSsd() {
  DeviceProfile profile;
  profile.name = "bench-ssd";
  profile.read_bandwidth_bytes_per_sec = 2.0 * (1 << 30);
  profile.write_bandwidth_bytes_per_sec = 2.0 * (1 << 30);
  profile.per_op_latency_sec = 1e-3;
  return profile;
}

/// Builds one PCR replica in env:dir. Identical arguments produce
/// byte-identical datasets — the replica invariant ReplicatedRecordSource
/// validates at Create.
std::unique_ptr<PcrDataset> BuildReplica(Env* env, const std::string& dir,
                                         int num_images,
                                         int images_per_record) {
  DatasetSpec spec = DatasetSpec::TestTiny();
  spec.base_width = 40;
  spec.base_height = 32;
  spec.size_jitter = 0;
  PcrWriterOptions options;
  options.images_per_record = images_per_record;
  auto writer = PcrDatasetWriter::Create(env, dir, options).MoveValue();
  for (int i = 0; i < num_images; ++i) {
    const Image img = GenerateImage(spec, i % 3, static_cast<uint64_t>(i));
    jpeg::EncodeOptions encode;
    encode.quality = 85;
    const std::string jpeg = jpeg::Encode(img, encode).MoveValue();
    PCR_CHECK(writer->AddImage(Slice(jpeg), i).ok());
  }
  PCR_CHECK(writer->Finish().ok());
  return PcrDataset::Open(env, dir).MoveValue();
}

struct RunResult {
  double rate = 0;
  StageStatsSnapshot io;
};

/// Streams `epochs` full epochs through a fetch-only pipeline (decode off:
/// this bench measures the storage path, decode would only add noise).
RunResult RunEpochs(RecordSource* source, int epochs, bool hedged) {
  LoaderPipelineOptions options;
  options.io_threads = 2;
  options.io_inflight = 4;
  options.decode_threads = 2;
  options.decode = false;
  options.max_epochs = epochs;
  options.hedged_reads = hedged;
  LoaderPipeline pipeline(source, options);
  int images = 0;
  const double t0 = NowSec();
  for (;;) {
    auto batch = pipeline.Next();
    if (!batch.ok()) {
      PCR_CHECK(batch.status().code() == StatusCode::kOutOfRange)
          << batch.status();
      break;
    }
    images += batch->size();
  }
  RunResult result;
  result.rate = images / (NowSec() - t0);
  result.io = pipeline.io_stats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  printf("Replicated read path: healthy-path overhead and hedged-read tail "
         "latency under a deterministic straggler\n\n");

  const int num_images = 48;
  const int images_per_record = 2;
  const int epochs = SmokeMode() ? 8 : 20;
  const int reps = 3;

  // ---- (1) Healthy path: replicated 2x vs a plain single source. --------
  {
    SimEnv plain_env(StragglerProneSsd(), RealClock::Get());
    SimEnv env_a(StragglerProneSsd(), RealClock::Get());
    SimEnv env_b(StragglerProneSsd(), RealClock::Get());
    auto plain = BuildReplica(&plain_env, "d", num_images, images_per_record);
    std::vector<std::unique_ptr<RecordSource>> replicas;
    replicas.push_back(BuildReplica(&env_a, "d", num_images,
                                    images_per_record));
    replicas.push_back(BuildReplica(&env_b, "d", num_images,
                                    images_per_record));
    auto replicated =
        ReplicatedRecordSource::Create(std::move(replicas)).MoveValue();

    SampleSet plain_rates, replicated_rates;
    StageStatsSnapshot replicated_io;
    for (int rep = 0; rep < reps; ++rep) {
      plain_rates.Add(RunEpochs(plain.get(), epochs, /*hedged=*/true).rate);
      const RunResult r = RunEpochs(replicated.get(), epochs,
                                    /*hedged=*/true);
      replicated_rates.Add(r.rate);
      replicated_io = r.io;
    }
    const double ratio = plain_rates.Median() > 0
                             ? replicated_rates.Median() / plain_rates.Median()
                             : 0.0;
    TablePrinter table({"source", "img/s (median)", "fetch p50 (ms)",
                        "fetch p99 (ms)", "failovers", "hedges"});
    table.AddRow({"plain", StrFormat("%.0f", plain_rates.Median()), "-", "-",
                  "-", "-"});
    table.AddRow({"replicated 2x",
                  StrFormat("%.0f", replicated_rates.Median()),
                  StrFormat("%.3f", replicated_io.fetch_p50_sec * 1e3),
                  StrFormat("%.3f", replicated_io.fetch_p99_sec * 1e3),
                  StrFormat("%lld",
                            static_cast<long long>(replicated_io.failovers)),
                  StrFormat("%lld",
                            static_cast<long long>(replicated_io.hedges))});
    table.Print();
    printf("replicated/plain throughput ratio: %.2f (gated >= 0.95: health "
           "scoring and plan alternates must be free when nothing fails; "
           "rotation over two devices typically lands above 1)\n\n",
           ratio);
    ReportMetric("healthy/plain_images_per_sec", reps, 0, 0,
                 plain_rates.Median());
    ReportMetric("healthy/replicated_images_per_sec", reps, 0, 0,
                 replicated_rates.Median());
  }

  // ---- (2) Straggler: one replica stalls every 20th read by 20 ms. ------
  {
    SimEnv straggler_base(StragglerProneSsd(), RealClock::Get());
    SimEnv healthy_env(StragglerProneSsd(), RealClock::Get());
    // Build replica 0's files, then reopen them through the fault wrapper so
    // its fetch plans carry the straggler schedule.
    BuildReplica(&straggler_base, "d", num_images, images_per_record);

    FaultRule stall;
    stall.path_substring = ".pcr";  // Record payloads only, not metadata.
    stall.fail_every_n = 20;
    stall.code = StatusCode::kOk;  // Latency-only: a straggler, not a fault.
    stall.added_latency_sec = 0.02;
    FaultInjectionEnv straggler_env(&straggler_base, {stall}, /*seed=*/1234);
    auto straggler = PcrDataset::Open(&straggler_env, "d").MoveValue();

    std::vector<std::unique_ptr<RecordSource>> replicas;
    replicas.push_back(std::move(straggler));
    replicas.push_back(
        BuildReplica(&healthy_env, "d", num_images, images_per_record));
    auto source =
        ReplicatedRecordSource::Create(std::move(replicas)).MoveValue();

    SampleSet unhedged_p99, hedged_p99, unhedged_p50, hedged_p50;
    int64_t hedges = 0, hedge_wins = 0;
    for (int rep = 0; rep < reps; ++rep) {
      // Each repetition replays the identical fault sequence.
      straggler_env.ResetSchedule();
      const RunResult unhedged = RunEpochs(source.get(), epochs,
                                           /*hedged=*/false);
      unhedged_p50.Add(unhedged.io.fetch_p50_sec);
      unhedged_p99.Add(unhedged.io.fetch_p99_sec);

      straggler_env.ResetSchedule();
      const RunResult hedged = RunEpochs(source.get(), epochs,
                                         /*hedged=*/true);
      hedged_p50.Add(hedged.io.fetch_p50_sec);
      hedged_p99.Add(hedged.io.fetch_p99_sec);
      hedges = hedged.io.hedges;
      hedge_wins = hedged.io.hedge_wins;
    }
    const double improvement = hedged_p99.Median() > 0
                                   ? unhedged_p99.Median() / hedged_p99.Median()
                                   : 0.0;
    TablePrinter table({"mode", "fetch p50 (ms)", "fetch p99 (ms)"});
    table.AddRow({"unhedged", StrFormat("%.3f", unhedged_p50.Median() * 1e3),
                  StrFormat("%.3f", unhedged_p99.Median() * 1e3)});
    table.AddRow({"hedged", StrFormat("%.3f", hedged_p50.Median() * 1e3),
                  StrFormat("%.3f", hedged_p99.Median() * 1e3)});
    table.Print();
    printf("hedged-read p99 improvement: %.1fx (gated >= 2x; last rep: %lld "
           "hedges, %lld won the race). The straggler stalls ~5%% of one "
           "replica's reads 20x past the healthy service time, so the "
           "unhedged p99 sits on the stall; the adaptive deadline duplicates "
           "exactly those fetches to the healthy replica.\n",
           improvement, static_cast<long long>(hedges),
           static_cast<long long>(hedge_wins));
    if (improvement < 2.0) {
      printf("WARNING: hedged p99 improvement below the 2x gate\n");
    }
    ReportMetric("straggler/unhedged_fetch_p99_sec", reps, 0, 0,
                 unhedged_p99.Median());
    ReportMetric("straggler/hedged_fetch_p99_sec", reps, 0, 0,
                 hedged_p99.Median());
    ReportMetric("straggler/unhedged_fetch_p50_sec", reps, 0, 0,
                 unhedged_p50.Median());
    ReportMetric("straggler/hedged_fetch_p50_sec", reps, 0, 0,
                 hedged_p50.Median());
  }
  return 0;
}
