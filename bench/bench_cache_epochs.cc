// Decoded-record cache over multi-epoch training: epoch 1 populates the
// DecodeCache through the staged LoaderPipeline (every record fetched and
// decoded once), epochs 2+ are served from the cache — no storage fetch, no
// JPEG decode, just a batch copy per record. On a cache-resident working set
// epoch-2+ throughput is expected to be >= 5x epoch 1 (decode is the paper's
// CPU bottleneck; a copy is memcpy-speed).
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "loader/decode_cache.h"
#include "loader/pipeline.h"

using namespace pcr;
using namespace pcr::bench;

namespace {
double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  printf("Decoded-record cache: multi-epoch throughput on a cache-resident "
         "working set\n\n");
  const DatasetSpec spec = DatasetSpec::CelebAHqLike();
  DatasetHandle handle = GetDataset(spec);
  auto disk =
      PcrDataset::Open(Env::Default(), handle.built.pcr_dir).MoveValue();

  DecodeCacheOptions cache_options;
  cache_options.capacity_bytes = 2ull << 30;  // Working set stays resident.
  cache_options.shards = 8;
  auto cache = std::make_shared<DecodeCache>(cache_options);
  const uint64_t dataset_id = cache->RegisterDataset();

  const int epochs = 3;
  const int scan_group = disk->num_scan_groups();
  TablePrinter table({"epoch", "img/s", "cache hits", "decoded", "fetched MB",
                      "cache MB"});
  std::vector<double> rates;
  for (int epoch = 1; epoch <= epochs; ++epoch) {
    // One pipeline per epoch; the shared cache is what survives — the same
    // shape as a training loop that rebuilds its loader every epoch.
    LoaderPipelineOptions options;
    options.io_threads = 2;
    options.decode_threads = 4;
    options.max_epochs = 1;
    options.scan_policy = std::make_shared<FixedScanPolicy>(scan_group);
    options.decode_cache = cache;
    options.cache_dataset_id = dataset_id;
    LoaderPipeline pipeline(disk.get(), options);

    int images = 0;
    const double t0 = NowSec();
    for (;;) {
      auto batch = pipeline.Next();
      if (!batch.ok()) {
        PCR_CHECK(batch.status().code() == StatusCode::kOutOfRange)
            << batch.status();
        break;
      }
      images += batch->size();
    }
    const double elapsed = NowSec() - t0;
    const auto io = pipeline.io_stats();
    const auto decode = pipeline.decode_stats();
    const double rate = images / elapsed;
    rates.push_back(rate);
    ReportMetric("epoch_" + std::to_string(epoch) + "/images_per_sec", images,
                 elapsed, static_cast<double>(io.bytes), rate);
    table.AddRow({StrFormat("%d", epoch), StrFormat("%.0f", rate),
                  StrFormat("%lld", static_cast<long long>(io.cache_hits)),
                  StrFormat("%lld", static_cast<long long>(decode.items)),
                  StrFormat("%.2f", io.bytes / 1e6),
                  StrFormat("%.2f", io.cache_bytes / 1e6)});
  }
  table.Print();

  const double speedup = rates[1] / rates[0];
  ReportMetric("epoch2_vs_epoch1_speedup", 1, 0, 0, speedup);
  const auto stats = cache->stats();
  printf("\ncache: %lld inserts, %lld hits, %lld evictions, %.2f MB in use "
         "(budget %.0f MB)\n",
         static_cast<long long>(stats.inserts),
         static_cast<long long>(stats.hits),
         static_cast<long long>(stats.evictions), stats.bytes_in_use / 1e6,
         stats.capacity_bytes / 1e6);
  printf("\nepoch-2 vs epoch-1 speedup: %.1fx (expected >= 5x: epochs 2+ "
         "skip both the storage fetch and the JPEG decode)\n",
         speedup);
  if (speedup < 5.0) {
    printf("WARNING: speedup below the 5x bar for a cache-resident working "
           "set\n");
  }
  return 0;
}
