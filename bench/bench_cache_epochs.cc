// Decoded-record cache over multi-epoch training: a cold pass populates the
// DecodeCache through the staged LoaderPipeline (every record fetched and
// decoded once), warm passes are served from the cache — no storage fetch,
// no JPEG decode, just a batch copy per record. On a cache-resident working
// set warm throughput is expected to be >= 5x cold (decode is the paper's
// CPU bottleneck; a copy is memcpy-speed).
//
// Wall-clock benches are noisy, so the cold/warm cycle repeats REPS times
// (fresh cache per repetition) and the gated metrics are medians with the
// coefficient of variation reported alongside — the CV is what sizes the
// regression-gate threshold for this bench.
//
// A second section sweeps the storage backends (PCR_FORCE_IO tiers that
// this kernel supports) over partial-quality reads and reports each tier's
// syscalls-per-record: the pread-per-segment threads backend sets the
// baseline the batched-vectored uring backend must beat by >= 4x.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "loader/decode_cache.h"
#include "loader/pipeline.h"
#include "storage/io_backend.h"
#include "util/stats.h"

using namespace pcr;
using namespace pcr::bench;

namespace {
double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Cv(const SampleSet& s) {
  return s.Mean() > 0 ? s.Stddev() / s.Mean() : 0.0;
}

struct PassResult {
  double rate = 0;
  StageStatsSnapshot io;
  StageStatsSnapshot decode;
};

PassResult RunPass(PcrDataset* disk, const LoaderPipelineOptions& options) {
  LoaderPipeline pipeline(disk, options);
  int images = 0;
  const double t0 = NowSec();
  for (;;) {
    auto batch = pipeline.Next();
    if (!batch.ok()) {
      PCR_CHECK(batch.status().code() == StatusCode::kOutOfRange)
          << batch.status();
      break;
    }
    images += batch->size();
  }
  PassResult result;
  result.rate = images / (NowSec() - t0);
  result.io = pipeline.io_stats();
  result.decode = pipeline.decode_stats();
  return result;
}
}  // namespace

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  printf("Decoded-record cache: multi-epoch throughput on a cache-resident "
         "working set\n\n");
  const DatasetSpec spec = DatasetSpec::CelebAHqLike();
  DatasetHandle handle = GetDataset(spec);
  auto disk =
      PcrDataset::Open(Env::Default(), handle.built.pcr_dir).MoveValue();
  const int scan_group = disk->num_scan_groups();

  // Cold/warm cycles, >= 5 repetitions for a variance characterization.
  const int reps = 5;
  SampleSet cold_rates, warm_rates, speedups;
  StageStatsSnapshot last_cold_io, last_warm_io;
  int64_t last_warm_hits = 0, last_warm_decoded = 0;
  for (int rep = 0; rep < reps; ++rep) {
    DecodeCacheOptions cache_options;
    cache_options.capacity_bytes = 2ull << 30;  // Working set stays resident.
    cache_options.shards = 8;
    auto cache = std::make_shared<DecodeCache>(cache_options);
    const uint64_t dataset_id = cache->RegisterDataset();

    LoaderPipelineOptions options;
    options.io_threads = 2;
    options.decode_threads = 4;
    options.max_epochs = 1;
    options.scan_policy = std::make_shared<FixedScanPolicy>(scan_group);
    options.decode_cache = cache;
    options.cache_dataset_id = dataset_id;

    // One pipeline per pass; the shared cache is what survives — the same
    // shape as a training loop that rebuilds its loader every epoch.
    const PassResult cold = RunPass(disk.get(), options);
    const PassResult warm = RunPass(disk.get(), options);
    cold_rates.Add(cold.rate);
    warm_rates.Add(warm.rate);
    speedups.Add(warm.rate / cold.rate);
    last_cold_io = cold.io;
    last_warm_io = warm.io;
    last_warm_hits = warm.io.cache_hits;
    last_warm_decoded = warm.decode.items;
  }

  TablePrinter table({"pass", "img/s (median)", "cv", "io backend",
                      "syscalls/record", "fetched MB", "fetch p50 (ms)",
                      "fetch p99 (ms)"});
  table.AddRow({"cold", StrFormat("%.0f", cold_rates.Median()),
                StrFormat("%.3f", Cv(cold_rates)), last_cold_io.io_backend,
                StrFormat("%.2f", last_cold_io.syscalls_per_record()),
                StrFormat("%.2f", last_cold_io.bytes / 1e6),
                StrFormat("%.3f", last_cold_io.fetch_p50_sec * 1e3),
                StrFormat("%.3f", last_cold_io.fetch_p99_sec * 1e3)});
  table.AddRow({"warm", StrFormat("%.0f", warm_rates.Median()),
                StrFormat("%.3f", Cv(warm_rates)), last_warm_io.io_backend,
                StrFormat("%.2f", last_warm_io.syscalls_per_record()),
                StrFormat("%.2f", last_warm_io.bytes / 1e6),
                StrFormat("%.3f", last_warm_io.fetch_p50_sec * 1e3),
                StrFormat("%.3f", last_warm_io.fetch_p99_sec * 1e3)});
  table.Print();
  printf("warm pass: %lld cache hits, %lld records decoded\n",
         static_cast<long long>(last_warm_hits),
         static_cast<long long>(last_warm_decoded));

  ReportMetric("epoch_1/images_per_sec", reps, 0, last_cold_io.bytes,
               cold_rates.Median(), last_cold_io.syscalls_per_record());
  ReportMetric("epoch_2/images_per_sec", reps, 0, last_warm_io.bytes,
               warm_rates.Median(), last_warm_io.syscalls_per_record());
  ReportMetric("epoch_1/images_per_sec_cv", reps, 0, 0, Cv(cold_rates));
  ReportMetric("epoch_2/images_per_sec_cv", reps, 0, 0, Cv(warm_rates));
  // Storage-fetch service tail of the cold (fetching) pass; the warm pass is
  // cache-served, so its percentiles are zero by construction.
  ReportMetric("epoch_1/fetch_p50_sec", reps, 0, 0,
               last_cold_io.fetch_p50_sec);
  ReportMetric("epoch_1/fetch_p99_sec", reps, 0, 0,
               last_cold_io.fetch_p99_sec);
  const double speedup = speedups.Median();
  ReportMetric("epoch2_vs_epoch1_speedup", reps, 0, 0, speedup);
  ReportMetric("epoch2_vs_epoch1_speedup_cv", reps, 0, 0, Cv(speedups));
  printf("\nwarm vs cold speedup: median %.1fx over %d reps (cv %.3f; "
         "expected >= 5x: warm passes skip both the storage fetch and the "
         "JPEG decode)\n",
         speedup, reps, Cv(speedups));
  if (speedup < 5.0) {
    printf("WARNING: speedup below the 5x bar for a cache-resident working "
           "set\n");
  }

  // Backend sweep: partial-quality reads (the scatter-gather regime: header
  // + group-range segments per record) through each storage backend this
  // kernel supports. The threads backend deliberately spends one pread per
  // segment; uring coalesces adjacent segments into vectored SQEs and
  // batches submission, so its syscalls-per-record must be >= 4x lower.
  printf("\nstorage backend sweep: partial reads (scan group 2), "
         "8-deep windows, submit batch 8\n");
  std::vector<IoBackend> backends = {IoBackend::kSync, IoBackend::kThreads};
  if (UringIoSupported()) backends.push_back(IoBackend::kUring);
  TablePrinter backend_table({"backend", "img/s (median)", "cv",
                              "syscalls/record", "mean submit batch"});
  for (const IoBackend backend : backends) {
    LoaderPipelineOptions options;
    options.io_threads = 2;
    options.io_inflight = 8;
    options.io_submit_batch = 8;
    options.decode = false;  // I/O-side comparison; decode only adds noise.
    // Enough tickets per worker that batched submission can amortize even
    // on the shrunk smoke dataset (2 records would flush every batch at
    // end-of-stream otherwise).
    options.max_epochs = SmokeMode() ? 32 : 1;
    options.scan_policy = std::make_shared<FixedScanPolicy>(2);
    options.io_backend = backend;
    SampleSet backend_rates;
    StageStatsSnapshot io;
    for (int rep = 0; rep < reps; ++rep) {
      const PassResult pass = RunPass(disk.get(), options);
      backend_rates.Add(pass.rate);
      io = pass.io;
    }
    const std::string name = IoBackendName(backend);
    backend_table.AddRow({io.io_backend,
                          StrFormat("%.0f", backend_rates.Median()),
                          StrFormat("%.3f", Cv(backend_rates)),
                          StrFormat("%.2f", io.syscalls_per_record()),
                          StrFormat("%.2f", io.mean_submit_batch())});
    ReportMetric("backend_" + name + "/images_per_sec", reps, 0, io.bytes,
                 backend_rates.Median(), io.syscalls_per_record());
    ReportMetric("backend_" + name + "/syscalls_per_record", reps, 0, 0,
                 io.syscalls_per_record());
  }
  backend_table.Print();
  if (!UringIoSupported()) {
    printf("uring tier skipped: kernel does not support io_uring\n");
  }
  return 0;
}
