// Ablations for the design choices called out in DESIGN.md §4:
//  (a) prefetch queue depth — how much buffering hides I/O burstiness;
//  (b) loader decode threads — when decode, not I/O, binds the pipeline;
//  (c) storage profile — HDD vs SSD vs Ceph-cluster for the same workload;
//  (d) compute speed — the paper's "faster compute makes PCR savings larger"
//      claim (§4.2), swept to a hypothetical 4x accelerator.
#include <cstdio>

#include "bench_common.h"
#include "loader/scan_policy.h"

using namespace pcr;
using namespace pcr::bench;

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  printf("Pipeline ablations (imagenet_like)\n\n");
  const DatasetSpec spec = DatasetSpec::ImageNetLike();
  DatasetHandle handle = GetDataset(spec);
  RecordSource* source = handle.pcr.get();
  const DeviceProfile calibrated = CalibratedStorage(source, spec.name);

  auto run = [&](DeviceProfile storage, ComputeProfile compute,
                 PipelineSimOptions options, int group) {
    TrainingPipelineSim sim(source, storage, compute, DecodeCostModel{},
                            options);
    FixedScanPolicy policy(group);
    return sim.SimulateEpoch(&policy);
  };

  // (a) Prefetch depth.
  printf("(a) prefetch queue depth (baseline quality, ResNet18)\n");
  TablePrinter ta({"depth", "images/s", "stall s/epoch"});
  for (int depth : {1, 2, 4, 8, 16, 64}) {
    PipelineSimOptions options;
    options.prefetch_depth = depth;
    const auto r = run(calibrated, ComputeProfile::ResNet18(), options, 10);
    ReportMetric("prefetch_depth_" + std::to_string(depth) + "/images_per_sec",
                 r.images, r.elapsed_seconds,
                 static_cast<double>(r.bytes_read), r.images_per_sec);
    ta.AddRow({StrFormat("%d", depth), StrFormat("%.0f", r.images_per_sec),
               StrFormat("%.2f", r.stall_seconds)});
  }
  ta.Print();

  // (b) Loader threads: decode becomes the bottleneck when starved.
  printf("\n(b) loader decode threads (scan group 1, ShuffleNet)\n");
  TablePrinter tb({"threads", "images/s", "binding resource"});
  for (int threads : {1, 4, 16, 64, 256}) {
    PipelineSimOptions options;
    options.loader_threads = threads;
    const auto r = run(calibrated, ComputeProfile::ShuffleNetV2(), options, 1);
    const double io_rate =
        calibrated.read_bandwidth_bytes_per_sec / source->MeanImageBytes(1);
    const double decode_rate =
        threads / DecodeCostModel{}.ProgressiveImageSeconds(1, 10);
    const char* binding =
        r.images_per_sec >= 0.95 * ComputeProfile::ShuffleNetV2().ClusterRate()
            ? "compute"
            : (decode_rate < io_rate ? "decode" : "storage");
    tb.AddRow({StrFormat("%d", threads), StrFormat("%.0f", r.images_per_sec),
               binding});
  }
  tb.Print();

  // (c) Storage profile.
  printf("\n(c) storage profile (baseline vs scan 1, ResNet18)\n");
  TablePrinter tc({"profile", "baseline img/s", "scan1 img/s", "speedup"});
  for (const DeviceProfile& profile :
       {DeviceProfile::Hdd7200(), DeviceProfile::SataSsd(),
        DeviceProfile::CephCluster(), calibrated}) {
    const auto full = run(profile, ComputeProfile::ResNet18(),
                          PipelineSimOptions{}, 10);
    const auto low = run(profile, ComputeProfile::ResNet18(),
                         PipelineSimOptions{}, 1);
    tc.AddRow({profile.name == "ceph_cluster" &&
                       &profile == &calibrated
                   ? "calibrated"
                   : profile.name,
               StrFormat("%.0f", full.images_per_sec),
               StrFormat("%.0f", low.images_per_sec),
               StrFormat("%.2fx", low.images_per_sec / full.images_per_sec)});
  }
  tc.Print();

  // (d) Compute speed sweep: faster accelerators widen PCR's advantage.
  printf("\n(d) compute multiplier (calibrated storage)\n");
  TablePrinter td({"compute x", "baseline img/s", "scan1 img/s",
                   "PCR speedup"});
  for (double mult : {0.5, 1.0, 2.0, 4.0}) {
    const auto full = run(calibrated, ComputeProfile::FastAccelerator(mult),
                          PipelineSimOptions{}, 10);
    const auto low = run(calibrated, ComputeProfile::FastAccelerator(mult),
                         PipelineSimOptions{}, 1);
    ReportMetric("compute_x" + std::to_string(mult).substr(0, 3) +
                     "/pcr_speedup",
                 full.images, full.elapsed_seconds + low.elapsed_seconds, 0,
                 low.images_per_sec / full.images_per_sec);
    td.AddRow({StrFormat("%.1f", mult),
               StrFormat("%.0f", full.images_per_sec),
               StrFormat("%.0f", low.images_per_sec),
               StrFormat("%.2fx", low.images_per_sec / full.images_per_sec)});
  }
  td.Print();
  printf("\npaper check (§4.2): \"the current speedups may in fact become "
         "significantly larger with faster compute\" — the speedup column "
         "grows with the compute multiplier until storage binds both "
         "sides.\n");
  return 0;
}
