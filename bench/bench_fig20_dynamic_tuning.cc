// Figures 20, 21, 22: gradient-cosine dynamic tuning.
//  - Fig 20: HAM10000 with no-mix / 50% / 85% mixtures vs baseline.
//  - Fig 21: CelebA with no-mix vs baseline (tuning every 30 epochs, first
//    tune at epoch 5).
//  - Fig 22: the training-rate trace of a dynamically-tuned CelebA run
//    (rates jump when the tuner switches to lower scans).
#include <cstdio>

#include "bench_common.h"
#include "tune/dynamic_tuner.h"

using namespace pcr;
using namespace pcr::bench;

namespace {

struct DynamicRun {
  std::string name;
  double seconds = 0;
  double accuracy = 0;
  std::string schedule;
  std::vector<std::pair<int, double>> rate_trace;  // (epoch, img/s).
};

DynamicRun RunWithCosineTuner(RecordSource* source,
                              const CachedDataset& cached,
                              const ModelProxy& model,
                              const TrainRecipe& recipe,
                              const DeviceProfile& storage,
                              double mixture_weight, const char* name) {
  DynamicRun run;
  run.name = name;
  auto classifier =
      model.MakeClassifier(cached.feature_dim(), cached.num_classes(), 11);
  Trainer trainer(&cached, classifier.get(), recipe.trainer);
  TrainingPipelineSim sim(source, storage, model.compute, DecodeCostModel{},
                          PipelineSimOptions{});
  CosineTunerOptions tuner_options;
  tuner_options.first_tune_epoch = 5;
  tuner_options.tune_every = 30;
  tuner_options.mixture_weight = mixture_weight;
  CosineTuner tuner(tuner_options);

  size_t events_seen = 0;
  for (int e = 0; e < recipe.epochs; ++e) {
    auto policy = tuner.Advise(&trainer);
    const auto epoch_sim = sim.SimulateEpoch(policy.get());
    run.seconds += epoch_sim.elapsed_seconds;
    trainer.RunEpochMixture(policy.get());
    if (e % 10 == 0) run.rate_trace.emplace_back(e, epoch_sim.images_per_sec);
    while (events_seen < tuner.events().size()) {
      const auto& event = tuner.events()[events_seen++];
      run.schedule += StrFormat("e%d->g%d ", event.epoch, event.chosen_group);
    }
  }
  run.accuracy = trainer.TestAccuracy();
  return run;
}

DynamicRun RunBaseline(RecordSource* source, const CachedDataset& cached,
                       const ModelProxy& model, const TrainRecipe& recipe,
                       const DeviceProfile& storage) {
  DynamicRun run;
  run.name = "baseline(10)";
  run.schedule = "fixed 10";
  auto classifier =
      model.MakeClassifier(cached.feature_dim(), cached.num_classes(), 11);
  Trainer trainer(&cached, classifier.get(), recipe.trainer);
  TrainingPipelineSim sim(source, storage, model.compute, DecodeCostModel{},
                          PipelineSimOptions{});
  FixedScanPolicy policy(10);
  for (int e = 0; e < recipe.epochs; ++e) {
    const auto epoch_sim = sim.SimulateEpoch(&policy);
    run.seconds += epoch_sim.elapsed_seconds;
    trainer.RunEpoch(10);
    if (e % 10 == 0) run.rate_trace.emplace_back(e, epoch_sim.images_per_sec);
  }
  run.accuracy = trainer.TestAccuracy();
  return run;
}

void PrintRuns(const char* title, const std::vector<DynamicRun>& runs) {
  printf("\n== %s ==\n", title);
  TablePrinter table({"strategy", "sim time (s)", "final acc (%)", "speedup",
                      "tuning schedule"});
  for (const auto& run : runs) {
    ReportMetric(std::string(title) + "/" + run.name + "/sim_seconds", 1,
                 run.seconds, 0, run.accuracy);
    table.AddRow({run.name, StrFormat("%.1f", run.seconds),
                  StrFormat("%.1f", run.accuracy),
                  StrFormat("%.2fx", runs[0].seconds / run.seconds),
                  run.schedule});
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  printf("Figures 20-22: gradient-cosine dynamic tuning\n");

  // ---- Fig 20: HAM10000, both models, with mixtures.
  {
    const DatasetSpec spec = DatasetSpec::Ham10000Like();
    DatasetHandle handle = GetDataset(spec);
    const TrainRecipe recipe = TrainRecipe::ForDataset(spec.name);
    const DeviceProfile storage =
        CalibratedStorage(handle.pcr.get(), spec.name);
    for (const ModelProxy& model :
         {ModelProxy::ResNet18(), ModelProxy::ShuffleNetV2()}) {
      CachedDatasetOptions cache_options;
      cache_options.scan_groups = {1, 2, 5, 10};
      cache_options.features = model.features;
      auto cached =
          CachedDataset::Build(handle.pcr.get(), cache_options).MoveValue();
      std::vector<DynamicRun> runs;
      runs.push_back(
          RunBaseline(handle.pcr.get(), cached, model, recipe, storage));
      runs.push_back(RunWithCosineTuner(handle.pcr.get(), cached, model,
                                        recipe, storage, 0.0,
                                        "dynamic (no mix)"));
      runs.push_back(RunWithCosineTuner(handle.pcr.get(), cached, model,
                                        recipe, storage, 10.0,
                                        "dynamic mix 50%"));
      runs.push_back(RunWithCosineTuner(handle.pcr.get(), cached, model,
                                        recipe, storage, 100.0,
                                        "dynamic mix 85%"));
      PrintRuns(("Fig 20: ham10000_like / " + model.name).c_str(), runs);
    }
  }

  // ---- Fig 21 + 22: CelebA, no-mix dynamic with rate trace.
  {
    const DatasetSpec spec = DatasetSpec::CelebAHqLike();
    DatasetHandle handle = GetDataset(spec);
    const TrainRecipe recipe = TrainRecipe::ForDataset(spec.name);
    const DeviceProfile storage =
        CalibratedStorage(handle.pcr.get(), spec.name);
    for (const ModelProxy& model :
         {ModelProxy::ResNet18(), ModelProxy::ShuffleNetV2()}) {
      CachedDatasetOptions cache_options;
      cache_options.scan_groups = {1, 2, 5, 10};
      cache_options.features = model.features;
      auto cached =
          CachedDataset::Build(handle.pcr.get(), cache_options).MoveValue();
      std::vector<DynamicRun> runs;
      runs.push_back(
          RunBaseline(handle.pcr.get(), cached, model, recipe, storage));
      runs.push_back(RunWithCosineTuner(handle.pcr.get(), cached, model,
                                        recipe, storage, 0.0,
                                        "dynamic (no mix)"));
      PrintRuns(("Fig 21: celebahq_like / " + model.name).c_str(), runs);

      if (model.name == "ShuffleNet") {
        printf("\nFig 22: training-rate trace (celebahq_like, ShuffleNet)\n");
        TablePrinter trace({"epoch", "dynamic rate (img/s)",
                            "baseline rate (img/s)"});
        for (size_t i = 0; i < runs[1].rate_trace.size(); ++i) {
          trace.AddRow(
              {StrFormat("%d", runs[1].rate_trace[i].first),
               StrFormat("%.0f", runs[1].rate_trace[i].second),
               StrFormat("%.0f", runs[0].rate_trace[i].second)});
        }
        trace.Print();
      }
    }
  }

  printf("\npaper checks: dynamic tuning beats the baseline in time at "
         "matched accuracy; the rate trace jumps when the tuner drops to a "
         "lower scan group; mixtures tolerate lower scans.\n");
  return 0;
}
