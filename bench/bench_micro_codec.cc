// google-benchmark microbenchmarks of the JPEG codec and PCR assembly path:
// encode, lossless transcode, full and partial decode, scan indexing, record
// prefix assembly, and MSSIM. These are the real-CPU costs behind the
// decode-overhead discussion of §A.5.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "arch/arch.h"
#include "arch/kernels.h"
#include "core/pcr_format.h"
#include "data/dataset_spec.h"
#include "image/metrics.h"
#include "jpeg/codec.h"
#include "jpeg/dct.h"
#include "jpeg/reference_codec.h"
#include "jpeg/scan_parser.h"
#include "util/random.h"

namespace pcr {
namespace {

Image TestImage(int w, int h) {
  DatasetSpec spec = DatasetSpec::TestTiny();
  spec.base_width = w;
  spec.base_height = h;
  spec.size_jitter = 0;
  return GenerateImage(spec, 1, 42);
}

const Image& SharedImage() {
  static const Image img = TestImage(320, 240);
  return img;
}

std::string SharedBaseline() {
  jpeg::EncodeOptions options;
  options.quality = 90;
  return jpeg::Encode(SharedImage(), options).MoveValue();
}

std::string SharedProgressive() {
  return jpeg::TranscodeToProgressive(SharedBaseline()).MoveValue();
}

void BM_EncodeBaseline(benchmark::State& state) {
  const Image& img = SharedImage();
  jpeg::EncodeOptions options;
  options.quality = 90;
  for (auto _ : state) {
    benchmark::DoNotOptimize(jpeg::Encode(img, options).MoveValue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeBaseline);

void BM_EncodeProgressive(benchmark::State& state) {
  const Image& img = SharedImage();
  jpeg::EncodeOptions options;
  options.quality = 90;
  options.progressive = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(jpeg::Encode(img, options).MoveValue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeProgressive);

void BM_TranscodeToProgressive(benchmark::State& state) {
  const std::string baseline = SharedBaseline();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        jpeg::TranscodeToProgressive(baseline).MoveValue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TranscodeToProgressive);

void BM_DecodeBaseline(benchmark::State& state) {
  const std::string baseline = SharedBaseline();
  for (auto _ : state) {
    benchmark::DoNotOptimize(jpeg::Decode(baseline).MoveValue());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(baseline.size()));
}
BENCHMARK(BM_DecodeBaseline);

// The decode-worker configuration: one long-lived DecodeScratch reused
// across images (allocation-free steady state).
void BM_DecodeBaselineWithScratch(benchmark::State& state) {
  const std::string baseline = SharedBaseline();
  jpeg::DecodeScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(jpeg::Decode(baseline, &scratch).MoveValue());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(baseline.size()));
}
BENCHMARK(BM_DecodeBaselineWithScratch);

// The pre-optimization scalar path (bit-by-bit Huffman, no short-circuits,
// per-pixel render), kept as the parity oracle — benchmarked here so every
// run carries its own fast-vs-reference speedup ratio.
void BM_DecodeReferenceBaseline(benchmark::State& state) {
  const std::string baseline = SharedBaseline();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        jpeg::ReferenceCodec::Decode(baseline).MoveValue());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(baseline.size()));
}
BENCHMARK(BM_DecodeReferenceBaseline);

// Partial decode cost by scan prefix (the §A.5 progressive-overhead curve).
void BM_DecodeProgressivePrefix(benchmark::State& state) {
  const int scans = static_cast<int>(state.range(0));
  const std::string progressive = SharedProgressive();
  const auto index = jpeg::IndexScans(progressive).MoveValue();
  const std::string prefix =
      jpeg::AssemblePrefix(progressive, index, scans);
  for (auto _ : state) {
    benchmark::DoNotOptimize(jpeg::Decode(prefix).MoveValue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeProgressivePrefix)->Arg(1)->Arg(2)->Arg(5)->Arg(10);

void BM_IndexScans(benchmark::State& state) {
  const std::string progressive = SharedProgressive();
  for (auto _ : state) {
    benchmark::DoNotOptimize(jpeg::IndexScans(progressive).MoveValue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexScans);

// --- Per-arch kernel micros --------------------------------------------------
// One benchmark per compiled kernel tier so a single run carries its own
// scalar-vs-SIMD ratios; CI's regression gate checks those ratios (they are
// machine-independent) on top of the median-normalized absolute rates.
// Unsupported tiers skip with an error so the JSON row carries no rate.

bool TierRunnable(arch::Isa isa, benchmark::State& state) {
  if (!arch::IsaSupported(isa) || arch::KernelsFor(isa).isa != isa) {
    state.SkipWithError("kernel tier not supported on this CPU/build");
    return false;
  }
  return true;
}

// The 8x8 IDCT alone on a dense block (no short-circuit path).
void BM_IdctBlock(benchmark::State& state, arch::Isa isa) {
  if (!TierRunnable(isa, state)) return;
  Rng rng(0x1dc7);
  alignas(32) int32_t block[64];
  for (int i = 0; i < 64; ++i) {
    block[i] = static_cast<int32_t>(rng.UniformInt(-4095, 4095));
  }
  alignas(32) uint8_t out[64];
  const auto idct = arch::KernelsFor(isa).idct8x8;
  for (auto _ : state) {
    idct(block, out, 8);
    benchmark::DoNotOptimize(out);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_IdctBlock, scalar, arch::Isa::kScalar);
BENCHMARK_CAPTURE(BM_IdctBlock, sse2, arch::Isa::kSse2);
BENCHMARK_CAPTURE(BM_IdctBlock, avx2, arch::Isa::kAvx2);

// One 1024-pixel YCbCr->RGB row conversion.
void BM_YcbcrRow(benchmark::State& state, arch::Isa isa) {
  if (!TierRunnable(isa, state)) return;
  constexpr int kW = 1024;
  Rng rng(0xc01e);
  std::vector<uint8_t> y(kW), cb(kW), cr(kW), rgb(3 * kW);
  for (int i = 0; i < kW; ++i) {
    y[i] = static_cast<uint8_t>(rng.Uniform(256));
    cb[i] = static_cast<uint8_t>(rng.Uniform(256));
    cr[i] = static_cast<uint8_t>(rng.Uniform(256));
  }
  const auto row = arch::KernelsFor(isa).ycbcr_row;
  for (auto _ : state) {
    row(y.data(), cb.data(), cr.data(), rgb.data(), kW);
    benchmark::DoNotOptimize(rgb.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * int64_t{3 * kW});
}
BENCHMARK_CAPTURE(BM_YcbcrRow, scalar, arch::Isa::kScalar);
BENCHMARK_CAPTURE(BM_YcbcrRow, sse2, arch::Isa::kSse2);
BENCHMARK_CAPTURE(BM_YcbcrRow, avx2, arch::Isa::kAvx2);

// Full-image baseline decode with the kernel path pinned (the number the
// AVX2-vs-scalar CI ratio gate reads). Restores env-resolved dispatch after.
void BM_DecodeArch(benchmark::State& state, arch::Isa isa) {
  if (!TierRunnable(isa, state)) return;
  const std::string baseline = SharedBaseline();
  jpeg::DecodeScratch scratch;
  arch::ForceIsa(isa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(jpeg::Decode(baseline, &scratch).MoveValue());
  }
  arch::ResetDispatchForTest();
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(baseline.size()));
}
BENCHMARK_CAPTURE(BM_DecodeArch, scalar, arch::Isa::kScalar);
BENCHMARK_CAPTURE(BM_DecodeArch, sse2, arch::Isa::kSse2);
BENCHMARK_CAPTURE(BM_DecodeArch, avx2, arch::Isa::kAvx2);

void BM_Msssim(benchmark::State& state) {
  const Image a = SharedImage();
  const Image b = jpeg::Decode(SharedBaseline()).MoveValue();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Msssim(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Msssim);

}  // namespace
}  // namespace pcr

// Hand-rolled BENCHMARK_MAIN so the binary accepts the suite-wide --smoke
// and --json flags (or PCR_BENCH_SMOKE=1): smoke mode is translated to a
// tiny --benchmark_min_time, and --json <path> to google-benchmark's own
// JSON file output (same artifact role as bench_common's ReportMetric
// report: name, iterations, wall time, bytes, items/s per benchmark),
// before the remaining flags are handed to the google-benchmark parser.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char min_time[] = "--benchmark_min_time=0.001";
  static char out_format[] = "--benchmark_out_format=json";
  static std::string out_flag;
  bool smoke = false;
  const char* env_smoke = std::getenv("PCR_BENCH_SMOKE");
  if (env_smoke != nullptr && std::strcmp(env_smoke, "0") != 0 &&
      std::strcmp(env_smoke, "") != 0) {
    smoke = true;
  }
  for (auto it = args.begin(); it != args.end();) {
    if (std::strcmp(*it, "--smoke") == 0) {
      smoke = true;
      it = args.erase(it);
    } else if (std::strcmp(*it, "--json") == 0 && it + 1 != args.end()) {
      out_flag = std::string("--benchmark_out=") + *(it + 1);
      it = args.erase(it, it + 2);
    } else {
      ++it;
    }
  }
  if (smoke) args.push_back(min_time);
  if (!out_flag.empty()) {
    args.push_back(out_flag.data());
    args.push_back(out_format);
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  // Which kernel tier the non-pinned benchmarks ran on, and what the CPU
  // offers — lands in the JSON context block next to the run metadata.
  benchmark::AddCustomContext("kernel_path", pcr::arch::Active().name);
  benchmark::AddCustomContext("cpu_features", pcr::arch::CpuFeatureString());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
