// Appendix A.2 validation + the Figure 1 layout comparison.
//
// (1) Lemma A.2/A.3 and Theorem A.5: simulated epoch throughput and speedup
//     vs the closed-form predictions W/E[s(x,g)] and E[s(x)]/E[s(x,g)].
// (2) Lemma A.4: X <= min(Xc, Xg) across scan groups and compute speeds.
// (3) Figure 1: on an HDD profile, File-per-Image random reads vs Record /
//     PCR sequential reads; and PCR's key property — reduced quality with
//     *sequential* access (the record baseline must read everything).
#include <cstdio>

#include "bench_common.h"
#include "core/file_per_image.h"
#include "sim/queueing.h"
#include "storage/sim_env.h"

using namespace pcr;
using namespace pcr::bench;

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  printf("Appendix A.2 queueing-model validation\n\n");
  const DatasetSpec spec = DatasetSpec::ImageNetLike();
  DatasetHandle handle = GetDataset(spec, /*with_record_format=*/true,
                                    /*with_fpi_format=*/true);
  RecordSource* source = handle.pcr.get();

  // (1) Throughput & speedup vs closed form (pure I/O, no decode model).
  DeviceProfile storage = CalibratedStorage(source, spec.name);
  storage.seek_latency_sec = 0;
  storage.per_op_latency_sec = 0;
  IoModel io;
  io.bandwidth_bytes_per_sec = storage.read_bandwidth_bytes_per_sec;

  printf("(1) Lemma A.2/A.3, Theorem A.5: simulated vs predicted\n");
  TablePrinter t1({"scan", "E[s(x,g)] bytes", "Xg pred (img/s)",
                   "Xg sim (img/s)", "speedup pred", "speedup sim"});
  const double mean_full = source->MeanImageBytes(10);
  double sim_full_time = 0;
  std::vector<double> sim_times;
  for (int g : {1, 2, 5, 10}) {
    PipelineSimOptions options;
    options.model_decode_cost = false;
    TrainingPipelineSim sim(source, storage,
                            ComputeProfile::FastAccelerator(1000.0),
                            DecodeCostModel{}, options);
    FixedScanPolicy policy(g);
    const auto result = sim.SimulateEpoch(&policy);
    sim_times.push_back(result.elapsed_seconds);
    if (g == 10) sim_full_time = result.elapsed_seconds;
  }
  int idx = 0;
  for (int g : {1, 2, 5, 10}) {
    const double mean_g = source->MeanImageBytes(g);
    ReportMetric("group_" + std::to_string(g) + "/sim_images_per_sec",
                 source->num_images(), sim_times[idx], mean_g,
                 source->num_images() / sim_times[idx]);
    t1.AddRow({StrFormat("%d", g), StrFormat("%.0f", mean_g),
               StrFormat("%.0f", DataPipelineThroughput(io, mean_g)),
               StrFormat("%.0f", source->num_images() / sim_times[idx]),
               StrFormat("%.2fx", DataReductionSpeedup(mean_full, mean_g)),
               StrFormat("%.2fx", sim_full_time / sim_times[idx])});
    ++idx;
  }
  t1.Print();

  // (2) Lemma A.4: the pipeline never exceeds min(Xc, Xg).
  printf("\n(2) Lemma A.4: X <= min(Xc, Xg)\n");
  TablePrinter t2({"scan", "Xc (img/s)", "Xg (img/s)", "min(Xc,Xg)",
                   "X simulated", "bound holds"});
  for (int g : {1, 5, 10}) {
    for (double mult : {0.25, 1.0, 4.0}) {
      ComputeProfile compute = ComputeProfile::FastAccelerator(mult);
      PipelineSimOptions options;
      options.model_decode_cost = false;
      TrainingPipelineSim sim(source, storage, compute, DecodeCostModel{},
                              options);
      FixedScanPolicy policy(g);
      const auto result = sim.SimulateEpoch(&policy);
      const double xg = DataPipelineThroughput(io, source->MeanImageBytes(g));
      const double bound = PipelineThroughputBound(compute.ClusterRate(), xg);
      t2.AddRow({StrFormat("%d", g),
                 StrFormat("%.0f", compute.ClusterRate()),
                 StrFormat("%.0f", xg), StrFormat("%.0f", bound),
                 StrFormat("%.0f", result.images_per_sec),
                 result.images_per_sec <= bound * 1.01 ? "yes" : "NO"});
    }
  }
  t2.Print();

  // (3) Figure 1: layout comparison on a 7200RPM HDD.
  printf("\n(3) Figure 1: access-pattern cost by layout (HDD, virtual "
         "clock)\n");
  Env* env = Env::Default();
  VirtualClock clock;
  SimEnv hdd(DeviceProfile::Hdd7200(), &clock);
  PCR_CHECK(hdd.ImportTree(env, handle.built.pcr_dir, "hdd/pcr").ok());
  PCR_CHECK(hdd.ImportTree(env, handle.built.record_dir, "hdd/rec").ok());
  PCR_CHECK(
      hdd.ImportTree(env, handle.built.file_per_image_dir, "hdd/fpi").ok());
  auto pcr = PcrDataset::Open(&hdd, "hdd/pcr").MoveValue();
  auto rec = RecordDataset::Open(&hdd, "hdd/rec").MoveValue();
  auto fpi = FilePerImageDataset::Open(&hdd, "hdd/fpi").MoveValue();

  TablePrinter t3({"layout", "quality", "epoch read time (s)",
                   "seeks", "bytes"});
  auto run_epoch = [&](RecordSource* src, const char* name,
                       const char* quality, int group) {
    hdd.device()->ResetStats();
    const double t0 = clock.NowSeconds();
    for (int r = 0; r < src->num_records(); ++r) {
      src->ReadRecord(r, group).MoveValue();
    }
    const auto& stats = hdd.device()->stats();
    t3.AddRow({name, quality,
               StrFormat("%.2f", clock.NowSeconds() - t0),
               StrFormat("%lld", static_cast<long long>(stats.seeks)),
               HumanBytes(static_cast<double>(stats.bytes_read))});
  };
  run_epoch(fpi.get(), "file-per-image", "full", 1);
  run_epoch(rec.get(), "record (TFRecord-like)", "full", 1);
  run_epoch(pcr.get(), "PCR", "full (g10)", 10);
  run_epoch(rec.get(), "record (TFRecord-like)", "low (must read all)", 1);
  run_epoch(pcr.get(), "PCR", "low (g2, prefix)", 2);
  t3.Print();
  printf("\npaper checks: file-per-image pays a seek per image; record and "
         "PCR amortize seeks; only PCR reads fewer bytes at reduced "
         "quality while staying sequential.\n");
  return 0;
}
