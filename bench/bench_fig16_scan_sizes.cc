// Figure 16: "The size in bytes of various levels of scans read." Per
// dataset, the cumulative bytes of scan groups 1..10 per record (IQR over
// records), plus scan group 0 (metadata only, ~100 bytes/image overheadless).
// Paper checks: roughly linear growth, clustering from chroma subsampling
// (groups 3-4 and 8-9 add little), and "all 10 scans can require over an
// order of magnitude more bandwidth than 1-2 scans".
#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"
#include "util/string_util.h"

using namespace pcr;
using namespace pcr::bench;

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  printf("Figure 16: cumulative bytes read per record, by scan group\n\n");
  for (const DatasetSpec& spec :
       {DatasetSpec::ImageNetLike(), DatasetSpec::Ham10000Like(),
        DatasetSpec::CarsLike(), DatasetSpec::CelebAHqLike()}) {
    DatasetHandle handle = GetDataset(spec);
    PcrDataset* ds = handle.pcr.get();

    printf("-- %s --\n", spec.name.c_str());
    TablePrinter table({"scan", "median bytes", "p25", "p75",
                        "x vs scan 1", "delta vs prev"});
    double scan1_median = 0, prev_median = 0;
    for (int g = 1; g <= ds->num_scan_groups(); ++g) {
      SampleSet sizes;
      for (int r = 0; r < ds->num_records(); ++r) {
        sizes.Add(static_cast<double>(ds->RecordReadBytes(r, g)));
      }
      const double median = sizes.Median();
      if (g == 1) scan1_median = median;
      ReportMetric(spec.name + "/group_" + std::to_string(g) +
                       "/median_record_bytes",
                   ds->num_records(), 0, median, 0);
      table.AddRow({StrFormat("%d", g),
                    HumanBytes(median),
                    HumanBytes(sizes.Iqr25()),
                    HumanBytes(sizes.Iqr75()),
                    StrFormat("%.2fx", median / scan1_median),
                    g == 1 ? "-" : HumanBytes(median - prev_median)});
      prev_median = median;
    }
    table.Print();
    const double ratio =
        prev_median / scan1_median;  // prev_median now = group 10.
    printf("full/scan1 byte ratio: %.1fx %s\n\n", ratio,
           ratio > 4.0 ? "(matches paper's 'order of magnitude more than "
                         "1-2 scans' trend)"
                       : "");
  }
  return 0;
}
