// Figure 15 + §A.4: dataset encoding cost — static re-encoding at several
// qualities vs a single lossless PCR conversion, and the space-amplification
// comparison (the Progressive-GAN example: multiple static copies vs one
// PCR).
//
// Times here are real wall-clock times of our own codec on a subset of the
// ImageNet-like dataset; the paper's check is relative: PCR conversion costs
// about as much as ONE static re-encode (1.13x-2.05x), far less than the sum
// over quality levels, and avoids any space amplification.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "jpeg/codec.h"

using namespace pcr;
using namespace pcr::bench;

namespace {
double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  printf("Figure 15 / §A.4: encoding time and space, static re-encoding vs "
         "PCR conversion\n\n");
  const DatasetSpec spec = DatasetSpec::ImageNetLike();
  // This bench times our own codec directly (no dataset cache), so the
  // central smoke clamps don't apply; shrink the sample here instead.
  const int sample = SmokeMode() ? 16 : 192;

  // Generate the source JPEGs once (plays the role of the original dataset).
  std::vector<std::string> originals;
  double original_bytes = 0;
  for (int i = 0; i < sample; ++i) {
    const Image img = GenerateImage(spec, ClassForImage(spec, i),
                                    spec.seed * 100000 + i);
    jpeg::EncodeOptions options;
    options.quality = spec.jpeg_quality;
    originals.push_back(jpeg::Encode(img, options).MoveValue());
    original_bytes += originals.back().size();
  }

  TablePrinter table({"conversion", "wall time (s)", "output bytes",
                      "space vs original"});
  double static_total_time = 0, static_total_bytes = 0;

  // Static re-encoding at the paper's quality ladder.
  for (int quality : {50, 75, 90, 95}) {
    const double t0 = NowSec();
    double bytes = 0;
    for (const auto& original : originals) {
      const Image img = jpeg::Decode(Slice(original)).MoveValue();
      jpeg::EncodeOptions options;
      options.quality = quality;
      bytes += jpeg::Encode(img, options).MoveValue().size();
    }
    const double elapsed = NowSec() - t0;
    static_total_time += elapsed;
    static_total_bytes += bytes;
    table.AddRow({StrFormat("static re-encode q=%d", quality),
                  StrFormat("%.2f", elapsed), HumanBytes(bytes),
                  StrFormat("%.2fx", bytes / original_bytes)});
  }

  // PCR conversion: one lossless transcode, all qualities served.
  double pcr_time, pcr_bytes = 0;
  {
    const double t0 = NowSec();
    for (const auto& original : originals) {
      pcr_bytes += jpeg::TranscodeToProgressive(original).MoveValue().size();
    }
    pcr_time = NowSec() - t0;
    table.AddRow({"PCR (lossless transcode)", StrFormat("%.2f", pcr_time),
                  HumanBytes(pcr_bytes),
                  StrFormat("%.2fx", pcr_bytes / original_bytes)});
  }
  table.AddRow({"static total (4 qualities)",
                StrFormat("%.2f", static_total_time),
                HumanBytes(static_total_bytes),
                StrFormat("%.2fx", static_total_bytes / original_bytes)});
  table.Print();

  ReportMetric("static_reencode_total/wall_seconds", sample * 4,
               static_total_time, static_total_bytes,
               sample * 4 / static_total_time);
  ReportMetric("pcr_transcode/wall_seconds", sample, pcr_time, pcr_bytes,
               sample / pcr_time);
  printf("\nPCR vs one static encode: %.2fx time (paper: 1.13x-2.05x)\n",
         pcr_time / (static_total_time / 4));
  printf("PCR vs all static encodes: %.2fx time, %.2fx space\n",
         pcr_time / static_total_time, pcr_bytes / static_total_bytes);
  printf("paper check: one PCR conversion serves every quality; the static "
         "approach pays each ladder step in both time and space "
         "(1.5x-40x amplification in the paper's §A.4 example).\n");
  return 0;
}
