// Figure 18 + §A.5: reader microbenchmark. A PCR loader reading CelebAHQ
// images from a simulated 400 MB/s SSD:
//  (a) mean throughput per scan (bandwidth-bound: fewer bytes -> more img/s)
//  (b) predicted throughput from mean scan-size ratios (Theorem A.5)
//  (c) per-record batch times (latency spikes grow with scans)
// plus the §A.5 decode-overhead measurement using our real codec (paper:
// progressive decode costs ~40-50% over baseline).
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "core/record_dataset.h"
#include "jpeg/codec.h"
#include "loader/decode_cache.h"
#include "loader/pipeline.h"
#include "storage/sim_env.h"
#include "util/stats.h"

using namespace pcr;
using namespace pcr::bench;

namespace {
double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  printf("Figure 18 / §A.5: PCR reader microbenchmark on a simulated SATA "
         "SSD\n\n");
  const DatasetSpec spec = DatasetSpec::CelebAHqLike();
  DatasetHandle handle = GetDataset(spec, /*with_record_format=*/true);

  // Stage the datasets into a virtual-clock SSD.
  VirtualClock clock;
  SimEnv ssd(DeviceProfile::SataSsd(), &clock);
  PCR_CHECK(ssd.ImportTree(Env::Default(), handle.built.pcr_dir, "ssd/pcr").ok());
  PCR_CHECK(
      ssd.ImportTree(Env::Default(), handle.built.record_dir, "ssd/rec").ok());
  auto pcr = PcrDataset::Open(&ssd, "ssd/pcr").MoveValue();
  auto rec = RecordDataset::Open(&ssd, "ssd/rec").MoveValue();

  // (a)+(b): throughput per scan, measured on the simulated device vs
  // predicted by scaling the scan-10 rate with mean size ratios.
  TablePrinter table({"scan", "throughput (img/s)", "predicted (img/s)",
                      "mean batch time (ms)", "p95 batch time (ms)"});
  double scan10_rate = 0;
  std::vector<double> rates(11, 0.0);
  std::vector<SampleSet> batch_times(11);
  for (int g = 1; g <= 10; ++g) {
    int images = 0;
    const double t0 = clock.NowSeconds();
    for (int r = 0; r < pcr->num_records(); ++r) {
      const double b0 = clock.NowSeconds();
      auto batch = pcr->ReadRecord(r, g).MoveValue();
      batch_times[g].Add((clock.NowSeconds() - b0) * 1e3);
      images += batch.size();
    }
    rates[g] = images / (clock.NowSeconds() - t0);
  }
  scan10_rate = rates[10];
  const double mean10 = pcr->MeanImageBytes(10);
  for (int g = 1; g <= 10; ++g) {
    ReportMetric("group_" + std::to_string(g) + "/sim_images_per_sec",
                 pcr->num_images(), 0, pcr->MeanImageBytes(g), rates[g]);
  }
  for (int g = 1; g <= 10; ++g) {
    const double predicted = scan10_rate * mean10 / pcr->MeanImageBytes(g);
    table.AddRow({StrFormat("%d", g), StrFormat("%.0f", rates[g]),
                  StrFormat("%.0f", predicted),
                  StrFormat("%.2f", batch_times[g].Mean()),
                  StrFormat("%.2f", batch_times[g].Percentile(95))});
  }
  table.Print();

  // Baseline JPEG records for comparison (paper: within 4% of scan 10).
  {
    int images = 0;
    const double t0 = clock.NowSeconds();
    for (int r = 0; r < rec->num_records(); ++r) {
      images += rec->ReadRecord(r, 1).MoveValue().size();
    }
    const double rate = images / (clock.NowSeconds() - t0);
    printf("\nbaseline-JPEG records: %.0f img/s (%.1f%% of scan-10 rate; "
           "paper: within ~4%% — ours differ a bit more because per-scan "
           "optimized Huffman tables make our progressive files ~8-10%% "
           "smaller than baseline)\n",
           rate, 100.0 * rate / scan10_rate);
  }

  // §A.5 decode overhead: real wall-clock decode speed of our codec.
  {
    auto full = pcr->ReadRecord(0, 10).MoveValue();
    auto rec_batch = rec->ReadRecord(0, 1).MoveValue();
    const int n = full.size();
    double t0 = NowSec();
    for (int i = 0; i < rec_batch.size(); ++i) {
      jpeg::Decode(rec_batch.jpeg(i)).MoveValue();
    }
    const double baseline_rate = n / (NowSec() - t0);
    t0 = NowSec();
    for (int i = 0; i < full.size(); ++i) {
      jpeg::Decode(full.jpeg(i)).MoveValue();
    }
    const double progressive_rate = n / (NowSec() - t0);
    ReportMetric("decode/baseline_images_per_sec", n, n / baseline_rate, 0,
                 baseline_rate);
    ReportMetric("decode/progressive_images_per_sec", n,
                 n / progressive_rate, 0, progressive_rate);
    printf("\n§A.5 decode overhead (our codec, 1 core): baseline %.0f img/s, "
           "progressive(10 scans) %.0f img/s -> %.0f%% overhead.\n"
           "note: the paper measures 40-50%% with PIL/OpenCV (libjpeg's "
           "multi-pass progressive bookkeeping); our decoder accumulates "
           "coefficients in one buffer, so its overhead is lower. The "
           "pipeline simulator's DecodeCostModel is calibrated to the "
           "paper's numbers, not to this codec.\n",
           baseline_rate, progressive_rate,
           100.0 * (baseline_rate / progressive_rate - 1.0));
  }

  // Staged wall-clock pipeline: real fetch + parallel decode threads over
  // the on-disk PCR dataset, with per-stage busy time and stall attribution.
  // Wall-clock rates are noisy, so each point repeats 5x and reports the
  // median with the coefficient of variation alongside.
  {
    printf("\nstaged LoaderPipeline (wall clock, real filesystem): "
           "2 io x 4-deep submission windows + 4 decode threads, "
           "median of 5 reps\n");
    auto disk = PcrDataset::Open(Env::Default(), handle.built.pcr_dir)
                    .MoveValue();
    const int batches_to_pull =
        SmokeMode() ? std::min(6, disk->num_records())
                    : std::min(48, 2 * disk->num_records());
    const int reps = 5;
    TablePrinter stage_table({"scan", "img/s", "cv", "backend",
                              "syscalls/rec", "io busy (s)",
                              "decode busy (s)", "io util", "mean inflight",
                              "fetch p50 (ms)", "fetch p99 (ms)",
                              "stall io-bound (s)",
                              "stall decode-bound (s)"});
    for (int g : {1, 10}) {
      SampleSet rep_rates;
      StageStatsSnapshot io, decode;
      double io_stall = 0, decode_stall = 0;
      for (int rep = 0; rep < reps; ++rep) {
        LoaderPipelineOptions options;
        options.io_threads = 2;
        options.io_inflight = 4;
        options.decode_threads = 4;
        options.scan_policy = std::make_shared<FixedScanPolicy>(g);
        LoaderPipeline pipeline(disk.get(), options);
        int images = 0;
        const double t0 = NowSec();
        for (int b = 0; b < batches_to_pull; ++b) {
          auto batch = pipeline.Next();
          PCR_CHECK(batch.ok()) << batch.status();
          images += batch->size();
        }
        const double elapsed = NowSec() - t0;
        pipeline.Stop();
        rep_rates.Add(images / elapsed);
        io = pipeline.io_stats();
        decode = pipeline.decode_stats();
        io_stall = pipeline.io_stall_seconds();
        decode_stall = pipeline.decode_stall_seconds();
      }
      const double cv =
          rep_rates.Mean() > 0 ? rep_rates.Stddev() / rep_rates.Mean() : 0.0;
      ReportMetric("pipeline/group_" + std::to_string(g) + "/images_per_sec",
                   reps, 0, static_cast<double>(decode.bytes),
                   rep_rates.Median(), io.syscalls_per_record());
      ReportMetric("pipeline/group_" + std::to_string(g) +
                       "/images_per_sec_cv",
                   reps, 0, 0, cv);
      ReportMetric("pipeline/group_" + std::to_string(g) + "/fetch_p50_sec",
                   reps, 0, 0, io.fetch_p50_sec);
      ReportMetric("pipeline/group_" + std::to_string(g) + "/fetch_p99_sec",
                   reps, 0, 0, io.fetch_p99_sec);
      stage_table.AddRow(
          {StrFormat("%d", g), StrFormat("%.0f", rep_rates.Median()),
           StrFormat("%.3f", cv), io.io_backend,
           StrFormat("%.2f", io.syscalls_per_record()),
           StrFormat("%.3f", io.busy_seconds),
           StrFormat("%.3f", decode.busy_seconds),
           StrFormat("%.2f", io.utilization()),
           StrFormat("%.2f", io.mean_in_flight),
           StrFormat("%.3f", io.fetch_p50_sec * 1e3),
           StrFormat("%.3f", io.fetch_p99_sec * 1e3),
           StrFormat("%.3f", io_stall), StrFormat("%.3f", decode_stall)});
    }
    stage_table.Print();
    printf("on a local filesystem the decode stage dominates (io util is "
           "low); the simulated-SSD table above shows the bandwidth-bound "
           "regime the paper measures.\n");

    // Same pipeline with the decoded-record cache: pass 1 populates (all
    // misses), pass 2 is served from the cache — the multi-epoch regime
    // where every record short-circuits past both stages.
    printf("\nstaged LoaderPipeline + DecodeCache: cold (populate) vs warm "
           "pass\n");
    TablePrinter cache_table({"scan", "cold img/s", "warm img/s",
                              "warm hits", "warm decoded", "cache MB"});
    for (int g : {1, 10}) {
      DecodeCacheOptions cache_options;
      cache_options.capacity_bytes = 1ull << 30;
      auto cache = std::make_shared<DecodeCache>(cache_options);
      const uint64_t dataset_id = cache->RegisterDataset();
      double rates[2] = {0, 0};
      StageStatsSnapshot warm_io, warm_decode;
      for (int pass = 0; pass < 2; ++pass) {
        LoaderPipelineOptions options;
        options.io_threads = 2;
        options.decode_threads = 4;
        options.max_epochs = 1;
        options.scan_policy = std::make_shared<FixedScanPolicy>(g);
        options.decode_cache = cache;
        options.cache_dataset_id = dataset_id;
        LoaderPipeline pipeline(disk.get(), options);
        int images = 0;
        const double t0 = NowSec();
        for (;;) {
          auto batch = pipeline.Next();
          if (!batch.ok()) break;
          images += batch->size();
        }
        rates[pass] = images / (NowSec() - t0);
        if (pass == 1) {
          warm_io = pipeline.io_stats();
          warm_decode = pipeline.decode_stats();
        }
      }
      ReportMetric("pipeline/group_" + std::to_string(g) +
                       "/warm_cache_images_per_sec",
                   disk->num_images(), 0, 0, rates[1]);
      cache_table.AddRow(
          {StrFormat("%d", g), StrFormat("%.0f", rates[0]),
           StrFormat("%.0f", rates[1]),
           StrFormat("%lld", static_cast<long long>(warm_io.cache_hits)),
           StrFormat("%lld", static_cast<long long>(warm_decode.items)),
           StrFormat("%.1f", warm_io.cache_bytes / 1e6)});
    }
    cache_table.Print();
  }

  printf("\npaper checks: throughput inversely proportional to bytes/scan; "
         "prediction matches measurement; batch-time spikes grow with "
         "scans; baseline ~= scan 10.\n");
  return 0;
}
