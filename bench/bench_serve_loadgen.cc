// Serving-daemon load generator: N synthetic open-loop clients against one
// PcrDaemon on a unix socket, versus the same N workloads as independent
// in-process loaders, on both data planes the daemon serves:
//
//   compressed plane (decode=false) — the storage-disaggregation shape: the
//     daemon does partial reads + record assembly and ships JPEG streams;
//     trainers decode client-side. Payloads are scan-group-sized, so the
//     socket adds little, and the aggregate is gated at >= 0.85x of the
//     in-process loaders.
//   decoded plane (decode=true) — the daemon also decodes and ships raw
//     pixels. Every pixel crosses the socket plus serialize/parse copies,
//     so this plane trails in-process loading by design on one node; it is
//     reported (and floor-gated loosely) as the motivation for the
//     shared-memory data plane follow-on, not gated at 0.85x.
//
// Reported metrics (CI gates in BENCH_pr9.json):
//   serve_8c_jpeg/items_per_sec      aggregate served images/sec, compressed
//   inprocess_8x_jpeg/items_per_sec  its no-daemon baseline (>= 0.85x gate)
//   serve_8c/fairness_ratio          min/max per-client throughput under
//                                    DRR, decoded plane (gated >= 0.7)
//   serve_8c/batch_p99_sec           p99 request->reply seconds (the value
//                                    rides in the items_per_sec slot, like
//                                    bench_cache_epochs' fetch_p99 rows)
//
// Each client drives a seeded Poisson arrival process (open loop: requests
// are issued on schedule, not on completion) bounded by the stream's
// granted in-flight cap, with one sender and one receiver thread — the
// PcrClient split-call thread model. All phases run cache-warm (one warm
// epoch first), so the comparison isolates serving overhead: framing,
// socket copies, admission, and DRR arbitration.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "loader/decode_cache.h"
#include "loader/pipeline.h"
#include "loader/prefix_cache.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "util/logging.h"
#include "util/stats.h"

using namespace pcr;
using namespace pcr::bench;

namespace {

constexpr int kClients = 8;
constexpr int kInflight = 8;
constexpr double kMeanInterarrival = 100e-6;  // Saturating open-loop rate.

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Counting semaphore bounding each client's in-flight requests.
class InflightGate {
 public:
  explicit InflightGate(int slots) : slots_(slots) {}
  void Acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return slots_ > 0; });
    --slots_;
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++slots_;
    }
    cv_.notify_one();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int slots_;
};

struct ClientResult {
  int64_t images = 0;
  uint64_t bytes = 0;
  double wall_seconds = 0;
};

/// One open-loop client: `total_batches` NextBatch requests issued on a
/// seeded Poisson schedule (bounded by the granted in-flight cap), replies
/// drained by a second thread. With `shm_views` the receiver consumes
/// zero-copy ServedBatch views (touching every pixel once, as a trainer
/// handing buffers to a framework would) instead of deep-copied replies.
ClientResult RunOpenLoopClient(serve::PcrClient* client, uint64_t stream_id,
                               int total_batches, uint64_t seed,
                               bool shm_views) {
  ClientResult result;
  InflightGate gate(kInflight);
  std::atomic<bool> failed{false};

  const double t0 = NowSec();
  std::thread sender([&] {
    std::mt19937_64 rng(seed);
    std::exponential_distribution<double> interarrival(
        1.0 / kMeanInterarrival);
    double next_arrival = t0;
    for (int k = 0; k < total_batches && !failed.load(); ++k) {
      next_arrival += interarrival(rng);
      const double now = NowSec();
      if (next_arrival > now) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(next_arrival - now));
      }
      gate.Acquire();
      const Status sent = client->SendNextBatchRequest(stream_id);
      if (!sent.ok()) {
        failed.store(true);
        break;
      }
    }
  });
  // Defeat-the-optimizer sink for the view path's pixel reads.
  volatile uint64_t checksum = 0;
  for (int k = 0; k < total_batches && !failed.load(); ++k) {
    if (shm_views) {
      auto batch = client->ReceiveServedBatch(stream_id);
      gate.Release();
      if (!batch.ok()) {
        PCR_LOG(Error) << "client receive failed: " << batch.status();
        failed.store(true);
        break;
      }
      PCR_CHECK(!batch->end_of_stream) << "stream ended early";
      for (const serve::ServedImageView& view : batch->images()) {
        // Touch one byte per page: the consume cost of a framework that
        // ingests the buffer in place (e.g. wraps it as a tensor and DMAs
        // it device-side) rather than re-copying it through userspace.
        uint64_t sum = 0;
        for (uint64_t off = 0; off < view.length; off += 4096) {
          sum += view.data[off];
        }
        checksum = checksum + sum;
        result.bytes += view.length;
        ++result.images;
      }
      batch->Release();  // Return the slot before the next wait.
    } else {
      auto batch = client->ReceiveBatch(stream_id);
      gate.Release();
      if (!batch.ok()) {
        PCR_LOG(Error) << "client receive failed: " << batch.status();
        failed.store(true);
        break;
      }
      PCR_CHECK(!batch->end_of_stream) << "stream ended early";
      result.images += static_cast<int64_t>(batch->images.size() +
                                            batch->jpegs.size());
      for (const serve::WireImage& img : batch->images) {
        result.bytes += img.pixels.size();
      }
      for (const std::string& jpeg : batch->jpegs) {
        result.bytes += jpeg.size();
      }
    }
  }
  sender.join();
  PCR_CHECK(!failed.load()) << "open-loop client failed";
  result.wall_seconds = NowSec() - t0;
  return result;
}

struct PhaseResult {
  double rate = 0;
  double wall = 0;
  uint64_t bytes = 0;
  double min_rate = 0;
  double max_rate = 0;
  double fairness = 0;
  double batch_p50 = 0;
  double batch_p99 = 0;
  double queue_wait_p99 = 0;
  uint64_t shm_batches = 0;
  uint64_t bytes_copied = 0;
};

/// Full daemon phase on one data plane: start, warm one epoch, run the
/// 8-client open loop, collect daemon-side latency stats, stop. `shm`
/// negotiates the shared-memory plane (decoded streams) and consumes
/// zero-copy views client-side.
PhaseResult RunServePhase(Env* env, const std::string& dataset_dir,
                          bool decode, int epochs, bool shm = false) {
  serve::DaemonOptions options;
  options.socket_path = "/tmp/pcr_lg_" + std::to_string(::getpid()) +
                        (shm ? "_s" : (decode ? "_d" : "_j")) + ".sock";
  options.max_streams = kClients + 1;
  options.max_inflight_per_stream = kInflight;
  options.decode_cache_bytes = 2ull << 30;
  options.prefix_cache_bytes = 1ull << 30;
  options.dataset_cache_share = 1.0;  // One dataset: full budget.
  options.io_threads = 1;
  // Compressed streams pass decode through; extra stage threads only add
  // scheduler pressure (this box serializes everything through few cores).
  options.decode_threads = decode ? 2 : 1;
  // One delivery token per stream: with cache-warm pipelines the serve
  // threads are arbitration-bound before they are copy-bound, and a token
  // pool smaller than the client count would throttle both planes alike
  // while blurring the per-plane service-cost difference this bench gates.
  options.serve_tokens = kClients;
  auto daemon = serve::PcrDaemon::Start(env, options).MoveValue();

  int num_records = 0;
  {
    // Warm the shared caches: one stream, one epoch, drained to completion.
    auto warm =
        serve::PcrClient::Connect(daemon->socket_path(), "warm").MoveValue();
    serve::OpenStreamRequest open;
    open.dataset_dir = dataset_dir;
    open.max_epochs = 1;
    open.shuffle = false;
    open.decode = decode;
    auto stream = warm->OpenStream(open).MoveValue();
    num_records = static_cast<int>(stream.num_records);
    for (int k = 0; k < num_records; ++k) {
      auto batch = warm->NextBatch(stream.stream_id).MoveValue();
      PCR_CHECK(!batch.end_of_stream);
    }
    warm->CloseStream(stream.stream_id).MoveValue();
  }

  const int batches_per_client = num_records * epochs;
  std::vector<std::unique_ptr<serve::PcrClient>> clients;
  std::vector<uint64_t> stream_ids;
  for (int i = 0; i < kClients; ++i) {
    auto client = serve::PcrClient::Connect(
                      daemon->socket_path(),
                      "loadgen-" + std::to_string(i))
                      .MoveValue();
    serve::OpenStreamRequest open;
    open.dataset_dir = dataset_dir;
    open.max_epochs = static_cast<uint32_t>(epochs);
    open.shuffle = true;
    open.seed = 1000 + static_cast<uint64_t>(i);
    open.decode = decode;
    open.max_inflight = kInflight;
    open.shm_plane = shm;
    auto stream = client->OpenStream(open).MoveValue();
    PCR_CHECK(!shm || stream.shm_slots > 0)
        << "daemon did not grant the shm plane";
    stream_ids.push_back(stream.stream_id);
    clients.push_back(std::move(client));
  }

  std::vector<ClientResult> results(kClients);
  const double t0 = NowSec();
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        results[i] = RunOpenLoopClient(clients[i].get(), stream_ids[i],
                                       batches_per_client,
                                       /*seed=*/7000 + i, /*shm_views=*/shm);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  PhaseResult phase;
  phase.wall = NowSec() - t0;
  {
    // Tail latency from the daemon's serve-stage rings (request receipt ->
    // reply written), worst stream wins.
    auto stats = clients[0]->GetStats().MoveValue();
    for (const serve::StreamStats& s : stats.streams) {
      phase.batch_p50 = std::max(phase.batch_p50, s.batch_p50_sec);
      phase.batch_p99 = std::max(phase.batch_p99, s.batch_p99_sec);
      phase.queue_wait_p99 =
          std::max(phase.queue_wait_p99, s.queue_wait_p99_sec);
      phase.shm_batches += s.shm_batches;
      phase.bytes_copied += s.bytes_copied;
    }
  }
  int64_t images = 0;
  for (int i = 0; i < kClients; ++i) {
    clients[i]->CloseStream(stream_ids[i]).MoveValue();
    images += results[i].images;
    phase.bytes += results[i].bytes;
    const double rate = results[i].images / results[i].wall_seconds;
    phase.min_rate = i == 0 ? rate : std::min(phase.min_rate, rate);
    phase.max_rate = std::max(phase.max_rate, rate);
  }
  phase.rate = images / phase.wall;
  phase.fairness =
      phase.max_rate > 0 ? phase.min_rate / phase.max_rate : 0.0;
  daemon->Stop();
  return phase;
}

/// The no-daemon baseline: the same N workloads as in-process pipelines
/// over shared caches, warmed the same way.
PhaseResult RunInprocessPhase(Env* env, const std::string& dataset_dir,
                              bool decode, int epochs) {
  auto disk = PcrDataset::Open(env, dataset_dir).MoveValue();
  DecodeCacheOptions cache_options;
  cache_options.capacity_bytes = 2ull << 30;
  auto cache = std::make_shared<DecodeCache>(cache_options);
  auto prefixes =
      std::make_shared<PrefixCache>(PrefixCacheOptions{1ull << 30});
  const uint64_t dataset_id = cache->RegisterDataset();
  const int scan_group = disk->num_scan_groups();

  auto make_options = [&](uint64_t seed, int max_epochs, bool shuffle) {
    LoaderPipelineOptions options;
    options.io_threads = 1;
    options.decode_threads = decode ? 2 : 1;
    options.decode = decode;
    options.max_epochs = max_epochs;
    options.shuffle = shuffle;
    options.seed = seed;
    options.scan_policy = std::make_shared<FixedScanPolicy>(scan_group);
    options.decode_cache = cache;
    options.cache_dataset_id = dataset_id;
    options.prefix_cache = prefixes;
    options.prefix_dataset_id = dataset_id;
    return options;
  };
  {
    LoaderPipeline warm(disk.get(), make_options(1, 1, false));
    while (warm.Next().ok()) {
    }
  }
  std::vector<int64_t> images(kClients, 0);
  std::vector<uint64_t> bytes(kClients, 0);
  const double t0 = NowSec();
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        LoaderPipeline pipeline(disk.get(),
                                make_options(1000 + i, epochs, true));
        for (;;) {
          auto batch = pipeline.Next();
          if (!batch.ok()) break;
          images[i] += batch->size();
          for (const Image& img : batch->images) {
            bytes[i] += img.size_bytes();
          }
          bytes[i] += batch->jpeg_backing.size();
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  PhaseResult phase;
  phase.wall = NowSec() - t0;
  int64_t total = 0;
  for (int i = 0; i < kClients; ++i) {
    total += images[i];
    phase.bytes += bytes[i];
  }
  phase.rate = total / phase.wall;
  return phase;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --plane before InitBench (which aborts on unknown flags).
  // socket: PR 9 socket-plane phases only; shm: shared-memory phase only;
  // both (default): everything, including the within-run shm/socket ratio.
  std::string plane = "both";
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--plane=", 8) == 0) {
      plane = argv[i] + 8;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (plane != "socket" && plane != "shm" && plane != "both") {
    fprintf(stderr, "unknown --plane=%s (want socket|shm|both)\n",
            plane.c_str());
    return 2;
  }
  const bool run_socket = plane != "shm";
  const bool run_shm = plane != "socket";
  pcr::bench::InitBench(argc, argv);
  // More epochs under --smoke: the shrunk dataset leaves so few batches per
  // epoch that per-stream fixed costs (pipeline spin-up, first-batch
  // latency) would otherwise swamp the steady-state rates the CI gates.
  const int epochs = SmokeMode() ? 16 : 3;
  // The compressed plane moves ~25x less data per epoch; run it longer so
  // its walls are long enough for the CI ratio gate to be stable.
  const int epochs_jpeg = SmokeMode() ? 16 : 12;

  printf("Serving daemon vs in-process loaders: %d open-loop clients, "
         "%d epochs\n\n",
         kClients, epochs);
  const DatasetSpec spec = DatasetSpec::CelebAHqLike();
  DatasetHandle handle = GetDataset(spec);
  // The decoded phases get a wider smoke dataset. The global smoke shrink
  // floors this spec at 16 images = 2 records per epoch, and with streams
  // that short both decoded planes are epoch-restart-bound — the shm/socket
  // ratio the CI gates would measure shared restart overhead, not the
  // per-plane service cost it is meant to compare. Raising the class count
  // lifts the shrink floor (it scales with num_classes) to 64 images = 8
  // records per epoch, long enough for steady state; labels are the only
  // thing classes change and this bench never trains. The compressed-plane
  // phases keep the standard smoke dataset so their serve/in-process gate
  // stays on the same workload it has been green on since PR 9. Outside
  // smoke mode both specs build the identical dataset.
  DatasetSpec decoded_spec = spec;
  if (SmokeMode()) decoded_spec.num_classes = 16;
  DatasetHandle decoded_handle = GetDataset(decoded_spec);
  const std::string dataset_dir = handle.built.pcr_dir;
  const std::string decoded_dir = decoded_handle.built.pcr_dir;
  Env* env = Env::Default();

  PhaseResult serve_jpeg, local_jpeg, serve_px, local_px, serve_shm;
  if (run_socket) {
    serve_jpeg = RunServePhase(env, dataset_dir, /*decode=*/false,
                               epochs_jpeg);
    local_jpeg = RunInprocessPhase(env, dataset_dir, /*decode=*/false,
                                   epochs_jpeg);
    serve_px = RunServePhase(env, decoded_dir, /*decode=*/true, epochs);
    local_px = RunInprocessPhase(env, decoded_dir, /*decode=*/true, epochs);
  }
  if (run_shm) {
    serve_shm = RunServePhase(env, decoded_dir, /*decode=*/true, epochs,
                              /*shm=*/true);
  }

  printf("%-34s %12s %10s %9s\n", "phase", "images/sec", "wall (s)",
         "MiB");
  const auto row = [](const char* name, const PhaseResult& r) {
    printf("%-34s %12.1f %10.2f %9.1f\n", name, r.rate, r.wall,
           r.bytes / (1024.0 * 1024.0));
  };
  if (run_socket) {
    row("serve 8c (compressed plane)", serve_jpeg);
    row("in-process 8x (compressed)", local_jpeg);
    row("serve 8c (decoded, socket)", serve_px);
    row("in-process 8x (decoded)", local_px);
  }
  if (run_shm) row("serve 8c (decoded, shm plane)", serve_shm);
  if (run_socket) {
    printf("\ncompressed-plane serve/in-process ratio: %.2fx (gated)\n",
           local_jpeg.rate > 0 ? serve_jpeg.rate / local_jpeg.rate : 0.0);
    printf("decoded-socket   serve/in-process ratio: %.2fx\n",
           local_px.rate > 0 ? serve_px.rate / local_px.rate : 0.0);
    printf("fairness (decoded, socket): min %.1f max %.1f images/sec "
           "(ratio %.2f)\n",
           serve_px.min_rate, serve_px.max_rate, serve_px.fairness);
    printf("latency (compressed): batch p50 %.2f ms  p99 %.2f ms  "
           "queue-wait p99 %.2f ms\n",
           serve_jpeg.batch_p50 * 1e3, serve_jpeg.batch_p99 * 1e3,
           serve_jpeg.queue_wait_p99 * 1e3);
    printf("latency (decoded):    batch p50 %.2f ms  p99 %.2f ms  "
           "queue-wait p99 %.2f ms\n",
           serve_px.batch_p50 * 1e3, serve_px.batch_p99 * 1e3,
           serve_px.queue_wait_p99 * 1e3);
  }
  if (run_shm) {
    printf("latency (shm):        batch p50 %.2f ms  p99 %.2f ms  "
           "queue-wait p99 %.2f ms\n",
           serve_shm.batch_p50 * 1e3, serve_shm.batch_p99 * 1e3,
           serve_shm.queue_wait_p99 * 1e3);
    printf("shm plane: %llu descriptor batches, %.1f MiB copied "
           "daemon-side (one placement copy per batch)\n",
           static_cast<unsigned long long>(serve_shm.shm_batches),
           serve_shm.bytes_copied / (1024.0 * 1024.0));
    printf("fairness (shm): min %.1f max %.1f images/sec (ratio %.2f)\n",
           serve_shm.min_rate, serve_shm.max_rate, serve_shm.fairness);
  }
  if (run_socket && run_shm) {
    printf("\nshm/socket decoded-plane ratio: %.2fx (gated >= 3x "
           "within-run)\n",
           serve_px.rate > 0 ? serve_shm.rate / serve_px.rate : 0.0);
  }

  if (run_socket) {
    ReportMetric("serve_8c_jpeg/items_per_sec", kClients, serve_jpeg.wall,
                 static_cast<double>(serve_jpeg.bytes), serve_jpeg.rate);
    ReportMetric("inprocess_8x_jpeg/items_per_sec", kClients,
                 local_jpeg.wall, static_cast<double>(local_jpeg.bytes),
                 local_jpeg.rate);
    ReportMetric("serve_8c_jpeg/batch_p99_sec", kClients, serve_jpeg.wall, 0,
                 serve_jpeg.batch_p99);
    ReportMetric("serve_8c/items_per_sec", kClients, serve_px.wall,
                 static_cast<double>(serve_px.bytes), serve_px.rate);
    ReportMetric("inprocess_8x/items_per_sec", kClients, local_px.wall,
                 static_cast<double>(local_px.bytes), local_px.rate);
    ReportMetric("serve_8c/client_min/items_per_sec", 1, serve_px.wall, 0,
                 serve_px.min_rate);
    ReportMetric("serve_8c/client_max/items_per_sec", 1, serve_px.wall, 0,
                 serve_px.max_rate);
    ReportMetric("serve_8c/fairness_ratio", kClients, serve_px.wall, 0,
                 serve_px.fairness);
    ReportMetric("serve_8c/batch_p50_sec", kClients, serve_px.wall, 0,
                 serve_px.batch_p50);
    ReportMetric("serve_8c/batch_p99_sec", kClients, serve_px.wall, 0,
                 serve_px.batch_p99);
    ReportMetric("serve_8c/queue_wait_p99_sec", kClients, serve_px.wall, 0,
                 serve_px.queue_wait_p99);
  }
  if (run_shm) {
    ReportMetric("serve_8c_shm/items_per_sec", kClients, serve_shm.wall,
                 static_cast<double>(serve_shm.bytes), serve_shm.rate);
    ReportMetric("serve_8c_shm/fairness_ratio", kClients, serve_shm.wall, 0,
                 serve_shm.fairness);
    ReportMetric("serve_8c_shm/batch_p50_sec", kClients, serve_shm.wall, 0,
                 serve_shm.batch_p50);
    ReportMetric("serve_8c_shm/batch_p99_sec", kClients, serve_shm.wall, 0,
                 serve_shm.batch_p99);
    ReportMetric("serve_8c_shm/queue_wait_p99_sec", kClients, serve_shm.wall,
                 0, serve_shm.queue_wait_p99);
    ReportMetric("serve_8c_shm/shm_batches", kClients, serve_shm.wall, 0,
                 static_cast<double>(serve_shm.shm_batches));
  }
  return 0;
}
