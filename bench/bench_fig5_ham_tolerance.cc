// Figure 5: HAM10000 — "While ResNet is unaffected by additional
// compression, ShuffleNet requires higher quality data (at least scan group
// 5) for higher accuracy." Also reproduces the Figure 9 observation that
// HAM10000, having the largest images, is the most bandwidth-bottlenecked.
#include <cstdio>

#include "bench_common.h"

using namespace pcr;
using namespace pcr::bench;

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  printf("Figure 5: HAM10000 tolerance differs by model\n");

  TimeToAccuracyConfig config;
  config.scan_groups = {1, 2, 5, 10};
  config.repeats = 2;

  const DatasetSpec spec = DatasetSpec::Ham10000Like();
  std::vector<std::vector<TimeToAccuracyResult>> all;
  for (const ModelProxy& model :
       {ModelProxy::ResNet18(), ModelProxy::ShuffleNetV2()}) {
    const auto results = RunTimeToAccuracy(spec, model, config);
    PrintTimeToAccuracy(spec.name + " / " + model.name, results);
    all.push_back(results);
  }

  // Quantify the paper's claim: the accuracy drop of group 1 vs baseline
  // should be small for ResNet and larger for ShuffleNet.
  const double resnet_gap = all[0].back().final_accuracy -
                            all[0].front().final_accuracy;
  const double shuffle_gap = all[1].back().final_accuracy -
                             all[1].front().final_accuracy;
  printf("\naccuracy drop at group 1 vs baseline: ResNet %.1f pts, "
         "ShuffleNet %.1f pts %s\n",
         resnet_gap, shuffle_gap,
         shuffle_gap > resnet_gap ? "(paper shape: ShuffleNet needs higher "
                                    "quality data)"
                                  : "(UNEXPECTED)");
  return 0;
}
