// Figures 6, 29, 30: task difficulty vs compression tolerance on the Cars
// dataset. The full make-model-year task (24 classes here) is fine-grained
// and needs high-quality scans; remapping labels to Make-Only (6 classes)
// and the binary Is-Corvette task closes the gap between scan groups — the
// same PCR dataset serves all three tasks ("a fixed PCR encoding can support
// multiple tasks at optimal quality by simply changing the scan group").
#include <cstdio>

#include "bench_common.h"

using namespace pcr;
using namespace pcr::bench;

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  printf("Figure 6/29/30: Cars task difficulty vs scan-group tolerance\n");

  const DatasetSpec spec = DatasetSpec::CarsLike();
  struct Task {
    const char* name;
    std::function<int64_t(int64_t)> map;
  };
  const Task tasks[] = {
      {"original multiclass (24 classes)", nullptr},
      {"make-only (6 classes)", CarsMakeOnlyLabel},
      {"binary is-corvette", CarsIsCorvetteLabel},
  };

  TimeToAccuracyConfig config;
  config.scan_groups = {1, 2, 5, 10};
  config.repeats = 1;

  std::vector<double> gaps;
  for (const auto& task : tasks) {
    config.label_map = task.map;
    const auto results =
        RunTimeToAccuracy(spec, ModelProxy::ResNet18(), config);
    PrintTimeToAccuracy(std::string("cars_like / ResNet18 / ") + task.name,
                        results);
    gaps.push_back(results.back().final_accuracy -
                   results.front().final_accuracy);
  }

  printf("\ngroup1-vs-baseline accuracy gap: multiclass %.1f pts, "
         "make-only %.1f pts, is-corvette %.1f pts\n",
         gaps[0], gaps[1], gaps[2]);
  printf("paper check: \"the gap between scan groups closes as the task is "
         "made more simple\" -> gaps should shrink left to right.\n");
  return 0;
}
