#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "arch/arch.h"
#include "loader/scan_policy.h"
#include "storage/io_backend.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace pcr::bench {

namespace {

bool g_smoke = false;

// --json state. Metrics accumulate in-process and flush once at exit.
struct JsonMetric {
  std::string name;
  double iterations = 0;
  double wall_seconds = 0;
  double bytes = 0;
  double items_per_sec = 0;
  double syscalls_per_record = -1;  // < 0: not an I/O-stage metric.
};
std::string g_json_path;
std::string g_bench_name;
std::vector<JsonMetric>& JsonMetrics() {
  // Intentionally leaked: the vector is first touched after InitBench has
  // registered FlushJsonReport with atexit, so a plain static would be
  // destroyed (reverse registration order) before the flush reads it.
  static std::vector<JsonMetric>* metrics = new std::vector<JsonMetric>();
  return *metrics;
}

// Minimal JSON string escaping: metric names are ASCII identifiers we
// control, but keep quotes/backslashes safe anyway.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Shrinks a dataset spec for --smoke: few small images in small records,
/// but still enough of each class for the training proxies to run.
DatasetSpec SmokeSpec(DatasetSpec spec) {
  spec.images_per_record = std::min(spec.images_per_record, 8);
  const int floor_images =
      std::max(4 * spec.num_classes, 2 * spec.images_per_record);
  spec.num_images = std::min(spec.num_images, floor_images);
  spec.base_width = std::min(spec.base_width, 160);
  spec.base_height = std::min(spec.base_height, 120);
  return spec;
}

}  // namespace

void InitBench(int argc, char** argv) {
  const char* env_smoke = std::getenv("PCR_BENCH_SMOKE");
  if (env_smoke != nullptr && std::strcmp(env_smoke, "0") != 0 &&
      std::strcmp(env_smoke, "") != 0) {
    g_smoke = true;
  }
  g_bench_name = argv[0];
  const size_t slash = g_bench_name.find_last_of('/');
  if (slash != std::string::npos) g_bench_name.erase(0, slash + 1);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      g_json_path = argv[++i];
    } else {
      fprintf(stderr,
              "usage: %s [--smoke] [--json <path>]\n  unknown flag: %s\n",
              argv[0], argv[i]);
      std::exit(2);
    }
  }
  if (g_smoke) {
    fprintf(stderr, "[bench] smoke mode: minimal iterations, shrunk data\n");
  }
  if (!g_json_path.empty()) std::atexit(FlushJsonReport);
}

bool SmokeMode() { return g_smoke; }

void ReportMetric(const std::string& name, double iterations,
                  double wall_seconds, double bytes, double items_per_sec,
                  double syscalls_per_record) {
  if (g_json_path.empty()) return;
  JsonMetrics().push_back(JsonMetric{name, iterations, wall_seconds, bytes,
                                     items_per_sec, syscalls_per_record});
}

void FlushJsonReport() {
  if (g_json_path.empty()) return;
  FILE* f = fopen(g_json_path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "[bench] cannot write --json path %s\n",
            g_json_path.c_str());
    return;
  }
  // Resolved once at flush: which kernel tier and I/O backend produced
  // these numbers and what the CPU offered. Per record (not just the
  // header) so that rows concatenated across artifacts stay
  // self-describing.
  const std::string kernel_path = arch::Active().name;
  const std::string cpu_features = arch::CpuFeatureString();
  const std::string io_backend = IoBackendName(ActiveIoBackend());
  fprintf(f,
          "{\n  \"bench\": \"%s\",\n  \"smoke\": %s,\n"
          "  \"kernel_path\": \"%s\",\n  \"cpu_features\": \"%s\",\n"
          "  \"io_backend\": \"%s\",\n"
          "  \"metrics\": [\n",
          JsonEscape(g_bench_name).c_str(), g_smoke ? "true" : "false",
          JsonEscape(kernel_path).c_str(), JsonEscape(cpu_features).c_str(),
          JsonEscape(io_backend).c_str());
  const auto& metrics = JsonMetrics();
  for (size_t i = 0; i < metrics.size(); ++i) {
    const JsonMetric& m = metrics[i];
    std::string syscalls;
    if (m.syscalls_per_record >= 0) {
      char buf[64];
      snprintf(buf, sizeof(buf), "\"syscalls_per_record\": %.9g, ",
               m.syscalls_per_record);
      syscalls = buf;
    }
    fprintf(f,
            "    {\"name\": \"%s\", \"iterations\": %.0f, "
            "\"wall_seconds\": %.9g, \"bytes\": %.0f, "
            "\"items_per_sec\": %.9g, %s"
            "\"kernel_path\": \"%s\", \"cpu_features\": \"%s\", "
            "\"io_backend\": \"%s\"}%s\n",
            JsonEscape(m.name).c_str(), m.iterations, m.wall_seconds, m.bytes,
            m.items_per_sec, syscalls.c_str(), JsonEscape(kernel_path).c_str(),
            JsonEscape(cpu_features).c_str(), JsonEscape(io_backend).c_str(),
            i + 1 < metrics.size() ? "," : "");
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  fprintf(stderr, "[bench] wrote %zu metrics to %s\n", metrics.size(),
          g_json_path.c_str());
}

DatasetHandle GetDataset(const DatasetSpec& spec_in, bool with_record_format,
                         bool with_fpi_format) {
  const DatasetSpec spec = g_smoke ? SmokeSpec(spec_in) : spec_in;
  Env* env = Env::Default();
  BuildFormats formats;
  formats.pcr = true;
  formats.record = with_record_format;
  formats.file_per_image = with_fpi_format;
  const std::string root = DefaultDatasetCacheRoot(spec);
  auto built = BuildSyntheticDataset(env, root, spec, formats);
  PCR_CHECK(built.ok()) << built.status();
  if (built->build_seconds > 0) {
    fprintf(stderr, "[bench] built dataset %s in %.1fs (cached at %s)\n",
            spec.name.c_str(), built->build_seconds, root.c_str());
  }
  DatasetHandle handle;
  handle.built = std::move(built).MoveValue();
  auto pcr = PcrDataset::Open(env, handle.built.pcr_dir);
  PCR_CHECK(pcr.ok()) << pcr.status();
  handle.pcr = std::move(pcr).MoveValue();
  return handle;
}

double PaperMeanImageBytes(const std::string& dataset_name) {
  // Table 1: dataset size / image count.
  if (dataset_name.find("imagenet") != std::string::npos) {
    return 129.0 * (1ULL << 30) / 1281167.0;  // ~105 kB.
  }
  if (dataset_name.find("ham") != std::string::npos) {
    return 2.0 * (1ULL << 30) / 8012.0;  // ~268 kB (largest images).
  }
  if (dataset_name.find("cars") != std::string::npos) {
    return 887.0 * (1ULL << 20) / 8144.0;  // ~114 kB.
  }
  if (dataset_name.find("celeba") != std::string::npos) {
    return 2.0 * (1ULL << 30) / 24000.0;  // ~89 kB.
  }
  return 110.0 * 1024.0;
}

DeviceProfile CalibratedStorage(RecordSource* source,
                                const std::string& dataset_name) {
  DeviceProfile profile = DeviceProfile::CephCluster();
  const double ours = source->MeanImageBytes(source->num_scan_groups());
  const double paper = PaperMeanImageBytes(dataset_name);
  // The paper's pool offers 450+ MiB/s raw, but the training-time rates of
  // Figure 9 (ImageNet baseline ~1100 img/s x 105 kB) imply an *effective*
  // bandwidth near 120 MB/s once Ceph striping, contention, and stall
  // burstiness are paid. We calibrate to the effective figure and keep our
  // byte-intensity : bandwidth ratio equal to the paper's, so the same scan
  // groups are I/O bound as on the real cluster.
  constexpr double kPaperEffectiveBandwidth = 120.0e6;
  const double size_ratio = ours / paper;
  profile.read_bandwidth_bytes_per_sec = kPaperEffectiveBandwidth * size_ratio;
  // Scale fixed latencies with dataset size so seek overhead stays a
  // comparable fraction of a record read.
  profile.seek_latency_sec *= size_ratio;
  profile.per_op_latency_sec *= size_ratio;
  return profile;
}

ModelProxy ModelProxy::ResNet18() {
  ModelProxy m;
  m.name = "ResNet18";
  m.compute = ComputeProfile::ResNet18();
  m.features.grid = 12;
  m.features.include_highpass = true;
  m.features.highpass_gain = 0.5f;  // Robust to missing fine detail.
  m.use_mlp = false;
  return m;
}

ModelProxy ModelProxy::ShuffleNetV2() {
  ModelProxy m;
  m.name = "ShuffleNet";
  m.compute = ComputeProfile::ShuffleNetV2();
  m.features.grid = 14;
  m.features.include_highpass = true;
  m.features.highpass_gain = 1.2f;  // Leans on fine-grained features.
  m.use_mlp = false;
  return m;
}

std::unique_ptr<Classifier> ModelProxy::MakeClassifier(int dim, int classes,
                                                       uint64_t seed) const {
  if (use_mlp) {
    return std::make_unique<MlpClassifier>(dim, mlp_hidden, classes, seed);
  }
  return std::make_unique<SoftmaxClassifier>(dim, classes, seed);
}

TrainRecipe TrainRecipe::ForDataset(const std::string& dataset_name) {
  TrainRecipe recipe;
  recipe.trainer.base_lr = 0.4;  // Linear-proxy scale for lr=0.1 ResNet.
  recipe.trainer.warmup_epochs = 5;
  recipe.trainer.batch_size = 128;
  if (dataset_name.find("imagenet") != std::string::npos) {
    recipe.epochs = 90;
    recipe.trainer.decay_epochs = {30, 60};
  } else if (dataset_name.find("ham") != std::string::npos) {
    recipe.epochs = 150;
    recipe.trainer.decay_epochs = {60, 110};
    recipe.trainer.base_lr = 0.2;  // "Pretrained" regime: gentler LR (§4.1).
  } else if (dataset_name.find("cars") != std::string::npos) {
    recipe.epochs = 200;  // Paper: 250; trimmed to keep the harness quick.
    recipe.trainer.decay_epochs = {100, 160};
    recipe.trainer.base_lr = 0.2;
  } else if (dataset_name.find("celeba") != std::string::npos) {
    recipe.epochs = 90;
    recipe.trainer.decay_epochs = {30, 60};
  }
  if (g_smoke) {
    recipe.epochs = std::min(recipe.epochs, 3);
    recipe.trainer.warmup_epochs = 1;
    recipe.trainer.decay_epochs = {2};
  }
  return recipe;
}

double TimeToAccuracyResult::SecondsToAccuracy(double target) const {
  for (const auto& p : curve) {
    if (p.test_accuracy >= target) return p.sim_seconds;
  }
  return -1.0;
}

std::vector<TimeToAccuracyResult> RunTimeToAccuracy(
    const DatasetSpec& spec, const ModelProxy& model,
    const TimeToAccuracyConfig& config_in) {
  TimeToAccuracyConfig config = config_in;
  if (g_smoke) {
    config.repeats = 1;
    config.eval_every = 1;
  }
  DatasetHandle handle = GetDataset(spec);
  RecordSource* source = handle.pcr.get();
  const TrainRecipe recipe = TrainRecipe::ForDataset(spec.name);

  CachedDatasetOptions cache_options;
  cache_options.scan_groups = config.scan_groups;
  cache_options.features = model.features;
  cache_options.label_map = config.label_map;
  auto cached_or = CachedDataset::Build(source, cache_options);
  PCR_CHECK(cached_or.ok()) << cached_or.status();
  const CachedDataset cached = std::move(cached_or).MoveValue();

  const DeviceProfile storage = CalibratedStorage(source, spec.name);

  std::vector<TimeToAccuracyResult> results;
  for (int group : config.scan_groups) {
    TimeToAccuracyResult result;
    result.scan_group = group;
    // Average curves over seeds.
    std::vector<CurvePoint> accumulated;
    for (int rep = 0; rep < config.repeats; ++rep) {
      auto classifier = model.MakeClassifier(
          cached.feature_dim(), cached.num_classes(), 1000 + 77 * rep);
      TrainerOptions trainer_options = recipe.trainer;
      trainer_options.seed = 5000 + rep;
      Trainer trainer(&cached, classifier.get(), trainer_options);
      TrainingPipelineSim sim(source, storage, model.compute,
                              DecodeCostModel{}, PipelineSimOptions{},
                              900 + rep);
      FixedScanPolicy policy(group);

      std::vector<CurvePoint> curve;
      double sim_time = 0;
      for (int epoch = 0; epoch < recipe.epochs; ++epoch) {
        const auto epoch_sim = sim.SimulateEpoch(&policy);
        sim_time += epoch_sim.elapsed_seconds;
        const double loss = trainer.RunEpoch(group);
        if ((epoch + 1) % config.eval_every == 0 ||
            epoch + 1 == recipe.epochs) {
          CurvePoint point;
          point.epoch = epoch + 1;
          point.sim_seconds = sim_time;
          point.test_accuracy = trainer.TestAccuracy();
          point.train_loss = loss;
          curve.push_back(point);
        }
      }
      if (accumulated.empty()) {
        accumulated = curve;
      } else {
        for (size_t i = 0; i < curve.size(); ++i) {
          accumulated[i].sim_seconds += curve[i].sim_seconds;
          accumulated[i].test_accuracy += curve[i].test_accuracy;
          accumulated[i].train_loss += curve[i].train_loss;
        }
      }
    }
    for (auto& p : accumulated) {
      p.sim_seconds /= config.repeats;
      p.test_accuracy /= config.repeats;
      p.train_loss /= config.repeats;
    }
    result.curve = std::move(accumulated);
    result.final_accuracy = result.curve.back().test_accuracy;
    result.total_seconds = result.curve.back().sim_seconds;
    results.push_back(std::move(result));
  }
  return results;
}

void PrintTimeToAccuracy(const std::string& title,
                         const std::vector<TimeToAccuracyResult>& results) {
  printf("\n== %s ==\n", title.c_str());
  // Reference accuracy: 97.5% of the baseline's final accuracy, the "same
  // accuracy sooner" comparison the paper's Figure 4 makes visually.
  const auto& baseline = results.back();
  const double target = 0.975 * baseline.final_accuracy;

  TablePrinter table({"scan group", "final acc (%)", "epoch time (s)",
                      StrFormat("t->%.1f%% acc (s)", target),
                      "speedup vs baseline"});
  const double base_time = baseline.SecondsToAccuracy(target);
  for (const auto& r : results) {
    ReportMetric(
        title + "/group_" + std::to_string(r.scan_group) + "/epoch_seconds",
        r.curve.back().epoch, r.total_seconds, 0,
        r.curve.back().epoch / std::max(1e-9, r.total_seconds));
    ReportMetric(
        title + "/group_" + std::to_string(r.scan_group) + "/final_accuracy",
        r.curve.back().epoch, r.total_seconds, 0, r.final_accuracy);
    const double t = r.SecondsToAccuracy(target);
    std::string t_str = t < 0 ? "never" : StrFormat("%.1f", t);
    std::string speedup =
        (t > 0 && base_time > 0) ? StrFormat("%.2fx", base_time / t) : "-";
    table.AddRow({r.scan_group == results.back().scan_group
                      ? "baseline(10)"
                      : StrFormat("group_%d", r.scan_group),
                  StrFormat("%.1f", r.final_accuracy),
                  StrFormat("%.2f", r.total_seconds / r.curve.back().epoch),
                  t_str, speedup});
  }
  table.Print();

  printf("\n  accuracy-vs-time curve samples:\n");
  for (const auto& r : results) {
    printf("  group %2d:", r.scan_group);
    const size_t n = r.curve.size();
    for (size_t i = 0; i < n; i += std::max<size_t>(1, n / 6)) {
      printf("  (%.0fs, %.1f%%)", r.curve[i].sim_seconds,
             r.curve[i].test_accuracy);
    }
    printf("  (%.0fs, %.1f%%)\n", r.curve.back().sim_seconds,
           r.curve.back().test_accuracy);
  }
}

}  // namespace pcr::bench
