// Figure 9: "Training rates for ResNet and ShuffleNet. More scans reduce
// the rate of images/second. From RAM, ResNet and ShuffleNet can process
// 4240/7180 images/second."
//
// Per dataset x scan group x model: achieved pipeline rate from the
// simulator on the calibrated storage; the RAM row shows the compute-bound
// ceiling.
#include <cstdio>

#include "bench_common.h"
#include "loader/scan_policy.h"

using namespace pcr;
using namespace pcr::bench;

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  printf("Figure 9: training image rates by dataset and scan group\n\n");
  for (const ModelProxy& model :
       {ModelProxy::ResNet18(), ModelProxy::ShuffleNetV2()}) {
    printf("-- %s (RAM ceiling %.0f img/s) --\n", model.name.c_str(),
           model.compute.ClusterRate());
    TablePrinter table({"dataset", "scan 1", "scan 2", "scan 5", "scan 10",
                        "from RAM", "scan1/scan10"});
    for (const DatasetSpec& spec :
         {DatasetSpec::ImageNetLike(), DatasetSpec::CelebAHqLike(),
          DatasetSpec::Ham10000Like(), DatasetSpec::CarsLike()}) {
      DatasetHandle handle = GetDataset(spec);
      RecordSource* source = handle.pcr.get();
      const DeviceProfile storage = CalibratedStorage(source, spec.name);

      std::vector<std::string> row = {spec.name};
      double rate1 = 0, rate10 = 0;
      for (int group : {1, 2, 5, 10}) {
        TrainingPipelineSim sim(source, storage, model.compute,
                                DecodeCostModel{}, PipelineSimOptions{});
        FixedScanPolicy policy(group);
        const auto result = sim.SimulateEpoch(&policy);
        row.push_back(StrFormat("%.0f", result.images_per_sec));
        ReportMetric(model.name + "/" + spec.name + "/group_" +
                         std::to_string(group) + "/images_per_sec",
                     result.images, result.elapsed_seconds,
                     static_cast<double>(result.bytes_read),
                     result.images_per_sec);
        if (group == 1) rate1 = result.images_per_sec;
        if (group == 10) rate10 = result.images_per_sec;
      }
      {
        TrainingPipelineSim sim(source, DeviceProfile::Ram(), model.compute,
                                DecodeCostModel{}, PipelineSimOptions{});
        FixedScanPolicy policy(10);
        const auto result = sim.SimulateEpoch(&policy);
        row.push_back(StrFormat("%.0f", result.images_per_sec));
      }
      row.push_back(StrFormat("%.1fx", rate1 / rate10));
      table.AddRow(row);
    }
    table.Print();
    printf("\n");
  }
  printf("paper checks: rates fall as scans increase; HAM10000 (largest "
         "images) is the most loading-bottlenecked; low scans approach the "
         "in-RAM compute-bound rate; ShuffleNet's ceiling is higher so its "
         "speedups are larger.\n");

  // Async I/O: throughput vs the loader's submission window. Partial
  // scan-group reads are small, so at low groups the blocking loader
  // (window 1) spends most of each request on the fixed seek + network
  // round trip of the calibrated cluster storage; deeper windows overlap
  // those fixed costs across in-flight fetches until either the transfer
  // floor (device bandwidth) or compute binds. Full-quality reads are
  // transfer-dominated, so their window gains are smaller — exactly why
  // async matters most for the PCR access pattern.
  printf("\nasync I/O: images/sec vs in-flight window (ham10000_like, "
         "ShuffleNet)\n");
  {
    const ModelProxy model = ModelProxy::ShuffleNetV2();
    const DatasetSpec spec = DatasetSpec::Ham10000Like();
    DatasetHandle handle = GetDataset(spec);
    RecordSource* source = handle.pcr.get();
    const DeviceProfile storage = CalibratedStorage(source, spec.name);
    TablePrinter table({"scan group", "window 1", "window 2", "window 4",
                        "window 8", "w8/w1"});
    for (int group : {1, 2, 10}) {
      std::vector<std::string> row = {StrFormat("%d", group)};
      double rate1 = 0, rate8 = 0;
      for (int window : {1, 2, 4, 8}) {
        PipelineSimOptions options;
        options.io_inflight_window = window;
        TrainingPipelineSim sim(source, storage, model.compute,
                                DecodeCostModel{}, options);
        FixedScanPolicy policy(group);
        const auto result = sim.SimulateEpoch(&policy);
        row.push_back(StrFormat("%.0f", result.images_per_sec));
        ReportMetric("async/group_" + std::to_string(group) + "/window_" +
                         std::to_string(window) + "/images_per_sec",
                     result.images, result.elapsed_seconds,
                     static_cast<double>(result.bytes_read),
                     result.images_per_sec);
        if (window == 1) rate1 = result.images_per_sec;
        if (window == 8) rate8 = result.images_per_sec;
      }
      row.push_back(StrFormat("%.2fx", rate1 > 0 ? rate8 / rate1 : 0.0));
      table.AddRow(row);
    }
    table.Print();
    printf("check: window 1 matches the blocking-loader rates above; gains "
           "grow as scan groups shrink (small reads leave the most queue "
           "depth on the table) and saturate at the bandwidth/compute "
           "floor.\n");

    // Batched submission: queuing several requests behind one submission
    // syscall (the uring backend's batched io_uring_submit) amortizes the
    // per-op setup cost. The effect is visible where setup is a real share
    // of each request — the blocking window-1 loader; deep windows already
    // overlap setup across in-flight reads, so batching adds nothing there.
    // Partial reads are setup-dominated, so low groups gain the most;
    // batch 1 reproduces the unbatched pread backends (and the fig9 table
    // above) exactly.
    printf("\nbatched submission: images/sec vs submit batch at window 1 "
           "(ham10000_like, ShuffleNet)\n");
    TablePrinter batch_table({"scan group", "batch 1", "batch 4", "batch 8",
                              "batch 16", "b16/b1"});
    for (int group : {1, 2, 10}) {
      std::vector<std::string> row = {StrFormat("%d", group)};
      double rate_b1 = 0, rate_b16 = 0;
      for (int batch : {1, 4, 8, 16}) {
        PipelineSimOptions options;
        options.io_submit_batch = batch;
        TrainingPipelineSim sim(source, storage, model.compute,
                                DecodeCostModel{}, options);
        FixedScanPolicy policy(group);
        const auto result = sim.SimulateEpoch(&policy);
        row.push_back(StrFormat("%.0f", result.images_per_sec));
        ReportMetric("submit_batch/group_" + std::to_string(group) +
                         "/batch_" + std::to_string(batch) +
                         "/images_per_sec",
                     result.images, result.elapsed_seconds,
                     static_cast<double>(result.bytes_read),
                     result.images_per_sec);
        if (batch == 1) rate_b1 = result.images_per_sec;
        if (batch == 16) rate_b16 = result.images_per_sec;
      }
      row.push_back(StrFormat("%.2fx", rate_b1 > 0 ? rate_b16 / rate_b1 : 0.0));
      batch_table.AddRow(row);
    }
    batch_table.Print();
    printf("check: batch 1 matches the window-1 column above; deeper "
           "batches shave only the per-op setup share, so gains are modest "
           "and saturate once setup is amortized.\n");
  }
  return 0;
}
