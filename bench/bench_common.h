// Shared infrastructure for the per-figure bench binaries: cached synthetic
// datasets, paper-calibrated storage profiles, model proxies, and the
// time-to-accuracy runner used by Figures 4-6 and 23-28.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/pcr_dataset.h"
#include "core/record_dataset.h"
#include "data/dataset_builder.h"
#include "data/dataset_spec.h"
#include "sim/compute_model.h"
#include "sim/decode_model.h"
#include "sim/pipeline_sim.h"
#include "storage/env.h"
#include "train/classifier.h"
#include "train/dataset_cache.h"
#include "train/trainer.h"
#include "util/result.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pcr::bench {

/// Parses the flags shared by every bench binary and must be the first call
/// in each main(). Recognised flags:
///   --smoke        minimal-iteration mode: shrinks datasets, epochs,
///                  repeats and sweeps so the binary finishes in seconds.
///                  CI uses this to catch bit-rot without burning minutes
///                  on full figures.
///   --json <path>  machine-readable run summary: every metric the bench
///                  reports via ReportMetric is written to <path> as JSON
///                  when the process exits, so CI can archive a perf
///                  trajectory (BENCH_*.json) across PRs.
/// The PCR_BENCH_SMOKE=1 environment variable is equivalent to --smoke.
/// Unknown flags abort with a usage message.
void InitBench(int argc, char** argv);

/// True when --smoke (or PCR_BENCH_SMOKE=1) is active; for bench-specific
/// clamps that the central ones below do not cover.
bool SmokeMode();

/// Records one benchmark summary metric for the --json report (no-op
/// without --json). `iterations` is how many repetitions the number
/// averages over, `wall_seconds` the measured time, `bytes` the payload
/// bytes involved (0 when meaningless), `items_per_sec` the headline rate
/// (0 when meaningless). `syscalls_per_record` is the I/O stage's
/// read-syscall cost per record for wall-clock pipeline benches (< 0 =
/// not applicable, omitted from the row). Also safe to call from shared
/// helpers like PrintTimeToAccuracy.
void ReportMetric(const std::string& name, double iterations,
                  double wall_seconds, double bytes, double items_per_sec,
                  double syscalls_per_record = -1.0);

/// Writes the --json report now (also installed atexit by InitBench, so
/// benches do not need to call it explicitly).
void FlushJsonReport();

/// Builds (or loads from the /tmp cache) the dataset for `spec` in the
/// requested formats and opens the PCR view. Under --smoke the spec is
/// shrunk (fewer, smaller images; smaller records) before building.
struct DatasetHandle {
  BuiltDataset built;
  std::unique_ptr<PcrDataset> pcr;
};
DatasetHandle GetDataset(const DatasetSpec& spec,
                         bool with_record_format = false,
                         bool with_fpi_format = false);

/// Paper mean image bytes per dataset (Table 1: dataset size / image count),
/// used to calibrate simulated storage bandwidth so that the byte-intensity
/// ratio (and therefore who is I/O bound) matches the paper's cluster.
double PaperMeanImageBytes(const std::string& dataset_name);

/// Storage profile whose bandwidth is scaled so that
///   our_mean_bytes / W_sim == paper_mean_bytes / 450MiB/s.
DeviceProfile CalibratedStorage(RecordSource* source,
                                const std::string& dataset_name);

/// A "model" = compute service rate (throughput side) + feature extractor
/// configuration (statistical side: how much the proxy relies on
/// fine-grained, high-frequency features) + classifier architecture.
struct ModelProxy {
  std::string name;
  ComputeProfile compute;
  FeatureOptions features;
  bool use_mlp = false;
  int mlp_hidden = 48;

  /// ResNet-18 proxy: slower compute, moderate reliance on fine detail.
  static ModelProxy ResNet18();
  /// ShuffleNetv2 proxy: ~1.7x faster compute, strong reliance on
  /// fine-grained (high-frequency) features (the paper's HAM10000 contrast).
  static ModelProxy ShuffleNetV2();

  std::unique_ptr<Classifier> MakeClassifier(int dim, int classes,
                                             uint64_t seed) const;
};

/// Per-dataset training recipe (epochs follow §4.1).
struct TrainRecipe {
  int epochs = 90;
  TrainerOptions trainer;
  static TrainRecipe ForDataset(const std::string& dataset_name);
};

/// One point on a time-to-accuracy curve.
struct CurvePoint {
  int epoch = 0;
  double sim_seconds = 0;
  double test_accuracy = 0;
  double train_loss = 0;
};

struct TimeToAccuracyResult {
  int scan_group = 0;
  std::vector<CurvePoint> curve;
  double final_accuracy = 0;
  double total_seconds = 0;
  /// Simulated seconds to first reach `target`; <0 if never reached.
  double SecondsToAccuracy(double target) const;
};

struct TimeToAccuracyConfig {
  std::vector<int> scan_groups = {1, 2, 5, 10};
  int repeats = 2;            // Seeds averaged for confidence.
  int eval_every = 5;         // Epochs between test evaluations.
  std::function<int64_t(int64_t)> label_map;
};

/// Runs the full experiment: for each scan group, train the proxy while the
/// pipeline simulator advances storage-bound time, and collect the curve.
/// Results are averaged over `repeats` seeds.
std::vector<TimeToAccuracyResult> RunTimeToAccuracy(
    const DatasetSpec& spec, const ModelProxy& model,
    const TimeToAccuracyConfig& config);

/// Prints the standard time-to-accuracy table (per group: final accuracy,
/// epoch time, time to reference accuracy, speedup vs baseline).
void PrintTimeToAccuracy(const std::string& title,
                         const std::vector<TimeToAccuracyResult>& results);

}  // namespace pcr::bench
