// Figure 4: Top-1 test accuracy vs (simulated) wall-clock time for ResNet-18
// and ShuffleNetv2 on ImageNet-like and CelebAHQ-like datasets, at scan
// groups {1, 2, 5, baseline}.
//
// Paper checks:
//  - lower scan groups reach a given accuracy faster (~2x on average);
//  - ShuffleNet (faster compute, more I/O bound) sees larger speedups;
//  - scans 1-2 can cost final accuracy on ImageNet but not on CelebAHQ.
#include <cstdio>

#include "bench_common.h"

using namespace pcr;
using namespace pcr::bench;

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  printf("Figure 4: time-to-accuracy, scan groups {1,2,5,baseline}\n");

  TimeToAccuracyConfig config;
  config.scan_groups = {1, 2, 5, 10};
  config.repeats = 2;

  for (const DatasetSpec& spec :
       {DatasetSpec::ImageNetLike(), DatasetSpec::CelebAHqLike()}) {
    for (const ModelProxy& model :
         {ModelProxy::ResNet18(), ModelProxy::ShuffleNetV2()}) {
      const auto results = RunTimeToAccuracy(spec, model, config);
      PrintTimeToAccuracy(spec.name + " / " + model.name, results);
    }
  }
  printf("\npaper checks: group_{1,2,5} beat baseline in time-to-accuracy; "
         "ShuffleNet speedups exceed ResNet's; ImageNet accuracy degrades "
         "at groups 1-2 while CelebAHQ tolerates group 1.\n");
  return 0;
}
