// Table 1: PCR dataset size and record count information.
// Paper row format: Dataset | Record Count | Image Count | Dataset Size |
// JPEG Quality | Classes. Our datasets are scaled-down synthetic analogues;
// the checkable properties are record-count bookkeeping, the ~5% PCR space
// parity with the record baseline, and per-dataset relative sizes (HAM
// images largest, CelebA smallest resolution).
#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"

using namespace pcr;
using namespace pcr::bench;

int main(int argc, char** argv) {
  pcr::bench::InitBench(argc, argv);
  printf("Table 1: PCR dataset size and record count information\n");
  printf("(synthetic analogues; paper values in EXPERIMENTS.md)\n\n");

  TablePrinter table({"Dataset", "Records", "Images", "PCR Size",
                      "Record-format Size", "PCR/Record", "JPEG Quality",
                      "Classes", "Mean img bytes"});

  Env* env = Env::Default();
  for (const DatasetSpec& spec :
       {DatasetSpec::ImageNetLike(), DatasetSpec::Ham10000Like(),
        DatasetSpec::CarsLike(), DatasetSpec::CelebAHqLike()}) {
    DatasetHandle handle = GetDataset(spec, /*with_record_format=*/true);
    auto record = RecordDataset::Open(env, handle.built.record_dir);
    PCR_CHECK(record.ok()) << record.status();

    const uint64_t pcr_bytes = handle.pcr->total_bytes();
    const uint64_t rec_bytes = (*record)->total_bytes();
    ReportMetric(spec.name + "/pcr_total_bytes", handle.pcr->num_images(), 0,
                 static_cast<double>(pcr_bytes), 0);
    ReportMetric(spec.name + "/pcr_vs_record_ratio",
                 handle.pcr->num_records(), 0,
                 static_cast<double>(rec_bytes),
                 static_cast<double>(pcr_bytes) /
                     static_cast<double>(rec_bytes));
    table.AddRow({spec.name,
                  StrFormat("%d", handle.pcr->num_records()),
                  StrFormat("%d", handle.pcr->num_images()),
                  HumanBytes(static_cast<double>(pcr_bytes)),
                  HumanBytes(static_cast<double>(rec_bytes)),
                  StrFormat("%.3f", static_cast<double>(pcr_bytes) /
                                        static_cast<double>(rec_bytes)),
                  StrFormat("%d%%", spec.jpeg_quality),
                  StrFormat("%d", spec.num_classes),
                  StrFormat("%.1f KiB",
                            handle.pcr->MeanImageBytes(10) / 1024.0)});
  }
  table.Print();
  printf("\nPaper check: PCR size within 5%% of the record baseline "
         "(\"no space overhead\"), HAM10000 has the largest images, "
         "CelebAHQ-Smile is binary.\n");
  return 0;
}
