// Tests for the serving daemon: wire-protocol robustness (every-byte-cut
// truncation sweep, oversized length prefixes rejected before allocation,
// garbage headers), message round-trips, and the daemon's resource model —
// admission control, mid-stream disconnects releasing slots and cache
// shares, server-derived cache namespaces shared across clients, bounded
// Stop() with clients mid-stream, and a multi-client hammer the TSan CI
// pass leans on.
//
// With PCR_SERVE_SOCKET set, the client-facing cases run against that
// already-running daemon (the CI daemon-integration job launches
// examples/serve_daemon and points this suite at its socket); cases that
// need daemon internals (active_streams, the decode cache, custom
// DaemonOptions) skip themselves in that mode.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pcr_dataset.h"
#include "data/dataset_spec.h"
#include "jpeg/codec.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/protocol.h"
#include "storage/env.h"
#include "test_util.h"

namespace pcr::serve {
namespace {

// --- Protocol robustness (no daemon) --------------------------------------

TEST(FrameParserTest, RoundTripsFrames) {
  const std::string payload = "hello wire";
  const std::string encoded = EncodeFrame(MessageType::kHello, Slice(payload));
  FrameParser parser;
  parser.Feed(Slice(encoded));
  Frame frame;
  ASSERT_EQ(parser.Next(&frame), FrameParser::Outcome::kFrame);
  EXPECT_EQ(frame.type, MessageType::kHello);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_EQ(parser.Next(&frame), FrameParser::Outcome::kNeedMore);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(FrameParserTest, TruncationSweepEveryByteCut) {
  // Any clean prefix of a valid frame must read as "need more", never as an
  // error and never as a (partial) frame — a short read is not corruption.
  OpenStreamRequest request;
  request.dataset_dir = "/data/set";
  request.scan_group = 3;
  request.seed = 99;
  const std::string encoded =
      EncodeFrame(MessageType::kOpenStream, Slice(request.Encode()));
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    FrameParser parser;
    parser.Feed(Slice(encoded.data(), cut));
    Frame frame;
    ASSERT_EQ(parser.Next(&frame), FrameParser::Outcome::kNeedMore)
        << "cut at byte " << cut;
    // Feeding the remainder completes the frame from where it left off.
    parser.Feed(Slice(encoded.data() + cut, encoded.size() - cut));
    ASSERT_EQ(parser.Next(&frame), FrameParser::Outcome::kFrame)
        << "cut at byte " << cut;
    auto decoded = OpenStreamRequest::Decode(Slice(frame.payload));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->dataset_dir, request.dataset_dir);
    EXPECT_EQ(decoded->seed, request.seed);
  }
}

TEST(FrameParserTest, OversizedLengthRejectedWithoutAllocation) {
  for (const uint32_t length : {static_cast<uint32_t>(kMaxFrameBytes + 1),
                                0x7fffffffu, 0xffffffffu}) {
    FrameParser parser;
    char header[4] = {static_cast<char>(length & 0xff),
                      static_cast<char>((length >> 8) & 0xff),
                      static_cast<char>((length >> 16) & 0xff),
                      static_cast<char>((length >> 24) & 0xff)};
    parser.Feed(Slice(header, 4));
    Frame frame;
    EXPECT_EQ(parser.Next(&frame), FrameParser::Outcome::kError);
    EXPECT_TRUE(parser.status().IsInvalidArgument()) << parser.status();
    // The rejection came from the 4 header bytes alone — the claimed
    // payload was never buffered, let alone allocated.
    EXPECT_EQ(parser.buffered_bytes(), 4u);
    // The parser stays poisoned; later feeds cannot resurrect the stream.
    parser.Feed(Slice("more", 4));
    EXPECT_EQ(parser.Next(&frame), FrameParser::Outcome::kError);
  }
}

TEST(FrameParserTest, OversizedPayloadRejectedBeforeEncoding) {
  // Send-side mirror of the parser's ceiling: EncodeFrame's length prefix
  // is 32-bit, so a payload that fails CheckFramePayloadSize would encode
  // a truncated/wrapped length and the peer would see Corruption with no
  // hint the sender produced it. The guard must reject it first.
  EXPECT_TRUE(CheckFramePayloadSize(0).ok());
  EXPECT_TRUE(CheckFramePayloadSize(kMaxFrameBytes - 1).ok());
  EXPECT_FALSE(CheckFramePayloadSize(kMaxFrameBytes).ok());
  EXPECT_FALSE(CheckFramePayloadSize(1ull << 32).ok());
  const Status oversized = CheckFramePayloadSize(kMaxFrameBytes);
  EXPECT_TRUE(oversized.IsInvalidArgument()) << oversized;

  // Boundary parity with a small ceiling (no 256 MiB allocations): the
  // largest payload the check passes is exactly the largest frame a
  // parser with the same ceiling accepts.
  EXPECT_TRUE(CheckFramePayloadSize(15, 16).ok());
  EXPECT_FALSE(CheckFramePayloadSize(16, 16).ok());
  const std::string payload(15, 'x');
  FrameParser parser(/*max_frame_bytes=*/16);
  parser.Feed(Slice(EncodeFrame(MessageType::kHello, Slice(payload))));
  Frame frame;
  ASSERT_EQ(parser.Next(&frame), FrameParser::Outcome::kFrame);
  EXPECT_EQ(frame.payload, payload);
}

TEST(FrameParserTest, ZeroLengthAndUnknownTypeAreErrors) {
  {
    FrameParser parser;
    const char zeros[4] = {0, 0, 0, 0};  // Length 0 cannot carry a type.
    parser.Feed(Slice(zeros, 4));
    Frame frame;
    EXPECT_EQ(parser.Next(&frame), FrameParser::Outcome::kError);
  }
  {
    FrameParser parser;
    std::string frame_bytes = EncodeFrame(MessageType::kHello, Slice(""));
    frame_bytes[4] = 99;  // No such message type.
    parser.Feed(Slice(frame_bytes));
    Frame frame;
    EXPECT_EQ(parser.Next(&frame), FrameParser::Outcome::kError);
    EXPECT_TRUE(parser.status().IsCorruption()) << parser.status();
  }
}

TEST(FrameParserTest, CoalescedFramesParseIndividually) {
  std::string bytes = EncodeFrame(MessageType::kNextBatch,
                                  Slice(NextBatchRequest{7}.Encode()));
  bytes += EncodeFrame(MessageType::kStats, Slice(StatsRequest{0}.Encode()));
  FrameParser parser;
  parser.Feed(Slice(bytes));
  Frame frame;
  ASSERT_EQ(parser.Next(&frame), FrameParser::Outcome::kFrame);
  EXPECT_EQ(frame.type, MessageType::kNextBatch);
  ASSERT_EQ(parser.Next(&frame), FrameParser::Outcome::kFrame);
  EXPECT_EQ(frame.type, MessageType::kStats);
  EXPECT_EQ(parser.Next(&frame), FrameParser::Outcome::kNeedMore);
}

TEST(ProtocolTest, MessageDecodeSurvivesPayloadTruncation) {
  // Cutting a wire payload at every byte must yield a Status, never a
  // crash; cuts inside a varint or length-delimited field must fail.
  BatchReply reply;
  reply.stream_id = 12;
  reply.record_index = 3;
  reply.labels = {1, 2, 3};
  WireImage img;
  img.width = 4;
  img.height = 2;
  img.channels = 3;
  img.pixels.assign(24, '\x7f');
  reply.images.push_back(img);
  reply.jpegs.push_back("not-really-jpeg-bytes");
  const std::string payload = reply.Encode();
  for (size_t cut = 0; cut + 1 < payload.size(); ++cut) {
    auto decoded = BatchReply::Decode(Slice(payload.data(), cut));
    // Some cuts land on field boundaries and decode as a valid shorter
    // message; the invariant is no crash and no torn field contents.
    if (decoded.ok() && !decoded->images.empty()) {
      EXPECT_EQ(decoded->images[0].pixels.size(),
                decoded->images[0].width * decoded->images[0].height *
                    decoded->images[0].channels);
    }
  }
  auto full = BatchReply::Decode(Slice(payload));
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->stream_id, 12u);
  EXPECT_EQ(full->labels, reply.labels);
  ASSERT_EQ(full->images.size(), 1u);
  EXPECT_EQ(full->images[0].pixels, img.pixels);
  ASSERT_EQ(full->jpegs.size(), 1u);
  EXPECT_EQ(full->jpegs[0], reply.jpegs[0]);
}

TEST(ProtocolTest, ErrorReplyCarriesStatus) {
  const Status status = Status::ResourceExhausted("stream table full");
  const ErrorReply reply = ErrorReply::FromStatus(status, 5);
  auto decoded = ErrorReply::Decode(Slice(reply.Encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->stream_id, 5u);
  const Status restored = decoded->ToStatus();
  EXPECT_TRUE(restored.code() == StatusCode::kResourceExhausted) << restored;
  EXPECT_NE(restored.ToString().find("stream table full"), std::string::npos);
}

TEST(ProtocolTest, WireImageGeometryValidatedOnConversion) {
  WireImage wire;
  wire.width = 8;
  wire.height = 8;
  wire.channels = 3;
  wire.pixels.assign(8 * 8 * 3, '\x10');
  ASSERT_TRUE(PcrClient::ToImage(wire).ok());
  wire.pixels.resize(17);  // Size no longer matches the geometry.
  EXPECT_FALSE(PcrClient::ToImage(wire).ok());
  wire.pixels.assign(8 * 8 * 2, '\x10');
  wire.channels = 2;  // Unsupported channel count.
  EXPECT_FALSE(PcrClient::ToImage(wire).ok());
}

// --- Daemon integration ---------------------------------------------------

/// Fixture: a tiny on-disk dataset plus either an in-process daemon or (in
/// PCR_SERVE_SOCKET mode) a connection to the externally launched one.
class ServeDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = Env::Default();
    root_ = PerProcessTempDir("pcr_serve_test");
    dataset_dir_ = root_ + "/ds";
    BuildDataset(dataset_dir_, /*num_images=*/16, /*seed_base=*/0);
    const char* external = std::getenv("PCR_SERVE_SOCKET");
    if (external != nullptr && external[0] != '\0') {
      external_socket_ = external;
    }
  }

  void TearDown() override {
    daemon_.reset();
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  /// Builds `num_images` procedural JPEGs (4 per record) into env:dir.
  void BuildDataset(const std::string& dir, int num_images,
                    uint64_t seed_base) {
    DatasetSpec spec = DatasetSpec::TestTiny();
    spec.base_width = 48;
    spec.base_height = 32;
    spec.size_jitter = 0;
    PcrWriterOptions options;
    options.images_per_record = 4;
    auto writer = PcrDatasetWriter::Create(env_, dir, options).MoveValue();
    for (int i = 0; i < num_images; ++i) {
      const int label = i % spec.num_classes;
      const Image img =
          GenerateImage(spec, label, seed_base + static_cast<uint64_t>(i));
      jpeg::EncodeOptions encode;
      encode.quality = 85;
      const std::string bytes = jpeg::Encode(img, encode).MoveValue();
      ASSERT_TRUE(writer->AddImage(Slice(bytes), label).ok());
    }
    ASSERT_TRUE(writer->Finish().ok());
  }

  /// The socket to test against: the external daemon's when set, else an
  /// in-process daemon started with `options` (socket_path filled in).
  std::string Socket(DaemonOptions options = {}) {
    if (!external_socket_.empty()) return external_socket_;
    if (daemon_ == nullptr) {
      options.socket_path = root_ + "/pcrd.sock";
      daemon_ = PcrDaemon::Start(env_, options).MoveValue();
    }
    return daemon_->socket_path();
  }

  /// Skips the calling test in external-daemon mode (needs internals).
  bool RequireInternalDaemon() {
    if (!external_socket_.empty()) return false;
    return true;
  }

  Env* env_ = nullptr;
  std::string root_;
  std::string dataset_dir_;
  std::string external_socket_;
  std::unique_ptr<PcrDaemon> daemon_;
};

TEST_F(ServeDaemonTest, StreamsOneEpochDecoded) {
  auto client = PcrClient::Connect(Socket(), "epoch-test").MoveValue();
  EXPECT_GT(client->server().max_streams, 0u);

  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 1;
  open.shuffle = false;
  auto stream = client->OpenStream(open).MoveValue();
  EXPECT_EQ(stream.num_images, 16u);
  EXPECT_EQ(stream.num_records, 4u);
  EXPECT_EQ(stream.scan_group, stream.num_scan_groups);  // 0 = full quality.
  EXPECT_NE(stream.cache_dataset_id, 0u);

  int images = 0;
  for (uint32_t k = 0; k < stream.num_records; ++k) {
    auto batch = client->NextBatch(stream.stream_id).MoveValue();
    ASSERT_FALSE(batch.end_of_stream);
    ASSERT_EQ(batch.images.size(), batch.labels.size());
    for (const WireImage& wire : batch.images) {
      const Image img = PcrClient::ToImage(wire).MoveValue();
      EXPECT_EQ(img.width(), 48);
      EXPECT_EQ(img.height(), 32);
      ++images;
    }
  }
  EXPECT_EQ(images, 16);
  auto last = client->NextBatch(stream.stream_id).MoveValue();
  EXPECT_TRUE(last.end_of_stream);

  auto stats = client->GetStats(stream.stream_id).MoveValue();
  ASSERT_EQ(stats.streams.size(), 1u);
  EXPECT_EQ(stats.streams[0].served_images, 16);
  EXPECT_GE(stats.streams[0].batch_p99_sec, 0.0);
  auto closed = client->CloseStream(stream.stream_id).MoveValue();
  EXPECT_EQ(closed.stream_id, stream.stream_id);
}

TEST_F(ServeDaemonTest, CompressedModeShipsDecodableJpegs) {
  auto client = PcrClient::Connect(Socket(), "jpeg-test").MoveValue();
  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 1;
  open.shuffle = false;
  open.decode = false;
  auto stream = client->OpenStream(open).MoveValue();
  int jpegs = 0;
  for (uint32_t k = 0; k < stream.num_records; ++k) {
    auto batch = client->NextBatch(stream.stream_id).MoveValue();
    ASSERT_FALSE(batch.end_of_stream);
    EXPECT_TRUE(batch.images.empty());
    ASSERT_EQ(batch.jpegs.size(), batch.labels.size());
    for (const std::string& bytes : batch.jpegs) {
      // The daemon assembled a standalone progressive stream per image.
      auto img = jpeg::Decode(Slice(bytes));
      ASSERT_TRUE(img.ok()) << img.status();
      EXPECT_EQ(img->width(), 48);
      ++jpegs;
    }
  }
  EXPECT_EQ(jpegs, 16);
  client->CloseStream(stream.stream_id).MoveValue();
}

TEST_F(ServeDaemonTest, RejectsBadOpenRequests) {
  auto client = PcrClient::Connect(Socket(), "reject-test").MoveValue();
  {
    OpenStreamRequest open;  // Unbounded streams pin admission slots.
    open.dataset_dir = dataset_dir_;
    open.max_epochs = 0;
    auto result = client->OpenStream(open);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsInvalidArgument()) << result.status();
  }
  {
    OpenStreamRequest open;
    open.dataset_dir = root_ + "/definitely-not-a-dataset";
    auto result = client->OpenStream(open);
    ASSERT_FALSE(result.ok());
  }
  // The connection survived both rejections.
  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 1;
  auto stream = client->OpenStream(open).MoveValue();
  client->CloseStream(stream.stream_id).MoveValue();
}

TEST_F(ServeDaemonTest, AdmissionCapRejectsAndRecovers) {
  if (!RequireInternalDaemon()) {
    GTEST_SKIP() << "needs custom DaemonOptions (max_streams)";
  }
  DaemonOptions options;
  options.max_streams = 2;
  const std::string socket = Socket(options);

  auto client = PcrClient::Connect(socket, "admission-test").MoveValue();
  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 4;
  auto first = client->OpenStream(open).MoveValue();
  auto second = client->OpenStream(open).MoveValue();
  auto third = client->OpenStream(open);
  ASSERT_FALSE(third.ok());
  EXPECT_TRUE(third.status().code() == StatusCode::kResourceExhausted) << third.status();
  EXPECT_EQ(daemon_->active_streams(), 2);

  // Closing a stream frees its slot for the next admission.
  client->CloseStream(first.stream_id).MoveValue();
  auto fourth = client->OpenStream(open).MoveValue();
  EXPECT_NE(fourth.stream_id, second.stream_id);
  EXPECT_EQ(daemon_->active_streams(), 2);
}

TEST_F(ServeDaemonTest, DisconnectReleasesSlotsAndCacheShare) {
  if (!RequireInternalDaemon()) {
    GTEST_SKIP() << "needs daemon internals (active_streams, decode cache)";
  }
  const std::string socket = Socket();
  uint64_t cache_id = 0;
  {
    auto client = PcrClient::Connect(socket, "vanishing").MoveValue();
    OpenStreamRequest open;
    open.dataset_dir = dataset_dir_;
    open.max_epochs = 8;
    auto stream = client->OpenStream(open).MoveValue();
    cache_id = stream.cache_dataset_id;
    // Pull a couple of batches so the stream owns cache residency, then
    // hang up without CloseStream — a crashed trainer.
    client->NextBatch(stream.stream_id).MoveValue();
    client->NextBatch(stream.stream_id).MoveValue();
    // The decode workers insert into the cache asynchronously relative to
    // batch delivery, so poll for residency instead of asserting it.
    const auto warm_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < warm_deadline &&
           daemon_->decode_cache()->DatasetShareBytes(cache_id) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GT(daemon_->decode_cache()->DatasetShareBytes(cache_id), 0u);
    client->Close();
  }
  // The daemon notices the hangup and releases the admission slot, the
  // dataset registration, and the dataset's decode-cache byte share.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline &&
         (daemon_->active_streams() != 0 ||
          daemon_->decode_cache()->DatasetShareBytes(cache_id) != 0)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(daemon_->active_streams(), 0);
  EXPECT_EQ(daemon_->decode_cache()->DatasetShareBytes(cache_id), 0u);
}

TEST_F(ServeDaemonTest, ClientsShareServerDerivedCacheNamespace) {
  if (!RequireInternalDaemon()) {
    GTEST_SKIP() << "asserts against the in-process decode cache";
  }
  const std::string socket = Socket();
  uint64_t first_id = 0;
  {
    auto warm = PcrClient::Connect(socket, "warm").MoveValue();
    OpenStreamRequest open;
    open.dataset_dir = dataset_dir_;
    open.max_epochs = 1;
    open.shuffle = false;
    auto stream = warm->OpenStream(open).MoveValue();
    first_id = stream.cache_dataset_id;
    for (uint32_t k = 0; k < stream.num_records; ++k) {
      warm->NextBatch(stream.stream_id).MoveValue();
    }
    warm->CloseStream(stream.stream_id).MoveValue();
  }
  // A different client opening the same dataset lands in the same
  // namespace and is served from the first client's decoded entries.
  auto reuse = PcrClient::Connect(socket, "reuse").MoveValue();
  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 1;
  open.shuffle = false;
  auto stream = reuse->OpenStream(open).MoveValue();
  EXPECT_EQ(stream.cache_dataset_id, first_id);
  for (uint32_t k = 0; k < stream.num_records; ++k) {
    reuse->NextBatch(stream.stream_id).MoveValue();
  }
  auto stats = reuse->GetStats(stream.stream_id).MoveValue();
  ASSERT_EQ(stats.streams.size(), 1u);
  EXPECT_GT(stats.streams[0].cache_hits, 0);
  EXPECT_EQ(stats.streams[0].cache_misses, 0);
  reuse->CloseStream(stream.stream_id).MoveValue();
}

TEST_F(ServeDaemonTest, DerivedIdStableAcrossCallsAndGenerations) {
  const auto first = PcrDaemon::DeriveCacheDatasetId(env_, dataset_dir_);
  const auto again = PcrDaemon::DeriveCacheDatasetId(env_, dataset_dir_);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(*first, *again);

  // A rewritten dataset at the SAME path is a new writer generation: its
  // id must change so stale decoded entries cannot serve the new bytes.
  const std::string dir = root_ + "/regen";
  BuildDataset(dir, 16, /*seed_base=*/0);
  const uint64_t gen1 = PcrDaemon::DeriveCacheDatasetId(env_, dir).MoveValue();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  BuildDataset(dir, 16, /*seed_base=*/1000);  // Different content.
  const uint64_t gen2 = PcrDaemon::DeriveCacheDatasetId(env_, dir).MoveValue();
  EXPECT_NE(gen1, gen2);

  // Missing dataset: an error, not a synthetic id.
  EXPECT_FALSE(
      PcrDaemon::DeriveCacheDatasetId(env_, root_ + "/nope").ok());
}

TEST_F(ServeDaemonTest, GarbageFramesGetErrorThenDisconnect) {
  const std::string socket = Socket();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // A hostile 4 GiB length prefix: the daemon must answer with an error
  // frame and hang up without ever allocating the claimed payload.
  const char hostile[8] = {'\xff', '\xff', '\xff', '\xff', 1, 2, 3, 4};
  ASSERT_EQ(::send(fd, hostile, sizeof(hostile), MSG_NOSIGNAL), 8);
  FrameParser parser;
  char buf[4096];
  bool saw_eof = false;
  bool saw_error_frame = false;
  for (int i = 0; i < 100 && !saw_eof; ++i) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      saw_eof = true;
      break;
    }
    parser.Feed(Slice(buf, static_cast<size_t>(n)));
    Frame frame;
    while (parser.Next(&frame) == FrameParser::Outcome::kFrame) {
      if (frame.type == MessageType::kError) saw_error_frame = true;
    }
  }
  ::close(fd);
  EXPECT_TRUE(saw_eof);
  EXPECT_TRUE(saw_error_frame);
  // The daemon is still healthy: a well-behaved client connects and works.
  auto client = PcrClient::Connect(socket, "after-garbage").MoveValue();
  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 1;
  auto stream = client->OpenStream(open).MoveValue();
  client->CloseStream(stream.stream_id).MoveValue();
}

TEST_F(ServeDaemonTest, StopIsBoundedWithClientsMidStream) {
  if (!RequireInternalDaemon()) {
    GTEST_SKIP() << "stops the in-process daemon";
  }
  const std::string socket = Socket();
  auto client = PcrClient::Connect(socket, "stop-test").MoveValue();
  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 1000;  // Far more than the test will consume.
  auto stream = client->OpenStream(open).MoveValue();

  std::atomic<bool> got_error{false};
  std::thread consumer([&] {
    for (int k = 0; k < 1000000; ++k) {
      auto batch = client->NextBatch(stream.stream_id);
      if (!batch.ok()) {
        got_error.store(true);
        return;
      }
    }
  });
  // Let the consumer get properly mid-stream, then pull the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto t0 = std::chrono::steady_clock::now();
  daemon_->Stop();
  const double stop_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  consumer.join();
  EXPECT_TRUE(got_error.load());
  EXPECT_LT(stop_seconds, 10.0);
  daemon_->Stop();  // Idempotent.
}

TEST_F(ServeDaemonTest, StatsSurviveStreamChurn) {
  // Regression shape for a use-after-free: BuildStats snapshots stream
  // shared_ptrs under streams_mu_, then reads pipeline->io_stats() after
  // dropping the lock — racing another connection's teardown. The fix
  // keeps the pipeline alive until the last Stream reference drops;
  // daemon-wide Stats hammered against open/close/disconnect churn lets
  // the ASan and TSan CI passes prove it.
  const std::string socket = Socket();
  std::atomic<bool> done{false};
  std::atomic<int> stats_failures{0};
  std::thread stats_thread([&] {
    auto client = PcrClient::Connect(socket, "stats-hammer").MoveValue();
    while (!done.load(std::memory_order_acquire)) {
      if (!client->GetStats(0).ok()) {
        stats_failures.fetch_add(1);
        return;
      }
    }
  });
  for (int round = 0; round < 30; ++round) {
    auto client =
        PcrClient::Connect(socket, "churn-" + std::to_string(round))
            .MoveValue();
    OpenStreamRequest open;
    open.dataset_dir = dataset_dir_;
    open.max_epochs = 1;
    open.shuffle = false;
    auto stream = client->OpenStream(open).MoveValue();
    client->NextBatch(stream.stream_id).MoveValue();
    if (round % 2 == 0) {
      client->CloseStream(stream.stream_id).MoveValue();
    }
    // Odd rounds hang up without CloseStream — the disconnect teardown
    // path, which used to reset the pipeline out from under Stats.
  }
  done.store(true, std::memory_order_release);
  stats_thread.join();
  EXPECT_EQ(stats_failures.load(), 0);
}

TEST_F(ServeDaemonTest, MultiClientHammer) {
  // Concurrent clients on one daemon — the shape the TSan CI pass runs to
  // shake out races between reader threads, serve loops, and the caches.
  const std::string socket = Socket();
  constexpr int kHammerClients = 4;
  constexpr int kEpochs = 2;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kHammerClients; ++i) {
    threads.emplace_back([&, i] {
      auto client =
          PcrClient::Connect(socket, "hammer-" + std::to_string(i))
              .MoveValue();
      OpenStreamRequest open;
      open.dataset_dir = dataset_dir_;
      open.max_epochs = kEpochs;
      open.shuffle = true;
      open.seed = 100 + static_cast<uint64_t>(i);
      open.decode = (i % 2 == 0);  // Mix both data planes.
      auto stream = client->OpenStream(open).MoveValue();
      int images = 0;
      for (;;) {
        auto batch = client->NextBatch(stream.stream_id);
        if (!batch.ok()) {
          failures.fetch_add(1);
          return;
        }
        if (batch->end_of_stream) break;
        images += static_cast<int>(batch->images.size() +
                                   batch->jpegs.size());
      }
      if (images != 16 * kEpochs) failures.fetch_add(1);
      client->GetStats(stream.stream_id).MoveValue();
      client->CloseStream(stream.stream_id).MoveValue();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace pcr::serve
