// Tests for the serving daemon: wire-protocol robustness (every-byte-cut
// truncation sweep, oversized length prefixes rejected before allocation,
// garbage headers), message round-trips, and the daemon's resource model —
// admission control, mid-stream disconnects releasing slots and cache
// shares, server-derived cache namespaces shared across clients, bounded
// Stop() with clients mid-stream, and a multi-client hammer the TSan CI
// pass leans on.
//
// With PCR_SERVE_SOCKET set, the client-facing cases run against that
// already-running daemon (the CI daemon-integration job launches
// examples/serve_daemon and points this suite at its socket); cases that
// need daemon internals (active_streams, the decode cache, custom
// DaemonOptions) skip themselves in that mode.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pcr_dataset.h"
#include "data/dataset_spec.h"
#include "jpeg/codec.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/protocol.h"
#include "storage/env.h"
#include "test_util.h"
#include "util/shm_ring.h"

namespace pcr::serve {
namespace {

// --- Protocol robustness (no daemon) --------------------------------------

TEST(FrameParserTest, RoundTripsFrames) {
  const std::string payload = "hello wire";
  const std::string encoded = EncodeFrame(MessageType::kHello, Slice(payload));
  FrameParser parser;
  parser.Feed(Slice(encoded));
  Frame frame;
  ASSERT_EQ(parser.Next(&frame), FrameParser::Outcome::kFrame);
  EXPECT_EQ(frame.type, MessageType::kHello);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_EQ(parser.Next(&frame), FrameParser::Outcome::kNeedMore);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(FrameParserTest, TruncationSweepEveryByteCut) {
  // Any clean prefix of a valid frame must read as "need more", never as an
  // error and never as a (partial) frame — a short read is not corruption.
  OpenStreamRequest request;
  request.dataset_dir = "/data/set";
  request.scan_group = 3;
  request.seed = 99;
  const std::string encoded =
      EncodeFrame(MessageType::kOpenStream, Slice(request.Encode()));
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    FrameParser parser;
    parser.Feed(Slice(encoded.data(), cut));
    Frame frame;
    ASSERT_EQ(parser.Next(&frame), FrameParser::Outcome::kNeedMore)
        << "cut at byte " << cut;
    // Feeding the remainder completes the frame from where it left off.
    parser.Feed(Slice(encoded.data() + cut, encoded.size() - cut));
    ASSERT_EQ(parser.Next(&frame), FrameParser::Outcome::kFrame)
        << "cut at byte " << cut;
    auto decoded = OpenStreamRequest::Decode(Slice(frame.payload));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->dataset_dir, request.dataset_dir);
    EXPECT_EQ(decoded->seed, request.seed);
  }
}

TEST(FrameParserTest, OversizedLengthRejectedWithoutAllocation) {
  for (const uint32_t length : {static_cast<uint32_t>(kMaxFrameBytes + 1),
                                0x7fffffffu, 0xffffffffu}) {
    FrameParser parser;
    char header[4] = {static_cast<char>(length & 0xff),
                      static_cast<char>((length >> 8) & 0xff),
                      static_cast<char>((length >> 16) & 0xff),
                      static_cast<char>((length >> 24) & 0xff)};
    parser.Feed(Slice(header, 4));
    Frame frame;
    EXPECT_EQ(parser.Next(&frame), FrameParser::Outcome::kError);
    EXPECT_TRUE(parser.status().IsInvalidArgument()) << parser.status();
    // The rejection came from the 4 header bytes alone — the claimed
    // payload was never buffered, let alone allocated.
    EXPECT_EQ(parser.buffered_bytes(), 4u);
    // The parser stays poisoned; later feeds cannot resurrect the stream.
    parser.Feed(Slice("more", 4));
    EXPECT_EQ(parser.Next(&frame), FrameParser::Outcome::kError);
  }
}

TEST(FrameParserTest, OversizedPayloadRejectedBeforeEncoding) {
  // Send-side mirror of the parser's ceiling: EncodeFrame's length prefix
  // is 32-bit, so a payload that fails CheckFramePayloadSize would encode
  // a truncated/wrapped length and the peer would see Corruption with no
  // hint the sender produced it. The guard must reject it first.
  EXPECT_TRUE(CheckFramePayloadSize(0).ok());
  EXPECT_TRUE(CheckFramePayloadSize(kMaxFrameBytes - 1).ok());
  EXPECT_FALSE(CheckFramePayloadSize(kMaxFrameBytes).ok());
  EXPECT_FALSE(CheckFramePayloadSize(1ull << 32).ok());
  const Status oversized = CheckFramePayloadSize(kMaxFrameBytes);
  EXPECT_TRUE(oversized.IsInvalidArgument()) << oversized;

  // Boundary parity with a small ceiling (no 256 MiB allocations): the
  // largest payload the check passes is exactly the largest frame a
  // parser with the same ceiling accepts.
  EXPECT_TRUE(CheckFramePayloadSize(15, 16).ok());
  EXPECT_FALSE(CheckFramePayloadSize(16, 16).ok());
  const std::string payload(15, 'x');
  FrameParser parser(/*max_frame_bytes=*/16);
  parser.Feed(Slice(EncodeFrame(MessageType::kHello, Slice(payload))));
  Frame frame;
  ASSERT_EQ(parser.Next(&frame), FrameParser::Outcome::kFrame);
  EXPECT_EQ(frame.payload, payload);
}

TEST(FrameParserTest, ZeroLengthAndUnknownTypeAreErrors) {
  {
    FrameParser parser;
    const char zeros[4] = {0, 0, 0, 0};  // Length 0 cannot carry a type.
    parser.Feed(Slice(zeros, 4));
    Frame frame;
    EXPECT_EQ(parser.Next(&frame), FrameParser::Outcome::kError);
  }
  {
    FrameParser parser;
    std::string frame_bytes = EncodeFrame(MessageType::kHello, Slice(""));
    frame_bytes[4] = 99;  // No such message type.
    parser.Feed(Slice(frame_bytes));
    Frame frame;
    EXPECT_EQ(parser.Next(&frame), FrameParser::Outcome::kError);
    EXPECT_TRUE(parser.status().IsCorruption()) << parser.status();
  }
}

TEST(FrameParserTest, CoalescedFramesParseIndividually) {
  std::string bytes = EncodeFrame(MessageType::kNextBatch,
                                  Slice(NextBatchRequest{7}.Encode()));
  bytes += EncodeFrame(MessageType::kStats, Slice(StatsRequest{0}.Encode()));
  FrameParser parser;
  parser.Feed(Slice(bytes));
  Frame frame;
  ASSERT_EQ(parser.Next(&frame), FrameParser::Outcome::kFrame);
  EXPECT_EQ(frame.type, MessageType::kNextBatch);
  ASSERT_EQ(parser.Next(&frame), FrameParser::Outcome::kFrame);
  EXPECT_EQ(frame.type, MessageType::kStats);
  EXPECT_EQ(parser.Next(&frame), FrameParser::Outcome::kNeedMore);
}

TEST(ProtocolTest, MessageDecodeSurvivesPayloadTruncation) {
  // Cutting a wire payload at every byte must yield a Status, never a
  // crash; cuts inside a varint or length-delimited field must fail.
  BatchReply reply;
  reply.stream_id = 12;
  reply.record_index = 3;
  reply.labels = {1, 2, 3};
  WireImage img;
  img.width = 4;
  img.height = 2;
  img.channels = 3;
  img.pixels.assign(24, '\x7f');
  reply.images.push_back(img);
  reply.jpegs.push_back("not-really-jpeg-bytes");
  const std::string payload = reply.Encode();
  for (size_t cut = 0; cut + 1 < payload.size(); ++cut) {
    auto decoded = BatchReply::Decode(Slice(payload.data(), cut));
    // Some cuts land on field boundaries and decode as a valid shorter
    // message; the invariant is no crash and no torn field contents.
    if (decoded.ok() && !decoded->images.empty()) {
      EXPECT_EQ(decoded->images[0].pixels.size(),
                decoded->images[0].width * decoded->images[0].height *
                    decoded->images[0].channels);
    }
  }
  auto full = BatchReply::Decode(Slice(payload));
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->stream_id, 12u);
  EXPECT_EQ(full->labels, reply.labels);
  ASSERT_EQ(full->images.size(), 1u);
  EXPECT_EQ(full->images[0].pixels, img.pixels);
  ASSERT_EQ(full->jpegs.size(), 1u);
  EXPECT_EQ(full->jpegs[0], reply.jpegs[0]);
}

TEST(ProtocolTest, ErrorReplyCarriesStatus) {
  const Status status = Status::ResourceExhausted("stream table full");
  const ErrorReply reply = ErrorReply::FromStatus(status, 5);
  auto decoded = ErrorReply::Decode(Slice(reply.Encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->stream_id, 5u);
  const Status restored = decoded->ToStatus();
  EXPECT_TRUE(restored.code() == StatusCode::kResourceExhausted) << restored;
  EXPECT_NE(restored.ToString().find("stream table full"), std::string::npos);
}

TEST(ProtocolTest, WireImageGeometryValidatedOnConversion) {
  WireImage wire;
  wire.width = 8;
  wire.height = 8;
  wire.channels = 3;
  wire.pixels.assign(8 * 8 * 3, '\x10');
  ASSERT_TRUE(PcrClient::ToImage(wire).ok());
  wire.pixels.resize(17);  // Size no longer matches the geometry.
  EXPECT_FALSE(PcrClient::ToImage(wire).ok());
  wire.pixels.assign(8 * 8 * 2, '\x10');
  wire.channels = 2;  // Unsupported channel count.
  EXPECT_FALSE(PcrClient::ToImage(wire).ok());
}

// --- Daemon integration ---------------------------------------------------

/// Fixture: a tiny on-disk dataset plus either an in-process daemon or (in
/// PCR_SERVE_SOCKET mode) a connection to the externally launched one.
class ServeDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = Env::Default();
    root_ = PerProcessTempDir("pcr_serve_test");
    dataset_dir_ = root_ + "/ds";
    BuildDataset(dataset_dir_, /*num_images=*/16, /*seed_base=*/0);
    const char* external = std::getenv("PCR_SERVE_SOCKET");
    if (external != nullptr && external[0] != '\0') {
      external_socket_ = external;
    }
  }

  void TearDown() override {
    daemon_.reset();
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  /// Builds `num_images` procedural JPEGs (4 per record) into env:dir.
  void BuildDataset(const std::string& dir, int num_images,
                    uint64_t seed_base) {
    DatasetSpec spec = DatasetSpec::TestTiny();
    spec.base_width = 48;
    spec.base_height = 32;
    spec.size_jitter = 0;
    PcrWriterOptions options;
    options.images_per_record = 4;
    auto writer = PcrDatasetWriter::Create(env_, dir, options).MoveValue();
    for (int i = 0; i < num_images; ++i) {
      const int label = i % spec.num_classes;
      const Image img =
          GenerateImage(spec, label, seed_base + static_cast<uint64_t>(i));
      jpeg::EncodeOptions encode;
      encode.quality = 85;
      const std::string bytes = jpeg::Encode(img, encode).MoveValue();
      ASSERT_TRUE(writer->AddImage(Slice(bytes), label).ok());
    }
    ASSERT_TRUE(writer->Finish().ok());
  }

  /// The socket to test against: the external daemon's when set, else an
  /// in-process daemon started with `options` (socket_path filled in).
  std::string Socket(DaemonOptions options = {}) {
    if (!external_socket_.empty()) return external_socket_;
    if (daemon_ == nullptr) {
      options.socket_path = root_ + "/pcrd.sock";
      daemon_ = PcrDaemon::Start(env_, options).MoveValue();
    }
    return daemon_->socket_path();
  }

  /// Skips the calling test in external-daemon mode (needs internals).
  bool RequireInternalDaemon() {
    if (!external_socket_.empty()) return false;
    return true;
  }

  Env* env_ = nullptr;
  std::string root_;
  std::string dataset_dir_;
  std::string external_socket_;
  std::unique_ptr<PcrDaemon> daemon_;
};

TEST_F(ServeDaemonTest, StreamsOneEpochDecoded) {
  auto client = PcrClient::Connect(Socket(), "epoch-test").MoveValue();
  EXPECT_GT(client->server().max_streams, 0u);

  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 1;
  open.shuffle = false;
  auto stream = client->OpenStream(open).MoveValue();
  EXPECT_EQ(stream.num_images, 16u);
  EXPECT_EQ(stream.num_records, 4u);
  EXPECT_EQ(stream.scan_group, stream.num_scan_groups);  // 0 = full quality.
  EXPECT_NE(stream.cache_dataset_id, 0u);

  int images = 0;
  for (uint32_t k = 0; k < stream.num_records; ++k) {
    auto batch = client->NextBatch(stream.stream_id).MoveValue();
    ASSERT_FALSE(batch.end_of_stream);
    ASSERT_EQ(batch.images.size(), batch.labels.size());
    for (const WireImage& wire : batch.images) {
      const Image img = PcrClient::ToImage(wire).MoveValue();
      EXPECT_EQ(img.width(), 48);
      EXPECT_EQ(img.height(), 32);
      ++images;
    }
  }
  EXPECT_EQ(images, 16);
  auto last = client->NextBatch(stream.stream_id).MoveValue();
  EXPECT_TRUE(last.end_of_stream);

  auto stats = client->GetStats(stream.stream_id).MoveValue();
  ASSERT_EQ(stats.streams.size(), 1u);
  EXPECT_EQ(stats.streams[0].served_images, 16);
  EXPECT_GE(stats.streams[0].batch_p99_sec, 0.0);
  auto closed = client->CloseStream(stream.stream_id).MoveValue();
  EXPECT_EQ(closed.stream_id, stream.stream_id);
}

TEST_F(ServeDaemonTest, CompressedModeShipsDecodableJpegs) {
  auto client = PcrClient::Connect(Socket(), "jpeg-test").MoveValue();
  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 1;
  open.shuffle = false;
  open.decode = false;
  auto stream = client->OpenStream(open).MoveValue();
  int jpegs = 0;
  for (uint32_t k = 0; k < stream.num_records; ++k) {
    auto batch = client->NextBatch(stream.stream_id).MoveValue();
    ASSERT_FALSE(batch.end_of_stream);
    EXPECT_TRUE(batch.images.empty());
    ASSERT_EQ(batch.jpegs.size(), batch.labels.size());
    for (const std::string& bytes : batch.jpegs) {
      // The daemon assembled a standalone progressive stream per image.
      auto img = jpeg::Decode(Slice(bytes));
      ASSERT_TRUE(img.ok()) << img.status();
      EXPECT_EQ(img->width(), 48);
      ++jpegs;
    }
  }
  EXPECT_EQ(jpegs, 16);
  client->CloseStream(stream.stream_id).MoveValue();
}

TEST_F(ServeDaemonTest, RejectsBadOpenRequests) {
  auto client = PcrClient::Connect(Socket(), "reject-test").MoveValue();
  {
    OpenStreamRequest open;  // Unbounded streams pin admission slots.
    open.dataset_dir = dataset_dir_;
    open.max_epochs = 0;
    auto result = client->OpenStream(open);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsInvalidArgument()) << result.status();
  }
  {
    OpenStreamRequest open;
    open.dataset_dir = root_ + "/definitely-not-a-dataset";
    auto result = client->OpenStream(open);
    ASSERT_FALSE(result.ok());
  }
  // The connection survived both rejections.
  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 1;
  auto stream = client->OpenStream(open).MoveValue();
  client->CloseStream(stream.stream_id).MoveValue();
}

TEST_F(ServeDaemonTest, AdmissionCapRejectsAndRecovers) {
  if (!RequireInternalDaemon()) {
    GTEST_SKIP() << "needs custom DaemonOptions (max_streams)";
  }
  DaemonOptions options;
  options.max_streams = 2;
  const std::string socket = Socket(options);

  auto client = PcrClient::Connect(socket, "admission-test").MoveValue();
  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 4;
  auto first = client->OpenStream(open).MoveValue();
  auto second = client->OpenStream(open).MoveValue();
  auto third = client->OpenStream(open);
  ASSERT_FALSE(third.ok());
  EXPECT_TRUE(third.status().code() == StatusCode::kResourceExhausted) << third.status();
  EXPECT_EQ(daemon_->active_streams(), 2);

  // Closing a stream frees its slot for the next admission.
  client->CloseStream(first.stream_id).MoveValue();
  auto fourth = client->OpenStream(open).MoveValue();
  EXPECT_NE(fourth.stream_id, second.stream_id);
  EXPECT_EQ(daemon_->active_streams(), 2);
}

TEST_F(ServeDaemonTest, DisconnectReleasesSlotsAndCacheShare) {
  if (!RequireInternalDaemon()) {
    GTEST_SKIP() << "needs daemon internals (active_streams, decode cache)";
  }
  const std::string socket = Socket();
  uint64_t cache_id = 0;
  {
    auto client = PcrClient::Connect(socket, "vanishing").MoveValue();
    OpenStreamRequest open;
    open.dataset_dir = dataset_dir_;
    open.max_epochs = 8;
    auto stream = client->OpenStream(open).MoveValue();
    cache_id = stream.cache_dataset_id;
    // Pull a couple of batches so the stream owns cache residency, then
    // hang up without CloseStream — a crashed trainer.
    client->NextBatch(stream.stream_id).MoveValue();
    client->NextBatch(stream.stream_id).MoveValue();
    // The decode workers insert into the cache asynchronously relative to
    // batch delivery, so poll for residency instead of asserting it.
    const auto warm_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < warm_deadline &&
           daemon_->decode_cache()->DatasetShareBytes(cache_id) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GT(daemon_->decode_cache()->DatasetShareBytes(cache_id), 0u);
    client->Close();
  }
  // The daemon notices the hangup and releases the admission slot, the
  // dataset registration, and the dataset's decode-cache byte share.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline &&
         (daemon_->active_streams() != 0 ||
          daemon_->decode_cache()->DatasetShareBytes(cache_id) != 0)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(daemon_->active_streams(), 0);
  EXPECT_EQ(daemon_->decode_cache()->DatasetShareBytes(cache_id), 0u);
}

TEST_F(ServeDaemonTest, ClientsShareServerDerivedCacheNamespace) {
  if (!RequireInternalDaemon()) {
    GTEST_SKIP() << "asserts against the in-process decode cache";
  }
  const std::string socket = Socket();
  uint64_t first_id = 0;
  {
    auto warm = PcrClient::Connect(socket, "warm").MoveValue();
    OpenStreamRequest open;
    open.dataset_dir = dataset_dir_;
    open.max_epochs = 1;
    open.shuffle = false;
    auto stream = warm->OpenStream(open).MoveValue();
    first_id = stream.cache_dataset_id;
    for (uint32_t k = 0; k < stream.num_records; ++k) {
      warm->NextBatch(stream.stream_id).MoveValue();
    }
    warm->CloseStream(stream.stream_id).MoveValue();
  }
  // A different client opening the same dataset lands in the same
  // namespace and is served from the first client's decoded entries.
  auto reuse = PcrClient::Connect(socket, "reuse").MoveValue();
  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 1;
  open.shuffle = false;
  auto stream = reuse->OpenStream(open).MoveValue();
  EXPECT_EQ(stream.cache_dataset_id, first_id);
  for (uint32_t k = 0; k < stream.num_records; ++k) {
    reuse->NextBatch(stream.stream_id).MoveValue();
  }
  auto stats = reuse->GetStats(stream.stream_id).MoveValue();
  ASSERT_EQ(stats.streams.size(), 1u);
  EXPECT_GT(stats.streams[0].cache_hits, 0);
  EXPECT_EQ(stats.streams[0].cache_misses, 0);
  reuse->CloseStream(stream.stream_id).MoveValue();
}

TEST_F(ServeDaemonTest, DerivedIdStableAcrossCallsAndGenerations) {
  const auto first = PcrDaemon::DeriveCacheDatasetId(env_, dataset_dir_);
  const auto again = PcrDaemon::DeriveCacheDatasetId(env_, dataset_dir_);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(*first, *again);

  // A rewritten dataset at the SAME path is a new writer generation: its
  // id must change so stale decoded entries cannot serve the new bytes.
  const std::string dir = root_ + "/regen";
  BuildDataset(dir, 16, /*seed_base=*/0);
  const uint64_t gen1 = PcrDaemon::DeriveCacheDatasetId(env_, dir).MoveValue();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  BuildDataset(dir, 16, /*seed_base=*/1000);  // Different content.
  const uint64_t gen2 = PcrDaemon::DeriveCacheDatasetId(env_, dir).MoveValue();
  EXPECT_NE(gen1, gen2);

  // Missing dataset: an error, not a synthetic id.
  EXPECT_FALSE(
      PcrDaemon::DeriveCacheDatasetId(env_, root_ + "/nope").ok());
}

TEST_F(ServeDaemonTest, GarbageFramesGetErrorThenDisconnect) {
  const std::string socket = Socket();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // A hostile 4 GiB length prefix: the daemon must answer with an error
  // frame and hang up without ever allocating the claimed payload.
  const char hostile[8] = {'\xff', '\xff', '\xff', '\xff', 1, 2, 3, 4};
  ASSERT_EQ(::send(fd, hostile, sizeof(hostile), MSG_NOSIGNAL), 8);
  FrameParser parser;
  char buf[4096];
  bool saw_eof = false;
  bool saw_error_frame = false;
  for (int i = 0; i < 100 && !saw_eof; ++i) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      saw_eof = true;
      break;
    }
    parser.Feed(Slice(buf, static_cast<size_t>(n)));
    Frame frame;
    while (parser.Next(&frame) == FrameParser::Outcome::kFrame) {
      if (frame.type == MessageType::kError) saw_error_frame = true;
    }
  }
  ::close(fd);
  EXPECT_TRUE(saw_eof);
  EXPECT_TRUE(saw_error_frame);
  // The daemon is still healthy: a well-behaved client connects and works.
  auto client = PcrClient::Connect(socket, "after-garbage").MoveValue();
  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 1;
  auto stream = client->OpenStream(open).MoveValue();
  client->CloseStream(stream.stream_id).MoveValue();
}

TEST_F(ServeDaemonTest, StopIsBoundedWithClientsMidStream) {
  if (!RequireInternalDaemon()) {
    GTEST_SKIP() << "stops the in-process daemon";
  }
  const std::string socket = Socket();
  auto client = PcrClient::Connect(socket, "stop-test").MoveValue();
  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 1000;  // Far more than the test will consume.
  auto stream = client->OpenStream(open).MoveValue();

  std::atomic<bool> got_error{false};
  std::thread consumer([&] {
    for (int k = 0; k < 1000000; ++k) {
      auto batch = client->NextBatch(stream.stream_id);
      if (!batch.ok()) {
        got_error.store(true);
        return;
      }
    }
  });
  // Let the consumer get properly mid-stream, then pull the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto t0 = std::chrono::steady_clock::now();
  daemon_->Stop();
  const double stop_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  consumer.join();
  EXPECT_TRUE(got_error.load());
  EXPECT_LT(stop_seconds, 10.0);
  daemon_->Stop();  // Idempotent.
}

TEST_F(ServeDaemonTest, StatsSurviveStreamChurn) {
  // Regression shape for a use-after-free: BuildStats snapshots stream
  // shared_ptrs under streams_mu_, then reads pipeline->io_stats() after
  // dropping the lock — racing another connection's teardown. The fix
  // keeps the pipeline alive until the last Stream reference drops;
  // daemon-wide Stats hammered against open/close/disconnect churn lets
  // the ASan and TSan CI passes prove it.
  const std::string socket = Socket();
  std::atomic<bool> done{false};
  std::atomic<int> stats_failures{0};
  std::thread stats_thread([&] {
    auto client = PcrClient::Connect(socket, "stats-hammer").MoveValue();
    while (!done.load(std::memory_order_acquire)) {
      if (!client->GetStats(0).ok()) {
        stats_failures.fetch_add(1);
        return;
      }
    }
  });
  for (int round = 0; round < 30; ++round) {
    auto client =
        PcrClient::Connect(socket, "churn-" + std::to_string(round))
            .MoveValue();
    OpenStreamRequest open;
    open.dataset_dir = dataset_dir_;
    open.max_epochs = 1;
    open.shuffle = false;
    auto stream = client->OpenStream(open).MoveValue();
    client->NextBatch(stream.stream_id).MoveValue();
    if (round % 2 == 0) {
      client->CloseStream(stream.stream_id).MoveValue();
    }
    // Odd rounds hang up without CloseStream — the disconnect teardown
    // path, which used to reset the pipeline out from under Stats.
  }
  done.store(true, std::memory_order_release);
  stats_thread.join();
  EXPECT_EQ(stats_failures.load(), 0);
}

TEST_F(ServeDaemonTest, MultiClientHammer) {
  // Concurrent clients on one daemon — the shape the TSan CI pass runs to
  // shake out races between reader threads, serve loops, and the caches.
  const std::string socket = Socket();
  constexpr int kHammerClients = 4;
  constexpr int kEpochs = 2;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kHammerClients; ++i) {
    threads.emplace_back([&, i] {
      auto client =
          PcrClient::Connect(socket, "hammer-" + std::to_string(i))
              .MoveValue();
      OpenStreamRequest open;
      open.dataset_dir = dataset_dir_;
      open.max_epochs = kEpochs;
      open.shuffle = true;
      open.seed = 100 + static_cast<uint64_t>(i);
      open.decode = (i % 2 == 0);   // Mix decoded and compressed streams,
      open.shm_plane = open.decode;  // and shm + socket data planes.
      auto stream = client->OpenStream(open).MoveValue();
      int images = 0;
      for (;;) {
        auto batch = client->NextBatch(stream.stream_id);
        if (!batch.ok()) {
          failures.fetch_add(1);
          return;
        }
        if (batch->end_of_stream) break;
        images += static_cast<int>(batch->images.size() +
                                   batch->jpegs.size());
      }
      if (images != 16 * kEpochs) failures.fetch_add(1);
      client->GetStats(stream.stream_id).MoveValue();
      client->CloseStream(stream.stream_id).MoveValue();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// --- Shared-memory data plane ----------------------------------------------

TEST(SlotRingTest, GenerationCookiesGateReleases) {
  SlotRing ring(2, 4096);
  auto a = ring.TryAcquire();
  auto b = ring.TryAcquire();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(a->second, b->second);  // Distinct live cookies.
  EXPECT_FALSE(ring.TryAcquire().has_value());  // All slots held.

  EXPECT_FALSE(ring.Release(a->first, a->second + 100));  // Forged cookie.
  EXPECT_FALSE(ring.Release(99, 1));                      // Out of range.
  EXPECT_EQ(ring.held_slots(), 2u);
  EXPECT_TRUE(ring.Release(a->first, a->second));
  EXPECT_FALSE(ring.Release(a->first, a->second));  // Double release.

  // The freed slot comes back with a NEW generation, so the old cookie is
  // dead even though the slot index recurs.
  auto c = ring.TryAcquire();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->first, a->first);
  EXPECT_NE(c->second, a->second);

  ring.ReclaimAll();
  EXPECT_EQ(ring.held_slots(), 0u);
  EXPECT_FALSE(ring.Release(b->first, b->second));  // Invalidated by reclaim.
  ring.Close();
  EXPECT_FALSE(ring.Acquire().has_value());
}

TEST(ShmSegmentTest, AdoptRejectsUndersizedSegment) {
  auto segment = ShmSegment::Create("adopt-test", 8192);
  ASSERT_TRUE(segment.ok()) << segment.status();
  // Adopt wants its own fd (it takes ownership either way).
  const int dup_fd = ::dup(segment->fd());
  ASSERT_GE(dup_fd, 0);
  auto bigger = ShmSegment::Adopt(dup_fd, 16384);
  EXPECT_FALSE(bigger.ok());  // fstat says 8 KiB < 16 KiB demanded.
  const int dup2_fd = ::dup(segment->fd());
  ASSERT_GE(dup2_fd, 0);
  auto exact = ShmSegment::Adopt(dup2_fd, 8192);
  ASSERT_TRUE(exact.ok()) << exact.status();
  // Same pages: a write through the creator is visible to the adopter.
  segment->data()[17] = 0xab;
  EXPECT_EQ(exact->data()[17], 0xab);
}

TEST(ProtocolTest, ShmMessagesRoundTrip) {
  ShmSegmentMsg seg;
  seg.stream_id = 7;
  seg.segment_bytes = 1 << 20;
  seg.slots = 4;
  seg.slot_bytes = 1 << 18;
  auto seg2 = ShmSegmentMsg::Decode(Slice(seg.Encode()));
  ASSERT_TRUE(seg2.ok());
  EXPECT_EQ(seg2->segment_bytes, seg.segment_bytes);
  EXPECT_EQ(seg2->slots, seg.slots);

  ShmAckRequest ack;
  ack.stream_id = 7;
  ack.accepted = true;
  auto ack2 = ShmAckRequest::Decode(Slice(ack.Encode()));
  ASSERT_TRUE(ack2.ok());
  EXPECT_TRUE(ack2->accepted);

  ReleaseSlotRequest rel;
  rel.stream_id = 7;
  rel.slot = 3;
  rel.generation = 12345;
  auto rel2 = ReleaseSlotRequest::Decode(Slice(rel.Encode()));
  ASSERT_TRUE(rel2.ok());
  EXPECT_EQ(rel2->slot, 3u);
  EXPECT_EQ(rel2->generation, 12345u);

  BatchDescriptorReply desc;
  desc.stream_id = 7;
  desc.record_index = 11;
  desc.scan_group = 2;
  desc.labels = {4, -1, 9};
  desc.bytes_read = 777;
  desc.slot = 1;
  desc.generation = 99;
  desc.payload_bytes = 24 + 6;
  desc.images.push_back({4, 2, 3, 0, 24});
  desc.images.push_back({2, 1, 3, 24, 6});
  auto desc2 = BatchDescriptorReply::Decode(Slice(desc.Encode()));
  ASSERT_TRUE(desc2.ok());
  EXPECT_EQ(desc2->labels, desc.labels);
  EXPECT_EQ(desc2->slot, 1u);
  EXPECT_EQ(desc2->generation, 99u);
  ASSERT_EQ(desc2->images.size(), 2u);
  EXPECT_EQ(desc2->images[1].offset, 24u);
  EXPECT_TRUE(ValidateBatchDescriptor(*desc2, 4, 4096).ok());

  // A client that predates the shm fields must read a capability-less
  // Hello, not garbage.
  HelloRequest hello;
  auto hello2 = HelloRequest::Decode(Slice(hello.Encode()));
  ASSERT_TRUE(hello2.ok());
  EXPECT_FALSE(hello2->shm_capable);
}

TEST(ProtocolTest, ValidateBatchDescriptorRejectsBadGeometry) {
  BatchDescriptorReply desc;
  desc.stream_id = 1;
  desc.slot = 0;
  desc.generation = 5;
  desc.payload_bytes = 24;
  desc.images.push_back({4, 2, 3, 0, 24});
  ASSERT_TRUE(ValidateBatchDescriptor(desc, 2, 4096).ok());

  BatchDescriptorReply bad = desc;
  bad.slot = 2;  // Out of range for a 2-slot ring.
  EXPECT_FALSE(ValidateBatchDescriptor(bad, 2, 4096).ok());
  bad = desc;
  bad.generation = 0;  // Never a live cookie.
  EXPECT_FALSE(ValidateBatchDescriptor(bad, 2, 4096).ok());
  bad = desc;
  bad.images[0].offset = 4096 - 23;  // offset + length spills past the slot.
  EXPECT_FALSE(ValidateBatchDescriptor(bad, 2, 4096).ok());
  bad = desc;
  bad.images[0].offset = ~0ull - 8;  // Offset chosen to wrap if added naively.
  EXPECT_FALSE(ValidateBatchDescriptor(bad, 2, 4096).ok());
  bad = desc;
  bad.payload_bytes = 23;  // Image bytes disagree with the total.
  EXPECT_FALSE(ValidateBatchDescriptor(bad, 2, 4096).ok());
}

TEST(ProtocolTest, DescriptorFrameByteFuzz) {
  // Flip every byte of a valid descriptor payload through a few patterns:
  // Decode must never crash, and anything it accepts must either pass the
  // bounds validation or be rejected by it — the client dereferences slot
  // memory only after ValidateBatchDescriptor approves.
  BatchDescriptorReply desc;
  desc.stream_id = 3;
  desc.record_index = 2;
  desc.labels = {1, 2, 3, 4};
  desc.slot = 1;
  desc.generation = 42;
  desc.payload_bytes = 48;
  desc.images.push_back({4, 2, 3, 0, 24});
  desc.images.push_back({4, 2, 3, 24, 24});
  const std::string payload = desc.Encode();
  constexpr uint32_t kSlots = 4;
  constexpr uint64_t kSlotBytes = 4096;
  for (size_t pos = 0; pos < payload.size(); ++pos) {
    for (const uint8_t pattern : {0x01, 0x80, 0xff}) {
      std::string mutated = payload;
      mutated[pos] = static_cast<char>(mutated[pos] ^ pattern);
      auto decoded = BatchDescriptorReply::Decode(Slice(mutated));
      if (!decoded.ok()) continue;
      const Status valid =
          ValidateBatchDescriptor(*decoded, kSlots, kSlotBytes);
      if (!valid.ok()) continue;
      // Survivors must be safe to dereference: every image inside the
      // slot, totals consistent.
      uint64_t total = 0;
      for (const WireImageDesc& img : decoded->images) {
        ASSERT_LE(img.length, kSlotBytes);
        ASSERT_LE(img.offset, kSlotBytes - img.length);
        total += img.length;
      }
      ASSERT_EQ(total, decoded->payload_bytes);
      ASSERT_LT(decoded->slot, kSlots);
    }
  }
  // Truncation sweep: a cut payload must never crash the decoder.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    (void)BatchDescriptorReply::Decode(Slice(payload.data(), cut));
  }
}

TEST_F(ServeDaemonTest, ListenRefusesLiveDaemonSocket) {
  if (!RequireInternalDaemon()) {
    GTEST_SKIP() << "starts daemons on controlled socket paths";
  }
  const std::string socket = Socket();  // First daemon, live.
  DaemonOptions second;
  second.socket_path = socket;
  auto clash = PcrDaemon::Start(env_, second);
  ASSERT_FALSE(clash.ok());
  EXPECT_TRUE(clash.status().IsAlreadyExists()) << clash.status();
  // The loser must not have unlinked the winner's socket out from under it.
  auto client = PcrClient::Connect(socket, "post-clash");
  EXPECT_TRUE(client.ok()) << client.status();

  // A stale socket file (bound once, no live listener) is taken over.
  const std::string stale = root_ + "/stale.sock";
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, stale.c_str(), stale.size() + 1);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ::close(fd);  // File stays behind; nobody listens.
  DaemonOptions takeover;
  takeover.socket_path = stale;
  auto revived = PcrDaemon::Start(env_, takeover);
  ASSERT_TRUE(revived.ok()) << revived.status();
  (*revived)->Stop();

  // A non-socket file at the path is refused outright.
  const std::string plain = root_ + "/not-a-socket";
  { std::ofstream(plain) << "precious"; }
  DaemonOptions blocked;
  blocked.socket_path = plain;
  auto refused = PcrDaemon::Start(env_, blocked);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsAlreadyExists()) << refused.status();
  EXPECT_TRUE(std::filesystem::exists(plain));  // Untouched.
}

TEST_F(ServeDaemonTest, ShmPlaneDeliversDecodedBatches) {
  auto client = PcrClient::Connect(Socket(), "shm-happy").MoveValue();
  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 1;
  open.shuffle = false;
  open.shm_plane = true;
  auto stream = client->OpenStream(open).MoveValue();
  ASSERT_GT(stream.shm_slots, 0u) << "daemon did not grant the shm plane";
  ASSERT_GT(stream.shm_slot_bytes, 0u);

  int images = 0;
  int shm_batches = 0;
  for (;;) {
    ASSERT_TRUE(client->SendNextBatchRequest(stream.stream_id).ok());
    auto batch = client->ReceiveServedBatch(stream.stream_id);
    ASSERT_TRUE(batch.ok()) << batch.status();
    if (batch->end_of_stream) break;
    if (batch->via_shm()) ++shm_batches;
    for (const ServedImageView& view : batch->images()) {
      const Image img = PcrClient::ToImage(view).MoveValue();
      EXPECT_EQ(img.width(), 48);
      EXPECT_EQ(img.height(), 32);
      ++images;
    }
  }
  EXPECT_EQ(images, 16);
  EXPECT_GT(shm_batches, 0);

  auto stats = client->GetStats(stream.stream_id).MoveValue();
  ASSERT_EQ(stats.streams.size(), 1u);
  EXPECT_EQ(stats.streams[0].shm_batches,
            static_cast<uint64_t>(shm_batches));
  // The shm plane copies each payload once (into the slot); the socket
  // plane would have moved it at least twice.
  EXPECT_GT(stats.streams[0].bytes_copied, 0u);
  client->CloseStream(stream.stream_id).MoveValue();
}

TEST_F(ServeDaemonTest, ShmCompatReceiveBatchStillDeepCopies) {
  // The pre-shm API keeps working against a shm stream: ReceiveBatch
  // resolves descriptors into self-contained BatchReply copies and returns
  // the slots immediately.
  auto client = PcrClient::Connect(Socket(), "shm-compat").MoveValue();
  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 1;
  open.shuffle = false;
  open.shm_plane = true;
  auto stream = client->OpenStream(open).MoveValue();
  int images = 0;
  for (;;) {
    auto batch = client->NextBatch(stream.stream_id).MoveValue();
    if (batch.end_of_stream) break;
    for (const WireImage& wire : batch.images) {
      EXPECT_TRUE(PcrClient::ToImage(wire).ok());
      ++images;
    }
  }
  EXPECT_EQ(images, 16);
  client->CloseStream(stream.stream_id).MoveValue();
}

TEST_F(ServeDaemonTest, ShmSlotExhaustionBackpressures) {
  if (!RequireInternalDaemon()) {
    GTEST_SKIP() << "needs custom DaemonOptions (shm_slots_per_stream)";
  }
  DaemonOptions options;
  options.shm_slots_per_stream = 1;  // Every delivery contends for one slot.
  auto client = PcrClient::Connect(Socket(options), "shm-squeeze").MoveValue();
  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 1;
  open.shuffle = false;
  open.shm_plane = true;
  open.max_inflight = 2;  // Two queued requests against one slot.
  auto stream = client->OpenStream(open).MoveValue();
  ASSERT_EQ(stream.shm_slots, 1u);

  // Pipeline two requests, then sit on the first delivery. The daemon
  // cannot place the second batch until the slot comes back, so it must
  // record a slot wait and park — NOT fail the stream.
  ASSERT_TRUE(client->SendNextBatchRequest(stream.stream_id).ok());
  ASSERT_TRUE(client->SendNextBatchRequest(stream.stream_id).ok());
  auto first = client->ReceiveServedBatch(stream.stream_id);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(first->via_shm());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  first->Release();  // Unblocks the parked delivery.
  auto second = client->ReceiveServedBatch(stream.stream_id);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_FALSE(second->end_of_stream);
  second->Release();

  auto stats = client->GetStats(stream.stream_id).MoveValue();
  ASSERT_EQ(stats.streams.size(), 1u);
  EXPECT_GE(stats.streams[0].shm_slot_waits, 1u);
  client->CloseStream(stream.stream_id).MoveValue();
}

TEST_F(ServeDaemonTest, DisconnectWhileHoldingSlotsReclaims) {
  if (!RequireInternalDaemon()) {
    GTEST_SKIP() << "needs daemon internals (active_streams)";
  }
  const std::string socket = Socket();
  {
    auto client = PcrClient::Connect(socket, "slot-hoarder").MoveValue();
    OpenStreamRequest open;
    open.dataset_dir = dataset_dir_;
    open.max_epochs = 1;
    open.shuffle = false;
    open.shm_plane = true;
    auto stream = client->OpenStream(open).MoveValue();
    ASSERT_GT(stream.shm_slots, 0u);
    ASSERT_TRUE(client->SendNextBatchRequest(stream.stream_id).ok());
    auto held = client->ReceiveServedBatch(stream.stream_id);
    ASSERT_TRUE(held.ok()) << held.status();
    ASSERT_TRUE(held->via_shm());
    client->Close();  // Hang up WITHOUT releasing the slot.
    // `held` dies after the hangup; its release credit has nowhere to go.
  }
  // The daemon's disconnect teardown must reclaim the stream (and with it
  // the lent slot) without waiting on the credit that will never arrive.
  for (int i = 0; i < 200 && daemon_->active_streams() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(daemon_->active_streams(), 0);

  // And the daemon is still fully serviceable on the shm plane.
  auto client = PcrClient::Connect(socket, "after-hoarder").MoveValue();
  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 1;
  open.shuffle = false;
  open.shm_plane = true;
  auto stream = client->OpenStream(open).MoveValue();
  auto batch = client->NextBatch(stream.stream_id).MoveValue();
  EXPECT_FALSE(batch.end_of_stream);
  EXPECT_FALSE(batch.images.empty());
}

TEST_F(ServeDaemonTest, FdPassFailureFallsBackToSocketPlane) {
  if (!RequireInternalDaemon()) {
    GTEST_SKIP() << "needs fault injection (shm_fail_fd_pass_for_test)";
  }
  DaemonOptions options;
  options.shm_fail_fd_pass_for_test = true;
  auto client = PcrClient::Connect(Socket(options), "fd-fail").MoveValue();
  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 1;
  open.shuffle = false;
  open.shm_plane = true;
  auto stream = client->OpenStream(open).MoveValue();
  // The daemon advertised slots, then "failed" the fd pass and withdrew
  // the plane. The stream must keep working on the socket, not error.
  int images = 0;
  for (;;) {
    ASSERT_TRUE(client->SendNextBatchRequest(stream.stream_id).ok());
    auto batch = client->ReceiveServedBatch(stream.stream_id);
    ASSERT_TRUE(batch.ok()) << batch.status();
    if (batch->end_of_stream) break;
    EXPECT_FALSE(batch->via_shm());
    images += static_cast<int>(batch->images().size());
  }
  EXPECT_EQ(images, 16);
  auto stats = client->GetStats(stream.stream_id).MoveValue();
  ASSERT_EQ(stats.streams.size(), 1u);
  EXPECT_EQ(stats.streams[0].shm_batches, 0u);
}

TEST_F(ServeDaemonTest, UndersizedSegmentFallsBackToSocketPlane) {
  if (!RequireInternalDaemon()) {
    GTEST_SKIP() << "needs fault injection (shm_undersize_segment_for_test)";
  }
  DaemonOptions options;
  options.shm_undersize_segment_for_test = true;
  auto client = PcrClient::Connect(Socket(options), "undersized").MoveValue();
  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 1;
  open.shuffle = false;
  open.shm_plane = true;
  auto stream = client->OpenStream(open).MoveValue();
  // The client's fstat validation must reject the too-small segment and
  // answer a rejecting ShmAck; the stream stays on the socket plane.
  int images = 0;
  for (;;) {
    auto batch = client->NextBatch(stream.stream_id).MoveValue();
    if (batch.end_of_stream) break;
    images += static_cast<int>(batch.images.size());
  }
  EXPECT_EQ(images, 16);
  auto stats = client->GetStats(stream.stream_id).MoveValue();
  ASSERT_EQ(stats.streams.size(), 1u);
  EXPECT_EQ(stats.streams[0].shm_batches, 0u);
}

TEST_F(ServeDaemonTest, ClientRejectingAckStaysOnSocketPlane) {
  auto client = PcrClient::Connect(Socket(), "shm-refusenik").MoveValue();
  client->set_reject_shm_for_test(true);
  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 1;
  open.shuffle = false;
  open.shm_plane = true;
  auto stream = client->OpenStream(open).MoveValue();
  int images = 0;
  for (;;) {
    ASSERT_TRUE(client->SendNextBatchRequest(stream.stream_id).ok());
    auto batch = client->ReceiveServedBatch(stream.stream_id);
    ASSERT_TRUE(batch.ok()) << batch.status();
    if (batch->end_of_stream) break;
    EXPECT_FALSE(batch->via_shm());
    images += static_cast<int>(batch->images().size());
  }
  EXPECT_EQ(images, 16);
  client->CloseStream(stream.stream_id).MoveValue();
}

TEST_F(ServeDaemonTest, ZeroCopyCacheHitsCounted) {
  if (!RequireInternalDaemon()) {
    GTEST_SKIP() << "asserts against per-stream cache-hit stats";
  }
  // Two passes over the same records: the second stream's batches come out
  // of the decode cache by reference (no deep copy on the consumer path),
  // visible as zero_copy_hits in its stream stats. Sequential streams (not
  // one two-epoch stream) so every insert finishes before the rereads.
  auto client = PcrClient::Connect(Socket(), "zero-copy").MoveValue();
  OpenStreamRequest open;
  open.dataset_dir = dataset_dir_;
  open.max_epochs = 1;
  open.shuffle = false;
  open.shm_plane = true;
  for (int round = 0; round < 2; ++round) {
    auto stream = client->OpenStream(open).MoveValue();
    for (;;) {
      auto batch = client->NextBatch(stream.stream_id).MoveValue();
      if (batch.end_of_stream) break;
    }
    auto stats = client->GetStats(stream.stream_id).MoveValue();
    ASSERT_EQ(stats.streams.size(), 1u);
    if (round == 1) {
      EXPECT_GT(stats.streams[0].cache_hits, 0u);
      EXPECT_EQ(stats.streams[0].zero_copy_hits, stats.streams[0].cache_hits);
      EXPECT_GT(stats.streams[0].zero_copy_bytes, 0u);
    }
    client->CloseStream(stream.stream_id).MoveValue();
  }
}

}  // namespace
}  // namespace pcr::serve
