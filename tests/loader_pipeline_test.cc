// Tests for the staged LoaderPipeline: stage-stats accounting, Status
// propagation from the I/O and decode stages, shutdown with full and empty
// queues, end-of-stream epoch semantics, and shuffle determinism (every
// record delivered exactly once per epoch regardless of thread count).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "core/sharded_record_source.h"
#include "image/image.h"
#include "jpeg/codec.h"
#include "loader/decode_cache.h"
#include "loader/pipeline.h"
#include "loader/prefetcher.h"
#include "storage/sim_env.h"
#include "util/logging.h"

namespace pcr {
namespace {

std::string MakeTestJpeg() {
  Image img(32, 24, 3);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      img.set(x, y, 0, static_cast<uint8_t>(x * 8));
      img.set(x, y, 1, static_cast<uint8_t>(y * 10));
      img.set(x, y, 2, 128);
    }
  }
  jpeg::EncodeOptions options;
  options.quality = 85;
  return jpeg::Encode(img, options).MoveValue();
}

/// RecordSource over a private in-memory SimEnv, with injectable failures
/// and I/O latency. Fetches flow through the real plan/submit/complete path
/// (SimEnv's IoScheduler against a RAM-speed device on the real clock), so
/// these tests exercise the pipeline's actual async machinery.
class FakeSource : public RecordSource {
 public:
  FakeSource(int num_records, int images_per_record)
      : num_records_(num_records), images_per_record_(images_per_record),
        env_(std::make_unique<SimEnv>(DeviceProfile::Ram(),
                                      RealClock::Get())),
        jpeg_(MakeTestJpeg()) {
    for (int r = 0; r < num_records_; ++r) {
      const std::string payload(
          RecordReadBytes(r, num_scan_groups()), 'x');
      PCR_CHECK(
          env_->WriteStringToFile(RecordPath(r), Slice(payload)).ok());
    }
  }

  int num_records() const override { return num_records_; }
  int num_images() const override {
    return num_records_ * images_per_record_;
  }
  int num_scan_groups() const override { return 4; }
  uint64_t RecordReadBytes(int, int scan_group) const override {
    return 256 * static_cast<uint64_t>(std::clamp(scan_group, 1, 4));
  }
  int RecordImages(int) const override { return images_per_record_; }
  std::string format_name() const override { return "fake"; }
  uint64_t total_bytes() const override {
    return num_records_ * RecordReadBytes(0, 4);
  }

  using RecordSource::PlanFetch;
  Result<FetchPlan> PlanFetch(int record, int scan_group,
                              const FetchResident* resident) const override {
    if (fetch_delay_.count() > 0) std::this_thread::sleep_for(fetch_delay_);
    if (record == fail_fetch_at_) {
      return fetch_failure_;
    }
    FetchPlan plan;
    plan.record = record;
    plan.scan_group = std::clamp(scan_group, 1, num_scan_groups());
    plan.env = env_.get();
    const uint64_t want = RecordReadBytes(record, plan.scan_group);
    // Mirror PcrDataset's residency contract: a usable in-memory prefix
    // (groups are byte prefixes of deeper groups here too) shrinks the
    // fetch to the delta bytes.
    uint64_t covered = 0;
    if (resident != nullptr && resident->bytes != nullptr &&
        resident->scan_group >= 1) {
      const uint64_t have = RecordReadBytes(
          record, std::min(resident->scan_group, num_scan_groups()));
      if (resident->bytes->size() >= have) covered = std::min(have, want);
    }
    if (covered > 0) {
      plan.resident_bytes = resident->bytes;
      plan.segments.push_back(
          FetchSegment{RecordPath(record), 0, covered, /*resident=*/true});
      if (covered < want) {
        plan.segments.push_back(FetchSegment{RecordPath(record), covered,
                                             want - covered,
                                             /*resident=*/false});
      }
    } else {
      plan.segments.push_back(FetchSegment{RecordPath(record), 0, want});
    }
    return plan;
  }

  Result<RecordBatch> AssembleRecord(RawRecord raw) const override {
    if (raw.record == fail_assemble_at_) {
      return Status::Corruption("injected assemble failure");
    }
    RecordBatch batch;
    batch.bytes_read = raw.bytes_read;
    batch.backing = raw.record == corrupt_jpeg_at_ ? "not a jpeg" : jpeg_;
    for (int i = 0; i < images_per_record_; ++i) {
      batch.labels.push_back(raw.record);
      // Every image of the record shares the one backing stream.
      batch.spans.push_back(ByteSpan{0, batch.backing.size()});
    }
    return batch;
  }

  void set_fail_fetch_at(int record) { fail_fetch_at_ = record; }
  void set_fetch_failure(Status status) {
    fetch_failure_ = std::move(status);
  }
  void set_fail_assemble_at(int record) { fail_assemble_at_ = record; }
  void set_corrupt_jpeg_at(int record) { corrupt_jpeg_at_ = record; }
  void set_fetch_delay(std::chrono::milliseconds delay) {
    fetch_delay_ = delay;
  }

 private:
  static std::string RecordPath(int record) {
    return "fake/record-" + std::to_string(record);
  }

  int num_records_;
  int images_per_record_;
  std::unique_ptr<SimEnv> env_;
  std::string jpeg_;
  int fail_fetch_at_ = -1;
  Status fetch_failure_ = Status::IOError("injected fetch failure");
  int fail_assemble_at_ = -1;
  int corrupt_jpeg_at_ = -1;
  std::chrono::milliseconds fetch_delay_{0};
};

TEST(LoaderPipelineTest, DeliversEveryRecordExactlyOncePerEpoch) {
  FakeSource source(48, 2);
  LoaderPipelineOptions options;
  options.io_threads = 8;
  options.decode_threads = 8;
  options.fetch_queue_depth = 4;
  options.output_queue_depth = 4;
  options.shuffle = true;
  options.max_epochs = 2;
  LoaderPipeline pipeline(&source, options);

  std::map<int, int> deliveries;
  for (;;) {
    auto batch = pipeline.Next();
    if (!batch.ok()) {
      EXPECT_EQ(batch.status().code(), StatusCode::kOutOfRange)
          << batch.status();
      break;
    }
    EXPECT_EQ(batch->size(), 2);
    EXPECT_EQ(static_cast<int>(batch->images.size()), 2);
    ++deliveries[batch->record_index];
  }
  ASSERT_EQ(deliveries.size(), 48u);
  for (const auto& [record, count] : deliveries) {
    EXPECT_EQ(count, 2) << "record " << record;
  }
  EXPECT_EQ(pipeline.batches_delivered(), 96);
  EXPECT_TRUE(pipeline.status().ok());
}

TEST(LoaderPipelineTest, StageStatsAccountForEveryItemAndByte) {
  FakeSource source(24, 2);
  LoaderPipelineOptions options;
  options.io_threads = 3;
  options.decode_threads = 2;
  options.max_epochs = 1;
  options.shuffle = false;
  options.scan_policy = std::make_shared<FixedScanPolicy>(2);
  LoaderPipeline pipeline(&source, options);

  uint64_t consumed_bytes = 0;
  int batches = 0;
  for (;;) {
    auto batch = pipeline.Next();
    if (!batch.ok()) break;
    consumed_bytes += batch->bytes_read;
    ++batches;
  }
  EXPECT_EQ(batches, 24);

  const StageStatsSnapshot io = pipeline.io_stats();
  const StageStatsSnapshot decode = pipeline.decode_stats();
  EXPECT_EQ(io.name, "io");
  EXPECT_EQ(io.threads, 3);
  EXPECT_EQ(io.items, 24);
  EXPECT_EQ(io.bytes, consumed_bytes);
  EXPECT_EQ(io.bytes, 24u * source.RecordReadBytes(0, 2));
  EXPECT_EQ(decode.name, "decode");
  EXPECT_EQ(decode.threads, 2);
  EXPECT_EQ(decode.items, 24);
  EXPECT_EQ(decode.bytes, consumed_bytes);
  EXPECT_GT(decode.busy_seconds, 0.0);  // 48 real JPEG decodes.
  EXPECT_GE(io.busy_seconds, 0.0);
  EXPECT_GT(io.queue_capacity, 0u);
  EXPECT_GT(decode.queue_capacity, 0u);
  // All stall time is attributed to exactly one of the two stages.
  EXPECT_DOUBLE_EQ(
      pipeline.stall_seconds(),
      pipeline.io_stall_seconds() + pipeline.decode_stall_seconds());
}

TEST(LoaderPipelineTest, FetchFailureSurfacesFromNext) {
  FakeSource source(16, 1);
  source.set_fail_fetch_at(5);
  LoaderPipelineOptions options;
  options.io_threads = 2;
  options.decode_threads = 2;
  options.shuffle = false;
  LoaderPipeline pipeline(&source, options);

  Status failure = Status::OK();
  for (int i = 0; i < 64; ++i) {
    auto batch = pipeline.Next();
    if (!batch.ok()) {
      failure = batch.status();
      break;
    }
  }
  ASSERT_FALSE(failure.ok()) << "fetch failure never surfaced";
  EXPECT_TRUE(failure.IsIOError()) << failure;
  EXPECT_NE(failure.message().find("injected fetch failure"),
            std::string::npos)
      << failure;
  EXPECT_NE(failure.message().find("I/O stage"), std::string::npos) << failure;
  EXPECT_EQ(pipeline.status(), failure);
}

TEST(LoaderPipelineTest, AssembleFailureSurfacesFromNext) {
  FakeSource source(16, 1);
  source.set_fail_assemble_at(3);
  LoaderPipelineOptions options;
  options.shuffle = false;
  LoaderPipeline pipeline(&source, options);

  Status failure = Status::OK();
  for (int i = 0; i < 64; ++i) {
    auto batch = pipeline.Next();
    if (!batch.ok()) {
      failure = batch.status();
      break;
    }
  }
  ASSERT_FALSE(failure.ok()) << "assemble failure never surfaced";
  EXPECT_TRUE(failure.IsCorruption()) << failure;
  EXPECT_NE(failure.message().find("decode stage"), std::string::npos)
      << failure;
}

TEST(LoaderPipelineTest, JpegDecodeFailureSurfacesFromNext) {
  FakeSource source(16, 1);
  source.set_corrupt_jpeg_at(2);
  LoaderPipelineOptions options;
  options.shuffle = false;
  LoaderPipeline pipeline(&source, options);

  Status failure = Status::OK();
  for (int i = 0; i < 64; ++i) {
    auto batch = pipeline.Next();
    if (!batch.ok()) {
      failure = batch.status();
      break;
    }
  }
  ASSERT_FALSE(failure.ok()) << "decode failure never surfaced";
  EXPECT_NE(failure.message().find("decode stage"), std::string::npos)
      << failure;
}

TEST(LoaderPipelineTest, StopWithFullQueuesDoesNotHang) {
  FakeSource source(64, 1);
  LoaderPipelineOptions options;
  options.io_threads = 4;
  options.decode_threads = 4;
  options.fetch_queue_depth = 1;
  options.output_queue_depth = 1;
  LoaderPipeline pipeline(&source, options);
  // Consume nothing: both queues fill and every worker blocks on a push.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  pipeline.Stop();
  auto batch = pipeline.Next();
  // Queued batches may drain first; a stopped pipeline ends in Aborted.
  while (batch.ok()) batch = pipeline.Next();
  EXPECT_EQ(batch.status().code(), StatusCode::kAborted) << batch.status();
}

TEST(LoaderPipelineTest, StopWithEmptyQueuesDoesNotHang) {
  FakeSource source(64, 1);
  source.set_fetch_delay(std::chrono::milliseconds(20));
  LoaderPipelineOptions options;
  options.io_threads = 1;
  LoaderPipeline pipeline(&source, options);
  // Stop before the slow fetches deliver anything.
  pipeline.Stop();
  auto batch = pipeline.Next();
  while (batch.ok()) batch = pipeline.Next();
  EXPECT_EQ(batch.status().code(), StatusCode::kAborted) << batch.status();
}

TEST(LoaderPipelineTest, SlowStorageAttributesStallsToIo) {
  FakeSource source(8, 1);
  source.set_fetch_delay(std::chrono::milliseconds(5));
  LoaderPipelineOptions options;
  options.io_threads = 1;
  options.decode_threads = 2;
  options.max_epochs = 1;
  LoaderPipeline pipeline(&source, options);
  for (;;) {
    auto batch = pipeline.Next();
    if (!batch.ok()) break;
  }
  EXPECT_GT(pipeline.io_stall_seconds(), 0.0);
  EXPECT_GT(pipeline.stall_seconds(), 0.0);
}

TEST(LoaderPipelineTest, DecodeOffDeliversAssembledJpegs) {
  FakeSource source(6, 3);
  LoaderPipelineOptions options;
  options.decode = false;
  options.max_epochs = 1;
  LoaderPipeline pipeline(&source, options);
  int batches = 0;
  for (;;) {
    auto batch = pipeline.Next();
    if (!batch.ok()) break;
    EXPECT_EQ(batch->num_jpegs(), 3);
    EXPECT_GT(batch->jpeg(0).size(), 0u);
    EXPECT_TRUE(batch->images.empty());
    ++batches;
  }
  EXPECT_EQ(batches, 6);
}

TEST(LoaderPipelineTest, PrefetchingLoaderAdapterPreservesBehavior) {
  FakeSource source(32, 2);
  PrefetchOptions options;
  options.num_threads = 2;
  options.queue_depth = 4;
  options.loader.scan_policy = std::make_shared<FixedScanPolicy>(1);
  PrefetchingLoader loader(&source, options);
  for (int i = 0; i < 12; ++i) {
    auto batch = loader.Next();
    ASSERT_TRUE(batch.ok()) << batch.status();
    EXPECT_EQ(batch->scan_group, 1);
    EXPECT_GT(batch->size(), 0);
  }
  loader.Stop();
  auto stopped = loader.Next();
  while (stopped.ok()) stopped = loader.Next();
  EXPECT_EQ(stopped.status().message(), "prefetching loader stopped");
  EXPECT_GE(loader.batches_delivered(), 12);
  EXPECT_GE(loader.io_stats().items, 12);
  EXPECT_GE(loader.decode_stats().items, 12);
  EXPECT_DOUBLE_EQ(loader.stall_seconds(), loader.io_stall_seconds() +
                                               loader.decode_stall_seconds());
}

TEST(LoaderPipelineTest, PrefetchPassesThroughAbortedStageFailures) {
  // An Aborted-coded *storage* failure must not be rewritten into the
  // generic "prefetching loader stopped" message: only Stop() is generic.
  FakeSource source(16, 1);
  source.set_fail_fetch_at(0);
  source.set_fetch_failure(Status::Aborted("lease lost on shard"));
  PrefetchOptions options;
  options.loader.shuffle = false;
  PrefetchingLoader loader(&source, options);
  auto batch = loader.Next();
  while (batch.ok()) batch = loader.Next();
  EXPECT_NE(batch.status().message().find("lease lost on shard"),
            std::string::npos)
      << batch.status();
}

TEST(LoaderPipelineTest, SecondEpochIsServedEntirelyFromTheCache) {
  FakeSource source(12, 2);
  DecodeCacheOptions cache_options;
  cache_options.capacity_bytes = 64ull << 20;
  cache_options.shards = 4;
  auto cache = std::make_shared<DecodeCache>(cache_options);
  const uint64_t dataset_id = cache->RegisterDataset();

  auto run_epoch = [&](std::map<int, LoadedBatch>* batches) {
    LoaderPipelineOptions options;
    options.io_threads = 2;
    options.decode_threads = 2;
    options.max_epochs = 1;
    options.scan_policy = std::make_shared<FixedScanPolicy>(2);
    options.decode_cache = cache;
    options.cache_dataset_id = dataset_id;
    LoaderPipeline pipeline(&source, options);
    for (;;) {
      auto batch = pipeline.Next();
      if (!batch.ok()) {
        EXPECT_EQ(batch.status().code(), StatusCode::kOutOfRange)
            << batch.status();
        break;
      }
      batches->emplace(batch->record_index, std::move(batch).MoveValue());
    }
    return std::make_pair(pipeline.io_stats(), pipeline.decode_stats());
  };

  std::map<int, LoadedBatch> first, second;
  const auto [io1, decode1] = run_epoch(&first);
  EXPECT_EQ(io1.cache_hits, 0);
  EXPECT_EQ(io1.cache_misses, 12);
  EXPECT_EQ(decode1.items, 12);
  EXPECT_GT(io1.cache_bytes, 0u);  // Occupancy reported via the snapshot.

  const auto [io2, decode2] = run_epoch(&second);
  EXPECT_EQ(io2.cache_hits, 12);  // No fetch, no decode in epoch 2.
  EXPECT_EQ(io2.cache_misses, 0);
  EXPECT_EQ(io2.items, 0);
  EXPECT_EQ(decode2.items, 0);

  // Cache-served batches are pixel-identical to decoded ones.
  ASSERT_EQ(first.size(), 12u);
  ASSERT_EQ(second.size(), 12u);
  for (const auto& [record, batch] : first) {
    const LoadedBatch& cached = second.at(record);
    ASSERT_EQ(cached.size(), batch.size());
    EXPECT_EQ(cached.labels, batch.labels);
    for (int i = 0; i < batch.size(); ++i) {
      ASSERT_TRUE(cached.images[i].SameShape(batch.images[i]));
      EXPECT_EQ(std::memcmp(cached.images[i].data(), batch.images[i].data(),
                            batch.images[i].size_bytes()),
                0);
    }
  }
}

TEST(LoaderPipelineTest, CachedMultiEpochStreamKeepsExactlyOnceSemantics) {
  FakeSource source(16, 1);
  LoaderPipelineOptions options;
  options.io_threads = 4;
  options.decode_threads = 4;
  options.max_epochs = 3;
  options.decode_cache_bytes = 64ull << 20;  // Private cache.
  options.scan_policy = std::make_shared<FixedScanPolicy>(1);
  LoaderPipeline pipeline(&source, options);
  ASSERT_NE(pipeline.decode_cache(), nullptr);

  std::map<int, int> deliveries;
  for (;;) {
    auto batch = pipeline.Next();
    if (!batch.ok()) {
      EXPECT_EQ(batch.status().code(), StatusCode::kOutOfRange)
          << batch.status();
      break;
    }
    ++deliveries[batch->record_index];
  }
  // The cache must not duplicate or swallow deliveries: exactly once per
  // epoch per record, ending in OutOfRange.
  ASSERT_EQ(deliveries.size(), 16u);
  for (const auto& [record, count] : deliveries) {
    EXPECT_EQ(count, 3) << "record " << record;
  }
  // How many epoch-2/3 tickets hit depends on how far prefetch races past
  // the first epoch's inserts — any count can lose that race under load, so
  // assert the scheduling-independent accounting instead: every ticket is
  // either a hit or a miss, and exactly the misses get decoded. The
  // hit-dominated steady state is covered deterministically by
  // SecondEpochIsServedEntirelyFromTheCache.
  EXPECT_EQ(pipeline.io_stats().cache_hits + pipeline.io_stats().cache_misses,
            48);
  EXPECT_EQ(pipeline.decode_stats().items, pipeline.io_stats().cache_misses);
  EXPECT_TRUE(pipeline.status().ok());
}

TEST(LoaderPipelineTest, OversizeBatchesStreamWithoutCaching) {
  FakeSource source(6, 2);
  LoaderPipelineOptions options;
  options.max_epochs = 2;
  options.decode_cache_bytes = 1024;  // Every decoded batch exceeds a shard.
  options.decode_cache_shards = 1;
  options.scan_policy = std::make_shared<FixedScanPolicy>(1);
  LoaderPipeline pipeline(&source, options);

  std::map<int, int> deliveries;
  for (;;) {
    auto batch = pipeline.Next();
    if (!batch.ok()) break;
    ++deliveries[batch->record_index];
  }
  ASSERT_EQ(deliveries.size(), 6u);
  for (const auto& [record, count] : deliveries) {
    EXPECT_EQ(count, 2) << "record " << record;
  }
  // Nothing admitted: both epochs decode, the cache stays empty.
  EXPECT_EQ(pipeline.io_stats().cache_hits, 0);
  EXPECT_EQ(pipeline.decode_stats().items, 12);
  EXPECT_EQ(pipeline.decode_cache()->stats().entries, 0);
}

TEST(LoaderPipelineTest, DecodeOffDisablesTheCache) {
  FakeSource source(4, 1);
  LoaderPipelineOptions options;
  options.decode = false;
  options.decode_cache_bytes = 1ull << 20;
  options.max_epochs = 1;
  LoaderPipeline pipeline(&source, options);
  EXPECT_EQ(pipeline.decode_cache(), nullptr);
  for (;;) {
    auto batch = pipeline.Next();
    if (!batch.ok()) break;
    EXPECT_TRUE(batch->images.empty());
  }
}

TEST(LoaderPipelineTest, SetScanPolicySwitchesLiveStream) {
  FakeSource source(64, 1);
  LoaderPipelineOptions options;
  options.io_threads = 1;  // Small pipeline: the swap surfaces quickly.
  options.decode_threads = 1;
  options.fetch_queue_depth = 1;
  options.output_queue_depth = 1;
  options.max_epochs = 4;
  options.scan_policy = std::make_shared<FixedScanPolicy>(1);
  LoaderPipeline pipeline(&source, options);

  auto first = pipeline.Next();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->scan_group, 1);

  pipeline.set_scan_policy(std::make_shared<FixedScanPolicy>(3));
  bool saw_new_group = false;
  for (;;) {
    auto batch = pipeline.Next();
    if (!batch.ok()) break;
    if (batch->scan_group == 3) {
      saw_new_group = true;
      pipeline.Stop();
      break;
    }
  }
  EXPECT_TRUE(saw_new_group) << "live policy swap never took effect";
}

TEST(LoaderPipelineTest, SynchronousDataLoaderUsesTheCache) {
  FakeSource source(8, 2);
  LoaderOptions options;
  options.decode_cache_bytes = 16ull << 20;
  options.shuffle = false;
  DataLoader loader(&source, options);
  ASSERT_NE(loader.decode_cache(), nullptr);

  auto first = loader.LoadRecord(5, 2);
  ASSERT_TRUE(first.ok()) << first.status();
  auto again = loader.LoadRecord(5, 2);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(loader.stats().cache_hits, 1);
  EXPECT_EQ(loader.stats().records_loaded, 2);
  ASSERT_EQ(again->size(), first->size());
  for (int i = 0; i < first->size(); ++i) {
    EXPECT_EQ(std::memcmp(again->images[i].data(), first->images[i].data(),
                          first->images[i].size_bytes()),
              0);
  }
  // A different scan group is a different key.
  auto other = loader.LoadRecord(5, 1);
  ASSERT_TRUE(other.ok()) << other.status();
  EXPECT_EQ(loader.stats().cache_hits, 1);
}

TEST(LoaderPipelineTest, AsyncWindowDeliversExactlyOncePerEpoch) {
  // Deep submission windows on many workers must not duplicate or drop
  // tickets: 8 workers x 8 in flight against 64 records over 2 epochs.
  FakeSource source(64, 1);
  LoaderPipelineOptions options;
  options.io_threads = 8;
  options.io_inflight = 8;
  options.decode_threads = 4;
  options.fetch_queue_depth = 4;
  options.output_queue_depth = 4;
  options.shuffle = true;
  options.max_epochs = 2;
  LoaderPipeline pipeline(&source, options);

  std::map<int, int> deliveries;
  for (;;) {
    auto batch = pipeline.Next();
    if (!batch.ok()) {
      EXPECT_EQ(batch.status().code(), StatusCode::kOutOfRange)
          << batch.status();
      break;
    }
    ++deliveries[batch->record_index];
  }
  ASSERT_EQ(deliveries.size(), 64u);
  for (const auto& [record, count] : deliveries) {
    EXPECT_EQ(count, 2) << "record " << record;
  }
  EXPECT_EQ(pipeline.batches_delivered(), 128);
  EXPECT_TRUE(pipeline.status().ok());
  EXPECT_EQ(pipeline.io_stats().items, 128);
}

TEST(LoaderPipelineTest, SubmissionWindowGaugesAreReported) {
  FakeSource source(32, 1);
  LoaderPipelineOptions options;
  options.io_threads = 1;
  options.io_inflight = 4;
  options.max_epochs = 1;
  LoaderPipeline pipeline(&source, options);
  for (;;) {
    auto batch = pipeline.Next();
    if (!batch.ok()) break;
  }
  const StageStatsSnapshot io = pipeline.io_stats();
  EXPECT_EQ(io.submission_window, 4);
  EXPECT_GT(io.mean_in_flight, 0.0);
  EXPECT_LE(io.mean_in_flight, 4.0);
  EXPECT_GT(io.submission_occupancy(), 0.0);
  EXPECT_LE(io.submission_occupancy(), 1.0);
  // The decode stage has no submission window.
  EXPECT_EQ(pipeline.decode_stats().submission_window, 0);
}

TEST(LoaderPipelineTest, WindowOfOneKeepsTheBlockingShape) {
  FakeSource source(24, 2);
  LoaderPipelineOptions options;
  options.io_threads = 2;
  options.io_inflight = 1;
  options.max_epochs = 1;
  LoaderPipeline pipeline(&source, options);
  int batches = 0;
  for (;;) {
    auto batch = pipeline.Next();
    if (!batch.ok()) break;
    ++batches;
  }
  EXPECT_EQ(batches, 24);
  const StageStatsSnapshot io = pipeline.io_stats();
  EXPECT_EQ(io.submission_window, 1);
  EXPECT_LE(io.mean_in_flight, 1.0);  // Never more than one read open.
}

TEST(LoaderPipelineTest, ShardedSourceStreamsThroughAsyncPipeline) {
  // Two shards (each with its own backend SimEnv inside FakeSource) behind
  // one pipeline: global numbering survives concurrency, and labels (the
  // shard-local record index) prove per-shard routing.
  std::vector<std::unique_ptr<RecordSource>> shards;
  shards.push_back(std::make_unique<FakeSource>(8, 1));
  shards.push_back(std::make_unique<FakeSource>(8, 1));
  auto sharded = ShardedRecordSource::Create(std::move(shards)).MoveValue();

  LoaderPipelineOptions options;
  options.io_threads = 4;
  options.io_inflight = 4;
  options.max_epochs = 2;
  LoaderPipeline pipeline(sharded.get(), options);

  std::map<int, int> deliveries;
  for (;;) {
    auto batch = pipeline.Next();
    if (!batch.ok()) {
      EXPECT_EQ(batch.status().code(), StatusCode::kOutOfRange)
          << batch.status();
      break;
    }
    ASSERT_EQ(batch->size(), 1);
    const int global = batch->record_index;
    const int local = global < 8 ? global : global - 8;
    EXPECT_EQ(batch->labels[0], local) << "record " << global;
    ++deliveries[global];
  }
  ASSERT_EQ(deliveries.size(), 16u);
  for (const auto& [record, count] : deliveries) {
    EXPECT_EQ(count, 2) << "record " << record;
  }
}

TEST(LoaderPipelineTest, ShardFailureSurfacesWithShardContext) {
  std::vector<std::unique_ptr<RecordSource>> shards;
  shards.push_back(std::make_unique<FakeSource>(4, 1));
  auto failing = std::make_unique<FakeSource>(4, 1);
  failing->set_fail_fetch_at(1);
  shards.push_back(std::move(failing));
  auto sharded = ShardedRecordSource::Create(std::move(shards)).MoveValue();

  LoaderPipelineOptions options;
  options.shuffle = false;
  options.io_inflight = 2;
  LoaderPipeline pipeline(sharded.get(), options);
  auto batch = pipeline.Next();
  while (batch.ok()) batch = pipeline.Next();
  EXPECT_TRUE(batch.status().IsIOError()) << batch.status();
  EXPECT_NE(batch.status().message().find("shard 1"), std::string::npos)
      << batch.status();
  EXPECT_NE(batch.status().message().find("injected fetch failure"),
            std::string::npos)
      << batch.status();
}

TEST(LoaderPipelineTest, SecondPassIsServedFromThePrefixCache) {
  FakeSource source(12, 2);
  auto cache = std::make_shared<PrefixCache>(PrefixCacheOptions{});
  const uint64_t dataset_id = cache->RegisterDataset();

  // One pipeline per pass over the shared cache: pass boundaries are then
  // deterministic (no ticket can race ahead of the pass that warms it).
  auto run_pass = [&](int scan_group) {
    LoaderPipelineOptions options;
    options.io_threads = 2;
    options.decode_threads = 2;
    options.max_epochs = 1;
    options.scan_policy = std::make_shared<FixedScanPolicy>(scan_group);
    options.prefix_cache = cache;
    options.prefix_dataset_id = dataset_id;
    LoaderPipeline pipeline(&source, options);
    int batches = 0;
    for (;;) {
      auto batch = pipeline.Next();
      if (!batch.ok()) break;
      EXPECT_EQ(batch->size(), 2);
      ++batches;
    }
    EXPECT_EQ(batches, 12);
    EXPECT_TRUE(pipeline.status().ok());
    return pipeline.io_stats();
  };

  const StageStatsSnapshot first = run_pass(2);
  EXPECT_EQ(first.prefix_hits, 0);
  EXPECT_EQ(first.prefix_misses, 12);
  EXPECT_EQ(first.bytes, 12u * source.RecordReadBytes(0, 2));

  // Same quality again: every plan is fully resident — records still flow
  // to decode, but storage serves zero bytes.
  const StageStatsSnapshot second = run_pass(2);
  EXPECT_EQ(second.prefix_hits, 12);
  EXPECT_EQ(second.prefix_misses, 0);
  EXPECT_EQ(second.items, 12);
  EXPECT_EQ(second.bytes, 0u);

  // A quality upgrade fetches only each record's delta bytes.
  const StageStatsSnapshot upgrade = run_pass(4);
  EXPECT_EQ(upgrade.prefix_hits, 12);
  EXPECT_EQ(upgrade.bytes,
            12u * (source.RecordReadBytes(0, 4) - source.RecordReadBytes(0, 2)));
}

TEST(LoaderPipelineTest, PrivatePrefixCacheTurnsEpochTwoIntoZeroIo) {
  FakeSource source(8, 1);
  LoaderPipelineOptions options;
  options.io_threads = 1;  // Serial I/O: epoch 2 cannot outrun the inserts.
  options.io_inflight = 1;
  options.fetch_queue_depth = 1;
  options.max_epochs = 2;
  options.shuffle = false;
  options.prefix_cache_bytes = 16ull << 20;  // Private per-pipeline cache.
  options.scan_policy = std::make_shared<FixedScanPolicy>(3);
  LoaderPipeline pipeline(&source, options);
  int batches = 0;
  for (;;) {
    auto batch = pipeline.Next();
    if (!batch.ok()) break;
    ++batches;
  }
  EXPECT_EQ(batches, 16);
  const StageStatsSnapshot io = pipeline.io_stats();
  EXPECT_EQ(io.prefix_hits + io.prefix_misses, 16);
  EXPECT_GE(io.prefix_hits, 8);  // All of epoch 2 at minimum.
  EXPECT_EQ(io.items, 16);
  // Epoch 2 is fully resident: only epoch 1's bytes touch storage.
  EXPECT_EQ(io.bytes, 8u * source.RecordReadBytes(0, 3));
}

TEST(LoaderPipelineTest, IoBackendGaugesAreReported) {
  FakeSource source(24, 1);
  LoaderPipelineOptions options;
  options.io_threads = 2;
  options.io_inflight = 4;
  options.io_submit_batch = 4;
  options.max_epochs = 1;
  LoaderPipeline pipeline(&source, options);
  for (;;) {
    auto batch = pipeline.Next();
    if (!batch.ok()) break;
  }
  const StageStatsSnapshot io = pipeline.io_stats();
  // FakeSource plans against a SimEnv, so its scheduler is the sim backend.
  EXPECT_EQ(io.io_backend, "sim");
  EXPECT_EQ(io.io_requests, 24);
  EXPECT_GE(io.io_segments, io.io_requests);
  EXPECT_GT(io.io_ops, 0);
  EXPECT_GT(io.io_submits, 0);
  EXPECT_GE(io.mean_submit_batch(), 1.0);
  // The simulated device issues no real syscalls.
  EXPECT_EQ(io.io_syscalls, 0);
  EXPECT_EQ(io.syscalls_per_record(), 0.0);
  // The decode stage carries no I/O gauges.
  EXPECT_EQ(pipeline.decode_stats().io_requests, 0);
}

TEST(LoaderPipelineTest, PrefetchErrorReplacesGenericAbort) {
  FakeSource source(16, 1);
  source.set_fail_fetch_at(0);
  PrefetchOptions options;
  options.num_threads = 2;
  options.loader.shuffle = false;
  PrefetchingLoader loader(&source, options);
  auto batch = loader.Next();
  while (batch.ok()) batch = loader.Next();
  EXPECT_TRUE(batch.status().IsIOError()) << batch.status();
  EXPECT_NE(batch.status().message().find("injected fetch failure"),
            std::string::npos)
      << batch.status();
}

}  // namespace
}  // namespace pcr
