// Unit tests for the util substrate: Status/Result, Slice, Rng, clocks,
// queues, thread pool, stats, CRC32C, string helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "util/bounded_queue.h"
#include "util/clock.h"
#include "util/crc32c.h"
#include "util/random.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace pcr {
namespace {

// ------------------------------------------------------------- Status

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::Corruption("bad block");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.ToString(), "Corruption: bad block");
}

TEST(Status, WithContextPrepends) {
  Status s = Status::IOError("disk gone").WithContext("reading record 7");
  EXPECT_EQ(s.ToString(), "IOError: reading record 7: disk gone");
  EXPECT_TRUE(Status::OK().WithContext("x").ok());
}

TEST(Status, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Status::NotFound("nope"); };
  auto wrapper = [&]() -> Status {
    PCR_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsNotFound());
}

// ------------------------------------------------------------- Result

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(Result, AssignOrReturnMacro) {
  auto producer = [](bool fail) -> Result<std::string> {
    if (fail) return Status::NotFound("x");
    return std::string("value");
  };
  auto consumer = [&](bool fail) -> Result<size_t> {
    PCR_ASSIGN_OR_RETURN(std::string s, producer(fail));
    return s.size();
  };
  EXPECT_EQ(*consumer(false), 5u);
  EXPECT_TRUE(consumer(true).status().IsNotFound());
}

// ------------------------------------------------------------- Slice

TEST(Slice, BasicViews) {
  std::string data = "hello world";
  Slice s(data);
  EXPECT_EQ(s.size(), 11u);
  EXPECT_TRUE(s.StartsWith("hello"));
  s.RemovePrefix(6);
  EXPECT_EQ(s.ToString(), "world");
  EXPECT_EQ(s.SubSlice(1, 3).ToString(), "orl");
  EXPECT_EQ(s.SubSlice(3, 100).ToString(), "ld");  // Clamped.
}

TEST(Slice, Comparison) {
  EXPECT_TRUE(Slice("abc") == Slice("abc"));
  EXPECT_TRUE(Slice("abc") != Slice("abd"));
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("ab") < Slice("b"));
}

TEST(Slice, BinarySafe) {
  const char raw[] = {'\0', '\xff', '\0', 'x'};
  Slice s(raw, 4);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.ToString().size(), 4u);
}

// ------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(7);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) stat.Add(rng.NextGaussian());
  EXPECT_NEAR(stat.mean(), 0.0, 0.03);
  EXPECT_NEAR(stat.stddev(), 1.0, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, SampleDiscreteRespectsWeights) {
  Rng rng(11);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 30000; ++i) {
    counts[rng.SampleDiscrete({1.0, 2.0, 7.0})]++;
  }
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.7, 0.02);
}

// ------------------------------------------------------------- Clock

TEST(VirtualClock, AdvancesOnlyWhenTold) {
  VirtualClock clock(1000);
  EXPECT_EQ(clock.NowNanos(), 1000);
  clock.AdvanceNanos(500);
  EXPECT_EQ(clock.NowNanos(), 1500);
  clock.AdvanceTo(1200);  // In the past: no-op.
  EXPECT_EQ(clock.NowNanos(), 1500);
  clock.AdvanceSeconds(1.0);
  EXPECT_EQ(clock.NowNanos(), 1500 + kNanosPerSecond);
}

// ------------------------------------------------------------- Queue

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.Push(i));
  EXPECT_FALSE(q.TryPush(99));  // Full.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(*q.Pop(), i);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BoundedQueue, CloseWakesConsumers) {
  BoundedQueue<int> q(2);
  std::atomic<bool> got_nullopt{false};
  std::thread consumer([&] {
    auto v = q.Pop();
    got_nullopt = !v.has_value();
  });
  q.Close();
  consumer.join();
  EXPECT_TRUE(got_nullopt);
  EXPECT_FALSE(q.Push(1));  // Rejected after close.
}

TEST(BoundedQueue, DrainsAfterClose) {
  BoundedQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BoundedQueue, PopManyDrainsUpToLimitInFifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  std::vector<int> out;
  EXPECT_EQ(q.PopMany(3, &out), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.PopMany(10, &out), 2u);  // Takes what's there, appends.
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(q.PopMany(0, &out), 0u);  // Degenerate limit: no block, no pop.
}

TEST(BoundedQueue, PopManyBlocksUntilItemOrClose) {
  BoundedQueue<int> q(4);
  std::vector<int> out;
  std::thread consumer([&] { q.PopMany(4, &out); });
  q.Push(42);
  consumer.join();
  EXPECT_EQ(out, std::vector<int>{42});

  q.Close();
  std::vector<int> empty;
  EXPECT_EQ(q.PopMany(4, &empty), 0u);  // Closed and drained.
  EXPECT_TRUE(empty.empty());
}

TEST(BoundedQueue, PopManyFreesProducerSlots) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(3));  // Blocks until PopMany frees space.
    EXPECT_TRUE(q.Push(4));
  });
  std::vector<int> out;
  while (out.size() < 4) q.PopMany(4, &out);
  producer.join();
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4}));
}

TEST(BoundedQueue, PopManyStressConservesItems) {
  BoundedQueue<int> q(8);
  constexpr int kItems = 5000;
  std::atomic<int64_t> sum{0};
  std::thread producer([&] {
    for (int i = 1; i <= kItems; ++i) q.Push(i);
    q.Close();
  });
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      std::vector<int> batch;
      for (;;) {
        batch.clear();
        if (q.PopMany(4, &batch) == 0) break;
        for (int v : batch) sum += v;
      }
    });
  }
  producer.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(sum.load(), static_cast<int64_t>(kItems) * (kItems + 1) / 2);
}

TEST(BoundedQueue, ProducerConsumerStress) {
  BoundedQueue<int> q(8);
  constexpr int kItems = 5000;
  std::atomic<int64_t> sum{0};
  std::thread producer([&] {
    for (int i = 1; i <= kItems; ++i) q.Push(i);
    q.Close();
  });
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) sum += *v;
    });
  }
  producer.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(sum.load(), static_cast<int64_t>(kItems) * (kItems + 1) / 2);
}

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count++; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ShutdownDrains) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.Submit([&] { count++; });
  }  // Destructor shuts down.
  EXPECT_EQ(count.load(), 50);
}

// ------------------------------------------------------------- Stats

TEST(RunningStat, MeanVarianceMinMax) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8);
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.Add(i);  // Unsorted insert.
  EXPECT_NEAR(s.Median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.Iqr25(), 25.75, 1e-9);
}

TEST(Log2Histogram, BucketsByPowerOfTwo) {
  Log2Histogram h;
  h.Add(1024);   // Bucket 10.
  h.Add(1500);   // Bucket 10.
  h.Add(4096);   // Bucket 12.
  h.Add(3.0);    // Bucket 1.
  EXPECT_EQ(h.total_count(), 4);
  const auto rows = h.NormalizedRows();
  EXPECT_DOUBLE_EQ(rows.front().first, 2.0);
  double total = 0;
  for (const auto& [lo, p] : rows) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(FitLinear, RecoversLine) {
  std::vector<double> x, y;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double xi = i / 10.0;
    x.push_back(xi);
    y.push_back(3.0 * xi - 2.0 + 0.01 * rng.NextGaussian());
  }
  const LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.01);
  EXPECT_NEAR(fit.intercept, -2.0, 0.05);
  EXPECT_GT(fit.r2, 0.999);
  EXPECT_LT(fit.p_value, 1e-10);
}

TEST(FitLinear, NoRelationHasHighPValue) {
  std::vector<double> x, y;
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    x.push_back(i);
    y.push_back(rng.NextGaussian());
  }
  const LinearFit fit = FitLinear(x, y);
  EXPECT_GT(fit.p_value, 0.01);
  EXPECT_LT(fit.r2, 0.1);
}

// ------------------------------------------------------------- CRC32C

TEST(Crc32c, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  uint8_t zeros[32] = {};
  EXPECT_EQ(crc32c::Value(zeros, 32), 0x8a9136aau);
  // "123456789".
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xe3069283u);
}

TEST(Crc32c, ExtendMatchesWhole) {
  const std::string data = "hello crc world";
  const uint32_t whole = crc32c::Value(data.data(), data.size());
  uint32_t partial = crc32c::Value(data.data(), 5);
  partial = crc32c::Extend(partial, data.data() + 5, data.size() - 5);
  EXPECT_EQ(whole, partial);
}

TEST(Crc32c, MaskRoundTrip) {
  const uint32_t crc = crc32c::Value("payload", 7);
  EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
  EXPECT_NE(crc32c::Mask(crc), crc);
}

// ------------------------------------------------------------- Strings

TEST(StringUtil, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
}

TEST(StringUtil, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KiB");
  EXPECT_EQ(HumanBytes(3.5 * 1024 * 1024), "3.5 MiB");
}

TEST(StringUtil, SplitJoin) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Join({"a", "b", "c"}, "/"), "a/b/c");
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
}

}  // namespace
}  // namespace pcr
