// Fast-vs-reference codec parity: the production decode path (buffered
// 64-bit BitReader, table-driven Huffman, short-circuiting fixed-point
// render with reusable scratch) must be bit-exact — coefficients AND pixels
// — with the ReferenceCodec oracle (byte-at-a-time bit reader, bit-by-bit
// canonical Huffman walk, straight-line per-pixel render) on every scan
// script and subsampling mode, for complete streams, every scan prefix, and
// byte-granular truncations.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "image/procedural.h"
#include "jpeg/codec.h"
#include "jpeg/reference_codec.h"
#include "jpeg/scan_parser.h"
#include "jpeg/scan_script.h"
#include "util/random.h"

namespace pcr::jpeg {
namespace {

Image MakeTestImage(int w, int h, bool color, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> luma;
  BackgroundParams params;
  RenderBackground(w, h, params, &rng, &luma);
  auto blobs = SampleBlobs(8, 10.0, 40.0, &rng);
  RenderBlobs(w, h, blobs, 0, 0, &luma);
  AddNoise(3.0, &rng, &luma);
  return LumaToImage(w, h, luma, color, &rng);
}

// A progressive script exercising spectral selection without successive
// approximation (unlike the default libjpeg script).
std::vector<ScanSpec> SpectralOnlyScript(int num_components) {
  std::vector<ScanSpec> script;
  ScanSpec dc;
  for (int c = 0; c < num_components; ++c) dc.component_indices.push_back(c);
  dc.ss = 0;
  dc.se = 0;
  script.push_back(dc);
  for (int c = 0; c < num_components; ++c) {
    ScanSpec low;
    low.component_indices = {c};
    low.ss = 1;
    low.se = 5;
    script.push_back(low);
    ScanSpec high;
    high.component_indices = {c};
    high.ss = 6;
    high.se = 63;
    script.push_back(high);
  }
  return script;
}

// A script with a deep successive-approximation ladder on luma AC.
std::vector<ScanSpec> DeepRefinementScript(int num_components) {
  std::vector<ScanSpec> script;
  ScanSpec dc;
  for (int c = 0; c < num_components; ++c) dc.component_indices.push_back(c);
  dc.ss = 0;
  dc.se = 0;
  dc.al = 2;
  script.push_back(dc);
  ScanSpec dc_ref1 = dc;
  dc_ref1.ah = 2;
  dc_ref1.al = 1;
  script.push_back(dc_ref1);
  ScanSpec dc_ref2 = dc;
  dc_ref2.ah = 1;
  dc_ref2.al = 0;
  script.push_back(dc_ref2);
  for (int c = 0; c < num_components; ++c) {
    ScanSpec ac;
    ac.component_indices = {c};
    ac.ss = 1;
    ac.se = 63;
    ac.al = 3;
    script.push_back(ac);
    for (int al = 2; al >= 0; --al) {
      ScanSpec ref = ac;
      ref.ah = al + 1;
      ref.al = al;
      script.push_back(ref);
    }
  }
  return script;
}

void ExpectCoefficientsEqual(const JpegData& fast, const JpegData& ref,
                             const std::string& label) {
  ASSERT_EQ(fast.frame.components.size(), ref.frame.components.size())
      << label;
  for (size_t c = 0; c < fast.frame.components.size(); ++c) {
    const auto& info = fast.frame.components[c];
    for (int by = 0; by < info.height_blocks_padded; ++by) {
      for (int bx = 0; bx < info.width_blocks_padded; ++bx) {
        ASSERT_EQ(fast.coefficients.block(static_cast<int>(c), bx, by),
                  ref.coefficients.block(static_cast<int>(c), bx, by))
            << label << " comp " << c << " block (" << bx << "," << by << ")";
      }
    }
  }
}

void ExpectPixelsEqual(const Image& fast, const Image& ref,
                       const std::string& label) {
  ASSERT_TRUE(fast.SameShape(ref)) << label;
  ASSERT_EQ(0, std::memcmp(fast.data(), ref.data(), fast.size_bytes()))
      << label;
}

void ExpectParity(Slice stream, const std::string& label) {
  auto fast = DecodeFull(stream);
  auto ref = ReferenceCodec::DecodeFull(stream);
  ASSERT_EQ(fast.ok(), ref.ok()) << label << " fast=" << fast.status()
                                 << " ref=" << ref.status();
  if (!fast.ok()) return;
  EXPECT_EQ(fast->scans_decoded, ref->scans_decoded) << label;
  EXPECT_EQ(fast->complete, ref->complete) << label;
  ExpectPixelsEqual(fast->image, ref->image, label);

  auto fast_coeffs = DecodeToCoefficients(stream);
  auto ref_coeffs = ReferenceCodec::DecodeToCoefficients(stream);
  ASSERT_EQ(fast_coeffs.ok(), ref_coeffs.ok()) << label;
  if (fast_coeffs.ok()) {
    ExpectCoefficientsEqual(*fast_coeffs, *ref_coeffs, label);
  }
}

struct ScriptCase {
  const char* name;
  bool progressive;
  std::vector<ScanSpec> (*script)(int);  // Null = default for the mode.
};

const ScriptCase kScripts[] = {
    {"baseline", false, nullptr},
    {"default-progressive", true, nullptr},
    {"spectral-only", true, &SpectralOnlyScript},
    {"deep-refinement", true, &DeepRefinementScript},
};

// Randomized encode->decode parity across every scan script x subsampling x
// geometry combination, both color and grayscale.
TEST(CodecParity, AllScriptsAndSubsamplingModesBitExact) {
  const struct {
    int w, h;
    bool color;
  } shapes[] = {
      {64, 64, true},  {97, 55, true},   {17, 9, true},
      {80, 40, false}, {121, 33, false},
  };
  uint64_t seed = 7000;
  for (const auto& shape : shapes) {
    const Image img = MakeTestImage(shape.w, shape.h, shape.color, ++seed);
    for (ChromaSubsampling sub :
         {ChromaSubsampling::k444, ChromaSubsampling::k420}) {
      if (!shape.color && sub == ChromaSubsampling::k420) continue;
      for (const ScriptCase& sc : kScripts) {
        EncodeOptions options;
        options.quality = 88;
        options.subsampling = sub;
        options.progressive = sc.progressive;
        const int comps = shape.color ? 3 : 1;
        if (sc.script != nullptr) {
          options.scan_script = sc.script(comps);
          ASSERT_TRUE(ValidateProgressiveScript(options.scan_script, comps))
              << sc.name;
        }
        auto encoded = Encode(img, options);
        ASSERT_TRUE(encoded.ok()) << encoded.status();
        const std::string label =
            std::string(sc.name) + (shape.color ? "/color" : "/gray") +
            (sub == ChromaSubsampling::k420 ? "/420" : "/444") + "/" +
            std::to_string(shape.w) + "x" + std::to_string(shape.h);
        ExpectParity(*encoded, label);
      }
    }
  }
}

// Every scan prefix of a progressive stream decodes identically on both
// paths — the PCR partial-read case.
TEST(CodecParity, EveryScanPrefixBitExact) {
  const Image img = MakeTestImage(96, 72, true, 4242);
  EncodeOptions options;
  options.progressive = true;
  const std::string encoded = Encode(img, options).MoveValue();
  const auto index = IndexScans(encoded).MoveValue();
  for (int scans = 1; scans <= static_cast<int>(index.scans.size());
       ++scans) {
    const std::string prefix = AssemblePrefix(encoded, index, scans);
    ExpectParity(prefix, "prefix scans=" + std::to_string(scans));
  }
}

// Byte-granular truncation: wherever the stream is cut — mid-marker,
// mid-Huffman-code, mid-refinement-bit — both paths agree on the outcome
// (error or identical partial image), and neither crashes.
TEST(CodecParity, ByteGranularTruncationAgrees) {
  const Image img = MakeTestImage(48, 40, true, 555);
  EncodeOptions options;
  options.progressive = true;
  const std::string encoded = Encode(img, options).MoveValue();
  // Every cut in a sparse sweep plus a dense sweep over one entropy region.
  std::vector<size_t> cuts;
  for (size_t n = 0; n < encoded.size(); n += 97) cuts.push_back(n);
  const size_t mid = encoded.size() / 2;
  for (size_t n = mid; n < std::min(encoded.size(), mid + 64); ++n) {
    cuts.push_back(n);
  }
  for (size_t n : cuts) {
    ExpectParity(Slice(encoded.data(), n),
                 "truncated at " + std::to_string(n));
  }
}

// Reusing one DecodeScratch across decodes of different shapes must not
// change any output relative to fresh-scratch decodes.
TEST(CodecParity, ScratchReuseIsDeterministic) {
  DecodeScratch scratch;
  uint64_t seed = 900;
  const struct {
    int w, h;
    bool color;
  } shapes[] = {{64, 48, true}, {32, 32, false}, {97, 55, true},
                {64, 48, true}, {8, 8, true}};
  for (const auto& shape : shapes) {
    const Image img = MakeTestImage(shape.w, shape.h, shape.color, ++seed);
    EncodeOptions options;
    options.progressive = true;
    const std::string encoded = Encode(img, options).MoveValue();
    const Image with_scratch = Decode(encoded, &scratch).MoveValue();
    const Image fresh = Decode(encoded).MoveValue();
    ExpectPixelsEqual(with_scratch, fresh,
                      "scratch reuse " + std::to_string(shape.w) + "x" +
                          std::to_string(shape.h));
  }
}

// RenderCoefficients parity on partially assembled records (the
// coefficient-level entry point the PCR reader uses).
TEST(CodecParity, RenderCoefficientsMatchesReference) {
  const Image img = MakeTestImage(72, 56, true, 31);
  EncodeOptions options;
  options.progressive = true;
  const std::string encoded = Encode(img, options).MoveValue();
  auto data = DecodeToCoefficients(encoded).MoveValue();
  const Image fast = RenderCoefficients(data);
  const Image ref = ReferenceCodec::RenderCoefficients(data);
  ExpectPixelsEqual(fast, ref, "RenderCoefficients");
}

}  // namespace
}  // namespace pcr::jpeg
