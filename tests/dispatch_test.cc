// Runtime kernel dispatch: CPUID detection and PCR_FORCE_ARCH resolution
// rules, plus randomized cross-checks proving every compiled SIMD kernel
// bit-exact against its scalar counterpart — the property the codec parity
// suite then leans on when CI forces each path in turn.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "arch/arch.h"
#include "arch/kernels.h"
#include "image/color.h"
#include "jpeg/codec.h"
#include "jpeg/dct.h"
#include "util/random.h"

namespace pcr {
namespace {

using arch::Isa;

std::vector<Isa> SupportedSimdTiers() {
  std::vector<Isa> tiers;
  for (const Isa isa : {Isa::kSse2, Isa::kAvx2}) {
    // KernelsFor falls back to scalar when the tier is not compiled in;
    // only genuinely distinct tables are worth cross-checking.
    if (arch::IsaSupported(isa) && arch::KernelsFor(isa).isa == isa) {
      tiers.push_back(isa);
    }
  }
  return tiers;
}

TEST(DispatchTest, ScalarAlwaysSupportedAndDetectionIsExecutable) {
  EXPECT_TRUE(arch::IsaSupported(Isa::kScalar));
  const Isa best = arch::DetectIsa();
  EXPECT_TRUE(arch::IsaSupported(best));
  // The table handed out for the detected tier is the detected tier (or the
  // scalar fallback on non-x86 builds) and internally consistent.
  const arch::Kernels& k = arch::KernelsFor(best);
  EXPECT_STREQ(k.name, arch::IsaName(k.isa));
  EXPECT_NE(k.idct8x8, nullptr);
  EXPECT_NE(k.ycbcr_row, nullptr);
  EXPECT_NE(k.upsample_row, nullptr);
  EXPECT_NE(k.find_ff, nullptr);
}

TEST(DispatchTest, ParseIsaRoundTripsNamesAndRejectsJunk) {
  for (int i = 0; i < arch::kNumIsas; ++i) {
    const Isa isa = static_cast<Isa>(i);
    Isa parsed;
    ASSERT_TRUE(arch::ParseIsa(arch::IsaName(isa), &parsed));
    EXPECT_EQ(parsed, isa);
  }
  Isa parsed;
  EXPECT_FALSE(arch::ParseIsa(nullptr, &parsed));
  EXPECT_FALSE(arch::ParseIsa("", &parsed));
  EXPECT_FALSE(arch::ParseIsa("avx512", &parsed));
  EXPECT_FALSE(arch::ParseIsa("SSE2", &parsed));  // Names are lowercase.
}

TEST(DispatchTest, ResolveIsaUnsetUsesDetected) {
  const unsigned all = 0b111;
  std::string warning;
  EXPECT_EQ(arch::ResolveIsa(nullptr, Isa::kAvx2, all, &warning), Isa::kAvx2);
  EXPECT_EQ(arch::ResolveIsa("", Isa::kSse2, all, &warning), Isa::kSse2);
  EXPECT_TRUE(warning.empty());
}

TEST(DispatchTest, ResolveIsaOverrideWins) {
  const unsigned all = 0b111;
  std::string warning;
  EXPECT_EQ(arch::ResolveIsa("scalar", Isa::kAvx2, all, &warning),
            Isa::kScalar);
  EXPECT_EQ(arch::ResolveIsa("sse2", Isa::kAvx2, all, &warning), Isa::kSse2);
  EXPECT_EQ(arch::ResolveIsa("avx2", Isa::kScalar, all, &warning),
            Isa::kAvx2);
  EXPECT_TRUE(warning.empty());
}

TEST(DispatchTest, ResolveIsaUnknownValueWarnsAndFallsBackToScalar) {
  std::string warning;
  EXPECT_EQ(arch::ResolveIsa("neon", Isa::kAvx2, 0b111, &warning),
            Isa::kScalar);
  EXPECT_NE(warning.find("neon"), std::string::npos);
  EXPECT_NE(warning.find("scalar"), std::string::npos);
}

TEST(DispatchTest, ResolveIsaUnsupportedTierWarnsAndFallsBackToScalar) {
  std::string warning;
  // CPU supports scalar+sse2 only; forcing avx2 must not select it.
  EXPECT_EQ(arch::ResolveIsa("avx2", Isa::kSse2, 0b011, &warning),
            Isa::kScalar);
  EXPECT_NE(warning.find("avx2"), std::string::npos);
  EXPECT_NE(warning.find("not supported"), std::string::npos);
}

// RAII guard: saves/restores PCR_FORCE_ARCH and the cached dispatch table so
// env-twiddling tests cannot leak into later tests in the same process.
class ScopedForceArchEnv {
 public:
  ScopedForceArchEnv() {
    const char* old = std::getenv("PCR_FORCE_ARCH");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
  }
  ~ScopedForceArchEnv() {
    if (had_old_) {
      setenv("PCR_FORCE_ARCH", old_.c_str(), 1);
    } else {
      unsetenv("PCR_FORCE_ARCH");
    }
    arch::ResetDispatchForTest();
  }
  void Set(const char* value) {
    setenv("PCR_FORCE_ARCH", value, 1);
    arch::ResetDispatchForTest();
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(DispatchTest, ActiveHonorsForceArchEnvironment) {
  ScopedForceArchEnv env;
  env.Set("scalar");
  EXPECT_EQ(arch::Active().isa, Isa::kScalar);
  env.Set("definitely-not-an-isa");  // Unknown: warn once, run scalar.
  EXPECT_EQ(arch::Active().isa, Isa::kScalar);
  for (const Isa isa : SupportedSimdTiers()) {
    env.Set(arch::IsaName(isa));
    EXPECT_EQ(arch::Active().isa, isa);
  }
}

TEST(DispatchTest, ForceIsaPinsTheActiveTable) {
  ScopedForceArchEnv env;  // Restores the cached table at scope exit.
  arch::ForceIsa(Isa::kScalar);
  EXPECT_EQ(arch::Active().isa, Isa::kScalar);
  for (const Isa isa : SupportedSimdTiers()) {
    arch::ForceIsa(isa);
    EXPECT_EQ(arch::Active().isa, isa);
  }
}

// --- Randomized kernel cross-checks ----------------------------------------

// Fills one coefficient block with a pattern family chosen by `select`:
// dense, sparse, DC-only, single-coefficient, near-clamp hostile (exercises
// the AVX2 wide-multiply fallback), or column/row-zero shapes that trigger
// the scalar short-circuits.
void FillBlock(Rng* rng, int select, int32_t block[64]) {
  const int32_t maxc = jpeg::kMaxDequantizedCoeff;
  std::memset(block, 0, 64 * sizeof(int32_t));
  switch (select % 6) {
    case 0:  // Dense, moderate magnitudes (typical dequantized values).
      for (int i = 0; i < 64; ++i) {
        block[i] = static_cast<int32_t>(rng->UniformInt(-4095, 4095));
      }
      break;
    case 1:  // Sparse.
      for (int i = 0; i < 64; ++i) {
        if (rng->Uniform(8) == 0) {
          block[i] = static_cast<int32_t>(rng->UniformInt(-30000, 30000));
        }
      }
      break;
    case 2:  // DC only.
      block[0] = static_cast<int32_t>(rng->UniformInt(-maxc, maxc));
      break;
    case 3:  // One random coefficient at full hostile magnitude.
      block[rng->Uniform(64)] = rng->Uniform(2) ? maxc : -maxc;
      break;
    case 4:  // Dense hostile: every coefficient near the clamp bound.
      for (int i = 0; i < 64; ++i) {
        block[i] = static_cast<int32_t>(rng->UniformInt(-maxc, maxc));
      }
      break;
    case 5:  // A few all-zero AC columns/rows to hit scalar short-circuits.
      for (int i = 0; i < 64; ++i) {
        const int col = i % 8;
        const int row = i / 8;
        if (col < 3 && row > 0) continue;  // Columns 0-2: DC only.
        if (row > 5) continue;             // Rows 6-7 of ws become zero-ish.
        block[i] = static_cast<int32_t>(rng->UniformInt(-2047, 2047));
      }
      break;
  }
}

TEST(DispatchTest, IdctKernelsMatchScalarOnRandomBlocks) {
  const std::vector<Isa> tiers = SupportedSimdTiers();
  if (tiers.empty()) GTEST_SKIP() << "no SIMD tier on this CPU/build";
  Rng rng(0x1dc7);
  constexpr int kBlocks = 10000;
  const int strides[] = {8, 11, 64};
  int32_t block[64];
  for (int n = 0; n < kBlocks; ++n) {
    FillBlock(&rng, n, block);
    const int stride = strides[n % 3];
    std::vector<uint8_t> want(static_cast<size_t>(stride) * 8, 0xa5);
    arch::IdctScalar(block, want.data(), stride);
    for (const Isa isa : tiers) {
      std::vector<uint8_t> got(static_cast<size_t>(stride) * 8, 0xa5);
      arch::KernelsFor(isa).idct8x8(block, got.data(), stride);
      ASSERT_EQ(want, got) << "block " << n << " stride " << stride
                           << " tier " << arch::IsaName(isa);
    }
  }
}

TEST(DispatchTest, ScalarYcbcrRowMatchesCanonicalFormula) {
  Rng rng(0x5ca1a);
  for (int n = 0; n < 200; ++n) {
    const int len = 1 + static_cast<int>(rng.Uniform(70));
    std::vector<uint8_t> y(len), cb(len), cr(len);
    for (int i = 0; i < len; ++i) {
      y[i] = static_cast<uint8_t>(rng.Uniform(256));
      cb[i] = static_cast<uint8_t>(rng.Uniform(256));
      cr[i] = static_cast<uint8_t>(rng.Uniform(256));
    }
    std::vector<uint8_t> got(3 * len);
    arch::YcbcrRowScalar(y.data(), cb.data(), cr.data(), got.data(), len);
    for (int i = 0; i < len; ++i) {
      uint8_t r, g, b;
      ycc::ToRgb(y[i], cb[i], cr[i], &r, &g, &b);
      ASSERT_EQ(got[3 * i + 0], r) << i;
      ASSERT_EQ(got[3 * i + 1], g) << i;
      ASSERT_EQ(got[3 * i + 2], b) << i;
    }
  }
}

TEST(DispatchTest, YcbcrRowKernelsMatchScalar) {
  const std::vector<Isa> tiers = SupportedSimdTiers();
  if (tiers.empty()) GTEST_SKIP() << "no SIMD tier on this CPU/build";
  Rng rng(0xc01e);
  for (int n = 0; n < 500; ++n) {
    const int len = static_cast<int>(rng.Uniform(100));  // Includes 0 and <8.
    std::vector<uint8_t> y(len), cb(len), cr(len);
    for (int i = 0; i < len; ++i) {
      y[i] = static_cast<uint8_t>(rng.Uniform(256));
      cb[i] = static_cast<uint8_t>(rng.Uniform(256));
      cr[i] = static_cast<uint8_t>(rng.Uniform(256));
    }
    std::vector<uint8_t> want(3 * static_cast<size_t>(len) + 1, 0x5a);
    arch::YcbcrRowScalar(y.data(), cb.data(), cr.data(), want.data(), len);
    for (const Isa isa : tiers) {
      std::vector<uint8_t> got(3 * static_cast<size_t>(len) + 1, 0x5a);
      arch::KernelsFor(isa).ycbcr_row(y.data(), cb.data(), cr.data(),
                                      got.data(), len);
      ASSERT_EQ(want, got) << "len " << len << " tier " << arch::IsaName(isa);
    }
  }
}

TEST(DispatchTest, ScalarUpsampleRowMatchesUpsampleAt) {
  Rng rng(0x0b5);
  for (int n = 0; n < 300; ++n) {
    const int cw = 1 + static_cast<int>(rng.Uniform(40));
    const int ch = 1 + static_cast<int>(rng.Uniform(6));
    Plane p(cw, ch);
    for (int j = 0; j < ch; ++j) {
      for (int i = 0; i < cw; ++i) {
        p.set(i, j, static_cast<uint8_t>(rng.Uniform(256)));
      }
    }
    const int out_w = 2 * cw - static_cast<int>(rng.Uniform(2));
    const int j = static_cast<int>(rng.Uniform(2 * ch));
    // The (row pair, vertical weight) prefold YcbcrToRgb performs.
    const int y0 = (j & 1) ? (j >> 1) : (j >> 1) - 1;
    const int wy1 = (j & 1) ? 1 : 3;
    const int ya = y0 < 0 ? 0 : (y0 > ch - 1 ? ch - 1 : y0);
    const int yb = y0 + 1 > ch - 1 ? ch - 1 : y0 + 1;
    std::vector<uint8_t> out(out_w);
    arch::UpsampleRowScalar(p.data() + static_cast<size_t>(ya) * cw,
                            p.data() + static_cast<size_t>(yb) * cw, wy1,
                            out.data(), out_w, cw);
    for (int i = 0; i < out_w; ++i) {
      ASSERT_EQ(out[i], ycc::UpsampleAt(p, i, j))
          << "i=" << i << " j=" << j << " cw=" << cw << " ch=" << ch;
    }
  }
}

TEST(DispatchTest, UpsampleRowKernelsMatchScalar) {
  const std::vector<Isa> tiers = SupportedSimdTiers();
  if (tiers.empty()) GTEST_SKIP() << "no SIMD tier on this CPU/build";
  Rng rng(0xdeca);
  for (int n = 0; n < 500; ++n) {
    const int cw = 1 + static_cast<int>(rng.Uniform(100));
    std::vector<uint8_t> r0(cw), r1(cw);
    for (int i = 0; i < cw; ++i) {
      r0[i] = static_cast<uint8_t>(rng.Uniform(256));
      r1[i] = static_cast<uint8_t>(rng.Uniform(256));
    }
    const int out_w = 2 * cw - static_cast<int>(rng.Uniform(2));
    const int wy1 = rng.Uniform(2) ? 1 : 3;
    std::vector<uint8_t> want(out_w + 1, 0x77);
    arch::UpsampleRowScalar(r0.data(), r1.data(), wy1, want.data(), out_w,
                            cw);
    for (const Isa isa : tiers) {
      std::vector<uint8_t> got(out_w + 1, 0x77);
      arch::KernelsFor(isa).upsample_row(r0.data(), r1.data(), wy1,
                                         got.data(), out_w, cw);
      ASSERT_EQ(want, got) << "cw " << cw << " out_w " << out_w << " wy1 "
                           << wy1 << " tier " << arch::IsaName(isa);
    }
  }
}

TEST(DispatchTest, FindFfKernelsMatchScalarAndNaiveScan) {
  const std::vector<Isa> tiers = SupportedSimdTiers();
  Rng rng(0xff00);
  for (int n = 0; n < 2000; ++n) {
    const size_t len = rng.Uniform(200);
    std::vector<uint8_t> buf(len + 1);  // +1: valid pointer when len == 0.
    for (size_t i = 0; i < len; ++i) {
      // 0xFE-heavy so near-miss bytes are common; ~1/16 true 0xFF.
      const uint64_t roll = rng.Uniform(16);
      buf[i] = roll == 0 ? 0xff
                         : (roll < 4 ? 0xfe
                                     : static_cast<uint8_t>(rng.Uniform(256)));
    }
    size_t naive = len;
    for (size_t i = 0; i < len; ++i) {
      if (buf[i] == 0xff) {
        naive = i;
        break;
      }
    }
    ASSERT_EQ(arch::FindFfScalar(buf.data(), len), naive) << "len " << len;
    for (const Isa isa : tiers) {
      ASSERT_EQ(arch::KernelsFor(isa).find_ff(buf.data(), len), naive)
          << "len " << len << " tier " << arch::IsaName(isa);
    }
  }
}

// --- End-to-end: every tier decodes a real stream identically ---------------

Image MakeSmallImage(int w, int h) {
  Rng rng(0x1ab);
  Image img(w, h, 3);
  for (int j = 0; j < h; ++j) {
    for (int i = 0; i < w; ++i) {
      img.set(i, j, 0, static_cast<uint8_t>((i * 7 + j * 3) & 0xff));
      img.set(i, j, 1, static_cast<uint8_t>(rng.Uniform(256)));
      img.set(i, j, 2, static_cast<uint8_t>((i * i + j) & 0xff));
    }
  }
  return img;
}

TEST(DispatchTest, FullDecodeBitExactAcrossTiersAndReportsKernel) {
  ScopedForceArchEnv env;  // Restores the cached table at scope exit.
  jpeg::EncodeOptions opts;
  opts.progressive = true;
  opts.subsampling = ChromaSubsampling::k420;
  auto encoded = jpeg::Encode(MakeSmallImage(61, 37), opts);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();

  arch::ForceIsa(Isa::kScalar);
  auto want = jpeg::DecodeFull(Slice(*encoded));
  ASSERT_TRUE(want.ok());
  EXPECT_STREQ(want->kernel_isa, "scalar");

  for (const Isa isa : SupportedSimdTiers()) {
    arch::ForceIsa(isa);
    auto got = jpeg::DecodeFull(Slice(*encoded));
    ASSERT_TRUE(got.ok());
    EXPECT_STREQ(got->kernel_isa, arch::IsaName(isa));
    ASSERT_EQ(want->image.size_bytes(), got->image.size_bytes());
    EXPECT_EQ(0, std::memcmp(want->image.data(), got->image.data(),
                             want->image.size_bytes()))
        << "tier " << arch::IsaName(isa);
  }
}

}  // namespace
}  // namespace pcr
