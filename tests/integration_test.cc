// End-to-end tests: synthetic dataset -> PCR encoding -> partial reads ->
// loader -> feature cache -> SGD training -> tuners, plus format parity
// against the Record/File-per-Image baselines and the pipeline simulator.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "core/file_per_image.h"
#include "core/pcr_dataset.h"
#include "core/record_dataset.h"
#include "data/dataset_builder.h"
#include "data/dataset_spec.h"
#include "image/metrics.h"
#include "jpeg/codec.h"
#include "loader/data_loader.h"
#include "loader/decode_cache.h"
#include "loader/prefetcher.h"
#include "sim/pipeline_sim.h"
#include "sim/queueing.h"
#include "storage/sim_env.h"
#include "train/dataset_cache.h"
#include "train/trainer.h"
#include "tune/dynamic_tuner.h"
#include "tune/static_tuner.h"

#include "test_util.h"

namespace pcr {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = Env::Default();
    spec_ = new DatasetSpec(DatasetSpec::TestTiny());
    BuildFormats formats;
    formats.pcr = true;
    formats.record = true;
    formats.file_per_image = true;
    auto built = BuildSyntheticDataset(
        env_, PerProcessTempDir("pcr_integration_test_ds"), *spec_, formats);
    ASSERT_TRUE(built.ok()) << built.status();
    built_ = new BuiltDataset(std::move(built).MoveValue());
  }

  static void TearDownTestSuite() {
    if (built_ != nullptr) std::filesystem::remove_all(built_->root);
    delete built_;
    built_ = nullptr;
    delete spec_;
    spec_ = nullptr;
  }

  static Env* env_;
  static DatasetSpec* spec_;
  static BuiltDataset* built_;
};

Env* IntegrationTest::env_ = nullptr;
DatasetSpec* IntegrationTest::spec_ = nullptr;
BuiltDataset* IntegrationTest::built_ = nullptr;

TEST_F(IntegrationTest, PcrDatasetOpensWithExpectedShape) {
  auto ds = PcrDataset::Open(env_, built_->pcr_dir).MoveValue();
  EXPECT_EQ(ds->num_images(), spec_->num_images);
  EXPECT_EQ(ds->num_scan_groups(), 10);
  EXPECT_EQ(ds->num_records(),
            (spec_->num_images + spec_->images_per_record - 1) /
                spec_->images_per_record);
}

TEST_F(IntegrationTest, PrefixBytesAreMonotonic) {
  auto ds = PcrDataset::Open(env_, built_->pcr_dir).MoveValue();
  for (int r = 0; r < ds->num_records(); ++r) {
    uint64_t prev = 0;
    for (int g = 1; g <= 10; ++g) {
      const uint64_t bytes = ds->RecordReadBytes(r, g);
      EXPECT_GT(bytes, prev);
      prev = bytes;
    }
    // Prefix for group 10 equals the file size.
    auto file_size = env_->GetFileSize(ds->record_path(r)).MoveValue();
    EXPECT_EQ(prev, file_size);
  }
}

TEST_F(IntegrationTest, PartialReadDecodesEveryImage) {
  auto ds = PcrDataset::Open(env_, built_->pcr_dir).MoveValue();
  for (int g : {1, 2, 5, 10}) {
    auto batch = ds->ReadRecord(0, g).MoveValue();
    EXPECT_EQ(batch.size(), spec_->images_per_record);
    for (int i = 0; i < batch.size(); ++i) {
      auto decoded = jpeg::DecodeFull(batch.jpeg(i));
      ASSERT_TRUE(decoded.ok()) << "group " << g << ": " << decoded.status();
      EXPECT_EQ(decoded->scans_decoded, g);
      EXPECT_GT(decoded->image.width(), 0);
    }
  }
}

TEST_F(IntegrationTest, ScanGroup10MatchesOriginalJpegQuality) {
  // Reading all scan groups must reproduce the full-quality image exactly
  // (same coefficients as the progressive encode).
  auto ds = PcrDataset::Open(env_, built_->pcr_dir).MoveValue();
  auto full = ds->ReadRecord(0, 10).MoveValue();
  auto record_ds = RecordDataset::Open(env_, built_->record_dir).MoveValue();
  auto baseline = record_ds->ReadRecord(0, 1).MoveValue();
  ASSERT_EQ(full.size(), baseline.size());
  for (int i = 0; i < full.size(); ++i) {
    const Image a = jpeg::Decode(full.jpeg(i)).MoveValue();
    const Image b = jpeg::Decode(baseline.jpeg(i)).MoveValue();
    ASSERT_TRUE(a.SameShape(b));
    EXPECT_EQ(0, memcmp(a.data(), b.data(), a.size_bytes())) << "image " << i;
  }
}

TEST_F(IntegrationTest, LabelsConsistentAcrossFormats) {
  auto pcr_ds = PcrDataset::Open(env_, built_->pcr_dir).MoveValue();
  auto rec_ds = RecordDataset::Open(env_, built_->record_dir).MoveValue();
  auto fpi_ds =
      FilePerImageDataset::Open(env_, built_->file_per_image_dir).MoveValue();
  EXPECT_EQ(fpi_ds->num_images(), spec_->num_images);

  auto a = pcr_ds->ReadRecord(0, 1).MoveValue();
  auto b = rec_ds->ReadRecord(0, 1).MoveValue();
  EXPECT_EQ(a.labels, b.labels);
  for (int i = 0; i < 8; ++i) {
    auto c = fpi_ds->ReadRecord(i, 1).MoveValue();
    EXPECT_EQ(c.labels[0], a.labels[i]);
  }
}

TEST_F(IntegrationTest, NoSpaceOverheadVersusRecordFormat) {
  // Paper §3.1: "There is no space overhead for PCR conversion as the number
  // of bytes occupied by all formats is within 5%."
  auto pcr_ds = PcrDataset::Open(env_, built_->pcr_dir).MoveValue();
  auto rec_ds = RecordDataset::Open(env_, built_->record_dir).MoveValue();
  const double ratio = static_cast<double>(pcr_ds->total_bytes()) /
                       static_cast<double>(rec_ds->total_bytes());
  EXPECT_LT(ratio, 1.05);
  EXPECT_GT(ratio, 0.80);
}

TEST_F(IntegrationTest, LowScanGroupsReduceBytesSubstantially) {
  auto ds = PcrDataset::Open(env_, built_->pcr_dir).MoveValue();
  const double full = ds->MeanImageBytes(10);
  const double g1 = ds->MeanImageBytes(1);
  const double g5 = ds->MeanImageBytes(5);
  // Paper §3.1: scan groups "drop the effective size ... by 2-10x".
  EXPECT_GT(full / g1, 2.0);
  EXPECT_LT(g1, g5);
  EXPECT_LT(g5, full);
}

TEST_F(IntegrationTest, MssimProfileIsMonotonicAndHighAtScan5) {
  auto ds = PcrDataset::Open(env_, built_->pcr_dir).MoveValue();
  StaticTunerOptions options;
  options.sample_images = 8;
  auto profile = ProfileScanGroups(ds.get(), options).MoveValue();
  ASSERT_EQ(profile.size(), 10u);
  for (size_t g = 1; g < profile.size(); ++g) {
    EXPECT_GE(profile[g].mean_mssim, profile[g - 1].mean_mssim - 0.02);
  }
  EXPECT_GT(profile[9].mean_mssim, 0.99);  // Group 10 = identical.
  EXPECT_GT(profile[4].mean_mssim, profile[0].mean_mssim);
}

TEST_F(IntegrationTest, DataLoaderDeliversEpochs) {
  auto ds = PcrDataset::Open(env_, built_->pcr_dir).MoveValue();
  LoaderOptions options;
  options.scan_policy = std::make_shared<FixedScanPolicy>(2);
  DataLoader loader(ds.get(), options);
  std::set<int> records_seen;
  for (size_t i = 0; i < loader.records_per_epoch(); ++i) {
    auto batch = loader.NextBatch().MoveValue();
    EXPECT_EQ(batch.scan_group, 2);
    EXPECT_EQ(static_cast<int>(batch.images.size()), batch.size());
    records_seen.insert(batch.record_index);
  }
  EXPECT_EQ(records_seen.size(), loader.records_per_epoch());
  EXPECT_EQ(loader.epoch(), 0);
  loader.NextBatch().MoveValue();
  EXPECT_EQ(loader.epoch(), 1);
}

TEST_F(IntegrationTest, PrefetchingLoaderDeliversBatches) {
  auto ds = PcrDataset::Open(env_, built_->pcr_dir).MoveValue();
  PrefetchOptions options;
  options.num_threads = 2;
  options.queue_depth = 4;
  options.loader.scan_policy = std::make_shared<FixedScanPolicy>(1);
  PrefetchingLoader loader(ds.get(), options);
  for (int i = 0; i < 12; ++i) {
    auto batch = loader.Next();
    ASSERT_TRUE(batch.ok()) << batch.status();
    EXPECT_GT(batch->size(), 0);
  }
  loader.Stop();
  EXPECT_GE(loader.batches_delivered(), 12);
  // The staged pipeline underneath accounts both stages.
  EXPECT_GE(loader.io_stats().items, 12);
  EXPECT_GE(loader.decode_stats().items, 12);
  EXPECT_GT(loader.io_stats().bytes, 0u);
  EXPECT_GT(loader.decode_stats().busy_seconds, 0.0);
  EXPECT_DOUBLE_EQ(loader.stall_seconds(), loader.io_stall_seconds() +
                                               loader.decode_stall_seconds());
  EXPECT_TRUE(loader.status().ok());
}

TEST_F(IntegrationTest, PrefetchingLoaderSurfacesStorageFailures) {
  // Copy the dataset, open it, then delete a record file out from under the
  // loader: Next() must return the real I/O failure, not a generic abort.
  const std::string broken_dir = PerProcessTempDir("pcr_integration_broken");
  std::filesystem::remove_all(broken_dir);
  std::filesystem::copy(built_->pcr_dir, broken_dir);
  auto ds = PcrDataset::Open(env_, broken_dir).MoveValue();
  for (int r = 0; r < ds->num_records(); ++r) {
    std::filesystem::remove(ds->record_path(r));
  }
  PrefetchOptions options;
  options.num_threads = 2;
  PrefetchingLoader loader(ds.get(), options);
  auto batch = loader.Next();
  while (batch.ok()) batch = loader.Next();
  EXPECT_FALSE(batch.status().message().empty());
  EXPECT_NE(batch.status().message().find("I/O stage"), std::string::npos)
      << batch.status();
  std::filesystem::remove_all(broken_dir);
}

TEST_F(IntegrationTest, TrainingLearnsAndLowScanDegradesOrMatches) {
  auto ds = PcrDataset::Open(env_, built_->pcr_dir).MoveValue();
  CachedDatasetOptions options;
  options.scan_groups = {1, 10};
  options.features.grid = 8;
  options.seed = 3;
  auto cached = CachedDataset::Build(ds.get(), options).MoveValue();
  EXPECT_EQ(cached.num_classes(), spec_->num_classes);

  TrainerOptions trainer_options;
  trainer_options.base_lr = 0.3;
  trainer_options.warmup_epochs = 2;
  trainer_options.decay_epochs = {};
  trainer_options.batch_size = 16;

  SoftmaxClassifier model_full(cached.feature_dim(), cached.num_classes(), 1);
  Trainer trainer_full(&cached, &model_full, trainer_options);
  for (int e = 0; e < 30; ++e) trainer_full.RunEpoch(10);
  const double acc_full = trainer_full.TestAccuracy();
  // 3 balanced classes, blob signal: should be well above chance (33%).
  EXPECT_GT(acc_full, 60.0);
}

TEST_F(IntegrationTest, GradientCosineHigherForHigherScans) {
  auto ds = PcrDataset::Open(env_, built_->pcr_dir).MoveValue();
  CachedDatasetOptions options;
  options.scan_groups = {1, 5, 10};
  options.features.grid = 8;
  auto cached = CachedDataset::Build(ds.get(), options).MoveValue();
  SoftmaxClassifier model(cached.feature_dim(), cached.num_classes(), 2);
  TrainerOptions trainer_options;
  trainer_options.warmup_epochs = 0;
  trainer_options.decay_epochs = {};
  Trainer trainer(&cached, &model, trainer_options);
  for (int e = 0; e < 3; ++e) trainer.RunEpoch(10);

  const double cos1 = trainer.GradientCosine(1);
  const double cos5 = trainer.GradientCosine(5);
  const double cos10 = trainer.GradientCosine(10);
  EXPECT_NEAR(cos10, 1.0, 1e-6);
  EXPECT_GE(cos5, cos1 - 0.05);
  EXPECT_GT(cos1, 0.0);
}

TEST_F(IntegrationTest, PipelineSimSpeedupTracksByteReduction) {
  auto ds = PcrDataset::Open(env_, built_->pcr_dir).MoveValue();
  PipelineSimOptions options;
  options.model_decode_cost = false;  // Pure I/O: Theorem A.5 exactly.
  // Slow storage so the pipeline is data-bound.
  DeviceProfile storage = DeviceProfile::CephCluster();
  storage.read_bandwidth_bytes_per_sec = 2.0 * (1 << 20);
  storage.seek_latency_sec = 0.0;
  storage.per_op_latency_sec = 0.0;
  TrainingPipelineSim sim(ds.get(), storage, ComputeProfile::ResNet18(),
                          DecodeCostModel{}, options);

  FixedScanPolicy full(10), low(2);
  const auto full_result = sim.SimulateEpoch(&full);
  const auto low_result = sim.SimulateEpoch(&low);
  const double measured_speedup =
      full_result.elapsed_seconds / low_result.elapsed_seconds;
  const double predicted =
      DataReductionSpeedup(ds->MeanImageBytes(10), ds->MeanImageBytes(2));
  EXPECT_NEAR(measured_speedup, predicted, 0.15 * predicted);
}

TEST_F(IntegrationTest, PipelineSimComputeBoundCapsThroughput) {
  auto ds = PcrDataset::Open(env_, built_->pcr_dir).MoveValue();
  PipelineSimOptions options;
  options.model_decode_cost = false;
  // Fast storage: compute must bind.
  TrainingPipelineSim sim(ds.get(), DeviceProfile::Ram(),
                          ComputeProfile::ShuffleNetV2(), DecodeCostModel{},
                          options);
  FixedScanPolicy full(10);
  const auto result = sim.SimulateEpoch(&full);
  EXPECT_NEAR(result.images_per_sec,
              ComputeProfile::ShuffleNetV2().ClusterRate(),
              0.05 * ComputeProfile::ShuffleNetV2().ClusterRate());
}

TEST_F(IntegrationTest, PipelineSimAsyncWindowScalesBandwidthBoundThroughput) {
  auto ds = PcrDataset::Open(env_, built_->pcr_dir).MoveValue();
  // Latency-heavy storage (network round trips + seeks dominate the small
  // partial reads): the regime where one-blocking-read-per-thread leaves
  // device bandwidth idle.
  DeviceProfile storage = DeviceProfile::CephCluster();
  storage.read_bandwidth_bytes_per_sec = 64.0 * (1 << 20);

  auto rate_at = [&](int window) {
    PipelineSimOptions options;
    options.model_decode_cost = false;
    options.io_inflight_window = window;
    TrainingPipelineSim sim(ds.get(), storage, ComputeProfile::ResNet18(),
                            DecodeCostModel{}, options);
    FixedScanPolicy full(10);
    return sim.SimulateEpoch(&full).images_per_sec;
  };

  // Window 1 is exactly the pre-async blocking loader (default options).
  PipelineSimOptions blocking_options;
  blocking_options.model_decode_cost = false;
  TrainingPipelineSim blocking(ds.get(), storage, ComputeProfile::ResNet18(),
                               DecodeCostModel{}, blocking_options);
  FixedScanPolicy full(10);
  const double blocking_rate = blocking.SimulateEpoch(&full).images_per_sec;
  EXPECT_DOUBLE_EQ(rate_at(1), blocking_rate);

  // Deeper windows overlap the fixed costs: monotone gains that saturate at
  // the bandwidth floor instead of growing without bound.
  const double rate1 = rate_at(1);
  const double rate2 = rate_at(2);
  const double rate8 = rate_at(8);
  const double rate64 = rate_at(64);
  EXPECT_GT(rate2, rate1);
  EXPECT_GT(rate8, rate2);
  EXPECT_GE(rate64, rate8);
  EXPECT_LT(rate64, rate8 * 2.0);  // Saturation, not runaway scaling.
}

TEST_F(IntegrationTest, PipelineSimBatchedSubmissionAmortizesPerOpCost) {
  auto ds = PcrDataset::Open(env_, built_->pcr_dir).MoveValue();
  // Per-op-latency-heavy storage: request setup dominates the small partial
  // reads, the regime batched io_uring submission targets.
  DeviceProfile storage = DeviceProfile::CephCluster();
  storage.per_op_latency_sec = 2e-3;

  auto epoch_at = [&](int batch) {
    PipelineSimOptions options;
    options.model_decode_cost = false;
    options.io_submit_batch = batch;
    TrainingPipelineSim sim(ds.get(), storage, ComputeProfile::ResNet18(),
                            DecodeCostModel{}, options);
    FixedScanPolicy full(10);
    return sim.SimulateEpoch(&full).elapsed_seconds;
  };

  // Batch 1 is exactly the unbatched model (default options): fig9/fig11
  // numbers are untouched unless a sweep opts in.
  PipelineSimOptions defaults;
  defaults.model_decode_cost = false;
  TrainingPipelineSim unbatched(ds.get(), storage, ComputeProfile::ResNet18(),
                                DecodeCostModel{}, defaults);
  FixedScanPolicy full(10);
  EXPECT_DOUBLE_EQ(epoch_at(1), unbatched.SimulateEpoch(&full).elapsed_seconds);

  // Deeper batches amortize the per-op setup cost but cannot touch seek or
  // transfer time: monotone gains that saturate, not runaway scaling.
  const double batch1 = epoch_at(1);
  const double batch4 = epoch_at(4);
  const double batch32 = epoch_at(32);
  EXPECT_LT(batch4, batch1);
  EXPECT_LE(batch32, batch4);
  const double floor = batch1 - 2e-3 * ds->num_records();  // All setup gone.
  EXPECT_GT(batch32, floor - 1e-9);
}

TEST_F(IntegrationTest, PipelineSimCacheMakesSecondEpochHitServed) {
  auto ds = PcrDataset::Open(env_, built_->pcr_dir).MoveValue();
  PipelineSimOptions options;
  // Slow storage + decode cost: epoch 1 is loader-bound, so a cache-resident
  // epoch 2 must get measurably faster and read zero storage bytes.
  options.decode_cache_bytes = 4ull << 30;  // Working set fully resident.
  DeviceProfile storage = DeviceProfile::CephCluster();
  storage.read_bandwidth_bytes_per_sec = 2.0 * (1 << 20);
  TrainingPipelineSim sim(ds.get(), storage, ComputeProfile::ResNet18(),
                          DecodeCostModel{}, options);

  FixedScanPolicy full(10);
  const auto epoch1 = sim.SimulateEpoch(&full);
  EXPECT_EQ(epoch1.cache_hits, 0);
  EXPECT_GT(epoch1.bytes_read, 0u);

  const auto epoch2 = sim.SimulateEpoch(&full, /*keep_trace=*/true);
  EXPECT_EQ(epoch2.cache_hits, epoch2.records);
  EXPECT_EQ(epoch2.bytes_read, 0u);
  EXPECT_GT(epoch2.cache_hit_seconds_saved, 0.0);
  EXPECT_LT(epoch2.elapsed_seconds, epoch1.elapsed_seconds);
  for (const auto& it : epoch2.trace) EXPECT_TRUE(it.cache_hit);

  // A different scan group is a different cache key: fresh misses.
  FixedScanPolicy low(2);
  const auto epoch3 = sim.SimulateEpoch(&low);
  EXPECT_EQ(epoch3.cache_hits, 0);
}

TEST_F(IntegrationTest, CosineTunerInvalidatesOnlyTheOutgoingGroup) {
  auto ds = PcrDataset::Open(env_, built_->pcr_dir).MoveValue();
  CachedDatasetOptions options;
  options.scan_groups = {1, 2, 5, 10};
  options.features.grid = 8;
  auto cached = CachedDataset::Build(ds.get(), options).MoveValue();
  SoftmaxClassifier model(cached.feature_dim(), cached.num_classes(), 4);
  TrainerOptions trainer_options;
  trainer_options.warmup_epochs = 2;
  trainer_options.decay_epochs = {};
  Trainer trainer(&cached, &model, trainer_options);

  // A live loader cache holding entries at the starting group (10) and at
  // an unrelated group (5): the switch away from 10 must drop only group 10.
  DecodeCacheOptions cache_options;
  cache_options.capacity_bytes = 16ull << 20;
  auto cache = std::make_shared<DecodeCache>(cache_options);
  const uint64_t dataset_id = cache->RegisterDataset();
  for (int record = 0; record < 3; ++record) {
    LoadedBatch batch;
    batch.record_index = record;
    batch.labels = {record};
    batch.images.emplace_back(8, 8, 3);
    batch.scan_group = 10;
    ASSERT_NE(cache->Insert({dataset_id, record, 10}, std::move(batch)),
              nullptr);
    LoadedBatch other;
    other.record_index = record;
    other.labels = {record};
    other.images.emplace_back(8, 8, 3);
    other.scan_group = 5;
    ASSERT_NE(cache->Insert({dataset_id, record, 5}, std::move(other)),
              nullptr);
  }

  CosineTunerOptions tuner_options;
  tuner_options.first_tune_epoch = 2;
  tuner_options.tune_every = 10;
  tuner_options.cosine_threshold = 0.5;  // Permissive: switches low.
  tuner_options.decode_cache = cache;
  tuner_options.cache_dataset_id = dataset_id;
  CosineTuner tuner(tuner_options);
  for (int e = 0; e < 5; ++e) {
    auto policy = tuner.Advise(&trainer);
    ASSERT_NE(policy, nullptr);
    trainer.RunEpochMixture(policy.get());
  }
  ASSERT_FALSE(tuner.events().empty());
  ASSERT_LT(tuner.current_group(), 10);

  // Outgoing group 10 flushed; untouched group 5 still serves hits.
  EXPECT_EQ(cache->Lookup({dataset_id, 0, 10}), nullptr);
  EXPECT_NE(cache->Lookup({dataset_id, 0, 5}), nullptr);
  EXPECT_EQ(cache->stats().invalidated, 3);

  // Probe marks are scoped to the tune cycle: candidates admit normally
  // again once the tuner has chosen.
  for (int g : tuner_options.candidate_groups) {
    EXPECT_FALSE(cache->IsProbeScanGroup(dataset_id, g)) << "group " << g;
  }
}

TEST_F(IntegrationTest, CachedDatasetBuildSharesDecodeCacheAcrossBuilds) {
  auto ds = PcrDataset::Open(env_, built_->pcr_dir).MoveValue();
  CachedDatasetOptions options;
  options.scan_groups = {2, 10};
  options.features.grid = 8;
  DecodeCacheOptions cache_options;
  cache_options.capacity_bytes = 256ull << 20;
  options.decode_cache = std::make_shared<DecodeCache>(cache_options);
  options.cache_dataset_id = options.decode_cache->RegisterDataset();

  auto first = CachedDataset::Build(ds.get(), options).MoveValue();
  const auto after_first = options.decode_cache->stats();
  EXPECT_EQ(after_first.hits, 0);
  EXPECT_GT(after_first.inserts, 0);

  // Same cache + id: the rebuild decodes nothing new.
  auto second = CachedDataset::Build(ds.get(), options).MoveValue();
  const auto after_second = options.decode_cache->stats();
  EXPECT_EQ(after_second.hits, after_first.inserts);

  // Identical features either way.
  ASSERT_EQ(second.train_size(), first.train_size());
  const float* a = first.train_features(10);
  const float* b = second.train_features(10);
  for (int i = 0; i < first.train_size() * first.feature_dim(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "feature " << i;
  }
}

TEST_F(IntegrationTest, CosineTunerPrefersCheapGroupsWhenSafe) {
  auto ds = PcrDataset::Open(env_, built_->pcr_dir).MoveValue();
  CachedDatasetOptions options;
  options.scan_groups = {1, 2, 5, 10};
  options.features.grid = 8;
  auto cached = CachedDataset::Build(ds.get(), options).MoveValue();
  SoftmaxClassifier model(cached.feature_dim(), cached.num_classes(), 4);
  TrainerOptions trainer_options;
  trainer_options.warmup_epochs = 2;
  trainer_options.decay_epochs = {};
  Trainer trainer(&cached, &model, trainer_options);

  CosineTunerOptions tuner_options;
  tuner_options.first_tune_epoch = 2;
  tuner_options.tune_every = 10;
  tuner_options.cosine_threshold = 0.5;  // Permissive: should pick low group.
  CosineTuner tuner(tuner_options);
  for (int e = 0; e < 5; ++e) {
    auto policy = tuner.Advise(&trainer);
    ASSERT_NE(policy, nullptr);
    trainer.RunEpochMixture(policy.get());
  }
  ASSERT_FALSE(tuner.events().empty());
  EXPECT_LT(tuner.current_group(), 10);
}

TEST_F(IntegrationTest, SimEnvRoundTripsDataset) {
  // Stage the PCR dataset into a simulated cluster and read it back.
  VirtualClock clock;
  SimEnv sim_env(DeviceProfile::CephCluster(), &clock);
  ASSERT_TRUE(
      sim_env.ImportTree(env_, built_->pcr_dir, "cluster/pcr").ok());
  auto ds = PcrDataset::Open(&sim_env, "cluster/pcr").MoveValue();
  EXPECT_EQ(ds->num_images(), spec_->num_images);
  const int64_t t0 = clock.NowNanos();
  auto batch = ds->ReadRecord(0, 1).MoveValue();
  EXPECT_GT(batch.size(), 0);
  EXPECT_GT(clock.NowNanos(), t0);  // The read charged simulated time.
}

}  // namespace
}  // namespace pcr
