// Tests for the PCR core: header serialization, prefix assembly, the writer
// and reader, the baseline formats, and format-level invariants
// (property-style over several record/image shapes).
#include <gtest/gtest.h>

#include "core/file_per_image.h"
#include "core/pcr_dataset.h"
#include "core/pcr_format.h"
#include "core/record_dataset.h"
#include "data/dataset_spec.h"
#include "jpeg/codec.h"
#include "storage/sim_env.h"
#include "util/random.h"

namespace pcr {
namespace {

std::string MakeJpeg(int w, int h, uint64_t seed, bool progressive) {
  DatasetSpec spec = DatasetSpec::TestTiny();
  spec.base_width = w;
  spec.base_height = h;
  spec.size_jitter = 0;
  const Image img = GenerateImage(spec, static_cast<int>(seed % 3), seed);
  jpeg::EncodeOptions options;
  options.quality = 85;
  options.progressive = progressive;
  return jpeg::Encode(img, options).MoveValue();
}

// ------------------------------------------------------------- Header

TEST(PcrFormat, HeaderRoundTrip) {
  PcrHeader header;
  header.num_images = 3;
  header.num_groups = 4;
  header.labels = {7, -2, 0};
  header.jpeg_headers = {"HDR0", "HDR11", "H"};
  header.group_sizes = {
      {10, 20, 30}, {1, 2, 3}, {0, 0, 5}, {100, 200, 300}};
  const std::string bytes = SerializePcrHeader(&header);
  EXPECT_EQ(header.header_bytes, bytes.size());

  const PcrHeader parsed = ParsePcrHeader(Slice(bytes)).MoveValue();
  EXPECT_EQ(parsed.num_images, 3);
  EXPECT_EQ(parsed.num_groups, 4);
  EXPECT_EQ(parsed.labels, header.labels);
  EXPECT_EQ(parsed.jpeg_headers, header.jpeg_headers);
  EXPECT_EQ(parsed.group_sizes, header.group_sizes);
  EXPECT_EQ(parsed.GroupStart(0), 0u);
  EXPECT_EQ(parsed.GroupStart(1), 60u);
  EXPECT_EQ(parsed.GroupStart(2), 66u);
  EXPECT_EQ(parsed.PrefixPayloadBytes(4), 671u);
}

TEST(PcrFormat, RejectsBadMagic) {
  EXPECT_FALSE(ParsePcrHeader(Slice("XXXX12345")).ok());
  EXPECT_FALSE(ParsePcrHeader(Slice("PC")).ok());
}

TEST(PcrFormat, RejectsInconsistentHeader) {
  PcrHeader header;
  header.num_images = 2;
  header.num_groups = 1;
  header.labels = {1};  // Wrong count.
  header.jpeg_headers = {"a", "b"};
  header.group_sizes = {{1, 2}};
  const std::string bytes = SerializePcrHeader(&header);
  EXPECT_TRUE(ParsePcrHeader(Slice(bytes)).status().IsCorruption());
}

TEST(PcrFormat, AssembleRejectsShortPrefix) {
  PcrHeader header;
  header.num_images = 1;
  header.num_groups = 2;
  header.labels = {0};
  header.jpeg_headers = {"HD"};
  header.group_sizes = {{4}, {4}};
  std::string file = SerializePcrHeader(&header);
  file += "abcd";  // Only group 1 payload present.
  EXPECT_TRUE(AssembleRecordPrefix(Slice(file), 2).status().IsOutOfRange());
  EXPECT_TRUE(AssembleRecordPrefix(Slice(file), 1).ok());
}

// ------------------------------------------------------------- Writer/Reader

class PcrDatasetShapes
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PcrDatasetShapes, WriteReadInvariants) {
  const auto [num_images, images_per_record] = GetParam();
  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);

  PcrWriterOptions options;
  options.images_per_record = images_per_record;
  auto writer = PcrDatasetWriter::Create(&env, "ds", options).MoveValue();
  std::vector<int64_t> labels;
  for (int i = 0; i < num_images; ++i) {
    const std::string jpeg =
        MakeJpeg(40 + 8 * (i % 3), 32 + 8 * (i % 2), i, i % 2 == 0);
    labels.push_back(i % 5);
    ASSERT_TRUE(writer->AddImage(Slice(jpeg), labels.back()).ok());
  }
  ASSERT_TRUE(writer->Finish().ok());

  auto ds = PcrDataset::Open(&env, "ds").MoveValue();
  EXPECT_EQ(ds->num_images(), num_images);
  const int expected_records =
      (num_images + images_per_record - 1) / images_per_record;
  EXPECT_EQ(ds->num_records(), expected_records);

  // Property: prefix bytes strictly increase with scan group; every image
  // decodes at every group; labels round-trip in order.
  int seen = 0;
  for (int r = 0; r < ds->num_records(); ++r) {
    uint64_t prev = 0;
    for (int g = 1; g <= ds->num_scan_groups(); ++g) {
      EXPECT_GT(ds->RecordReadBytes(r, g), prev);
      prev = ds->RecordReadBytes(r, g);
    }
    auto batch = ds->ReadRecord(r, 3).MoveValue();
    for (int i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch.labels[i], labels[seen + i]);
      auto decoded = jpeg::DecodeFull(batch.jpeg(i));
      ASSERT_TRUE(decoded.ok()) << decoded.status();
      EXPECT_GE(decoded->scans_decoded, 1);
    }
    seen += batch.size();
  }
  EXPECT_EQ(seen, num_images);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PcrDatasetShapes,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(5, 2),
                      std::make_tuple(8, 8), std::make_tuple(9, 4),
                      std::make_tuple(16, 16)));

TEST(PcrDatasetWriter, RejectsBaselineWhenTranscodeDisabled) {
  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  PcrWriterOptions options;
  options.transcode_to_progressive = false;
  auto writer = PcrDatasetWriter::Create(&env, "ds", options).MoveValue();
  const std::string baseline = MakeJpeg(40, 32, 1, /*progressive=*/false);
  EXPECT_TRUE(writer->AddImage(Slice(baseline), 0)
                  .IsInvalidArgument());
  const std::string progressive = MakeJpeg(40, 32, 1, /*progressive=*/true);
  EXPECT_TRUE(writer->AddImage(Slice(progressive), 0).ok());
}

TEST(PcrDatasetWriter, RejectsGarbageImage) {
  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  auto writer =
      PcrDatasetWriter::Create(&env, "ds", PcrWriterOptions{}).MoveValue();
  EXPECT_FALSE(writer->AddImage(Slice("not a jpeg"), 0).ok());
}

TEST(PcrDataset, OpenFailsOnMissingManifest) {
  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  EXPECT_FALSE(PcrDataset::Open(&env, "missing").ok());
}

TEST(PcrDataset, ScanGroupClamped) {
  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  PcrWriterOptions options;
  options.images_per_record = 2;
  auto writer = PcrDatasetWriter::Create(&env, "ds", options).MoveValue();
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(
        writer->AddImage(Slice(MakeJpeg(40, 32, i, false)), i).ok());
  }
  ASSERT_TRUE(writer->Finish().ok());
  auto ds = PcrDataset::Open(&env, "ds").MoveValue();
  // Group 0 and 99 clamp to [1, 10].
  EXPECT_EQ(ds->RecordReadBytes(0, 0), ds->RecordReadBytes(0, 1));
  EXPECT_EQ(ds->RecordReadBytes(0, 99), ds->RecordReadBytes(0, 10));
  EXPECT_TRUE(ds->ReadRecord(0, 0).ok());
}

// ------------------------------------------------------------- Baselines

TEST(RecordDataset, RoundTripsImagesAndLabels) {
  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  RecordWriterOptions options;
  options.images_per_record = 3;
  auto writer =
      RecordDatasetWriter::Create(&env, "rec", options).MoveValue();
  std::vector<std::string> jpegs;
  for (int i = 0; i < 7; ++i) {
    jpegs.push_back(MakeJpeg(40, 32, i, false));
    ASSERT_TRUE(writer->AddImage(Slice(jpegs.back()), 100 + i).ok());
  }
  ASSERT_TRUE(writer->Finish().ok());

  auto ds = RecordDataset::Open(&env, "rec").MoveValue();
  EXPECT_EQ(ds->num_records(), 3);  // 3 + 3 + 1.
  EXPECT_EQ(ds->num_images(), 7);
  int seen = 0;
  for (int r = 0; r < ds->num_records(); ++r) {
    auto batch = ds->ReadRecord(r, 1).MoveValue();
    for (int i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch.labels[i], 100 + seen);
      EXPECT_EQ(batch.jpeg(i).ToString(), jpegs[seen]);  // Byte-identical.
      ++seen;
    }
  }
  EXPECT_EQ(seen, 7);
}

TEST(FilePerImageDataset, OneFilePerImage) {
  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  auto writer = FilePerImageWriter::Create(&env, "fpi").MoveValue();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        writer->AddImage(Slice(MakeJpeg(40, 32, i, false)), i * 10).ok());
  }
  ASSERT_TRUE(writer->Finish().ok());

  auto ds = FilePerImageDataset::Open(&env, "fpi").MoveValue();
  EXPECT_EQ(ds->num_records(), 4);
  for (int i = 0; i < 4; ++i) {
    auto batch = ds->ReadRecord(i, 1).MoveValue();
    EXPECT_EQ(batch.size(), 1);
    EXPECT_EQ(batch.labels[0], i * 10);
    EXPECT_TRUE(jpeg::Decode(batch.jpeg(0)).ok());
  }
}

// ------------------------------------------------------------- Fetch plans

// Builds a small PCR dataset and returns the opened reader.
std::unique_ptr<PcrDataset> MakePcrDataset(Env* env, int num_images = 4) {
  PcrWriterOptions options;
  options.images_per_record = 2;
  auto writer = PcrDatasetWriter::Create(env, "plans", options).MoveValue();
  for (int i = 0; i < num_images; ++i) {
    PCR_CHECK(writer->AddImage(Slice(MakeJpeg(40, 32, i, true)), i).ok());
  }
  PCR_CHECK(writer->Finish().ok());
  return PcrDataset::Open(env, "plans").MoveValue();
}

TEST(FetchPlans, PcrSplitsHeaderAndPayload) {
  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  auto ds = MakePcrDataset(&env);

  const int group = 2;
  const FetchPlan plan = ds->PlanFetch(0, group).MoveValue();
  // Cold plans split header and scan-group payload into two adjacent
  // segments of the same file so the scheduler can fetch them as one
  // vectored read.
  ASSERT_EQ(plan.segments.size(), 2u);
  EXPECT_EQ(plan.segments[0].offset, 0u);
  EXPECT_GT(plan.segments[0].length, 0u);
  EXPECT_FALSE(plan.segments[0].resident);
  EXPECT_EQ(plan.segments[1].path, plan.segments[0].path);
  EXPECT_EQ(plan.segments[1].offset, plan.segments[0].length);
  EXPECT_FALSE(plan.segments[1].resident);
  EXPECT_EQ(plan.total_bytes(), ds->RecordReadBytes(0, group));
  EXPECT_EQ(plan.fetch_bytes(), plan.total_bytes());
  EXPECT_FALSE(plan.fully_resident());
  EXPECT_EQ(plan.ToReadRequest().segments.size(), 2u);
  // The split plan fetches byte-identical data to the synchronous reader.
  const RawRecord cold = ds->FetchRecord(0, group).MoveValue();
  EXPECT_EQ(cold.payload.size(), plan.total_bytes());
  EXPECT_EQ(cold.bytes_read, plan.total_bytes());
}

TEST(FetchPlans, PcrResidentPrefixShrinksTheFetchToTheDelta) {
  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  auto ds = MakePcrDataset(&env);

  const int low = 1, high = 3;
  const RawRecord first = ds->FetchRecord(0, low).MoveValue();
  FetchResident resident;
  resident.scan_group = first.scan_group;
  resident.bytes = std::make_shared<const std::string>(first.payload);

  const FetchPlan plan = ds->PlanFetch(0, high, &resident).MoveValue();
  const uint64_t covered = ds->RecordReadBytes(0, low);
  const uint64_t want = ds->RecordReadBytes(0, high);
  ASSERT_EQ(plan.segments.size(), 2u);
  EXPECT_TRUE(plan.segments[0].resident);
  EXPECT_EQ(plan.segments[0].offset, 0u);
  EXPECT_EQ(plan.segments[0].length, covered);
  EXPECT_FALSE(plan.segments[1].resident);
  EXPECT_EQ(plan.segments[1].offset, covered);
  EXPECT_EQ(plan.segments[1].length, want - covered);
  EXPECT_EQ(plan.fetch_bytes(), want - covered);
  EXPECT_EQ(plan.ToReadRequest().segments.size(), 1u);

  // The stitched upgrade is byte-identical to a cold full-quality fetch,
  // but only the delta counts as I/O.
  const RawRecord warm = ds->FetchRecord(0, high, &resident).MoveValue();
  const RawRecord cold = ds->FetchRecord(0, high).MoveValue();
  EXPECT_EQ(warm.payload, cold.payload);
  EXPECT_EQ(warm.bytes_read, want - covered);
  EXPECT_EQ(cold.bytes_read, want);
}

TEST(FetchPlans, PcrFullyResidentPlanNeedsNoIo) {
  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  auto ds = MakePcrDataset(&env);

  const int deep = 4, shallow = 2;
  const RawRecord first = ds->FetchRecord(0, deep).MoveValue();
  FetchResident resident;
  resident.scan_group = first.scan_group;
  resident.bytes = std::make_shared<const std::string>(first.payload);

  // Re-reading at the same or lower quality is served entirely from memory.
  const FetchPlan plan = ds->PlanFetch(0, shallow, &resident).MoveValue();
  EXPECT_TRUE(plan.fully_resident());
  EXPECT_EQ(plan.fetch_bytes(), 0u);
  EXPECT_TRUE(plan.ToReadRequest().segments.empty());

  const RawRecord raw = ds->CompleteFetch(plan, std::string()).MoveValue();
  EXPECT_EQ(raw.bytes_read, 0u);
  const RawRecord cold = ds->FetchRecord(0, shallow).MoveValue();
  EXPECT_EQ(raw.payload, cold.payload);
  // Zero-I/O payloads still decode.
  EXPECT_TRUE(ds->AssembleRecord(raw).ok());
}

TEST(FetchPlans, PcrIgnoresResidentBytesThatAreTooShort) {
  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  auto ds = MakePcrDataset(&env);

  // Claimed group 3 but the buffer is truncated: the claim is not usable,
  // so the plan must fall back to a cold fetch.
  FetchResident resident;
  resident.scan_group = 3;
  resident.bytes = std::make_shared<const std::string>("short");
  const FetchPlan plan = ds->PlanFetch(0, 3, &resident).MoveValue();
  for (const FetchSegment& segment : plan.segments) {
    EXPECT_FALSE(segment.resident);
  }
  EXPECT_EQ(plan.fetch_bytes(), ds->RecordReadBytes(0, 3));
}

TEST(FetchPlans, RecordDatasetHonorsOnlyWholeFileResidency) {
  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  RecordWriterOptions options;
  options.images_per_record = 2;
  auto writer = RecordDatasetWriter::Create(&env, "rec", options).MoveValue();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(writer->AddImage(Slice(MakeJpeg(40, 32, i, false)), i).ok());
  }
  ASSERT_TRUE(writer->Finish().ok());
  auto ds = RecordDataset::Open(&env, "rec").MoveValue();

  const RawRecord cold = ds->FetchRecord(1, 1).MoveValue();
  FetchResident whole;
  whole.scan_group = 1;
  whole.bytes = std::make_shared<const std::string>(cold.payload);
  const FetchPlan warm = ds->PlanFetch(1, 1, &whole).MoveValue();
  EXPECT_TRUE(warm.fully_resident());
  const RawRecord raw = ds->CompleteFetch(warm, std::string()).MoveValue();
  EXPECT_EQ(raw.payload, cold.payload);

  // A partial buffer is useless for a fixed-quality format: ignored.
  FetchResident partial;
  partial.scan_group = 1;
  partial.bytes = std::make_shared<const std::string>(
      cold.payload.substr(0, cold.payload.size() / 2));
  const FetchPlan plan = ds->PlanFetch(1, 1, &partial).MoveValue();
  EXPECT_FALSE(plan.fully_resident());
  EXPECT_EQ(plan.fetch_bytes(), ds->RecordReadBytes(1, 1));
}

TEST(FetchPlans, CompleteFetchRejectsWrongByteCount) {
  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  auto ds = MakePcrDataset(&env);
  const FetchPlan plan = ds->PlanFetch(0, 2).MoveValue();
  EXPECT_FALSE(ds->CompleteFetch(plan, std::string("x")).ok());
}

}  // namespace
}  // namespace pcr
