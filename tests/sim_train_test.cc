// Tests for the queueing model, pipeline simulator, classifiers, trainer,
// scan policies, and tuners.
#include <gtest/gtest.h>

#include <cmath>

#include "loader/sampler.h"
#include "loader/scan_policy.h"
#include "sim/compute_model.h"
#include "sim/decode_model.h"
#include "sim/queueing.h"
#include "train/classifier.h"
#include "train/features.h"
#include "train/trainer.h"
#include "util/random.h"

namespace pcr {
namespace {

// ------------------------------------------------------------- Queueing

TEST(Queueing, LemmaA1ReadTimeProportionalToBytes) {
  IoModel io;
  io.bandwidth_bytes_per_sec = 100.0e6;
  io.per_record_overhead_sec = 0.001;
  const double t1 = ExpectedRecordReadSeconds(io, 100e3, 128);
  const double t2 = ExpectedRecordReadSeconds(io, 200e3, 128);
  EXPECT_NEAR((t2 - io.per_record_overhead_sec) /
                  (t1 - io.per_record_overhead_sec),
              2.0, 1e-9);
}

TEST(Queueing, LemmaA2LittlesLaw) {
  IoModel io;
  io.bandwidth_bytes_per_sec = 450.0 * (1 << 20);
  // The paper's example: ~110 kB ImageNet images -> ~4290 img/s.
  EXPECT_NEAR(DataPipelineThroughput(io, 110e3), 4290.0, 50.0);
}

TEST(Queueing, TheoremA5Speedup) {
  EXPECT_DOUBLE_EQ(DataReductionSpeedup(100.0, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(DataReductionSpeedup(100.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(DataReductionSpeedup(100.0, 0.0), 1.0);  // Guard.
}

TEST(Queueing, RooflineSaturatesAtCompute) {
  IoModel io;
  io.bandwidth_bytes_per_sec = 100.0e6;
  const double xc = 4000.0;
  EXPECT_DOUBLE_EQ(RooflineThroughput(io, xc, 1e3), xc);  // Compute-bound.
  EXPECT_NEAR(RooflineThroughput(io, xc, 100e3), 1000.0, 1e-6);  // IO-bound.
}

TEST(DecodeModel, ProgressiveCostScalesWithScans) {
  DecodeCostModel model;
  const double g1 = model.ProgressiveImageSeconds(1, 10);
  const double g10 = model.ProgressiveImageSeconds(10, 10);
  EXPECT_LT(g1, g10);
  EXPECT_GT(g1, 0.0);
  // All scans: the paper's 40-50% overhead over baseline.
  EXPECT_NEAR(g10 / model.BaselineImageSeconds(), 1.45, 1e-9);
}

// ------------------------------------------------------------- Sampler

TEST(RecordSampler, CoversEveryRecordPerEpoch) {
  RecordSampler sampler(10, /*shuffle=*/true, 1);
  for (int epoch = 0; epoch < 3; ++epoch) {
    std::vector<bool> seen(10, false);
    for (int i = 0; i < 10; ++i) {
      const int r = sampler.Next();
      EXPECT_FALSE(seen[r]);
      seen[r] = true;
    }
  }
  EXPECT_EQ(sampler.epoch(), 2);
}

TEST(RecordSampler, NoShuffleIsSequential) {
  RecordSampler sampler(5, /*shuffle=*/false, 1);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(sampler.Next(), i);
  EXPECT_EQ(sampler.Next(), 0);
}

// ------------------------------------------------------------- Policies

TEST(ScanPolicy, FixedAlwaysSame) {
  FixedScanPolicy policy(3);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(policy.Select(10, &rng), 3);
  EXPECT_EQ(policy.Select(2, &rng), 2);  // Clamped.
}

TEST(ScanPolicy, PaperMixtureFrequencies) {
  // Weight 10 on group 2 of 10 groups -> group 2 chosen ~10/19 of the time.
  auto policy = MixtureScanPolicy::PaperMixture(10, 2, 10.0);
  Rng rng(2);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const int g = policy.Select(10, &rng);
    EXPECT_GE(g, 1);
    EXPECT_LE(g, 10);
    if (g == 2) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 10.0 / 19.0, 0.02);
}

// ------------------------------------------------------------- Classifier

// A tiny linearly-separable task.
struct ToyData {
  std::vector<float> x;
  std::vector<int64_t> y;
  int dim = 4;
  int n = 0;

  explicit ToyData(int n_in, uint64_t seed) : n(n_in) {
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      const int label = static_cast<int>(rng.Uniform(3));
      for (int d = 0; d < dim; ++d) {
        const double mean = d == label ? 2.0 : 0.0;
        x.push_back(static_cast<float>(mean + 0.3 * rng.NextGaussian()));
      }
      y.push_back(label);
    }
  }
};

template <typename ModelT>
void TrainToy(ModelT* model, const ToyData& data, int epochs, double lr) {
  for (int e = 0; e < epochs; ++e) {
    int in_batch = 0;
    for (int i = 0; i < data.n; ++i) {
      model->AccumulateExample(data.x.data() + i * data.dim,
                               static_cast<int>(data.y[i]));
      if (++in_batch == 16 || i + 1 == data.n) {
        model->ApplyUpdate(lr, in_batch);
        in_batch = 0;
      }
    }
  }
}

template <typename ModelT>
double ToyAccuracy(const ModelT& model, const ToyData& data) {
  int correct = 0;
  for (int i = 0; i < data.n; ++i) {
    if (model.Predict(data.x.data() + i * data.dim) == data.y[i]) ++correct;
  }
  return 100.0 * correct / data.n;
}

TEST(SoftmaxClassifier, LearnsSeparableTask) {
  const ToyData data(300, 1);
  SoftmaxClassifier model(data.dim, 3, 7);
  EXPECT_LT(ToyAccuracy(model, data), 60.0);  // Near chance initially.
  TrainToy(&model, data, 20, 0.5);
  EXPECT_GT(ToyAccuracy(model, data), 95.0);
}

TEST(MlpClassifier, LearnsSeparableTask) {
  const ToyData data(300, 2);
  MlpClassifier model(data.dim, 16, 3, 7);
  TrainToy(&model, data, 30, 0.2);
  EXPECT_GT(ToyAccuracy(model, data), 95.0);
}

TEST(SoftmaxClassifier, CheckpointRestoresExactly) {
  const ToyData data(100, 3);
  SoftmaxClassifier model(data.dim, 3, 7);
  TrainToy(&model, data, 5, 0.5);
  const auto checkpoint = model.SaveParams();
  const double loss_before =
      model.ExampleLoss(data.x.data(), static_cast<int>(data.y[0]));
  TrainToy(&model, data, 5, 0.5);
  model.RestoreParams(checkpoint);
  EXPECT_DOUBLE_EQ(
      model.ExampleLoss(data.x.data(), static_cast<int>(data.y[0])),
      loss_before);
}

TEST(Classifier, FullGradientMatchesFiniteDifference) {
  const ToyData data(40, 4);
  SoftmaxClassifier model(data.dim, 3, 7);
  const auto grad = model.FullGradient(data.x.data(), data.y.data(), data.n);

  // Perturb one weight via params vector (w is laid out first).
  auto params = model.SaveParams();
  const double eps = 1e-3;
  auto mean_loss = [&](const std::vector<float>& p) {
    SoftmaxClassifier probe(data.dim, 3, 7);
    probe.RestoreParams(p);
    double acc = 0;
    for (int i = 0; i < data.n; ++i) {
      acc += probe.ExampleLoss(data.x.data() + i * data.dim,
                               static_cast<int>(data.y[i]));
    }
    return acc / data.n;
  };
  for (int idx : {0, 5, 9}) {
    auto plus = params;
    plus[idx] += static_cast<float>(eps);
    auto minus = params;
    minus[idx] -= static_cast<float>(eps);
    const double numeric = (mean_loss(plus) - mean_loss(minus)) / (2 * eps);
    EXPECT_NEAR(grad[idx], numeric, 5e-3) << "weight " << idx;
  }
}

TEST(Trainer, CosineSimilarityBounds) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {-1, 0}), -1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {1, 0}), 0.0);  // Degenerate.
}

// ------------------------------------------------------------- Features

TEST(Features, DimMatchesOptions) {
  FeatureOptions options;
  options.grid = 8;
  options.include_highpass = false;
  EXPECT_EQ(FeatureExtractor(options).dim(), 64);
  options.include_highpass = true;
  EXPECT_EQ(FeatureExtractor(options).dim(), 128);
}

TEST(Features, HighpassRespondsToFineDetail) {
  FeatureOptions options;
  options.grid = 4;
  FeatureExtractor extractor(options);

  Image smooth(64, 64, 1, 128);
  Image detailed(64, 64, 1, 128);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      detailed.set(x, y, 0, (x + y) % 2 ? 160 : 96);  // Checkerboard.
    }
  }
  const auto f_smooth = extractor.Extract(smooth);
  const auto f_detail = extractor.Extract(detailed);
  double hp_smooth = 0, hp_detail = 0;
  for (int i = 16; i < 32; ++i) {
    hp_smooth += f_smooth[i];
    hp_detail += f_detail[i];
  }
  EXPECT_NEAR(hp_smooth, 0.0, 1e-3);
  EXPECT_GT(hp_detail, 1.0);
}

TEST(ComputeProfiles, MatchPaperRates) {
  EXPECT_NEAR(ComputeProfile::ResNet18().ClusterRate(), 4240.0, 1.0);
  EXPECT_NEAR(ComputeProfile::ShuffleNetV2().ClusterRate(), 7180.0, 1.0);
  EXPECT_GT(ComputeProfile::ShuffleNetV2().ClusterRate(),
            ComputeProfile::ResNet18().ClusterRate());
}

}  // namespace
}  // namespace pcr
