// Tests for ShardedRecordSource: stable global record numbering over the
// concatenated shards, per-shard Env/path routing of fetch plans, local
// index translation for CompleteFetch/AssembleRecord, shard-failure
// propagation with shard context, and streaming a sharded dataset through
// the async loader pipeline.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/file_per_image.h"
#include "core/pcr_dataset.h"
#include "core/record_dataset.h"
#include "core/sharded_record_source.h"
#include "data/dataset_spec.h"
#include "jpeg/codec.h"
#include "loader/pipeline.h"
#include "storage/sim_env.h"
#include "util/random.h"

namespace pcr {
namespace {

std::string MakeJpeg(int w, int h, uint64_t seed) {
  DatasetSpec spec = DatasetSpec::TestTiny();
  spec.base_width = w;
  spec.base_height = h;
  spec.size_jitter = 0;
  const Image img = GenerateImage(spec, static_cast<int>(seed % 3), seed);
  jpeg::EncodeOptions options;
  options.quality = 85;
  return jpeg::Encode(img, options).MoveValue();
}

/// Builds a PCR dataset of `num_images` images (labels base+i) in env:dir.
std::unique_ptr<PcrDataset> BuildPcrShard(Env* env, const std::string& dir,
                                          int num_images,
                                          int images_per_record,
                                          int64_t label_base) {
  PcrWriterOptions options;
  options.images_per_record = images_per_record;
  auto writer = PcrDatasetWriter::Create(env, dir, options).MoveValue();
  for (int i = 0; i < num_images; ++i) {
    const std::string jpeg = MakeJpeg(40, 32, static_cast<uint64_t>(i));
    PCR_CHECK(writer->AddImage(Slice(jpeg), label_base + i).ok());
  }
  PCR_CHECK(writer->Finish().ok());
  return PcrDataset::Open(env, dir).MoveValue();
}

/// Builds a file-per-image dataset (labels base+i) in env:dir.
std::unique_ptr<FilePerImageDataset> BuildFpiShard(Env* env,
                                                   const std::string& dir,
                                                   int num_images,
                                                   int64_t label_base) {
  auto writer = FilePerImageWriter::Create(env, dir).MoveValue();
  for (int i = 0; i < num_images; ++i) {
    const std::string jpeg = MakeJpeg(40, 32, static_cast<uint64_t>(i));
    PCR_CHECK(writer->AddImage(Slice(jpeg), label_base + i).ok());
  }
  PCR_CHECK(writer->Finish().ok());
  return FilePerImageDataset::Open(env, dir).MoveValue();
}

/// Minimal failing shard for error-propagation tests.
class FailingSource : public RecordSource {
 public:
  explicit FailingSource(int num_records) : num_records_(num_records) {}
  int num_records() const override { return num_records_; }
  int num_images() const override { return num_records_; }
  int num_scan_groups() const override { return 1; }
  uint64_t RecordReadBytes(int, int) const override { return 64; }
  int RecordImages(int) const override { return 1; }
  using RecordSource::PlanFetch;
  Result<FetchPlan> PlanFetch(int, int, const FetchResident*) const override {
    return Status::IOError("disk gone");
  }
  Result<RecordBatch> AssembleRecord(RawRecord) const override {
    return Status::Corruption("unreachable");
  }
  std::string format_name() const override { return "failing"; }
  uint64_t total_bytes() const override { return 64 * num_records_; }

 private:
  int num_records_;
};

TEST(ShardedRecordSource, GlobalNumberingConcatenatesShards) {
  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  auto shard0 = BuildPcrShard(&env, "s0", 6, 2, 100);  // 3 records.
  auto shard1 = BuildPcrShard(&env, "s1", 4, 2, 200);  // 2 records.
  const uint64_t shard1_bytes = shard1->RecordReadBytes(0, 3);
  const int shard1_groups = shard1->num_scan_groups();

  std::vector<std::unique_ptr<RecordSource>> shards;
  shards.push_back(std::move(shard0));
  shards.push_back(std::move(shard1));
  auto sharded = ShardedRecordSource::Create(std::move(shards)).MoveValue();

  EXPECT_EQ(sharded->num_records(), 5);
  EXPECT_EQ(sharded->num_images(), 10);
  EXPECT_EQ(sharded->num_scan_groups(), shard1_groups);
  EXPECT_EQ(sharded->num_shards(), 2);
  EXPECT_EQ(sharded->format_name(), "sharded[2x pcr]");
  EXPECT_EQ(sharded->shard_of(0), 0);
  EXPECT_EQ(sharded->shard_of(2), 0);
  EXPECT_EQ(sharded->shard_of(3), 1);
  EXPECT_EQ(sharded->shard_of(4), 1);
  // Global record 3 = shard 1's record 0.
  EXPECT_EQ(sharded->RecordReadBytes(3, 3), shard1_bytes);
  EXPECT_EQ(sharded->RecordImages(3), 2);

  // Labels prove the read went to the right shard at the right local index.
  auto batch = sharded->ReadRecord(3, sharded->num_scan_groups()).MoveValue();
  ASSERT_EQ(batch.size(), 2);
  EXPECT_EQ(batch.labels[0], 200);
  EXPECT_EQ(batch.labels[1], 201);
  auto last = sharded->ReadRecord(2, 2).MoveValue();
  EXPECT_EQ(last.labels[0], 104);
  EXPECT_EQ(last.labels[1], 105);
}

TEST(ShardedRecordSource, RoutesPlansToEachShardsEnv) {
  VirtualClock clock;
  SimEnv env_a(DeviceProfile::Ram(), &clock);
  SimEnv env_b(DeviceProfile::Ram(), &clock);
  auto shard0 = BuildFpiShard(&env_a, "shard", 3, 100);
  auto shard1 = BuildFpiShard(&env_b, "shard", 3, 200);  // Same dir name!

  std::vector<std::unique_ptr<RecordSource>> shards;
  shards.push_back(std::move(shard0));
  shards.push_back(std::move(shard1));
  auto sharded = ShardedRecordSource::Create(std::move(shards)).MoveValue();

  // Plans carry the owning shard's backend and the global record number.
  auto plan_a = sharded->PlanFetch(1, 1).MoveValue();
  EXPECT_EQ(plan_a.env, &env_a);
  EXPECT_EQ(plan_a.record, 1);
  auto plan_b = sharded->PlanFetch(4, 1).MoveValue();
  EXPECT_EQ(plan_b.env, &env_b);
  EXPECT_EQ(plan_b.record, 4);
  ASSERT_EQ(plan_b.segments.size(), 1u);

  // Identical shard-local paths resolve through different envs: the label
  // tells us which backend actually served the bytes.
  for (int global = 0; global < 6; ++global) {
    auto batch = sharded->ReadRecord(global, 1).MoveValue();
    ASSERT_EQ(batch.size(), 1);
    const int64_t expected =
        global < 3 ? 100 + global : 200 + (global - 3);
    EXPECT_EQ(batch.labels[0], expected) << "record " << global;
  }
}

TEST(ShardedRecordSource, CompleteFetchTranslatesGlobalRecords) {
  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  auto shard0 = BuildFpiShard(&env, "f0", 2, 100);
  auto shard1 = BuildFpiShard(&env, "f1", 2, 200);
  std::vector<std::unique_ptr<RecordSource>> shards;
  shards.push_back(std::move(shard0));
  shards.push_back(std::move(shard1));
  auto sharded = ShardedRecordSource::Create(std::move(shards)).MoveValue();

  auto plan = sharded->PlanFetch(3, 1).MoveValue();
  auto bytes = ReadFetchPlan(plan);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  auto raw = sharded->CompleteFetch(plan, std::move(bytes).MoveValue())
                 .MoveValue();
  EXPECT_EQ(raw.record, 3);  // Global numbering restored.
  auto batch = sharded->AssembleRecord(std::move(raw)).MoveValue();
  EXPECT_EQ(batch.labels[0], 201);  // Shard 1's local record 1.
}

TEST(ShardedRecordSource, ShardFailuresCarryShardContext) {
  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  auto shard0 = BuildFpiShard(&env, "ok", 2, 0);
  std::vector<std::unique_ptr<RecordSource>> shards;
  shards.push_back(std::move(shard0));
  shards.push_back(std::make_unique<FailingSource>(2));
  auto sharded = ShardedRecordSource::Create(std::move(shards)).MoveValue();

  ASSERT_TRUE(sharded->PlanFetch(0, 1).ok());
  auto failed = sharded->PlanFetch(2, 1);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsIOError()) << failed.status();
  EXPECT_NE(failed.status().message().find("shard 1"), std::string::npos)
      << failed.status();
  EXPECT_NE(failed.status().message().find("disk gone"), std::string::npos)
      << failed.status();
}

TEST(ShardedRecordSource, CreateValidatesShardList) {
  EXPECT_TRUE(ShardedRecordSource::Create({}).status().IsInvalidArgument());

  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  {
    std::vector<std::unique_ptr<RecordSource>> shards;
    shards.push_back(BuildFpiShard(&env, "v0", 2, 0));
    shards.push_back(nullptr);
    EXPECT_TRUE(ShardedRecordSource::Create(std::move(shards))
                    .status()
                    .IsInvalidArgument());
  }
  {
    // PCR (10 scan groups) + file-per-image (1): quality ladders disagree.
    std::vector<std::unique_ptr<RecordSource>> shards;
    shards.push_back(BuildPcrShard(&env, "v1", 2, 2, 0));
    shards.push_back(BuildFpiShard(&env, "v2", 2, 0));
    auto result = ShardedRecordSource::Create(std::move(shards));
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsInvalidArgument()) << result.status();
    EXPECT_NE(result.status().message().find("scan groups"),
              std::string::npos)
        << result.status();
  }
}

TEST(ShardedRecordSource, OutOfRangeRecordsAreRejected) {
  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  std::vector<std::unique_ptr<RecordSource>> shards;
  shards.push_back(BuildFpiShard(&env, "r0", 2, 0));
  auto sharded = ShardedRecordSource::Create(std::move(shards)).MoveValue();
  EXPECT_TRUE(sharded->PlanFetch(-1, 1).status().IsOutOfRange());
  EXPECT_TRUE(sharded->PlanFetch(2, 1).status().IsOutOfRange());
  EXPECT_TRUE(sharded->ReadRecord(7, 1).status().IsOutOfRange());
}

TEST(ShardedRecordSource, ResidentPrefixesRouteThroughToTheShard) {
  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  std::vector<std::unique_ptr<RecordSource>> shards;
  shards.push_back(BuildPcrShard(&env, "rp0", 4, 2, 100));  // Records 0-1.
  shards.push_back(BuildPcrShard(&env, "rp1", 4, 2, 200));  // Records 2-3.
  auto sharded = ShardedRecordSource::Create(std::move(shards)).MoveValue();

  // Warm global record 2 (shard 1's record 0) at low quality, then upgrade
  // with the prefix resident: the plan the router returns must carry the
  // resident split computed by the owning shard.
  const RawRecord low = sharded->FetchRecord(2, 1).MoveValue();
  FetchResident resident;
  resident.scan_group = low.scan_group;
  resident.bytes = std::make_shared<const std::string>(low.payload);

  const int high = 3;
  auto plan = sharded->PlanFetch(2, high, &resident).MoveValue();
  EXPECT_EQ(plan.record, 2);  // Global numbering preserved.
  const uint64_t covered = sharded->RecordReadBytes(2, 1);
  ASSERT_EQ(plan.segments.size(), 2u);
  EXPECT_TRUE(plan.segments[0].resident);
  EXPECT_EQ(plan.segments[0].length, covered);
  EXPECT_FALSE(plan.segments[1].resident);
  EXPECT_EQ(plan.fetch_bytes(), sharded->RecordReadBytes(2, high) - covered);

  // Stitched delta read == cold read, through the sharded CompleteFetch.
  auto bytes = ReadFetchPlan(plan).MoveValue();
  auto warm = sharded->CompleteFetch(plan, std::move(bytes)).MoveValue();
  const RawRecord cold = sharded->FetchRecord(2, high).MoveValue();
  EXPECT_EQ(warm.payload, cold.payload);
  EXPECT_EQ(warm.record, 2);
  EXPECT_EQ(warm.bytes_read, plan.fetch_bytes());

  // Fully-resident re-read needs no storage bytes at all.
  auto zero = sharded->PlanFetch(2, 1, &resident).MoveValue();
  EXPECT_TRUE(zero.fully_resident());
  auto raw = sharded->CompleteFetch(zero, std::string()).MoveValue();
  EXPECT_EQ(raw.bytes_read, 0u);
  auto batch = sharded->AssembleRecord(std::move(raw)).MoveValue();
  EXPECT_EQ(batch.labels[0], 200);
}

TEST(ShardedRecordSource, StreamsThroughTheAsyncPipeline) {
  // Three PCR shards on a shared RAM-speed SimEnv (real clock: the pipeline
  // runs wall-clock threads), read with deep submission windows.
  SimEnv env(DeviceProfile::Ram(), RealClock::Get());
  std::vector<std::unique_ptr<RecordSource>> shards;
  shards.push_back(BuildPcrShard(&env, "p0", 4, 2, 1000));  // Records 0-1.
  shards.push_back(BuildPcrShard(&env, "p1", 2, 2, 2000));  // Record 2.
  shards.push_back(BuildPcrShard(&env, "p2", 4, 2, 3000));  // Records 3-4.
  auto sharded = ShardedRecordSource::Create(std::move(shards)).MoveValue();

  LoaderPipelineOptions options;
  options.io_threads = 2;
  options.io_inflight = 4;
  options.decode_threads = 2;
  options.max_epochs = 2;
  LoaderPipeline pipeline(sharded.get(), options);

  std::map<int, int> deliveries;
  std::map<int, int64_t> first_labels;
  for (;;) {
    auto batch = pipeline.Next();
    if (!batch.ok()) {
      EXPECT_EQ(batch.status().code(), StatusCode::kOutOfRange)
          << batch.status();
      break;
    }
    ASSERT_EQ(batch->size(), 2);
    ++deliveries[batch->record_index];
    first_labels[batch->record_index] = batch->labels[0];
  }
  ASSERT_EQ(deliveries.size(), 5u);
  for (const auto& [record, count] : deliveries) {
    EXPECT_EQ(count, 2) << "record " << record;
  }
  // Labels prove the global->shard-local routing held under concurrency.
  EXPECT_EQ(first_labels[0], 1000);
  EXPECT_EQ(first_labels[1], 1002);
  EXPECT_EQ(first_labels[2], 2000);
  EXPECT_EQ(first_labels[3], 3000);
  EXPECT_EQ(first_labels[4], 3002);
  EXPECT_TRUE(pipeline.status().ok());
}

}  // namespace
}  // namespace pcr
