// Tests for the wire format, the KV metadata store, and the storage Envs
// (Posix and simulated).
#include <gtest/gtest.h>

#include <filesystem>

#include "kv/kv_store.h"
#include "storage/env.h"
#include "storage/sim_device.h"
#include "storage/sim_env.h"
#include "util/random.h"
#include "wire/wire.h"

#include "test_util.h"

namespace pcr {
namespace {

// ------------------------------------------------------------- Wire

TEST(Wire, VarintRoundTrip) {
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 1ULL << 31,
                     ~0ULL, 0xdeadbeefcafeULL}) {
    std::string buf;
    wire::PutVarint(&buf, v);
    EXPECT_EQ(buf.size(), wire::VarintLength(v));
    Slice s(buf);
    uint64_t out;
    ASSERT_TRUE(wire::GetVarint(&s, &out));
    EXPECT_EQ(out, v);
    EXPECT_TRUE(s.empty());
  }
}

TEST(Wire, VarintTruncatedFails) {
  std::string buf;
  wire::PutVarint(&buf, 1ULL << 40);
  Slice s(buf.data(), buf.size() - 1);
  uint64_t out;
  EXPECT_FALSE(wire::GetVarint(&s, &out));
}

TEST(Wire, ZigZag) {
  const int64_t values[] = {0,  1,  -1, 2, -2, int64_t{1} << 40,
                            -(int64_t{1} << 40), INT64_MAX, INT64_MIN};
  for (int64_t v : values) {
    EXPECT_EQ(wire::ZigZagDecode(wire::ZigZagEncode(v)), v);
  }
  EXPECT_EQ(wire::ZigZagEncode(0), 0u);
  EXPECT_EQ(wire::ZigZagEncode(-1), 1u);
  EXPECT_EQ(wire::ZigZagEncode(1), 2u);
}

TEST(Wire, MessageRoundTrip) {
  wire::WireWriter w;
  w.PutUint64(1, 42);
  w.PutSint64(2, -77);
  w.PutString(3, "hello");
  w.PutDouble(4, 3.25);
  w.PutPackedUint64(5, {1, 200, 30000});
  w.PutBool(6, true);

  wire::WireReader r(Slice(w.buffer()));
  wire::WireField f;
  int seen = 0;
  while (r.Next(&f)) {
    ++seen;
    switch (f.field) {
      case 1: EXPECT_EQ(f.varint, 42u); break;
      case 2: EXPECT_EQ(f.AsSint64(), -77); break;
      case 3: EXPECT_EQ(f.bytes.ToString(), "hello"); break;
      case 4: EXPECT_DOUBLE_EQ(f.AsDouble(), 3.25); break;
      case 5: {
        auto packed = wire::WireReader::DecodePackedUint64(f.bytes);
        ASSERT_TRUE(packed.ok());
        EXPECT_EQ(*packed, (std::vector<uint64_t>{1, 200, 30000}));
        break;
      }
      case 6: EXPECT_EQ(f.varint, 1u); break;
      default: FAIL() << "unexpected field " << f.field;
    }
  }
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(seen, 6);
}

TEST(Wire, NestedMessage) {
  wire::WireWriter inner;
  inner.PutUint64(1, 7);
  wire::WireWriter outer;
  outer.PutMessage(2, inner);

  wire::WireReader r(Slice(outer.buffer()));
  wire::WireField f;
  ASSERT_TRUE(r.Next(&f));
  EXPECT_EQ(f.field, 2);
  wire::WireReader inner_r(f.bytes);
  ASSERT_TRUE(inner_r.Next(&f));
  EXPECT_EQ(f.varint, 7u);
}

TEST(Wire, CorruptInputReportsError) {
  std::string bad = "\xFA\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF";
  wire::WireReader r((Slice(bad)));
  wire::WireField f;
  while (r.Next(&f)) {
  }
  EXPECT_FALSE(r.status().ok());
}

// ------------------------------------------------------------- Env

TEST(PosixEnv, FileRoundTrip) {
  Env* env = Env::Default();
  const std::string dir = PerProcessTempDir("pcr_env_test");
  ASSERT_TRUE(env->CreateDir(dir).ok());
  const std::string path = dir + "/f.bin";
  std::string payload(10000, '\0');
  Rng rng(1);
  for (auto& c : payload) c = static_cast<char>(rng.Next());

  ASSERT_TRUE(env->WriteStringToFile(path, Slice(payload)).ok());
  EXPECT_TRUE(env->FileExists(path));
  EXPECT_EQ(*env->GetFileSize(path), payload.size());

  std::string readback;
  ASSERT_TRUE(env->ReadFileToString(path, &readback).ok());
  EXPECT_EQ(readback, payload);

  // Random access read.
  auto file = env->NewRandomAccessFile(path).MoveValue();
  char scratch[100];
  Slice out;
  ASSERT_TRUE(file->Read(5000, 100, scratch, &out).ok());
  EXPECT_EQ(out.ToString(), payload.substr(5000, 100));

  ASSERT_TRUE(env->RenameFile(path, path + ".2").ok());
  EXPECT_FALSE(env->FileExists(path));
  ASSERT_TRUE(env->DeleteFile(path + ".2").ok());
  std::filesystem::remove_all(dir);
}

TEST(SimEnv, ChargesTimeForIo) {
  VirtualClock clock;
  DeviceProfile profile;
  profile.read_bandwidth_bytes_per_sec = 1 << 20;  // 1 MiB/s.
  profile.write_bandwidth_bytes_per_sec = 1 << 20;
  profile.seek_latency_sec = 0.010;
  profile.per_op_latency_sec = 0;
  SimEnv env(profile, &clock);

  std::string payload(1 << 20, 'x');
  ASSERT_TRUE(env.WriteStringToFile("f", Slice(payload)).ok());
  const double after_write = clock.NowSeconds();
  EXPECT_NEAR(after_write, 1.0, 0.01);  // 1 MiB at 1 MiB/s.

  std::string readback;
  ASSERT_TRUE(env.ReadFileToString("f", &readback).ok());
  EXPECT_EQ(readback.size(), payload.size());
  // Read: seek (10 ms) + 1 s transfer.
  EXPECT_NEAR(clock.NowSeconds() - after_write, 1.010, 0.01);
}

TEST(SimEnv, SequentialReadsSkipSeek) {
  VirtualClock clock;
  DeviceProfile profile;
  profile.read_bandwidth_bytes_per_sec = 1 << 20;
  profile.seek_latency_sec = 0.5;
  profile.per_op_latency_sec = 0;
  SimEnv env(profile, &clock);
  ASSERT_TRUE(env.WriteStringToFile("f", Slice(std::string(4096, 'x'))).ok());

  auto file = env.NewRandomAccessFile("f").MoveValue();
  char scratch[2048];
  Slice out;
  const double t0 = clock.NowSeconds();
  ASSERT_TRUE(file->Read(0, 2048, scratch, &out).ok());
  const double first = clock.NowSeconds() - t0;
  EXPECT_GT(first, 0.5);  // Paid the seek.
  const double t1 = clock.NowSeconds();
  ASSERT_TRUE(file->Read(2048, 2048, scratch, &out).ok());
  const double second = clock.NowSeconds() - t1;
  EXPECT_LT(second, 0.1);  // Sequential continuation: no seek.
  EXPECT_EQ(env.device()->stats().seeks, 1);
}

TEST(SimEnv, ListDirAndRename) {
  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  ASSERT_TRUE(env.CreateDir("a/b").ok());
  ASSERT_TRUE(env.WriteStringToFile("a/b/one", Slice("1")).ok());
  ASSERT_TRUE(env.WriteStringToFile("a/b/two", Slice("2")).ok());
  auto names = env.ListDir("a/b").MoveValue();
  EXPECT_EQ(names, (std::vector<std::string>{"one", "two"}));
  auto top = env.ListDir("a").MoveValue();
  EXPECT_EQ(top, (std::vector<std::string>{"b"}));
  ASSERT_TRUE(env.RenameFile("a/b/one", "a/b/zzz").ok());
  EXPECT_FALSE(env.FileExists("a/b/one"));
  EXPECT_TRUE(env.FileExists("a/b/zzz"));
}

// ------------------------------------------------------------- KvStore

class KvStoreTest : public ::testing::TestWithParam<bool> {
 protected:
  // Parameterized over Posix vs Sim env.
  void SetUp() override {
    if (GetParam()) {
      clock_ = std::make_unique<VirtualClock>();
      sim_env_ = std::make_unique<SimEnv>(DeviceProfile::Ram(), clock_.get());
      env_ = sim_env_.get();
      path_ = "kv/test.kvlog";
      ASSERT_TRUE(env_->CreateDir("kv").ok());
    } else {
      env_ = Env::Default();
      posix_dir_ = PerProcessTempDir("pcr_kv_test");
      ASSERT_TRUE(env_->CreateDir(posix_dir_).ok());
      path_ = posix_dir_ + "/test.kvlog";
      if (env_->FileExists(path_)) env_->DeleteFile(path_).ok();
    }
  }

  void TearDown() override {
    if (!posix_dir_.empty()) std::filesystem::remove_all(posix_dir_);
  }

  std::unique_ptr<VirtualClock> clock_;
  std::unique_ptr<SimEnv> sim_env_;
  Env* env_ = nullptr;
  std::string path_;
  std::string posix_dir_;
};

TEST_P(KvStoreTest, PutGetDelete) {
  auto db = KvStore::Open(env_, path_).MoveValue();
  ASSERT_TRUE(db->Put("k1", "v1").ok());
  ASSERT_TRUE(db->Put("k2", "v2").ok());
  EXPECT_EQ(*db->Get("k1"), "v1");
  EXPECT_TRUE(db->Contains("k2"));
  ASSERT_TRUE(db->Delete("k1").ok());
  EXPECT_TRUE(db->Get("k1").status().IsNotFound());
  EXPECT_EQ(db->stats().live_keys, 1u);
}

TEST_P(KvStoreTest, OverwriteKeepsLatest) {
  auto db = KvStore::Open(env_, path_).MoveValue();
  ASSERT_TRUE(db->Put("k", "old").ok());
  ASSERT_TRUE(db->Put("k", "new").ok());
  EXPECT_EQ(*db->Get("k"), "new");
}

TEST_P(KvStoreTest, PersistsAcrossReopen) {
  {
    auto db = KvStore::Open(env_, path_).MoveValue();
    ASSERT_TRUE(db->Put("alpha", "1").ok());
    ASSERT_TRUE(db->Put("beta", "2").ok());
    ASSERT_TRUE(db->Delete("alpha").ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  auto db = KvStore::Open(env_, path_).MoveValue();
  EXPECT_TRUE(db->Get("alpha").status().IsNotFound());
  EXPECT_EQ(*db->Get("beta"), "2");
}

TEST_P(KvStoreTest, PrefixScan) {
  auto db = KvStore::Open(env_, path_).MoveValue();
  ASSERT_TRUE(db->Put("rec/001", "a").ok());
  ASSERT_TRUE(db->Put("rec/002", "b").ok());
  ASSERT_TRUE(db->Put("meta", "m").ok());
  const auto keys = db->ScanPrefix("rec/");
  EXPECT_EQ(keys, (std::vector<std::string>{"rec/001", "rec/002"}));
  const auto entries = db->ScanPrefixEntries("rec/");
  EXPECT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].second, "a");
}

TEST_P(KvStoreTest, BinaryKeysAndValues) {
  auto db = KvStore::Open(env_, path_).MoveValue();
  const std::string key("\x00\xff\x01", 3);
  std::string value(1000, '\0');
  Rng rng(2);
  for (auto& c : value) c = static_cast<char>(rng.Next());
  ASSERT_TRUE(db->Put(key, value).ok());
  EXPECT_EQ(*db->Get(key), value);
}

TEST_P(KvStoreTest, DetectsCorruption) {
  {
    auto db = KvStore::Open(env_, path_).MoveValue();
    ASSERT_TRUE(db->Put("key", "value").ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  // Flip a byte in the log body.
  std::string raw;
  ASSERT_TRUE(env_->ReadFileToString(path_, &raw).ok());
  raw[raw.size() / 2] ^= 0x40;
  ASSERT_TRUE(env_->WriteStringToFile(path_, Slice(raw)).ok());

  auto fail = KvStore::Open(env_, path_);
  EXPECT_FALSE(fail.ok());
  EXPECT_TRUE(fail.status().IsCorruption());

  // Recovery mode drops the bad tail.
  auto recovered = KvStore::Open(env_, path_, /*truncate_corrupt_tail=*/true);
  EXPECT_TRUE(recovered.ok()) << recovered.status();
}

TEST_P(KvStoreTest, CompactShrinksLog) {
  auto db = KvStore::Open(env_, path_).MoveValue();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db->Put("key", std::string(100, 'a' + (i % 26))).ok());
  }
  ASSERT_TRUE(db->Compact().ok());
  EXPECT_EQ(db->stats().log_records, 1u);
  EXPECT_EQ(*db->Get("key"), std::string(100, 'a' + (99 % 26)));
}

INSTANTIATE_TEST_SUITE_P(Envs, KvStoreTest, ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "SimEnv" : "PosixEnv";
                         });

}  // namespace
}  // namespace pcr
