// Failure-injection and property tests: the decoder and PCR parser must
// never crash or report success on corrupt/truncated input, and format
// invariants must hold across randomized shapes.
#include <gtest/gtest.h>

#include "core/pcr_format.h"
#include "data/dataset_spec.h"
#include "image/metrics.h"
#include "image/transform.h"
#include "jpeg/codec.h"
#include "jpeg/scan_parser.h"
#include "util/random.h"

namespace pcr {
namespace {

std::string MakeProgressiveJpeg(int w, int h, uint64_t seed) {
  DatasetSpec spec = DatasetSpec::TestTiny();
  spec.base_width = w;
  spec.base_height = h;
  spec.size_jitter = 0;
  const Image img = GenerateImage(spec, static_cast<int>(seed % 3), seed);
  jpeg::EncodeOptions options;
  options.quality = 88;
  options.progressive = true;
  return jpeg::Encode(img, options).MoveValue();
}

TEST(Robustness, TruncationAtAnyPointNeverCrashes) {
  const std::string full = MakeProgressiveJpeg(72, 56, 1);
  Rng rng(2);
  // Sample truncation points densely (every point for small prefixes, then
  // random). Decoding either fails cleanly or yields a partial image.
  std::vector<size_t> cuts;
  for (size_t i = 0; i < 64 && i < full.size(); ++i) cuts.push_back(i);
  for (int i = 0; i < 200; ++i) cuts.push_back(rng.Uniform(full.size()));
  for (size_t cut : cuts) {
    auto result = jpeg::DecodeFull(Slice(full.data(), cut));
    if (result.ok()) {
      EXPECT_GT(result->image.width(), 0);
    }
  }
}

TEST(Robustness, BitFlipsNeverCrashDecoder) {
  const std::string full = MakeProgressiveJpeg(48, 48, 3);
  Rng rng(4);
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupted = full;
    const int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < flips; ++f) {
      corrupted[rng.Uniform(corrupted.size())] ^=
          static_cast<char>(1 << rng.Uniform(8));
    }
    // Any outcome is fine except a crash; if it "succeeds", the image must
    // have the frame's dimensions.
    auto result = jpeg::DecodeFull(Slice(corrupted));
    if (result.ok()) {
      EXPECT_GT(result->image.width(), 0);
      EXPECT_GT(result->image.height(), 0);
    }
  }
}

TEST(Robustness, ScanIndexerOnCorruptInput) {
  const std::string full = MakeProgressiveJpeg(48, 48, 5);
  Rng rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = full.substr(0, rng.Uniform(full.size()) + 1);
    if (rng.NextBernoulli(0.5) && corrupted.size() > 4) {
      corrupted[2 + rng.Uniform(corrupted.size() - 2)] ^= 0xff;
    }
    jpeg::IndexScans(corrupted).ok();  // Must not crash.
  }
}

TEST(Robustness, PcrHeaderParserOnRandomBytes) {
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    std::string garbage(rng.Uniform(200), '\0');
    for (auto& c : garbage) c = static_cast<char>(rng.Next());
    // Give half the trials a valid magic so the parser goes deeper.
    if (trial % 2 == 0 && garbage.size() >= 4) {
      memcpy(garbage.data(), kPcrMagic, 4);
    }
    ParsePcrHeader(Slice(garbage)).ok();  // Must not crash.
  }
}

TEST(Robustness, AssembleRecordPrefixOnMutatedHeaders) {
  // Build a valid record file, then mutate header bytes.
  PcrHeader header;
  header.num_images = 2;
  header.num_groups = 3;
  header.labels = {1, 2};
  header.jpeg_headers = {"AB", "CD"};
  header.group_sizes = {{2, 2}, {1, 1}, {3, 3}};
  std::string file = SerializePcrHeader(&header);
  file += std::string(12, 'x');  // Payload.

  Rng rng(8);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = file;
    mutated[rng.Uniform(mutated.size())] ^= static_cast<char>(rng.Next());
    auto result = AssembleRecordPrefix(Slice(mutated), 3);
    if (result.ok()) {
      EXPECT_LE(result->spans.size(), 64u);
    }
  }
}

// Property sweep: across qualities and sizes, decode quality must be
// monotone in quality setting and every scan prefix must decode.
class QualitySweep : public ::testing::TestWithParam<int> {};

TEST_P(QualitySweep, PrefixesDecodeAndQualityOrders) {
  const int quality = GetParam();
  DatasetSpec spec = DatasetSpec::TestTiny();
  spec.base_width = 56;
  spec.base_height = 48;
  spec.size_jitter = 0;
  const Image img = GenerateImage(spec, 1, 99);

  jpeg::EncodeOptions options;
  options.quality = quality;
  options.progressive = true;
  const std::string encoded = jpeg::Encode(img, options).MoveValue();
  const auto index = jpeg::IndexScans(encoded).MoveValue();
  EXPECT_EQ(index.scans.size(), 10u);

  for (int scans = 1; scans <= 10; ++scans) {
    const std::string prefix = jpeg::AssemblePrefix(encoded, index, scans);
    auto result = jpeg::DecodeFull(Slice(prefix));
    ASSERT_TRUE(result.ok()) << "q=" << quality << " scans=" << scans;
    EXPECT_EQ(result->scans_decoded, scans);
  }

  // Full decode PSNR must increase with the quality setting.
  static double prev_psnr = 0.0;
  if (quality == 40) prev_psnr = 0.0;  // First in the sweep order.
  const double psnr =
      Psnr(img, jpeg::Decode(Slice(encoded)).MoveValue());
  EXPECT_GE(psnr, prev_psnr - 0.5) << "q=" << quality;
  prev_psnr = psnr;
}

INSTANTIATE_TEST_SUITE_P(Qualities, QualitySweep,
                         ::testing::Values(40, 60, 75, 85, 92, 98));

TEST(Robustness, EveryScanPrefixRendersEveryPixelRegion) {
  // The progressive property: even scan 1 must render a full-size image
  // (approximate everywhere), not "holes" like truncated sequential JPEG.
  const std::string encoded = MakeProgressiveJpeg(80, 64, 11);
  const auto index = jpeg::IndexScans(encoded).MoveValue();
  const Image full = jpeg::Decode(Slice(encoded)).MoveValue();
  const std::string prefix = jpeg::AssemblePrefix(encoded, index, 1);
  const Image low = jpeg::Decode(Slice(prefix)).MoveValue();
  ASSERT_TRUE(low.SameShape(full));
  // Per-quadrant MSSIM: every region carries signal (no dead zones).
  for (int qy = 0; qy < 2; ++qy) {
    for (int qx = 0; qx < 2; ++qx) {
      const Image a = Crop(full, qx * 40, qy * 32, 40, 32);
      const Image b = Crop(low, qx * 40, qy * 32, 40, 32);
      EXPECT_GT(Ssim(a, b), 0.5) << "quadrant " << qx << "," << qy;
    }
  }
}

}  // namespace
}  // namespace pcr
