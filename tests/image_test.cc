// Tests for the image substrate: containers, color conversion, transforms,
// PPM I/O, quality metrics, and procedural synthesis.
#include <gtest/gtest.h>

#include "image/color.h"
#include "image/image.h"
#include "image/metrics.h"
#include "image/ppm.h"
#include "image/procedural.h"
#include "image/transform.h"
#include "util/random.h"

namespace pcr {
namespace {

Image NoiseImage(int w, int h, int channels, uint64_t seed) {
  Image img(w, h, channels);
  Rng rng(seed);
  for (size_t i = 0; i < img.size_bytes(); ++i) {
    img.data()[i] = static_cast<uint8_t>(rng.Next());
  }
  return img;
}

// ------------------------------------------------------------- Color

TEST(Color, GrayRoundTripIsExact) {
  const Image gray = NoiseImage(33, 17, 1, 1);
  const PlanarImage planar = RgbToYcbcr(gray, ChromaSubsampling::k420);
  EXPECT_EQ(planar.num_components(), 1);
  const Image back = YcbcrToRgb(planar);
  EXPECT_EQ(0, memcmp(gray.data(), back.data(), gray.size_bytes()));
}

TEST(Color, Rgb444RoundTripIsClose) {
  const Image rgb = NoiseImage(40, 30, 3, 2);
  const PlanarImage planar = RgbToYcbcr(rgb, ChromaSubsampling::k444);
  ASSERT_EQ(planar.num_components(), 3);
  EXPECT_EQ(planar.planes[1].width(), 40);
  const Image back = YcbcrToRgb(planar);
  // YCbCr quantizes; allow small error.
  EXPECT_GT(Psnr(rgb, back), 40.0);
}

TEST(Color, SubsamplingHalvesChroma) {
  const Image rgb = NoiseImage(41, 31, 3, 3);  // Odd dims.
  const PlanarImage planar = RgbToYcbcr(rgb, ChromaSubsampling::k420);
  EXPECT_EQ(planar.planes[0].width(), 41);
  EXPECT_EQ(planar.planes[1].width(), 21);
  EXPECT_EQ(planar.planes[1].height(), 16);
}

TEST(Color, GraySignalSurvivesRoundTrip420) {
  // A smooth color image round-trips with modest loss under 4:2:0.
  Image img(64, 64, 3);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      img.set(x, y, 0, static_cast<uint8_t>(2 * x + 60));
      img.set(x, y, 1, static_cast<uint8_t>(2 * y + 40));
      img.set(x, y, 2, 90);
    }
  }
  const Image back = YcbcrToRgb(RgbToYcbcr(img, ChromaSubsampling::k420));
  EXPECT_GT(Psnr(img, back), 35.0);
}

// ------------------------------------------------------------- Transform

TEST(Transform, ResizePreservesConstant) {
  Image img(50, 40, 3, 77);
  const Image out = ResizeBilinear(img, 23, 31);
  EXPECT_EQ(out.width(), 23);
  for (int y = 0; y < out.height(); ++y) {
    for (int x = 0; x < out.width(); ++x) {
      for (int c = 0; c < 3; ++c) EXPECT_EQ(out.at(x, y, c), 77);
    }
  }
}

TEST(Transform, ResizeShortSideKeepsAspect) {
  const Image img(400, 200, 3);
  const Image out = ResizeShortSide(img, 100);
  EXPECT_EQ(out.height(), 100);
  EXPECT_EQ(out.width(), 200);
}

TEST(Transform, CropExtractsRegion) {
  Image img(10, 10, 1);
  img.set(3, 4, 0, 200);
  const Image out = Crop(img, 3, 4, 2, 2);
  EXPECT_EQ(out.width(), 2);
  EXPECT_EQ(out.at(0, 0, 0), 200);
}

TEST(Transform, FlipIsInvolution) {
  const Image img = NoiseImage(13, 9, 3, 4);
  const Image twice = FlipHorizontal(FlipHorizontal(img));
  EXPECT_EQ(0, memcmp(img.data(), twice.data(), img.size_bytes()));
}

TEST(Transform, CenterCropUpscalesSmallInputs) {
  const Image img(50, 50, 3);
  const Image out = CenterCrop(img, 100, 100);
  EXPECT_EQ(out.width(), 100);
  EXPECT_EQ(out.height(), 100);
}

TEST(Transform, AugmentProducesRequestedSize) {
  const Image img = NoiseImage(300, 200, 3, 5);
  Rng rng(6);
  AugmentOptions options;
  options.output_size = 224;
  const Image out = Augment(img, options, &rng);
  EXPECT_EQ(out.width(), 224);
  EXPECT_EQ(out.height(), 224);
}

// ------------------------------------------------------------- PPM

TEST(Ppm, RoundTripColorAndGray) {
  for (int channels : {1, 3}) {
    const Image img = NoiseImage(37, 23, channels, 7 + channels);
    const std::string encoded = EncodePpm(img);
    const Image back = DecodePpm(Slice(encoded)).MoveValue();
    ASSERT_TRUE(img.SameShape(back));
    EXPECT_EQ(0, memcmp(img.data(), back.data(), img.size_bytes()));
  }
}

TEST(Ppm, RejectsBadInput) {
  EXPECT_FALSE(DecodePpm(Slice("nonsense")).ok());
  EXPECT_FALSE(DecodePpm(Slice("P6\n10 10\n255\nshort")).ok());
}

TEST(Ppm, HandlesComments) {
  const std::string with_comment = "P5\n# a comment\n2 2\n255\nabcd";
  const Image img = DecodePpm(Slice(with_comment)).MoveValue();
  EXPECT_EQ(img.width(), 2);
  EXPECT_EQ(img.at(0, 0, 0), 'a');
}

// ------------------------------------------------------------- Metrics

TEST(Metrics, IdenticalImagesAreUnity) {
  const Image img = NoiseImage(128, 96, 3, 9);
  EXPECT_DOUBLE_EQ(Mse(img, img), 0.0);
  EXPECT_EQ(Psnr(img, img), 99.0);
  EXPECT_NEAR(Ssim(img, img), 1.0, 1e-9);
  EXPECT_NEAR(Msssim(img, img), 1.0, 1e-6);
}

TEST(Metrics, NoiseDegradesMonotonically) {
  Rng rng(10);
  std::vector<float> luma;
  BackgroundParams bg;
  RenderBackground(160, 120, bg, &rng, &luma);
  const Image base = LumaToImage(160, 120, luma, false, &rng);

  double prev_mssim = 1.0, prev_psnr = 100.0;
  for (double noise : {2.0, 8.0, 25.0}) {
    Image degraded = base;
    Rng noise_rng(11);
    for (size_t i = 0; i < degraded.size_bytes(); ++i) {
      const double v = degraded.data()[i] + noise * noise_rng.NextGaussian();
      degraded.data()[i] =
          static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
    }
    const double mssim = Msssim(base, degraded);
    const double psnr = Psnr(base, degraded);
    EXPECT_LT(mssim, prev_mssim);
    EXPECT_LT(psnr, prev_psnr);
    prev_mssim = mssim;
    prev_psnr = psnr;
  }
}

TEST(Metrics, MssimInsensitiveToSmallBrightnessShift) {
  // Structural similarity tolerates a small global luminance shift better
  // than MSE-based PSNR does.
  const Image img = NoiseImage(128, 128, 1, 12);
  Image shifted = img;
  for (size_t i = 0; i < shifted.size_bytes(); ++i) {
    shifted.data()[i] =
        static_cast<uint8_t>(std::min(255, shifted.data()[i] + 6));
  }
  EXPECT_GT(Msssim(img, shifted), 0.98);
  EXPECT_LT(Psnr(img, shifted), 35.0);
}

TEST(Metrics, WorksOnSmallImages) {
  // MS-SSIM reduces scale count for images that cannot support 5 dyadic
  // levels.
  const Image a = NoiseImage(48, 48, 1, 13);
  const Image b = NoiseImage(48, 48, 1, 14);
  const double v = Msssim(a, b);
  EXPECT_GT(v, -1.0);
  EXPECT_LT(v, 0.7);  // Unrelated noise: low similarity.
}

// ------------------------------------------------------------- Procedural

TEST(Procedural, BackgroundIsDeterministicPerSeed) {
  BackgroundParams bg;
  std::vector<float> a, b;
  Rng r1(42), r2(42);
  RenderBackground(64, 48, bg, &r1, &a);
  RenderBackground(64, 48, bg, &r2, &b);
  EXPECT_EQ(a, b);
}

TEST(Procedural, BlobsAddLocalizedEnergy) {
  std::vector<float> luma(64 * 64, 128.0f);
  Blob blob;
  blob.x = 0.5;
  blob.y = 0.5;
  blob.radius_px = 5.0;
  blob.amplitude = 50.0;
  RenderBlobs(64, 64, {blob}, 0, 0, &luma);
  EXPECT_GT(luma[32 * 64 + 32], 170.0f);  // Center raised.
  EXPECT_NEAR(luma[0], 128.0f, 1.0f);     // Corner untouched.
}

TEST(Procedural, LumaToImageClamps) {
  std::vector<float> luma = {-50.0f, 300.0f, 128.0f, 0.0f};
  Rng rng(15);
  const Image img = LumaToImage(2, 2, luma, false, &rng);
  EXPECT_EQ(img.at(0, 0, 0), 0);
  EXPECT_EQ(img.at(1, 0, 0), 255);
  EXPECT_EQ(img.at(0, 1, 0), 128);
}

}  // namespace
}  // namespace pcr
