// Helpers shared by the test suites.
#pragma once

#include <unistd.h>

#include <string>

#include "util/string_util.h"

namespace pcr {

// ctest runs every discovered TEST() as its own process, many in parallel.
// Fixtures that write through the posix Env must therefore never share a
// fixed /tmp path across test cases: two processes would race on the same
// files (half-built datasets, interleaved kv logs). Keying the directory on
// the pid keeps each test process isolated.
inline std::string PerProcessTempDir(const std::string& stem) {
  return StrFormat("/tmp/%s.%d", stem.c_str(), static_cast<int>(getpid()));
}

}  // namespace pcr
