// Tests for the decoded-record DecodeCache: LRU eviction order under the
// byte budget, oversize rejection, same-key replacement, targeted
// scan-group/dataset invalidation, and sharded concurrent hit/miss
// hammering (run under TSan in CI).
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "loader/decode_cache.h"
#include "util/random.h"

namespace pcr {
namespace {

/// A decoded batch whose label encodes its identity, so hits can be checked
/// for cross-key corruption.
LoadedBatch MakeBatch(int record, int scan_group, int num_images = 1,
                      int side = 16) {
  LoadedBatch batch;
  batch.record_index = record;
  batch.scan_group = scan_group;
  for (int i = 0; i < num_images; ++i) {
    batch.images.emplace_back(side, side, 3,
                              static_cast<uint8_t>(record & 0xff));
    batch.labels.push_back(record * 1000 + scan_group);
  }
  batch.bytes_read = 64;
  return batch;
}

uint64_t OneBatchBytes() {
  return DecodeCache::BatchBytes(MakeBatch(0, 1));
}

TEST(DecodeCacheTest, HitReturnsTheStoredBatch) {
  DecodeCacheOptions options;
  options.capacity_bytes = 8 * OneBatchBytes();
  options.shards = 1;
  DecodeCache cache(options);
  const uint64_t ds = cache.RegisterDataset();

  EXPECT_EQ(cache.Lookup({ds, 3, 2}), nullptr);
  ASSERT_NE(cache.Insert({ds, 3, 2}, MakeBatch(3, 2)), nullptr);
  auto hit = cache.Lookup({ds, 3, 2});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->record_index, 3);
  EXPECT_EQ(hit->scan_group, 2);
  EXPECT_EQ(hit->labels[0], 3 * 1000 + 2);

  const DecodeCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.bytes_in_use, OneBatchBytes());
}

TEST(DecodeCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  DecodeCacheOptions options;
  // Room for two batches, not three (single shard = deterministic order).
  options.capacity_bytes = 2 * OneBatchBytes() + OneBatchBytes() / 2;
  options.shards = 1;
  DecodeCache cache(options);
  const uint64_t ds = cache.RegisterDataset();

  ASSERT_NE(cache.Insert({ds, 0, 1}, MakeBatch(0, 1)), nullptr);
  ASSERT_NE(cache.Insert({ds, 1, 1}, MakeBatch(1, 1)), nullptr);
  // Freshen record 0: record 1 becomes the LRU victim.
  ASSERT_NE(cache.Lookup({ds, 0, 1}), nullptr);
  ASSERT_NE(cache.Insert({ds, 2, 1}, MakeBatch(2, 1)), nullptr);

  EXPECT_EQ(cache.Lookup({ds, 1, 1}), nullptr) << "LRU entry not evicted";
  EXPECT_NE(cache.Lookup({ds, 0, 1}), nullptr);
  EXPECT_NE(cache.Lookup({ds, 2, 1}), nullptr);

  const DecodeCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 2);
  EXPECT_LE(stats.bytes_in_use, options.capacity_bytes);
}

TEST(DecodeCacheTest, OversizeInsertRejectedWithoutConsumingTheBatch) {
  DecodeCacheOptions options;
  options.capacity_bytes = OneBatchBytes() / 2;
  options.shards = 1;
  DecodeCache cache(options);
  const uint64_t ds = cache.RegisterDataset();

  LoadedBatch batch = MakeBatch(7, 1);
  EXPECT_EQ(cache.Insert({ds, 7, 1}, std::move(batch)), nullptr);
  // The reject contract: the batch is untouched and still deliverable.
  EXPECT_EQ(batch.size(), 1);
  EXPECT_EQ(batch.labels[0], 7 * 1000 + 1);

  const DecodeCacheStats stats = cache.stats();
  EXPECT_EQ(stats.oversize_rejects, 1);
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.bytes_in_use, 0u);
}

TEST(DecodeCacheTest, SameKeyInsertReplacesWithoutLeakingBytes) {
  DecodeCacheOptions options;
  options.capacity_bytes = 8 * OneBatchBytes();
  options.shards = 1;
  DecodeCache cache(options);
  const uint64_t ds = cache.RegisterDataset();

  ASSERT_NE(cache.Insert({ds, 4, 1}, MakeBatch(4, 1)), nullptr);
  LoadedBatch replacement = MakeBatch(4, 1);
  replacement.labels[0] = -1;  // Distinguish the second insert.
  ASSERT_NE(cache.Insert({ds, 4, 1}, std::move(replacement)), nullptr);

  auto hit = cache.Lookup({ds, 4, 1});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->labels[0], -1);
  const DecodeCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.bytes_in_use, OneBatchBytes());
  EXPECT_EQ(stats.evictions, 0);
}

TEST(DecodeCacheTest, ScanGroupInvalidationIsTargeted) {
  DecodeCacheOptions options;
  options.capacity_bytes = 32 * OneBatchBytes();
  options.shards = 4;
  DecodeCache cache(options);
  const uint64_t ds1 = cache.RegisterDataset();
  const uint64_t ds2 = cache.RegisterDataset();
  ASSERT_NE(ds1, ds2);

  for (int record = 0; record < 4; ++record) {
    ASSERT_NE(cache.Insert({ds1, record, 1}, MakeBatch(record, 1)), nullptr);
    ASSERT_NE(cache.Insert({ds1, record, 5}, MakeBatch(record, 5)), nullptr);
    ASSERT_NE(cache.Insert({ds2, record, 1}, MakeBatch(record, 1)), nullptr);
  }

  // Drop only dataset 1's group-1 entries (a tuner leaving group 1).
  EXPECT_EQ(cache.InvalidateScanGroup(ds1, 1), 4u);
  for (int record = 0; record < 4; ++record) {
    EXPECT_EQ(cache.Lookup({ds1, record, 1}), nullptr);
    EXPECT_NE(cache.Lookup({ds1, record, 5}), nullptr)
        << "other group flushed";
    EXPECT_NE(cache.Lookup({ds2, record, 1}), nullptr)
        << "other dataset flushed";
  }
  EXPECT_EQ(cache.stats().invalidated, 4);

  EXPECT_EQ(cache.InvalidateDataset(ds1), 4u);
  EXPECT_EQ(cache.Lookup({ds1, 0, 5}), nullptr);
  EXPECT_NE(cache.Lookup({ds2, 0, 1}), nullptr);

  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().bytes_in_use, 0u);
  EXPECT_EQ(cache.Lookup({ds2, 0, 1}), nullptr);
}

TEST(DecodeCacheTest, ProbeMarkedGroupsSkipPopulationButKeepServingHits) {
  DecodeCacheOptions options;
  options.capacity_bytes = 8 * OneBatchBytes();
  options.shards = 1;
  DecodeCache cache(options);
  const uint64_t ds = cache.RegisterDataset();

  // A resident working set at group 5, populated before the probe cycle.
  ASSERT_NE(cache.Insert({ds, 0, 5}, MakeBatch(0, 5)), nullptr);
  ASSERT_NE(cache.Insert({ds, 1, 5}, MakeBatch(1, 5)), nullptr);

  cache.MarkProbeScanGroup(ds, 5);
  cache.MarkProbeScanGroup(ds, 2);
  EXPECT_TRUE(cache.IsProbeScanGroup(ds, 5));

  // Probe traffic: inserts at marked groups are admission rejects — the
  // batch stays with the caller and nothing resident is evicted.
  LoadedBatch probe = MakeBatch(7, 2);
  EXPECT_EQ(cache.Insert({ds, 7, 2}, std::move(probe)), nullptr);
  EXPECT_EQ(probe.labels[0], 7 * 1000 + 2);  // Still valid (not consumed).
  EXPECT_EQ(cache.Insert({ds, 2, 5}, MakeBatch(2, 5)), nullptr);
  EXPECT_EQ(cache.stats().admission_rejects, 2);
  EXPECT_EQ(cache.stats().entries, 2);

  // Lookups at the marked group still serve the pre-probe entries, and
  // Admits mirrors the insert decision for the miss path's copy.
  EXPECT_NE(cache.Lookup({ds, 0, 5}), nullptr);
  EXPECT_FALSE(cache.Admits(DecodeCacheKey{ds, 9, 5}, OneBatchBytes()));
  EXPECT_TRUE(cache.Admits(DecodeCacheKey{ds, 9, 1}, OneBatchBytes()));

  // Unmarking (the tuner adopting a group) restores normal admission, and
  // marks are per (dataset, group): another dataset id is unaffected.
  cache.UnmarkProbeScanGroup(ds, 5);
  EXPECT_NE(cache.Insert({ds, 2, 5}, MakeBatch(2, 5)), nullptr);
  const uint64_t other = cache.RegisterDataset();
  EXPECT_FALSE(cache.IsProbeScanGroup(other, 2));
  EXPECT_NE(cache.Insert({other, 0, 2}, MakeBatch(0, 2)), nullptr);
}

TEST(DecodeCacheTest, ShardedConcurrentHammeringStaysConsistent) {
  DecodeCacheOptions options;
  // Budget for only ~6 of the 64 live keys: constant eviction pressure.
  options.capacity_bytes = 6 * OneBatchBytes();
  options.shards = 4;
  DecodeCache cache(options);
  const uint64_t ds = cache.RegisterDataset();

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, ds, t] {
      Rng rng(1234 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int record = static_cast<int>(rng.Uniform(32));
        const int group = 1 + static_cast<int>(rng.Uniform(2));
        const DecodeCacheKey key{ds, record, group};
        if (auto hit = cache.Lookup(key)) {
          // A hit must never serve another key's payload.
          ASSERT_EQ(hit->labels[0], record * 1000 + group);
          ASSERT_EQ(hit->record_index, record);
        } else {
          cache.Insert(key, MakeBatch(record, group));
        }
        if (i % 512 == 0) cache.InvalidateScanGroup(ds, 2);
      }
    });
  }
  for (auto& worker : workers) worker.join();

  const DecodeCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<int64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(stats.bytes_in_use, options.capacity_bytes);
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.evictions, 0);
  // Every surviving entry is still internally consistent.
  for (int record = 0; record < 32; ++record) {
    for (int group = 1; group <= 2; ++group) {
      if (auto hit = cache.Lookup({ds, record, group})) {
        EXPECT_EQ(hit->labels[0], record * 1000 + group);
      }
    }
  }
}

}  // namespace
}  // namespace pcr
