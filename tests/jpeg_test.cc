// Tests for the from-scratch JPEG codec: DCT, Huffman, baseline and
// progressive round trips, lossless transcoding, scan indexing, and partial
// (prefix) decoding — the properties PCR correctness rests on.
#include <gtest/gtest.h>

#include <cmath>

#include "image/image.h"
#include "image/metrics.h"
#include "image/procedural.h"
#include "jpeg/bit_io.h"
#include "jpeg/codec.h"
#include "jpeg/constants.h"
#include "jpeg/dct.h"
#include "jpeg/huffman.h"
#include "jpeg/scan_parser.h"
#include "jpeg/scan_script.h"
#include "util/random.h"

namespace pcr::jpeg {
namespace {

Image MakeTestImage(int w, int h, bool color, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> luma;
  BackgroundParams params;
  RenderBackground(w, h, params, &rng, &luma);
  auto blobs = SampleBlobs(10, 12.0, 45.0, &rng);
  RenderBlobs(w, h, blobs, 0, 0, &luma);
  AddNoise(2.0, &rng, &luma);
  return LumaToImage(w, h, luma, color, &rng);
}

// ---------------------------------------------------------------- DCT

TEST(Dct, RoundTripIsIdentity) {
  Rng rng(1);
  double in[64], freq[64], out[64];
  for (int trial = 0; trial < 50; ++trial) {
    for (double& v : in) v = rng.UniformDouble(-128.0, 127.0);
    ForwardDct8x8(in, freq);
    InverseDct8x8(freq, out);
    for (int i = 0; i < 64; ++i) {
      EXPECT_NEAR(in[i], out[i], 1e-9);
    }
  }
}

TEST(Dct, ConstantBlockHasOnlyDc) {
  double in[64], freq[64];
  for (double& v : in) v = 57.0;
  ForwardDct8x8(in, freq);
  EXPECT_NEAR(freq[0], 8.0 * 57.0, 1e-9);  // DC = 8 * mean.
  for (int i = 1; i < 64; ++i) EXPECT_NEAR(freq[i], 0.0, 1e-9);
}

TEST(Dct, ParsevalEnergyPreserved) {
  Rng rng(7);
  double in[64], freq[64];
  for (double& v : in) v = rng.UniformDouble(-100, 100);
  ForwardDct8x8(in, freq);
  double e_in = 0, e_out = 0;
  for (int i = 0; i < 64; ++i) {
    e_in += in[i] * in[i];
    e_out += freq[i] * freq[i];
  }
  EXPECT_NEAR(e_in, e_out, 1e-6 * e_in);
}

TEST(Dct, FixedPointMatchesDoubleOracle) {
  // The fixed-point IDCT must track the double-precision reference to
  // within one intensity level on the full legitimate coefficient range.
  Rng rng(21);
  int32_t dq[64];
  double in[64], out[64];
  uint8_t fixed[64];
  for (int trial = 0; trial < 200; ++trial) {
    const int nonzero = 1 + static_cast<int>(rng.Uniform(64));
    for (int i = 0; i < 64; ++i) dq[i] = 0;
    for (int n = 0; n < nonzero; ++n) {
      dq[rng.Uniform(64)] =
          static_cast<int32_t>(rng.Uniform(4097)) - 2048;  // +/- DC max.
    }
    for (int i = 0; i < 64; ++i) in[i] = dq[i];
    InverseDct8x8(in, out);
    InverseDct8x8Fixed(dq, fixed, 8);
    for (int i = 0; i < 64; ++i) {
      const double expected =
          std::clamp(std::floor(out[i] + 128.0 + 0.5), 0.0, 255.0);
      EXPECT_NEAR(static_cast<double>(fixed[i]), expected, 1.0)
          << "trial " << trial << " i=" << i;
    }
  }
}

TEST(Dct, FixedPointDcOnlyBlockIsFlatFill) {
  // A DC-only block must come out as the flat field the renderer's
  // short-circuit computes: clamp(((dc + 4) >> 3) + 128). The parity suite
  // separately proves the short-circuit equals the kernel on real streams;
  // this pins the shared closed form across the full DC range.
  int32_t dq[64];
  uint8_t out[64];
  for (int dc = -2048; dc <= 2048; dc += 7) {
    for (int i = 0; i < 64; ++i) dq[i] = 0;
    dq[0] = dc;
    InverseDct8x8Fixed(dq, out, 8);
    const int64_t descaled = (static_cast<int64_t>(dc) + 4) >> 3;
    const uint8_t expected = static_cast<uint8_t>(
        std::clamp<int64_t>(descaled + 128, 0, 255));
    for (int i = 0; i < 64; ++i) {
      ASSERT_EQ(out[i], expected) << "dc=" << dc << " i=" << i;
    }
  }
}

// ---------------------------------------------------------------- Bit I/O

TEST(BitIo, RoundTripWithStuffing) {
  std::string buf;
  BitWriter writer(&buf);
  Rng rng(3);
  std::vector<std::pair<uint32_t, int>> writes;
  for (int i = 0; i < 1000; ++i) {
    const int n = 1 + static_cast<int>(rng.Uniform(16));
    const uint32_t bits = static_cast<uint32_t>(rng.Next()) & ((1u << n) - 1);
    writes.emplace_back(bits, n);
    writer.WriteBits(bits, n);
  }
  writer.AlignToByte();

  BitReader reader(buf);
  for (const auto& [bits, n] : writes) {
    EXPECT_EQ(reader.ReadBits(n), bits);
  }
  EXPECT_FALSE(reader.Exhausted());
}

TEST(BitIo, AllOnesProducesStuffBytes) {
  std::string buf;
  BitWriter writer(&buf);
  writer.WriteBits(0xffff, 16);
  writer.AlignToByte();
  // Two 0xFF bytes, each followed by a 0x00 stuff byte.
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0xff);
  EXPECT_EQ(static_cast<uint8_t>(buf[1]), 0x00);
  EXPECT_EQ(static_cast<uint8_t>(buf[2]), 0xff);
  EXPECT_EQ(static_cast<uint8_t>(buf[3]), 0x00);
}

TEST(BitIo, ReaderStopsAtMarker) {
  std::string buf = {'\xAB', '\xFF', '\xD9'};
  BitReader reader(buf);
  EXPECT_EQ(reader.ReadBits(8), 0xABu);
  reader.ReadBit();
  EXPECT_TRUE(reader.Exhausted());
}

TEST(BitIo, PeekDoesNotConsume) {
  std::string buf = {'\xB7', '\x2C', '\x51'};
  BitReader reader(buf);
  EXPECT_EQ(reader.Peek(8), 0xB7u);
  EXPECT_EQ(reader.Peek(12), 0xB72u);
  EXPECT_EQ(reader.Peek(8), 0xB7u);  // Unchanged.
  reader.Consume(4);
  EXPECT_EQ(reader.Peek(8), 0x72u);
  reader.Consume(8);
  EXPECT_EQ(reader.ReadBits(12), 0xC51u);
  EXPECT_FALSE(reader.Exhausted());
}

TEST(BitIo, PeekZeroPadsPastEndAndConsumeFlagsExhaustion) {
  std::string buf = {'\xA0'};  // 8 real bits.
  BitReader reader(buf);
  EXPECT_EQ(reader.Peek(12), 0xA00u);  // Zero-padded, not data.
  EXPECT_FALSE(reader.Exhausted());    // Peeking alone never exhausts.
  EXPECT_EQ(reader.BitsAvailable(), 8);
  reader.Consume(12);  // Consumes past the last real bit.
  EXPECT_TRUE(reader.Exhausted());
}

TEST(BitIo, PeekSpansStuffedBytes) {
  // 0xFF 0x00 collapses to one 0xFF data byte inside the accumulator.
  std::string buf = {'\x12', '\xFF', '\x00', '\x34'};
  BitReader reader(buf);
  EXPECT_EQ(reader.Peek(24), 0x12FF34u);
  reader.Consume(24);
  EXPECT_FALSE(reader.Exhausted());
  reader.ReadBit();
  EXPECT_TRUE(reader.Exhausted());
}

TEST(BitIo, InterleavedBitAndPeekReadsStayCoherent) {
  // Regression: ReadBit must not leave consumed bits in the accumulator
  // where a later Peek would see them as high bits.
  std::string buf;
  BitWriter writer(&buf);
  Rng rng(17);
  std::vector<std::pair<uint32_t, int>> writes;
  for (int i = 0; i < 500; ++i) {
    const int n = 1 + static_cast<int>(rng.Uniform(16));
    const uint32_t bits = static_cast<uint32_t>(rng.Next()) & ((1u << n) - 1);
    writes.emplace_back(bits, n);
    writer.WriteBits(bits, n);
  }
  writer.AlignToByte();
  Rng replay(17);
  BitReader reader(buf);
  for (const auto& [bits, n] : writes) {
    if (replay.Uniform(2) == 0) {
      // Bit-by-bit.
      uint32_t v = 0;
      for (int b = 0; b < n; ++b) v = (v << 1) | reader.ReadBit();
      ASSERT_EQ(v, bits);
    } else {
      ASSERT_EQ(reader.Peek(n), bits);
      reader.Consume(n);
    }
  }
  EXPECT_FALSE(reader.Exhausted());
}

// ---------------------------------------------------------------- Huffman

TEST(Huffman, StdTablesRoundTripSymbols) {
  auto table = HuffTable::FromSpec(StdAcLumaSpec()).MoveValue();
  std::string buf;
  BitWriter writer(&buf);
  std::vector<int> symbols = {0x01, 0x00, 0xF0, 0x11, 0x7A, 0xFA, 0x02};
  for (int s : symbols) table.EncodeSymbol(&writer, s);
  writer.AlignToByte();
  BitReader reader(buf);
  for (int s : symbols) {
    EXPECT_EQ(table.DecodeSymbol(&reader), s);
  }
}

TEST(Huffman, OptimalTableRoundTripsAndBeatsUniform) {
  HuffFrequencies freqs;
  Rng rng(11);
  std::vector<int> stream;
  // Skewed distribution over 20 symbols.
  for (int i = 0; i < 20000; ++i) {
    const int sym = static_cast<int>(
        std::min<uint64_t>(19, static_cast<uint64_t>(rng.NextExponential(0.5))));
    stream.push_back(sym);
    freqs.Count(sym);
  }
  auto table = freqs.BuildOptimal().MoveValue();
  std::string buf;
  BitWriter writer(&buf);
  for (int s : stream) table.EncodeSymbol(&writer, s);
  writer.AlignToByte();
  BitReader reader(buf);
  for (int s : stream) {
    ASSERT_EQ(table.DecodeSymbol(&reader), s);
  }
  // A uniform 5-bit code would need 12500 bytes; optimal must beat it.
  EXPECT_LT(buf.size(), 12500u);
}

TEST(Huffman, TruncatedStreamFailsCleanly) {
  // Regression: a stream that ends mid-code must report exhaustion (the
  // partial-decode truncation signal), never decode a symbol out of the
  // phantom zero padding — even when the zero-padded bit pattern happens to
  // form a valid code.
  auto table = HuffTable::FromSpec(StdAcLumaSpec()).MoveValue();
  std::string buf;
  BitWriter writer(&buf);
  const std::vector<int> symbols = {0x11, 0x04, 0x23, 0xF0, 0x81};
  for (int s : symbols) table.EncodeSymbol(&writer, s);
  writer.AlignToByte();

  // Full stream: all symbols decode, no exhaustion mid-way.
  {
    BitReader reader(buf);
    for (int s : symbols) ASSERT_EQ(table.DecodeSymbol(&reader), s);
  }
  // Every truncation point: decoding must yield a (possibly empty) prefix
  // of the encoded symbols and then -1 with Exhausted(), never a wrong
  // symbol and never an out-of-range read.
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    BitReader reader(Slice(buf.data(), cut));
    size_t decoded = 0;
    for (;;) {
      const int sym = table.DecodeSymbol(&reader);
      if (sym < 0) break;
      ASSERT_LT(decoded, symbols.size()) << "cut=" << cut;
      ASSERT_EQ(sym, symbols[decoded]) << "cut=" << cut;
      ++decoded;
    }
    EXPECT_TRUE(reader.Exhausted()) << "cut=" << cut;
    // The bitwise reference path must agree symbol for symbol.
    BitReader ref_reader(Slice(buf.data(), cut));
    for (size_t i = 0; i < decoded; ++i) {
      EXPECT_EQ(table.DecodeSymbolBitwise(&ref_reader),
                symbols[i]) << "cut=" << cut;
    }
    EXPECT_LT(table.DecodeSymbolBitwise(&ref_reader), 0) << "cut=" << cut;
  }
}

TEST(Huffman, InvalidCodeReportsCorruptionNotTruncation) {
  // A bit pattern that matches no code of any length must return -1 with
  // Exhausted() == false — the callers' corruption signal.
  const uint8_t bits[16] = {0, 1, 0, 0, 0, 0, 0, 0,
                            0, 0, 0, 0, 0, 0, 0, 0};  // One 2-bit code: 00.
  const uint8_t values[1] = {7};
  auto table = HuffTable::FromSpec(bits, values, 1).MoveValue();
  // Plenty of 1-bits: walks to length 16 without matching, bits remain.
  std::string junk(4, '\xEE');
  BitReader reader(junk);
  EXPECT_EQ(table.DecodeSymbol(&reader), -1);
  EXPECT_FALSE(reader.Exhausted());
}

TEST(Huffman, TruncatedJpegStreamNeverGainsScans) {
  // End-to-end regression for the EOF hardening: for every byte-truncation
  // of a real progressive stream, the decoder must never report more scans
  // than the prefix actually contains, must never report completeness, and
  // must never crash.
  const Image original = MakeTestImage(40, 32, true, 77);
  EncodeOptions options;
  options.progressive = true;
  auto encoded = Encode(original, options).MoveValue();
  auto full = DecodeFull(Slice(encoded)).MoveValue();
  ASSERT_TRUE(full.complete);
  for (size_t cut = 0; cut < encoded.size(); cut += 3) {
    auto result = DecodeFull(Slice(encoded.data(), cut));
    if (!result.ok()) continue;  // Clean error is acceptable.
    EXPECT_LE(result->scans_decoded, full.scans_decoded) << "cut=" << cut;
    EXPECT_FALSE(result->complete) << "cut=" << cut;
  }
}

TEST(Huffman, OptimalTableSingleSymbol) {
  HuffFrequencies freqs;
  freqs.Count(42);
  auto table = freqs.BuildOptimal().MoveValue();
  EXPECT_TRUE(table.HasSymbol(42));
  std::string buf;
  BitWriter writer(&buf);
  table.EncodeSymbol(&writer, 42);
  writer.AlignToByte();
  BitReader reader(buf);
  EXPECT_EQ(table.DecodeSymbol(&reader), 42);
}

// ---------------------------------------------------------------- Scripts

TEST(ScanScript, DefaultColorScriptHas10ValidScans) {
  const auto script = DefaultProgressiveScript(3);
  EXPECT_EQ(script.size(), 10u);
  EXPECT_TRUE(ValidateProgressiveScript(script, 3));
}

TEST(ScanScript, DefaultGrayscaleScriptIsValid) {
  const auto script = DefaultProgressiveScript(1);
  EXPECT_EQ(script.size(), 6u);
  EXPECT_TRUE(ValidateProgressiveScript(script, 1));
}

TEST(ScanScript, RejectsRefinementBeforeFirstPass) {
  std::vector<ScanSpec> script(1);
  script[0].component_indices = {0};
  script[0].ss = 1;
  script[0].se = 63;
  script[0].ah = 1;
  script[0].al = 0;
  EXPECT_FALSE(ValidateProgressiveScript(script, 1));
}

TEST(ScanScript, RejectsMultiComponentAcScan) {
  std::vector<ScanSpec> script(1);
  script[0].component_indices = {0, 1};
  script[0].ss = 1;
  script[0].se = 63;
  EXPECT_FALSE(ValidateProgressiveScript(script, 2));
}

// ---------------------------------------------------------------- Codec

class CodecRoundTrip : public ::testing::TestWithParam<
                           std::tuple<int, int, bool, bool, int>> {};

TEST_P(CodecRoundTrip, EncodeDecodePsnr) {
  const auto [w, h, color, progressive, quality] = GetParam();
  const Image original = MakeTestImage(w, h, color, 99);
  EncodeOptions options;
  options.quality = quality;
  options.progressive = progressive;
  auto encoded = Encode(original, options);
  ASSERT_TRUE(encoded.ok()) << encoded.status();
  auto decoded = DecodeFull(*encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->complete);
  EXPECT_EQ(decoded->image.width(), w);
  EXPECT_EQ(decoded->image.height(), h);
  EXPECT_EQ(decoded->image.channels(), color ? 3 : 1);
  const double psnr = Psnr(original, decoded->image);
  // Quality >= 75 should comfortably exceed 27 dB on this content.
  EXPECT_GT(psnr, 27.0) << "w=" << w << " h=" << h << " q=" << quality;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CodecRoundTrip,
    ::testing::Values(
        std::make_tuple(64, 64, true, false, 90),
        std::make_tuple(64, 64, true, true, 90),
        std::make_tuple(97, 55, true, false, 90),   // Non-multiple-of-16.
        std::make_tuple(97, 55, true, true, 90),
        std::make_tuple(128, 96, false, false, 90),  // Grayscale.
        std::make_tuple(128, 96, false, true, 90),
        std::make_tuple(80, 80, true, true, 75),
        std::make_tuple(80, 80, true, true, 95),
        std::make_tuple(8, 8, true, true, 90),       // Single MCU-ish.
        std::make_tuple(17, 9, true, true, 90)));

TEST(Codec, ProgressiveMatchesBaselinePixels) {
  // Progressive is a reordering of the same coefficients: fully decoded
  // output must match the baseline decode bit-for-bit.
  const Image original = MakeTestImage(120, 88, true, 7);
  EncodeOptions base_opts;
  base_opts.quality = 85;
  auto baseline = Encode(original, base_opts).MoveValue();

  auto progressive = TranscodeToProgressive(baseline).MoveValue();
  const Image from_base = Decode(baseline).MoveValue();
  const Image from_prog = Decode(progressive).MoveValue();
  ASSERT_TRUE(from_base.SameShape(from_prog));
  EXPECT_EQ(0, memcmp(from_base.data(), from_prog.data(),
                      from_base.size_bytes()));
}

TEST(Codec, TranscodeIsLosslessOnCoefficients) {
  const Image original = MakeTestImage(96, 72, true, 13);
  EncodeOptions opts;
  opts.quality = 90;
  auto baseline = Encode(original, opts).MoveValue();
  auto progressive = TranscodeToProgressive(baseline).MoveValue();

  auto base_data = DecodeToCoefficients(baseline).MoveValue();
  auto prog_data = DecodeToCoefficients(progressive).MoveValue();
  // Compare the nominal (visible) blocks: baseline interleaved scans also
  // carry AC for MCU padding blocks that progressive per-component scans
  // rightly skip, so padding blocks may differ without any loss.
  for (size_t c = 0; c < base_data.frame.components.size(); ++c) {
    const auto& info = base_data.frame.components[c];
    for (int by = 0; by < info.height_blocks; ++by) {
      for (int bx = 0; bx < info.width_blocks; ++bx) {
        EXPECT_EQ(base_data.coefficients.block(static_cast<int>(c), bx, by),
                  prog_data.coefficients.block(static_cast<int>(c), bx, by))
            << "comp " << c << " block (" << bx << "," << by << ")";
      }
    }
  }
}

TEST(Codec, ProgressiveSmallerThanBaselineTypically) {
  const Image original = MakeTestImage(320, 240, true, 5);
  EncodeOptions opts;
  opts.quality = 90;
  auto baseline = Encode(original, opts).MoveValue();
  auto progressive = TranscodeToProgressive(baseline).MoveValue();
  // The paper: progressive "are actually often smaller in practice"; our
  // optimized progressive tables should be within ~5% either way.
  EXPECT_LT(progressive.size(),
            static_cast<size_t>(1.05 * baseline.size()));
}

TEST(Codec, PartialScanQualityIsMonotonic) {
  const Image original = MakeTestImage(160, 120, true, 21);
  EncodeOptions opts;
  opts.quality = 90;
  opts.progressive = true;
  auto encoded = Encode(original, opts).MoveValue();
  auto index = IndexScans(encoded).MoveValue();
  ASSERT_EQ(index.scans.size(), 10u);

  double prev_mssim = 0.0;
  for (int scans = 1; scans <= 10; ++scans) {
    const std::string prefix = AssemblePrefix(encoded, index, scans);
    auto result = DecodeFull(prefix);
    ASSERT_TRUE(result.ok()) << "scans=" << scans << ": " << result.status();
    EXPECT_EQ(result->scans_decoded, scans);
    const double mssim = Msssim(original, result->image);
    // Allow microscopic non-monotonicity from chroma upsampling.
    EXPECT_GE(mssim, prev_mssim - 0.01) << "scans=" << scans;
    prev_mssim = mssim;
  }
  EXPECT_GT(prev_mssim, 0.95);
}

TEST(Codec, PrefixWithAllScansDecodesComplete) {
  const Image original = MakeTestImage(80, 64, true, 33);
  EncodeOptions opts;
  opts.progressive = true;
  auto encoded = Encode(original, opts).MoveValue();
  auto index = IndexScans(encoded).MoveValue();
  const std::string full = AssemblePrefix(encoded, index, 10);
  auto result = DecodeFull(full).MoveValue();
  EXPECT_TRUE(result.complete);
  const Image direct = Decode(encoded).MoveValue();
  EXPECT_EQ(0, memcmp(direct.data(), result.image.data(),
                      direct.size_bytes()));
}

TEST(Codec, TruncatedMidScanStillDecodes) {
  const Image original = MakeTestImage(96, 96, true, 44);
  EncodeOptions opts;
  opts.progressive = true;
  auto encoded = Encode(original, opts).MoveValue();
  // Cut in the middle of the byte stream (mid-scan, no EOI).
  Slice truncated(encoded.data(), encoded.size() / 2);
  auto result = DecodeFull(truncated);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->complete);
  EXPECT_EQ(result->image.width(), 96);
}

TEST(Codec, RejectsGarbage) {
  EXPECT_FALSE(Decode(Slice("not a jpeg at all")).ok());
  std::string soi_only = {'\xFF', '\xD8'};
  EXPECT_FALSE(Decode(Slice(soi_only)).ok());
}

TEST(Codec, QualityControlsSize) {
  const Image original = MakeTestImage(200, 150, true, 55);
  size_t prev_size = 0;
  for (int quality : {30, 60, 90}) {
    EncodeOptions opts;
    opts.quality = quality;
    auto encoded = Encode(original, opts).MoveValue();
    EXPECT_GT(encoded.size(), prev_size) << "quality=" << quality;
    prev_size = encoded.size();
  }
}

TEST(Codec, Subsampling420SmallerThan444) {
  const Image original = MakeTestImage(200, 150, true, 56);
  EncodeOptions opts444;
  opts444.subsampling = ChromaSubsampling::k444;
  EncodeOptions opts420;
  opts420.subsampling = ChromaSubsampling::k420;
  auto e444 = Encode(original, opts444).MoveValue();
  auto e420 = Encode(original, opts420).MoveValue();
  EXPECT_LT(e420.size(), e444.size());
}

// ---------------------------------------------------------------- Indexing

TEST(ScanIndex, OffsetsPartitionTheFile) {
  const Image original = MakeTestImage(100, 80, true, 66);
  EncodeOptions opts;
  opts.progressive = true;
  auto encoded = Encode(original, opts).MoveValue();
  auto index = IndexScans(encoded).MoveValue();

  EXPECT_TRUE(index.progressive);
  EXPECT_TRUE(index.has_eoi);
  EXPECT_EQ(index.num_components, 3);
  ASSERT_EQ(index.scans.size(), 10u);
  // Scans tile [header_end, eoi_offset) without gaps.
  size_t cursor = index.header_end;
  for (const auto& scan : index.scans) {
    EXPECT_EQ(scan.start, cursor);
    EXPECT_GT(scan.end, scan.start);
    cursor = scan.end;
  }
  EXPECT_EQ(cursor, index.eoi_offset);
  EXPECT_EQ(index.eoi_offset + 2, encoded.size());
}

TEST(ScanIndex, SpecsMatchDefaultScript) {
  const Image original = MakeTestImage(64, 64, true, 67);
  EncodeOptions opts;
  opts.progressive = true;
  auto encoded = Encode(original, opts).MoveValue();
  auto index = IndexScans(encoded).MoveValue();
  const auto script = DefaultProgressiveScript(3);
  ASSERT_EQ(index.scans.size(), script.size());
  for (size_t i = 0; i < script.size(); ++i) {
    EXPECT_EQ(index.scans[i].spec.component_indices,
              script[i].component_indices) << "scan " << i;
    EXPECT_EQ(index.scans[i].spec.ss, script[i].ss) << "scan " << i;
    EXPECT_EQ(index.scans[i].spec.se, script[i].se) << "scan " << i;
    EXPECT_EQ(index.scans[i].spec.ah, script[i].ah) << "scan " << i;
    EXPECT_EQ(index.scans[i].spec.al, script[i].al) << "scan " << i;
  }
}

TEST(ScanIndex, BaselineHasOneScan) {
  const Image original = MakeTestImage(64, 64, true, 68);
  auto encoded = Encode(original, EncodeOptions{}).MoveValue();
  auto index = IndexScans(encoded).MoveValue();
  EXPECT_FALSE(index.progressive);
  EXPECT_EQ(index.scans.size(), 1u);
}

// ------------------------------------------------------------- Quant tables

TEST(QuantTables, QualityScaling) {
  const auto q50 = ScaleQuantTable(kStdLumaQuant, 50);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(q50[i], kStdLumaQuant[i]);
  const auto q100 = ScaleQuantTable(kStdLumaQuant, 100);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(q100[i], 1);
  const auto q25 = ScaleQuantTable(kStdLumaQuant, 25);
  for (int i = 0; i < 64; ++i) EXPECT_GE(q25[i], q50[i]);
}

TEST(QuantTables, ZigzagIsAPermutation) {
  std::array<bool, 64> seen{};
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(seen[kZigzag[i]]);
    seen[kZigzag[i]] = true;
    EXPECT_EQ(kZigzagInverse[kZigzag[i]], i);
  }
}

}  // namespace
}  // namespace pcr::jpeg
