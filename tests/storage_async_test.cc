// Tests for the async storage layer: the fd cache behind PosixEnv, the
// PosixIoScheduler submission/completion path, the synchronous fallback
// scheduler every Env inherits, the SimEnv overlapped-read model's
// bandwidth-sharing invariants, PCR_FORCE_IO backend resolution, and the
// io_uring scheduler's parity with the other tiers (multi-segment
// scatter-gather requests, failures, short reads, teardown with reads in
// flight, batched-submission syscall accounting).
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "storage/env.h"
#include "storage/fd_cache.h"
#include "storage/io_backend.h"
#include "storage/sim_env.h"
#include "test_util.h"
#include "util/string_util.h"

namespace pcr {
namespace {

class StorageAsyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = PerProcessTempDir("pcr_storage_async_test");
    ASSERT_TRUE(Env::Default()->CreateDir(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return dir_ + "/" + name;
  }
  std::string WriteFile(const std::string& name, const std::string& data) {
    const std::string path = Path(name);
    EXPECT_TRUE(Env::Default()->WriteStringToFile(path, Slice(data)).ok());
    return path;
  }

  std::string dir_;
};

// ------------------------------------------------------------------ FdCache

TEST_F(StorageAsyncTest, FdCacheReusesDescriptors) {
  WriteFile("a", "aaaa");
  FdCache cache(4);
  auto first = cache.Open(Path("a")).MoveValue();
  auto second = cache.Open(Path("a")).MoveValue();
  EXPECT_EQ(first.get(), second.get());  // Same shared descriptor.
  const FdCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.open_fds, 1);
}

TEST_F(StorageAsyncTest, FdCacheEvictsLruButKeepsHandedOutFdsAlive) {
  WriteFile("a", "aaaa");
  WriteFile("b", "bbbb");
  WriteFile("c", "cccc");
  FdCache cache(2);
  auto a = cache.Open(Path("a")).MoveValue();
  ASSERT_TRUE(cache.Open(Path("b")).ok());
  ASSERT_TRUE(cache.Open(Path("c")).ok());  // Evicts "a" (LRU).
  const FdCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.open_fds, 2);
  // The evicted descriptor stays open for its holder.
  char buf[4];
  EXPECT_EQ(pread(a->fd(), buf, 4, 0), 4);
  EXPECT_EQ(std::string(buf, 4), "aaaa");
  // Re-opening "a" is a miss (new descriptor).
  auto a2 = cache.Open(Path("a")).MoveValue();
  EXPECT_NE(a.get(), a2.get());
}

TEST_F(StorageAsyncTest, FdCacheInvalidateDropsTheCachedDescriptor) {
  WriteFile("a", "old!");
  FdCache cache(4);
  auto first = cache.Open(Path("a")).MoveValue();
  cache.Invalidate(Path("a"));
  auto second = cache.Open(Path("a")).MoveValue();
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(cache.stats().invalidations, 1);
}

TEST_F(StorageAsyncTest, FdCacheOpenFailsForMissingFile) {
  FdCache cache(4);
  EXPECT_TRUE(cache.Open(Path("missing")).status().IsIOError());
}

// The stale-fd regression the invalidation hooks exist for: rewriting a file
// through the Env must not serve the old inode's bytes from the cache.
TEST_F(StorageAsyncTest, PosixEnvServesRewrittenFileContents) {
  Env* env = Env::Default();
  const std::string path = WriteFile("rewrite", "version-one");
  std::string data;
  ASSERT_TRUE(env->ReadFileToString(path, &data).ok());
  EXPECT_EQ(data, "version-one");
  ASSERT_TRUE(env->WriteStringToFile(path, Slice("v2")).ok());
  ASSERT_TRUE(env->ReadFileToString(path, &data).ok());
  EXPECT_EQ(data, "v2");
  // Same through delete + recreate.
  ASSERT_TRUE(env->DeleteFile(path).ok());
  ASSERT_TRUE(env->WriteStringToFile(path, Slice("third")).ok());
  ASSERT_TRUE(env->ReadFileToString(path, &data).ok());
  EXPECT_EQ(data, "third");
}

TEST_F(StorageAsyncTest, PosixEnvServesRenamedFileContents) {
  Env* env = Env::Default();
  const std::string from = WriteFile("from", "payload-a");
  const std::string to = WriteFile("to", "payload-b");
  std::string data;
  ASSERT_TRUE(env->ReadFileToString(to, &data).ok());  // Caches "to".
  ASSERT_TRUE(env->RenameFile(from, to).ok());
  ASSERT_TRUE(env->ReadFileToString(to, &data).ok());
  EXPECT_EQ(data, "payload-a");
}

// --------------------------------------------------------- PosixIoScheduler

TEST_F(StorageAsyncTest, PosixSchedulerCompletesSubmittedReads) {
  const std::string content = "0123456789abcdef";
  std::vector<std::string> paths;
  for (int f = 0; f < 4; ++f) {
    paths.push_back(WriteFile("file" + std::to_string(f), content));
  }
  IoSchedulerOptions options;
  options.queue_depth = 8;
  options.io_threads = 4;
  auto scheduler = Env::Default()->NewIoScheduler(options);

  std::map<uint64_t, std::pair<uint64_t, uint64_t>> expected;  // (off, len).
  for (uint64_t i = 0; i < 8; ++i) {
    ReadRequest request =
        ReadRequest::Range(paths[i % paths.size()], i, 16 - i, i);
    expected[i] = {i, 16 - i};
    ASSERT_TRUE(scheduler->SubmitRead(std::move(request)).ok());
  }
  EXPECT_EQ(scheduler->in_flight(), 8);
  for (int i = 0; i < 8; ++i) {
    auto completion = scheduler->WaitCompletion();
    ASSERT_TRUE(completion.ok()) << completion.status();
    ASSERT_TRUE(completion->status.ok()) << completion->status;
    const auto [offset, length] = expected.at(completion->user_data);
    EXPECT_EQ(completion->bytes,
              content.substr(static_cast<size_t>(offset),
                             static_cast<size_t>(length)));
    expected.erase(completion->user_data);
  }
  EXPECT_TRUE(expected.empty());
  EXPECT_EQ(scheduler->in_flight(), 0);
}

TEST_F(StorageAsyncTest, PosixSchedulerReportsFailuresOnTheCompletion) {
  auto scheduler = Env::Default()->NewIoScheduler(IoSchedulerOptions{});
  ReadRequest missing = ReadRequest::Range(Path("no-such-file"), 0, 4, 7);
  ASSERT_TRUE(scheduler->SubmitRead(std::move(missing)).ok());
  auto completion = scheduler->WaitCompletion();
  ASSERT_TRUE(completion.ok()) << completion.status();
  EXPECT_EQ(completion->user_data, 7u);
  EXPECT_TRUE(completion->status.IsIOError()) << completion->status;
}

TEST_F(StorageAsyncTest, PosixSchedulerFlagsShortReads) {
  const std::string path = WriteFile("short", "tiny");
  auto scheduler = Env::Default()->NewIoScheduler(IoSchedulerOptions{});
  ReadRequest request = ReadRequest::Range(path, 0, 64);  // File holds 4.
  ASSERT_TRUE(scheduler->SubmitRead(std::move(request)).ok());
  auto completion = scheduler->WaitCompletion();
  ASSERT_TRUE(completion.ok()) << completion.status();
  EXPECT_TRUE(completion->status.IsIOError()) << completion->status;
  EXPECT_NE(completion->status.message().find("short read"),
            std::string::npos);
}

TEST_F(StorageAsyncTest, WaitWithNothingInFlightIsAnError) {
  auto scheduler = Env::Default()->NewIoScheduler(IoSchedulerOptions{});
  EXPECT_EQ(scheduler->WaitCompletion().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(scheduler->PollCompletion().has_value());
}

// ----------------------------------------------------- Sync fallback (base)

/// Env subclass that forwards to the posix Env but inherits the base
/// class's synchronous scheduler fallback.
class ForwardingEnv : public Env {
 public:
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    return Env::Default()->NewRandomAccessFile(path);
  }
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    return Env::Default()->NewWritableFile(path);
  }
  bool FileExists(const std::string& path) override {
    return Env::Default()->FileExists(path);
  }
  Result<uint64_t> GetFileSize(const std::string& path) override {
    return Env::Default()->GetFileSize(path);
  }
  Status DeleteFile(const std::string& path) override {
    return Env::Default()->DeleteFile(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return Env::Default()->RenameFile(from, to);
  }
  Status CreateDir(const std::string& path) override {
    return Env::Default()->CreateDir(path);
  }
  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    return Env::Default()->ListDir(path);
  }
  Clock* clock() override { return Env::Default()->clock(); }
};

TEST_F(StorageAsyncTest, BaseEnvFallsBackToSynchronousScheduler) {
  const std::string path = WriteFile("sync", "synchronous-bytes");
  ForwardingEnv env;
  auto scheduler = env.NewIoScheduler(IoSchedulerOptions{});
  for (uint64_t i = 0; i < 3; ++i) {
    ReadRequest request = ReadRequest::Range(path, i, 5, i);
    ASSERT_TRUE(scheduler->SubmitRead(std::move(request)).ok());
  }
  EXPECT_EQ(scheduler->in_flight(), 3);
  for (uint64_t i = 0; i < 3; ++i) {
    auto completion = scheduler->WaitCompletion();
    ASSERT_TRUE(completion.ok()) << completion.status();
    ASSERT_TRUE(completion->status.ok()) << completion->status;
    EXPECT_EQ(completion->user_data, i);  // FIFO.
    EXPECT_EQ(completion->bytes,
              std::string("synchronous-bytes").substr(i, 5));
  }
}

// -------------------------------------------------- SimEnv overlapped model

DeviceProfile TestProfile() {
  DeviceProfile profile;
  profile.name = "test";
  profile.read_bandwidth_bytes_per_sec = 1e6;   // 1 ms per KB.
  profile.write_bandwidth_bytes_per_sec = 1e9;  // Staging is ~free.
  profile.seek_latency_sec = 1e-3;
  profile.per_op_latency_sec = 1e-3;  // Fixed phase: 2 ms per request.
  return profile;
}

constexpr int64_t kFixedNanos = 2'000'000;     // seek + per-op.
constexpr int64_t kTransferNanos = 1'000'000;  // 1000 bytes at 1 MB/s.

/// Runs `n` 1000-byte reads at the given submission window and returns the
/// elapsed virtual nanos.
int64_t RunWindow(int n, int window) {
  VirtualClock clock;
  SimEnv env(TestProfile(), &clock);
  PCR_CHECK(env.WriteStringToFile("data", Slice(std::string(8192, 'x'))).ok());
  IoSchedulerOptions options;
  options.queue_depth = window;
  auto scheduler = env.NewIoScheduler(options);
  const int64_t start = clock.NowNanos();
  int submitted = 0;
  int completed = 0;
  while (completed < n) {
    while (submitted < n && scheduler->in_flight() < window) {
      ReadRequest request =
          ReadRequest::Range("data", static_cast<uint64_t>(submitted) * 8,
                             1000, static_cast<uint64_t>(submitted));
      PCR_CHECK(scheduler->SubmitRead(std::move(request)).ok());
      ++submitted;
    }
    auto completion = scheduler->WaitCompletion();
    PCR_CHECK(completion.ok()) << completion.status();
    PCR_CHECK(completion->status.ok()) << completion->status;
    PCR_CHECK_EQ(completion->bytes.size(), 1000u);
    ++completed;
  }
  return clock.NowNanos() - start;
}

TEST(SimIoScheduler, WindowOneMatchesBlockingReadCost) {
  // Depth 1 must reproduce the synchronous shape exactly: every request pays
  // its full fixed phase plus its transfer, back to back.
  EXPECT_EQ(RunWindow(8, 1), 8 * (kFixedNanos + kTransferNanos));
}

TEST(SimIoScheduler, DeepWindowHidesFixedCostsBehindTransfers) {
  // With the whole batch in flight, only the first request's fixed phase is
  // exposed; every other fixed phase overlaps earlier transfers, leaving the
  // bandwidth floor.
  EXPECT_EQ(RunWindow(8, 8), kFixedNanos + 8 * kTransferNanos);
}

TEST(SimIoScheduler, ElapsedIsMonotoneInWindowAndBandwidthBounded) {
  const int64_t w1 = RunWindow(12, 1);
  const int64_t w2 = RunWindow(12, 2);
  const int64_t w4 = RunWindow(12, 4);
  const int64_t w8 = RunWindow(12, 8);
  EXPECT_GE(w1, w2);
  EXPECT_GE(w2, w4);
  EXPECT_GE(w4, w8);
  EXPECT_LT(w8, w1);  // Strictly faster on this latency-heavy profile.
  // No window beats the shared medium: transfers serialize at full
  // bandwidth.
  EXPECT_GE(w8, 12 * kTransferNanos);
}

TEST(SimIoScheduler, DeviceStatsAccountEveryOverlappedRead) {
  VirtualClock clock;
  SimEnv env(TestProfile(), &clock);
  ASSERT_TRUE(
      env.WriteStringToFile("data", Slice(std::string(4096, 'x'))).ok());
  env.device()->ResetStats();
  IoSchedulerOptions options;
  options.queue_depth = 4;
  auto scheduler = env.NewIoScheduler(options);
  for (uint64_t i = 0; i < 4; ++i) {
    ReadRequest request = ReadRequest::Range("data", i * 1000, 1000, i);
    ASSERT_TRUE(scheduler->SubmitRead(std::move(request)).ok());
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(scheduler->WaitCompletion().ok());
  }
  const DeviceStats stats = env.device()->stats();
  EXPECT_EQ(stats.read_ops, 4);
  EXPECT_EQ(stats.bytes_read, 4000);
}

TEST(SimIoScheduler, FailuresCompleteImmediatelyWithoutDeviceCharge) {
  VirtualClock clock;
  SimEnv env(TestProfile(), &clock);
  auto scheduler = env.NewIoScheduler(IoSchedulerOptions{});
  ReadRequest missing = ReadRequest::Range("absent", 0, 100, 3);
  ASSERT_TRUE(scheduler->SubmitRead(std::move(missing)).ok());
  // Already due: Poll sees it without advancing the clock.
  auto polled = scheduler->PollCompletion();
  ASSERT_TRUE(polled.has_value());
  EXPECT_EQ(polled->user_data, 3u);
  EXPECT_TRUE(polled->status.IsNotFound()) << polled->status;
  EXPECT_EQ(clock.NowNanos(), 0);
  EXPECT_EQ(env.device()->stats().read_ops, 0);
}

TEST(SimIoScheduler, ShortReadsFailTheCompletion) {
  VirtualClock clock;
  SimEnv env(TestProfile(), &clock);
  ASSERT_TRUE(env.WriteStringToFile("data", Slice("1234")).ok());
  auto scheduler = env.NewIoScheduler(IoSchedulerOptions{});
  ReadRequest request = ReadRequest::Range("data", 2, 100);
  ASSERT_TRUE(scheduler->SubmitRead(std::move(request)).ok());
  auto completion = scheduler->WaitCompletion();
  ASSERT_TRUE(completion.ok());
  EXPECT_TRUE(completion->status.IsIOError()) << completion->status;
}

TEST(SimIoScheduler, RejectsSubmissionsBeyondQueueDepth) {
  VirtualClock clock;
  SimEnv env(TestProfile(), &clock);
  ASSERT_TRUE(env.WriteStringToFile("data", Slice(std::string(64, 'x'))).ok());
  IoSchedulerOptions options;
  options.queue_depth = 2;
  auto scheduler = env.NewIoScheduler(options);
  for (int i = 0; i < 2; ++i) {
    ReadRequest request = ReadRequest::Range("data", 0, 8);
    ASSERT_TRUE(scheduler->SubmitRead(std::move(request)).ok());
  }
  ReadRequest overflow = ReadRequest::Range("data", 0, 8);
  EXPECT_EQ(scheduler->SubmitRead(std::move(overflow)).code(),
            StatusCode::kResourceExhausted);
}

// ------------------------------------------------------- Backend resolution

TEST(IoBackendResolution, ParseRecognizesTheForceVocabulary) {
  IoBackend backend = IoBackend::kAuto;
  EXPECT_TRUE(ParseIoBackend("sync", &backend));
  EXPECT_EQ(backend, IoBackend::kSync);
  EXPECT_TRUE(ParseIoBackend("threads", &backend));
  EXPECT_EQ(backend, IoBackend::kThreads);
  EXPECT_TRUE(ParseIoBackend("uring", &backend));
  EXPECT_EQ(backend, IoBackend::kUring);
  backend = IoBackend::kSync;
  EXPECT_FALSE(ParseIoBackend("auto", &backend));
  EXPECT_FALSE(ParseIoBackend("io_uring", &backend));
  EXPECT_FALSE(ParseIoBackend(nullptr, &backend));
  EXPECT_EQ(backend, IoBackend::kSync);  // Left alone on failure.
}

TEST(IoBackendResolution, AutoPrefersUringWhenSupported) {
  std::string warning;
  EXPECT_EQ(ResolveIoBackend(nullptr, true, &warning), IoBackend::kUring);
  EXPECT_EQ(ResolveIoBackend("", true, &warning), IoBackend::kUring);
  EXPECT_EQ(ResolveIoBackend(nullptr, false, &warning), IoBackend::kThreads);
  EXPECT_TRUE(warning.empty());
}

TEST(IoBackendResolution, ForcedTiersResolveVerbatimWhenSupported) {
  std::string warning;
  EXPECT_EQ(ResolveIoBackend("sync", true, &warning), IoBackend::kSync);
  EXPECT_EQ(ResolveIoBackend("threads", true, &warning), IoBackend::kThreads);
  EXPECT_EQ(ResolveIoBackend("uring", true, &warning), IoBackend::kUring);
  EXPECT_TRUE(warning.empty());
}

TEST(IoBackendResolution, ForcedUringWithoutSupportFallsBackWithWarning) {
  std::string warning;
  EXPECT_EQ(ResolveIoBackend("uring", false, &warning), IoBackend::kThreads);
  EXPECT_NE(warning.find("uring"), std::string::npos);
}

TEST(IoBackendResolution, UnknownStringWarnsAndTakesTheAutoChoice) {
  std::string warning;
  EXPECT_EQ(ResolveIoBackend("epoll", true, &warning), IoBackend::kUring);
  EXPECT_NE(warning.find("epoll"), std::string::npos);
  warning.clear();
  EXPECT_EQ(ResolveIoBackend("epoll", false, &warning), IoBackend::kThreads);
  EXPECT_FALSE(warning.empty());
}

TEST(IoBackendResolution, ActiveBackendHonorsForceEnvVar) {
  // Save and restore both the env var and the cached process decision.
  const char* saved = std::getenv("PCR_FORCE_IO");
  const std::string saved_value = saved != nullptr ? saved : "";
  setenv("PCR_FORCE_IO", "sync", 1);
  ResetIoBackendForTest();
  EXPECT_EQ(ActiveIoBackend(), IoBackend::kSync);
  setenv("PCR_FORCE_IO", "threads", 1);
  ResetIoBackendForTest();
  EXPECT_EQ(ActiveIoBackend(), IoBackend::kThreads);
  if (saved != nullptr) {
    setenv("PCR_FORCE_IO", saved_value.c_str(), 1);
  } else {
    unsetenv("PCR_FORCE_IO");
  }
  ResetIoBackendForTest();
  EXPECT_NE(ActiveIoBackend(), IoBackend::kAuto);  // Always concrete.
}

// -------------------------------------------- Scatter-gather across backends

/// The explicitly selectable posix-backed tiers: uring joins when the
/// build/kernel supports it.
std::vector<IoBackend> PosixBackends() {
  std::vector<IoBackend> backends = {IoBackend::kSync, IoBackend::kThreads};
  if (UringIoSupported()) backends.push_back(IoBackend::kUring);
  return backends;
}

std::unique_ptr<IoScheduler> NewBackendScheduler(IoBackend backend,
                                                 int queue_depth = 8,
                                                 int submit_batch = 4) {
  IoSchedulerOptions options;
  options.queue_depth = queue_depth;
  options.io_threads = 2;
  options.submit_batch = submit_batch;
  options.backend = backend;
  return Env::Default()->NewIoScheduler(options);
}

TEST_F(StorageAsyncTest, EveryBackendServesMultiSegmentRequests) {
  const std::string a = WriteFile("sg_a", "abcdefghij");
  const std::string b = WriteFile("sg_b", "0123456789");
  for (IoBackend backend : PosixBackends()) {
    SCOPED_TRACE(IoBackendName(backend));
    auto scheduler = NewBackendScheduler(backend);
    // Adjacent same-file segments (the PCR header+payload shape), a
    // cross-file jump, and a backward seek in one request.
    ReadRequest request;
    request.segments.push_back(ReadSegment{a, 0, 3});   // "abc"
    request.segments.push_back(ReadSegment{a, 3, 4});   // "defg"
    request.segments.push_back(ReadSegment{b, 5, 3});   // "567"
    request.segments.push_back(ReadSegment{a, 1, 2});   // "bc"
    request.user_data = 11;
    ASSERT_TRUE(scheduler->SubmitRead(std::move(request)).ok());
    auto completion = scheduler->WaitCompletion();
    ASSERT_TRUE(completion.ok()) << completion.status();
    ASSERT_TRUE(completion->status.ok()) << completion->status;
    EXPECT_EQ(completion->user_data, 11u);
    EXPECT_EQ(completion->bytes, "abcdefg567bc");
    EXPECT_EQ(scheduler->in_flight(), 0);
  }
}

TEST_F(StorageAsyncTest, BackendsReturnBitIdenticalBytes) {
  // The acceptance bar for backend swaps: same plans, same bytes, on every
  // tier PCR_FORCE_IO can select.
  std::string blob;
  for (int i = 0; i < 4096; ++i) blob.push_back(static_cast<char>(i * 31));
  const std::string path = WriteFile("identical", blob);
  std::map<std::string, std::vector<std::string>> by_backend;
  for (IoBackend backend : PosixBackends()) {
    auto scheduler = NewBackendScheduler(backend);
    std::vector<std::string> results(8);
    for (uint64_t i = 0; i < 8; ++i) {
      ReadRequest request;
      request.segments.push_back(ReadSegment{path, i * 13, 64 + i});
      request.segments.push_back(ReadSegment{path, 2048 + i * 7, 128});
      request.user_data = i;
      ASSERT_TRUE(scheduler->SubmitRead(std::move(request)).ok());
    }
    for (int i = 0; i < 8; ++i) {
      auto completion = scheduler->WaitCompletion();
      ASSERT_TRUE(completion.ok()) << completion.status();
      ASSERT_TRUE(completion->status.ok()) << completion->status;
      results[completion->user_data] = std::move(completion->bytes);
    }
    by_backend[scheduler->backend_name()] = std::move(results);
  }
  ASSERT_GE(by_backend.size(), 2u);
  const auto& reference = by_backend.begin()->second;
  for (const auto& [name, results] : by_backend) {
    EXPECT_EQ(results, reference) << "backend " << name;
  }
}

TEST_F(StorageAsyncTest, ThreadsBackendCountsOnePreadPerSegment) {
  const std::string path = WriteFile("preads", std::string(256, 'p'));
  auto scheduler = NewBackendScheduler(IoBackend::kThreads);
  ASSERT_STREQ(scheduler->backend_name(), "threads");
  for (uint64_t i = 0; i < 4; ++i) {
    ReadRequest request;
    request.segments.push_back(ReadSegment{path, 0, 16});
    request.segments.push_back(ReadSegment{path, 16, 16});
    request.user_data = i;
    ASSERT_TRUE(scheduler->SubmitRead(std::move(request)).ok());
  }
  for (int i = 0; i < 4; ++i) {
    auto completion = scheduler->WaitCompletion();
    ASSERT_TRUE(completion.ok());
    ASSERT_TRUE(completion->status.ok());
  }
  const IoSchedulerStats stats = scheduler->stats();
  EXPECT_EQ(stats.requests, 4);
  EXPECT_EQ(stats.segments, 8);
  // The pread-thread tier has no vectoring and no batching: one syscall per
  // segment — exactly what the uring numbers are compared against.
  EXPECT_EQ(stats.syscalls, 8);
  EXPECT_EQ(stats.ops, 8);
}

// --------------------------------------------------------- io_uring backend

class UringBackendTest : public StorageAsyncTest {
 protected:
  void SetUp() override {
    StorageAsyncTest::SetUp();
    if (!UringIoSupported()) {
      GTEST_SKIP() << "io_uring unsupported on this build/kernel";
    }
  }
};

TEST_F(UringBackendTest, CompletesInterleavedReads) {
  const std::string content = "the-quick-brown-fox-jumps-over";
  const std::string path = WriteFile("uring_basic", content);
  auto scheduler = NewBackendScheduler(IoBackend::kUring);
  ASSERT_STREQ(scheduler->backend_name(), "uring");
  std::map<uint64_t, std::string> expected;
  for (uint64_t i = 0; i < 6; ++i) {
    ReadRequest request = ReadRequest::Range(path, i * 2, 10, i);
    expected[i] = content.substr(static_cast<size_t>(i * 2), 10);
    ASSERT_TRUE(scheduler->SubmitRead(std::move(request)).ok());
  }
  EXPECT_EQ(scheduler->in_flight(), 6);
  for (int i = 0; i < 6; ++i) {
    auto completion = scheduler->WaitCompletion();
    ASSERT_TRUE(completion.ok()) << completion.status();
    ASSERT_TRUE(completion->status.ok()) << completion->status;
    EXPECT_EQ(completion->bytes, expected.at(completion->user_data));
    expected.erase(completion->user_data);
  }
  EXPECT_TRUE(expected.empty());
  EXPECT_EQ(scheduler->in_flight(), 0);
}

TEST_F(UringBackendTest, ReportsMissingFileOnTheCompletion) {
  auto scheduler = NewBackendScheduler(IoBackend::kUring);
  ReadRequest missing = ReadRequest::Range(Path("uring_absent"), 0, 4, 9);
  ASSERT_TRUE(scheduler->SubmitRead(std::move(missing)).ok());
  auto completion = scheduler->WaitCompletion();
  ASSERT_TRUE(completion.ok()) << completion.status();
  EXPECT_EQ(completion->user_data, 9u);
  EXPECT_TRUE(completion->status.IsIOError()) << completion->status;
}

TEST_F(UringBackendTest, FlagsShortReads) {
  const std::string path = WriteFile("uring_short", "tiny");
  auto scheduler = NewBackendScheduler(IoBackend::kUring);
  ReadRequest request = ReadRequest::Range(path, 0, 64, 1);
  ASSERT_TRUE(scheduler->SubmitRead(std::move(request)).ok());
  auto completion = scheduler->WaitCompletion();
  ASSERT_TRUE(completion.ok()) << completion.status();
  EXPECT_TRUE(completion->status.IsIOError()) << completion->status;
  EXPECT_NE(completion->status.message().find("short read"),
            std::string::npos);
}

TEST_F(UringBackendTest, ShortReadAtSegmentBoundaryFailsCleanly) {
  // Second segment starts past EOF: the vectored read stops at the file end
  // and the request must fail as short rather than return partial bytes.
  const std::string path = WriteFile("uring_eof", "0123456789");
  auto scheduler = NewBackendScheduler(IoBackend::kUring);
  ReadRequest request;
  request.segments.push_back(ReadSegment{path, 0, 10});
  request.segments.push_back(ReadSegment{path, 10, 10});
  ASSERT_TRUE(scheduler->SubmitRead(std::move(request)).ok());
  auto completion = scheduler->WaitCompletion();
  ASSERT_TRUE(completion.ok()) << completion.status();
  EXPECT_TRUE(completion->status.IsIOError()) << completion->status;
}

TEST_F(UringBackendTest, DestructionWithReadsInFlightIsClean) {
  // Teardown must drain kernel-visible SQEs without delivering completions —
  // the pipeline drops in-flight slots on Stop() the same way.
  const std::string path = WriteFile("uring_drop", std::string(1 << 16, 'd'));
  for (int round = 0; round < 8; ++round) {
    auto scheduler = NewBackendScheduler(IoBackend::kUring, 16, 16);
    for (uint64_t i = 0; i < 16; ++i) {
      ReadRequest request = ReadRequest::Range(path, i * 512, 4096, i);
      ASSERT_TRUE(scheduler->SubmitRead(std::move(request)).ok());
    }
    if (round % 2 == 0) {
      // Half the rounds reap one completion first, so teardown sees a mix of
      // flushed, unflushed, and completed ops.
      ASSERT_TRUE(scheduler->WaitCompletion().ok());
    }
    scheduler.reset();  // Must not leak, crash, or hang.
  }
}

TEST_F(UringBackendTest, BatchedSubmissionIssuesFewerSyscallsThanOps) {
  const std::string path = WriteFile("uring_batch", std::string(8192, 'b'));
  auto scheduler = NewBackendScheduler(IoBackend::kUring, 16, 8);
  for (uint64_t i = 0; i < 16; ++i) {
    ReadRequest request;
    // Adjacent segments coalesce into one vectored SQE per request.
    request.segments.push_back(ReadSegment{path, i * 64, 32});
    request.segments.push_back(ReadSegment{path, i * 64 + 32, 32});
    request.user_data = i;
    ASSERT_TRUE(scheduler->SubmitRead(std::move(request)).ok());
  }
  for (int i = 0; i < 16; ++i) {
    auto completion = scheduler->WaitCompletion();
    ASSERT_TRUE(completion.ok());
    ASSERT_TRUE(completion->status.ok()) << completion->status;
    EXPECT_EQ(completion->bytes.size(), 64u);
  }
  const IoSchedulerStats stats = scheduler->stats();
  EXPECT_EQ(stats.requests, 16);
  EXPECT_EQ(stats.segments, 32);
  EXPECT_EQ(stats.ops, 16);  // One vectored SQE per adjacent-run request.
  // Batched enters: strictly fewer syscalls than ops, and far fewer than
  // the one-pread-per-segment tier's 32.
  EXPECT_LT(stats.syscalls, stats.ops);
}

TEST_F(UringBackendTest, ZeroSegmentRequestsCompleteImmediately) {
  auto scheduler = NewBackendScheduler(IoBackend::kUring);
  ReadRequest empty;
  empty.user_data = 42;
  ASSERT_TRUE(scheduler->SubmitRead(std::move(empty)).ok());
  auto completion = scheduler->PollCompletion();
  ASSERT_TRUE(completion.has_value());
  EXPECT_EQ(completion->user_data, 42u);
  EXPECT_TRUE(completion->status.ok()) << completion->status;
  EXPECT_TRUE(completion->bytes.empty());
}

TEST_F(UringBackendTest, RejectsSubmissionsBeyondQueueDepth) {
  const std::string path = WriteFile("uring_depth", std::string(64, 'q'));
  auto scheduler = NewBackendScheduler(IoBackend::kUring, 2);
  for (int i = 0; i < 2; ++i) {
    ReadRequest request = ReadRequest::Range(path, 0, 8);
    ASSERT_TRUE(scheduler->SubmitRead(std::move(request)).ok());
  }
  ReadRequest overflow = ReadRequest::Range(path, 0, 8);
  EXPECT_EQ(scheduler->SubmitRead(std::move(overflow)).code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace pcr
