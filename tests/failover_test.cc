// Tests for the fault-tolerant read path: deterministic fault injection
// (FaultInjectionEnv) over the sync and async read paths, transient-error
// retry at the scheduler boundary, bounded completion waits (a wedged
// backend cannot hang teardown), phased SimDevice degradation, replica
// health/ejection in ReplicatedRecordSource, and the loader pipeline
// surviving replica failures with bit-identical records, exactly-once
// epochs, and hedged reads racing replicas under stalls.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/pcr_dataset.h"
#include "core/file_per_image.h"
#include "core/replicated_record_source.h"
#include "data/dataset_spec.h"
#include "jpeg/codec.h"
#include "loader/pipeline.h"
#include "storage/fault_env.h"
#include "storage/io_retry.h"
#include "storage/sim_env.h"
#include "test_util.h"

namespace pcr {
namespace {

std::string MakeJpeg(int w, int h, uint64_t seed) {
  DatasetSpec spec = DatasetSpec::TestTiny();
  spec.base_width = w;
  spec.base_height = h;
  spec.size_jitter = 0;
  const Image img = GenerateImage(spec, static_cast<int>(seed % 3), seed);
  jpeg::EncodeOptions options;
  options.quality = 85;
  return jpeg::Encode(img, options).MoveValue();
}

/// Builds a PCR dataset of `num_images` images (labels base+i) in env:dir.
/// Same arguments produce byte-identical datasets — the replica invariant.
std::unique_ptr<PcrDataset> BuildPcrReplica(Env* env, const std::string& dir,
                                            int num_images,
                                            int images_per_record,
                                            int64_t label_base) {
  PcrWriterOptions options;
  options.images_per_record = images_per_record;
  auto writer = PcrDatasetWriter::Create(env, dir, options).MoveValue();
  for (int i = 0; i < num_images; ++i) {
    const std::string jpeg = MakeJpeg(40, 32, static_cast<uint64_t>(i));
    PCR_CHECK(writer->AddImage(Slice(jpeg), label_base + i).ok());
  }
  PCR_CHECK(writer->Finish().ok());
  return PcrDataset::Open(env, dir).MoveValue();
}

std::unique_ptr<FilePerImageDataset> BuildFpiReplica(Env* env,
                                                     const std::string& dir,
                                                     int num_images) {
  auto writer = FilePerImageWriter::Create(env, dir).MoveValue();
  for (int i = 0; i < num_images; ++i) {
    const std::string jpeg = MakeJpeg(40, 32, static_cast<uint64_t>(i));
    PCR_CHECK(writer->AddImage(Slice(jpeg), 100 + i).ok());
  }
  PCR_CHECK(writer->Finish().ok());
  return FilePerImageDataset::Open(env, dir).MoveValue();
}

Status SyncRead(Env* env, const std::string& path, uint64_t offset, size_t n,
                std::string* out) {
  auto file = env->NewRandomAccessFile(path);
  if (!file.ok()) return file.status();
  std::string scratch(n, '\0');
  Slice got;
  Status read = (*file)->Read(offset, n, scratch.data(), &got);
  if (read.ok()) out->assign(got.data(), got.size());
  return read;
}

// ------------------------------------------------------- Fault injection

TEST(FaultInjection, SyncReadsFollowTheSchedule) {
  VirtualClock clock;
  SimEnv base(DeviceProfile::Ram(), &clock);
  ASSERT_TRUE(base.WriteStringToFile("f", Slice("hello world")).ok());

  FaultRule rule;
  rule.fail_nth = 2;
  FaultInjectionEnv env(&base, {rule});

  std::string out;
  EXPECT_TRUE(SyncRead(&env, "f", 0, 5, &out).ok());
  EXPECT_EQ(out, "hello");
  EXPECT_TRUE(SyncRead(&env, "f", 0, 5, &out).IsIOError());
  EXPECT_TRUE(SyncRead(&env, "f", 6, 5, &out).ok());
  EXPECT_EQ(out, "world");

  const FaultStats stats = env.fault_stats();
  EXPECT_EQ(stats.reads_seen, 3);
  EXPECT_EQ(stats.errors, 1);

  // The schedule replays from the top after a reset.
  env.ResetSchedule();
  EXPECT_TRUE(SyncRead(&env, "f", 0, 5, &out).ok());
  EXPECT_TRUE(SyncRead(&env, "f", 0, 5, &out).IsIOError());
}

TEST(FaultInjection, RulesMatchByPathAndTruncateReads) {
  VirtualClock clock;
  SimEnv base(DeviceProfile::Ram(), &clock);
  ASSERT_TRUE(base.WriteStringToFile("alpha", Slice("aaaaaaaa")).ok());
  ASSERT_TRUE(base.WriteStringToFile("beta", Slice("bbbbbbbb")).ok());

  FaultRule fail_alpha;
  fail_alpha.path_substring = "alpha";
  fail_alpha.fail_first_n = 1;
  FaultRule truncate_beta;
  truncate_beta.path_substring = "beta";
  truncate_beta.fail_first_n = 1;
  truncate_beta.code = StatusCode::kOk;
  truncate_beta.short_read = true;
  truncate_beta.short_read_bytes = 2;
  FaultInjectionEnv env(&base, {fail_alpha, truncate_beta});

  std::string out;
  EXPECT_TRUE(SyncRead(&env, "alpha", 0, 8, &out).IsIOError());
  EXPECT_TRUE(SyncRead(&env, "alpha", 0, 8, &out).ok());  // Budget spent.

  // The beta rule delivers only 2 of the 8 requested bytes, once.
  EXPECT_TRUE(SyncRead(&env, "beta", 0, 8, &out).ok());
  EXPECT_EQ(out, "bb");
  EXPECT_TRUE(SyncRead(&env, "beta", 0, 8, &out).ok());
  EXPECT_EQ(out, "bbbbbbbb");
  EXPECT_EQ(env.fault_stats().short_reads, 1);
}

TEST(FaultInjection, SchedulerErrorsNeverReachTheBackend) {
  VirtualClock clock;
  SimEnv base(DeviceProfile::SataSsd(), &clock);
  ASSERT_TRUE(base.WriteStringToFile("f", Slice(std::string(4096, 'x'))).ok());

  FaultRule rule;
  rule.fail_nth = 1;
  FaultInjectionEnv env(&base, {rule});
  auto scheduler = env.NewIoScheduler(IoSchedulerOptions{});

  ASSERT_TRUE(scheduler->SubmitRead(ReadRequest::Range("f", 0, 4096, 7)).ok());
  auto failed = scheduler->WaitCompletion();
  ASSERT_TRUE(failed.ok());
  EXPECT_EQ(failed->user_data, 7u);
  EXPECT_TRUE(failed->status.IsIOError()) << failed->status;
  // The faulted read was absorbed at the wrapper: the device saw nothing.
  EXPECT_EQ(base.device()->stats().read_ops, 0);

  ASSERT_TRUE(scheduler->SubmitRead(ReadRequest::Range("f", 0, 4096, 8)).ok());
  auto served = scheduler->WaitCompletion();
  ASSERT_TRUE(served.ok());
  ASSERT_TRUE(served->status.ok()) << served->status;
  EXPECT_EQ(served->bytes.size(), 4096u);
  EXPECT_EQ(base.device()->stats().read_ops, 1);
}

TEST(FaultInjection, StallsChargeTheWrappedClock) {
  VirtualClock clock;
  SimEnv base(DeviceProfile::Ram(), &clock);
  ASSERT_TRUE(base.WriteStringToFile("f", Slice("payload")).ok());

  FaultRule stall;
  stall.fail_nth = 1;
  stall.code = StatusCode::kOk;
  stall.added_latency_sec = 5.0;
  FaultInjectionEnv env(&base, {stall});
  auto scheduler = env.NewIoScheduler(IoSchedulerOptions{});

  const int64_t start = clock.NowNanos();
  ASSERT_TRUE(scheduler->SubmitRead(ReadRequest::Range("f", 0, 7, 1)).ok());
  auto completion = scheduler->WaitCompletion();
  ASSERT_TRUE(completion.ok());
  EXPECT_TRUE(completion->status.ok()) << completion->status;
  EXPECT_EQ(completion->bytes, "payload");
  // The stall advanced the virtual clock — no real time passed.
  EXPECT_GE(clock.NowNanos() - start, SecondsToNanos(5.0));
  EXPECT_EQ(env.fault_stats().stalls, 1);
}

TEST(FaultInjection, AsyncShortReadsSurfaceAsErrors) {
  // The completion contract promises exactly the requested bytes, so a
  // scheduler-level short read must fail the request, not truncate it.
  VirtualClock clock;
  SimEnv base(DeviceProfile::Ram(), &clock);
  ASSERT_TRUE(base.WriteStringToFile("f", Slice("12345678")).ok());

  FaultRule truncate;
  truncate.fail_nth = 1;
  truncate.code = StatusCode::kOk;
  truncate.short_read = true;
  truncate.short_read_bytes = 3;
  FaultInjectionEnv env(&base, {truncate});
  auto scheduler = env.NewIoScheduler(IoSchedulerOptions{});

  ASSERT_TRUE(scheduler->SubmitRead(ReadRequest::Range("f", 0, 8, 1)).ok());
  auto completion = scheduler->WaitCompletion();
  ASSERT_TRUE(completion.ok());
  EXPECT_TRUE(completion->status.IsIOError()) << completion->status;
}

TEST(FaultInjection, ProbabilityStreamIsSeedDeterministic) {
  VirtualClock clock;
  SimEnv base(DeviceProfile::Ram(), &clock);
  ASSERT_TRUE(base.WriteStringToFile("f", Slice("x")).ok());

  FaultRule coin;
  coin.probability = 0.5;
  auto pattern = [&](uint64_t seed) {
    FaultInjectionEnv env(&base, {coin}, seed);
    std::string bits;
    std::string out;
    for (int i = 0; i < 64; ++i) {
      bits.push_back(SyncRead(&env, "f", 0, 1, &out).ok() ? '1' : '0');
    }
    return bits;
  };
  const std::string first = pattern(1234);
  EXPECT_EQ(first, pattern(1234));  // Same seed: same fault sequence.
  EXPECT_NE(first.find('0'), std::string::npos);
  EXPECT_NE(first.find('1'), std::string::npos);
}

// --------------------------------------------------- Bounded completion waits

TEST(WaitCompletionFor, ReportsNothingInFlight) {
  auto scheduler = Env::Default()->NewIoScheduler(IoSchedulerOptions{});
  EXPECT_EQ(scheduler->WaitCompletionFor(1'000'000).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(WaitCompletionFor, SimTimeoutAdvancesTheVirtualClock) {
  VirtualClock clock;
  DeviceProfile slow = DeviceProfile::Ram();
  slow.per_op_latency_sec = 1.0;  // Every read takes a virtual second.
  SimEnv env(slow, &clock);
  ASSERT_TRUE(env.WriteStringToFile("f", Slice("data")).ok());
  auto scheduler = env.NewIoScheduler(IoSchedulerOptions{});

  ASSERT_TRUE(scheduler->SubmitRead(ReadRequest::Range("f", 0, 4, 1)).ok());
  const int64_t start = clock.NowNanos();
  // 0.25 virtual seconds is before the read's service completes: the wait
  // must time out and advance the clock by exactly the timeout.
  auto timed_out = scheduler->WaitCompletionFor(SecondsToNanos(0.25));
  ASSERT_TRUE(timed_out.ok());
  EXPECT_FALSE(timed_out->has_value());
  EXPECT_EQ(clock.NowNanos() - start, SecondsToNanos(0.25));

  auto completion = scheduler->WaitCompletionFor(SecondsToNanos(10.0));
  ASSERT_TRUE(completion.ok());
  ASSERT_TRUE(completion->has_value());
  EXPECT_TRUE((*completion)->status.ok());
  EXPECT_GE(clock.NowNanos() - start, SecondsToNanos(1.0));
}

TEST(WaitCompletionFor, WedgedBackendCannotHangTeardown) {
  // A service thread stuck in the kernel (here: opening a FIFO with no
  // writer blocks forever) must neither block bounded waits nor the
  // scheduler's destructor — the regression WaitCompletionFor and the
  // detached-drain teardown exist for.
  const std::string dir = PerProcessTempDir("pcr_failover_wedge");
  ASSERT_TRUE(Env::Default()->CreateDir(dir).ok());
  const std::string fifo = dir + "/wedge_fifo";
  ASSERT_EQ(::mkfifo(fifo.c_str(), 0600), 0);

  const auto start = std::chrono::steady_clock::now();
  {
    IoSchedulerOptions options;
    options.backend = IoBackend::kThreads;
    options.queue_depth = 2;
    options.io_threads = 2;
    auto scheduler = Env::Default()->NewIoScheduler(options);
    ASSERT_TRUE(
        scheduler->SubmitRead(ReadRequest::Range(fifo, 0, 16, 1)).ok());
    auto waited = scheduler->WaitCompletionFor(20'000'000);  // 20ms.
    ASSERT_TRUE(waited.ok()) << waited.status();
    EXPECT_FALSE(waited->has_value());  // Timed out, didn't block.
    // Destructor: must return without joining the wedged read.
  }
  const double teardown_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(teardown_sec, 5.0);
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------------------- Retries

TEST(IoRetry, ClassifiesTransience) {
  EXPECT_TRUE(IsTransientIoError(Status::IOError("blip")));
  EXPECT_TRUE(IsTransientIoError(Status::ResourceExhausted("queue")));
  EXPECT_TRUE(IsTransientIoError(Status(StatusCode::kUnknown, "?")));
  EXPECT_FALSE(IsTransientIoError(Status::NotFound("gone")));
  EXPECT_FALSE(IsTransientIoError(Status::Corruption("bad bytes")));
  EXPECT_FALSE(IsTransientIoError(Status::Aborted("shutdown")));
  EXPECT_FALSE(IsTransientIoError(Status::OK()));
}

TEST(IoRetry, TransientFailuresRetryToSuccess) {
  VirtualClock clock;
  SimEnv base(DeviceProfile::Ram(), &clock);
  ASSERT_TRUE(base.WriteStringToFile("f", Slice("precious bytes")).ok());

  FaultRule rule;
  rule.fail_first_n = 2;  // Two transient errors, then healthy.
  FaultInjectionEnv env(&base, {rule});

  RetryPolicy policy;
  policy.max_attempts = 3;
  auto scheduler = NewRetryingIoScheduler(
      env.NewIoScheduler(IoSchedulerOptions{}), policy, env.clock());

  ASSERT_TRUE(scheduler->SubmitRead(ReadRequest::Range("f", 0, 14, 5)).ok());
  auto completion = scheduler->WaitCompletion();
  ASSERT_TRUE(completion.ok());
  EXPECT_TRUE(completion->status.ok()) << completion->status;
  EXPECT_EQ(completion->bytes, "precious bytes");
  EXPECT_EQ(completion->user_data, 5u);
  EXPECT_EQ(scheduler->stats().retries, 2);
  EXPECT_EQ(env.fault_stats().errors, 2);
}

TEST(IoRetry, NonTransientFailuresSurfaceImmediately) {
  VirtualClock clock;
  SimEnv base(DeviceProfile::Ram(), &clock);
  ASSERT_TRUE(base.WriteStringToFile("f", Slice("bytes")).ok());

  FaultRule rule;
  rule.fail_first_n = 5;
  rule.code = StatusCode::kNotFound;  // Replica-permanent: do not retry.
  FaultInjectionEnv env(&base, {rule});

  RetryPolicy policy;
  policy.max_attempts = 3;
  auto scheduler = NewRetryingIoScheduler(
      env.NewIoScheduler(IoSchedulerOptions{}), policy, env.clock());

  ASSERT_TRUE(scheduler->SubmitRead(ReadRequest::Range("f", 0, 5, 1)).ok());
  auto completion = scheduler->WaitCompletion();
  ASSERT_TRUE(completion.ok());
  EXPECT_TRUE(completion->status.IsNotFound()) << completion->status;
  EXPECT_EQ(scheduler->stats().retries, 0);
  EXPECT_EQ(env.fault_stats().errors, 1);  // One attempt, no re-drives.
}

TEST(IoRetry, ExhaustedAttemptsSurfaceTheError) {
  VirtualClock clock;
  SimEnv base(DeviceProfile::Ram(), &clock);
  ASSERT_TRUE(base.WriteStringToFile("f", Slice("bytes")).ok());

  FaultRule rule;
  rule.fail_first_n = 100;  // Fails for longer than the policy persists.
  FaultInjectionEnv env(&base, {rule});

  RetryPolicy policy;
  policy.max_attempts = 3;
  auto scheduler = NewRetryingIoScheduler(
      env.NewIoScheduler(IoSchedulerOptions{}), policy, env.clock());

  ASSERT_TRUE(scheduler->SubmitRead(ReadRequest::Range("f", 0, 5, 1)).ok());
  auto completion = scheduler->WaitCompletion();
  ASSERT_TRUE(completion.ok());
  EXPECT_TRUE(completion->status.IsIOError()) << completion->status;
  EXPECT_EQ(scheduler->stats().retries, 2);  // max_attempts - 1 re-drives.
  EXPECT_EQ(env.fault_stats().errors, 3);    // Every attempt was faulted.
}

// ------------------------------------------------------ SimDevice schedules

TEST(SimDeviceSchedule, PhasesScaleBandwidthAndFailReads) {
  VirtualClock clock;
  DeviceProfile profile = DeviceProfile::Ram();
  profile.read_bandwidth_bytes_per_sec = 1000.0;  // 1 byte per millisecond.
  profile.per_op_latency_sec = 0.0;
  SimEnv env(profile, &clock);
  const std::string payload(100, 'x');
  ASSERT_TRUE(env.WriteStringToFile("f", Slice(payload)).ok());

  auto read_seconds = [&]() {
    const int64_t start = clock.NowNanos();
    std::string out;
    PCR_CHECK(SyncRead(&env, "f", 0, 100, &out).ok());
    return static_cast<double>(clock.NowNanos() - start) * 1e-9;
  };

  const double healthy = read_seconds();
  EXPECT_NEAR(healthy, 0.1, 0.01);

  // Brownout for 10 virtual seconds at half bandwidth.
  env.device()->SetSchedule({{/*start_sec=*/0.0, /*duration_sec=*/10.0,
                              /*bandwidth_factor=*/0.5,
                              /*fail_reads=*/false}});
  EXPECT_NEAR(read_seconds(), 0.2, 0.02);

  // Past the phase the device recovers on its own.
  clock.SleepNanos(SecondsToNanos(10.0));
  EXPECT_NEAR(read_seconds(), 0.1, 0.01);

  // An open-ended outage fails reads at issue time.
  env.device()->SetSchedule({{/*start_sec=*/0.0, /*duration_sec=*/0.0,
                              /*bandwidth_factor=*/1.0,
                              /*fail_reads=*/true}});
  std::string out;
  EXPECT_TRUE(SyncRead(&env, "f", 0, 100, &out).IsIOError());
  EXPECT_GE(env.device()->stats().failed_reads, 1);
  env.device()->SetSchedule({});
  EXPECT_TRUE(SyncRead(&env, "f", 0, 100, &out).ok());
}

// ------------------------------------------------ ReplicatedRecordSource

TEST(ReplicatedSource, CreateValidatesReplicas) {
  EXPECT_TRUE(
      ReplicatedRecordSource::Create({}).status().IsInvalidArgument());

  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  {
    std::vector<std::unique_ptr<RecordSource>> replicas;
    replicas.push_back(BuildFpiReplica(&env, "n0", 2));
    replicas.push_back(nullptr);
    EXPECT_TRUE(ReplicatedRecordSource::Create(std::move(replicas))
                    .status()
                    .IsInvalidArgument());
  }
  {
    // Mirrors must agree on shape: 2 records vs 3 records.
    std::vector<std::unique_ptr<RecordSource>> replicas;
    replicas.push_back(BuildFpiReplica(&env, "m0", 2));
    replicas.push_back(BuildFpiReplica(&env, "m1", 3));
    auto result = ReplicatedRecordSource::Create(std::move(replicas));
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsInvalidArgument()) << result.status();
  }
}

TEST(ReplicatedSource, PlansCarryEquivalentAlternates) {
  VirtualClock clock;
  SimEnv env_a(DeviceProfile::Ram(), &clock);
  SimEnv env_b(DeviceProfile::Ram(), &clock);
  SimEnv env_c(DeviceProfile::Ram(), &clock);
  std::vector<std::unique_ptr<RecordSource>> replicas;
  replicas.push_back(BuildFpiReplica(&env_a, "r", 3));
  replicas.push_back(BuildFpiReplica(&env_b, "r", 3));
  replicas.push_back(BuildFpiReplica(&env_c, "r", 3));
  auto source =
      ReplicatedRecordSource::Create(std::move(replicas)).MoveValue();
  EXPECT_EQ(source->num_replicas(), 3);
  EXPECT_EQ(source->format_name(), "replicated[3x file_per_image]");

  auto plan = source->PlanFetch(1, 1).MoveValue();
  ASSERT_EQ(plan.alternates.size(), 2u);
  std::vector<Env*> envs{&env_a, &env_b, &env_c};
  EXPECT_EQ(plan.env, envs[static_cast<size_t>(plan.replica)]);

  // Every alternate serves the same bytes from a different backend, and
  // CompleteFetch routes by the plan's (possibly failed-over) replica.
  const std::string primary_bytes = ReadFetchPlan(plan).MoveValue();
  for (const FetchAlternate& alt : plan.alternates) {
    EXPECT_NE(alt.replica, plan.replica);
    EXPECT_EQ(alt.env, envs[static_cast<size_t>(alt.replica)]);

    FetchPlan failed_over = plan;
    failed_over.UseAlternate(alt);
    const std::string alt_bytes = ReadFetchPlan(failed_over).MoveValue();
    EXPECT_EQ(alt_bytes, primary_bytes);
    auto raw =
        source->CompleteFetch(failed_over, std::string(alt_bytes)).MoveValue();
    auto batch = source->AssembleRecord(std::move(raw)).MoveValue();
    EXPECT_EQ(batch.labels[0], 101);
  }

  FetchPlan bogus = plan;
  bogus.replica = 7;
  EXPECT_TRUE(source->CompleteFetch(bogus, std::string())
                  .status()
                  .IsInvalidArgument());
}

TEST(ReplicatedSource, RotationSpreadsPrimaries) {
  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  std::vector<std::unique_ptr<RecordSource>> replicas;
  replicas.push_back(BuildFpiReplica(&env, "s0", 2));
  replicas.push_back(BuildFpiReplica(&env, "s1", 2));
  replicas.push_back(BuildFpiReplica(&env, "s2", 2));
  auto source =
      ReplicatedRecordSource::Create(std::move(replicas)).MoveValue();

  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(source->PlanFetch(0, 1).ok());
  }
  for (const ReplicaHealth& h : source->health()) {
    EXPECT_EQ(h.plans, 3) << "replica " << h.replica;
  }
}

TEST(ReplicatedSource, EjectionBacksOffAndProbesRecovery) {
  VirtualClock clock;
  SimEnv env(DeviceProfile::Ram(), &clock);
  std::vector<std::unique_ptr<RecordSource>> replicas;
  replicas.push_back(BuildFpiReplica(&env, "e0", 2));
  replicas.push_back(BuildFpiReplica(&env, "e1", 2));
  ReplicationOptions options;
  options.eject_after_failures = 1;
  options.eject_duration_sec = 2.0;
  options.max_eject_duration_sec = 60.0;
  options.clock = &clock;
  auto source =
      ReplicatedRecordSource::Create(std::move(replicas), options).MoveValue();

  // One failure ejects replica 1 from rotation.
  FetchPlan failed;
  failed.record = 0;
  failed.replica = 1;
  source->ReportFetchOutcome(failed, Status::IOError("replica down"));
  EXPECT_TRUE(source->health()[1].ejected);
  EXPECT_EQ(source->health()[1].ejections, 1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(source->PlanFetch(0, 1).MoveValue().replica, 0);
  }

  // Past the window the next plan probes the ejected replica exactly once.
  clock.SleepNanos(SecondsToNanos(2.5));
  EXPECT_EQ(source->PlanFetch(0, 1).MoveValue().replica, 1);
  EXPECT_EQ(source->health()[1].probes, 1);

  // A failed probe re-ejects with a doubled window: still out after 2.5s,
  // back in after the full 4s.
  source->ReportFetchOutcome(failed, Status::IOError("still down"));
  EXPECT_TRUE(source->health()[1].ejected);
  clock.SleepNanos(SecondsToNanos(2.5));
  EXPECT_EQ(source->PlanFetch(0, 1).MoveValue().replica, 0);
  EXPECT_TRUE(source->health()[1].ejected);
  clock.SleepNanos(SecondsToNanos(2.0));
  EXPECT_EQ(source->PlanFetch(0, 1).MoveValue().replica, 1);
  EXPECT_EQ(source->health()[1].probes, 2);

  // A healthy probe clears ejection and resets the backoff window.
  source->ReportFetchOutcome(failed, Status::OK());
  EXPECT_FALSE(source->health()[1].ejected);
  EXPECT_EQ(source->health()[1].successes, 1);
}

// ------------------------------------------------- Degraded-mode pipeline

/// Streams `pipeline` to end-of-stream, asserting per-record delivery
/// counts and bit-identical payloads against `expected` (record -> backing
/// bytes at full quality).
void DrainAndVerify(LoaderPipeline* pipeline, int expected_epochs,
                    const std::map<int, std::string>& expected) {
  std::map<int, int> deliveries;
  for (;;) {
    auto batch = pipeline->Next();
    if (!batch.ok()) {
      EXPECT_EQ(batch.status().code(), StatusCode::kOutOfRange)
          << batch.status();
      break;
    }
    ++deliveries[batch->record_index];
    auto want = expected.find(batch->record_index);
    ASSERT_NE(want, expected.end());
    EXPECT_EQ(batch->jpeg_backing, want->second)
        << "record " << batch->record_index << " diverged";
  }
  ASSERT_EQ(deliveries.size(), expected.size());
  for (const auto& [record, count] : deliveries) {
    EXPECT_EQ(count, expected_epochs) << "record " << record;
  }
}

TEST(FailoverPipeline, EpochsSurviveAFailingReplicaBitIdentically) {
  // Replica 0 sits behind a fault schedule that permanently fails every
  // third read (NotFound: no retry, straight to failover); replica 1 is
  // healthy. Two epochs must deliver every record exactly twice with
  // payloads bit-identical to a clean single-replica read.
  SimEnv faulty_base(DeviceProfile::Ram(), RealClock::Get());
  SimEnv healthy(DeviceProfile::Ram(), RealClock::Get());
  auto replica0 = BuildPcrReplica(&faulty_base, "d", 8, 2, 500);
  auto replica1 = BuildPcrReplica(&healthy, "d", 8, 2, 500);

  // Baseline payloads from the healthy replica before wrapping anything.
  std::map<int, std::string> expected;
  const int groups = replica1->num_scan_groups();
  for (int r = 0; r < replica1->num_records(); ++r) {
    expected[r] = replica1->ReadRecord(r, groups).MoveValue().backing;
  }

  FaultRule rule;
  rule.path_substring = ".pcr";
  rule.fail_every_n = 3;
  rule.code = StatusCode::kNotFound;
  FaultInjectionEnv faulty(&faulty_base, {rule});
  // Reopen replica 0 through the fault wrapper so its plans carry it.
  auto replica0_faulty = PcrDataset::Open(&faulty, "d").MoveValue();

  std::vector<std::unique_ptr<RecordSource>> replicas;
  replicas.push_back(std::move(replica0_faulty));
  replicas.push_back(std::move(replica1));
  auto source =
      ReplicatedRecordSource::Create(std::move(replicas)).MoveValue();

  LoaderPipelineOptions options;
  options.io_threads = 2;
  options.io_inflight = 4;
  options.decode_threads = 2;
  options.decode = false;
  options.max_epochs = 2;
  LoaderPipeline pipeline(source.get(), options);
  DrainAndVerify(&pipeline, 2, expected);
  EXPECT_TRUE(pipeline.status().ok()) << pipeline.status();

  const StageStatsSnapshot io = pipeline.io_stats();
  EXPECT_GT(io.failovers, 0);  // The schedule guarantees failed fetches.
  EXPECT_GT(io.fetch_latency_samples, 0);
  EXPECT_GT(io.fetch_p99_sec, 0.0);
  EXPECT_GE(io.fetch_p99_sec, io.fetch_p50_sec);
  // Replica scoring saw both the failures and the failover successes.
  const auto health = source->health();
  EXPECT_GT(health[0].failures, 0);
  EXPECT_GT(health[0].successes + health[1].successes, 0);
}

TEST(FailoverPipeline, TransientErrorsRetryBelowFailover) {
  // A replica whose first two reads fail transiently: the retry layer
  // re-drives them invisibly — the stream survives without any failover.
  SimEnv base(DeviceProfile::Ram(), RealClock::Get());
  auto dataset = BuildPcrReplica(&base, "d", 6, 2, 300);
  std::map<int, std::string> expected;
  const int groups = dataset->num_scan_groups();
  for (int r = 0; r < dataset->num_records(); ++r) {
    expected[r] = dataset->ReadRecord(r, groups).MoveValue().backing;
  }

  FaultRule rule;
  rule.path_substring = ".pcr";
  rule.fail_first_n = 2;
  FaultInjectionEnv faulty(&base, {rule});
  auto source = PcrDataset::Open(&faulty, "d").MoveValue();

  LoaderPipelineOptions options;
  options.io_threads = 1;
  options.io_inflight = 2;
  options.decode_threads = 2;
  options.decode = false;
  options.max_epochs = 1;
  options.io_retry_attempts = 3;
  LoaderPipeline pipeline(source.get(), options);
  DrainAndVerify(&pipeline, 1, expected);
  EXPECT_TRUE(pipeline.status().ok()) << pipeline.status();

  const StageStatsSnapshot io = pipeline.io_stats();
  EXPECT_GE(io.io_retries, 2);
  EXPECT_EQ(io.failovers, 0);
}

TEST(FailoverPipeline, ExhaustedReplicasFailTheStream) {
  // Every replica of every read fails permanently: the stream must surface
  // the error instead of spinning.
  SimEnv base(DeviceProfile::Ram(), RealClock::Get());
  auto dataset = BuildPcrReplica(&base, "d", 4, 2, 0);

  FaultRule rule;
  rule.path_substring = ".pcr";
  rule.fail_first_n = 1'000'000;
  rule.code = StatusCode::kNotFound;
  FaultInjectionEnv faulty(&base, {rule});
  auto source = PcrDataset::Open(&faulty, "d").MoveValue();

  LoaderPipelineOptions options;
  options.io_threads = 1;
  options.io_inflight = 2;
  options.decode_threads = 1;
  options.decode = false;
  options.max_epochs = 1;
  LoaderPipeline pipeline(source.get(), options);
  auto batch = pipeline.Next();
  while (batch.ok()) batch = pipeline.Next();
  EXPECT_TRUE(batch.status().IsNotFound()) << batch.status();
  EXPECT_FALSE(pipeline.status().ok());
}

TEST(FailoverPipeline, HedgedReadsRaceReplicasUnderStalls) {
  // Both replicas stall randomly; aggressive hedge settings race nearly
  // every stalled fetch against the other replica. This is the
  // first-completion-wins / loser-discard path under real concurrency —
  // run under TSan in CI, it hammers the cancellation race. Correctness
  // bar: exactly-once delivery, bit-identical payloads, clean shutdown.
  SimEnv base_a(DeviceProfile::Ram(), RealClock::Get());
  SimEnv base_b(DeviceProfile::Ram(), RealClock::Get());
  auto replica0 = BuildPcrReplica(&base_a, "d", 12, 2, 700);
  auto replica1 = BuildPcrReplica(&base_b, "d", 12, 2, 700);
  std::map<int, std::string> expected;
  const int groups = replica0->num_scan_groups();
  for (int r = 0; r < replica0->num_records(); ++r) {
    expected[r] = replica0->ReadRecord(r, groups).MoveValue().backing;
  }

  FaultRule stall;
  stall.path_substring = ".pcr";
  stall.probability = 0.4;
  stall.code = StatusCode::kOk;
  stall.added_latency_sec = 0.02;
  FaultInjectionEnv faulty_a(&base_a, {stall}, /*seed=*/11);
  FaultInjectionEnv faulty_b(&base_b, {stall}, /*seed=*/22);
  auto source_a = PcrDataset::Open(&faulty_a, "d").MoveValue();
  auto source_b = PcrDataset::Open(&faulty_b, "d").MoveValue();

  std::vector<std::unique_ptr<RecordSource>> replicas;
  replicas.push_back(std::move(source_a));
  replicas.push_back(std::move(source_b));
  auto source =
      ReplicatedRecordSource::Create(std::move(replicas)).MoveValue();

  LoaderPipelineOptions options;
  options.io_threads = 2;
  options.io_inflight = 4;
  options.decode_threads = 2;
  options.decode = false;
  options.max_epochs = 6;
  options.hedged_reads = true;
  options.hedge_percentile = 50.0;
  options.hedge_latency_factor = 1.0;
  options.hedge_min_sec = 1e-4;
  LoaderPipeline pipeline(source.get(), options);
  DrainAndVerify(&pipeline, 6, expected);
  EXPECT_TRUE(pipeline.status().ok()) << pipeline.status();

  const StageStatsSnapshot io = pipeline.io_stats();
  // With ~40% of reads stalled 200x past the healthy p50, the adaptive
  // deadline fires many times across 72 fetches.
  EXPECT_GT(io.hedges, 0);
}

TEST(FailoverPipeline, StopIsPromptWhileAllReadsAreWedged) {
  // Every fetch stalls for 60s at the fault layer. Stop() must tear the
  // pipeline down in bounded time anyway: the I/O workers wait in slices,
  // never a blocking WaitCompletion.
  SimEnv base(DeviceProfile::Ram(), RealClock::Get());
  auto dataset = BuildPcrReplica(&base, "d", 4, 2, 0);

  FaultRule wedge;
  wedge.path_substring = ".pcr";
  wedge.fail_first_n = 1'000'000;
  wedge.code = StatusCode::kOk;
  wedge.added_latency_sec = 60.0;
  FaultInjectionEnv faulty(&base, {wedge});
  auto source = PcrDataset::Open(&faulty, "d").MoveValue();

  LoaderPipelineOptions options;
  options.io_threads = 2;
  options.io_inflight = 2;
  options.decode_threads = 1;
  options.decode = false;
  options.max_epochs = 1;
  auto pipeline = std::make_unique<LoaderPipeline>(source.get(), options);
  // Give the workers time to park on their wedged reads.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto start = std::chrono::steady_clock::now();
  pipeline->Stop();
  pipeline.reset();
  const double stop_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(stop_sec, 5.0);
}

}  // namespace
}  // namespace pcr
