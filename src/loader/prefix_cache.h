// PrefixCache: a byte-budgeted LRU of raw on-storage scan prefixes, keyed on
// (dataset id, record). Where the DecodeCache short-circuits a whole read at
// an exact (record, scan group), this cache feeds RecordSource::PlanFetch a
// FetchResident so quality *upgrades* become delta reads: a record fetched
// at group g keeps its raw prefix here, and a later fetch at g' > g plans a
// resident segment for the cached bytes plus one fetch segment for
// [prefix(g), prefix(g')) — the scatter-gather skip-resident path. A re-read
// at g'' <= g is fully resident and needs no I/O at all.
//
// Each record keeps only its deepest prefix (a longer prefix subsumes every
// shorter one), behind shared_ptr<const string> so a Lookup result stays
// valid while plans referencing it are in flight, even across eviction.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/record_source.h"

namespace pcr {

struct PrefixCacheOptions {
  /// Total raw-byte budget across all cached prefixes.
  uint64_t capacity_bytes = 64ull << 20;
};

struct PrefixCacheStats {
  int64_t hits = 0;       // Lookups that returned a prefix.
  int64_t misses = 0;
  int64_t inserts = 0;    // Accepted inserts (including deepenings).
  int64_t rejects = 0;    // Shallower-than-cached or over-budget inserts.
  int64_t evictions = 0;  // Entries pushed out by the byte budget.
  uint64_t bytes_in_use = 0;
  int64_t entries = 0;
  uint64_t capacity_bytes = 0;
};

/// Thread-safe; one mutex (the payloads are pointer-swaps, not copies).
class PrefixCache {
 public:
  explicit PrefixCache(PrefixCacheOptions options) : options_(options) {}

  PrefixCache(const PrefixCache&) = delete;
  PrefixCache& operator=(const PrefixCache&) = delete;

  /// Hands out a process-unique dataset id for keying, so one cache can be
  /// shared by loaders over different sources without key collisions.
  uint64_t RegisterDataset() {
    return next_dataset_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// The record's deepest cached prefix (marking it most-recently-used), or
  /// nullopt. The result aliases the cache entry, not a copy.
  std::optional<FetchResident> Lookup(uint64_t dataset_id, int record);

  /// Offers `bytes` as the record's raw prefix as fetched at `scan_group`.
  /// Kept only when deeper than what is cached (or new), and only when it
  /// fits the budget; least-recently-used records are evicted to make room.
  void Insert(uint64_t dataset_id, int record, int scan_group,
              std::shared_ptr<const std::string> bytes);

  /// Whether an Insert of `bytes` bytes could be admitted at all. Lets the
  /// miss path skip building the shared payload copy for hopeless inserts.
  bool Admits(uint64_t bytes) const {
    return bytes > 0 && bytes <= options_.capacity_bytes;
  }

  PrefixCacheStats stats() const;

  uint64_t capacity_bytes() const { return options_.capacity_bytes; }

 private:
  struct Key {
    uint64_t dataset_id = 0;
    int record = -1;
    bool operator==(const Key& other) const {
      return dataset_id == other.dataset_id && record == other.record;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      uint64_t x = key.dataset_id * 0x9e3779b97f4a7c15ULL +
                   static_cast<uint32_t>(key.record);
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<size_t>(x ^ (x >> 31));
    }
  };
  struct Entry {
    Key key;
    int scan_group = 0;
    std::shared_ptr<const std::string> bytes;
  };

  PrefixCacheOptions options_;
  std::atomic<uint64_t> next_dataset_id_{1};

  mutable std::mutex mu_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  uint64_t bytes_ = 0;

  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> inserts_{0};
  std::atomic<int64_t> rejects_{0};
  std::atomic<int64_t> evictions_{0};
};

}  // namespace pcr
