#include "loader/prefetcher.h"

#include <algorithm>

namespace pcr {

LoaderPipelineOptions PrefetchingLoader::PipelineOptions(
    const PrefetchOptions& options) {
  LoaderPipelineOptions pipeline;
  // Preserve the knob's pre-pipeline concurrency, not its thread count: the
  // fused loader's num_threads workers each kept one blocking read in
  // flight AND decoded, i.e. up to num_threads concurrent fetches and
  // num_threads-way decode. Giving each stage the full budget keeps both
  // (I/O workers block in reads rather than burn CPU, so the extra threads
  // are idle-cheap).
  const int threads = std::max(1, options.num_threads);
  pipeline.io_threads = threads;
  pipeline.io_inflight = options.io_inflight;
  pipeline.decode_threads = threads;
  pipeline.fetch_queue_depth = options.queue_depth;
  pipeline.output_queue_depth = options.queue_depth;
  pipeline.shuffle = options.loader.shuffle;
  pipeline.seed = options.loader.seed;
  pipeline.scan_policy = options.loader.scan_policy;
  pipeline.decode_cache = options.loader.decode_cache;
  pipeline.decode_cache_bytes = options.loader.decode_cache_bytes;
  pipeline.decode_cache_shards = options.loader.decode_cache_shards;
  pipeline.cache_dataset_id = options.loader.cache_dataset_id;
  return pipeline;
}

PrefetchingLoader::PrefetchingLoader(RecordSource* source,
                                     PrefetchOptions options)
    : pipeline_(source, PipelineOptions(options)) {}

Result<LoadedBatch> PrefetchingLoader::Next() {
  auto batch = pipeline_.Next();
  if (!batch.ok() && batch.status().code() == StatusCode::kAborted &&
      pipeline_.status().ok()) {
    // Only a genuine Stop() leaves the pipeline's own status OK; preserve
    // the pre-pipeline contract for it. Aborted-coded *stage* failures pass
    // through untouched.
    return Status::Aborted("prefetching loader stopped");
  }
  return batch;
}

}  // namespace pcr
