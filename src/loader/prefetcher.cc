#include "loader/prefetcher.h"

#include <chrono>

#include "jpeg/codec.h"

namespace pcr {

PrefetchingLoader::PrefetchingLoader(RecordSource* source,
                                     PrefetchOptions options)
    : source_(source), options_(options),
      queue_(static_cast<size_t>(std::max(1, options.queue_depth))) {
  sampler_ = std::make_unique<RecordSampler>(
      source->num_records(), options_.loader.shuffle, options_.loader.seed);
  const int threads = std::max(1, options_.num_threads);
  workers_.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers_.emplace_back(
        [this, t] { WorkerLoop(options_.loader.seed + 0x9e37 * (t + 1)); });
  }
}

PrefetchingLoader::~PrefetchingLoader() { Stop(); }

void PrefetchingLoader::WorkerLoop(uint64_t seed) {
  Rng rng(seed);
  std::shared_ptr<ScanGroupPolicy> policy = options_.loader.scan_policy;
  if (policy == nullptr) {
    policy = std::make_shared<FixedScanPolicy>(source_->num_scan_groups());
  }
  while (!stopping_.load(std::memory_order_relaxed)) {
    int record;
    {
      std::lock_guard<std::mutex> lock(sampler_mu_);
      record = sampler_->Next();
    }
    const int group = policy->Select(source_->num_scan_groups(), &rng);
    auto raw = source_->ReadRecord(record, group);
    if (!raw.ok()) {
      // Propagate failures as an empty poisoned batch; consumers see the
      // stream end. (Storage errors are fatal for a training run anyway.)
      queue_.Close();
      return;
    }
    LoadedBatch batch;
    batch.record_index = record;
    batch.scan_group = group;
    batch.labels = std::move(raw->labels);
    batch.bytes_read = raw->bytes_read;
    if (options_.loader.decode) {
      batch.images.reserve(raw->jpegs.size());
      bool decode_ok = true;
      for (const auto& bytes : raw->jpegs) {
        auto img = jpeg::Decode(Slice(bytes));
        if (!img.ok()) {
          decode_ok = false;
          break;
        }
        batch.images.push_back(std::move(img).MoveValue());
      }
      if (!decode_ok) {
        queue_.Close();
        return;
      }
    } else {
      batch.jpegs = std::move(raw->jpegs);
    }
    if (!queue_.Push(std::move(batch))) return;  // Closed.
  }
}

Result<LoadedBatch> PrefetchingLoader::Next() {
  const auto start = std::chrono::steady_clock::now();
  std::optional<LoadedBatch> batch = queue_.Pop();
  const auto end = std::chrono::steady_clock::now();
  const double waited =
      std::chrono::duration<double>(end - start).count();
  // Accumulate stall time (atomic double via CAS loop).
  double old = stall_seconds_.load();
  while (!stall_seconds_.compare_exchange_weak(old, old + waited)) {
  }
  if (!batch.has_value()) {
    return Status::Aborted("prefetching loader stopped");
  }
  batches_delivered_.fetch_add(1);
  return std::move(*batch);
}

void PrefetchingLoader::Stop() {
  stopping_.store(true);
  queue_.Close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

}  // namespace pcr
