#include "loader/decode_cache.h"

#include <algorithm>

#include "util/logging.h"

namespace pcr {

DecodeCache::DecodeCache(DecodeCacheOptions options)
    : options_(options),
      shards_(static_cast<size_t>(std::max(1, options.shards))) {
  PCR_CHECK_GT(options_.capacity_bytes, 0u);
  options_.shards = static_cast<int>(shards_.size());
  shard_capacity_ =
      std::max<uint64_t>(1, options_.capacity_bytes / shards_.size());
}

uint64_t DecodeCache::BatchBytes(const LoadedBatch& batch) {
  uint64_t bytes = sizeof(LoadedBatch);
  for (const Image& img : batch.images) bytes += img.size_bytes();
  bytes += batch.labels.size() * sizeof(int64_t);
  bytes += batch.jpeg_spans.size() * sizeof(ByteSpan);
  bytes += batch.jpeg_backing.size();
  return bytes;
}

std::shared_ptr<const LoadedBatch> DecodeCache::Lookup(
    const DecodeCacheKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->batch;
}

std::shared_ptr<const LoadedBatch> DecodeCache::Insert(
    const DecodeCacheKey& key, LoadedBatch&& batch) {
  if (IsProbeScanGroup(key.dataset_id, key.scan_group)) {
    // One-shot probe traffic: keep the resident working set instead.
    // Caller keeps the batch (still valid).
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const uint64_t bytes = BatchBytes(batch);
  if (bytes > shard_capacity_) {
    // Too large to ever fit: caller keeps the batch (still valid).
    oversize_rejects_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Entry entry;
  entry.key = key;
  entry.batch = std::make_shared<const LoadedBatch>(std::move(batch));
  entry.bytes = bytes;
  std::shared_ptr<const LoadedBatch> stored = entry.batch;

  Shard& shard = ShardFor(key);
  int64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Replacement (e.g. a racing miss decoded the same record twice).
      shard.bytes -= it->second->bytes;
      shard.lru.erase(it->second);
      shard.index.erase(it);
    }
    shard.lru.push_front(std::move(entry));
    shard.index[key] = shard.lru.begin();
    shard.bytes += bytes;
    while (shard.bytes > shard_capacity_ && shard.lru.size() > 1) {
      const Entry& victim = shard.lru.back();
      shard.bytes -= victim.bytes;
      shard.index.erase(victim.key);
      shard.lru.pop_back();
      ++evicted;
    }
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
  return stored;
}

void DecodeCache::MarkProbeScanGroup(uint64_t dataset_id, int scan_group) {
  std::lock_guard<std::mutex> lock(probe_mu_);
  if (probe_groups_.emplace(dataset_id, scan_group).second) {
    probe_mark_count_.fetch_add(1, std::memory_order_release);
  }
}

void DecodeCache::UnmarkProbeScanGroup(uint64_t dataset_id, int scan_group) {
  std::lock_guard<std::mutex> lock(probe_mu_);
  if (probe_groups_.erase({dataset_id, scan_group}) > 0) {
    probe_mark_count_.fetch_sub(1, std::memory_order_release);
  }
}

bool DecodeCache::IsProbeScanGroup(uint64_t dataset_id,
                                   int scan_group) const {
  // Marks exist only while a tuner probe cycle runs; skip the lock on the
  // (overwhelmingly common) unmarked path.
  if (probe_mark_count_.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard<std::mutex> lock(probe_mu_);
  return probe_groups_.count({dataset_id, scan_group}) > 0;
}

template <typename Pred>
size_t DecodeCache::InvalidateMatching(Pred pred) {
  size_t removed = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (pred(it->key)) {
        shard.bytes -= it->bytes;
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
  }
  if (removed > 0) {
    invalidated_.fetch_add(static_cast<int64_t>(removed),
                           std::memory_order_relaxed);
  }
  return removed;
}

size_t DecodeCache::InvalidateScanGroup(uint64_t dataset_id, int scan_group) {
  return InvalidateMatching([&](const DecodeCacheKey& key) {
    return key.dataset_id == dataset_id && key.scan_group == scan_group;
  });
}

size_t DecodeCache::InvalidateDataset(uint64_t dataset_id) {
  return InvalidateMatching(
      [&](const DecodeCacheKey& key) { return key.dataset_id == dataset_id; });
}

void DecodeCache::Clear() {
  InvalidateMatching([](const DecodeCacheKey&) { return true; });
}

DecodeCacheStats DecodeCache::stats() const {
  DecodeCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.oversize_rejects = oversize_rejects_.load(std::memory_order_relaxed);
  stats.admission_rejects =
      admission_rejects_.load(std::memory_order_relaxed);
  stats.invalidated = invalidated_.load(std::memory_order_relaxed);
  stats.capacity_bytes = options_.capacity_bytes;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.bytes_in_use += shard.bytes;
    stats.entries += static_cast<int64_t>(shard.lru.size());
  }
  return stats;
}

}  // namespace pcr
