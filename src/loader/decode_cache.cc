#include "loader/decode_cache.h"

#include <algorithm>

#include "util/logging.h"

namespace pcr {

DecodeCache::DecodeCache(DecodeCacheOptions options)
    : options_(options),
      shards_(static_cast<size_t>(std::max(1, options.shards))) {
  PCR_CHECK_GT(options_.capacity_bytes, 0u);
  options_.shards = static_cast<int>(shards_.size());
  shard_capacity_ =
      std::max<uint64_t>(1, options_.capacity_bytes / shards_.size());
}

uint64_t DecodeCache::BatchBytes(const LoadedBatch& batch) {
  uint64_t bytes = sizeof(LoadedBatch);
  for (const Image& img : batch.images) bytes += img.size_bytes();
  bytes += batch.labels.size() * sizeof(int64_t);
  bytes += batch.jpeg_spans.size() * sizeof(ByteSpan);
  bytes += batch.jpeg_backing.size();
  return bytes;
}

std::shared_ptr<const LoadedBatch> DecodeCache::Lookup(
    const DecodeCacheKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->batch;
}

std::shared_ptr<const LoadedBatch> DecodeCache::Insert(
    const DecodeCacheKey& key, LoadedBatch&& batch) {
  if (IsProbeScanGroup(key.dataset_id, key.scan_group)) {
    // One-shot probe traffic: keep the resident working set instead.
    // Caller keeps the batch (still valid).
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const uint64_t bytes = BatchBytes(batch);
  if (bytes > shard_capacity_) {
    // Too large to ever fit: caller keeps the batch (still valid).
    oversize_rejects_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Entry entry;
  entry.key = key;
  entry.batch = std::make_shared<const LoadedBatch>(std::move(batch));
  entry.bytes = bytes;
  std::shared_ptr<const LoadedBatch> stored = entry.batch;

  Shard& shard = ShardFor(key);
  int64_t evicted = 0;
  int64_t share_evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Replacement (e.g. a racing miss decoded the same record twice).
      shard.bytes -= it->second->bytes;
      ShareCharge(key.dataset_id, -static_cast<int64_t>(it->second->bytes));
      shard.lru.erase(it->second);
      shard.index.erase(it);
    }
    if (share_count_.load(std::memory_order_acquire) > 0) {
      uint64_t cap = 0;
      uint64_t in_use = 0;
      {
        std::lock_guard<std::mutex> share_lock(share_mu_);
        auto share_it = shares_.find(key.dataset_id);
        if (share_it != shares_.end()) {
          cap = share_it->second.cap;
          in_use = share_it->second.bytes;
        }
      }
      if (cap > 0) {
        // Over-share inserts evict this dataset's own LRU tail (in this
        // shard) before touching anyone else's entries.
        for (auto victim = shard.lru.end();
             in_use + bytes > cap && victim != shard.lru.begin();) {
          --victim;
          if (victim->key.dataset_id != key.dataset_id) continue;
          shard.bytes -= victim->bytes;
          in_use -= std::min(in_use, victim->bytes);
          ShareCharge(key.dataset_id, -static_cast<int64_t>(victim->bytes));
          shard.index.erase(victim->key);
          victim = shard.lru.erase(victim);
          ++share_evicted;
        }
        if (in_use + bytes > cap) {
          share_rejects_.fetch_add(1, std::memory_order_relaxed);
          if (share_evicted > 0) {
            share_evictions_.fetch_add(share_evicted,
                                       std::memory_order_relaxed);
          }
          return nullptr;
        }
      }
    }
    shard.lru.push_front(std::move(entry));
    shard.index[key] = shard.lru.begin();
    shard.bytes += bytes;
    ShareCharge(key.dataset_id, static_cast<int64_t>(bytes));
    while (shard.bytes > shard_capacity_ && shard.lru.size() > 1) {
      const Entry& victim = shard.lru.back();
      shard.bytes -= victim.bytes;
      ShareCharge(victim.key.dataset_id, -static_cast<int64_t>(victim.bytes));
      shard.index.erase(victim.key);
      shard.lru.pop_back();
      ++evicted;
    }
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
  if (share_evicted > 0) {
    share_evictions_.fetch_add(share_evicted, std::memory_order_relaxed);
  }
  return stored;
}

void DecodeCache::ShareCharge(uint64_t dataset_id, int64_t delta) {
  if (share_count_.load(std::memory_order_acquire) == 0) return;
  std::lock_guard<std::mutex> lock(share_mu_);
  auto it = shares_.find(dataset_id);
  if (it == shares_.end()) return;
  if (delta < 0 && static_cast<uint64_t>(-delta) > it->second.bytes) {
    it->second.bytes = 0;  // Entries resident before the cap was set.
  } else {
    it->second.bytes += delta;
  }
}

void DecodeCache::SetDatasetByteCap(uint64_t dataset_id, uint64_t cap_bytes) {
  // Sum what is already resident for the dataset first (shard locks only —
  // lock order is shard.mu -> share_mu_, so this cannot nest the other way).
  uint64_t resident = 0;
  if (cap_bytes > 0) {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const Entry& entry : shard.lru) {
        if (entry.key.dataset_id == dataset_id) resident += entry.bytes;
      }
    }
  }
  std::lock_guard<std::mutex> lock(share_mu_);
  auto it = shares_.find(dataset_id);
  if (cap_bytes == 0) {
    if (it != shares_.end()) {
      shares_.erase(it);
      share_count_.fetch_sub(1, std::memory_order_release);
    }
    return;
  }
  if (it == shares_.end()) {
    shares_[dataset_id] = Share{cap_bytes, resident};
    share_count_.fetch_add(1, std::memory_order_release);
  } else {
    it->second.cap = cap_bytes;
  }
}

uint64_t DecodeCache::DatasetShareBytes(uint64_t dataset_id) const {
  if (share_count_.load(std::memory_order_acquire) == 0) return 0;
  std::lock_guard<std::mutex> lock(share_mu_);
  auto it = shares_.find(dataset_id);
  return it == shares_.end() ? 0 : it->second.bytes;
}

void DecodeCache::MarkProbeScanGroup(uint64_t dataset_id, int scan_group) {
  std::lock_guard<std::mutex> lock(probe_mu_);
  if (probe_groups_.emplace(dataset_id, scan_group).second) {
    probe_mark_count_.fetch_add(1, std::memory_order_release);
  }
}

void DecodeCache::UnmarkProbeScanGroup(uint64_t dataset_id, int scan_group) {
  std::lock_guard<std::mutex> lock(probe_mu_);
  if (probe_groups_.erase({dataset_id, scan_group}) > 0) {
    probe_mark_count_.fetch_sub(1, std::memory_order_release);
  }
}

bool DecodeCache::IsProbeScanGroup(uint64_t dataset_id,
                                   int scan_group) const {
  // Marks exist only while a tuner probe cycle runs; skip the lock on the
  // (overwhelmingly common) unmarked path.
  if (probe_mark_count_.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard<std::mutex> lock(probe_mu_);
  return probe_groups_.count({dataset_id, scan_group}) > 0;
}

template <typename Pred>
size_t DecodeCache::InvalidateMatching(Pred pred) {
  size_t removed = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (pred(it->key)) {
        shard.bytes -= it->bytes;
        ShareCharge(it->key.dataset_id, -static_cast<int64_t>(it->bytes));
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
  }
  if (removed > 0) {
    invalidated_.fetch_add(static_cast<int64_t>(removed),
                           std::memory_order_relaxed);
  }
  return removed;
}

size_t DecodeCache::InvalidateScanGroup(uint64_t dataset_id, int scan_group) {
  return InvalidateMatching([&](const DecodeCacheKey& key) {
    return key.dataset_id == dataset_id && key.scan_group == scan_group;
  });
}

size_t DecodeCache::InvalidateDataset(uint64_t dataset_id) {
  return InvalidateMatching(
      [&](const DecodeCacheKey& key) { return key.dataset_id == dataset_id; });
}

void DecodeCache::Clear() {
  InvalidateMatching([](const DecodeCacheKey&) { return true; });
}

DecodeCacheStats DecodeCache::stats() const {
  DecodeCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.oversize_rejects = oversize_rejects_.load(std::memory_order_relaxed);
  stats.admission_rejects =
      admission_rejects_.load(std::memory_order_relaxed);
  stats.invalidated = invalidated_.load(std::memory_order_relaxed);
  stats.share_evictions = share_evictions_.load(std::memory_order_relaxed);
  stats.share_rejects = share_rejects_.load(std::memory_order_relaxed);
  stats.capacity_bytes = options_.capacity_bytes;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.bytes_in_use += shard.bytes;
    stats.entries += static_cast<int64_t>(shard.lru.size());
  }
  return stats;
}

}  // namespace pcr
