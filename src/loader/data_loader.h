// DataLoader: synchronous record-fetch + decode core, for callers that want
// one record at a time on the calling thread. Concurrent wall-clock loading
// lives in the staged LoaderPipeline (pipeline.h) and its PrefetchingLoader
// adapter (prefetcher.h); the virtual-clock TrainingPipelineSim
// (sim/pipeline_sim.h) overlaps load/compute analytically.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/record_source.h"
#include "image/image.h"
#include "jpeg/codec.h"
#include "loader/sampler.h"
#include "loader/scan_policy.h"
#include "util/random.h"
#include "util/result.h"

namespace pcr {

class DecodeCache;  // loader/decode_cache.h

/// One loaded (and optionally decoded) record.
struct LoadedBatch {
  int record_index = -1;
  int scan_group = 0;
  std::vector<int64_t> labels;
  std::vector<Image> images;  // Decoded pixels (the default).
  // When the pipeline runs with decode off, the assembled JPEG streams are
  // carried as spans into the moved RecordBatch backing (no extra copy).
  std::vector<ByteSpan> jpeg_spans;
  std::string jpeg_backing;
  uint64_t bytes_read = 0;

  int size() const { return static_cast<int>(labels.size()); }
  int num_jpegs() const { return static_cast<int>(jpeg_spans.size()); }
  Slice jpeg(int i) const {
    return Slice(jpeg_backing.data() + jpeg_spans[i].offset,
                 jpeg_spans[i].length);
  }
};

struct LoaderOptions {
  bool shuffle = true;
  uint64_t seed = 42;
  /// Default policy: full quality.
  std::shared_ptr<ScanGroupPolicy> scan_policy;

  // Decoded-record LRU cache (loader/decode_cache.h). Multi-epoch runs hit
  // the cache instead of re-fetching and re-decoding the same (record, scan
  // group). Either hand in a shared cache (reused across loaders /
  // pipelines, e.g. one per training job), or set decode_cache_bytes > 0 to
  // have the loader build a private one. Both null and 0 bytes = caching off.
  std::shared_ptr<DecodeCache> decode_cache;
  uint64_t decode_cache_bytes = 0;
  int decode_cache_shards = 8;
  /// Key namespace inside a shared cache; 0 = auto-register a fresh id.
  uint64_t cache_dataset_id = 0;
};

/// Decodes every JPEG of an assembled RecordBatch into pixels — the shared
/// CPU half of both the synchronous DataLoader and the pipeline's decode
/// stage. `scratch` (may be null) lets a long-lived decode thread reuse
/// coefficient and staging buffers across records.
Result<LoadedBatch> DecodeRecordBatch(RecordBatch raw, int record_index,
                                      int scan_group,
                                      jpeg::DecodeScratch* scratch = nullptr);

/// Cumulative loader counters.
struct LoaderStats {
  int64_t records_loaded = 0;
  int64_t images_loaded = 0;
  int64_t bytes_read = 0;
  int64_t cache_hits = 0;  // Records served from the decoded-record cache.
};

/// Pulls shuffled records from a RecordSource at a policy-selected quality
/// and decodes them. Not thread-safe; wrap with PrefetchingLoader for
/// concurrent use.
class DataLoader {
 public:
  DataLoader(RecordSource* source, LoaderOptions options);

  /// Fetches and decodes the next record of the epoch stream.
  Result<LoadedBatch> NextBatch();

  /// Fetches a specific record at a specific quality (used by tuners to
  /// probe scan groups).
  Result<LoadedBatch> LoadRecord(int record_index, int scan_group);

  int epoch() const { return sampler_.epoch(); }
  size_t records_per_epoch() const { return sampler_.records_per_epoch(); }
  const LoaderStats& stats() const { return stats_; }
  RecordSource* source() { return source_; }

  /// Swaps the quality policy at runtime (dynamic tuning, §4.5/§A.6.2).
  void set_scan_policy(std::shared_ptr<ScanGroupPolicy> policy) {
    options_.scan_policy = std::move(policy);
  }
  ScanGroupPolicy* scan_policy() { return options_.scan_policy.get(); }

  /// The decoded-record cache in use (null when caching is off) and this
  /// loader's key namespace inside it.
  DecodeCache* decode_cache() { return options_.decode_cache.get(); }
  uint64_t cache_dataset_id() const { return options_.cache_dataset_id; }

 private:
  RecordSource* source_;
  LoaderOptions options_;
  RecordSampler sampler_;
  Rng rng_;
  LoaderStats stats_;
};

}  // namespace pcr
