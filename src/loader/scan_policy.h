// Scan-group selection policies: fixed, mixture (§A.6.3 "Mixture Training"),
// and schedule-driven. The loader consults the policy per record, which is
// what makes runtime quality switching free.
#pragma once

#include <memory>
#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace pcr {

/// Chooses the scan group for each record read.
class ScanGroupPolicy {
 public:
  virtual ~ScanGroupPolicy() = default;
  /// Returns a scan group in [1, num_groups].
  virtual int Select(int num_groups, Rng* rng) = 0;
  /// Expected scan group fraction of full-quality bytes is policy-dependent;
  /// expose the mean selected group for diagnostics.
  virtual double MeanGroup(int num_groups) const = 0;
};

/// Always the same group.
class FixedScanPolicy : public ScanGroupPolicy {
 public:
  explicit FixedScanPolicy(int group) : group_(group) {
    PCR_CHECK_GE(group, 1);
  }
  int Select(int num_groups, Rng*) override {
    return group_ <= num_groups ? group_ : num_groups;
  }
  double MeanGroup(int num_groups) const override {
    return group_ <= num_groups ? group_ : num_groups;
  }
  void set_group(int group) { group_ = group; }
  int group() const { return group_; }

 private:
  int group_;
};

/// Draws from a weight vector over groups. The paper's mixtures put weight W
/// on the selected group and 1 on every other (W=10 -> ~50%, W=100 -> ~85%
/// for 10 groups).
class MixtureScanPolicy : public ScanGroupPolicy {
 public:
  /// `weights[g-1]` is the unnormalized probability of group g.
  explicit MixtureScanPolicy(std::vector<double> weights)
      : weights_(std::move(weights)) {
    PCR_CHECK(!weights_.empty());
  }

  /// Paper-style mixture: weight `selected_weight` on `selected_group`,
  /// weight 1 elsewhere.
  static MixtureScanPolicy PaperMixture(int num_groups, int selected_group,
                                        double selected_weight) {
    std::vector<double> w(num_groups, 1.0);
    PCR_CHECK(selected_group >= 1 && selected_group <= num_groups);
    w[selected_group - 1] = selected_weight;
    return MixtureScanPolicy(std::move(w));
  }

  int Select(int num_groups, Rng* rng) override {
    std::vector<double> w(weights_.begin(),
                          weights_.begin() +
                              std::min<size_t>(weights_.size(), num_groups));
    return static_cast<int>(rng->SampleDiscrete(w)) + 1;
  }

  double MeanGroup(int num_groups) const override {
    double total = 0.0, acc = 0.0;
    const int n = std::min<int>(static_cast<int>(weights_.size()), num_groups);
    for (int g = 1; g <= n; ++g) {
      total += weights_[g - 1];
      acc += g * weights_[g - 1];
    }
    return total > 0 ? acc / total : 1.0;
  }

  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;
};

}  // namespace pcr
