#include "loader/data_loader.h"

#include "jpeg/codec.h"

namespace pcr {

Result<LoadedBatch> DecodeRecordBatch(RecordBatch raw, int record_index,
                                      int scan_group,
                                      jpeg::DecodeScratch* scratch) {
  LoadedBatch batch;
  batch.record_index = record_index;
  batch.scan_group = scan_group;
  batch.labels = std::move(raw.labels);
  batch.bytes_read = raw.bytes_read;
  batch.images.reserve(raw.spans.size());
  for (int i = 0; i < raw.size(); ++i) {
    PCR_ASSIGN_OR_RETURN(Image img, jpeg::Decode(raw.jpeg(i), scratch));
    batch.images.push_back(std::move(img));
  }
  return batch;
}

DataLoader::DataLoader(RecordSource* source, LoaderOptions options)
    : source_(source), options_(std::move(options)),
      sampler_(source->num_records(), options_.shuffle, options_.seed),
      rng_(options_.seed ^ 0x5bd1e995) {
  if (options_.scan_policy == nullptr) {
    options_.scan_policy =
        std::make_shared<FixedScanPolicy>(source->num_scan_groups());
  }
}

Result<LoadedBatch> DataLoader::NextBatch() {
  const int record = sampler_.Next();
  const int group =
      options_.scan_policy->Select(source_->num_scan_groups(), &rng_);
  return LoadRecord(record, group);
}

Result<LoadedBatch> DataLoader::LoadRecord(int record_index, int scan_group) {
  PCR_ASSIGN_OR_RETURN(RecordBatch raw,
                       source_->ReadRecord(record_index, scan_group));
  PCR_ASSIGN_OR_RETURN(
      LoadedBatch batch,
      DecodeRecordBatch(std::move(raw), record_index, scan_group));
  ++stats_.records_loaded;
  stats_.images_loaded += batch.size();
  stats_.bytes_read += static_cast<int64_t>(batch.bytes_read);
  return batch;
}

}  // namespace pcr
