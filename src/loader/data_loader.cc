#include "loader/data_loader.h"

#include <algorithm>

#include "jpeg/codec.h"
#include "loader/decode_cache.h"

namespace pcr {

Result<LoadedBatch> DecodeRecordBatch(RecordBatch raw, int record_index,
                                      int scan_group,
                                      jpeg::DecodeScratch* scratch) {
  LoadedBatch batch;
  batch.record_index = record_index;
  batch.scan_group = scan_group;
  batch.labels = std::move(raw.labels);
  batch.bytes_read = raw.bytes_read;
  batch.images.reserve(raw.spans.size());
  for (int i = 0; i < raw.size(); ++i) {
    PCR_ASSIGN_OR_RETURN(Image img, jpeg::Decode(raw.jpeg(i), scratch));
    batch.images.push_back(std::move(img));
  }
  return batch;
}

DataLoader::DataLoader(RecordSource* source, LoaderOptions options)
    : source_(source), options_(std::move(options)),
      sampler_(source->num_records(), options_.shuffle, options_.seed),
      rng_(options_.seed ^ 0x5bd1e995) {
  if (options_.scan_policy == nullptr) {
    options_.scan_policy =
        std::make_shared<FixedScanPolicy>(source->num_scan_groups());
  }
  if (options_.decode_cache == nullptr && options_.decode_cache_bytes > 0) {
    DecodeCacheOptions cache_options;
    cache_options.capacity_bytes = options_.decode_cache_bytes;
    cache_options.shards = options_.decode_cache_shards;
    options_.decode_cache = std::make_shared<DecodeCache>(cache_options);
  }
  if (options_.decode_cache != nullptr && options_.cache_dataset_id == 0) {
    options_.cache_dataset_id = options_.decode_cache->RegisterDataset();
  }
}

Result<LoadedBatch> DataLoader::NextBatch() {
  const int record = sampler_.Next();
  const int group =
      options_.scan_policy->Select(source_->num_scan_groups(), &rng_);
  return LoadRecord(record, group);
}

Result<LoadedBatch> DataLoader::LoadRecord(int record_index, int scan_group) {
  // Clamp like FetchRecord will, so cache keys match the stored content
  // (and targeted invalidation by group finds every alias).
  scan_group = std::clamp(scan_group, 1, source_->num_scan_groups());
  const DecodeCacheKey key{options_.cache_dataset_id, record_index,
                           scan_group};
  if (options_.decode_cache != nullptr) {
    if (auto cached = options_.decode_cache->Lookup(key)) {
      ++stats_.records_loaded;
      ++stats_.cache_hits;
      stats_.images_loaded += cached->size();
      LoadedBatch batch(*cached);  // No fetch, no decode; one copy.
      batch.bytes_read = 0;        // This load read nothing from storage.
      return batch;
    }
  }
  PCR_ASSIGN_OR_RETURN(RecordBatch raw,
                       source_->ReadRecord(record_index, scan_group));
  PCR_ASSIGN_OR_RETURN(
      LoadedBatch batch,
      DecodeRecordBatch(std::move(raw), record_index, scan_group));
  ++stats_.records_loaded;
  stats_.images_loaded += batch.size();
  stats_.bytes_read += static_cast<int64_t>(batch.bytes_read);
  if (options_.decode_cache != nullptr) {
    if (auto stored =
            options_.decode_cache->Insert(key, std::move(batch))) {
      return LoadedBatch(*stored);
    }
  }
  return batch;
}

}  // namespace pcr
