#include "loader/prefix_cache.h"

#include <utility>

namespace pcr {

std::optional<FetchResident> PrefixCache::Lookup(uint64_t dataset_id,
                                                 int record) {
  const Key key{dataset_id, record};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  FetchResident resident;
  resident.scan_group = it->second->scan_group;
  resident.bytes = it->second->bytes;
  return resident;
}

void PrefixCache::Insert(uint64_t dataset_id, int record, int scan_group,
                         std::shared_ptr<const std::string> bytes) {
  if (bytes == nullptr || !Admits(bytes->size())) {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const Key key{dataset_id, record};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    Entry& entry = *it->second;
    // A deeper prefix subsumes the cached one; anything else only refreshes
    // recency. Same-group re-reads can differ in length only if the dataset
    // changed underneath us, which the cache does not try to detect.
    if (scan_group <= entry.scan_group) {
      lru_.splice(lru_.begin(), lru_, it->second);
      rejects_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    bytes_ -= entry.bytes->size();
    entry.scan_group = scan_group;
    entry.bytes = std::move(bytes);
    bytes_ += entry.bytes->size();
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    Entry entry;
    entry.key = key;
    entry.scan_group = scan_group;
    entry.bytes = std::move(bytes);
    bytes_ += entry.bytes->size();
    lru_.push_front(std::move(entry));
    index_[key] = lru_.begin();
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  while (bytes_ > options_.capacity_bytes && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes->size();
    index_.erase(victim.key);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

PrefixCacheStats PrefixCache::stats() const {
  PrefixCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.rejects = rejects_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.capacity_bytes = options_.capacity_bytes;
  std::lock_guard<std::mutex> lock(mu_);
  stats.bytes_in_use = bytes_;
  stats.entries = static_cast<int64_t>(lru_.size());
  return stats;
}

}  // namespace pcr
