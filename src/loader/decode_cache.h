// DecodeCache: a sharded, thread-safe, byte-budgeted LRU of decoded record
// batches, keyed on (dataset id, record index, scan group). It sits between
// the decode stage and the consumer of LoaderPipeline: multi-epoch training
// re-reads the same (record, scan group) pairs every epoch, and a hit skips
// both the storage fetch and the JPEG decode — O(epochs) decodes per record
// become O(1) at a fixed scan level.
//
// Entries hold immutable decoded batches behind shared_ptr, so a Lookup
// result stays valid even if the entry is evicted while the caller copies
// from it. Insert moves the decoded batch into the cache (the miss path's
// only extra cost is one batch copy, paid off the consumer thread); an entry
// larger than a shard's budget is rejected without consuming the batch.
//
// Scan-group changes (dynamic tuning) invalidate only the affected entries
// via InvalidateScanGroup — entries at other groups, e.g. the live groups of
// a mixture policy, keep serving hits instead of being flushed wholesale.
//
// Admission control: tuners probing candidate scan groups generate one-shot
// traffic — every probed (record, group) is read once and never again at
// that group unless the tuner adopts it. Populating the cache with those
// batches evicts the hot working set for entries that will never hit.
// MarkProbeScanGroup makes Insert skip population for a (dataset, group)
// pair (lookups still hit whatever is already cached) until the tuner
// unmarks it.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "loader/data_loader.h"

namespace pcr {

struct DecodeCacheKey {
  uint64_t dataset_id = 0;  // From RegisterDataset(); disambiguates sources.
  int record = -1;
  int scan_group = 0;

  bool operator==(const DecodeCacheKey& other) const {
    return dataset_id == other.dataset_id && record == other.record &&
           scan_group == other.scan_group;
  }
};

struct DecodeCacheKeyHash {
  size_t operator()(const DecodeCacheKey& key) const {
    // splitmix64 finalizer over the packed fields.
    uint64_t x = key.dataset_id * 0x9e3779b97f4a7c15ULL +
                 (static_cast<uint64_t>(static_cast<uint32_t>(key.record))
                  << 32) +
                 static_cast<uint32_t>(key.scan_group);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

struct DecodeCacheOptions {
  /// Total decoded-byte budget across all shards.
  uint64_t capacity_bytes = 256ull << 20;
  /// Independent LRU shards; concurrent workers contend only per shard.
  int shards = 8;
};

/// Point-in-time counters. bytes/entries are exact (shards are locked while
/// summing); the monotonic counters are relaxed atomics.
struct DecodeCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;         // Entries pushed out by the byte budget.
  int64_t inserts = 0;           // Accepted inserts (including replacements).
  int64_t oversize_rejects = 0;  // Batches larger than a shard's budget.
  int64_t admission_rejects = 0; // Inserts skipped for probe-marked groups.
  int64_t invalidated = 0;       // Entries removed by Invalidate*/Clear.
  int64_t share_evictions = 0;   // Same-dataset evictions by a byte-share cap.
  int64_t share_rejects = 0;     // Inserts rejected by a byte-share cap.
  uint64_t bytes_in_use = 0;
  int64_t entries = 0;
  uint64_t capacity_bytes = 0;
};

class DecodeCache {
 public:
  explicit DecodeCache(DecodeCacheOptions options);

  DecodeCache(const DecodeCache&) = delete;
  DecodeCache& operator=(const DecodeCache&) = delete;

  /// Hands out a process-unique dataset id for keying, so one cache can be
  /// shared by loaders over different sources without key collisions.
  uint64_t RegisterDataset() {
    return next_dataset_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Returns the cached batch (marking it most-recently-used) or nullptr.
  std::shared_ptr<const LoadedBatch> Lookup(const DecodeCacheKey& key);

  /// Moves `batch` into the cache and returns the stored entry, evicting
  /// least-recently-used entries until the shard fits its budget. Returns
  /// nullptr — with `batch` left untouched — when the batch alone exceeds
  /// the per-shard budget or its (dataset, scan group) is probe-marked. An
  /// existing entry under the same key is replaced.
  std::shared_ptr<const LoadedBatch> Insert(const DecodeCacheKey& key,
                                            LoadedBatch&& batch);

  /// Admission control for one-shot traffic: while (dataset_id, scan_group)
  /// is marked, Insert skips population (counted as an admission reject)
  /// instead of evicting resident entries, and Lookup keeps serving whatever
  /// was cached before. Tuners mark candidate groups for the duration of a
  /// probe cycle. Marking is idempotent; Unmark restores normal admission.
  void MarkProbeScanGroup(uint64_t dataset_id, int scan_group);
  void UnmarkProbeScanGroup(uint64_t dataset_id, int scan_group);
  bool IsProbeScanGroup(uint64_t dataset_id, int scan_group) const;

  /// Byte-budget shares for multi-tenant sharing (the serving daemon): while
  /// a dataset id carries a cap, its entries may not exceed `cap_bytes` in
  /// total. An insert that would cross the cap first evicts that dataset's
  /// own least-recently-used entries in the insert's shard (so a tenant at
  /// its share churns its own working set instead of its neighbors'), and is
  /// rejected — counted as a share reject — if that cannot free enough.
  /// A cap of 0 removes the share. Entries already resident when a cap is
  /// set are kept (the cap gates admission, not residency).
  void SetDatasetByteCap(uint64_t dataset_id, uint64_t cap_bytes);

  /// Bytes currently resident for a share-capped dataset (0 for uncapped
  /// datasets — bytes are only accounted while a cap is active).
  uint64_t DatasetShareBytes(uint64_t dataset_id) const;

  /// Drops every entry of `dataset_id` at exactly `scan_group` — the
  /// targeted invalidation for a tuner switching away from a group. Returns
  /// the number of entries removed.
  size_t InvalidateScanGroup(uint64_t dataset_id, int scan_group);

  /// Drops every entry of `dataset_id`. Returns the number removed.
  size_t InvalidateDataset(uint64_t dataset_id);

  /// Drops everything.
  void Clear();

  DecodeCacheStats stats() const;

  uint64_t capacity_bytes() const { return options_.capacity_bytes; }
  int shards() const { return static_cast<int>(shards_.size()); }

  /// Decoded footprint an entry is charged for: pixels, labels, and any
  /// carried JPEG spans/backing.
  static uint64_t BatchBytes(const LoadedBatch& batch);

  /// Whether Insert would admit a batch of `bytes` under `key`: it must fit
  /// one shard's budget and the key's (dataset, scan group) must not be
  /// probe-marked. Lets the miss path skip its population copy for batches
  /// Insert would only reject.
  bool Admits(const DecodeCacheKey& key, uint64_t bytes) const {
    return bytes <= shard_capacity_ &&
           !IsProbeScanGroup(key.dataset_id, key.scan_group);
  }

 private:
  struct Entry {
    DecodeCacheKey key;
    std::shared_ptr<const LoadedBatch> batch;
    uint64_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // Front = most recently used.
    std::unordered_map<DecodeCacheKey, std::list<Entry>::iterator,
                       DecodeCacheKeyHash>
        index;
    uint64_t bytes = 0;
  };

  Shard& ShardFor(const DecodeCacheKey& key) {
    return shards_[DecodeCacheKeyHash()(key) % shards_.size()];
  }
  template <typename Pred>
  size_t InvalidateMatching(Pred pred);

  /// Adjusts a capped dataset's resident-byte account (no-op for uncapped
  /// datasets). Safe to call with a shard mutex held: lock order is always
  /// shard.mu -> share_mu_.
  void ShareCharge(uint64_t dataset_id, int64_t delta);

  DecodeCacheOptions options_;
  uint64_t shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> next_dataset_id_{1};

  /// Probe-marked (dataset id, scan group) pairs. The set is tiny (a
  /// handful of tuner candidates at most) but sits on the per-insert hot
  /// path, so the no-marks common case short-circuits on a relaxed atomic
  /// count and never touches the mutex.
  std::atomic<int> probe_mark_count_{0};
  mutable std::mutex probe_mu_;
  std::set<std::pair<uint64_t, int>> probe_groups_;

  /// Byte-share accounting, populated only for capped datasets. Like probe
  /// marks, the common uncapped case short-circuits on the atomic count
  /// without touching the mutex.
  struct Share {
    uint64_t cap = 0;
    uint64_t bytes = 0;
  };
  std::atomic<int> share_count_{0};
  mutable std::mutex share_mu_;
  std::unordered_map<uint64_t, Share> shares_;

  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> inserts_{0};
  std::atomic<int64_t> oversize_rejects_{0};
  std::atomic<int64_t> admission_rejects_{0};
  std::atomic<int64_t> invalidated_{0};
  std::atomic<int64_t> share_evictions_{0};
  std::atomic<int64_t> share_rejects_{0};
};

}  // namespace pcr
