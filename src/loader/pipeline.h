// LoaderPipeline: the staged wall-clock data loader. Splits every record
// read into the two resources it actually consumes:
//
//   [I/O stage]    io_threads workers pull (record, scan group) tickets from
//                  a shared epoch sampler, plan them via
//                  RecordSource::PlanFetch, and keep up to `io_inflight`
//                  fetches in flight through the backend Env's
//                  submission/completion IoScheduler (storage-bound, no CPU
//                  work), draining completions through
//                  RecordSource::CompleteFetch into a bounded raw-record
//                  queue. Sharded sources route each plan to its own
//                  backend, so one worker can hold reads open against
//                  several devices at once.
//   [decode stage] decode_threads workers on a util::ThreadPool pop raw
//                  records, run RecordSource::AssembleRecord plus parallel
//                  JPEG decodes (CPU-bound, no I/O), feeding the bounded
//                  output queue the consumer pops from.
//
// Each stage has independently sized thread counts and queue depths, its own
// StageStats (busy/idle time, items, bytes, queue occupancy), and consumer
// stalls are attributed to the stage that caused them: a stall with an empty
// raw queue and no decode in flight is storage's fault (io-bound), anything
// else means decode could not keep up (decode-bound) — the Figure 11/18
// breakdown the paper's data-stall analysis needs.
//
// Failures in either stage record the first non-OK Status, drain the
// pipeline, and surface from Next(); with max_epochs set, Next() returns
// OutOfRange once every record has been delivered exactly once per epoch.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/record_source.h"
#include "loader/data_loader.h"
#include "loader/decode_cache.h"
#include "loader/prefix_cache.h"
#include "loader/sampler.h"
#include "loader/scan_policy.h"
#include "loader/stage_stats.h"
#include "util/bounded_queue.h"
#include "util/thread_pool.h"

namespace pcr {

struct LoaderPipelineOptions {
  /// I/O stage: workers submitting fetches and draining completions.
  int io_threads = 2;
  /// Fetches each I/O worker keeps in flight through its Env's IoScheduler
  /// (io_uring-style submission window). 1 reproduces the blocking
  /// one-read-per-worker shape; deeper windows fill the device queue so
  /// small partial scan-group reads stop leaving storage bandwidth idle.
  /// Total reads in flight = io_threads * io_inflight.
  int io_inflight = 4;
  /// Raw records buffered between the I/O and decode stages.
  int fetch_queue_depth = 8;
  /// Decode stage: ThreadPool workers running AssembleRecord + jpeg::Decode.
  int decode_threads = 4;
  /// Upper bound on raw records a decode worker claims per queue visit
  /// (one lock + one notify per visit instead of per record); the actual
  /// claim is capped at the worker's fair share of the queued records so a
  /// draining queue still spreads across idle workers. Records decode and
  /// deliver one at a time. >= 1.
  int decode_pop_batch = 4;
  /// Decoded batches buffered ahead of the consumer.
  int output_queue_depth = 8;
  /// When false, batches carry assembled JPEG streams instead of decoded
  /// images (consumers that ship compressed bytes downstream).
  bool decode = true;
  /// 0 streams epochs forever; N > 0 delivers exactly N epochs (every record
  /// once per epoch) and then Next() returns OutOfRange.
  int max_epochs = 0;
  bool shuffle = true;
  uint64_t seed = 42;
  /// Scan-group selection per record; defaults to full quality.
  std::shared_ptr<ScanGroupPolicy> scan_policy;

  // Decoded-record LRU cache (loader/decode_cache.h). I/O workers consult it
  // per ticket: a hit short-circuits before the raw queue — no fetch, no
  // decode — and pushes the cached batch straight to the output queue;
  // misses flow through the stages and populate the cache after decode.
  // Hand in a shared cache (it survives pipeline teardown, so every epoch or
  // rebuilt pipeline reuses it), or set decode_cache_bytes > 0 for a private
  // one. Caching applies only when `decode` is true (compressed-byte
  // consumers are the storage page cache's job).
  std::shared_ptr<DecodeCache> decode_cache;
  uint64_t decode_cache_bytes = 0;
  int decode_cache_shards = 8;
  /// Key namespace inside a shared cache; 0 = auto-register a fresh id.
  /// Loaders over the same on-storage dataset share hits by passing the
  /// same id.
  uint64_t cache_dataset_id = 0;

  /// I/O backend for the stage's schedulers. kAuto defers to the PCR_FORCE_IO
  /// override / runtime io_uring probe (storage/io_backend.h); tests and
  /// benches pin a tier explicitly.
  IoBackend io_backend = IoBackend::kAuto;
  /// Submission window the uring backend coalesces per io_uring_submit —
  /// plans queued as SQEs before one enter syscall flushes them. Ignored by
  /// the sync/thread backends, which have no batched submission.
  int io_submit_batch = 4;

  // Fault tolerance on the I/O stage. Three independent layers: transparent
  // retry of transient backend errors (storage/io_retry.h wraps each
  // scheduler), replica failover (a failed fetch re-submits against the
  // plan's next FetchPlan::alternates entry), and hedged reads (a fetch
  // outliving an adaptive deadline duplicates to an alternate;
  // first-completion-wins, the loser is discarded on arrival). Replica-less
  // sources attach no alternates, so failover and hedging are no-ops there.
  /// Submissions per request against one backend before its failure
  /// surfaces to failover; 1 disables retry.
  int io_retry_attempts = 3;
  /// First retry backoff; doubles per retry (capped at 100x) on the
  /// backend Env's clock.
  double io_retry_backoff_sec = 0.5e-3;
  /// Duplicate a slow fetch to an untried alternate replica once it
  /// outlives the hedge deadline.
  bool hedged_reads = true;
  /// Deadline = clamp(worker-local latency percentile * factor,
  /// [hedge_min_sec, hedge_max_sec]); no hedging until the worker has
  /// observed enough completed fetches to estimate the percentile.
  double hedge_percentile = 95.0;
  double hedge_latency_factor = 2.0;
  double hedge_min_sec = 1e-3;
  double hedge_max_sec = 1.0;

  // Raw scan-prefix cache (loader/prefix_cache.h). I/O workers feed each
  // ticket's PlanFetch the record's cached prefix, so a quality upgrade
  // fetches only the delta bytes and a same-or-lower-quality re-read is
  // fully resident (zero I/O); fetched payloads deepen the cache after
  // CompleteFetch. Orthogonal to the decode cache: this one holds raw
  // on-storage bytes and serves *partial* hits. Hand in a shared cache or
  // set prefix_cache_bytes > 0 for a private one.
  std::shared_ptr<PrefixCache> prefix_cache;
  uint64_t prefix_cache_bytes = 0;
  /// Key namespace inside a shared prefix cache; 0 = auto-register.
  uint64_t prefix_dataset_id = 0;
};

/// A delivered batch under shared ownership. Cache hits alias the cache's
/// own entry (zero_copy == true) instead of deep-copying it; cache misses
/// carry a batch the consumer is the sole owner of. `bytes_read` is the
/// storage traffic attributable to THIS delivery — zero for a hit, whatever
/// the fetch cost for a miss — and is authoritative over the batch's own
/// field, which a shared cache entry keeps from its original fetch.
struct SharedLoadedBatch {
  std::shared_ptr<const LoadedBatch> batch;
  uint64_t bytes_read = 0;
  bool zero_copy = false;
};

/// Two-stage threaded loader. Thread-safe for a single consumer of Next();
/// construction starts the stages, destruction (or Stop()) shuts them down.
class LoaderPipeline {
 public:
  LoaderPipeline(RecordSource* source, LoaderPipelineOptions options);
  ~LoaderPipeline();

  LoaderPipeline(const LoaderPipeline&) = delete;
  LoaderPipeline& operator=(const LoaderPipeline&) = delete;

  /// Pops the next decoded batch; blocks while the output queue is empty (a
  /// data stall). Returns the first stage failure if one occurred (failing
  /// fast past queued batches), OutOfRange at end-of-stream (max_epochs
  /// reached), or — once already-decoded batches have drained — Aborted
  /// after Stop(). Value semantics: a cache-hit delivery deep-copies the
  /// shared entry here; consumers that can hold a reference should prefer
  /// NextShared(), which never copies pixels.
  Result<LoadedBatch> Next();

  /// Like Next() but hands out the batch under shared ownership: cache hits
  /// are delivered by reference to the cache's entry (no copy — counted in
  /// io_stats().zero_copy_hits), misses as the sole reference to the decoded
  /// batch. The serving daemon's data plane consumes this form.
  Result<SharedLoadedBatch> NextShared();

  /// Stops both stages; undecoded queued work is dropped, while batches the
  /// decode stage already delivered remain poppable via Next(). Idempotent.
  void Stop();

  /// First non-OK status recorded by either stage (OK while healthy).
  Status status() const;

  /// Total time Next() spent blocked (the data-stall time of §A.1), split by
  /// the stage that was the bottleneck when the stall began. A stall
  /// resolved by a cache-served batch counts as io-bound: the I/O workers
  /// serve hits, and no decode work was pending. With a warm cache these
  /// stalls are copy-sized — microseconds, not the storage/decode stalls
  /// the attribution exists to separate.
  double stall_seconds() const;
  double io_stall_seconds() const;
  double decode_stall_seconds() const;

  int64_t batches_delivered() const {
    return batches_delivered_.load(std::memory_order_relaxed);
  }

  StageStatsSnapshot io_stats() const;
  StageStatsSnapshot decode_stats() const;

  size_t records_per_epoch() const { return sampler_->records_per_epoch(); }

  /// Swaps the per-record quality policy on the live pipeline (dynamic
  /// tuning). Tickets already fetched or queued keep their old group; new
  /// tickets select via the new policy. Cache entries are left alone — use
  /// DecodeCache::InvalidateScanGroup to drop just the outgoing group.
  void set_scan_policy(std::shared_ptr<ScanGroupPolicy> policy);

  /// The decoded-record cache in use (null when caching is off) and this
  /// pipeline's key namespace inside it.
  const std::shared_ptr<DecodeCache>& decode_cache() const {
    return options_.decode_cache;
  }
  uint64_t cache_dataset_id() const { return options_.cache_dataset_id; }

  /// The raw scan-prefix cache in use (null when off) and its namespace.
  const std::shared_ptr<PrefixCache>& prefix_cache() const {
    return options_.prefix_cache;
  }
  uint64_t prefix_dataset_id() const { return options_.prefix_dataset_id; }

 private:
  void IoWorkerLoop(uint64_t seed);
  void DecodeWorkerLoop();
  Result<LoadedBatch> AssembleAndDecode(RawRecord raw,
                                        jpeg::DecodeScratch* scratch);
  void RecordError(Status status);

  RecordSource* source_;
  LoaderPipelineOptions options_;

  BoundedQueue<RawRecord> fetch_queue_;
  BoundedQueue<SharedLoadedBatch> output_queue_;

  std::vector<std::thread> io_workers_;
  std::unique_ptr<ThreadPool> decode_pool_;

  // Ticket issuance: a shared epoch sampler; each record is issued exactly
  // once per epoch no matter how many I/O workers race on it.
  std::mutex sampler_mu_;
  std::unique_ptr<RecordSampler> sampler_;
  int64_t tickets_issued_ = 0;
  int64_t ticket_limit_ = 0;  // 0 = unbounded.

  std::atomic<bool> stopping_{false};
  std::atomic<int> live_io_workers_{0};
  std::atomic<int> live_decode_workers_{0};
  std::atomic<int> decode_in_flight_{0};

  mutable std::mutex error_mu_;
  Status first_error_;  // OK until a stage fails.

  StageStats io_stats_;
  StageStats decode_stats_;
  /// Resolved backend name of the stage's schedulers (a static string from
  /// IoScheduler::backend_name), stamped by the first worker to open one.
  std::atomic<const char*> io_backend_name_{nullptr};

  std::atomic<int64_t> io_stall_nanos_{0};
  std::atomic<int64_t> decode_stall_nanos_{0};
  std::atomic<int64_t> batches_delivered_{0};
};

}  // namespace pcr
