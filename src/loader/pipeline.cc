#include "loader/pipeline.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>

#include "storage/io_retry.h"
#include "util/logging.h"

namespace pcr {

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

LoaderPipeline::LoaderPipeline(RecordSource* source,
                               LoaderPipelineOptions options)
    : source_(source), options_(std::move(options)),
      fetch_queue_(
          static_cast<size_t>(std::max(1, options_.fetch_queue_depth))),
      output_queue_(
          static_cast<size_t>(std::max(1, options_.output_queue_depth))) {
  PCR_CHECK(source != nullptr);
  PCR_CHECK_GT(source->num_records(), 0);
  options_.io_threads = std::max(1, options_.io_threads);
  options_.io_inflight = std::max(1, options_.io_inflight);
  options_.decode_threads = std::max(1, options_.decode_threads);
  options_.decode_pop_batch = std::max(1, options_.decode_pop_batch);
  if (options_.scan_policy == nullptr) {
    options_.scan_policy =
        std::make_shared<FixedScanPolicy>(source->num_scan_groups());
  }
  if (!options_.decode) {
    options_.decode_cache = nullptr;  // Cache stores decoded batches only.
  } else if (options_.decode_cache == nullptr &&
             options_.decode_cache_bytes > 0) {
    DecodeCacheOptions cache_options;
    cache_options.capacity_bytes = options_.decode_cache_bytes;
    cache_options.shards = options_.decode_cache_shards;
    options_.decode_cache = std::make_shared<DecodeCache>(cache_options);
  }
  if (options_.decode_cache != nullptr && options_.cache_dataset_id == 0) {
    options_.cache_dataset_id = options_.decode_cache->RegisterDataset();
  }
  options_.io_submit_batch = std::max(1, options_.io_submit_batch);
  options_.io_retry_attempts = std::max(1, options_.io_retry_attempts);
  // Completion cookies carry the slot index in 16 bits.
  options_.io_inflight = std::min(options_.io_inflight, 0xffff);
  if (options_.prefix_cache == nullptr && options_.prefix_cache_bytes > 0) {
    PrefixCacheOptions prefix_options;
    prefix_options.capacity_bytes = options_.prefix_cache_bytes;
    options_.prefix_cache = std::make_shared<PrefixCache>(prefix_options);
  }
  if (options_.prefix_cache != nullptr && options_.prefix_dataset_id == 0) {
    options_.prefix_dataset_id = options_.prefix_cache->RegisterDataset();
  }
  sampler_ = std::make_unique<RecordSampler>(
      source->num_records(), options_.shuffle, options_.seed);
  if (options_.max_epochs > 0) {
    ticket_limit_ = static_cast<int64_t>(options_.max_epochs) *
                    static_cast<int64_t>(source->num_records());
  }

  live_io_workers_.store(options_.io_threads);
  live_decode_workers_.store(options_.decode_threads);
  decode_pool_ = std::make_unique<ThreadPool>(
      static_cast<size_t>(options_.decode_threads));
  for (int t = 0; t < options_.decode_threads; ++t) {
    decode_pool_->Submit([this] { DecodeWorkerLoop(); });
  }
  io_workers_.reserve(options_.io_threads);
  for (int t = 0; t < options_.io_threads; ++t) {
    io_workers_.emplace_back(
        [this, t] { IoWorkerLoop(options_.seed + 0x9e37 * (t + 1)); });
  }
}

LoaderPipeline::~LoaderPipeline() { Stop(); }

void LoaderPipeline::RecordError(Status status) {
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (first_error_.ok()) first_error_ = std::move(status);
  }
  // Tear the stream down: wake every blocked worker. Queued items drain, but
  // Next() fails fast on the recorded status.
  fetch_queue_.Close();
  output_queue_.Close();
}

Status LoaderPipeline::status() const {
  std::lock_guard<std::mutex> lock(error_mu_);
  return first_error_;
}

void LoaderPipeline::set_scan_policy(std::shared_ptr<ScanGroupPolicy> policy) {
  PCR_CHECK(policy != nullptr);
  std::lock_guard<std::mutex> lock(sampler_mu_);
  options_.scan_policy = std::move(policy);
}

void LoaderPipeline::IoWorkerLoop(uint64_t seed) {
  Rng rng(seed);
  const int num_groups = source_->num_scan_groups();
  DecodeCache* const cache = options_.decode_cache.get();
  PrefixCache* const prefixes = options_.prefix_cache.get();
  const uint64_t prefix_id = options_.prefix_dataset_id;
  const int window = options_.io_inflight;

  // The submission window: one slot per logical fetch in flight. A slot
  // holds its plan; the whole plan goes to the scheduler as one
  // scatter-gather request, so the completion's bytes are the plan's fetched
  // (non-resident) bytes in plan order. A fetch may have up to two
  // *branches* racing for the slot — the current attempt and its hedge twin
  // — and may be re-driven across the plan's alternates on failure, so the
  // completion cookie carries (generation, branch, slot): a completion whose
  // generation no longer matches the slot's is a superseded attempt (hedge
  // loser, or a failure the slot already failed over past) and is dropped.
  struct Slot {
    FetchPlan plan;
    int64_t submit_nanos = 0;     // First submission of the current fetch.
    uint32_t generation = 0;      // Bumped per attempt and at finalize.
    int branches = 0;             // Outstanding submissions racing (0-2).
    size_t next_alternate = 0;    // Next untried plan.alternates entry.
    int hedge_alternate = -1;     // Alternate the hedge twin ran against.
    bool hedged = false;          // One hedge per attempt.
  };
  std::vector<Slot> slots(static_cast<size_t>(window));
  std::vector<int> free_slots;
  free_slots.reserve(static_cast<size_t>(window));
  for (int i = window - 1; i >= 0; --i) free_slots.push_back(i);
  int in_flight = 0;

  auto encode_cookie = [](uint32_t generation, int branch, int slot) {
    return (static_cast<uint64_t>(generation) << 32) |
           (static_cast<uint64_t>(branch) << 16) | static_cast<uint64_t>(slot);
  };

  // One scheduler per backend Env: a plain source has one, a sharded source
  // one per shard backend, a replicated source one per replica actually
  // read. Workers own their schedulers, so the window is per worker and
  // teardown joins only this worker's outstanding reads. Transient backend
  // errors retry below this layer (storage/io_retry.h): the loop here only
  // ever sees failures worth failing over.
  std::vector<std::pair<Env*, std::unique_ptr<IoScheduler>>> schedulers;
  size_t wait_cursor = 0;  // Round-robin across backends when waiting.
  auto scheduler_for = [&](Env* env) -> IoScheduler* {
    for (auto& [scheduler_env, scheduler] : schedulers) {
      if (scheduler_env == env) return scheduler.get();
    }
    IoSchedulerOptions scheduler_options;
    // Hedges can double the branches held against one backend, so the
    // scheduler gets headroom beyond the logical window.
    const int depth = window * (options_.hedged_reads ? 2 : 1);
    scheduler_options.queue_depth = depth;
    // Every in-flight read may block a service thread in pread.
    scheduler_options.io_threads = depth;
    scheduler_options.backend = options_.io_backend;
    scheduler_options.submit_batch = options_.io_submit_batch;
    std::unique_ptr<IoScheduler> scheduler =
        env->NewIoScheduler(scheduler_options);
    if (options_.io_retry_attempts > 1) {
      RetryPolicy policy;
      policy.max_attempts = options_.io_retry_attempts;
      policy.initial_backoff_sec = options_.io_retry_backoff_sec;
      scheduler =
          NewRetryingIoScheduler(std::move(scheduler), policy, env->clock());
    }
    schedulers.emplace_back(env, std::move(scheduler));
    io_backend_name_.store(schedulers.back().second->backend_name(),
                           std::memory_order_relaxed);
    return schedulers.back().second.get();
  };

  // Worker-local recent fetch latencies drive the hedge deadline: hedging
  // keys off this worker's own observed service times. The shared stage
  // ring (io_stats_) feeds reporting only.
  constexpr size_t kLatencyWindow = 256;
  constexpr int64_t kMinHedgeSamples = 16;
  std::vector<double> recent_latencies;
  recent_latencies.reserve(kLatencyWindow);
  size_t latency_cursor = 0;
  int64_t latency_count = 0;
  auto record_latency = [&](double seconds) {
    if (recent_latencies.size() < kLatencyWindow) {
      recent_latencies.push_back(seconds);
    } else {
      recent_latencies[latency_cursor] = seconds;
      latency_cursor = (latency_cursor + 1) % kLatencyWindow;
    }
    ++latency_count;
    io_stats_.AddFetchLatency(seconds);
  };
  // The adaptive hedge deadline in nanos, or -1 while too few fetches have
  // completed to estimate the percentile.
  auto hedge_deadline_nanos = [&]() -> int64_t {
    if (latency_count < kMinHedgeSamples) return -1;
    std::vector<double> sorted(recent_latencies);
    std::sort(sorted.begin(), sorted.end());
    const double p = std::clamp(options_.hedge_percentile, 0.0, 100.0);
    const size_t index = static_cast<size_t>(
        p / 100.0 * static_cast<double>(sorted.size() - 1));
    const double deadline_sec =
        std::clamp(sorted[index] * options_.hedge_latency_factor,
                   options_.hedge_min_sec, options_.hedge_max_sec);
    return static_cast<int64_t>(deadline_sec * 1e9);
  };

  // Duplicates any fetch past its deadline to its next untried alternate
  // (first completion wins the slot). Returns nanos until the earliest
  // not-yet-due hedge, or -1 when nothing is eligible.
  auto maybe_hedge = [&]() -> int64_t {
    if (!options_.hedged_reads || in_flight == 0) return -1;
    const int64_t deadline = hedge_deadline_nanos();
    if (deadline < 0) return -1;
    const int64_t now = NowNanos();
    int64_t next_wait = -1;
    for (int s = 0; s < window; ++s) {
      Slot& slot = slots[static_cast<size_t>(s)];
      if (slot.branches != 1 || slot.hedged) continue;
      if (slot.next_alternate >= slot.plan.alternates.size()) continue;
      const int64_t age = now - slot.submit_nanos;
      if (age < deadline) {
        const int64_t wait = deadline - age;
        if (next_wait < 0 || wait < next_wait) next_wait = wait;
        continue;
      }
      const FetchAlternate& alt = slot.plan.alternates[slot.next_alternate];
      ReadRequest request;
      request.user_data = encode_cookie(slot.generation, 1, s);
      for (const FetchSegment& seg : alt.segments) {
        if (!seg.resident) {
          request.segments.push_back(
              ReadSegment{seg.path, seg.offset, seg.length});
        }
      }
      slot.hedged = true;  // One hedge per attempt, whether or not it lands.
      if (!scheduler_for(alt.env)->SubmitRead(std::move(request)).ok()) {
        continue;  // Backend refused (full or failing): forfeit the hedge.
      }
      slot.hedge_alternate = static_cast<int>(slot.next_alternate);
      ++slot.next_alternate;
      slot.branches = 2;
      io_stats_.AddHedge();
    }
    return next_wait;
  };

  // CompleteFetch + hand the raw record to the decode stage; frees the slot.
  // `bytes` are the plan's fetched bytes (empty for fully-resident plans).
  auto finish_slot = [&](int slot_index, std::string bytes) -> bool {
    Slot& slot = slots[static_cast<size_t>(slot_index)];
    const int64_t complete_start = NowNanos();
    auto raw = source_->CompleteFetch(slot.plan, std::move(bytes));
    if (raw.ok() && prefixes != nullptr && !raw->payload.empty() &&
        prefixes->Admits(raw->payload.size())) {
      // The payload is the record file's on-storage prefix at this group;
      // keep it so later fetches of the record plan around it.
      prefixes->Insert(prefix_id, slot.plan.record, raw->scan_group,
                       std::make_shared<const std::string>(raw->payload));
    }
    io_stats_.AddBusyNanos(NowNanos() - complete_start);
    free_slots.push_back(slot_index);
    if (!raw.ok()) {
      RecordError(raw.status().WithContext("loader I/O stage"));
      return false;
    }
    io_stats_.AddItem(raw->bytes_read);
    const int64_t push_start = NowNanos();
    const bool pushed = fetch_queue_.Push(std::move(raw).MoveValue());
    io_stats_.AddIdleNanos(NowNanos() - push_start);
    if (!pushed) return false;  // Queue closed: Stop() or a stage failure.
    io_stats_.SampleQueueDepth(fetch_queue_.size());
    return true;
  };

  // The whole plan as one request: adjacent segments become one vectored op
  // on backends that support it, and resident segments never reach storage.
  // (Re)submits the slot's current plan as branch 0 of its generation —
  // the initial attempt and every failover re-drive go through here.
  auto submit_slot = [&](int slot_index) -> bool {
    Slot& slot = slots[static_cast<size_t>(slot_index)];
    slot.submit_nanos = NowNanos();
    slot.hedged = false;
    slot.hedge_alternate = -1;
    slot.branches = 1;
    ReadRequest request =
        slot.plan.ToReadRequest(encode_cookie(slot.generation, 0, slot_index));
    Status submitted =
        scheduler_for(slot.plan.env)->SubmitRead(std::move(request));
    if (!submitted.ok()) {
      RecordError(std::move(submitted).WithContext("loader I/O stage"));
      return false;
    }
    return true;
  };

  bool running = true;
  bool tickets_done = false;
  while (running && !stopping_.load(std::memory_order_relaxed)) {
    // Fill the window: issue tickets until it is full or the epoch limit is
    // reached. Cache hits bypass the window entirely (no fetch, no decode):
    // copy out of the immutable entry (busy time — it is the ticket's whole
    // service cost) and short-circuit straight to the output queue.
    while (running && !tickets_done && in_flight < window &&
           !stopping_.load(std::memory_order_relaxed)) {
      int record;
      std::shared_ptr<ScanGroupPolicy> policy;
      {
        std::lock_guard<std::mutex> lock(sampler_mu_);
        if (ticket_limit_ > 0 && tickets_issued_ >= ticket_limit_) {
          tickets_done = true;
          break;
        }
        record = sampler_->Next();
        ++tickets_issued_;
        policy = options_.scan_policy;  // May be swapped by set_scan_policy.
      }
      // Clamp like PlanFetch will, so cache keys match what gets stored.
      const int group =
          std::clamp(policy->Select(num_groups, &rng), 1, num_groups);

      if (cache != nullptr) {
        const DecodeCacheKey key{options_.cache_dataset_id, record, group};
        if (auto cached = cache->Lookup(key)) {
          io_stats_.AddCacheHit();
          // Zero-copy delivery: alias the cache's entry instead of deep-
          // copying it. The wrapper's bytes_read = 0 records that this
          // delivery read nothing from storage (the shared entry keeps the
          // original fetch size for its own books).
          io_stats_.AddZeroCopyHit(DecodeCache::BatchBytes(*cached));
          SharedLoadedBatch item;
          item.batch = std::move(cached);
          item.bytes_read = 0;
          item.zero_copy = true;
          const int64_t push_start = NowNanos();
          const bool pushed = output_queue_.Push(std::move(item));
          io_stats_.AddIdleNanos(NowNanos() - push_start);
          if (!pushed) running = false;  // Queue closed: Stop()/failure.
          continue;
        }
        io_stats_.AddCacheMiss();
      }

      const int64_t plan_start = NowNanos();
      std::optional<FetchResident> resident;
      if (prefixes != nullptr) {
        resident = prefixes->Lookup(prefix_id, record);
        if (resident.has_value()) {
          io_stats_.AddPrefixHit();
        } else {
          io_stats_.AddPrefixMiss();
        }
      }
      auto plan = source_->PlanFetch(
          record, group, resident.has_value() ? &*resident : nullptr);
      if (!plan.ok()) {
        io_stats_.AddBusyNanos(NowNanos() - plan_start);
        RecordError(plan.status().WithContext("loader I/O stage"));
        running = false;
        break;
      }
      const int slot_index = free_slots.back();
      free_slots.pop_back();
      Slot& slot = slots[static_cast<size_t>(slot_index)];
      slot.plan = std::move(plan).MoveValue();
      slot.next_alternate = 0;
      ++slot.generation;  // Fresh tenancy: prior tenants' strays are dead.
      if (slot.plan.fetch_bytes() == 0) {
        // Fully resident (or empty): no storage I/O, complete right away.
        // No outcome report — replica health scores storage attempts only.
        io_stats_.AddBusyNanos(NowNanos() - plan_start);
        if (!finish_slot(slot_index, std::string())) running = false;
        continue;
      }
      if (!submit_slot(slot_index)) {
        io_stats_.AddBusyNanos(NowNanos() - plan_start);
        running = false;
        break;
      }
      ++in_flight;
      io_stats_.SampleInFlight(in_flight);
      io_stats_.AddBusyNanos(NowNanos() - plan_start);
    }
    if (!running || in_flight == 0) break;  // Epoch limit reached or torn down.

    // Drain one completion. The wait is storage service time (busy): with a
    // full window this is where the worker sits while the device works
    // through its queue. Ready completions on any backend are taken first;
    // the worker then waits in bounded slices — never a blocking
    // WaitCompletion — so hedge deadlines and Stop() stay observed even
    // against a backend that never completes (a wedged read cannot hang
    // teardown). With several backends holding reads it polls them all at a
    // short cadence instead — committing to one backend's wait would idle a
    // fast shard's completed reads behind a slow shard's latency.
    constexpr int64_t kWaitSliceNanos = 10'000'000;    // 10 ms.
    constexpr int64_t kMinWaitSliceNanos = 100'000;    // 100 us.
    const int64_t wait_start = NowNanos();
    std::optional<ReadCompletion> completion;
    while (running && !completion.has_value() &&
           !stopping_.load(std::memory_order_relaxed)) {
      // Hedge first: a straggler past its deadline gets its duplicate
      // submitted before the worker parks again.
      const int64_t next_hedge_wait = maybe_hedge();
      IoScheduler* only_pending = nullptr;
      int backends_pending = 0;
      for (size_t i = 0; i < schedulers.size(); ++i) {
        auto& candidate = schedulers[(wait_cursor + i) % schedulers.size()];
        if (candidate.second->in_flight() == 0) continue;
        ++backends_pending;
        only_pending = candidate.second.get();
        completion = candidate.second->PollCompletion();
        if (completion.has_value()) {
          wait_cursor = (wait_cursor + i + 1) % schedulers.size();
          break;
        }
      }
      if (completion.has_value()) break;
      if (backends_pending == 0) break;  // Defensive; in_flight > 0 here.
      if (backends_pending == 1) {
        // Cut the slice to the next hedge deadline so a straggler's
        // duplicate goes out on time.
        int64_t slice = kWaitSliceNanos;
        if (next_hedge_wait >= 0) {
          slice = std::clamp(next_hedge_wait, kMinWaitSliceNanos, slice);
        }
        auto waited = only_pending->WaitCompletionFor(slice);
        if (!waited.ok()) {
          if (!stopping_.load(std::memory_order_relaxed)) {
            RecordError(waited.status().WithContext("loader I/O stage"));
          }
          running = false;
          break;
        }
        if (waited->has_value()) completion = std::move(**waited);
        continue;  // Timed out: recheck hedges and stopping_.
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    io_stats_.AddBusyNanos(NowNanos() - wait_start);
    if (!running || !completion.has_value()) break;

    // Match the completion to its slot through the cookie. A stale
    // generation is a superseded branch — the loser of a hedge race, or an
    // attempt the slot already finished or failed over past — drop it.
    const uint64_t cookie = completion->user_data;
    const int slot_index = static_cast<int>(cookie & 0xffff);
    const bool hedge_branch = ((cookie >> 16) & 0xffff) == 1;
    Slot& slot = slots[static_cast<size_t>(slot_index)];
    if (static_cast<uint32_t>(cookie >> 32) != slot.generation ||
        slot.branches == 0) {
      continue;
    }
    --slot.branches;
    if (completion->status.ok()) {
      if (hedge_branch) {
        // The duplicate finished first: the slot's plan becomes the
        // alternate it ran against (CompleteFetch and replica scoring
        // route by the plan's replica).
        io_stats_.AddHedgeWin();
        slot.plan.UseAlternate(
            slot.plan.alternates[static_cast<size_t>(slot.hedge_alternate)]);
      }
      source_->ReportFetchOutcome(slot.plan, completion->status);
      record_latency(static_cast<double>(NowNanos() - slot.submit_nanos) *
                     1e-9);
      ++slot.generation;  // A still-racing twin is now a dead letter.
      slot.branches = 0;
      --in_flight;
      io_stats_.SampleInFlight(in_flight);
      if (!finish_slot(slot_index, std::move(completion->bytes))) break;
      continue;
    }
    // This branch failed for good (transient errors already retried below
    // this layer). Score the replica actually attempted, then fail over —
    // unless the hedge twin is still racing, in which case it already is
    // the failover in flight.
    if (hedge_branch) {
      FetchPlan attempted = slot.plan;
      attempted.UseAlternate(
          slot.plan.alternates[static_cast<size_t>(slot.hedge_alternate)]);
      source_->ReportFetchOutcome(attempted, completion->status);
    } else {
      source_->ReportFetchOutcome(slot.plan, completion->status);
    }
    if (slot.branches > 0) continue;
    if (slot.next_alternate < slot.plan.alternates.size()) {
      slot.plan.UseAlternate(slot.plan.alternates[slot.next_alternate]);
      ++slot.next_alternate;
      ++slot.generation;  // New attempt; strays of the old one are dead.
      io_stats_.AddFailover();
      if (!submit_slot(slot_index)) {
        running = false;
        break;
      }
      continue;
    }
    // Replicas exhausted: the fetch is lost and the stream fails.
    RecordError(completion->status.WithContext("loader I/O stage"));
    break;
  }
  // Slots still in flight after Stop() or a failure are dropped here: the
  // schedulers' destructors join their service threads and discard the
  // outstanding completions.
  // Fold the schedulers' op/submit/syscall totals into the stage gauges
  // before they go away — that is where syscalls-per-record comes from.
  for (auto& [scheduler_env, scheduler] : schedulers) {
    (void)scheduler_env;
    io_stats_.AddSchedulerStats(scheduler->stats());
  }
  // Last I/O worker out seals the stage: decode drains what was fetched.
  if (live_io_workers_.fetch_sub(1) == 1) fetch_queue_.Close();
}

Result<LoadedBatch> LoaderPipeline::AssembleAndDecode(
    RawRecord raw, jpeg::DecodeScratch* scratch) {
  const int record = raw.record;
  const int group = raw.scan_group;
  PCR_ASSIGN_OR_RETURN(RecordBatch assembled,
                       source_->AssembleRecord(std::move(raw)));
  if (options_.decode) {
    return DecodeRecordBatch(std::move(assembled), record, group, scratch);
  }
  LoadedBatch batch;
  batch.record_index = record;
  batch.scan_group = group;
  batch.labels = std::move(assembled.labels);
  batch.bytes_read = assembled.bytes_read;
  batch.jpeg_spans = std::move(assembled.spans);
  batch.jpeg_backing = std::move(assembled.backing);
  return batch;
}

void LoaderPipeline::DecodeWorkerLoop() {
  // Per-worker reusable decode buffers: coefficient planes and YCbCr
  // staging are allocated once and recycled across every record this
  // worker decodes.
  jpeg::DecodeScratch scratch;
  std::vector<RawRecord> claimed;
  claimed.reserve(static_cast<size_t>(options_.decode_pop_batch));
  bool running = true;
  while (running) {
    claimed.clear();
    // Claim at most a fair share of the queued records: batching cuts lock
    // churn when the queue runs deep, but near end-of-stream (or with slow
    // storage) grabbing a full batch would serialize records that idle
    // peer workers could decode in parallel.
    const size_t share =
        fetch_queue_.size() / static_cast<size_t>(options_.decode_threads);
    const size_t claim = std::clamp<size_t>(
        share, 1, static_cast<size_t>(options_.decode_pop_batch));
    const int64_t pop_start = NowNanos();
    fetch_queue_.PopMany(claim, &claimed);
    decode_stats_.AddIdleNanos(NowNanos() - pop_start);
    if (claimed.empty()) break;  // Upstream sealed and drained.

    // Claimed records count as in flight until their batch is in the
    // output queue, so consumer stall attribution sees them.
    decode_in_flight_.fetch_add(static_cast<int>(claimed.size()),
                                std::memory_order_relaxed);
    size_t done = 0;
    for (RawRecord& raw : claimed) {
      // Residual items drain normally at end-of-stream, but after Stop() or
      // a stage failure decoding them is wasted work — bail pre-decode.
      if (stopping_.load(std::memory_order_relaxed) || !status().ok()) {
        running = false;
        break;
      }
      const uint64_t bytes = raw.bytes_read;
      const int64_t work_start = NowNanos();
      auto batch = AssembleAndDecode(std::move(raw), &scratch);
      decode_stats_.AddBusyNanos(NowNanos() - work_start);
      if (!batch.ok()) {
        RecordError(batch.status().WithContext("loader decode stage"));
        running = false;
        break;
      }
      decode_stats_.AddItem(bytes);

      // Cache population: the copy happens here, off the consumer path and
      // before the push (so the consumer's batch stays uniquely owned and
      // Next() can steal it without copying); the insert itself — a single
      // move — waits until after the push so the consumer is unblocked
      // first.
      DecodeCache* const cache = options_.decode_cache.get();
      std::optional<LoadedBatch> to_cache;
      DecodeCacheKey cache_key;
      if (cache != nullptr) {
        cache_key = DecodeCacheKey{options_.cache_dataset_id,
                                   batch->record_index, batch->scan_group};
        if (cache->Admits(cache_key, DecodeCache::BatchBytes(*batch))) {
          const int64_t copy_start = NowNanos();
          to_cache.emplace(*batch);
          decode_stats_.AddBytesCopied(DecodeCache::BatchBytes(*batch));
          decode_stats_.AddBusyNanos(NowNanos() - copy_start);
        }
      }

      SharedLoadedBatch item;
      // Deliberately a non-const object under a pointer-to-const: Next() may
      // legally const_cast and steal it when the consumer is the sole owner.
      item.batch = std::make_shared<LoadedBatch>(std::move(batch).MoveValue());
      item.bytes_read = item.batch->bytes_read;
      item.zero_copy = false;

      // Drop the in-flight mark before the push: a consumer woken by this
      // batch then sees a consistent picture (work either in flight or in
      // the output queue, never in the gap between).
      ++done;
      decode_in_flight_.fetch_sub(1, std::memory_order_relaxed);
      const int64_t push_start = NowNanos();
      const bool pushed = output_queue_.Push(std::move(item));
      decode_stats_.AddIdleNanos(NowNanos() - push_start);
      if (!pushed) {  // Queue closed: Stop() or a stage failure.
        running = false;
        break;
      }
      if (to_cache.has_value()) {
        cache->Insert(cache_key, std::move(*to_cache));
      }
      decode_stats_.SampleQueueDepth(output_queue_.size());
    }
    // Un-mark any records this visit abandoned.
    if (done < claimed.size()) {
      decode_in_flight_.fetch_sub(static_cast<int>(claimed.size() - done),
                                  std::memory_order_relaxed);
    }
  }
  // Last decoder out seals the output: the consumer sees end-of-stream.
  if (live_decode_workers_.fetch_sub(1) == 1) output_queue_.Close();
}

Result<LoadedBatch> LoaderPipeline::Next() {
  Result<SharedLoadedBatch> shared = NextShared();
  if (!shared.ok()) return shared.status();
  SharedLoadedBatch item = std::move(shared).MoveValue();
  LoadedBatch out;
  if (!item.zero_copy && item.batch.use_count() == 1) {
    // Sole owner of a decode-stage batch (stored non-const; see
    // DecodeWorkerLoop): steal it instead of copying.
    out = std::move(const_cast<LoadedBatch&>(*item.batch));
  } else {
    // Aliases the decode cache's (genuinely const) entry — value semantics
    // require the deep copy here. Reference consumers use NextShared().
    out = *item.batch;
  }
  out.bytes_read = item.bytes_read;
  return out;
}

Result<SharedLoadedBatch> LoaderPipeline::NextShared() {
  {
    // Fail fast: a recorded stage failure outranks queued batches.
    Status failed = status();
    if (!failed.ok()) return failed;
  }
  std::optional<SharedLoadedBatch> batch = output_queue_.TryPop();
  if (!batch.has_value()) {
    // Raw bytes sitting in (or moving through) the decode stage mean
    // storage has delivered and CPU is the laggard.
    const bool decode_busy_at_start =
        fetch_queue_.size() > 0 ||
        decode_in_flight_.load(std::memory_order_relaxed) > 0;
    const int64_t stall_start = NowNanos();
    batch = output_queue_.Pop();
    const int64_t waited = NowNanos() - stall_start;
    // A data stall — but only if a batch resolved it; a wait ended by
    // Stop(), a stage failure, or end-of-stream is teardown, not stalling.
    // Decode-bound if the decode stage held work at either edge of the
    // stall: at the start it means the stalled-on record was already
    // fetched; at the end it means decode is still backed up. An io-bound
    // stall (storage quiet, decode idle) shows neither — including a stall
    // resolved by a cache hit, which the I/O workers serve.
    if (batch.has_value()) {
      const bool decode_bound =
          decode_busy_at_start || fetch_queue_.size() > 0 ||
          decode_in_flight_.load(std::memory_order_relaxed) > 0;
      (decode_bound ? decode_stall_nanos_ : io_stall_nanos_)
          .fetch_add(waited, std::memory_order_relaxed);
    }
  }
  if (!batch.has_value()) {
    Status failed = status();
    if (!failed.ok()) return failed;
    if (stopping_.load()) return Status::Aborted("loader pipeline stopped");
    return Status::OutOfRange("loader pipeline: end of stream");
  }
  batches_delivered_.fetch_add(1, std::memory_order_relaxed);
  return std::move(*batch);
}

void LoaderPipeline::Stop() {
  stopping_.store(true);
  fetch_queue_.Close();
  output_queue_.Close();
  for (auto& worker : io_workers_) {
    if (worker.joinable()) worker.join();
  }
  if (decode_pool_ != nullptr) decode_pool_->Shutdown();
}

double LoaderPipeline::stall_seconds() const {
  return io_stall_seconds() + decode_stall_seconds();
}

double LoaderPipeline::io_stall_seconds() const {
  return io_stall_nanos_.load(std::memory_order_relaxed) * 1e-9;
}

double LoaderPipeline::decode_stall_seconds() const {
  return decode_stall_nanos_.load(std::memory_order_relaxed) * 1e-9;
}

StageStatsSnapshot LoaderPipeline::io_stats() const {
  StageStatsSnapshot snap =
      io_stats_.Snapshot("io", options_.io_threads, fetch_queue_.capacity());
  snap.submission_window = options_.io_inflight;
  const char* backend = io_backend_name_.load(std::memory_order_relaxed);
  if (backend != nullptr) snap.io_backend = backend;
  if (options_.decode_cache != nullptr) {
    const DecodeCacheStats cache = options_.decode_cache->stats();
    snap.cache_evictions = cache.evictions;
    snap.cache_bytes = cache.bytes_in_use;
  }
  return snap;
}

StageStatsSnapshot LoaderPipeline::decode_stats() const {
  return decode_stats_.Snapshot("decode", options_.decode_threads,
                                output_queue_.capacity());
}

}  // namespace pcr
