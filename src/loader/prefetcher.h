// PrefetchingLoader: the threaded pipeline the paper's loader implements
// ("We use 4 to 8 threads to prefetch data in the loader"): reader workers
// pull records, decode them, and feed a bounded queue consumed by training.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/record_source.h"
#include "loader/data_loader.h"
#include "util/bounded_queue.h"

namespace pcr {

struct PrefetchOptions {
  int num_threads = 4;
  int queue_depth = 8;  // Records buffered ahead of the consumer.
  LoaderOptions loader;
};

/// Wall-clock prefetching wrapper. Worker threads share a sampler (epoch
/// stream is interleaved across workers) and push decoded batches into a
/// bounded queue; Next() pops, blocking on a data stall.
class PrefetchingLoader {
 public:
  PrefetchingLoader(RecordSource* source, PrefetchOptions options);
  ~PrefetchingLoader();

  PrefetchingLoader(const PrefetchingLoader&) = delete;
  PrefetchingLoader& operator=(const PrefetchingLoader&) = delete;

  /// Pops the next batch; blocks while the queue is empty (a data stall).
  /// Returns an error status after Stop().
  Result<LoadedBatch> Next();

  /// Stops workers and drains the queue.
  void Stop();

  /// Total time Next() spent blocked (the data-stall time of §A.1).
  double stall_seconds() const { return stall_seconds_.load(); }
  int64_t batches_delivered() const { return batches_delivered_.load(); }

 private:
  void WorkerLoop(uint64_t seed);

  RecordSource* source_;
  PrefetchOptions options_;
  BoundedQueue<LoadedBatch> queue_;
  std::vector<std::thread> workers_;
  // Work distribution: a shared atomic ticket over an epoch-shuffled order.
  std::mutex sampler_mu_;
  std::unique_ptr<RecordSampler> sampler_;
  std::atomic<bool> stopping_{false};
  std::atomic<double> stall_seconds_{0.0};
  std::atomic<int64_t> batches_delivered_{0};
};

}  // namespace pcr
