// PrefetchingLoader: the threaded loader the paper's pipeline implements
// ("We use 4 to 8 threads to prefetch data in the loader"). Kept as the
// stable consumer-facing API; since the staged-pipeline refactor it is a
// thin adapter over LoaderPipeline, which separates storage fetches from
// JPEG decodes and attributes data stalls per stage.
#pragma once

#include <memory>

#include "core/record_source.h"
#include "loader/data_loader.h"
#include "loader/pipeline.h"

namespace pcr {

struct PrefetchOptions {
  /// Per-stage worker count: `num_threads` fetch workers and as many
  /// parallel decodes, matching the concurrency the pre-pipeline fused
  /// workers provided at the same setting.
  int num_threads = 4;
  int queue_depth = 8;  // Records buffered ahead of the consumer.
  /// Fetches each I/O worker keeps in flight through the Env's async
  /// scheduler (LoaderPipelineOptions::io_inflight).
  int io_inflight = 4;
  LoaderOptions loader;
};

/// Wall-clock prefetching wrapper over the staged LoaderPipeline: fetch and
/// decode workers each get `num_threads` threads, buffering through
/// `queue_depth`-deep queues; Next() pops decoded batches, blocking on a
/// data stall.
class PrefetchingLoader {
 public:
  PrefetchingLoader(RecordSource* source, PrefetchOptions options);

  PrefetchingLoader(const PrefetchingLoader&) = delete;
  PrefetchingLoader& operator=(const PrefetchingLoader&) = delete;

  /// Pops the next batch; blocks while the queue is empty (a data stall).
  /// Returns the first storage/decode failure, or — once already-decoded
  /// batches drain — Aborted after Stop().
  Result<LoadedBatch> Next();

  /// Stops workers; undecoded queued work is dropped.
  void Stop() { pipeline_.Stop(); }

  /// Total time Next() spent blocked (the data-stall time of §A.1), plus the
  /// per-stage attribution of that time.
  double stall_seconds() const { return pipeline_.stall_seconds(); }
  double io_stall_seconds() const { return pipeline_.io_stall_seconds(); }
  double decode_stall_seconds() const {
    return pipeline_.decode_stall_seconds();
  }

  int64_t batches_delivered() const { return pipeline_.batches_delivered(); }

  /// First stage failure (OK while healthy).
  Status status() const { return pipeline_.status(); }

  StageStatsSnapshot io_stats() const { return pipeline_.io_stats(); }
  StageStatsSnapshot decode_stats() const { return pipeline_.decode_stats(); }

  /// Swaps the quality policy on the live pipeline (dynamic tuning).
  void set_scan_policy(std::shared_ptr<ScanGroupPolicy> policy) {
    pipeline_.set_scan_policy(std::move(policy));
  }

  /// Decoded-record cache pass-through (see LoaderOptions.decode_cache).
  const std::shared_ptr<DecodeCache>& decode_cache() const {
    return pipeline_.decode_cache();
  }
  uint64_t cache_dataset_id() const { return pipeline_.cache_dataset_id(); }

 private:
  static LoaderPipelineOptions PipelineOptions(const PrefetchOptions& options);

  LoaderPipeline pipeline_;
};

}  // namespace pcr
