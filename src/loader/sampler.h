// Epoch-based shuffled sampling of record indices.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/random.h"

namespace pcr {

/// Yields every record index exactly once per epoch, reshuffling between
/// epochs (matching record-level shuffling in TFRecord/DALI pipelines; finer
/// in-memory shuffling happens at minibatch assembly).
class RecordSampler {
 public:
  RecordSampler(int num_records, bool shuffle, uint64_t seed)
      : shuffle_(shuffle), rng_(seed), order_(num_records) {
    std::iota(order_.begin(), order_.end(), 0);
    if (shuffle_) rng_.Shuffle(&order_);
  }

  /// Next record index; advances the epoch when the pass completes.
  int Next() {
    if (cursor_ >= order_.size()) {
      cursor_ = 0;
      ++epoch_;
      if (shuffle_) rng_.Shuffle(&order_);
    }
    return order_[cursor_++];
  }

  int epoch() const { return epoch_; }
  size_t records_per_epoch() const { return order_.size(); }
  /// Records remaining before the current epoch ends.
  size_t remaining_in_epoch() const { return order_.size() - cursor_; }

 private:
  bool shuffle_;
  Rng rng_;
  std::vector<int> order_;
  size_t cursor_ = 0;
  int epoch_ = 0;
};

}  // namespace pcr
