// Per-stage counters for the staged loader pipeline. Workers of a stage
// record busy time (doing the stage's work), idle time (blocked on the
// upstream or downstream queue), items and bytes processed, and sampled
// occupancy of the stage's output queue. All counters are lock-free atomics
// so hot paths never serialize on stats.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "storage/env.h"
#include "util/stats.h"

namespace pcr {

/// Fixed-size ring of recent latency samples: recent-window percentiles in
/// O(1) memory over unbounded streams. Mutexed — callers record one sample
/// per I/O or per served batch, which amortizes the lock over work that
/// takes microseconds to milliseconds. Shared by the pipeline's fetch
/// latencies and the serving daemon's per-client queue-wait / batch rings.
class LatencyRing {
 public:
  explicit LatencyRing(size_t capacity = 4096) : capacity_(capacity) {}

  void Add(double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.size() < capacity_) {
      samples_.push_back(seconds);
    } else {
      samples_[next_ % capacity_] = seconds;
    }
    ++next_;
  }

  /// Total samples ever recorded (>= the ring's current size).
  int64_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_;
  }

  /// p50/p99 over the ring's current window; {0, 0} when empty.
  struct Percentiles {
    double p50 = 0;
    double p99 = 0;
    int64_t samples = 0;
  };
  Percentiles Snapshot() const {
    Percentiles out;
    std::lock_guard<std::mutex> lock(mu_);
    out.samples = next_;
    if (!samples_.empty()) {
      SampleSet set;
      for (const double v : samples_) set.Add(v);
      out.p50 = set.Percentile(50.0);
      out.p99 = set.Percentile(99.0);
    }
    return out;
  }

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::vector<double> samples_;
  int64_t next_ = 0;  // Total recorded (ring write cursor).
};

/// Point-in-time copy of one stage's counters, with time in seconds.
struct StageStatsSnapshot {
  std::string name;
  int threads = 0;
  double busy_seconds = 0;  // Summed across the stage's workers.
  double idle_seconds = 0;  // Blocked pushing/popping stage queues.
  int64_t items = 0;        // Records completed by the stage.
  uint64_t bytes = 0;       // Payload bytes through the stage.
  /// Mean items in the stage's output queue, sampled after each push.
  double mean_queue_depth = 0;
  size_t queue_capacity = 0;
  /// Decoded-record cache counters (zero when the pipeline runs cacheless):
  /// hits short-circuit the stage's work entirely, so fig11/fig18 stall
  /// attribution can split cache-served from fetched/decoded items.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;   // Filled from the cache at snapshot time.
  uint64_t cache_bytes = 0;      // Cache byte occupancy at snapshot time.

  /// Submission-window gauges (I/O stage only; zero elsewhere): the mean
  /// number of fetches a worker held in flight, sampled at every submission
  /// and completion, and the configured per-worker window. Occupancy near
  /// 1.0 means the window is the limiter (raising it may help); occupancy
  /// well under 1.0 means tickets or queue space ran out first.
  double mean_in_flight = 0;
  int submission_window = 0;

  /// Scheduler-level I/O gauges (I/O stage only; zero elsewhere), aggregated
  /// from every backend IoScheduler the stage's workers opened. `io_backend`
  /// names the scheduler actually serving reads ("uring", "threads", "sync",
  /// "sim") — what PCR_FORCE_IO / the runtime probe resolved to, which the
  /// configured backend may not be.
  std::string io_backend;
  int64_t io_requests = 0;  // Scatter-gather requests (one per fetch plan).
  int64_t io_segments = 0;  // Byte ranges across those requests.
  int64_t io_ops = 0;       // Kernel-visible ops (SQEs / preads).
  int64_t io_submits = 0;   // Submission boundaries (enters that submitted).
  int64_t io_syscalls = 0;  // Syscalls issued by the schedulers.
  /// Raw prefix-cache traffic (loader/prefix_cache.h): hits turn quality
  /// upgrades into delta reads or skip I/O entirely.
  int64_t prefix_hits = 0;
  int64_t prefix_misses = 0;

  /// Fault-tolerance counters (I/O stage only; zero elsewhere). Retries are
  /// transparent backend resubmissions (folded from scheduler stats);
  /// failovers re-drove a failed fetch against an alternate replica; hedges
  /// duplicated a slow fetch to an alternate, of which hedge_wins finished
  /// before the original. Non-zero values are the observable signature of
  /// degraded mode.
  int64_t io_retries = 0;
  int64_t failovers = 0;
  int64_t hedges = 0;
  int64_t hedge_wins = 0;

  /// Storage-fetch service latency percentiles (submit to completion, I/O
  /// stage only), over a sliding window of recent fetches. Zero when nothing
  /// was fetched (cache-served or fully-resident streams).
  double fetch_p50_sec = 0;
  double fetch_p99_sec = 0;
  int64_t fetch_latency_samples = 0;

  /// Serving-stage counters (the daemon's per-client serve stage; zero for
  /// in-process pipeline stages). `items` counts served batches. Queue wait
  /// is request receipt -> service start (time spent parked behind
  /// admission caps and the fairness scheduler); batch latency is request
  /// receipt -> reply written (the client-visible service time). Both are
  /// sliding-window percentiles like the fetch latencies above.
  double queue_wait_p50_sec = 0;
  double queue_wait_p99_sec = 0;
  int64_t queue_wait_samples = 0;
  double batch_p50_sec = 0;
  double batch_p99_sec = 0;
  int64_t batch_latency_samples = 0;

  /// Data-plane copy accounting. `bytes_copied` counts payload bytes the
  /// stage memcpy'd (socket-plane serialization copies pixels twice — into
  /// the wire struct and again into the frame; the shm plane copies them
  /// once, into the registered slot). `zero_copy_hits` counts cache hits
  /// delivered by reference (shared-ownership LoadedBatch) instead of a deep
  /// copy, and `zero_copy_bytes` the bytes that copy would have moved.
  /// `shm_slot_waits` counts serve-stage blocks waiting for the client to
  /// return a slot — the shm plane's backpressure signal. `shm_batches` is
  /// how many of the stage's batches went out as descriptors; items minus
  /// shm_batches went over the socket plane.
  uint64_t bytes_copied = 0;
  int64_t zero_copy_hits = 0;
  uint64_t zero_copy_bytes = 0;
  int64_t shm_slot_waits = 0;
  int64_t shm_batches = 0;

  /// Mean kernel-visible ops per submission boundary — the submitted-batch
  /// gauge. ~1.0 means no batching (pread per op); >1 means the backend
  /// coalesced ops per syscall.
  double mean_submit_batch() const {
    return io_submits > 0 ? static_cast<double>(io_ops) /
                                static_cast<double>(io_submits)
                          : 0.0;
  }

  /// Scheduler syscalls per record fetched — the figure-of-merit the uring
  /// backend drives down (batched, vectored submission) versus the
  /// pread-per-segment thread backend.
  double syscalls_per_record() const {
    return items > 0 ? static_cast<double>(io_syscalls) /
                           static_cast<double>(items)
                     : 0.0;
  }

  /// busy / (busy + idle): 1.0 means the stage is the bottleneck.
  double utilization() const {
    const double total = busy_seconds + idle_seconds;
    return total > 0 ? busy_seconds / total : 0.0;
  }

  /// mean_in_flight / submission_window: how full workers kept their
  /// submission windows.
  double submission_occupancy() const {
    return submission_window > 0 ? mean_in_flight / submission_window : 0.0;
  }
};

/// Thread-safe accumulator. One instance per pipeline stage, written by every
/// worker of that stage.
class StageStats {
 public:
  void AddBusyNanos(int64_t nanos) {
    busy_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }
  void AddIdleNanos(int64_t nanos) {
    idle_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }
  void AddItem(uint64_t bytes) {
    items_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void SampleQueueDepth(size_t depth) {
    queue_depth_sum_.fetch_add(static_cast<int64_t>(depth),
                               std::memory_order_relaxed);
    queue_depth_samples_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddCacheHit() { cache_hits_.fetch_add(1, std::memory_order_relaxed); }
  void AddCacheMiss() {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void SampleInFlight(int depth) {
    in_flight_sum_.fetch_add(depth, std::memory_order_relaxed);
    in_flight_samples_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Folds one backend scheduler's counters in (workers call this once per
  /// scheduler at exit — the counters are totals, not deltas).
  void AddSchedulerStats(const IoSchedulerStats& io) {
    io_requests_.fetch_add(io.requests, std::memory_order_relaxed);
    io_segments_.fetch_add(io.segments, std::memory_order_relaxed);
    io_ops_.fetch_add(io.ops, std::memory_order_relaxed);
    io_submits_.fetch_add(io.submits, std::memory_order_relaxed);
    io_syscalls_.fetch_add(io.syscalls, std::memory_order_relaxed);
    io_retries_.fetch_add(io.retries, std::memory_order_relaxed);
  }
  void AddPrefixHit() {
    prefix_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddPrefixMiss() {
    prefix_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddFailover() { failovers_.fetch_add(1, std::memory_order_relaxed); }
  void AddHedge() { hedges_.fetch_add(1, std::memory_order_relaxed); }
  void AddHedgeWin() { hedge_wins_.fetch_add(1, std::memory_order_relaxed); }

  /// Records one storage fetch's submit-to-completion latency (ring-
  /// windowed; see LatencyRing).
  void AddFetchLatency(double seconds) { fetch_latencies_.Add(seconds); }

  /// Serving-stage latencies: request receipt -> service start, and request
  /// receipt -> reply written. The daemon keeps one StageStats per client
  /// stream and records both per served batch.
  void AddQueueWait(double seconds) { queue_waits_.Add(seconds); }
  void AddBatchLatency(double seconds) { batch_latencies_.Add(seconds); }

  /// Data-plane copy accounting (see StageStatsSnapshot field docs).
  void AddBytesCopied(uint64_t bytes) {
    bytes_copied_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void AddZeroCopyHit(uint64_t bytes_saved) {
    zero_copy_hits_.fetch_add(1, std::memory_order_relaxed);
    zero_copy_bytes_.fetch_add(bytes_saved, std::memory_order_relaxed);
  }
  void AddShmSlotWait() {
    shm_slot_waits_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddShmBatch() { shm_batches_.fetch_add(1, std::memory_order_relaxed); }

  StageStatsSnapshot Snapshot(std::string name, int threads,
                              size_t queue_capacity) const {
    StageStatsSnapshot snap;
    snap.name = std::move(name);
    snap.threads = threads;
    snap.busy_seconds = busy_nanos_.load(std::memory_order_relaxed) * 1e-9;
    snap.idle_seconds = idle_nanos_.load(std::memory_order_relaxed) * 1e-9;
    snap.items = items_.load(std::memory_order_relaxed);
    snap.bytes = bytes_.load(std::memory_order_relaxed);
    const int64_t samples =
        queue_depth_samples_.load(std::memory_order_relaxed);
    snap.mean_queue_depth =
        samples > 0 ? static_cast<double>(queue_depth_sum_.load(
                          std::memory_order_relaxed)) /
                          static_cast<double>(samples)
                    : 0.0;
    snap.queue_capacity = queue_capacity;
    snap.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    snap.cache_misses = cache_misses_.load(std::memory_order_relaxed);
    const int64_t in_flight_samples =
        in_flight_samples_.load(std::memory_order_relaxed);
    snap.mean_in_flight =
        in_flight_samples > 0
            ? static_cast<double>(
                  in_flight_sum_.load(std::memory_order_relaxed)) /
                  static_cast<double>(in_flight_samples)
            : 0.0;
    snap.io_requests = io_requests_.load(std::memory_order_relaxed);
    snap.io_segments = io_segments_.load(std::memory_order_relaxed);
    snap.io_ops = io_ops_.load(std::memory_order_relaxed);
    snap.io_submits = io_submits_.load(std::memory_order_relaxed);
    snap.io_syscalls = io_syscalls_.load(std::memory_order_relaxed);
    snap.prefix_hits = prefix_hits_.load(std::memory_order_relaxed);
    snap.prefix_misses = prefix_misses_.load(std::memory_order_relaxed);
    snap.io_retries = io_retries_.load(std::memory_order_relaxed);
    snap.failovers = failovers_.load(std::memory_order_relaxed);
    snap.hedges = hedges_.load(std::memory_order_relaxed);
    snap.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
    const LatencyRing::Percentiles fetch = fetch_latencies_.Snapshot();
    snap.fetch_p50_sec = fetch.p50;
    snap.fetch_p99_sec = fetch.p99;
    snap.fetch_latency_samples = fetch.samples;
    const LatencyRing::Percentiles waits = queue_waits_.Snapshot();
    snap.queue_wait_p50_sec = waits.p50;
    snap.queue_wait_p99_sec = waits.p99;
    snap.queue_wait_samples = waits.samples;
    const LatencyRing::Percentiles batches = batch_latencies_.Snapshot();
    snap.batch_p50_sec = batches.p50;
    snap.batch_p99_sec = batches.p99;
    snap.batch_latency_samples = batches.samples;
    snap.bytes_copied = bytes_copied_.load(std::memory_order_relaxed);
    snap.zero_copy_hits = zero_copy_hits_.load(std::memory_order_relaxed);
    snap.zero_copy_bytes = zero_copy_bytes_.load(std::memory_order_relaxed);
    snap.shm_slot_waits = shm_slot_waits_.load(std::memory_order_relaxed);
    snap.shm_batches = shm_batches_.load(std::memory_order_relaxed);
    return snap;
  }

 private:
  std::atomic<int64_t> busy_nanos_{0};
  std::atomic<int64_t> idle_nanos_{0};
  std::atomic<int64_t> items_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<int64_t> queue_depth_sum_{0};
  std::atomic<int64_t> queue_depth_samples_{0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> cache_misses_{0};
  std::atomic<int64_t> in_flight_sum_{0};
  std::atomic<int64_t> in_flight_samples_{0};
  std::atomic<int64_t> io_requests_{0};
  std::atomic<int64_t> io_segments_{0};
  std::atomic<int64_t> io_ops_{0};
  std::atomic<int64_t> io_submits_{0};
  std::atomic<int64_t> io_syscalls_{0};
  std::atomic<int64_t> prefix_hits_{0};
  std::atomic<int64_t> prefix_misses_{0};
  std::atomic<int64_t> io_retries_{0};
  std::atomic<int64_t> failovers_{0};
  std::atomic<int64_t> hedges_{0};
  std::atomic<int64_t> hedge_wins_{0};
  std::atomic<uint64_t> bytes_copied_{0};
  std::atomic<int64_t> zero_copy_hits_{0};
  std::atomic<uint64_t> zero_copy_bytes_{0};
  std::atomic<int64_t> shm_slot_waits_{0};
  std::atomic<int64_t> shm_batches_{0};

  LatencyRing fetch_latencies_;
  LatencyRing queue_waits_;
  LatencyRing batch_latencies_;
};

}  // namespace pcr
