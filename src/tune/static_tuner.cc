#include "tune/static_tuner.h"

#include <algorithm>

#include "image/metrics.h"
#include "jpeg/codec.h"
#include "util/random.h"

namespace pcr {

Result<std::vector<ScanGroupQuality>> ProfileScanGroups(
    RecordSource* source, const StaticTunerOptions& options) {
  const int num_groups = source->num_scan_groups();
  std::vector<ScanGroupQuality> profile(num_groups);
  std::vector<SampleSet> mssim(num_groups);
  std::vector<double> bytes(num_groups, 0.0);

  Rng rng(options.seed);
  int sampled = 0;
  const int num_records = source->num_records();
  std::vector<int> record_order(num_records);
  for (int i = 0; i < num_records; ++i) record_order[i] = i;
  rng.Shuffle(&record_order);

  for (int r : record_order) {
    if (sampled >= options.sample_images) break;
    // Full-quality reference batch.
    PCR_ASSIGN_OR_RETURN(RecordBatch full,
                         source->ReadRecord(r, num_groups));
    const int take = std::min<int>(full.size(),
                                   options.sample_images - sampled);
    std::vector<Image> references;
    std::vector<int> picks;
    for (int i = 0; i < take; ++i) {
      const int idx = static_cast<int>(rng.Uniform(full.size()));
      picks.push_back(idx);
      PCR_ASSIGN_OR_RETURN(Image ref, jpeg::Decode(full.jpeg(idx)));
      references.push_back(std::move(ref));
    }
    for (int g = 1; g <= num_groups; ++g) {
      PCR_ASSIGN_OR_RETURN(RecordBatch batch, source->ReadRecord(r, g));
      for (int i = 0; i < take; ++i) {
        const int idx = picks[i];
        PCR_ASSIGN_OR_RETURN(Image img, jpeg::Decode(batch.jpeg(idx)));
        mssim[g - 1].Add(Msssim(references[i], img));
      }
    }
    sampled += take;
  }

  for (int g = 1; g <= num_groups; ++g) {
    profile[g - 1].scan_group = g;
    profile[g - 1].mean_mssim = mssim[g - 1].Mean();
    profile[g - 1].p25_mssim = mssim[g - 1].Iqr25();
    profile[g - 1].p75_mssim = mssim[g - 1].Iqr75();
    profile[g - 1].mean_bytes_per_image = source->MeanImageBytes(g);
  }
  return profile;
}

int PickFromProfile(const std::vector<ScanGroupQuality>& profile,
                    double threshold) {
  for (const auto& q : profile) {
    if (q.mean_mssim >= threshold) return q.scan_group;
  }
  return profile.empty() ? 1 : profile.back().scan_group;
}

Result<int> PickScanGroupStatic(RecordSource* source,
                                const StaticTunerOptions& options) {
  PCR_ASSIGN_OR_RETURN(auto profile, ProfileScanGroups(source, options));
  return PickFromProfile(profile, options.mssim_threshold);
}

}  // namespace pcr
