// Dynamic (in-training) scan-group controllers.
//
// LossPlateauTuner (§4.5): train at full quality until the loss plateaus,
// then checkpoint, probe each candidate group for a few epochs, roll back,
// and continue at the cheapest group whose loss progress keeps up.
//
// CosineTuner (§A.6.2): at scheduled epochs, compare each candidate group's
// full-batch gradient against the full-quality gradient and pick the
// cheapest group whose cosine similarity clears a threshold (0.9 in the
// paper). Optionally wraps the choice in a mixture policy (§A.6.3).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "loader/scan_policy.h"
#include "train/trainer.h"

namespace pcr {

class DecodeCache;  // loader/decode_cache.h

/// A tuning event (for benchmark traces).
struct TuneEvent {
  int epoch = 0;
  int chosen_group = 0;
  /// (group, score) pairs examined; score is loss for the plateau tuner and
  /// cosine similarity for the cosine tuner.
  std::vector<std::pair<int, double>> probes;
  /// Simulated-time cost accounting: number of probe epochs executed.
  int probe_epochs = 0;
};

struct CosineTunerOptions {
  std::vector<int> candidate_groups = {1, 2, 5, 10};
  double cosine_threshold = 0.90;
  /// First tuning epoch (model warms up at full quality first).
  int first_tune_epoch = 5;
  /// Re-tune period after that.
  int tune_every = 30;
  /// Gradient sample size (0 = full training set).
  int gradient_examples = 512;
  /// Mixture weight on the selected group (0 disables mixing; 10 -> ~50%,
  /// 100 -> ~85% for 10 groups).
  double mixture_weight = 0.0;
  /// Decoded-record cache of the live loader (optional). On a group switch
  /// the tuner drops only the *outgoing* group's entries — freeing budget
  /// for the incoming group's working set — instead of flushing groups that
  /// still serve hits (e.g. the other live groups of a mixture policy).
  std::shared_ptr<DecodeCache> decode_cache;
  uint64_t cache_dataset_id = 0;
};

class CosineTuner {
 public:
  explicit CosineTuner(CosineTunerOptions options)
      : options_(std::move(options)) {}

  /// Called before each training epoch. May evaluate gradient cosines (cheap
  /// relative to an epoch; no parameter changes). Returns the policy to use
  /// this epoch.
  std::shared_ptr<ScanGroupPolicy> Advise(Trainer* trainer);

  int current_group() const { return current_group_; }
  const std::vector<TuneEvent>& events() const { return events_; }

 private:
  CosineTunerOptions options_;
  int current_group_ = 0;  // 0 = full quality (not yet tuned).
  std::vector<TuneEvent> events_;
};

struct LossPlateauTunerOptions {
  std::vector<int> candidate_groups = {1, 2, 5, 10};
  /// Plateau: relative loss improvement over the window below this.
  double plateau_rel_improvement = 0.02;
  int plateau_window = 4;
  /// Probe epochs trained per candidate during a tuning phase.
  int probe_epochs = 1;
  /// Accept the cheapest group whose probe loss is within this factor of
  /// the best candidate's probe loss.
  double accept_ratio = 1.05;
  int min_epochs_between_tunes = 10;
  /// Same targeted-invalidation hook as CosineTunerOptions.
  std::shared_ptr<DecodeCache> decode_cache;
  uint64_t cache_dataset_id = 0;
};

class LossPlateauTuner {
 public:
  explicit LossPlateauTuner(LossPlateauTunerOptions options)
      : options_(std::move(options)) {}

  /// Runs one training epoch through the tuner: trains at the current group,
  /// and if a plateau is detected runs the checkpoint/probe/rollback cycle
  /// (those probe epochs are real SGD epochs that the caller should charge
  /// simulated time for via the returned event's probe_epochs). Returns the
  /// epoch's training loss.
  double Step(Trainer* trainer);

  int current_group() const { return current_group_; }
  const std::vector<TuneEvent>& events() const { return events_; }

 private:
  bool PlateauDetected() const;

  LossPlateauTunerOptions options_;
  int current_group_ = 0;  // 0 = full quality.
  std::vector<double> loss_history_;
  int last_tune_epoch_ = -1000;
  std::vector<TuneEvent> events_;
};

}  // namespace pcr
