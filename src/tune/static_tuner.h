// Static (pre-training) scan-group selection via MSSIM (§4.4, §A.6.1):
// decode a sample of images at every scan group, measure MSSIM against the
// full-quality reconstruction, and pick the smallest group above a quality
// threshold. Scan groups with MSSIM >= 0.95 "consistently perform well".
#pragma once

#include <vector>

#include "core/record_source.h"
#include "util/result.h"
#include "util/stats.h"

namespace pcr {

struct StaticTunerOptions {
  double mssim_threshold = 0.95;
  /// Images sampled for the estimate (spread over records).
  int sample_images = 64;
  uint64_t seed = 5;
};

/// Per-group quality estimates.
struct ScanGroupQuality {
  int scan_group = 0;
  double mean_mssim = 0.0;
  double p25_mssim = 0.0;
  double p75_mssim = 0.0;
  double mean_bytes_per_image = 0.0;
};

/// MSSIM profile of a progressive source: one entry per scan group,
/// ascending. (This is Figure 17's data.)
Result<std::vector<ScanGroupQuality>> ProfileScanGroups(
    RecordSource* source, const StaticTunerOptions& options);

/// Smallest scan group whose mean MSSIM clears the threshold (falls back to
/// the last group).
Result<int> PickScanGroupStatic(RecordSource* source,
                                const StaticTunerOptions& options);

/// Convenience: picks from an existing profile.
int PickFromProfile(const std::vector<ScanGroupQuality>& profile,
                    double threshold);

}  // namespace pcr
