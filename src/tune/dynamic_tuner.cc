#include "tune/dynamic_tuner.h"

#include <algorithm>

#include "loader/decode_cache.h"
#include "util/logging.h"

namespace pcr {

namespace {

// A scan-group switch makes the outgoing group's cached decodes dead weight;
// drop exactly those so the incoming group's working set inherits the
// budget, while entries at every other group (mixture policies keep several
// live) continue serving hits.
void InvalidateOutgoingGroup(DecodeCache* cache, uint64_t dataset_id,
                             int outgoing_group, int incoming_group) {
  if (cache == nullptr || outgoing_group == incoming_group) return;
  cache->InvalidateScanGroup(dataset_id, outgoing_group);
}

// Probe traffic is one-shot: every candidate group is read once and, unless
// adopted, never again at that group. Marking the candidates for the probe
// cycle makes the cache skip population (admission control) instead of
// evicting the live working set; unmarking afterwards restores normal
// admission for whichever group the tuner adopts.
class ScopedProbeMarks {
 public:
  ScopedProbeMarks(DecodeCache* cache, uint64_t dataset_id,
                   const std::vector<int>& groups)
      : cache_(cache), dataset_id_(dataset_id), groups_(groups) {
    if (cache_ == nullptr) return;
    for (int g : groups_) cache_->MarkProbeScanGroup(dataset_id_, g);
  }
  ~ScopedProbeMarks() {
    if (cache_ == nullptr) return;
    for (int g : groups_) cache_->UnmarkProbeScanGroup(dataset_id_, g);
  }

  ScopedProbeMarks(const ScopedProbeMarks&) = delete;
  ScopedProbeMarks& operator=(const ScopedProbeMarks&) = delete;

 private:
  DecodeCache* cache_;
  uint64_t dataset_id_;
  std::vector<int> groups_;
};

}  // namespace

std::shared_ptr<ScanGroupPolicy> CosineTuner::Advise(Trainer* trainer) {
  const int epoch = trainer->epoch();
  const int max_group = trainer->dataset()->max_group();
  const bool tune_now =
      epoch == options_.first_tune_epoch ||
      (epoch > options_.first_tune_epoch &&
       (epoch - options_.first_tune_epoch) % options_.tune_every == 0);

  if (tune_now) {
    TuneEvent event;
    event.epoch = epoch;
    int chosen = max_group;
    // Candidates ascending: pick the first (cheapest) clearing the bar.
    std::vector<int> candidates = options_.candidate_groups;
    std::sort(candidates.begin(), candidates.end());
    {
      ScopedProbeMarks probe_marks(options_.decode_cache.get(),
                                   options_.cache_dataset_id, candidates);
      for (int g : candidates) {
        const double cosine =
            trainer->GradientCosine(g, options_.gradient_examples);
        event.probes.emplace_back(g, cosine);
        if (cosine >= options_.cosine_threshold && chosen == max_group &&
            g < chosen) {
          chosen = g;
        }
      }
    }
    const int previous = current_group_ == 0 ? max_group : current_group_;
    InvalidateOutgoingGroup(options_.decode_cache.get(),
                            options_.cache_dataset_id, previous, chosen);
    current_group_ = chosen;
    event.chosen_group = chosen;
    events_.push_back(std::move(event));
  }

  const int group = current_group_ == 0 ? max_group : current_group_;
  if (options_.mixture_weight > 0.0) {
    return std::make_shared<MixtureScanPolicy>(
        MixtureScanPolicy::PaperMixture(max_group, group,
                                        options_.mixture_weight));
  }
  return std::make_shared<FixedScanPolicy>(group);
}

bool LossPlateauTuner::PlateauDetected() const {
  const int w = options_.plateau_window;
  if (static_cast<int>(loss_history_.size()) < 2 * w) return false;
  double recent = 0, earlier = 0;
  for (int i = 0; i < w; ++i) {
    recent += loss_history_[loss_history_.size() - 1 - i];
    earlier += loss_history_[loss_history_.size() - 1 - w - i];
  }
  recent /= w;
  earlier /= w;
  if (earlier <= 1e-9) return true;
  return (earlier - recent) / earlier < options_.plateau_rel_improvement;
}

double LossPlateauTuner::Step(Trainer* trainer) {
  const int max_group = trainer->dataset()->max_group();
  const int group = current_group_ == 0 ? max_group : current_group_;

  // Tuning phase: triggered by plateau, rate-limited.
  if (PlateauDetected() &&
      trainer->epoch() - last_tune_epoch_ >=
          options_.min_epochs_between_tunes) {
    TuneEvent event;
    event.epoch = trainer->epoch();
    const auto checkpoint = trainer->Checkpoint();

    std::vector<int> candidates = options_.candidate_groups;
    std::sort(candidates.begin(), candidates.end());
    double best_loss = 1e300;
    std::vector<std::pair<int, double>> probe_losses;
    {
      ScopedProbeMarks probe_marks(options_.decode_cache.get(),
                                   options_.cache_dataset_id, candidates);
      for (int g : candidates) {
        trainer->Restore(checkpoint);
        double loss = 0.0;
        for (int p = 0; p < options_.probe_epochs; ++p) {
          loss = trainer->RunEpoch(g);
          ++event.probe_epochs;
        }
        probe_losses.emplace_back(g, loss);
        best_loss = std::min(best_loss, loss);
      }
      trainer->Restore(checkpoint);
    }
    event.probes = probe_losses;

    int chosen = max_group;
    for (const auto& [g, loss] : probe_losses) {
      if (loss <= best_loss * options_.accept_ratio) {
        chosen = g;
        break;  // Candidates ascending: first acceptable is cheapest.
      }
    }
    InvalidateOutgoingGroup(options_.decode_cache.get(),
                            options_.cache_dataset_id, group, chosen);
    current_group_ = chosen;
    event.chosen_group = chosen;
    events_.push_back(std::move(event));
    last_tune_epoch_ = trainer->epoch();
    loss_history_.clear();

    const double loss = trainer->RunEpoch(chosen);
    loss_history_.push_back(loss);
    return loss;
  }

  const double loss = trainer->RunEpoch(group);
  loss_history_.push_back(loss);
  return loss;
}

}  // namespace pcr
