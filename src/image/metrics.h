// Image quality metrics: PSNR, SSIM, and MS-SSIM (the paper's "MSSIM",
// Wang/Simoncelli/Bovik 2003) — the quantity Figures 7 and 17 are built on.
#pragma once

#include "image/image.h"

namespace pcr {

/// Mean squared error over all samples of two same-shape images.
double Mse(const Image& a, const Image& b);

/// Peak signal-to-noise ratio in dB (infinity for identical images is
/// reported as 99.0).
double Psnr(const Image& a, const Image& b);

/// Single-scale SSIM with the standard 11x11 Gaussian window (sigma 1.5),
/// computed on luma. Returns the mean SSIM map value in [-1, 1].
double Ssim(const Image& a, const Image& b);

/// Multi-scale SSIM (MSSIM) per Wang et al. 2003: contrast/structure terms
/// at up to 5 dyadic scales with weights {0.0448, 0.2856, 0.3001, 0.2363,
/// 0.1333}, luminance at the coarsest. For small images the scale count is
/// reduced and weights renormalized (documented deviation; required because
/// several datasets train at 224–256 px).
double Msssim(const Image& a, const Image& b);

}  // namespace pcr
