#include "image/ppm.h"

#include <cctype>
#include <cstdio>

namespace pcr {

std::string EncodePpm(const Image& img) {
  char header[64];
  const int len = snprintf(header, sizeof(header), "P%c\n%d %d\n255\n",
                           img.channels() == 3 ? '6' : '5', img.width(),
                           img.height());
  std::string out(header, len);
  out.append(reinterpret_cast<const char*>(img.data()), img.size_bytes());
  return out;
}

namespace {
bool ParseInt(Slice* data, int* out) {
  // Skip whitespace and comments.
  while (!data->empty()) {
    const char c = (*data)[0];
    if (c == '#') {
      while (!data->empty() && (*data)[0] != '\n') data->RemovePrefix(1);
    } else if (isspace(static_cast<unsigned char>(c))) {
      data->RemovePrefix(1);
    } else {
      break;
    }
  }
  if (data->empty() || !isdigit(static_cast<unsigned char>((*data)[0]))) {
    return false;
  }
  long v = 0;
  while (!data->empty() && isdigit(static_cast<unsigned char>((*data)[0]))) {
    v = v * 10 + ((*data)[0] - '0');
    if (v > 1 << 30) return false;
    data->RemovePrefix(1);
  }
  *out = static_cast<int>(v);
  return true;
}
}  // namespace

Result<Image> DecodePpm(Slice data) {
  if (data.size() < 2 || data[0] != 'P' || (data[1] != '5' && data[1] != '6')) {
    return Status::InvalidArgument("not a binary PPM/PGM");
  }
  const int channels = data[1] == '6' ? 3 : 1;
  data.RemovePrefix(2);
  int w, h, maxval;
  if (!ParseInt(&data, &w) || !ParseInt(&data, &h) ||
      !ParseInt(&data, &maxval)) {
    return Status::Corruption("bad PPM header");
  }
  if (maxval != 255) return Status::NotSupported("only maxval 255 supported");
  if (data.empty()) return Status::Corruption("missing pixel data");
  data.RemovePrefix(1);  // Single whitespace after maxval.
  const size_t need = static_cast<size_t>(w) * h * channels;
  if (data.size() < need) return Status::Corruption("truncated pixel data");
  Image img(w, h, channels);
  std::copy(data.udata(), data.udata() + need, img.data());
  return img;
}

}  // namespace pcr
