// RGB <-> YCbCr (BT.601 full-range, the JFIF convention) and chroma
// subsampling / upsampling.
//
// The decode direction (YCbCr -> RGB) is integer fixed point: the scalar
// formulas below are the canonical definition, and YcbcrToRgb's table-driven
// implementation is constructed from them, so a naive per-pixel loop (the
// reference codec) and the table path produce bit-identical pixels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "image/image.h"

namespace pcr {

/// Chroma subsampling factors supported by the codec.
enum class ChromaSubsampling {
  k444,  // No subsampling.
  k420,  // Chroma halved in both dimensions.
};

namespace ycc {

/// Fixed-point scale for the BT.601 conversion constants.
inline constexpr int kScaleBits = 16;
inline constexpr int kHalf = 1 << (kScaleBits - 1);
// round(coefficient * 2^16).
inline constexpr int kCrToR = 91881;    // 1.402
inline constexpr int kCbToG = 22554;    // 0.344136
inline constexpr int kCrToG = 46802;    // 0.714136
inline constexpr int kCbToB = 116130;   // 1.772
// Bias added before every right shift so the shifted value is always
// non-negative (>> of a negative value is implementation-defined pre-C++20);
// subtracted back out after the shift.
inline constexpr int kShiftBias = 256 << kScaleBits;

/// R - Y contribution of Cr (integer, exact for all cr in [0, 255]).
inline int CrToR(int cr) {
  return ((kCrToR * (cr - 128) + kHalf + kShiftBias) >> kScaleBits) - 256;
}

/// B - Y contribution of Cb.
inline int CbToB(int cb) {
  return ((kCbToB * (cb - 128) + kHalf + kShiftBias) >> kScaleBits) - 256;
}

/// G - Y contribution of (Cb, Cr).
inline int CbCrToG(int cb, int cr) {
  return ((-kCbToG * (cb - 128) - kCrToG * (cr - 128) + kHalf + kShiftBias) >>
          kScaleBits) -
         256;
}

inline uint8_t ClampToByte(int v) {
  if (v < 0) return 0;
  if (v > 255) return 255;
  return static_cast<uint8_t>(v);
}

/// One YCbCr sample triple to RGB — the canonical scalar conversion.
inline void ToRgb(int y, int cb, int cr, uint8_t* r, uint8_t* g, uint8_t* b) {
  *r = ClampToByte(y + CrToR(cr));
  *g = ClampToByte(y + CbCrToG(cb, cr));
  *b = ClampToByte(y + CbToB(cb));
}

/// 2x bilinear chroma upsample at full-resolution pixel (i, j) from a
/// half-resolution plane: fixed 1/4-3/4 phase (chroma centers between
/// pixel pairs), edge replication, rounded to the nearest 8-bit value.
/// The canonical definition shared by the table-driven decoder and the
/// reference codec.
inline int UpsampleAt(const Plane& p, int i, int j) {
  const int x0 = (i & 1) ? (i >> 1) : (i >> 1) - 1;
  const int y0 = (j & 1) ? (j >> 1) : (j >> 1) - 1;
  const int wx1 = (i & 1) ? 1 : 3;  // Weight of column x0 + 1, in quarters.
  const int wy1 = (j & 1) ? 1 : 3;
  const int v00 = p.at_clamped(x0, y0);
  const int v10 = p.at_clamped(x0 + 1, y0);
  const int v01 = p.at_clamped(x0, y0 + 1);
  const int v11 = p.at_clamped(x0 + 1, y0 + 1);
  return ((4 - wx1) * (4 - wy1) * v00 + wx1 * (4 - wy1) * v10 +
          (4 - wx1) * wy1 * v01 + wx1 * wy1 * v11 + 8) >>
         4;
}

}  // namespace ycc

/// Converts an RGB (or grayscale) image to planar YCbCr with the requested
/// subsampling. Grayscale input yields a single-plane output.
PlanarImage RgbToYcbcr(const Image& rgb, ChromaSubsampling subsampling);

/// Reusable row buffers for YcbcrToRgb's subsampled path: two full-width
/// upsampled chroma rows, 32-byte aligned for the SIMD row kernels. Decode
/// scratch holds one so multi-image loops do not reallocate per frame.
class ColorScratch {
 public:
  /// Ensures capacity for two `w`-byte rows. Never shrinks the buffer.
  void Reserve(int w) {
    pitch_ = RowPitch(w);
    const size_t need = 2 * pitch_ + 31;
    if (buf_.size() < need) buf_.resize(need);
  }

  uint8_t* cb_row() { return AlignedBase(); }
  uint8_t* cr_row() { return AlignedBase() + pitch_; }

 private:
  static size_t RowPitch(int w) {
    return (static_cast<size_t>(w) + 31) & ~size_t{31};
  }
  uint8_t* AlignedBase() {
    const auto p = reinterpret_cast<uintptr_t>(buf_.data());
    return buf_.data() + ((-p) & 31);
  }

  std::vector<uint8_t> buf_;
  size_t pitch_ = 0;
};

/// Converts planar YCbCr back to interleaved RGB (or grayscale for
/// single-plane inputs), upsampling subsampled chroma bilinearly at fixed
/// 1/4-3/4 phase (centers-aligned, edge-replicated) before the integer
/// conversion above. Runs on the runtime-dispatched arch:: row kernels;
/// every kernel tier is bit-identical to the per-pixel scalar formulas.
/// `scratch` (optional) avoids per-call row-buffer allocation.
Image YcbcrToRgb(const PlanarImage& ycbcr, ColorScratch* scratch = nullptr);

/// Extracts the luma channel (grayscale) of an interleaved image.
Image ToGrayscale(const Image& img);

}  // namespace pcr
