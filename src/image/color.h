// RGB <-> YCbCr (BT.601 full-range, the JFIF convention) and chroma
// subsampling / upsampling.
#pragma once

#include "image/image.h"

namespace pcr {

/// Chroma subsampling factors supported by the codec.
enum class ChromaSubsampling {
  k444,  // No subsampling.
  k420,  // Chroma halved in both dimensions.
};

/// Converts an RGB (or grayscale) image to planar YCbCr with the requested
/// subsampling. Grayscale input yields a single-plane output.
PlanarImage RgbToYcbcr(const Image& rgb, ChromaSubsampling subsampling);

/// Converts planar YCbCr back to interleaved RGB (or grayscale for
/// single-plane inputs), upsampling chroma bilinearly when subsampled.
Image YcbcrToRgb(const PlanarImage& ycbcr);

/// Extracts the luma channel (grayscale) of an interleaved image.
Image ToGrayscale(const Image& img);

}  // namespace pcr
