// Procedural image synthesis primitives. The data module composes these into
// labelled datasets whose class-discriminative structure lives at a
// controllable spatial scale — the knob that makes a synthetic task
// "fine-grained" (high-frequency class signal, destroyed by early JPEG
// scans) or "easy" (low-frequency signal that survives scan 1).
#pragma once

#include <vector>

#include "image/image.h"
#include "util/random.h"

namespace pcr {

/// A signed Gaussian blob: additive luminance bump at (x, y) (in [0,1]
/// normalized image coordinates) with radius in pixels.
struct Blob {
  double x = 0.5;
  double y = 0.5;
  double radius_px = 8.0;
  double amplitude = 40.0;  // Signed.
};

/// Deterministically samples `count` blobs from `rng` with radii around
/// `radius_px` (+/-25%) and amplitudes +/- `amplitude`.
std::vector<Blob> SampleBlobs(int count, double radius_px, double amplitude,
                              Rng* rng);

/// Parameters for a natural-image-like background.
struct BackgroundParams {
  int octaves = 5;          // Value-noise octaves, coarse to fine.
  double contrast = 55.0;   // Amplitude of the coarsest octave.
  double persistence = 0.55;  // Amplitude falloff per octave.
  double base_luma = 128.0;
};

/// Fills a float luma buffer (row-major, w*h) with multi-octave value noise
/// plus the base level. Each call draws fresh noise from `rng`.
void RenderBackground(int w, int h, const BackgroundParams& params, Rng* rng,
                      std::vector<float>* luma);

/// Adds blobs to a float luma buffer. `dx, dy` translate the whole pattern
/// (pixels), modeling object-position jitter between instances.
void RenderBlobs(int w, int h, const std::vector<Blob>& blobs, double dx,
                 double dy, std::vector<float>* luma);

/// Adds zero-mean Gaussian pixel noise.
void AddNoise(double stddev, Rng* rng, std::vector<float>* luma);

/// Converts a float luma buffer to an image. When `color` is true a smooth
/// random tint field (low-frequency chroma) is layered on so chroma planes
/// carry realistic energy; otherwise the output is grayscale.
Image LumaToImage(int w, int h, const std::vector<float>& luma, bool color,
                  Rng* rng);

}  // namespace pcr
