// Core image containers: interleaved 8-bit images (loader/training side) and
// planar images (JPEG codec side, where chroma planes may be subsampled).
#pragma once

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace pcr {

/// Interleaved 8-bit image, row-major, `channels` samples per pixel.
/// channels == 1 (grayscale) or 3 (RGB) throughout this library.
class Image {
 public:
  Image() = default;
  Image(int width, int height, int channels, uint8_t fill = 0)
      : width_(width), height_(height), channels_(channels),
        data_(static_cast<size_t>(width) * height * channels, fill) {
    PCR_CHECK_GT(width, 0);
    PCR_CHECK_GT(height, 0);
    PCR_CHECK(channels == 1 || channels == 3);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  int channels() const { return channels_; }
  bool empty() const { return data_.empty(); }
  size_t size_bytes() const { return data_.size(); }

  uint8_t* data() { return data_.data(); }
  const uint8_t* data() const { return data_.data(); }

  uint8_t at(int x, int y, int c) const {
    return data_[(static_cast<size_t>(y) * width_ + x) * channels_ + c];
  }
  void set(int x, int y, int c, uint8_t v) {
    data_[(static_cast<size_t>(y) * width_ + x) * channels_ + c] = v;
  }

  /// Row pointer (start of row y).
  const uint8_t* row(int y) const {
    return data_.data() + static_cast<size_t>(y) * width_ * channels_;
  }
  uint8_t* row(int y) {
    return data_.data() + static_cast<size_t>(y) * width_ * channels_;
  }

  bool SameShape(const Image& other) const {
    return width_ == other.width_ && height_ == other.height_ &&
           channels_ == other.channels_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  int channels_ = 0;
  std::vector<uint8_t> data_;
};

/// One 8-bit plane (a single component, possibly subsampled).
class Plane {
 public:
  Plane() = default;
  Plane(int width, int height, uint8_t fill = 0)
      : width_(width), height_(height),
        data_(static_cast<size_t>(width) * height, fill) {}

  int width() const { return width_; }
  int height() const { return height_; }
  uint8_t* data() { return data_.data(); }
  const uint8_t* data() const { return data_.data(); }

  /// Re-dimensions the plane reusing existing capacity (no allocation when
  /// the new size fits). Contents are unspecified afterwards — for decode
  /// scratch buffers whose every pixel is overwritten.
  void Reset(int width, int height) {
    width_ = width;
    height_ = height;
    data_.resize(static_cast<size_t>(width) * height);
  }

  uint8_t at(int x, int y) const {
    return data_[static_cast<size_t>(y) * width_ + x];
  }
  void set(int x, int y, uint8_t v) {
    data_[static_cast<size_t>(y) * width_ + x] = v;
  }
  /// Clamped accessor (edge replication) for filters and block extraction.
  uint8_t at_clamped(int x, int y) const {
    if (x < 0) x = 0;
    if (x >= width_) x = width_ - 1;
    if (y < 0) y = 0;
    if (y >= height_) y = height_ - 1;
    return at(x, y);
  }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<uint8_t> data_;
};

/// A set of planes, one per component (Y, Cb, Cr), each with its own
/// dimensions (chroma may be half-size under 4:2:0).
struct PlanarImage {
  std::vector<Plane> planes;
  int full_width = 0;   // Luma (full-resolution) dimensions.
  int full_height = 0;

  int num_components() const { return static_cast<int>(planes.size()); }
};

}  // namespace pcr
