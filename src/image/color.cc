#include "image/color.h"

#include <algorithm>
#include <cmath>

namespace pcr {

namespace {
inline uint8_t ClampByte(double v) {
  return static_cast<uint8_t>(std::clamp(v, 0.0, 255.0) + 0.5 >= 256.0
                                  ? 255.0
                                  : std::floor(std::clamp(v, 0.0, 255.0) + 0.5));
}
}  // namespace

PlanarImage RgbToYcbcr(const Image& rgb, ChromaSubsampling subsampling) {
  PlanarImage out;
  out.full_width = rgb.width();
  out.full_height = rgb.height();

  if (rgb.channels() == 1) {
    Plane y(rgb.width(), rgb.height());
    std::copy(rgb.data(), rgb.data() + rgb.size_bytes(), y.data());
    out.planes.push_back(std::move(y));
    return out;
  }

  Plane y(rgb.width(), rgb.height());
  Plane cb_full(rgb.width(), rgb.height());
  Plane cr_full(rgb.width(), rgb.height());
  for (int j = 0; j < rgb.height(); ++j) {
    for (int i = 0; i < rgb.width(); ++i) {
      const double r = rgb.at(i, j, 0);
      const double g = rgb.at(i, j, 1);
      const double b = rgb.at(i, j, 2);
      y.set(i, j, ClampByte(0.299 * r + 0.587 * g + 0.114 * b));
      cb_full.set(i, j,
                  ClampByte(128.0 - 0.168736 * r - 0.331264 * g + 0.5 * b));
      cr_full.set(i, j,
                  ClampByte(128.0 + 0.5 * r - 0.418688 * g - 0.081312 * b));
    }
  }
  out.planes.push_back(std::move(y));

  if (subsampling == ChromaSubsampling::k444) {
    out.planes.push_back(std::move(cb_full));
    out.planes.push_back(std::move(cr_full));
    return out;
  }

  // 4:2:0: average each 2x2 box.
  const int cw = (rgb.width() + 1) / 2;
  const int ch = (rgb.height() + 1) / 2;
  Plane cb(cw, ch);
  Plane cr(cw, ch);
  for (int j = 0; j < ch; ++j) {
    for (int i = 0; i < cw; ++i) {
      int sum_cb = 0, sum_cr = 0, n = 0;
      for (int dj = 0; dj < 2; ++dj) {
        for (int di = 0; di < 2; ++di) {
          const int x = 2 * i + di;
          const int yy = 2 * j + dj;
          if (x < rgb.width() && yy < rgb.height()) {
            sum_cb += cb_full.at(x, yy);
            sum_cr += cr_full.at(x, yy);
            ++n;
          }
        }
      }
      cb.set(i, j, static_cast<uint8_t>((sum_cb + n / 2) / n));
      cr.set(i, j, static_cast<uint8_t>((sum_cr + n / 2) / n));
    }
  }
  out.planes.push_back(std::move(cb));
  out.planes.push_back(std::move(cr));
  return out;
}

namespace {

// Per-chroma-value lookup tables for the fixed-point conversion. Built from
// the canonical scalar formulas of color.h, so table-driven output is
// bit-identical to ycc::ToRgb.
struct YccLut {
  int cr_r[256];
  int cb_b[256];
  int cb_g[256];  // Green Cb term, still scaled by 2^kScaleBits.
  int cr_g[256];  // Green Cr term + rounding + shift bias, scaled.

  YccLut() {
    for (int v = 0; v < 256; ++v) {
      cr_r[v] = ycc::CrToR(v);
      cb_b[v] = ycc::CbToB(v);
      cb_g[v] = -ycc::kCbToG * (v - 128);
      cr_g[v] = -ycc::kCrToG * (v - 128) + ycc::kHalf + ycc::kShiftBias;
    }
  }

  // g offset = CbCrToG(cb, cr), by construction of the two tables.
  int GreenOffset(int cb, int cr) const {
    return ((cb_g[cb] + cr_g[cr]) >> ycc::kScaleBits) - 256;
  }
};

const YccLut& Lut() {
  static const YccLut lut;
  return lut;
}

}  // namespace

Image YcbcrToRgb(const PlanarImage& ycbcr) {
  const int w = ycbcr.full_width;
  const int h = ycbcr.full_height;
  if (ycbcr.num_components() == 1) {
    Image out(w, h, 1);
    const Plane& y = ycbcr.planes[0];
    for (int j = 0; j < h; ++j) {
      std::copy(y.data() + static_cast<size_t>(j) * y.width(),
                y.data() + static_cast<size_t>(j) * y.width() + w,
                out.row(j));
    }
    return out;
  }

  const Plane& y = ycbcr.planes[0];
  const Plane& cb = ycbcr.planes[1];
  const Plane& cr = ycbcr.planes[2];
  const bool subsampled = cb.width() != w || cb.height() != h;
  const YccLut& lut = Lut();

  Image out(w, h, 3);
  for (int j = 0; j < h; ++j) {
    const uint8_t* yrow = y.data() + static_cast<size_t>(j) * y.width();
    uint8_t* dst = out.row(j);
    if (!subsampled) {
      const uint8_t* cbrow = cb.data() + static_cast<size_t>(j) * cb.width();
      const uint8_t* crrow = cr.data() + static_cast<size_t>(j) * cr.width();
      for (int i = 0; i < w; ++i) {
        const int yv = yrow[i];
        const int cbv = cbrow[i];
        const int crv = crrow[i];
        dst[3 * i + 0] = ycc::ClampToByte(yv + lut.cr_r[crv]);
        dst[3 * i + 1] = ycc::ClampToByte(yv + lut.GreenOffset(cbv, crv));
        dst[3 * i + 2] = ycc::ClampToByte(yv + lut.cb_b[cbv]);
      }
    } else {
      for (int i = 0; i < w; ++i) {
        const int yv = yrow[i];
        const int cbv = ycc::UpsampleAt(cb, i, j);
        const int crv = ycc::UpsampleAt(cr, i, j);
        dst[3 * i + 0] = ycc::ClampToByte(yv + lut.cr_r[crv]);
        dst[3 * i + 1] = ycc::ClampToByte(yv + lut.GreenOffset(cbv, crv));
        dst[3 * i + 2] = ycc::ClampToByte(yv + lut.cb_b[cbv]);
      }
    }
  }
  return out;
}

Image ToGrayscale(const Image& img) {
  if (img.channels() == 1) return img;
  Image out(img.width(), img.height(), 1);
  for (int j = 0; j < img.height(); ++j) {
    for (int i = 0; i < img.width(); ++i) {
      const double v = 0.299 * img.at(i, j, 0) + 0.587 * img.at(i, j, 1) +
                       0.114 * img.at(i, j, 2);
      out.set(i, j, 0, ClampByte(v));
    }
  }
  return out;
}

}  // namespace pcr
