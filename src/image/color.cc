#include "image/color.h"

#include <algorithm>
#include <cmath>

namespace pcr {

namespace {
inline uint8_t ClampByte(double v) {
  return static_cast<uint8_t>(std::clamp(v, 0.0, 255.0) + 0.5 >= 256.0
                                  ? 255.0
                                  : std::floor(std::clamp(v, 0.0, 255.0) + 0.5));
}
}  // namespace

PlanarImage RgbToYcbcr(const Image& rgb, ChromaSubsampling subsampling) {
  PlanarImage out;
  out.full_width = rgb.width();
  out.full_height = rgb.height();

  if (rgb.channels() == 1) {
    Plane y(rgb.width(), rgb.height());
    std::copy(rgb.data(), rgb.data() + rgb.size_bytes(), y.data());
    out.planes.push_back(std::move(y));
    return out;
  }

  Plane y(rgb.width(), rgb.height());
  Plane cb_full(rgb.width(), rgb.height());
  Plane cr_full(rgb.width(), rgb.height());
  for (int j = 0; j < rgb.height(); ++j) {
    for (int i = 0; i < rgb.width(); ++i) {
      const double r = rgb.at(i, j, 0);
      const double g = rgb.at(i, j, 1);
      const double b = rgb.at(i, j, 2);
      y.set(i, j, ClampByte(0.299 * r + 0.587 * g + 0.114 * b));
      cb_full.set(i, j,
                  ClampByte(128.0 - 0.168736 * r - 0.331264 * g + 0.5 * b));
      cr_full.set(i, j,
                  ClampByte(128.0 + 0.5 * r - 0.418688 * g - 0.081312 * b));
    }
  }
  out.planes.push_back(std::move(y));

  if (subsampling == ChromaSubsampling::k444) {
    out.planes.push_back(std::move(cb_full));
    out.planes.push_back(std::move(cr_full));
    return out;
  }

  // 4:2:0: average each 2x2 box.
  const int cw = (rgb.width() + 1) / 2;
  const int ch = (rgb.height() + 1) / 2;
  Plane cb(cw, ch);
  Plane cr(cw, ch);
  for (int j = 0; j < ch; ++j) {
    for (int i = 0; i < cw; ++i) {
      int sum_cb = 0, sum_cr = 0, n = 0;
      for (int dj = 0; dj < 2; ++dj) {
        for (int di = 0; di < 2; ++di) {
          const int x = 2 * i + di;
          const int yy = 2 * j + dj;
          if (x < rgb.width() && yy < rgb.height()) {
            sum_cb += cb_full.at(x, yy);
            sum_cr += cr_full.at(x, yy);
            ++n;
          }
        }
      }
      cb.set(i, j, static_cast<uint8_t>((sum_cb + n / 2) / n));
      cr.set(i, j, static_cast<uint8_t>((sum_cr + n / 2) / n));
    }
  }
  out.planes.push_back(std::move(cb));
  out.planes.push_back(std::move(cr));
  return out;
}

Image YcbcrToRgb(const PlanarImage& ycbcr) {
  const int w = ycbcr.full_width;
  const int h = ycbcr.full_height;
  if (ycbcr.num_components() == 1) {
    Image out(w, h, 1);
    const Plane& y = ycbcr.planes[0];
    for (int j = 0; j < h; ++j) {
      for (int i = 0; i < w; ++i) out.set(i, j, 0, y.at(i, j));
    }
    return out;
  }

  const Plane& y = ycbcr.planes[0];
  const Plane& cb = ycbcr.planes[1];
  const Plane& cr = ycbcr.planes[2];
  const bool subsampled = cb.width() != w || cb.height() != h;

  Image out(w, h, 3);
  for (int j = 0; j < h; ++j) {
    for (int i = 0; i < w; ++i) {
      double cbv, crv;
      if (!subsampled) {
        cbv = cb.at(i, j);
        crv = cr.at(i, j);
      } else {
        // Bilinear upsample with co-sited-at-center sampling.
        const double sx = (i - 0.5) / 2.0;
        const double sy = (j - 0.5) / 2.0;
        const int x0 = static_cast<int>(std::floor(sx));
        const int y0 = static_cast<int>(std::floor(sy));
        const double fx = sx - x0;
        const double fy = sy - y0;
        auto sample = [&](const Plane& p) {
          const double v00 = p.at_clamped(x0, y0);
          const double v10 = p.at_clamped(x0 + 1, y0);
          const double v01 = p.at_clamped(x0, y0 + 1);
          const double v11 = p.at_clamped(x0 + 1, y0 + 1);
          return v00 * (1 - fx) * (1 - fy) + v10 * fx * (1 - fy) +
                 v01 * (1 - fx) * fy + v11 * fx * fy;
        };
        cbv = sample(cb);
        crv = sample(cr);
      }
      const double yv = y.at(i, j);
      const double r = yv + 1.402 * (crv - 128.0);
      const double g = yv - 0.344136 * (cbv - 128.0) - 0.714136 * (crv - 128.0);
      const double b = yv + 1.772 * (cbv - 128.0);
      out.set(i, j, 0, ClampByte(r));
      out.set(i, j, 1, ClampByte(g));
      out.set(i, j, 2, ClampByte(b));
    }
  }
  return out;
}

Image ToGrayscale(const Image& img) {
  if (img.channels() == 1) return img;
  Image out(img.width(), img.height(), 1);
  for (int j = 0; j < img.height(); ++j) {
    for (int i = 0; i < img.width(); ++i) {
      const double v = 0.299 * img.at(i, j, 0) + 0.587 * img.at(i, j, 1) +
                       0.114 * img.at(i, j, 2);
      out.set(i, j, 0, ClampByte(v));
    }
  }
  return out;
}

}  // namespace pcr
