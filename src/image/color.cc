#include "image/color.h"

#include <algorithm>
#include <cmath>

#include "arch/arch.h"

namespace pcr {

namespace {
inline uint8_t ClampByte(double v) {
  return static_cast<uint8_t>(std::clamp(v, 0.0, 255.0) + 0.5 >= 256.0
                                  ? 255.0
                                  : std::floor(std::clamp(v, 0.0, 255.0) + 0.5));
}
}  // namespace

PlanarImage RgbToYcbcr(const Image& rgb, ChromaSubsampling subsampling) {
  PlanarImage out;
  out.full_width = rgb.width();
  out.full_height = rgb.height();

  if (rgb.channels() == 1) {
    Plane y(rgb.width(), rgb.height());
    std::copy(rgb.data(), rgb.data() + rgb.size_bytes(), y.data());
    out.planes.push_back(std::move(y));
    return out;
  }

  Plane y(rgb.width(), rgb.height());
  Plane cb_full(rgb.width(), rgb.height());
  Plane cr_full(rgb.width(), rgb.height());
  for (int j = 0; j < rgb.height(); ++j) {
    for (int i = 0; i < rgb.width(); ++i) {
      const double r = rgb.at(i, j, 0);
      const double g = rgb.at(i, j, 1);
      const double b = rgb.at(i, j, 2);
      y.set(i, j, ClampByte(0.299 * r + 0.587 * g + 0.114 * b));
      cb_full.set(i, j,
                  ClampByte(128.0 - 0.168736 * r - 0.331264 * g + 0.5 * b));
      cr_full.set(i, j,
                  ClampByte(128.0 + 0.5 * r - 0.418688 * g - 0.081312 * b));
    }
  }
  out.planes.push_back(std::move(y));

  if (subsampling == ChromaSubsampling::k444) {
    out.planes.push_back(std::move(cb_full));
    out.planes.push_back(std::move(cr_full));
    return out;
  }

  // 4:2:0: average each 2x2 box.
  const int cw = (rgb.width() + 1) / 2;
  const int ch = (rgb.height() + 1) / 2;
  Plane cb(cw, ch);
  Plane cr(cw, ch);
  for (int j = 0; j < ch; ++j) {
    for (int i = 0; i < cw; ++i) {
      int sum_cb = 0, sum_cr = 0, n = 0;
      for (int dj = 0; dj < 2; ++dj) {
        for (int di = 0; di < 2; ++di) {
          const int x = 2 * i + di;
          const int yy = 2 * j + dj;
          if (x < rgb.width() && yy < rgb.height()) {
            sum_cb += cb_full.at(x, yy);
            sum_cr += cr_full.at(x, yy);
            ++n;
          }
        }
      }
      cb.set(i, j, static_cast<uint8_t>((sum_cb + n / 2) / n));
      cr.set(i, j, static_cast<uint8_t>((sum_cr + n / 2) / n));
    }
  }
  out.planes.push_back(std::move(cb));
  out.planes.push_back(std::move(cr));
  return out;
}

Image YcbcrToRgb(const PlanarImage& ycbcr, ColorScratch* scratch) {
  const int w = ycbcr.full_width;
  const int h = ycbcr.full_height;
  if (ycbcr.num_components() == 1) {
    Image out(w, h, 1);
    const Plane& y = ycbcr.planes[0];
    for (int j = 0; j < h; ++j) {
      std::copy(y.data() + static_cast<size_t>(j) * y.width(),
                y.data() + static_cast<size_t>(j) * y.width() + w,
                out.row(j));
    }
    return out;
  }

  const Plane& y = ycbcr.planes[0];
  const Plane& cb = ycbcr.planes[1];
  const Plane& cr = ycbcr.planes[2];
  const bool subsampled = cb.width() != w || cb.height() != h;
  const arch::Kernels& k = arch::Active();

  Image out(w, h, 3);
  if (!subsampled) {
    for (int j = 0; j < h; ++j) {
      k.ycbcr_row(y.data() + static_cast<size_t>(j) * y.width(),
                  cb.data() + static_cast<size_t>(j) * cb.width(),
                  cr.data() + static_cast<size_t>(j) * cr.width(), out.row(j),
                  w);
    }
    return out;
  }

  // Subsampled: upsample both chroma planes one full-resolution row at a
  // time into scratch, then convert. Row pair and vertical weight below are
  // exactly ycc::UpsampleAt's (y0, wy1) with the j clamp prefolded; the row
  // kernel applies the horizontal taps.
  ColorScratch local;
  ColorScratch* s = scratch != nullptr ? scratch : &local;
  s->Reserve(w);
  const int cw = cb.width();
  const int ch = cb.height();
  for (int j = 0; j < h; ++j) {
    const int y0 = (j & 1) ? (j >> 1) : (j >> 1) - 1;
    const int wy1 = (j & 1) ? 1 : 3;
    const int ya = std::clamp(y0, 0, ch - 1);
    const int yb = std::min(y0 + 1, ch - 1);  // y0 + 1 >= 0 always.
    const size_t ra = static_cast<size_t>(ya) * cw;
    const size_t rb = static_cast<size_t>(yb) * cw;
    k.upsample_row(cb.data() + ra, cb.data() + rb, wy1, s->cb_row(), w, cw);
    k.upsample_row(cr.data() + ra, cr.data() + rb, wy1, s->cr_row(), w, cw);
    k.ycbcr_row(y.data() + static_cast<size_t>(j) * y.width(), s->cb_row(),
                s->cr_row(), out.row(j), w);
  }
  return out;
}

Image ToGrayscale(const Image& img) {
  if (img.channels() == 1) return img;
  Image out(img.width(), img.height(), 1);
  for (int j = 0; j < img.height(); ++j) {
    for (int i = 0; i < img.width(); ++i) {
      const double v = 0.299 * img.at(i, j, 0) + 0.587 * img.at(i, j, 1) +
                       0.114 * img.at(i, j, 2);
      out.set(i, j, 0, ClampByte(v));
    }
  }
  return out;
}

}  // namespace pcr
