#include "image/transform.h"

#include <algorithm>
#include <cmath>

namespace pcr {

Image ResizeBilinear(const Image& img, int out_width, int out_height) {
  PCR_CHECK_GT(out_width, 0);
  PCR_CHECK_GT(out_height, 0);
  Image out(out_width, out_height, img.channels());
  const double sx = static_cast<double>(img.width()) / out_width;
  const double sy = static_cast<double>(img.height()) / out_height;
  for (int j = 0; j < out_height; ++j) {
    const double fy = (j + 0.5) * sy - 0.5;
    int y0 = static_cast<int>(std::floor(fy));
    const double wy = fy - y0;
    int y1 = y0 + 1;
    y0 = std::clamp(y0, 0, img.height() - 1);
    y1 = std::clamp(y1, 0, img.height() - 1);
    for (int i = 0; i < out_width; ++i) {
      const double fx = (i + 0.5) * sx - 0.5;
      int x0 = static_cast<int>(std::floor(fx));
      const double wx = fx - x0;
      int x1 = x0 + 1;
      x0 = std::clamp(x0, 0, img.width() - 1);
      x1 = std::clamp(x1, 0, img.width() - 1);
      for (int c = 0; c < img.channels(); ++c) {
        const double v =
            img.at(x0, y0, c) * (1 - wx) * (1 - wy) +
            img.at(x1, y0, c) * wx * (1 - wy) +
            img.at(x0, y1, c) * (1 - wx) * wy +
            img.at(x1, y1, c) * wx * wy;
        out.set(i, j, c, static_cast<uint8_t>(std::clamp(v + 0.5, 0.0, 255.0)));
      }
    }
  }
  return out;
}

Image ResizeShortSide(const Image& img, int short_side) {
  const int w = img.width(), h = img.height();
  if (w <= h) {
    const int nh = std::max(1, static_cast<int>(
                                   std::lround(static_cast<double>(h) *
                                               short_side / w)));
    return ResizeBilinear(img, short_side, nh);
  }
  const int nw = std::max(1, static_cast<int>(std::lround(
                                 static_cast<double>(w) * short_side / h)));
  return ResizeBilinear(img, nw, short_side);
}

Image Crop(const Image& img, int x, int y, int w, int h) {
  x = std::clamp(x, 0, img.width() - 1);
  y = std::clamp(y, 0, img.height() - 1);
  w = std::min(w, img.width() - x);
  h = std::min(h, img.height() - y);
  Image out(w, h, img.channels());
  for (int j = 0; j < h; ++j) {
    const uint8_t* src = img.row(y + j) + static_cast<size_t>(x) * img.channels();
    std::copy(src, src + static_cast<size_t>(w) * img.channels(), out.row(j));
  }
  return out;
}

namespace {
Image EnsureAtLeast(const Image& img, int w, int h) {
  if (img.width() >= w && img.height() >= h) return img;
  return ResizeBilinear(img, std::max(img.width(), w),
                        std::max(img.height(), h));
}
}  // namespace

Image CenterCrop(const Image& img, int w, int h) {
  const Image base = EnsureAtLeast(img, w, h);
  return Crop(base, (base.width() - w) / 2, (base.height() - h) / 2, w, h);
}

Image RandomCrop(const Image& img, int w, int h, Rng* rng) {
  const Image base = EnsureAtLeast(img, w, h);
  const int max_x = base.width() - w;
  const int max_y = base.height() - h;
  const int x = max_x > 0 ? static_cast<int>(rng->Uniform(max_x + 1)) : 0;
  const int y = max_y > 0 ? static_cast<int>(rng->Uniform(max_y + 1)) : 0;
  return Crop(base, x, y, w, h);
}

Image FlipHorizontal(const Image& img) {
  Image out(img.width(), img.height(), img.channels());
  for (int j = 0; j < img.height(); ++j) {
    for (int i = 0; i < img.width(); ++i) {
      for (int c = 0; c < img.channels(); ++c) {
        out.set(img.width() - 1 - i, j, c, img.at(i, j, c));
      }
    }
  }
  return out;
}

Image Augment(const Image& img, const AugmentOptions& opts, Rng* rng) {
  Image resized = ResizeShortSide(img, opts.resize_short_side);
  Image cropped =
      opts.random_crop
          ? RandomCrop(resized, opts.output_size, opts.output_size, rng)
          : CenterCrop(resized, opts.output_size, opts.output_size);
  if (opts.random_flip && rng->NextBernoulli(0.5)) {
    return FlipHorizontal(cropped);
  }
  return cropped;
}

}  // namespace pcr
