#include "image/procedural.h"

#include <algorithm>
#include <cmath>

namespace pcr {

std::vector<Blob> SampleBlobs(int count, double radius_px, double amplitude,
                              Rng* rng) {
  std::vector<Blob> blobs;
  blobs.reserve(count);
  for (int i = 0; i < count; ++i) {
    Blob b;
    b.x = rng->UniformDouble(0.1, 0.9);
    b.y = rng->UniformDouble(0.1, 0.9);
    b.radius_px = radius_px * rng->UniformDouble(0.75, 1.25);
    b.amplitude = (rng->NextBernoulli(0.5) ? 1.0 : -1.0) * amplitude *
                  rng->UniformDouble(0.8, 1.2);
    blobs.push_back(b);
  }
  return blobs;
}

namespace {

// Bilinear value noise: random lattice of the given cell size, interpolated.
void AddValueNoiseOctave(int w, int h, int cell, double amplitude, Rng* rng,
                         std::vector<float>* luma) {
  const int gw = w / cell + 2;
  const int gh = h / cell + 2;
  std::vector<float> grid(static_cast<size_t>(gw) * gh);
  for (auto& g : grid) {
    g = static_cast<float>(rng->UniformDouble(-1.0, 1.0));
  }
  auto gv = [&](int gx, int gy) {
    return grid[static_cast<size_t>(gy) * gw + gx];
  };
  for (int y = 0; y < h; ++y) {
    const int gy = y / cell;
    const float fy = static_cast<float>(y % cell) / cell;
    // Smoothstep for C1 continuity.
    const float sy = fy * fy * (3.f - 2.f * fy);
    for (int x = 0; x < w; ++x) {
      const int gx = x / cell;
      const float fx = static_cast<float>(x % cell) / cell;
      const float sx = fx * fx * (3.f - 2.f * fx);
      const float v0 = gv(gx, gy) * (1 - sx) + gv(gx + 1, gy) * sx;
      const float v1 = gv(gx, gy + 1) * (1 - sx) + gv(gx + 1, gy + 1) * sx;
      (*luma)[static_cast<size_t>(y) * w + x] +=
          static_cast<float>(amplitude) * (v0 * (1 - sy) + v1 * sy);
    }
  }
}

}  // namespace

void RenderBackground(int w, int h, const BackgroundParams& params, Rng* rng,
                      std::vector<float>* luma) {
  luma->assign(static_cast<size_t>(w) * h,
               static_cast<float>(params.base_luma));
  int cell = std::max(8, std::min(w, h) / 3);
  double amplitude = params.contrast;
  for (int o = 0; o < params.octaves && cell >= 2; ++o) {
    AddValueNoiseOctave(w, h, cell, amplitude, rng, luma);
    cell /= 2;
    amplitude *= params.persistence;
  }
}

void RenderBlobs(int w, int h, const std::vector<Blob>& blobs, double dx,
                 double dy, std::vector<float>* luma) {
  for (const Blob& b : blobs) {
    const double cx = b.x * w + dx;
    const double cy = b.y * h + dy;
    const double r = b.radius_px;
    const double inv_2r2 = 1.0 / (2.0 * r * r);
    const int x0 = std::max(0, static_cast<int>(cx - 3 * r));
    const int x1 = std::min(w - 1, static_cast<int>(cx + 3 * r));
    const int y0 = std::max(0, static_cast<int>(cy - 3 * r));
    const int y1 = std::min(h - 1, static_cast<int>(cy + 3 * r));
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        const double d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
        (*luma)[static_cast<size_t>(y) * w + x] +=
            static_cast<float>(b.amplitude * std::exp(-d2 * inv_2r2));
      }
    }
  }
}

void AddNoise(double stddev, Rng* rng, std::vector<float>* luma) {
  if (stddev <= 0.0) return;
  for (auto& v : *luma) {
    v += static_cast<float>(stddev * rng->NextGaussian());
  }
}

Image LumaToImage(int w, int h, const std::vector<float>& luma, bool color,
                  Rng* rng) {
  auto clamp_byte = [](float v) {
    return static_cast<uint8_t>(std::clamp(v, 0.f, 255.f));
  };
  if (!color) {
    Image out(w, h, 1);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        out.set(x, y, 0, clamp_byte(luma[static_cast<size_t>(y) * w + x]));
      }
    }
    return out;
  }

  // Smooth tint: two coarse value-noise fields steer Cb/Cr-like offsets.
  std::vector<float> tint_r(static_cast<size_t>(w) * h, 0.f);
  std::vector<float> tint_b(static_cast<size_t>(w) * h, 0.f);
  {
    BackgroundParams tint_params;
    tint_params.octaves = 2;
    tint_params.contrast = 26.0;
    tint_params.base_luma = 0.0;
    std::vector<float> tmp;
    RenderBackground(w, h, tint_params, rng, &tmp);
    tint_r = tmp;
    RenderBackground(w, h, tint_params, rng, &tmp);
    tint_b = tmp;
  }
  Image out(w, h, 3);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const size_t i = static_cast<size_t>(y) * w + x;
      const float l = luma[i];
      out.set(x, y, 0, clamp_byte(l + tint_r[i]));
      out.set(x, y, 1, clamp_byte(l - 0.4f * (tint_r[i] + tint_b[i])));
      out.set(x, y, 2, clamp_byte(l + tint_b[i]));
    }
  }
  return out;
}

}  // namespace pcr
