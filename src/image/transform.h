// Geometric transforms and training augmentations: bilinear resize, center /
// random crop, horizontal flip — the standard ImageNet augmentation set the
// paper uses ("resizing, crop, and horizontal-flip augmentations").
#pragma once

#include "image/image.h"
#include "util/random.h"

namespace pcr {

/// Bilinear resize to (out_width, out_height).
Image ResizeBilinear(const Image& img, int out_width, int out_height);

/// Resizes so the short side equals `short_side`, preserving aspect ratio.
Image ResizeShortSide(const Image& img, int short_side);

/// Crops the rectangle [x, x+w) x [y, y+h); clamped to bounds.
Image Crop(const Image& img, int x, int y, int w, int h);

/// Center crop of size w x h (resizes up first if the image is smaller).
Image CenterCrop(const Image& img, int w, int h);

/// Random crop of size w x h using `rng` (resizes up first if smaller).
Image RandomCrop(const Image& img, int w, int h, Rng* rng);

/// Mirrors left-right.
Image FlipHorizontal(const Image& img);

/// Training-time augmentation config (224x224 ImageNet-style by default).
struct AugmentOptions {
  int output_size = 224;
  bool random_crop = true;      // Center crop when false (eval mode).
  bool random_flip = true;
  int resize_short_side = 256;  // Applied before the crop.
};

/// Applies the standard augmentation pipeline.
Image Augment(const Image& img, const AugmentOptions& opts, Rng* rng);

}  // namespace pcr
