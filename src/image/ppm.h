// Binary PPM/PGM encode/decode — the library's uncompressed interchange
// format (examples write decoded scans out as PPM for inspection).
#pragma once

#include <string>

#include "image/image.h"
#include "util/result.h"
#include "util/slice.h"

namespace pcr {

/// Serializes to P6 (RGB) or P5 (grayscale) binary PPM/PGM.
std::string EncodePpm(const Image& img);

/// Parses a P5/P6 buffer.
Result<Image> DecodePpm(Slice data);

}  // namespace pcr
