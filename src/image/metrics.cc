#include "image/metrics.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "image/color.h"
#include "util/logging.h"

namespace pcr {

double Mse(const Image& a, const Image& b) {
  PCR_CHECK(a.SameShape(b)) << "MSE over mismatched shapes";
  double acc = 0.0;
  const size_t n = a.size_bytes();
  const uint8_t* pa = a.data();
  const uint8_t* pb = b.data();
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(pa[i]) - static_cast<double>(pb[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(n);
}

double Psnr(const Image& a, const Image& b) {
  const double mse = Mse(a, b);
  if (mse <= 1e-12) return 99.0;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

namespace {

// Float grayscale plane used by the SSIM pipeline.
struct FloatPlane {
  int w = 0, h = 0;
  std::vector<double> v;
  double at(int x, int y) const { return v[static_cast<size_t>(y) * w + x]; }
  double& at(int x, int y) { return v[static_cast<size_t>(y) * w + x]; }
};

FloatPlane ToFloatLuma(const Image& img) {
  const Image gray = ToGrayscale(img);
  FloatPlane p;
  p.w = gray.width();
  p.h = gray.height();
  p.v.resize(static_cast<size_t>(p.w) * p.h);
  for (int y = 0; y < p.h; ++y) {
    for (int x = 0; x < p.w; ++x) p.at(x, y) = gray.at(x, y, 0);
  }
  return p;
}

// Separable Gaussian blur with reflect-101 padding.
FloatPlane GaussianBlur(const FloatPlane& in, const std::vector<double>& k) {
  const int r = static_cast<int>(k.size()) / 2;
  auto reflect = [](int i, int n) {
    if (n == 1) return 0;
    while (i < 0 || i >= n) {
      if (i < 0) i = -i;
      if (i >= n) i = 2 * n - 2 - i;
    }
    return i;
  };
  FloatPlane tmp;
  tmp.w = in.w;
  tmp.h = in.h;
  tmp.v.resize(in.v.size());
  for (int y = 0; y < in.h; ++y) {
    for (int x = 0; x < in.w; ++x) {
      double acc = 0.0;
      for (int t = -r; t <= r; ++t) {
        acc += k[t + r] * in.at(reflect(x + t, in.w), y);
      }
      tmp.at(x, y) = acc;
    }
  }
  FloatPlane out;
  out.w = in.w;
  out.h = in.h;
  out.v.resize(in.v.size());
  for (int y = 0; y < in.h; ++y) {
    for (int x = 0; x < in.w; ++x) {
      double acc = 0.0;
      for (int t = -r; t <= r; ++t) {
        acc += k[t + r] * tmp.at(x, reflect(y + t, in.h));
      }
      out.at(x, y) = acc;
    }
  }
  return out;
}

std::vector<double> GaussianKernel(int size, double sigma) {
  std::vector<double> k(size);
  const int r = size / 2;
  double sum = 0.0;
  for (int i = 0; i < size; ++i) {
    const double d = i - r;
    k[i] = std::exp(-d * d / (2.0 * sigma * sigma));
    sum += k[i];
  }
  for (double& v : k) v /= sum;
  return k;
}

FloatPlane Multiply(const FloatPlane& a, const FloatPlane& b) {
  FloatPlane out = a;
  for (size_t i = 0; i < out.v.size(); ++i) out.v[i] *= b.v[i];
  return out;
}

// Downsample by 2 with 2x2 box averaging (MS-SSIM convention).
FloatPlane Downsample2(const FloatPlane& in) {
  FloatPlane out;
  out.w = in.w / 2;
  out.h = in.h / 2;
  out.v.resize(static_cast<size_t>(out.w) * out.h);
  for (int y = 0; y < out.h; ++y) {
    for (int x = 0; x < out.w; ++x) {
      out.at(x, y) = 0.25 * (in.at(2 * x, 2 * y) + in.at(2 * x + 1, 2 * y) +
                             in.at(2 * x, 2 * y + 1) +
                             in.at(2 * x + 1, 2 * y + 1));
    }
  }
  return out;
}

struct SsimTerms {
  double luminance = 0.0;  // Mean of l(x,y).
  double cs = 0.0;         // Mean of contrast*structure.
  double full = 0.0;       // Mean of the full SSIM map.
};

SsimTerms ComputeSsimTerms(const FloatPlane& x, const FloatPlane& y) {
  constexpr double kC1 = (0.01 * 255.0) * (0.01 * 255.0);
  constexpr double kC2 = (0.03 * 255.0) * (0.03 * 255.0);
  const auto kernel = GaussianKernel(11, 1.5);

  const FloatPlane mu_x = GaussianBlur(x, kernel);
  const FloatPlane mu_y = GaussianBlur(y, kernel);
  const FloatPlane xx = GaussianBlur(Multiply(x, x), kernel);
  const FloatPlane yy = GaussianBlur(Multiply(y, y), kernel);
  const FloatPlane xy = GaussianBlur(Multiply(x, y), kernel);

  SsimTerms terms;
  double sum_l = 0.0, sum_cs = 0.0, sum_full = 0.0;
  const size_t n = x.v.size();
  for (size_t i = 0; i < n; ++i) {
    const double mx = mu_x.v[i];
    const double my = mu_y.v[i];
    const double sx2 = std::max(0.0, xx.v[i] - mx * mx);
    const double sy2 = std::max(0.0, yy.v[i] - my * my);
    const double sxy = xy.v[i] - mx * my;
    const double l = (2.0 * mx * my + kC1) / (mx * mx + my * my + kC1);
    const double cs = (2.0 * sxy + kC2) / (sx2 + sy2 + kC2);
    sum_l += l;
    sum_cs += cs;
    sum_full += l * cs;
  }
  terms.luminance = sum_l / static_cast<double>(n);
  terms.cs = sum_cs / static_cast<double>(n);
  terms.full = sum_full / static_cast<double>(n);
  return terms;
}

}  // namespace

double Ssim(const Image& a, const Image& b) {
  PCR_CHECK(a.SameShape(b)) << "SSIM over mismatched shapes";
  return ComputeSsimTerms(ToFloatLuma(a), ToFloatLuma(b)).full;
}

double Msssim(const Image& a, const Image& b) {
  PCR_CHECK(a.SameShape(b)) << "MSSIM over mismatched shapes";
  static const double kWeights[5] = {0.0448, 0.2856, 0.3001, 0.2363, 0.1333};

  FloatPlane x = ToFloatLuma(a);
  FloatPlane y = ToFloatLuma(b);

  // Use as many dyadic scales as the image supports (window is 11 wide).
  int levels = 1;
  int min_dim = std::min(x.w, x.h);
  while (levels < 5 && (min_dim / 2) >= 11) {
    ++levels;
    min_dim /= 2;
  }
  double weight_sum = 0.0;
  for (int i = 0; i < levels; ++i) weight_sum += kWeights[i];

  double result = 1.0;
  for (int level = 0; level < levels; ++level) {
    const SsimTerms terms = ComputeSsimTerms(x, y);
    const double w = kWeights[level] / weight_sum;
    if (level + 1 == levels) {
      // Luminance applies only at the coarsest scale; use the full SSIM term
      // there per the reference implementation.
      result *= std::pow(std::max(terms.full, 1e-6), w);
    } else {
      result *= std::pow(std::max(terms.cs, 1e-6), w);
      x = Downsample2(x);
      y = Downsample2(y);
    }
  }
  return result;
}

}  // namespace pcr
