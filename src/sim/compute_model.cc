#include "sim/compute_model.h"

namespace pcr {

ComputeProfile ComputeProfile::ResNet18() {
  ComputeProfile p;
  p.model_name = "resnet18";
  p.images_per_sec_per_gpu = 445.0;
  p.num_gpus = 10;
  p.cluster_images_per_sec = 4240.0;
  return p;
}

ComputeProfile ComputeProfile::ShuffleNetV2() {
  ComputeProfile p;
  p.model_name = "shufflenetv2";
  p.images_per_sec_per_gpu = 750.0;
  p.num_gpus = 10;
  p.cluster_images_per_sec = 7180.0;
  return p;
}

ComputeProfile ComputeProfile::FastAccelerator(double multiplier) {
  ComputeProfile p = ResNet18();
  p.model_name = "fast_accelerator";
  p.images_per_sec_per_gpu *= multiplier;
  p.cluster_images_per_sec *= multiplier;
  return p;
}

}  // namespace pcr
