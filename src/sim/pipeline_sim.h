// TrainingPipelineSim: the virtual-clock model of the paper's training
// pipeline (Appendix A.1): a closed-system data loader feeding an
// open-system compute unit through a bounded prefetch queue. Produces epoch
// times, throughputs, and per-iteration stall traces (Figures 9, 11, 18)
// without wall-clock cost.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/record_source.h"
#include "loader/scan_policy.h"
#include "sim/compute_model.h"
#include "sim/decode_model.h"
#include "storage/sim_device.h"
#include "util/random.h"

namespace pcr {

struct PipelineSimOptions {
  /// Records buffered between loader and compute ("the prefetching queue").
  int prefetch_depth = 8;
  /// Cluster-wide loader decode threads; I/O is serialized at the (shared)
  /// storage pool, decode parallelizes across every worker's loader threads
  /// (the paper's setup: 10 worker nodes x 16-core CPUs with 4-8 loader
  /// threads each).
  int loader_threads = 64;
  /// Account progressive decode CPU cost (§A.5). When false the loader is
  /// purely I/O.
  bool model_decode_cost = true;
  /// Async submission window of the loader's I/O workers: how many fetches
  /// are kept in flight against the storage backend. Fixed per-request costs
  /// (seek + request setup) overlap across the in-flight reads while the
  /// transfers share the device bandwidth, so a record's effective I/O time
  /// is max(transfer, blocking_cost / window) — window 1 reproduces the
  /// blocking loader exactly, deeper windows converge on the bandwidth
  /// floor. Mirrors LoaderPipelineOptions::io_inflight and the
  /// SimEnv/SimDevice overlapped-read model.
  int io_inflight_window = 1;
  /// Submission batching of the loader's I/O workers: requests queued before
  /// one submission syscall flushes them, mirroring the uring backend's
  /// batched io_uring_submit (LoaderPipelineOptions::io_submit_batch). The
  /// per-op setup cost amortizes across the batch — 1 models the unbatched
  /// pread-per-request backends exactly (and keeps fig9/fig11 comparable);
  /// deeper batches shave per-request overhead without touching seek or
  /// transfer time.
  int io_submit_batch = 1;
  /// Assumed images per record when the source cannot say (safety net).
  int default_images_per_record = 128;
  /// Decoded-record cache model (the analytic twin of loader/decode_cache.h):
  /// > 0 enables a byte-budgeted LRU keyed (record, scan group), persisting
  /// across Simulate* calls — epoch 2+ of a cache-resident working set costs
  /// cache_hit_record_seconds per record instead of storage + decode.
  uint64_t decode_cache_bytes = 0;
  /// Decoded footprint charged per image against the cache budget.
  double decoded_bytes_per_image = 3.0 * 224.0 * 224.0;
  /// Service time of a cache-served record (the batch copy out of the LRU).
  double cache_hit_record_seconds = 50e-6;
};

/// One loader->compute iteration in the trace.
struct IterationTrace {
  int iteration = 0;
  int record = 0;
  int scan_group = 0;
  uint64_t bytes = 0;
  double load_seconds = 0;      // Loader service time for this record.
  double io_seconds = 0;        // Storage time inside the service time.
  double decode_seconds = 0;    // Parallelized decode time inside it.
  double data_stall_seconds = 0;  // Compute idle time before this record.
  /// True when the stall (if any) is storage's fault: the record's I/O time
  /// exceeded its parallelized decode time.
  bool io_bound = false;
  /// Served from the decoded-record cache: no storage bytes, no decode.
  bool cache_hit = false;
  double compute_start = 0;     // Absolute sim time.
  double compute_finish = 0;
};

struct EpochSimResult {
  double elapsed_seconds = 0;
  double stall_seconds = 0;
  /// Stall time split by the loader resource that bound each iteration —
  /// the per-stage attribution the staged wall-clock pipeline measures.
  double io_bound_stall_seconds = 0;
  double decode_bound_stall_seconds = 0;
  /// Per-stage busy time summed over iterations (decode already divided
  /// across loader threads).
  double io_seconds = 0;
  double decode_seconds = 0;
  double images_per_sec = 0;
  uint64_t bytes_read = 0;
  int images = 0;
  int records = 0;
  /// Decoded-record cache model: records served from the cache, and the
  /// loader service time those hits avoided (vs fetching + decoding them).
  int64_t cache_hits = 0;
  double cache_hit_seconds_saved = 0;
  std::vector<IterationTrace> trace;  // Filled when requested.
};

/// Simulates epochs of the two-stage pipeline. Deterministic given the seed.
class TrainingPipelineSim {
 public:
  TrainingPipelineSim(RecordSource* source, DeviceProfile storage,
                      ComputeProfile compute, DecodeCostModel decode,
                      PipelineSimOptions options, uint64_t seed = 42);

  /// Simulates one full epoch under the given quality policy.
  EpochSimResult SimulateEpoch(ScanGroupPolicy* policy,
                               bool keep_trace = false);

  /// Simulates `num_records` iterations (partial epoch), e.g. tuning probes.
  EpochSimResult SimulateRecords(int num_records, ScanGroupPolicy* policy,
                                 bool keep_trace = false);

  /// Cumulative simulated seconds across all Simulate* calls.
  double now_seconds() const { return now_; }

  const DeviceProfile& storage() const { return storage_; }
  const ComputeProfile& compute() const { return compute_; }

 private:
  double RecordIoSeconds(int record, int scan_group) const;
  double RecordDecodeSeconds(int record, int scan_group) const;
  int RecordImages(int record) const;
  bool CacheLookup(int record, int scan_group);
  void CacheInsert(int record, int scan_group, double bytes);

  RecordSource* source_;
  DeviceProfile storage_;
  ComputeProfile compute_;
  DecodeCostModel decode_;
  PipelineSimOptions options_;
  Rng rng_;
  double now_ = 0;

  // Pipeline state carried across Simulate* calls (the queue persists).
  std::vector<double> queue_free_times_;  // When each queued slot frees.
  double loader_busy_until_ = 0;
  double compute_busy_until_ = 0;
  // Epoch sampling state.
  std::vector<int> order_;
  size_t cursor_ = 0;
  int epoch_ = 0;
  // Decoded-record cache model: LRU over packed (record, scan group) keys
  // with decoded-byte accounting, persisting across Simulate* calls.
  std::list<std::pair<int64_t, double>> cache_lru_;  // Front = MRU.
  std::unordered_map<int64_t, std::list<std::pair<int64_t, double>>::iterator>
      cache_index_;
  double cache_bytes_ = 0;
};

}  // namespace pcr
