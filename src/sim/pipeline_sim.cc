#include "sim/pipeline_sim.h"

#include <algorithm>
#include <deque>
#include <list>
#include <numeric>
#include <utility>

#include "util/logging.h"

namespace pcr {

TrainingPipelineSim::TrainingPipelineSim(RecordSource* source,
                                         DeviceProfile storage,
                                         ComputeProfile compute,
                                         DecodeCostModel decode,
                                         PipelineSimOptions options,
                                         uint64_t seed)
    : source_(source), storage_(std::move(storage)),
      compute_(std::move(compute)), decode_(decode), options_(options),
      rng_(seed) {
  PCR_CHECK(source != nullptr);
  order_.resize(source->num_records());
  std::iota(order_.begin(), order_.end(), 0);
  rng_.Shuffle(&order_);
}

int TrainingPipelineSim::RecordImages(int record) const {
  const int n = source_->RecordImages(record);
  return n > 0 ? n : options_.default_images_per_record;
}

double TrainingPipelineSim::RecordIoSeconds(int record, int scan_group) const {
  const uint64_t bytes = source_->RecordReadBytes(record, scan_group);
  // One seek (records are shuffled, so reads are never sequential with the
  // previous record) + request overhead + sequential transfer.
  const double transfer =
      static_cast<double>(bytes) / storage_.read_bandwidth_bytes_per_sec;
  // Batched submission amortizes the per-op setup cost across the batch
  // (one submit syscall carries `batch` requests); seek and transfer are
  // physical and stay per request. Batch 1 = unbatched backends, unchanged.
  const double per_op =
      storage_.per_op_latency_sec /
      static_cast<double>(std::max(1, options_.io_submit_batch));
  const double blocking = storage_.seek_latency_sec + per_op + transfer;
  // With `window` fetches in flight, fixed per-request costs overlap across
  // the window while transfers serialize on the shared medium: throughput is
  // bound by the slower of the bandwidth floor and the latency-limited rate.
  const int window = std::max(1, options_.io_inflight_window);
  return std::max(transfer, blocking / window);
}

namespace {
// Packed cache key; scan groups are small (< 2^16 by a wide margin).
int64_t CacheKey(int record, int scan_group) {
  return (static_cast<int64_t>(record) << 16) |
         static_cast<int64_t>(scan_group & 0xffff);
}
}  // namespace

bool TrainingPipelineSim::CacheLookup(int record, int scan_group) {
  auto it = cache_index_.find(CacheKey(record, scan_group));
  if (it == cache_index_.end()) return false;
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  return true;
}

void TrainingPipelineSim::CacheInsert(int record, int scan_group,
                                      double bytes) {
  const double capacity = static_cast<double>(options_.decode_cache_bytes);
  if (bytes > capacity) return;  // Never fits; mirror the real oversize skip.
  const int64_t key = CacheKey(record, scan_group);
  cache_lru_.emplace_front(key, bytes);
  cache_index_[key] = cache_lru_.begin();
  cache_bytes_ += bytes;
  while (cache_bytes_ > capacity && cache_lru_.size() > 1) {
    cache_bytes_ -= cache_lru_.back().second;
    cache_index_.erase(cache_lru_.back().first);
    cache_lru_.pop_back();
  }
}

double TrainingPipelineSim::RecordDecodeSeconds(int record,
                                                int scan_group) const {
  if (!options_.model_decode_cost) return 0.0;
  const int images = RecordImages(record);
  const int groups = source_->num_scan_groups();
  const double per_image =
      groups > 1 ? decode_.ProgressiveImageSeconds(scan_group, groups)
                 : decode_.BaselineImageSeconds();
  return images * per_image;
}

EpochSimResult TrainingPipelineSim::SimulateRecords(int num_records,
                                                    ScanGroupPolicy* policy,
                                                    bool keep_trace) {
  PCR_CHECK(policy != nullptr);
  EpochSimResult result;
  const double start_time = std::max(now_, compute_busy_until_);
  const int num_groups = source_->num_scan_groups();

  // compute_start times of the last `prefetch_depth` iterations: slot for
  // the loader frees when the consumer picks up the (i - depth)-th batch.
  std::deque<double> recent_compute_starts;

  for (int i = 0; i < num_records; ++i) {
    if (cursor_ >= order_.size()) {
      cursor_ = 0;
      ++epoch_;
      rng_.Shuffle(&order_);
    }
    const int record = order_[cursor_++];
    const int group = policy->Select(num_groups, &rng_);

    // Loader starts when it finished the previous record and has a free
    // queue slot.
    double loader_start = std::max(loader_busy_until_, now_);
    if (static_cast<int>(recent_compute_starts.size()) >=
        options_.prefetch_depth) {
      loader_start = std::max(loader_start, recent_compute_starts.front());
      recent_compute_starts.pop_front();
    }
    const int images = RecordImages(record);
    const bool cache_enabled = options_.decode_cache_bytes > 0;
    const bool cache_hit = cache_enabled && CacheLookup(record, group);
    const double miss_io = RecordIoSeconds(record, group);
    const double miss_decode = RecordDecodeSeconds(record, group) /
                               std::max(1, options_.loader_threads);
    // A cache hit skips storage and decode entirely; its service time is the
    // batch copy out of the LRU. Misses pay the two overlapped stages; the
    // slower resource binds the service time (same attribution rule the
    // wall-clock LoaderPipeline applies).
    const double io = cache_hit ? 0.0 : miss_io;
    const double decode =
        cache_hit ? options_.cache_hit_record_seconds : miss_decode;
    const double service = std::max(io, decode);
    // Hit-resolved stalls count io-bound, matching the wall-clock pipeline
    // (its I/O workers serve hits; no decode work is pending).
    const bool io_bound = cache_hit || io >= decode;
    if (cache_enabled && !cache_hit) {
      CacheInsert(record, group, images * options_.decoded_bytes_per_image);
    }
    const double load_finish = loader_start + service;
    loader_busy_until_ = load_finish;
    const double compute_ready = std::max(compute_busy_until_, start_time);
    const double compute_start = std::max(compute_ready, load_finish);
    const double stall = compute_start - compute_ready;
    const double compute_finish = compute_start + compute_.SecondsFor(images);
    compute_busy_until_ = compute_finish;
    recent_compute_starts.push_back(compute_start);

    result.stall_seconds += stall;
    (io_bound ? result.io_bound_stall_seconds
              : result.decode_bound_stall_seconds) += stall;
    result.io_seconds += io;
    result.decode_seconds += decode;
    // Hits fetch nothing from storage.
    const uint64_t bytes =
        cache_hit ? 0 : source_->RecordReadBytes(record, group);
    result.bytes_read += bytes;
    result.images += images;
    ++result.records;
    if (cache_hit) {
      ++result.cache_hits;
      result.cache_hit_seconds_saved +=
          std::max(0.0, std::max(miss_io, miss_decode) - service);
    }
    if (keep_trace) {
      IterationTrace t;
      t.iteration = i;
      t.record = record;
      t.scan_group = group;
      t.bytes = bytes;
      t.load_seconds = service;
      t.io_seconds = io;
      t.decode_seconds = decode;
      t.data_stall_seconds = stall;
      t.io_bound = io_bound;
      t.cache_hit = cache_hit;
      t.compute_start = compute_start;
      t.compute_finish = compute_finish;
      result.trace.push_back(t);
    }
  }

  result.elapsed_seconds = compute_busy_until_ - start_time;
  result.images_per_sec =
      result.elapsed_seconds > 0 ? result.images / result.elapsed_seconds : 0;
  now_ = compute_busy_until_;
  return result;
}

EpochSimResult TrainingPipelineSim::SimulateEpoch(ScanGroupPolicy* policy,
                                                  bool keep_trace) {
  // Align to the start of a fresh epoch so "one epoch" covers each record
  // exactly once.
  const int remaining = static_cast<int>(order_.size() - cursor_);
  if (remaining != static_cast<int>(order_.size()) && remaining > 0) {
    cursor_ = order_.size();  // Skip the tail; next call reshuffles.
  }
  return SimulateRecords(static_cast<int>(order_.size()), policy, keep_trace);
}

}  // namespace pcr
