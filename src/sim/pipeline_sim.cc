#include "sim/pipeline_sim.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "util/logging.h"

namespace pcr {

TrainingPipelineSim::TrainingPipelineSim(RecordSource* source,
                                         DeviceProfile storage,
                                         ComputeProfile compute,
                                         DecodeCostModel decode,
                                         PipelineSimOptions options,
                                         uint64_t seed)
    : source_(source), storage_(std::move(storage)),
      compute_(std::move(compute)), decode_(decode), options_(options),
      rng_(seed) {
  PCR_CHECK(source != nullptr);
  order_.resize(source->num_records());
  std::iota(order_.begin(), order_.end(), 0);
  rng_.Shuffle(&order_);
}

int TrainingPipelineSim::RecordImages(int record) const {
  const int n = source_->RecordImages(record);
  return n > 0 ? n : options_.default_images_per_record;
}

double TrainingPipelineSim::RecordIoSeconds(int record, int scan_group) const {
  const uint64_t bytes = source_->RecordReadBytes(record, scan_group);
  // One seek (records are shuffled, so reads are never sequential with the
  // previous record) + request overhead + sequential transfer.
  return storage_.seek_latency_sec + storage_.per_op_latency_sec +
         static_cast<double>(bytes) / storage_.read_bandwidth_bytes_per_sec;
}

double TrainingPipelineSim::RecordDecodeSeconds(int record,
                                                int scan_group) const {
  if (!options_.model_decode_cost) return 0.0;
  const int images = RecordImages(record);
  const int groups = source_->num_scan_groups();
  const double per_image =
      groups > 1 ? decode_.ProgressiveImageSeconds(scan_group, groups)
                 : decode_.BaselineImageSeconds();
  return images * per_image;
}

EpochSimResult TrainingPipelineSim::SimulateRecords(int num_records,
                                                    ScanGroupPolicy* policy,
                                                    bool keep_trace) {
  PCR_CHECK(policy != nullptr);
  EpochSimResult result;
  const double start_time = std::max(now_, compute_busy_until_);
  const int num_groups = source_->num_scan_groups();

  // compute_start times of the last `prefetch_depth` iterations: slot for
  // the loader frees when the consumer picks up the (i - depth)-th batch.
  std::deque<double> recent_compute_starts;

  for (int i = 0; i < num_records; ++i) {
    if (cursor_ >= order_.size()) {
      cursor_ = 0;
      ++epoch_;
      rng_.Shuffle(&order_);
    }
    const int record = order_[cursor_++];
    const int group = policy->Select(num_groups, &rng_);

    // Loader starts when it finished the previous record and has a free
    // queue slot.
    double loader_start = std::max(loader_busy_until_, now_);
    if (static_cast<int>(recent_compute_starts.size()) >=
        options_.prefetch_depth) {
      loader_start = std::max(loader_start, recent_compute_starts.front());
      recent_compute_starts.pop_front();
    }
    const double io = RecordIoSeconds(record, group);
    const double decode = RecordDecodeSeconds(record, group) /
                          std::max(1, options_.loader_threads);
    // The two stages overlap; the slower resource binds the service time
    // (same attribution rule the wall-clock LoaderPipeline applies).
    const double service = std::max(io, decode);
    const bool io_bound = io >= decode;
    const double load_finish = loader_start + service;
    loader_busy_until_ = load_finish;

    const int images = RecordImages(record);
    const double compute_ready = std::max(compute_busy_until_, start_time);
    const double compute_start = std::max(compute_ready, load_finish);
    const double stall = compute_start - compute_ready;
    const double compute_finish = compute_start + compute_.SecondsFor(images);
    compute_busy_until_ = compute_finish;
    recent_compute_starts.push_back(compute_start);

    result.stall_seconds += stall;
    (io_bound ? result.io_bound_stall_seconds
              : result.decode_bound_stall_seconds) += stall;
    result.io_seconds += io;
    result.decode_seconds += decode;
    result.bytes_read += source_->RecordReadBytes(record, group);
    result.images += images;
    ++result.records;
    if (keep_trace) {
      IterationTrace t;
      t.iteration = i;
      t.record = record;
      t.scan_group = group;
      t.bytes = source_->RecordReadBytes(record, group);
      t.load_seconds = service;
      t.io_seconds = io;
      t.decode_seconds = decode;
      t.data_stall_seconds = stall;
      t.io_bound = io_bound;
      t.compute_start = compute_start;
      t.compute_finish = compute_finish;
      result.trace.push_back(t);
    }
  }

  result.elapsed_seconds = compute_busy_until_ - start_time;
  result.images_per_sec =
      result.elapsed_seconds > 0 ? result.images / result.elapsed_seconds : 0;
  now_ = compute_busy_until_;
  return result;
}

EpochSimResult TrainingPipelineSim::SimulateEpoch(ScanGroupPolicy* policy,
                                                  bool keep_trace) {
  // Align to the start of a fresh epoch so "one epoch" covers each record
  // exactly once.
  const int remaining = static_cast<int>(order_.size() - cursor_);
  if (remaining != static_cast<int>(order_.size()) && remaining > 0) {
    cursor_ = order_.size();  // Skip the tail; next call reshuffles.
  }
  return SimulateRecords(static_cast<int>(order_.size()), policy, keep_trace);
}

}  // namespace pcr
