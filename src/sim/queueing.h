// The queueing model of Appendix A.2, as code: expected read time
// (Lemma A.1), Little's-law throughput (Lemma A.2), the data-reduction
// speedup (Lemma A.3), the pipeline bound X <= min(Xc, Xg) (Lemma A.4), and
// the data-bound speedup (Theorem A.5). Plus the roofline-style predictor of
// Figure 14.
#pragma once

#include <cstdint>

namespace pcr {

/// Storage-side parameters of the model.
struct IoModel {
  double bandwidth_bytes_per_sec = 450.0 * (1 << 20);  // W.
  double per_record_overhead_sec = 0.0;                // The Theta(1) term.
};

/// Lemma A.1: E[t] = n * E[s(x)] / W (+ overhead). Returns seconds per
/// record of n images with mean image size `mean_image_bytes`.
double ExpectedRecordReadSeconds(const IoModel& io, double mean_image_bytes,
                                 int images_per_record);

/// Lemma A.2: X = W / E[s(x, g)], images per second.
double DataPipelineThroughput(const IoModel& io, double mean_image_bytes);

/// Lemma A.3 / Theorem A.5: throughput speedup of scan group g over
/// baseline = E[s(x)] / E[s(x, g)].
double DataReductionSpeedup(double mean_full_bytes, double mean_group_bytes);

/// Lemma A.4: X <= min(Xc, Xg).
double PipelineThroughputBound(double compute_rate, double data_rate);

/// Figure 14's roofline: achieved images/sec as a function of mean bytes per
/// image ("byte intensity"), given compute ceiling Xc.
double RooflineThroughput(const IoModel& io, double compute_rate,
                          double mean_image_bytes);

}  // namespace pcr
