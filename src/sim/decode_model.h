// Decode-cost model for the loader CPU side. Calibrated to the paper's
// Appendix A.5 microbenchmark: ~225 baseline images/s/core vs ~150-165
// progressive images/s/core (a 40-50% overhead for all 10 scans), with the
// overhead scaling in the number of scans actually decoded.
#pragma once

namespace pcr {

struct DecodeCostModel {
  /// Seconds to decode one full-quality *baseline* image on one core
  /// (1/225 per the paper's PIL measurement).
  double baseline_image_sec = 1.0 / 225.0;
  /// Relative extra cost of decoding a progressive image with all scans
  /// (0.45 ~= the paper's 40-50%).
  double progressive_overhead = 0.45;
  /// Fixed per-image setup fraction of the baseline cost (header parsing,
  /// color convert) that does not shrink with fewer scans.
  double fixed_fraction = 0.35;

  /// Seconds of one core to decode one progressive image truncated at
  /// `scan_group` out of `num_groups`. Fewer scans decode faster, but a
  /// fixed cost remains (IDCT + color conversion run regardless).
  double ProgressiveImageSeconds(int scan_group, int num_groups) const {
    const double full = baseline_image_sec * (1.0 + progressive_overhead);
    const double variable = full * (1.0 - fixed_fraction);
    const double fixed = full * fixed_fraction;
    const double frac =
        num_groups > 0
            ? static_cast<double>(scan_group) / static_cast<double>(num_groups)
            : 1.0;
    return fixed + variable * frac;
  }

  double BaselineImageSeconds() const { return baseline_image_sec; }
};

}  // namespace pcr
