#include "sim/queueing.h"

#include <algorithm>

namespace pcr {

double ExpectedRecordReadSeconds(const IoModel& io, double mean_image_bytes,
                                 int images_per_record) {
  return io.per_record_overhead_sec +
         images_per_record * mean_image_bytes / io.bandwidth_bytes_per_sec;
}

double DataPipelineThroughput(const IoModel& io, double mean_image_bytes) {
  if (mean_image_bytes <= 0.0) return 0.0;
  return io.bandwidth_bytes_per_sec / mean_image_bytes;
}

double DataReductionSpeedup(double mean_full_bytes, double mean_group_bytes) {
  if (mean_group_bytes <= 0.0) return 1.0;
  return mean_full_bytes / mean_group_bytes;
}

double PipelineThroughputBound(double compute_rate, double data_rate) {
  return std::min(compute_rate, data_rate);
}

double RooflineThroughput(const IoModel& io, double compute_rate,
                          double mean_image_bytes) {
  return PipelineThroughputBound(compute_rate,
                                 DataPipelineThroughput(io, mean_image_bytes));
}

}  // namespace pcr
