// Compute-unit model: parameter-update service rates measured in the paper
// ("This GPU allows us to train (with FP32/FP16) ResNet-18 at 405/445 images
// per second and ShuffleNetv2 at 760/750 images per second", §A.5), scaled
// to the 10-worker cluster.
#pragma once

#include <string>

namespace pcr {

/// Service-rate description of one model on the evaluation hardware.
struct ComputeProfile {
  std::string model_name = "resnet18";
  double images_per_sec_per_gpu = 445.0;  // Mixed precision, as in the paper.
  int num_gpus = 10;
  /// Cluster-wide ceiling, adjusted for the in-memory measured rates (4240
  /// and 7180 images/s are slightly below the linear 10x scaling).
  double cluster_images_per_sec = 4240.0;

  double ClusterRate() const { return cluster_images_per_sec; }
  /// Seconds of GPU time for n images.
  double SecondsFor(int images) const {
    return static_cast<double>(images) / ClusterRate();
  }

  /// The paper's two architectures on the 10x TitanX cluster.
  static ComputeProfile ResNet18();
  static ComputeProfile ShuffleNetV2();
  /// A hypothetical faster accelerator (the paper: "State of the art compute
  /// is 150x faster"); used in ablations.
  static ComputeProfile FastAccelerator(double multiplier);
};

}  // namespace pcr
