// Feature extraction for the proxy training models. Decoded images are
// reduced to a pooled luma grid plus (optionally) a pooled high-frequency
// energy grid. The high-frequency channel is what makes a model *sensitive*
// to the information early JPEG scans discard — the mechanism behind the
// paper's "different models can tolerate different levels of data quality"
// (ShuffleNet's accuracy depends on fine-grained features; ResNet's less
// so).
#pragma once

#include <vector>

#include "image/image.h"
#include "image/transform.h"
#include "util/random.h"

namespace pcr {

struct FeatureOptions {
  /// Pooled grid resolution (grid x grid cells per channel).
  int grid = 14;
  /// Adds a |highpass| energy grid: local detail the DC-only scan removes.
  bool include_highpass = true;
  /// Relative weight of the highpass channel (how much the model "relies"
  /// on fine-grained features).
  float highpass_gain = 1.0f;
  /// Standard augmentation before pooling; crop=0 uses the whole image.
  int crop = 0;
  bool random_augment = false;  // Random crop+flip (train) vs center (eval).
};

/// Stateless extractor (thread-safe const use).
class FeatureExtractor {
 public:
  explicit FeatureExtractor(FeatureOptions options) : options_(options) {}

  int dim() const {
    return options_.grid * options_.grid *
           (options_.include_highpass ? 2 : 1);
  }

  /// Extracts features; `rng` is only consulted when random_augment is set.
  std::vector<float> Extract(const Image& img, Rng* rng = nullptr) const;

  const FeatureOptions& options() const { return options_; }

 private:
  FeatureOptions options_;
};

}  // namespace pcr
