#include "train/features.h"

#include <algorithm>
#include <cmath>

#include "image/color.h"

namespace pcr {

std::vector<float> FeatureExtractor::Extract(const Image& img,
                                             Rng* rng) const {
  Image work = img;
  if (options_.crop > 0) {
    if (options_.random_augment && rng != nullptr) {
      work = RandomCrop(work, options_.crop, options_.crop, rng);
      if (rng->NextBernoulli(0.5)) work = FlipHorizontal(work);
    } else {
      work = CenterCrop(work, options_.crop, options_.crop);
    }
  }
  const Image gray = ToGrayscale(work);
  const int w = gray.width();
  const int h = gray.height();
  const int grid = options_.grid;

  std::vector<float> features(dim(), 0.0f);
  std::vector<int> counts(static_cast<size_t>(grid) * grid, 0);

  // Pooled luma.
  for (int y = 0; y < h; ++y) {
    const int gy = std::min(grid - 1, y * grid / h);
    for (int x = 0; x < w; ++x) {
      const int gx = std::min(grid - 1, x * grid / w);
      features[gy * grid + gx] += gray.at(x, y, 0);
      ++counts[gy * grid + gx];
    }
  }
  for (int i = 0; i < grid * grid; ++i) {
    if (counts[i] > 0) {
      features[i] = (features[i] / counts[i] - 128.0f) / 64.0f;
    }
  }

  if (!options_.include_highpass) return features;

  // Pooled |highpass|: sample minus 3x3 box blur, rectified.
  const int base = grid * grid;
  std::fill(counts.begin(), counts.end(), 0);
  for (int y = 0; y < h; ++y) {
    const int gy = std::min(grid - 1, y * grid / h);
    for (int x = 0; x < w; ++x) {
      const int gx = std::min(grid - 1, x * grid / w);
      float blur = 0.0f;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int sx = std::clamp(x + dx, 0, w - 1);
          const int sy = std::clamp(y + dy, 0, h - 1);
          blur += gray.at(sx, sy, 0);
        }
      }
      blur /= 9.0f;
      features[base + gy * grid + gx] +=
          std::fabs(static_cast<float>(gray.at(x, y, 0)) - blur);
      ++counts[gy * grid + gx];
    }
  }
  for (int i = 0; i < grid * grid; ++i) {
    if (counts[i] > 0) {
      features[base + i] =
          options_.highpass_gain * (features[base + i] / counts[i]) / 16.0f;
    }
  }
  return features;
}

}  // namespace pcr
