#include "train/dataset_cache.h"

#include <algorithm>
#include <map>
#include <set>

#include "loader/decode_cache.h"
#include "loader/pipeline.h"
#include "util/logging.h"
#include "util/random.h"

namespace pcr {

Result<std::vector<CachedDataset>> CachedDataset::BuildMulti(
    RecordSource* source, const CachedDatasetOptions& options,
    const std::vector<FeatureOptions>& extractor_options) {
  PCR_CHECK(!extractor_options.empty());
  if (source->num_records() <= 0) {
    return Status::InvalidArgument("dataset has no records to cache");
  }
  const size_t k = extractor_options.size();
  // One id shared by every per-group pipeline of this build (and, when the
  // caller passes the same cache+id to later builds, across builds too).
  uint64_t cache_dataset_id = options.cache_dataset_id;
  if (options.decode_cache != nullptr && cache_dataset_id == 0) {
    cache_dataset_id = options.decode_cache->RegisterDataset();
  }
  std::vector<CachedDataset> out(k);
  std::vector<FeatureExtractor> extractors;
  extractors.reserve(k);
  for (size_t m = 0; m < k; ++m) {
    extractors.emplace_back(extractor_options[m]);
    out[m].dim_ = extractors[m].dim();
    out[m].max_group_ = source->num_scan_groups();
  }
  const int max_group = source->num_scan_groups();

  std::set<int> groups;
  for (int g : options.scan_groups) groups.insert(std::clamp(g, 1, max_group));
  groups.insert(max_group);
  for (auto& ds : out) {
    ds.cached_groups_.assign(groups.begin(), groups.end());
  }

  // Iterate records once per group; the train/test split and the
  // augmentation draws use per-group-identical streams so every quality view
  // sees the same crop of the same image. Fetch and decode run concurrently
  // in a staged LoaderPipeline; the RNG streams are positional, so records
  // pass through a reorder buffer back into index order before extraction.
  std::set<int64_t> class_set;
  for (int g : out[0].cached_groups_) {
    const bool is_max = g == max_group;
    Rng per_image_rng(options.seed + 17);
    std::vector<Rng> augment_rngs(k, Rng(options.seed ^ 0xa5a5a5a5));

    // Non-max passes decode the (later skipped) test images too; the
    // parallel decode stage absorbs that ~train_fraction remainder, and in
    // exchange every train image's decode overlaps the next fetch.
    LoaderPipelineOptions pipeline_options;
    pipeline_options.io_threads = options.io_threads;
    pipeline_options.io_inflight = options.io_inflight;
    pipeline_options.decode_threads = options.decode_threads;
    pipeline_options.shuffle = false;
    pipeline_options.max_epochs = 1;
    pipeline_options.scan_policy = std::make_shared<FixedScanPolicy>(g);
    pipeline_options.decode_cache = options.decode_cache;
    pipeline_options.cache_dataset_id = cache_dataset_id;
    LoaderPipeline pipeline(source, pipeline_options);

    std::map<int, LoadedBatch> pending;
    int next_record = 0;
    while (next_record < source->num_records()) {
      PCR_ASSIGN_OR_RETURN(LoadedBatch fetched, pipeline.Next());
      pending.emplace(fetched.record_index, std::move(fetched));
      for (auto it = pending.find(next_record); it != pending.end();
           it = pending.find(++next_record)) {
        const LoadedBatch& batch = it->second;
        for (int i = 0; i < batch.size(); ++i) {
          const bool is_train =
              per_image_rng.NextDouble() < options.train_fraction;
          int64_t label = batch.labels[i];
          if (options.label_map) label = options.label_map(label);
          if (!is_train && !is_max) continue;  // Test uses full quality only.
          const Image& img = batch.images[i];
          for (size_t m = 0; m < k; ++m) {
            if (is_train) {
              const auto features =
                  extractors[m].Extract(img, &augment_rngs[m]);
              auto& dst = out[m].train_features_[g];
              dst.insert(dst.end(), features.begin(), features.end());
            } else {
              const auto features = extractors[m].Extract(img, nullptr);
              out[m].test_features_.insert(out[m].test_features_.end(),
                                           features.begin(), features.end());
            }
          }
          if (is_train) {
            if (g == out[0].cached_groups_.front()) {
              out[0].train_labels_.push_back(label);
              class_set.insert(label);
            }
          } else {
            out[0].test_labels_.push_back(label);
            class_set.insert(label);
          }
        }
        pending.erase(it);
      }
    }
  }

  // Labels must be dense [0, C); remap if needed.
  int64_t max_label = -1;
  for (int64_t c : class_set) max_label = std::max(max_label, c);
  if (max_label + 1 != static_cast<int64_t>(class_set.size())) {
    std::map<int64_t, int64_t> remap;
    int64_t next = 0;
    for (int64_t c : class_set) remap[c] = next++;
    for (auto& l : out[0].train_labels_) l = remap[l];
    for (auto& l : out[0].test_labels_) l = remap[l];
  }
  const int num_classes = static_cast<int>(class_set.size());

  if (out[0].train_labels_.empty() || out[0].test_labels_.empty()) {
    return Status::InvalidArgument("dataset split produced an empty side");
  }
  // Replicate shared label/class data into the sibling views.
  for (size_t m = 0; m < k; ++m) {
    out[m].num_classes_ = num_classes;
    if (m > 0) {
      out[m].train_labels_ = out[0].train_labels_;
      out[m].test_labels_ = out[0].test_labels_;
    }
  }
  // Test labels were appended once per max-group pass only; train labels
  // once per first group pass. Sanity-check shapes.
  for (size_t m = 0; m < k; ++m) {
    PCR_CHECK_EQ(out[m].test_features_.size(),
                 out[m].test_labels_.size() * out[m].dim_);
    for (int g : out[m].cached_groups_) {
      PCR_CHECK_EQ(out[m].train_features_[g].size(),
                   out[m].train_labels_.size() * out[m].dim_);
    }
  }
  return out;
}

Result<CachedDataset> CachedDataset::Build(RecordSource* source,
                                           const CachedDatasetOptions& options) {
  PCR_ASSIGN_OR_RETURN(auto multi,
                       BuildMulti(source, options, {options.features}));
  return std::move(multi[0]);
}

int CachedDataset::NearestCachedGroup(int group) const {
  for (int g : cached_groups_) {
    if (g >= group) return g;
  }
  return cached_groups_.back();
}

const float* CachedDataset::train_features(int group) const {
  auto it = train_features_.find(group);
  PCR_CHECK(it != train_features_.end())
      << "scan group " << group << " not cached";
  return it->second.data();
}

}  // namespace pcr
