// CachedDataset: decodes a RecordSource at one or more scan groups and
// caches extracted features, so multi-epoch SGD runs at memory speed while
// storage timing is simulated separately (see DESIGN.md §4). Test features
// are always extracted at full quality (the paper evaluates on the original
// validation images).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/record_source.h"
#include "train/features.h"
#include "util/result.h"

namespace pcr {

class DecodeCache;  // loader/decode_cache.h

struct CachedDatasetOptions {
  /// Scan groups to materialize training views for. The source's maximum
  /// group (baseline quality) is always added.
  std::vector<int> scan_groups = {1, 2, 5, 10};
  FeatureOptions features;
  double train_fraction = 0.8;
  uint64_t seed = 1;
  /// Optional label remapping (e.g. Cars -> Make-Only -> Is-Corvette).
  std::function<int64_t(int64_t)> label_map;
  /// Thread counts for the staged LoaderPipeline that feeds the build
  /// (storage fetch and JPEG decode run concurrently; feature extraction
  /// stays on the calling thread for determinism). io_inflight is the
  /// per-worker async submission window (LoaderPipelineOptions::io_inflight).
  int io_threads = 2;
  int io_inflight = 4;
  int decode_threads = 4;
  /// Optional decoded-record cache shared with the feeding pipelines. One
  /// Build pass reads each (record, group) once, so hits only appear across
  /// repeated builds over the same source (e.g. per-proxy rebuilds or tuner
  /// probes) — pass the same cache and dataset id to share them.
  std::shared_ptr<DecodeCache> decode_cache;
  uint64_t cache_dataset_id = 0;
};

/// Feature views of one dataset at several qualities.
class CachedDataset {
 public:
  static Result<CachedDataset> Build(RecordSource* source,
                                     const CachedDatasetOptions& options);

  /// Builds several feature views (e.g. one per model proxy) from a single
  /// decode pass — decoding dominates, so this is ~Kx cheaper than K Build
  /// calls. The k-th result uses extractors[k]; options.features is ignored.
  static Result<std::vector<CachedDataset>> BuildMulti(
      RecordSource* source, const CachedDatasetOptions& options,
      const std::vector<FeatureOptions>& extractors);

  int feature_dim() const { return dim_; }
  int num_classes() const { return num_classes_; }
  int train_size() const { return static_cast<int>(train_labels_.size()); }
  int test_size() const { return static_cast<int>(test_labels_.size()); }
  int max_group() const { return max_group_; }

  /// Cached groups, ascending (always contains max_group()).
  const std::vector<int>& cached_groups() const { return cached_groups_; }
  /// Nearest cached group >= `group` (or the largest cached one).
  int NearestCachedGroup(int group) const;

  /// Row-major [train_size x dim] features at the given *cached* group.
  const float* train_features(int group) const;
  const int64_t* train_labels() const { return train_labels_.data(); }
  /// Full-quality test view.
  const float* test_features() const { return test_features_.data(); }
  const int64_t* test_labels() const { return test_labels_.data(); }

 private:
  int dim_ = 0;
  int num_classes_ = 0;
  int max_group_ = 1;
  std::vector<int> cached_groups_;
  std::map<int, std::vector<float>> train_features_;  // By group.
  std::vector<int64_t> train_labels_;
  std::vector<float> test_features_;
  std::vector<int64_t> test_labels_;
};

}  // namespace pcr
