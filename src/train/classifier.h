// Trainable classifiers: multinomial logistic regression (softmax) and a
// one-hidden-layer MLP, trained with minibatch SGD + momentum + weight
// decay. These are the proxy models standing in for ResNet-18/ShuffleNetv2
// (see DESIGN.md: statistical-efficiency effects come from real SGD on real
// decoded pixels; throughput effects come from the pipeline simulator).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/random.h"

namespace pcr {

/// SGD hyperparameters (the paper's ImageNet recipe scaled down).
struct SgdOptions {
  double lr = 0.1;
  double momentum = 0.9;
  double weight_decay = 1e-4;
  int batch_size = 128;
};

/// Interface shared by the proxy models.
class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual int dim() const = 0;
  virtual int num_classes() const = 0;

  /// Accumulates gradients for one example into internal minibatch buffers;
  /// returns the example's cross-entropy loss.
  virtual double AccumulateExample(const float* x, int label) = 0;

  /// Applies the buffered minibatch gradient (averaged over `count`
  /// examples) with the given learning rate; clears buffers.
  virtual void ApplyUpdate(double lr, int count) = 0;

  virtual int Predict(const float* x) const = 0;
  virtual double ExampleLoss(const float* x, int label) const = 0;

  /// Flattened parameter gradient of the mean loss over a dataset slice
  /// (no update applied). Used for gradient-cosine tuning (§A.6.2).
  virtual std::vector<float> FullGradient(
      const float* features, const int64_t* labels, int n) const = 0;

  /// Parameter snapshot / rollback (checkpointing for the §4.5 tuner).
  virtual std::vector<float> SaveParams() const = 0;
  virtual void RestoreParams(const std::vector<float>& params) = 0;

  SgdOptions& sgd() { return sgd_; }
  const SgdOptions& sgd() const { return sgd_; }

 protected:
  SgdOptions sgd_;
};

/// Linear softmax classifier.
class SoftmaxClassifier : public Classifier {
 public:
  SoftmaxClassifier(int dim, int num_classes, uint64_t seed);

  int dim() const override { return dim_; }
  int num_classes() const override { return classes_; }
  double AccumulateExample(const float* x, int label) override;
  void ApplyUpdate(double lr, int count) override;
  int Predict(const float* x) const override;
  double ExampleLoss(const float* x, int label) const override;
  std::vector<float> FullGradient(const float* features,
                                  const int64_t* labels, int n) const override;
  std::vector<float> SaveParams() const override;
  void RestoreParams(const std::vector<float>& params) override;

 private:
  void Logits(const float* x, std::vector<double>* logits) const;

  int dim_;
  int classes_;
  std::vector<float> w_;      // classes x dim.
  std::vector<float> b_;      // classes.
  std::vector<float> gw_;     // Minibatch gradient buffers.
  std::vector<float> gb_;
  std::vector<float> vw_;     // Momentum.
  std::vector<float> vb_;
};

/// One-hidden-layer ReLU MLP.
class MlpClassifier : public Classifier {
 public:
  MlpClassifier(int dim, int hidden, int num_classes, uint64_t seed);

  int dim() const override { return dim_; }
  int num_classes() const override { return classes_; }
  double AccumulateExample(const float* x, int label) override;
  void ApplyUpdate(double lr, int count) override;
  int Predict(const float* x) const override;
  double ExampleLoss(const float* x, int label) const override;
  std::vector<float> FullGradient(const float* features,
                                  const int64_t* labels, int n) const override;
  std::vector<float> SaveParams() const override;
  void RestoreParams(const std::vector<float>& params) override;

 private:
  // Forward pass helper; returns loss, fills activations and probabilities.
  double Forward(const float* x, int label, std::vector<double>* hidden,
                 std::vector<double>* probs) const;
  // Backward into the given gradient buffers.
  void Backward(const float* x, int label, const std::vector<double>& hidden,
                const std::vector<double>& probs, float* gw1, float* gb1,
                float* gw2, float* gb2) const;

  int dim_;
  int hidden_;
  int classes_;
  std::vector<float> w1_, b1_, w2_, b2_;
  std::vector<float> gw1_, gb1_, gw2_, gb2_;
  std::vector<float> vw1_, vb1_, vw2_, vb2_;
};

}  // namespace pcr
