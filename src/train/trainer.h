// Trainer: minibatch SGD over a CachedDataset with the paper's learning-rate
// recipe (warmup + step decay), per-epoch quality selection (fixed group or
// mixture), test-set evaluation, checkpoint/rollback, and the
// gradient-cosine diagnostics of §A.6.2.
#pragma once

#include <memory>
#include <vector>

#include "loader/scan_policy.h"
#include "train/classifier.h"
#include "train/dataset_cache.h"
#include "util/random.h"

namespace pcr {

struct TrainerOptions {
  double base_lr = 0.1;
  int warmup_epochs = 5;            // Gradual warmup (Goyal et al.).
  std::vector<int> decay_epochs = {30, 60};
  double decay_factor = 0.1;
  int batch_size = 128;
  uint64_t seed = 7;
};

/// Cosine similarity of two flat vectors (0 when either is ~zero).
double CosineSimilarity(const std::vector<float>& a,
                        const std::vector<float>& b);

class Trainer {
 public:
  Trainer(const CachedDataset* dataset, Classifier* model,
          TrainerOptions options);

  /// One epoch at a fixed scan group (clamped to the nearest cached view).
  /// Returns mean training loss.
  double RunEpoch(int scan_group);

  /// One epoch where each *minibatch* draws its scan group from the policy
  /// (mixture training, §A.6.3). Selected groups snap to cached views.
  double RunEpochMixture(ScanGroupPolicy* policy);

  /// Top-1 accuracy on the held-out full-quality test set, in percent.
  double TestAccuracy() const;

  /// Mean training loss at a scan group without updating parameters.
  double EvalTrainLoss(int scan_group) const;

  /// Full-batch gradient on (up to max_examples of) the group's view.
  std::vector<float> GradientForGroup(int scan_group,
                                      int max_examples = 0) const;

  /// cos angle between the group's gradient and the full-quality gradient —
  /// the §A.6.2 tuning signal.
  double GradientCosine(int scan_group, int max_examples = 0) const;

  /// Parameter checkpointing (for tuning-phase rollback, §4.5).
  std::vector<float> Checkpoint() const { return model_->SaveParams(); }
  void Restore(const std::vector<float>& ckpt) {
    model_->RestoreParams(ckpt);
  }

  int epoch() const { return epoch_; }
  /// The LR the schedule will use for the next epoch.
  double CurrentLr() const;

  Classifier* model() { return model_; }
  const CachedDataset* dataset() const { return dataset_; }

 private:
  double RunEpochInternal(ScanGroupPolicy* policy_or_null, int fixed_group);

  const CachedDataset* dataset_;
  Classifier* model_;
  TrainerOptions options_;
  Rng rng_;
  int epoch_ = 0;
  std::vector<int> order_;  // Example order, reshuffled per epoch.
};

}  // namespace pcr
