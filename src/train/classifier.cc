#include "train/classifier.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pcr {

namespace {

// Softmax cross-entropy from logits; returns loss and fills probabilities.
double SoftmaxLoss(const std::vector<double>& logits, int label,
                   std::vector<double>* probs) {
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  probs->resize(logits.size());
  for (size_t c = 0; c < logits.size(); ++c) {
    (*probs)[c] = std::exp(logits[c] - max_logit);
    sum += (*probs)[c];
  }
  for (double& p : *probs) p /= sum;
  const double p_true = std::max((*probs)[label], 1e-12);
  return -std::log(p_true);
}

void SgdStep(std::vector<float>* params, std::vector<float>* velocity,
             std::vector<float>* grad, double lr, double momentum,
             double weight_decay, int count) {
  const float scale = 1.0f / std::max(1, count);
  for (size_t i = 0; i < params->size(); ++i) {
    const float g =
        (*grad)[i] * scale + static_cast<float>(weight_decay) * (*params)[i];
    (*velocity)[i] =
        static_cast<float>(momentum) * (*velocity)[i] + g;
    (*params)[i] -= static_cast<float>(lr) * (*velocity)[i];
    (*grad)[i] = 0.0f;
  }
}

}  // namespace

// ------------------------------------------------------------- Softmax

SoftmaxClassifier::SoftmaxClassifier(int dim, int num_classes, uint64_t seed)
    : dim_(dim), classes_(num_classes) {
  PCR_CHECK_GT(dim, 0);
  PCR_CHECK_GT(num_classes, 1);
  Rng rng(seed);
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim));
  w_.resize(static_cast<size_t>(classes_) * dim_);
  for (auto& v : w_) v = static_cast<float>(rng.NextGaussian() * scale * 0.1);
  b_.assign(classes_, 0.0f);
  gw_.assign(w_.size(), 0.0f);
  gb_.assign(b_.size(), 0.0f);
  vw_.assign(w_.size(), 0.0f);
  vb_.assign(b_.size(), 0.0f);
}

void SoftmaxClassifier::Logits(const float* x,
                               std::vector<double>* logits) const {
  logits->assign(classes_, 0.0);
  for (int c = 0; c < classes_; ++c) {
    const float* wc = w_.data() + static_cast<size_t>(c) * dim_;
    double acc = b_[c];
    for (int i = 0; i < dim_; ++i) acc += wc[i] * x[i];
    (*logits)[c] = acc;
  }
}

double SoftmaxClassifier::AccumulateExample(const float* x, int label) {
  std::vector<double> logits, probs;
  Logits(x, &logits);
  const double loss = SoftmaxLoss(logits, label, &probs);
  for (int c = 0; c < classes_; ++c) {
    const float err =
        static_cast<float>(probs[c] - (c == label ? 1.0 : 0.0));
    float* gwc = gw_.data() + static_cast<size_t>(c) * dim_;
    for (int i = 0; i < dim_; ++i) gwc[i] += err * x[i];
    gb_[c] += err;
  }
  return loss;
}

void SoftmaxClassifier::ApplyUpdate(double lr, int count) {
  SgdStep(&w_, &vw_, &gw_, lr, sgd_.momentum, sgd_.weight_decay, count);
  SgdStep(&b_, &vb_, &gb_, lr, sgd_.momentum, 0.0, count);
}

int SoftmaxClassifier::Predict(const float* x) const {
  std::vector<double> logits;
  Logits(x, &logits);
  return static_cast<int>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

double SoftmaxClassifier::ExampleLoss(const float* x, int label) const {
  std::vector<double> logits, probs;
  Logits(x, &logits);
  return SoftmaxLoss(logits, label, &probs);
}

std::vector<float> SoftmaxClassifier::FullGradient(const float* features,
                                                   const int64_t* labels,
                                                   int n) const {
  std::vector<float> grad(w_.size() + b_.size(), 0.0f);
  std::vector<double> logits, probs;
  for (int e = 0; e < n; ++e) {
    const float* x = features + static_cast<size_t>(e) * dim_;
    Logits(x, &logits);
    SoftmaxLoss(logits, static_cast<int>(labels[e]), &probs);
    for (int c = 0; c < classes_; ++c) {
      const float err = static_cast<float>(
          probs[c] - (c == static_cast<int>(labels[e]) ? 1.0 : 0.0));
      float* gwc = grad.data() + static_cast<size_t>(c) * dim_;
      for (int i = 0; i < dim_; ++i) gwc[i] += err * x[i];
      grad[w_.size() + c] += err;
    }
  }
  const float scale = 1.0f / std::max(1, n);
  for (auto& g : grad) g *= scale;
  return grad;
}

std::vector<float> SoftmaxClassifier::SaveParams() const {
  std::vector<float> out = w_;
  out.insert(out.end(), b_.begin(), b_.end());
  out.insert(out.end(), vw_.begin(), vw_.end());
  out.insert(out.end(), vb_.begin(), vb_.end());
  return out;
}

void SoftmaxClassifier::RestoreParams(const std::vector<float>& params) {
  PCR_CHECK_EQ(params.size(), 2 * (w_.size() + b_.size()));
  size_t off = 0;
  std::copy(params.begin() + off, params.begin() + off + w_.size(), w_.begin());
  off += w_.size();
  std::copy(params.begin() + off, params.begin() + off + b_.size(), b_.begin());
  off += b_.size();
  std::copy(params.begin() + off, params.begin() + off + vw_.size(),
            vw_.begin());
  off += vw_.size();
  std::copy(params.begin() + off, params.begin() + off + vb_.size(),
            vb_.begin());
}

// ----------------------------------------------------------------- MLP

MlpClassifier::MlpClassifier(int dim, int hidden, int num_classes,
                             uint64_t seed)
    : dim_(dim), hidden_(hidden), classes_(num_classes) {
  PCR_CHECK_GT(hidden, 0);
  Rng rng(seed);
  auto init = [&](std::vector<float>* v, size_t n, double fan_in) {
    v->resize(n);
    const double scale = std::sqrt(2.0 / fan_in);
    for (auto& x : *v) x = static_cast<float>(rng.NextGaussian() * scale);
  };
  init(&w1_, static_cast<size_t>(hidden_) * dim_, dim_);
  b1_.assign(hidden_, 0.0f);
  init(&w2_, static_cast<size_t>(classes_) * hidden_, hidden_);
  b2_.assign(classes_, 0.0f);
  gw1_.assign(w1_.size(), 0.0f);
  gb1_.assign(b1_.size(), 0.0f);
  gw2_.assign(w2_.size(), 0.0f);
  gb2_.assign(b2_.size(), 0.0f);
  vw1_.assign(w1_.size(), 0.0f);
  vb1_.assign(b1_.size(), 0.0f);
  vw2_.assign(w2_.size(), 0.0f);
  vb2_.assign(b2_.size(), 0.0f);
}

double MlpClassifier::Forward(const float* x, int label,
                              std::vector<double>* hidden,
                              std::vector<double>* probs) const {
  hidden->assign(hidden_, 0.0);
  for (int h = 0; h < hidden_; ++h) {
    const float* w = w1_.data() + static_cast<size_t>(h) * dim_;
    double acc = b1_[h];
    for (int i = 0; i < dim_; ++i) acc += w[i] * x[i];
    (*hidden)[h] = acc > 0.0 ? acc : 0.0;  // ReLU.
  }
  std::vector<double> logits(classes_, 0.0);
  for (int c = 0; c < classes_; ++c) {
    const float* w = w2_.data() + static_cast<size_t>(c) * hidden_;
    double acc = b2_[c];
    for (int h = 0; h < hidden_; ++h) acc += w[h] * (*hidden)[h];
    logits[c] = acc;
  }
  return SoftmaxLoss(logits, label, probs);
}

void MlpClassifier::Backward(const float* x, int label,
                             const std::vector<double>& hidden,
                             const std::vector<double>& probs, float* gw1,
                             float* gb1, float* gw2, float* gb2) const {
  std::vector<double> dhidden(hidden_, 0.0);
  for (int c = 0; c < classes_; ++c) {
    const double err = probs[c] - (c == label ? 1.0 : 0.0);
    float* g = gw2 + static_cast<size_t>(c) * hidden_;
    const float* w = w2_.data() + static_cast<size_t>(c) * hidden_;
    for (int h = 0; h < hidden_; ++h) {
      g[h] += static_cast<float>(err * hidden[h]);
      dhidden[h] += err * w[h];
    }
    gb2[c] += static_cast<float>(err);
  }
  for (int h = 0; h < hidden_; ++h) {
    if (hidden[h] <= 0.0) continue;  // ReLU gate.
    float* g = gw1 + static_cast<size_t>(h) * dim_;
    const float dh = static_cast<float>(dhidden[h]);
    for (int i = 0; i < dim_; ++i) g[i] += dh * x[i];
    gb1[h] += dh;
  }
}

double MlpClassifier::AccumulateExample(const float* x, int label) {
  std::vector<double> hidden, probs;
  const double loss = Forward(x, label, &hidden, &probs);
  Backward(x, label, hidden, probs, gw1_.data(), gb1_.data(), gw2_.data(),
           gb2_.data());
  return loss;
}

void MlpClassifier::ApplyUpdate(double lr, int count) {
  SgdStep(&w1_, &vw1_, &gw1_, lr, sgd_.momentum, sgd_.weight_decay, count);
  SgdStep(&b1_, &vb1_, &gb1_, lr, sgd_.momentum, 0.0, count);
  SgdStep(&w2_, &vw2_, &gw2_, lr, sgd_.momentum, sgd_.weight_decay, count);
  SgdStep(&b2_, &vb2_, &gb2_, lr, sgd_.momentum, 0.0, count);
}

int MlpClassifier::Predict(const float* x) const {
  std::vector<double> hidden, probs;
  Forward(x, 0, &hidden, &probs);
  return static_cast<int>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

double MlpClassifier::ExampleLoss(const float* x, int label) const {
  std::vector<double> hidden, probs;
  return Forward(x, label, &hidden, &probs);
}

std::vector<float> MlpClassifier::FullGradient(const float* features,
                                               const int64_t* labels,
                                               int n) const {
  std::vector<float> grad(w1_.size() + b1_.size() + w2_.size() + b2_.size(),
                          0.0f);
  float* gw1 = grad.data();
  float* gb1 = gw1 + w1_.size();
  float* gw2 = gb1 + b1_.size();
  float* gb2 = gw2 + w2_.size();
  std::vector<double> hidden, probs;
  for (int e = 0; e < n; ++e) {
    const float* x = features + static_cast<size_t>(e) * dim_;
    Forward(x, static_cast<int>(labels[e]), &hidden, &probs);
    Backward(x, static_cast<int>(labels[e]), hidden, probs, gw1, gb1, gw2,
             gb2);
  }
  const float scale = 1.0f / std::max(1, n);
  for (auto& g : grad) g *= scale;
  return grad;
}

std::vector<float> MlpClassifier::SaveParams() const {
  std::vector<float> out;
  for (const auto* v : {&w1_, &b1_, &w2_, &b2_, &vw1_, &vb1_, &vw2_, &vb2_}) {
    out.insert(out.end(), v->begin(), v->end());
  }
  return out;
}

void MlpClassifier::RestoreParams(const std::vector<float>& params) {
  size_t off = 0;
  for (auto* v : {&w1_, &b1_, &w2_, &b2_, &vw1_, &vb1_, &vw2_, &vb2_}) {
    PCR_CHECK_LE(off + v->size(), params.size());
    std::copy(params.begin() + off, params.begin() + off + v->size(),
              v->begin());
    off += v->size();
  }
  PCR_CHECK_EQ(off, params.size());
}

}  // namespace pcr
