#include "train/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace pcr {

double CosineSimilarity(const std::vector<float>& a,
                        const std::vector<float>& b) {
  PCR_CHECK_EQ(a.size(), b.size());
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na < 1e-20 || nb < 1e-20) return 0.0;
  return dot / std::sqrt(na * nb);
}

Trainer::Trainer(const CachedDataset* dataset, Classifier* model,
                 TrainerOptions options)
    : dataset_(dataset), model_(model), options_(std::move(options)),
      rng_(options_.seed), order_(dataset->train_size()) {
  PCR_CHECK_EQ(model->dim(), dataset->feature_dim());
  std::iota(order_.begin(), order_.end(), 0);
}

double Trainer::CurrentLr() const {
  double lr = options_.base_lr;
  if (options_.warmup_epochs > 0 && epoch_ < options_.warmup_epochs) {
    // Gradual warmup from base_lr/warmup to base_lr.
    lr *= static_cast<double>(epoch_ + 1) / options_.warmup_epochs;
  }
  for (int decay_epoch : options_.decay_epochs) {
    if (epoch_ >= decay_epoch) lr *= options_.decay_factor;
  }
  return lr;
}

double Trainer::RunEpochInternal(ScanGroupPolicy* policy, int fixed_group) {
  const double lr = CurrentLr();
  rng_.Shuffle(&order_);
  const int n = dataset_->train_size();
  const int dim = dataset_->feature_dim();
  const int64_t* labels = dataset_->train_labels();

  double loss_sum = 0.0;
  int in_batch = 0;
  int group = dataset_->NearestCachedGroup(
      fixed_group > 0 ? fixed_group : dataset_->max_group());
  const float* features = dataset_->train_features(group);

  for (int e = 0; e < n; ++e) {
    if (policy != nullptr && in_batch == 0) {
      // Mixture training: each minibatch may come from a different quality.
      group = dataset_->NearestCachedGroup(
          policy->Select(dataset_->max_group(), &rng_));
      features = dataset_->train_features(group);
    }
    const int idx = order_[e];
    loss_sum += model_->AccumulateExample(
        features + static_cast<size_t>(idx) * dim,
        static_cast<int>(labels[idx]));
    ++in_batch;
    if (in_batch == options_.batch_size || e + 1 == n) {
      model_->ApplyUpdate(lr, in_batch);
      in_batch = 0;
    }
  }
  ++epoch_;
  return loss_sum / std::max(1, n);
}

double Trainer::RunEpoch(int scan_group) {
  return RunEpochInternal(nullptr, scan_group);
}

double Trainer::RunEpochMixture(ScanGroupPolicy* policy) {
  PCR_CHECK(policy != nullptr);
  return RunEpochInternal(policy, 0);
}

double Trainer::TestAccuracy() const {
  const int n = dataset_->test_size();
  const int dim = dataset_->feature_dim();
  const float* features = dataset_->test_features();
  const int64_t* labels = dataset_->test_labels();
  int correct = 0;
  for (int e = 0; e < n; ++e) {
    if (model_->Predict(features + static_cast<size_t>(e) * dim) ==
        static_cast<int>(labels[e])) {
      ++correct;
    }
  }
  return n > 0 ? 100.0 * correct / n : 0.0;
}

double Trainer::EvalTrainLoss(int scan_group) const {
  const int group = dataset_->NearestCachedGroup(scan_group);
  const float* features = dataset_->train_features(group);
  const int64_t* labels = dataset_->train_labels();
  const int n = dataset_->train_size();
  const int dim = dataset_->feature_dim();
  double loss = 0.0;
  for (int e = 0; e < n; ++e) {
    loss += model_->ExampleLoss(features + static_cast<size_t>(e) * dim,
                                static_cast<int>(labels[e]));
  }
  return loss / std::max(1, n);
}

std::vector<float> Trainer::GradientForGroup(int scan_group,
                                             int max_examples) const {
  const int group = dataset_->NearestCachedGroup(scan_group);
  int n = dataset_->train_size();
  if (max_examples > 0) n = std::min(n, max_examples);
  return model_->FullGradient(dataset_->train_features(group),
                              dataset_->train_labels(), n);
}

double Trainer::GradientCosine(int scan_group, int max_examples) const {
  const auto g = GradientForGroup(scan_group, max_examples);
  const auto g_ref = GradientForGroup(dataset_->max_group(), max_examples);
  return CosineSimilarity(g, g_ref);
}

}  // namespace pcr
