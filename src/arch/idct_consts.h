// Fixed-point parameters of the Loeffler-style inverse DCT, shared by the
// scalar kernel (the canonical path, formerly in jpeg/dct.cc) and the SIMD
// kernels that must match it bit for bit. Constants carry kConstBits
// fractional bits; the column pass keeps kPass1Bits extra fractional bits in
// its intermediate so the row pass rounds once from high precision. All
// arithmetic is int64: with |input| < 2^23 (jpeg::kMaxDequantizedCoeff) the
// column pass peaks below 2^45, its descaled output below 2^37, and row-pass
// products below 2^57 — no overflow even on hostile coefficients.
#pragma once

#include <cstdint>

namespace pcr::arch::idct {

inline constexpr int kConstBits = 18;
inline constexpr int kPass1Bits = 10;

constexpr int64_t Fix(double x) {
  return static_cast<int64_t>(x * (int64_t{1} << kConstBits) + 0.5);
}

inline constexpr int64_t kFix0_298631336 = Fix(0.298631336);
inline constexpr int64_t kFix0_390180644 = Fix(0.390180644);
inline constexpr int64_t kFix0_541196100 = Fix(0.541196100);
inline constexpr int64_t kFix0_765366865 = Fix(0.765366865);
inline constexpr int64_t kFix0_899976223 = Fix(0.899976223);
inline constexpr int64_t kFix1_175875602 = Fix(1.175875602);
inline constexpr int64_t kFix1_501321110 = Fix(1.501321110);
inline constexpr int64_t kFix1_847759065 = Fix(1.847759065);
inline constexpr int64_t kFix1_961570560 = Fix(1.961570560);
inline constexpr int64_t kFix2_053119869 = Fix(2.053119869);
inline constexpr int64_t kFix2_562915447 = Fix(2.562915447);
inline constexpr int64_t kFix3_072711026 = Fix(3.072711026);

// Rounding right shift (round half up; >> on a negative int64 is an
// arithmetic shift with gcc/clang, i.e. floor, which the +half turns into
// round-half-up — the same convention as the double path's `+ 0.5`).
inline int64_t Descale(int64_t x, int n) {
  return (x + (int64_t{1} << (n - 1))) >> n;
}

// Left shifts of possibly-negative intermediates are spelled as
// multiplications by these powers of two: a negative << is UB until C++20
// and the UBSan CI job runs with -fno-sanitize-recover.
inline constexpr int64_t kConstScale = int64_t{1} << kConstBits;
inline constexpr int64_t kPass1Scale = int64_t{1} << kPass1Bits;

// Final descale of the row pass: constant scale, pass-1 scale, and the
// 1/8 of the 2-D normalization.
inline constexpr int kFinalShift = kConstBits + kPass1Bits + 3;

inline uint8_t ClampSample(int64_t level_shifted) {
  // level_shifted is the descaled sample + 128.
  if (level_shifted < 0) return 0;
  if (level_shifted > 255) return 255;
  return static_cast<uint8_t>(level_shifted);
}

}  // namespace pcr::arch::idct
