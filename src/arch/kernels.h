// Per-ISA kernel entry points behind arch::Kernels. The scalar functions are
// the canonical definitions (bit-exactness oracles); the SSE2/AVX2 variants
// live in their own translation units compiled with only that tier's -m
// flags, so the binary runs on any x86-64 and tiers are chosen at runtime.
#pragma once

#include <cstddef>
#include <cstdint>

#include "arch/arch.h"

namespace pcr::arch {

void IdctScalar(const int32_t coeff[64], uint8_t* out, int out_stride);
void YcbcrRowScalar(const uint8_t* y, const uint8_t* cb, const uint8_t* cr,
                    uint8_t* rgb, int n);
void UpsampleRowScalar(const uint8_t* r0, const uint8_t* r1, int wy1,
                       uint8_t* out, int out_w, int chroma_w);
size_t FindFfScalar(const uint8_t* data, size_t n);

namespace detail {
/// The upsample formula over an absolute output-index span [i_begin, i_end)
/// — the SIMD kernels delegate their row edges here, where the horizontal
/// taps clamp. Position parity matters, so a pointer offset cannot express
/// this.
void UpsampleRowSpanScalar(const uint8_t* r0, const uint8_t* r1, int wy1,
                           uint8_t* out, int i_begin, int i_end, int chroma_w);
}  // namespace detail

#if PCR_ARCH_X86
void IdctSse2(const int32_t coeff[64], uint8_t* out, int out_stride);
void YcbcrRowSse2(const uint8_t* y, const uint8_t* cb, const uint8_t* cr,
                  uint8_t* rgb, int n);
void UpsampleRowSse2(const uint8_t* r0, const uint8_t* r1, int wy1,
                     uint8_t* out, int out_w, int chroma_w);
size_t FindFfSse2(const uint8_t* data, size_t n);

void IdctAvx2(const int32_t coeff[64], uint8_t* out, int out_stride);
void YcbcrRowAvx2(const uint8_t* y, const uint8_t* cb, const uint8_t* cr,
                  uint8_t* rgb, int n);
void UpsampleRowAvx2(const uint8_t* r0, const uint8_t* r1, int wy1,
                     uint8_t* out, int out_w, int chroma_w);
size_t FindFfAvx2(const uint8_t* data, size_t n);
#endif  // PCR_ARCH_X86

}  // namespace pcr::arch
