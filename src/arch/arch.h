// Runtime CPU dispatch for the decode hot-path kernels (ffpic's
// arch/x86 dispatch-table idiom): the 8x8 fixed-point inverse DCT, the
// YCbCr->RGB row conversion, the bilinear chroma row upsample and the
// 0xFF scan used by the entropy reader's word-at-a-time refill.
//
// Every kernel has a scalar implementation that is the canonical,
// bit-exactness-defining path (it backs jpeg/dct.cc and image/color.h), plus
// SSE2 and AVX2 variants that must produce bit-identical output. Selection
// happens once per process via CPUID into a per-function table; the
// PCR_FORCE_ARCH environment variable (or ForceIsa for tests/benches) pins a
// path, with unknown or unsupported values warning and falling back to
// scalar.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)
#define PCR_ARCH_X86 1
#else
#define PCR_ARCH_X86 0
#endif

namespace pcr::arch {

/// Instruction-set tiers, weakest first. Scalar is always available.
enum class Isa : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };
inline constexpr int kNumIsas = 3;

/// Per-function dispatch table. All entries of one table belong to the same
/// tier; every SIMD entry is bit-exact with its scalar counterpart (enforced
/// by dispatch_test's randomized cross-checks and the codec parity suite).
struct Kernels {
  Isa isa;
  const char* name;

  /// Fixed-point inverse DCT of one dequantized block straight to clamped
  /// 8-bit samples, rows `out_stride` apart (contract of
  /// jpeg::InverseDct8x8Fixed).
  void (*idct8x8)(const int32_t coeff[64], uint8_t* out, int out_stride);

  /// Converts n YCbCr triples to interleaved RGB bytes with the canonical
  /// ycc:: fixed-point formulas.
  void (*ycbcr_row)(const uint8_t* y, const uint8_t* cb, const uint8_t* cr,
                    uint8_t* rgb, int n);

  /// One full-resolution row of the fixed 1/4-3/4 phase bilinear chroma
  /// upsample: r0/r1 are the two (already vertically clamped) chroma rows,
  /// wy1 in {1, 3} the weight of r1 in quarters, `chroma_w` their width.
  /// Writes out[0, out_w) per the ycc::UpsampleAt formula.
  void (*upsample_row)(const uint8_t* r0, const uint8_t* r1, int wy1,
                       uint8_t* out, int out_w, int chroma_w);

  /// Index of the first 0xFF byte in [data, data + n), or n if none.
  size_t (*find_ff)(const uint8_t* data, size_t n);
};

/// The active table. Resolved once (CPUID best tier, overridden by
/// PCR_FORCE_ARCH when set) and cached; an unknown or unsupported force
/// value logs a warning and selects scalar. Thread-safe.
const Kernels& Active();

/// The table for a specific tier; falls back to scalar when the tier was not
/// compiled in (non-x86 builds). Does not check CPU support — callers use
/// IsaSupported before executing SSE2/AVX2 entries.
const Kernels& KernelsFor(Isa isa);

/// Best tier this CPU can execute.
Isa DetectIsa();

/// True when this CPU (and build) can execute `isa`.
bool IsaSupported(Isa isa);

/// "scalar" / "sse2" / "avx2".
const char* IsaName(Isa isa);

/// Parses an Isa name as accepted by PCR_FORCE_ARCH. Returns false (and
/// leaves *out alone) for anything else.
bool ParseIsa(const char* s, Isa* out);

/// The pure resolution rule behind Active(), exposed for tests: `force` is
/// the PCR_FORCE_ARCH value (null/empty = unset), `detected` the CPUID best
/// tier, `supported_mask` bit i = Isa(i) executable. Unknown or unsupported
/// force values resolve to kScalar and, when `warning` is non-null, explain
/// why there.
Isa ResolveIsa(const char* force, Isa detected, unsigned supported_mask,
               std::string* warning);

/// Pins the active table programmatically (benches, tests). The caller is
/// responsible for only forcing a supported tier. Not synchronized against
/// concurrent decoding — switch only at a quiescent point.
void ForceIsa(Isa isa);

/// Drops the cached resolution so the next Active() re-reads the
/// environment. Test-only.
void ResetDispatchForTest();

/// Comma-joined CPU feature flags relevant to the kernels (e.g.
/// "sse2,ssse3,sse4.1,sse4.2,avx,avx2"), for bench metadata.
std::string CpuFeatureString();

}  // namespace pcr::arch
