// Scalar kernels — the canonical implementations every SIMD tier must match
// bit for bit. The IDCT body is the fixed-point path that previously lived
// in jpeg/dct.cc (jpeg::InverseDct8x8Fixed still wraps it); the color
// kernels are built from the inline ycc:: formulas of image/color.h, so the
// per-pixel reference codec and these row kernels agree by construction.
#include <cstring>

#include "arch/idct_consts.h"
#include "arch/kernels.h"
#include "image/color.h"

namespace pcr::arch {

void IdctScalar(const int32_t coeff[64], uint8_t* out, int out_stride) {
  using namespace idct;  // NOLINT(build/namespaces)
  int64_t ws[64];  // Column-pass output, scaled by 2^kPass1Bits.

  // Pass 1: columns. A column whose AC terms are all zero short-circuits to
  // a constant column; the shift below makes that exactly equal to what the
  // butterflies produce for the same input.
  for (int c = 0; c < 8; ++c) {
    const int32_t* col = coeff + c;
    if ((col[8] | col[16] | col[24] | col[32] | col[40] | col[48] |
         col[56]) == 0) {
      const int64_t dcval = static_cast<int64_t>(col[0]) * kPass1Scale;
      for (int r = 0; r < 8; ++r) ws[r * 8 + c] = dcval;
      continue;
    }

    // Even part.
    const int64_t z2 = col[16];
    const int64_t z3 = col[48];
    const int64_t z1 = (z2 + z3) * kFix0_541196100;
    const int64_t tmp2 = z1 + z3 * (-kFix1_847759065);
    const int64_t tmp3 = z1 + z2 * kFix0_765366865;

    const int64_t tmp0 =
        (static_cast<int64_t>(col[0]) + col[32]) * kConstScale;
    const int64_t tmp1 =
        (static_cast<int64_t>(col[0]) - col[32]) * kConstScale;

    const int64_t tmp10 = tmp0 + tmp3;
    const int64_t tmp13 = tmp0 - tmp3;
    const int64_t tmp11 = tmp1 + tmp2;
    const int64_t tmp12 = tmp1 - tmp2;

    // Odd part.
    int64_t t0 = col[56];
    int64_t t1 = col[40];
    int64_t t2 = col[24];
    int64_t t3 = col[8];

    const int64_t z1o = t0 + t3;
    const int64_t z2o = t1 + t2;
    const int64_t z3o = t0 + t2;
    const int64_t z4o = t1 + t3;
    const int64_t z5 = (z3o + z4o) * kFix1_175875602;

    t0 *= kFix0_298631336;
    t1 *= kFix2_053119869;
    t2 *= kFix3_072711026;
    t3 *= kFix1_501321110;
    const int64_t z1m = z1o * (-kFix0_899976223);
    const int64_t z2m = z2o * (-kFix2_562915447);
    const int64_t z3m = z3o * (-kFix1_961570560) + z5;
    const int64_t z4m = z4o * (-kFix0_390180644) + z5;

    t0 += z1m + z3m;
    t1 += z2m + z4m;
    t2 += z2m + z3m;
    t3 += z1m + z4m;

    ws[8 * 0 + c] = Descale(tmp10 + t3, kConstBits - kPass1Bits);
    ws[8 * 7 + c] = Descale(tmp10 - t3, kConstBits - kPass1Bits);
    ws[8 * 1 + c] = Descale(tmp11 + t2, kConstBits - kPass1Bits);
    ws[8 * 6 + c] = Descale(tmp11 - t2, kConstBits - kPass1Bits);
    ws[8 * 2 + c] = Descale(tmp12 + t1, kConstBits - kPass1Bits);
    ws[8 * 5 + c] = Descale(tmp12 - t1, kConstBits - kPass1Bits);
    ws[8 * 3 + c] = Descale(tmp13 + t0, kConstBits - kPass1Bits);
    ws[8 * 4 + c] = Descale(tmp13 - t0, kConstBits - kPass1Bits);
  }

  // Pass 2: rows, with the final descale, +128 level shift and clamp.
  for (int r = 0; r < 8; ++r) {
    const int64_t* row = ws + r * 8;
    uint8_t* dst = out + r * out_stride;
    if ((row[1] | row[2] | row[3] | row[4] | row[5] | row[6] | row[7]) ==
        0) {
      const uint8_t dcval =
          ClampSample(Descale(row[0], kPass1Bits + 3) + 128);
      for (int x = 0; x < 8; ++x) dst[x] = dcval;
      continue;
    }

    // Even part.
    const int64_t z2 = row[2];
    const int64_t z3 = row[6];
    const int64_t z1 = (z2 + z3) * kFix0_541196100;
    const int64_t tmp2 = z1 + z3 * (-kFix1_847759065);
    const int64_t tmp3 = z1 + z2 * kFix0_765366865;

    const int64_t tmp0 = (row[0] + row[4]) * kConstScale;
    const int64_t tmp1 = (row[0] - row[4]) * kConstScale;

    const int64_t tmp10 = tmp0 + tmp3;
    const int64_t tmp13 = tmp0 - tmp3;
    const int64_t tmp11 = tmp1 + tmp2;
    const int64_t tmp12 = tmp1 - tmp2;

    // Odd part.
    int64_t t0 = row[7];
    int64_t t1 = row[5];
    int64_t t2 = row[3];
    int64_t t3 = row[1];

    const int64_t z1o = t0 + t3;
    const int64_t z2o = t1 + t2;
    const int64_t z3o = t0 + t2;
    const int64_t z4o = t1 + t3;
    const int64_t z5 = (z3o + z4o) * kFix1_175875602;

    t0 *= kFix0_298631336;
    t1 *= kFix2_053119869;
    t2 *= kFix3_072711026;
    t3 *= kFix1_501321110;
    const int64_t z1m = z1o * (-kFix0_899976223);
    const int64_t z2m = z2o * (-kFix2_562915447);
    const int64_t z3m = z3o * (-kFix1_961570560) + z5;
    const int64_t z4m = z4o * (-kFix0_390180644) + z5;

    t0 += z1m + z3m;
    t1 += z2m + z4m;
    t2 += z2m + z3m;
    t3 += z1m + z4m;

    dst[0] = ClampSample(Descale(tmp10 + t3, kFinalShift) + 128);
    dst[7] = ClampSample(Descale(tmp10 - t3, kFinalShift) + 128);
    dst[1] = ClampSample(Descale(tmp11 + t2, kFinalShift) + 128);
    dst[6] = ClampSample(Descale(tmp11 - t2, kFinalShift) + 128);
    dst[2] = ClampSample(Descale(tmp12 + t1, kFinalShift) + 128);
    dst[5] = ClampSample(Descale(tmp12 - t1, kFinalShift) + 128);
    dst[3] = ClampSample(Descale(tmp13 + t0, kFinalShift) + 128);
    dst[4] = ClampSample(Descale(tmp13 - t0, kFinalShift) + 128);
  }
}

namespace {

// Per-chroma-value lookup tables for the fixed-point conversion (formerly
// image/color.cc). Built from the canonical scalar formulas of color.h, so
// table-driven output is bit-identical to ycc::ToRgb.
struct YccLut {
  int cr_r[256];
  int cb_b[256];
  int cb_g[256];  // Green Cb term, still scaled by 2^kScaleBits.
  int cr_g[256];  // Green Cr term + rounding + shift bias, scaled.

  YccLut() {
    for (int v = 0; v < 256; ++v) {
      cr_r[v] = ycc::CrToR(v);
      cb_b[v] = ycc::CbToB(v);
      cb_g[v] = -ycc::kCbToG * (v - 128);
      cr_g[v] = -ycc::kCrToG * (v - 128) + ycc::kHalf + ycc::kShiftBias;
    }
  }

  // g offset = CbCrToG(cb, cr), by construction of the two tables.
  int GreenOffset(int cb, int cr) const {
    return ((cb_g[cb] + cr_g[cr]) >> ycc::kScaleBits) - 256;
  }
};

const YccLut& Lut() {
  static const YccLut lut;
  return lut;
}

}  // namespace

void YcbcrRowScalar(const uint8_t* y, const uint8_t* cb, const uint8_t* cr,
                    uint8_t* rgb, int n) {
  const YccLut& lut = Lut();
  for (int i = 0; i < n; ++i) {
    const int yv = y[i];
    const int cbv = cb[i];
    const int crv = cr[i];
    rgb[3 * i + 0] = ycc::ClampToByte(yv + lut.cr_r[crv]);
    rgb[3 * i + 1] = ycc::ClampToByte(yv + lut.GreenOffset(cbv, crv));
    rgb[3 * i + 2] = ycc::ClampToByte(yv + lut.cb_b[cbv]);
  }
}

namespace detail {

void UpsampleRowSpanScalar(const uint8_t* r0, const uint8_t* r1, int wy1,
                           uint8_t* out, int i_begin, int i_end,
                           int chroma_w) {
  // ycc::UpsampleAt with the vertical taps prefolded: the row pair already
  // encodes the j clamp, so only the horizontal taps clamp here.
  const int wy0 = 4 - wy1;
  const int last = chroma_w - 1;
  for (int i = i_begin; i < i_end; ++i) {
    const int x0 = (i & 1) ? (i >> 1) : (i >> 1) - 1;
    const int wx1 = (i & 1) ? 1 : 3;
    const int xa = x0 < 0 ? 0 : (x0 > last ? last : x0);
    const int xb = x0 + 1 > last ? last : x0 + 1;  // x0 + 1 >= 0 always.
    const int ta = wy0 * r0[xa] + wy1 * r1[xa];
    const int tb = wy0 * r0[xb] + wy1 * r1[xb];
    out[i] = static_cast<uint8_t>(((4 - wx1) * ta + wx1 * tb + 8) >> 4);
  }
}

}  // namespace detail

void UpsampleRowScalar(const uint8_t* r0, const uint8_t* r1, int wy1,
                       uint8_t* out, int out_w, int chroma_w) {
  detail::UpsampleRowSpanScalar(r0, r1, wy1, out, 0, out_w, chroma_w);
}

size_t FindFfScalar(const uint8_t* data, size_t n) {
  // SWAR word scan: ~w has a zero byte exactly where w has an 0xFF byte.
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, data + i, 8);
    const uint64_t x = ~w;
    const uint64_t hit =
        (x - UINT64_C(0x0101010101010101)) & ~x & UINT64_C(0x8080808080808080);
    if (hit != 0) {
      // Little-endian: the lowest set bit marks the first 0xFF byte.
      return i + static_cast<size_t>(__builtin_ctzll(hit) >> 3);
    }
  }
  for (; i < n; ++i) {
    if (data[i] == 0xff) return i;
  }
  return n;
}

}  // namespace pcr::arch
