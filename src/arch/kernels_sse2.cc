// SSE2 kernels. Bit-exactness strategy: the IDCT reproduces the scalar
// int64 butterfly exactly — two lanes per __m128i, four registers per
// 8-wide value — using an exact low-64 multiply built from _mm_mul_epu32
// (SSE2 has no 64-bit multiply): for a positive 32-bit constant c and any
// int64 a whose true product fits in int64,
//
//   lo64(a * c) = (a_lo * c + ((a_hi * c) << 32)) mod 2^64
//
// with a_lo/a_hi the unsigned dword halves of a; the sign-extension error
// terms are multiples of 2^64 and vanish. Negated constants in the scalar
// code become subtractions so every multiply constant stays positive. The
// arithmetic right shift SSE2 also lacks is done by biasing with 2^62,
// shifting logically, and subtracting the shifted bias; the final
// [0, 255] clamp is the saturating packs_epi32/packus_epi16 chain, which
// matches the scalar clamp exactly because both saturation points lie
// outside [0, 255].
#include <emmintrin.h>

#include <cstring>

#include "arch/idct_consts.h"
#include "arch/kernels.h"
#include "image/color.h"

namespace pcr::arch {

namespace {

// Eight int64 lanes: v[p] holds lanes 2p and 2p+1.
struct V8 {
  __m128i v[4];
};

inline V8 Add(const V8& a, const V8& b) {
  V8 r;
  for (int p = 0; p < 4; ++p) r.v[p] = _mm_add_epi64(a.v[p], b.v[p]);
  return r;
}

inline V8 Sub(const V8& a, const V8& b) {
  V8 r;
  for (int p = 0; p < 4; ++p) r.v[p] = _mm_sub_epi64(a.v[p], b.v[p]);
  return r;
}

template <int n>
inline V8 Shl(const V8& a) {
  V8 r;
  for (int p = 0; p < 4; ++p) r.v[p] = _mm_slli_epi64(a.v[p], n);
  return r;
}

// Exact low-64 product with a positive 32-bit constant (see file comment).
inline __m128i Mul64(__m128i a, __m128i c) {
  const __m128i lo = _mm_mul_epu32(a, c);
  const __m128i hi =
      _mm_mul_epu32(_mm_shuffle_epi32(a, _MM_SHUFFLE(3, 3, 1, 1)), c);
  return _mm_add_epi64(lo, _mm_slli_epi64(hi, 32));
}

inline V8 Mul(const V8& a, int64_t c) {
  const __m128i cv = _mm_set1_epi64x(c);
  V8 r;
  for (int p = 0; p < 4; ++p) r.v[p] = Mul64(a.v[p], cv);
  return r;
}

// (x + 2^(n-1)) >> n arithmetically, via logical shift of a 2^62-biased
// value (|x| stays far below 2^62 in both passes).
template <int n>
inline V8 DescaleV(const V8& a) {
  const __m128i bias =
      _mm_set1_epi64x((int64_t{1} << (n - 1)) + (int64_t{1} << 62));
  const __m128i unbias = _mm_set1_epi64x(int64_t{1} << (62 - n));
  V8 r;
  for (int p = 0; p < 4; ++p) {
    r.v[p] =
        _mm_sub_epi64(_mm_srli_epi64(_mm_add_epi64(a.v[p], bias), n), unbias);
  }
  return r;
}

// Eight consecutive int32, sign-extended to int64 lanes.
inline V8 LoadRow(const int32_t* p) {
  const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 4));
  const __m128i sa = _mm_srai_epi32(a, 31);
  const __m128i sb = _mm_srai_epi32(b, 31);
  V8 r;
  r.v[0] = _mm_unpacklo_epi32(a, sa);
  r.v[1] = _mm_unpackhi_epi32(a, sa);
  r.v[2] = _mm_unpacklo_epi32(b, sb);
  r.v[3] = _mm_unpackhi_epi32(b, sb);
  return r;
}

// The scalar Loeffler butterfly, elementwise over 8 lanes, descaling by
// kShift. Scalar's `+ x * (-kFix...)` terms are subtractions here.
template <int kShift>
inline void Butterfly(const V8 in[8], V8 out[8]) {
  using namespace idct;  // NOLINT(build/namespaces)
  const V8 z1 = Mul(Add(in[2], in[6]), kFix0_541196100);
  const V8 tmp2 = Sub(z1, Mul(in[6], kFix1_847759065));
  const V8 tmp3 = Add(z1, Mul(in[2], kFix0_765366865));
  const V8 tmp0 = Shl<kConstBits>(Add(in[0], in[4]));
  const V8 tmp1 = Shl<kConstBits>(Sub(in[0], in[4]));
  const V8 tmp10 = Add(tmp0, tmp3);
  const V8 tmp13 = Sub(tmp0, tmp3);
  const V8 tmp11 = Add(tmp1, tmp2);
  const V8 tmp12 = Sub(tmp1, tmp2);

  V8 t0 = in[7];
  V8 t1 = in[5];
  V8 t2 = in[3];
  V8 t3 = in[1];
  const V8 z1o = Add(t0, t3);
  const V8 z2o = Add(t1, t2);
  const V8 z3o = Add(t0, t2);
  const V8 z4o = Add(t1, t3);
  const V8 z5 = Mul(Add(z3o, z4o), kFix1_175875602);
  t0 = Mul(t0, kFix0_298631336);
  t1 = Mul(t1, kFix2_053119869);
  t2 = Mul(t2, kFix3_072711026);
  t3 = Mul(t3, kFix1_501321110);
  const V8 z1m = Mul(z1o, kFix0_899976223);  // Subtracted below.
  const V8 z2m = Mul(z2o, kFix2_562915447);
  const V8 z3m = Sub(z5, Mul(z3o, kFix1_961570560));
  const V8 z4m = Sub(z5, Mul(z4o, kFix0_390180644));
  t0 = Sub(Add(t0, z3m), z1m);
  t1 = Sub(Add(t1, z4m), z2m);
  t2 = Sub(Add(t2, z3m), z2m);
  t3 = Sub(Add(t3, z4m), z1m);

  out[0] = DescaleV<kShift>(Add(tmp10, t3));
  out[7] = DescaleV<kShift>(Sub(tmp10, t3));
  out[1] = DescaleV<kShift>(Add(tmp11, t2));
  out[6] = DescaleV<kShift>(Sub(tmp11, t2));
  out[2] = DescaleV<kShift>(Add(tmp12, t1));
  out[5] = DescaleV<kShift>(Sub(tmp12, t1));
  out[3] = DescaleV<kShift>(Add(tmp13, t0));
  out[4] = DescaleV<kShift>(Sub(tmp13, t0));
}

// 8x8 int64 transpose: o[j].lane(r) = w[r].lane(j).
inline void Transpose(const V8 w[8], V8 o[8]) {
  for (int p = 0; p < 4; ++p) {
    for (int q = 0; q < 4; ++q) {
      o[2 * p].v[q] = _mm_unpacklo_epi64(w[2 * q].v[p], w[2 * q + 1].v[p]);
      o[2 * p + 1].v[q] = _mm_unpackhi_epi64(w[2 * q].v[p], w[2 * q + 1].v[p]);
    }
  }
}

// Narrows int64 lanes (known to fit int32) to packed int32: [l0 l1 l2 l3].
inline __m128i Narrow2(__m128i a, __m128i b) {
  const __m128i sa = _mm_shuffle_epi32(a, _MM_SHUFFLE(0, 0, 2, 0));
  const __m128i sb = _mm_shuffle_epi32(b, _MM_SHUFFLE(0, 0, 2, 0));
  return _mm_unpacklo_epi64(sa, sb);
}

// One output row: +128 level shift and saturating clamp to 8 bytes.
inline void StoreRow(const V8& row, uint8_t* dst) {
  const __m128i shift = _mm_set1_epi32(128);
  const __m128i left = _mm_add_epi32(Narrow2(row.v[0], row.v[1]), shift);
  const __m128i right = _mm_add_epi32(Narrow2(row.v[2], row.v[3]), shift);
  const __m128i p16 = _mm_packs_epi32(left, right);
  const __m128i p8 = _mm_packus_epi16(p16, p16);
  _mm_storel_epi64(reinterpret_cast<__m128i*>(dst), p8);
}

}  // namespace

void IdctSse2(const int32_t coeff[64], uint8_t* out, int out_stride) {
  V8 in[8], w[8], cols[8], res[8], rows[8];
  for (int r = 0; r < 8; ++r) in[r] = LoadRow(coeff + r * 8);
  Butterfly<idct::kConstBits - idct::kPass1Bits>(in, w);
  Transpose(w, cols);
  Butterfly<idct::kFinalShift>(cols, res);
  Transpose(res, rows);
  for (int r = 0; r < 8; ++r) StoreRow(rows[r], out + r * out_stride);
}

namespace {

// Low 32 bits of the lane-wise product — SSE2 has no _mm_mullo_epi32. The
// unsigned dword products agree with the signed ones mod 2^32.
inline __m128i Mullo32(__m128i a, __m128i b) {
  const __m128i even = _mm_mul_epu32(a, b);
  const __m128i odd =
      _mm_mul_epu32(_mm_srli_si128(a, 4), _mm_srli_si128(b, 4));
  const __m128i evens = _mm_shuffle_epi32(even, _MM_SHUFFLE(0, 0, 2, 0));
  const __m128i odds = _mm_shuffle_epi32(odd, _MM_SHUFFLE(0, 0, 2, 0));
  return _mm_unpacklo_epi32(evens, odds);
}

// Four bytes zero-extended to int32 lanes.
inline __m128i Load4U8(const uint8_t* p) {
  int32_t tmp;
  std::memcpy(&tmp, p, 4);
  const __m128i zero = _mm_setzero_si128();
  return _mm_unpacklo_epi16(_mm_unpacklo_epi8(_mm_cvtsi32_si128(tmp), zero),
                            zero);
}

}  // namespace

void YcbcrRowSse2(const uint8_t* y, const uint8_t* cb, const uint8_t* cr,
                  uint8_t* rgb, int n) {
  // The ycc:: formulas on int32 lanes. Every biased sum is non-negative by
  // construction of kShiftBias, so the arithmetic shift equals the scalar
  // `>>` on a non-negative value.
  const __m128i k128 = _mm_set1_epi32(128);
  const __m128i bias = _mm_set1_epi32(ycc::kHalf + ycc::kShiftBias);
  const __m128i back = _mm_set1_epi32(256);
  const __m128i c_cr_r = _mm_set1_epi32(ycc::kCrToR);
  const __m128i c_cb_g = _mm_set1_epi32(ycc::kCbToG);
  const __m128i c_cr_g = _mm_set1_epi32(ycc::kCrToG);
  const __m128i c_cb_b = _mm_set1_epi32(ycc::kCbToB);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i yv = Load4U8(y + i);
    const __m128i cbm = _mm_sub_epi32(Load4U8(cb + i), k128);
    const __m128i crm = _mm_sub_epi32(Load4U8(cr + i), k128);
    const __m128i r32 = _mm_add_epi32(
        yv, _mm_sub_epi32(
                _mm_srai_epi32(
                    _mm_add_epi32(Mullo32(crm, c_cr_r), bias), ycc::kScaleBits),
                back));
    const __m128i gsum = _mm_sub_epi32(
        _mm_sub_epi32(bias, Mullo32(cbm, c_cb_g)), Mullo32(crm, c_cr_g));
    const __m128i g32 = _mm_add_epi32(
        yv, _mm_sub_epi32(_mm_srai_epi32(gsum, ycc::kScaleBits), back));
    const __m128i b32 = _mm_add_epi32(
        yv, _mm_sub_epi32(
                _mm_srai_epi32(
                    _mm_add_epi32(Mullo32(cbm, c_cb_b), bias), ycc::kScaleBits),
                back));
    // Saturating pack == ClampToByte; bytes land as [r0..3 g0..3 b0..3 x4].
    const __m128i p8 = _mm_packus_epi16(_mm_packs_epi32(r32, g32),
                                        _mm_packs_epi32(b32, b32));
    alignas(16) uint8_t tmp[16];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), p8);
    uint8_t* dst = rgb + 3 * i;
    for (int k = 0; k < 4; ++k) {
      dst[3 * k + 0] = tmp[k];
      dst[3 * k + 1] = tmp[4 + k];
      dst[3 * k + 2] = tmp[8 + k];
    }
  }
  if (i < n) YcbcrRowScalar(y + i, cb + i, cr + i, rgb + 3 * i, n - i);
}

void UpsampleRowSse2(const uint8_t* r0, const uint8_t* r1, int wy1,
                     uint8_t* out, int out_w, int chroma_w) {
  constexpr int kV = 8;  // Chroma positions per iteration (2*kV outputs).
  int i = 0;
  if (out_w > 2 && chroma_w >= kV + 2) {
    detail::UpsampleRowSpanScalar(r0, r1, wy1, out, 0, 2, chroma_w);
    const __m128i zero = _mm_setzero_si128();
    const __m128i w0 = _mm_set1_epi16(static_cast<short>(4 - wy1));
    const __m128i w1 = _mm_set1_epi16(static_cast<short>(wy1));
    const __m128i three = _mm_set1_epi16(3);
    const __m128i eight = _mm_set1_epi16(8);
    const auto blend = [&](int k) {
      const __m128i a = _mm_unpacklo_epi8(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(r0 + k)), zero);
      const __m128i b = _mm_unpacklo_epi8(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(r1 + k)), zero);
      return _mm_add_epi16(_mm_mullo_epi16(a, w0), _mm_mullo_epi16(b, w1));
    };
    int k = 1;
    // Interior: for outputs 2k'/2k'+1 the taps are k'-1, k', k'+1 —
    // unclamped while k' stays in [1, chroma_w - 2].
    for (; k + kV <= chroma_w - 1 && 2 * (k + kV) <= out_w; k += kV) {
      const __m128i ta = blend(k - 1);
      const __m128i tb = blend(k);
      const __m128i tc = blend(k + 1);
      const __m128i tb3 = _mm_mullo_epi16(tb, three);
      const __m128i even = _mm_srli_epi16(
          _mm_add_epi16(_mm_add_epi16(ta, tb3), eight), 4);
      const __m128i odd = _mm_srli_epi16(
          _mm_add_epi16(_mm_add_epi16(tb3, tc), eight), 4);
      const __m128i p = _mm_packus_epi16(even, odd);
      const __m128i inter = _mm_unpacklo_epi8(p, _mm_srli_si128(p, 8));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 2 * k), inter);
    }
    i = 2 * k;
  }
  detail::UpsampleRowSpanScalar(r0, r1, wy1, out, i, out_w, chroma_w);
}

size_t FindFfSse2(const uint8_t* data, size_t n) {
  const __m128i ff = _mm_set1_epi8(static_cast<char>(0xff));
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const int m = _mm_movemask_epi8(_mm_cmpeq_epi8(v, ff));
    if (m != 0) return i + static_cast<size_t>(__builtin_ctz(m));
  }
  return i + FindFfScalar(data + i, n - i);
}

}  // namespace pcr::arch
