// AVX2 kernels. Same bit-exactness strategy as kernels_sse2.cc (exact
// low-64 multiplies, 2^62-bias arithmetic shifts, saturating-pack clamps),
// with four int64 lanes per register. Two AVX2-specific speedups:
// _mm256_mul_epi32 replaces the three-op exact multiply wherever the
// operand provably fits in int32 — always true in pass 1 (inputs are
// < 2^23), and true in pass 2 whenever every pass-1 intermediate fits in
// 28 bits, which a cheap range test establishes per block (real images sit
// around 2^21; only hostile near-clamp coefficients take the generic
// path) — and the RGB interleave is two pshufb+or pairs per 8 pixels.
#include <immintrin.h>

#include <cstring>

#include "arch/idct_consts.h"
#include "arch/kernels.h"
#include "image/color.h"

namespace pcr::arch {

namespace {

// Eight int64 lanes: lo = lanes 0..3, hi = lanes 4..7.
struct V8 {
  __m256i lo, hi;
};

inline V8 Add(const V8& a, const V8& b) {
  return {_mm256_add_epi64(a.lo, b.lo), _mm256_add_epi64(a.hi, b.hi)};
}

inline V8 Sub(const V8& a, const V8& b) {
  return {_mm256_sub_epi64(a.lo, b.lo), _mm256_sub_epi64(a.hi, b.hi)};
}

template <int n>
inline V8 Shl(const V8& a) {
  return {_mm256_slli_epi64(a.lo, n), _mm256_slli_epi64(a.hi, n)};
}

// Exact low-64 product with a positive 32-bit constant for arbitrary int64
// lanes (kNarrow = false), or single-instruction _mm256_mul_epi32 when the
// lane value is known to fit in int32 (kNarrow = true; the low dword of a
// sign-extended int64 lane is the value itself).
template <bool kNarrow>
inline __m256i Mul64(__m256i a, __m256i c) {
  if (kNarrow) return _mm256_mul_epi32(a, c);
  const __m256i lo = _mm256_mul_epu32(a, c);
  const __m256i hi =
      _mm256_mul_epu32(_mm256_shuffle_epi32(a, _MM_SHUFFLE(3, 3, 1, 1)), c);
  return _mm256_add_epi64(lo, _mm256_slli_epi64(hi, 32));
}

template <bool kNarrow>
inline V8 Mul(const V8& a, int64_t c) {
  const __m256i cv = _mm256_set1_epi64x(c);
  return {Mul64<kNarrow>(a.lo, cv), Mul64<kNarrow>(a.hi, cv)};
}

// (x + 2^(n-1)) >> n arithmetically (no _mm256_srai_epi64 in AVX2), via
// logical shift of a 2^62-biased value.
template <int n>
inline V8 DescaleV(const V8& a) {
  const __m256i bias =
      _mm256_set1_epi64x((int64_t{1} << (n - 1)) + (int64_t{1} << 62));
  const __m256i unbias = _mm256_set1_epi64x(int64_t{1} << (62 - n));
  const __m256i lo =
      _mm256_sub_epi64(_mm256_srli_epi64(_mm256_add_epi64(a.lo, bias), n),
                       unbias);
  const __m256i hi =
      _mm256_sub_epi64(_mm256_srli_epi64(_mm256_add_epi64(a.hi, bias), n),
                       unbias);
  return {lo, hi};
}

inline V8 LoadRow(const int32_t* p) {
  const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  return {_mm256_cvtepi32_epi64(_mm256_castsi256_si128(v)),
          _mm256_cvtepi32_epi64(_mm256_extracti128_si256(v, 1))};
}

// The scalar Loeffler butterfly, elementwise over 8 lanes (see
// kernels_sse2.cc for the structure notes).
template <int kShift, bool kNarrow>
inline void Butterfly(const V8 in[8], V8 out[8]) {
  using namespace idct;  // NOLINT(build/namespaces)
  const V8 z1 = Mul<kNarrow>(Add(in[2], in[6]), kFix0_541196100);
  const V8 tmp2 = Sub(z1, Mul<kNarrow>(in[6], kFix1_847759065));
  const V8 tmp3 = Add(z1, Mul<kNarrow>(in[2], kFix0_765366865));
  const V8 tmp0 = Shl<kConstBits>(Add(in[0], in[4]));
  const V8 tmp1 = Shl<kConstBits>(Sub(in[0], in[4]));
  const V8 tmp10 = Add(tmp0, tmp3);
  const V8 tmp13 = Sub(tmp0, tmp3);
  const V8 tmp11 = Add(tmp1, tmp2);
  const V8 tmp12 = Sub(tmp1, tmp2);

  V8 t0 = in[7];
  V8 t1 = in[5];
  V8 t2 = in[3];
  V8 t3 = in[1];
  const V8 z1o = Add(t0, t3);
  const V8 z2o = Add(t1, t2);
  const V8 z3o = Add(t0, t2);
  const V8 z4o = Add(t1, t3);
  const V8 z5 = Mul<kNarrow>(Add(z3o, z4o), kFix1_175875602);
  t0 = Mul<kNarrow>(t0, kFix0_298631336);
  t1 = Mul<kNarrow>(t1, kFix2_053119869);
  t2 = Mul<kNarrow>(t2, kFix3_072711026);
  t3 = Mul<kNarrow>(t3, kFix1_501321110);
  const V8 z1m = Mul<kNarrow>(z1o, kFix0_899976223);  // Subtracted below.
  const V8 z2m = Mul<kNarrow>(z2o, kFix2_562915447);
  const V8 z3m = Sub(z5, Mul<kNarrow>(z3o, kFix1_961570560));
  const V8 z4m = Sub(z5, Mul<kNarrow>(z4o, kFix0_390180644));
  t0 = Sub(Add(t0, z3m), z1m);
  t1 = Sub(Add(t1, z4m), z2m);
  t2 = Sub(Add(t2, z3m), z2m);
  t3 = Sub(Add(t3, z4m), z1m);

  out[0] = DescaleV<kShift>(Add(tmp10, t3));
  out[7] = DescaleV<kShift>(Sub(tmp10, t3));
  out[1] = DescaleV<kShift>(Add(tmp11, t2));
  out[6] = DescaleV<kShift>(Sub(tmp11, t2));
  out[2] = DescaleV<kShift>(Add(tmp12, t1));
  out[5] = DescaleV<kShift>(Sub(tmp12, t1));
  out[3] = DescaleV<kShift>(Add(tmp13, t0));
  out[4] = DescaleV<kShift>(Sub(tmp13, t0));
}

// 4x4 int64 transpose of rows a..d.
inline void Tr4(__m256i a, __m256i b, __m256i c, __m256i d, __m256i o[4]) {
  const __m256i t0 = _mm256_unpacklo_epi64(a, b);  // a0 b0 a2 b2
  const __m256i t1 = _mm256_unpackhi_epi64(a, b);  // a1 b1 a3 b3
  const __m256i t2 = _mm256_unpacklo_epi64(c, d);
  const __m256i t3 = _mm256_unpackhi_epi64(c, d);
  o[0] = _mm256_permute2x128_si256(t0, t2, 0x20);
  o[1] = _mm256_permute2x128_si256(t1, t3, 0x20);
  o[2] = _mm256_permute2x128_si256(t0, t2, 0x31);
  o[3] = _mm256_permute2x128_si256(t1, t3, 0x31);
}

// 8x8 int64 transpose: o[j].lane(r) = w[r].lane(j).
inline void Transpose(const V8 w[8], V8 o[8]) {
  __m256i blk[4];
  Tr4(w[0].lo, w[1].lo, w[2].lo, w[3].lo, blk);
  for (int j = 0; j < 4; ++j) o[j].lo = blk[j];
  Tr4(w[0].hi, w[1].hi, w[2].hi, w[3].hi, blk);
  for (int j = 0; j < 4; ++j) o[4 + j].lo = blk[j];
  Tr4(w[4].lo, w[5].lo, w[6].lo, w[7].lo, blk);
  for (int j = 0; j < 4; ++j) o[j].hi = blk[j];
  Tr4(w[4].hi, w[5].hi, w[6].hi, w[7].hi, blk);
  for (int j = 0; j < 4; ++j) o[4 + j].hi = blk[j];
}

// Narrows int64 lanes (known to fit int32) to 8 packed int32.
inline __m256i Narrow(const V8& a) {
  const __m256i idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const __m128i lo =
      _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(a.lo, idx));
  const __m128i hi =
      _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(a.hi, idx));
  return _mm256_set_m128i(hi, lo);
}

// One output row: +128 level shift and saturating clamp to 8 bytes.
inline void StoreRow(const V8& row, uint8_t* dst) {
  const __m256i v = _mm256_add_epi32(Narrow(row), _mm256_set1_epi32(128));
  const __m128i p16 = _mm_packs_epi32(_mm256_castsi256_si128(v),
                                      _mm256_extracti128_si256(v, 1));
  const __m128i p8 = _mm_packus_epi16(p16, p16);
  _mm_storel_epi64(reinterpret_cast<__m128i*>(dst), p8);
}

// True when every lane of every vector lies in (-2^28, 2^28): biased by
// 2^28 all values are in [0, 2^29), so no bit >= 29 may be set. Keeps the
// largest pass-2 multiply operand (a sum of four lanes) within int32.
inline bool AllFit28(const V8 w[8]) {
  const __m256i bias = _mm256_set1_epi64x(int64_t{1} << 28);
  __m256i acc = _mm256_setzero_si256();
  for (int k = 0; k < 8; ++k) {
    acc = _mm256_or_si256(acc, _mm256_add_epi64(w[k].lo, bias));
    acc = _mm256_or_si256(acc, _mm256_add_epi64(w[k].hi, bias));
  }
  const __m256i high = _mm256_set1_epi64x(~((int64_t{1} << 29) - 1));
  return _mm256_testz_si256(acc, high) != 0;
}

}  // namespace

void IdctAvx2(const int32_t coeff[64], uint8_t* out, int out_stride) {
  V8 in[8], w[8], cols[8], res[8], rows[8];
  for (int r = 0; r < 8; ++r) in[r] = LoadRow(coeff + r * 8);
  // Pass-1 operands are bounded by 2^25 (inputs < 2^23), so the narrow
  // multiply is always exact there.
  Butterfly<idct::kConstBits - idct::kPass1Bits, true>(in, w);
  Transpose(w, cols);
  if (AllFit28(cols)) {
    Butterfly<idct::kFinalShift, true>(cols, res);
  } else {
    Butterfly<idct::kFinalShift, false>(cols, res);
  }
  Transpose(res, rows);
  for (int r = 0; r < 8; ++r) StoreRow(rows[r], out + r * out_stride);
}

namespace {

inline __m256i Load8U8(const uint8_t* p) {
  return _mm256_cvtepu8_epi32(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
}

inline __m128i PackBytes(__m256i v32) {
  const __m128i p16 = _mm_packs_epi32(_mm256_castsi256_si128(v32),
                                      _mm256_extracti128_si256(v32, 1));
  return _mm_packus_epi16(p16, p16);  // 8 bytes in the low half.
}

}  // namespace

void YcbcrRowAvx2(const uint8_t* y, const uint8_t* cb, const uint8_t* cr,
                  uint8_t* rgb, int n) {
  const __m256i k128 = _mm256_set1_epi32(128);
  const __m256i bias = _mm256_set1_epi32(ycc::kHalf + ycc::kShiftBias);
  const __m256i back = _mm256_set1_epi32(256);
  const __m256i c_cr_r = _mm256_set1_epi32(ycc::kCrToR);
  const __m256i c_cb_g = _mm256_set1_epi32(ycc::kCbToG);
  const __m256i c_cr_g = _mm256_set1_epi32(ycc::kCrToG);
  const __m256i c_cb_b = _mm256_set1_epi32(ycc::kCbToB);
  // Interleave shuffles: A = [r0..r7 g0..g7], B = [b0..b7 ...]; the first
  // 16 output bytes are r g b r g b ... r5, the last 8 finish the row.
  const __m128i mask_a0 =
      _mm_setr_epi8(0, 8, -1, 1, 9, -1, 2, 10, -1, 3, 11, -1, 4, 12, -1, 5);
  const __m128i mask_b0 =
      _mm_setr_epi8(-1, -1, 0, -1, -1, 1, -1, -1, 2, -1, -1, 3, -1, -1, 4, -1);
  const __m128i mask_a1 =
      _mm_setr_epi8(13, -1, 6, 14, -1, 7, 15, -1, -1, -1, -1, -1, -1, -1, -1,
                    -1);
  const __m128i mask_b1 =
      _mm_setr_epi8(-1, 5, -1, -1, 6, -1, -1, 7, -1, -1, -1, -1, -1, -1, -1,
                    -1);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i yv = Load8U8(y + i);
    const __m256i cbm = _mm256_sub_epi32(Load8U8(cb + i), k128);
    const __m256i crm = _mm256_sub_epi32(Load8U8(cr + i), k128);
    const __m256i r32 = _mm256_add_epi32(
        yv,
        _mm256_sub_epi32(
            _mm256_srai_epi32(
                _mm256_add_epi32(_mm256_mullo_epi32(crm, c_cr_r), bias),
                ycc::kScaleBits),
            back));
    const __m256i gsum = _mm256_sub_epi32(
        _mm256_sub_epi32(bias, _mm256_mullo_epi32(cbm, c_cb_g)),
        _mm256_mullo_epi32(crm, c_cr_g));
    const __m256i g32 = _mm256_add_epi32(
        yv, _mm256_sub_epi32(_mm256_srai_epi32(gsum, ycc::kScaleBits), back));
    const __m256i b32 = _mm256_add_epi32(
        yv,
        _mm256_sub_epi32(
            _mm256_srai_epi32(
                _mm256_add_epi32(_mm256_mullo_epi32(cbm, c_cb_b), bias),
                ycc::kScaleBits),
            back));
    const __m128i a =
        _mm_unpacklo_epi64(PackBytes(r32), PackBytes(g32));  // r0..7 g0..7
    const __m128i b = PackBytes(b32);
    uint8_t* dst = rgb + 3 * i;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst),
                     _mm_or_si128(_mm_shuffle_epi8(a, mask_a0),
                                  _mm_shuffle_epi8(b, mask_b0)));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + 16),
                     _mm_or_si128(_mm_shuffle_epi8(a, mask_a1),
                                  _mm_shuffle_epi8(b, mask_b1)));
  }
  if (i < n) YcbcrRowScalar(y + i, cb + i, cr + i, rgb + 3 * i, n - i);
}

void UpsampleRowAvx2(const uint8_t* r0, const uint8_t* r1, int wy1,
                     uint8_t* out, int out_w, int chroma_w) {
  constexpr int kV = 16;  // Chroma positions per iteration (2*kV outputs).
  int i = 0;
  if (out_w > 2 && chroma_w >= kV + 2) {
    detail::UpsampleRowSpanScalar(r0, r1, wy1, out, 0, 2, chroma_w);
    const __m256i w0 = _mm256_set1_epi16(static_cast<short>(4 - wy1));
    const __m256i w1 = _mm256_set1_epi16(static_cast<short>(wy1));
    const __m256i three = _mm256_set1_epi16(3);
    const __m256i eight = _mm256_set1_epi16(8);
    const auto blend = [&](int k) {
      const __m256i a = _mm256_cvtepu8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0 + k)));
      const __m256i b = _mm256_cvtepu8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r1 + k)));
      return _mm256_add_epi16(_mm256_mullo_epi16(a, w0),
                              _mm256_mullo_epi16(b, w1));
    };
    int k = 1;
    for (; k + kV <= chroma_w - 1 && 2 * (k + kV) <= out_w; k += kV) {
      const __m256i ta = blend(k - 1);
      const __m256i tb = blend(k);
      const __m256i tc = blend(k + 1);
      const __m256i tb3 = _mm256_mullo_epi16(tb, three);
      const __m256i even = _mm256_srli_epi16(
          _mm256_add_epi16(_mm256_add_epi16(ta, tb3), eight), 4);
      const __m256i odd = _mm256_srli_epi16(
          _mm256_add_epi16(_mm256_add_epi16(tb3, tc), eight), 4);
      // packus interleaves per 128 lane: [e0..7 o0..7 | e8..15 o8..15].
      const __m256i p = _mm256_packus_epi16(even, odd);
      const __m128i plo = _mm256_castsi256_si128(p);
      const __m128i phi = _mm256_extracti128_si256(p, 1);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 2 * k),
                       _mm_unpacklo_epi8(plo, _mm_srli_si128(plo, 8)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 2 * k + 16),
                       _mm_unpacklo_epi8(phi, _mm_srli_si128(phi, 8)));
    }
    i = 2 * k;
  }
  detail::UpsampleRowSpanScalar(r0, r1, wy1, out, i, out_w, chroma_w);
}

size_t FindFfAvx2(const uint8_t* data, size_t n) {
  const __m256i ff = _mm256_set1_epi8(static_cast<char>(0xff));
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const uint32_t m = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, ff)));
    if (m != 0) return i + static_cast<size_t>(__builtin_ctz(m));
  }
  return i + FindFfScalar(data + i, n - i);
}

}  // namespace pcr::arch
