#include "arch/arch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "arch/kernels.h"
#include "util/logging.h"

namespace pcr::arch {

namespace {

constexpr Kernels kScalarKernels = {Isa::kScalar,     "scalar",
                                    &IdctScalar,      &YcbcrRowScalar,
                                    &UpsampleRowScalar, &FindFfScalar};

#if PCR_ARCH_X86
constexpr Kernels kSse2Kernels = {Isa::kSse2,       "sse2",
                                  &IdctSse2,        &YcbcrRowSse2,
                                  &UpsampleRowSse2, &FindFfSse2};

constexpr Kernels kAvx2Kernels = {Isa::kAvx2,       "avx2",
                                  &IdctAvx2,        &YcbcrRowAvx2,
                                  &UpsampleRowAvx2, &FindFfAvx2};
#endif

std::atomic<const Kernels*> g_active{nullptr};

unsigned SupportedMask() {
  unsigned mask = 0;
  for (int i = 0; i < kNumIsas; ++i) {
    if (IsaSupported(static_cast<Isa>(i))) mask |= 1u << i;
  }
  return mask;
}

}  // namespace

bool IsaSupported(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
#if PCR_ARCH_X86
    case Isa::kSse2:
      return __builtin_cpu_supports("sse2");
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2");
#else
    case Isa::kSse2:
    case Isa::kAvx2:
      return false;
#endif
  }
  return false;
}

Isa DetectIsa() {
  if (IsaSupported(Isa::kAvx2)) return Isa::kAvx2;
  if (IsaSupported(Isa::kSse2)) return Isa::kSse2;
  return Isa::kScalar;
}

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseIsa(const char* s, Isa* out) {
  if (s == nullptr) return false;
  for (int i = 0; i < kNumIsas; ++i) {
    const Isa isa = static_cast<Isa>(i);
    if (std::strcmp(s, IsaName(isa)) == 0) {
      *out = isa;
      return true;
    }
  }
  return false;
}

Isa ResolveIsa(const char* force, Isa detected, unsigned supported_mask,
               std::string* warning) {
  if (force == nullptr || force[0] == '\0') return detected;
  Isa forced;
  if (!ParseIsa(force, &forced)) {
    if (warning != nullptr) {
      *warning = std::string("PCR_FORCE_ARCH=\"") + force +
                 "\" is not one of scalar/sse2/avx2; using scalar";
    }
    return Isa::kScalar;
  }
  if ((supported_mask & (1u << static_cast<int>(forced))) == 0) {
    if (warning != nullptr) {
      *warning = std::string("PCR_FORCE_ARCH=") + force +
                 " is not supported by this CPU/build; using scalar";
    }
    return Isa::kScalar;
  }
  return forced;
}

const Kernels& KernelsFor(Isa isa) {
#if PCR_ARCH_X86
  switch (isa) {
    case Isa::kSse2:
      return kSse2Kernels;
    case Isa::kAvx2:
      return kAvx2Kernels;
    case Isa::kScalar:
      break;
  }
#else
  (void)isa;
#endif
  return kScalarKernels;
}

const Kernels& Active() {
  const Kernels* k = g_active.load(std::memory_order_acquire);
  if (k != nullptr) return *k;
  // Racing threads resolve to the same table; the store is idempotent.
  std::string warning;
  const Isa isa = ResolveIsa(std::getenv("PCR_FORCE_ARCH"), DetectIsa(),
                             SupportedMask(), &warning);
  if (!warning.empty()) PCR_LOG(Warning) << warning;
  k = &KernelsFor(isa);
  g_active.store(k, std::memory_order_release);
  return *k;
}

void ForceIsa(Isa isa) {
  g_active.store(&KernelsFor(isa), std::memory_order_release);
}

void ResetDispatchForTest() {
  g_active.store(nullptr, std::memory_order_release);
}

std::string CpuFeatureString() {
#if PCR_ARCH_X86
  std::string out;
  const auto append = [&out](bool present, const char* label) {
    if (!present) return;
    if (!out.empty()) out += ',';
    out += label;
  };
  // __builtin_cpu_supports requires a literal argument.
  append(__builtin_cpu_supports("sse2"), "sse2");
  append(__builtin_cpu_supports("ssse3"), "ssse3");
  append(__builtin_cpu_supports("sse4.1"), "sse4.1");
  append(__builtin_cpu_supports("sse4.2"), "sse4.2");
  append(__builtin_cpu_supports("avx"), "avx");
  append(__builtin_cpu_supports("avx2"), "avx2");
  if (out.empty()) out = "none";
  return out;
#else
  return "non-x86";
#endif
}

}  // namespace pcr::arch
