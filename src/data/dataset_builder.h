// Builds a synthetic dataset in one or more storage formats (PCR, Record,
// File-per-Image), with on-disk caching so bench binaries share the
// (encode-heavy) generation work.
#pragma once

#include <string>

#include "data/dataset_spec.h"
#include "storage/env.h"
#include "util/result.h"

namespace pcr {

/// Which formats to materialize.
struct BuildFormats {
  bool pcr = true;
  bool record = false;
  bool file_per_image = false;
};

/// Directory layout of a built dataset.
struct BuiltDataset {
  std::string root;
  std::string pcr_dir;            // root + "/pcr"
  std::string record_dir;         // root + "/record"
  std::string file_per_image_dir; // root + "/fpi"
  double build_seconds = 0.0;     // 0 when served from cache.
  double jpeg_encode_seconds = 0.0;
  double transcode_seconds = 0.0;
};

/// Generates images per `spec`, encodes them as baseline JPEG at the spec's
/// quality, and feeds the requested writers (PCR transcodes losslessly to
/// progressive, as the paper's encoder does with jpegtran). If the dataset
/// already exists under `root` (manifests present), generation is skipped.
Result<BuiltDataset> BuildSyntheticDataset(Env* env, const std::string& root,
                                           const DatasetSpec& spec,
                                           const BuildFormats& formats);

/// Default cache root for bench binaries (under the system temp dir, keyed
/// by spec name and content-affecting parameters).
std::string DefaultDatasetCacheRoot(const DatasetSpec& spec);

}  // namespace pcr
