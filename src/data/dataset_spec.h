// Synthetic dataset specifications standing in for the paper's ImageNet,
// HAM10000, Stanford Cars, and CelebA-HQ (the originals are not
// redistributable and far too large for a self-contained repo; see
// DESIGN.md §1 for why the substitution preserves the evaluated behaviour).
//
// Class-discriminative structure is injected as Gaussian-blob patterns at
// controlled spatial scales ("blob levels"). Small radii mean the class
// signal lives in high spatial frequencies — the synthetic analogue of a
// fine-grained task (Stanford Cars), which early JPEG scans destroy. Large
// radii survive even the DC-only scan (CelebA-HQ smile detection).
// Hierarchical levels (make vs model) support the paper's §4.3 label
// remapping experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "image/image.h"

namespace pcr {

/// One level of class-discriminative blob structure. Classes are grouped in
/// `classes_per_group`; every class in a group shares the level's pattern
/// (e.g. all models of one make share the make-level pattern).
struct BlobLevel {
  double radius_px = 8.0;
  int count = 18;
  double amplitude = 34.0;
  int classes_per_group = 1;
};

struct DatasetSpec {
  std::string name = "synthetic";
  int num_images = 600;
  int num_classes = 10;
  /// Nominal dimensions; each instance jitters by +/- size_jitter fraction
  /// (ImageNet-style size spread, Figure 12).
  int base_width = 320;
  int base_height = 240;
  double size_jitter = 0.25;
  int jpeg_quality = 90;
  std::vector<BlobLevel> levels = {{8.0, 18, 34.0, 1}};
  double background_contrast = 55.0;
  double noise_stddev = 3.0;
  /// Per-instance translation of the class pattern (pixels).
  double position_jitter_px = 5.0;
  bool color = true;
  int images_per_record = 64;
  uint64_t seed = 1;

  /// Scaled-down analogues of the paper's four datasets (Table 1).
  static DatasetSpec ImageNetLike();
  static DatasetSpec Ham10000Like();
  static DatasetSpec CarsLike();
  static DatasetSpec CelebAHqLike();

  /// Tiny spec for unit tests (small images, few of them).
  static DatasetSpec TestTiny();
};

/// The Cars label remappings of §4.3. Labels are make * models_per_make +
/// model with models_per_make from the spec's level structure.
int64_t CarsMakeOnlyLabel(int64_t label);
int64_t CarsIsCorvetteLabel(int64_t label);

/// Deterministically renders the image for (spec, class_id, instance).
Image GenerateImage(const DatasetSpec& spec, int class_id,
                    uint64_t instance_seed);

/// Round-robin class for image index i (balanced classes).
int ClassForImage(const DatasetSpec& spec, int index);

}  // namespace pcr
