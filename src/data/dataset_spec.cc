#include "data/dataset_spec.h"

#include <algorithm>
#include <cmath>

#include "image/procedural.h"
#include "util/random.h"

namespace pcr {

namespace {
// Cars hierarchy used by CarsLike(): 6 makes x 4 models.
constexpr int kCarsModelsPerMake = 4;
}  // namespace

DatasetSpec DatasetSpec::ImageNetLike() {
  DatasetSpec spec;
  spec.name = "imagenet_like";
  spec.num_images = 1024;
  spec.num_classes = 16;
  spec.base_width = 384;   // Typical ILSVRC size; ~110 kB at q92.
  spec.base_height = 288;
  spec.size_jitter = 0.35;
  spec.jpeg_quality = 92;  // Table 1: 91.7%.
  // Mid/fine-scale class structure: scans 1-2 cost accuracy, scan 5 is
  // near-baseline (the paper's Figure 4a/23a behaviour).
  spec.levels = {{5.5, 24, 28.0, 1}};
  spec.noise_stddev = 4.0;
  spec.background_contrast = 58.0;
  spec.images_per_record = 64;
  spec.seed = 101;
  return spec;
}

DatasetSpec DatasetSpec::Ham10000Like() {
  DatasetSpec spec;
  spec.name = "ham10000_like";
  spec.num_images = 768;
  spec.num_classes = 7;    // Table 1.
  spec.base_width = 600;   // HAM10000 dermatoscopy frames are 600x450 —
  spec.base_height = 450;  // the largest images of the four datasets.
  spec.size_jitter = 0.05;
  spec.jpeg_quality = 100;  // Table 1: 100%.
  // Lesion analogue: classes share a coarse pattern in pairs, so fine
  // texture is required to fully separate them. A model that leans on
  // high-frequency features (the ShuffleNet proxy) loses that signal at low
  // scans; a coarse-feature model (ResNet proxy) never depended on it.
  spec.levels = {{18.0, 8, 26.0, 2}, {5.0, 30, 26.0, 1}};
  spec.background_contrast = 40.0;
  spec.images_per_record = 64;
  spec.seed = 202;
  return spec;
}

DatasetSpec DatasetSpec::CarsLike() {
  DatasetSpec spec;
  spec.name = "cars_like";
  spec.num_images = 960;
  spec.num_classes = 4 * kCarsModelsPerMake;  // Make x model hierarchy.
  spec.base_width = 360;
  spec.base_height = 240;
  spec.size_jitter = 0.3;
  spec.jpeg_quality = 84;  // Table 1: 83.8%.
  // Coarse make-level pattern + fine model-level detail: the fine-grained
  // task needs high frequencies, the make/binary remaps do not.
  // Model-level blobs are small enough that scan 1's coarse DC cannot
  // resolve them (integral ~ DC quantization step at q84), so the
  // fine-grained task needs AC scans while the make/binary remaps do not.
  spec.levels = {{16.0, 10, 28.0, kCarsModelsPerMake}, {3.0, 40, 30.0, 1}};
  spec.background_contrast = 50.0;
  spec.position_jitter_px = 3.0;
  spec.images_per_record = 64;
  spec.seed = 303;
  return spec;
}

DatasetSpec DatasetSpec::CelebAHqLike() {
  DatasetSpec spec;
  spec.name = "celebahq_like";
  spec.num_images = 1024;
  spec.num_classes = 2;    // Smiling vs not.
  spec.base_width = 256;   // Trained at 256x256 per §A.4.
  spec.base_height = 256;
  spec.size_jitter = 0.0;  // Fixed-resolution dataset.
  spec.jpeg_quality = 75;  // Table 1: 75%.
  // Coarse facial-geometry analogue: big structures, very low-frequency
  // class signal -> tolerates scan 1. Amplitude kept modest so the task is
  // not trivially separable (paper reaches ~93%, not 100%).
  spec.levels = {{20.0, 6, 16.0, 1}};
  spec.noise_stddev = 6.0;
  spec.background_contrast = 45.0;
  spec.images_per_record = 64;
  spec.seed = 404;
  return spec;
}

DatasetSpec DatasetSpec::TestTiny() {
  DatasetSpec spec;
  spec.name = "test_tiny";
  spec.num_images = 48;
  spec.num_classes = 3;
  spec.base_width = 96;
  spec.base_height = 80;
  spec.size_jitter = 0.2;
  spec.jpeg_quality = 88;
  spec.levels = {{9.0, 8, 40.0, 1}};
  spec.images_per_record = 8;
  spec.seed = 7;
  return spec;
}

int64_t CarsMakeOnlyLabel(int64_t label) {
  return label / kCarsModelsPerMake;
}

int64_t CarsIsCorvetteLabel(int64_t label) {
  // "Corvette" = make 0, model 0 in our hierarchy.
  return label == 0 ? 1 : 0;
}

int ClassForImage(const DatasetSpec& spec, int index) {
  return index % spec.num_classes;
}

Image GenerateImage(const DatasetSpec& spec, int class_id,
                    uint64_t instance_seed) {
  Rng rng(instance_seed * 0x9e3779b97f4a7c15ULL + spec.seed);

  // Instance dimensions.
  int w = spec.base_width;
  int h = spec.base_height;
  if (spec.size_jitter > 0) {
    const double scale =
        std::exp(rng.UniformDouble(-spec.size_jitter, spec.size_jitter));
    const double aspect = std::exp(rng.UniformDouble(-0.08, 0.08));
    w = std::max(32, static_cast<int>(std::lround(w * scale * aspect)));
    h = std::max(32, static_cast<int>(std::lround(h * scale / aspect)));
  }

  std::vector<float> luma;
  BackgroundParams bg;
  bg.contrast = spec.background_contrast;
  RenderBackground(w, h, bg, &rng, &luma);

  // Class pattern: deterministic per (spec.seed, level, class group), with
  // a shared per-instance translation.
  const double dx = rng.UniformDouble(-spec.position_jitter_px,
                                      spec.position_jitter_px);
  const double dy = rng.UniformDouble(-spec.position_jitter_px,
                                      spec.position_jitter_px);
  for (size_t level = 0; level < spec.levels.size(); ++level) {
    const BlobLevel& bl = spec.levels[level];
    const int group = class_id / std::max(1, bl.classes_per_group);
    Rng pattern_rng(spec.seed * 1000003 + level * 7919 + group);
    const auto blobs =
        SampleBlobs(bl.count, bl.radius_px, bl.amplitude, &pattern_rng);
    RenderBlobs(w, h, blobs, dx, dy, &luma);
  }

  AddNoise(spec.noise_stddev, &rng, &luma);
  return LumaToImage(w, h, luma, spec.color, &rng);
}

}  // namespace pcr
