// Protobuf-compatible wire format: varints, zigzag, tag/wire-type framing,
// and length-delimited fields. This is the serialization substrate the paper
// delegates to Protobuf ("serialization libraries, such as Protobuf, handle
// both the packing and unpacking steps transparently").
//
// Only the subset needed by PCR metadata messages is implemented: varint
// (wire type 0), 64-bit fixed (1), length-delimited (2), and 32-bit fixed
// (5). Encoded bytes round-trip with real protobuf for these types.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace pcr::wire {

/// Protobuf wire types.
enum class WireType : uint8_t {
  kVarint = 0,
  kFixed64 = 1,
  kLengthDelimited = 2,
  kFixed32 = 5,
};

/// Zigzag maps signed to unsigned so small magnitudes encode small.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Appends a base-128 varint to `out`.
void PutVarint(std::string* out, uint64_t v);

/// Number of bytes PutVarint would emit.
size_t VarintLength(uint64_t v);

/// Serializer. Append-only; the buffer can be taken with Release().
class WireWriter {
 public:
  void PutUint64(int field, uint64_t v);
  void PutInt64(int field, int64_t v) {
    PutUint64(field, static_cast<uint64_t>(v));
  }
  void PutSint64(int field, int64_t v) { PutUint64(field, ZigZagEncode(v)); }
  void PutBool(int field, bool v) { PutUint64(field, v ? 1 : 0); }
  void PutFixed32(int field, uint32_t v);
  void PutFixed64(int field, uint64_t v);
  void PutDouble(int field, double v);
  void PutBytes(int field, Slice bytes);
  void PutString(int field, const std::string& s) { PutBytes(field, Slice(s)); }
  /// Embeds a nested message (its serialized bytes).
  void PutMessage(int field, const WireWriter& msg) {
    PutBytes(field, Slice(msg.buffer_));
  }
  /// Packed repeated uint64 (length-delimited sequence of varints).
  void PutPackedUint64(int field, const std::vector<uint64_t>& values);

  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  void PutTag(int field, WireType type);

  std::string buffer_;
};

/// One decoded field.
struct WireField {
  int field = 0;
  WireType type = WireType::kVarint;
  uint64_t varint = 0;   // For kVarint/kFixed32/kFixed64.
  Slice bytes;           // For kLengthDelimited.

  int64_t AsSint64() const { return ZigZagDecode(varint); }
  double AsDouble() const {
    double d;
    static_assert(sizeof(d) == sizeof(varint));
    __builtin_memcpy(&d, &varint, sizeof(d));
    return d;
  }
};

/// Streaming deserializer over a Slice. Typical use:
///   WireReader r(data);
///   WireField f;
///   while (r.Next(&f)) { switch (f.field) { ... } }
///   PCR_RETURN_IF_ERROR(r.status());
class WireReader {
 public:
  explicit WireReader(Slice data) : data_(data) {}

  /// Advances to the next field. Returns false at end-of-input or on error
  /// (check status() to distinguish).
  bool Next(WireField* field);

  /// OK unless the input was malformed.
  const Status& status() const { return status_; }
  bool AtEnd() const { return data_.empty(); }

  /// Decodes a packed repeated uint64 payload.
  static Result<std::vector<uint64_t>> DecodePackedUint64(Slice payload);

 private:
  bool Fail(const std::string& msg) {
    status_ = Status::Corruption(msg);
    return false;
  }

  Slice data_;
  Status status_;
};

/// Reads a varint from the front of `*data`, consuming it.
bool GetVarint(Slice* data, uint64_t* value);

}  // namespace pcr::wire
