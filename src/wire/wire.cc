#include "wire/wire.h"

#include <cstring>

namespace pcr::wire {

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

size_t VarintLength(uint64_t v) {
  size_t len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

bool GetVarint(Slice* data, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !data->empty(); shift += 7) {
    const uint8_t byte = static_cast<uint8_t>((*data)[0]);
    data->RemovePrefix(1);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
  }
  return false;
}

void WireWriter::PutTag(int field, WireType type) {
  PutVarint(&buffer_, (static_cast<uint64_t>(field) << 3) |
                          static_cast<uint64_t>(type));
}

void WireWriter::PutUint64(int field, uint64_t v) {
  PutTag(field, WireType::kVarint);
  PutVarint(&buffer_, v);
}

void WireWriter::PutFixed32(int field, uint32_t v) {
  PutTag(field, WireType::kFixed32);
  char buf[4];
  memcpy(buf, &v, 4);
  buffer_.append(buf, 4);
}

void WireWriter::PutFixed64(int field, uint64_t v) {
  PutTag(field, WireType::kFixed64);
  char buf[8];
  memcpy(buf, &v, 8);
  buffer_.append(buf, 8);
}

void WireWriter::PutDouble(int field, double v) {
  uint64_t bits;
  memcpy(&bits, &v, 8);
  PutFixed64(field, bits);
}

void WireWriter::PutBytes(int field, Slice bytes) {
  PutTag(field, WireType::kLengthDelimited);
  PutVarint(&buffer_, bytes.size());
  buffer_.append(bytes.data(), bytes.size());
}

void WireWriter::PutPackedUint64(int field, const std::vector<uint64_t>& values) {
  std::string payload;
  for (uint64_t v : values) PutVarint(&payload, v);
  PutBytes(field, Slice(payload));
}

bool WireReader::Next(WireField* field) {
  if (data_.empty() || !status_.ok()) return false;
  uint64_t tag;
  if (!GetVarint(&data_, &tag)) return Fail("truncated tag varint");
  field->field = static_cast<int>(tag >> 3);
  const uint64_t type_bits = tag & 0x7;
  if (field->field <= 0) return Fail("invalid field number");
  switch (type_bits) {
    case 0: {
      field->type = WireType::kVarint;
      if (!GetVarint(&data_, &field->varint)) {
        return Fail("truncated varint value");
      }
      return true;
    }
    case 1: {
      field->type = WireType::kFixed64;
      if (data_.size() < 8) return Fail("truncated fixed64");
      uint64_t v;
      memcpy(&v, data_.data(), 8);
      data_.RemovePrefix(8);
      field->varint = v;
      return true;
    }
    case 2: {
      field->type = WireType::kLengthDelimited;
      uint64_t len;
      if (!GetVarint(&data_, &len)) return Fail("truncated length");
      if (len > data_.size()) return Fail("length exceeds input");
      field->bytes = Slice(data_.data(), static_cast<size_t>(len));
      data_.RemovePrefix(static_cast<size_t>(len));
      return true;
    }
    case 5: {
      field->type = WireType::kFixed32;
      if (data_.size() < 4) return Fail("truncated fixed32");
      uint32_t v;
      memcpy(&v, data_.data(), 4);
      data_.RemovePrefix(4);
      field->varint = v;
      return true;
    }
    default:
      return Fail("unsupported wire type " + std::to_string(type_bits));
  }
}

Result<std::vector<uint64_t>> WireReader::DecodePackedUint64(Slice payload) {
  std::vector<uint64_t> out;
  while (!payload.empty()) {
    uint64_t v;
    if (!GetVarint(&payload, &v)) {
      return Status::Corruption("truncated packed varint");
    }
    out.push_back(v);
  }
  return out;
}

}  // namespace pcr::wire
