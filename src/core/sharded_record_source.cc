#include "core/sharded_record_source.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace pcr {

namespace {

std::string ShardContext(int shard) {
  return StrFormat("shard %d", shard);
}

}  // namespace

ShardedRecordSource::ShardedRecordSource(
    std::vector<std::unique_ptr<RecordSource>> shards)
    : shards_(std::move(shards)) {
  starts_.reserve(shards_.size() + 1);
  for (const auto& shard : shards_) {
    starts_.push_back(total_records_);
    total_records_ += shard->num_records();
    total_images_ += shard->num_images();
  }
  starts_.push_back(total_records_);
  num_groups_ = shards_[0]->num_scan_groups();
  format_name_ = StrFormat("sharded[%dx %s]", num_shards(),
                           shards_[0]->format_name().c_str());
}

Result<std::unique_ptr<ShardedRecordSource>> ShardedRecordSource::Create(
    std::vector<std::unique_ptr<RecordSource>> shards) {
  if (shards.empty()) {
    return Status::InvalidArgument("sharded source needs at least one shard");
  }
  for (size_t s = 0; s < shards.size(); ++s) {
    if (shards[s] == nullptr) {
      return Status::InvalidArgument(
          StrFormat("sharded source: shard %zu is null", s));
    }
    if (shards[s]->num_scan_groups() != shards[0]->num_scan_groups()) {
      return Status::InvalidArgument(StrFormat(
          "sharded source: shard %zu has %d scan groups, shard 0 has %d",
          s, shards[s]->num_scan_groups(), shards[0]->num_scan_groups()));
    }
  }
  return std::unique_ptr<ShardedRecordSource>(
      new ShardedRecordSource(std::move(shards)));
}

Result<ShardedRecordSource::Locator> ShardedRecordSource::Locate(
    int record) const {
  if (record < 0 || record >= total_records_) {
    return Status::OutOfRange(
        StrFormat("record %d out of range [0, %d)", record, total_records_));
  }
  // First start strictly greater than `record`, minus one, owns it.
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), record);
  Locator loc;
  loc.shard = static_cast<int>(it - starts_.begin()) - 1;
  loc.local = record - starts_[loc.shard];
  return loc;
}

int ShardedRecordSource::shard_of(int record) const {
  auto loc = Locate(record);
  PCR_CHECK(loc.ok()) << loc.status();
  return loc->shard;
}

uint64_t ShardedRecordSource::RecordReadBytes(int record,
                                              int scan_group) const {
  auto loc = Locate(record);
  PCR_CHECK(loc.ok()) << loc.status();
  return shards_[loc->shard]->RecordReadBytes(loc->local, scan_group);
}

int ShardedRecordSource::RecordImages(int record) const {
  auto loc = Locate(record);
  PCR_CHECK(loc.ok()) << loc.status();
  return shards_[loc->shard]->RecordImages(loc->local);
}

Result<FetchPlan> ShardedRecordSource::PlanFetch(
    int record, int scan_group, const FetchResident* resident) const {
  PCR_ASSIGN_OR_RETURN(const Locator loc, Locate(record));
  auto plan = shards_[loc.shard]->PlanFetch(loc.local, scan_group, resident);
  if (!plan.ok()) {
    return plan.status().WithContext(ShardContext(loc.shard));
  }
  // The plan keeps the shard's env and paths (that is the routing) but
  // carries the global numbering back to the caller.
  plan->record = record;
  return plan;
}

Result<RawRecord> ShardedRecordSource::CompleteFetch(
    const FetchPlan& plan, std::string bytes) const {
  PCR_ASSIGN_OR_RETURN(const Locator loc, Locate(plan.record));
  FetchPlan local_plan = plan;
  local_plan.record = loc.local;
  auto raw =
      shards_[loc.shard]->CompleteFetch(local_plan, std::move(bytes));
  if (!raw.ok()) {
    return raw.status().WithContext(ShardContext(loc.shard));
  }
  raw->record = plan.record;  // Back to global numbering.
  return raw;
}

Result<RecordBatch> ShardedRecordSource::AssembleRecord(RawRecord raw) const {
  PCR_ASSIGN_OR_RETURN(const Locator loc, Locate(raw.record));
  const int shard = loc.shard;
  raw.record = loc.local;
  auto batch = shards_[shard]->AssembleRecord(std::move(raw));
  if (!batch.ok()) {
    return batch.status().WithContext(ShardContext(shard));
  }
  return batch;
}

void ShardedRecordSource::ReportFetchOutcome(const FetchPlan& plan,
                                             const Status& status) const {
  auto loc = Locate(plan.record);
  if (!loc.ok()) return;  // Outcome for an unknown record: nothing to score.
  // Forwarded with the global record number: replica scoring keys on the
  // plan's replica/env, never on its record.
  shards_[loc->shard]->ReportFetchOutcome(plan, status);
}

uint64_t ShardedRecordSource::total_bytes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->total_bytes();
  return total;
}

}  // namespace pcr
