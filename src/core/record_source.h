// RecordSource: the storage-format abstraction the data loader consumes.
// Implementations: PcrDataset (scan-group aware), RecordDataset (TFRecord /
// RecordIO-style baseline), FilePerImageDataset (ImageFolder-style baseline).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/env.h"
#include "util/result.h"

namespace pcr {

/// The raw bytes fetched from storage for one record read, before any
/// parsing or decoding. Produced by the I/O stage of the loader pipeline and
/// consumed by the decode stage (RecordSource::AssembleRecord).
struct RawRecord {
  int record = -1;
  int scan_group = 0;   // Clamped group the payload was fetched at.
  std::string payload;  // Exact on-storage bytes of the (partial) record.
  uint64_t bytes_read = 0;
};

/// Shared I/O helper for FetchRecord implementations: one sequential read of
/// the first `bytes` bytes of `path` into a RawRecord payload.
inline Result<RawRecord> FetchFileBytes(Env* env, const std::string& path,
                                        uint64_t bytes, int record,
                                        int scan_group) {
  PCR_ASSIGN_OR_RETURN(auto file, env->NewRandomAccessFile(path));
  RawRecord raw;
  raw.record = record;
  raw.scan_group = scan_group;
  raw.payload.resize(bytes);
  Slice result;
  PCR_RETURN_IF_ERROR(file->Read(0, bytes, raw.payload.data(), &result));
  if (result.size() != bytes) {
    return Status::IOError("short read of " + path);
  }
  raw.bytes_read = bytes;
  return raw;
}

/// The images+labels yielded by one record read. The JPEG streams are
/// (offset, length) spans into one backing buffer instead of per-image
/// strings: formats whose payload already contains standalone streams
/// (record / file-per-image) hand out views straight into the fetched bytes
/// with zero copying, and PCR assembly stitches all images into a single
/// arena. Spans are offsets, not pointers, so moving the batch (including
/// small-string moves that relocate the bytes) cannot dangle them.
struct RecordBatch {
  std::vector<int64_t> labels;
  std::vector<ByteSpan> spans;  // One standalone JPEG stream per image.
  std::string backing;          // The bytes every span points into.
  uint64_t bytes_read = 0;      // Bytes fetched from storage for this read.

  int size() const { return static_cast<int>(spans.size()); }

  /// The i-th image's JPEG stream; valid while this batch is alive and
  /// unmoved.
  Slice jpeg(int i) const {
    return Slice(backing.data() + spans[i].offset, spans[i].length);
  }
};

/// A randomly-accessible collection of records, each holding a batch of
/// compressed images. Reads may be parameterized by scan group: PCRs return
/// reduced-quality data with proportionally fewer bytes; fixed-quality
/// formats ignore the parameter.
///
/// Reads are split into two first-class operations so the staged loader
/// pipeline can run them on different resources:
///   FetchRecord    — pure I/O: one (partial) sequential read through Env.
///   AssembleRecord — pure CPU: parse the payload into JPEG streams+labels.
/// ReadRecord composes the two for synchronous callers.
class RecordSource {
 public:
  virtual ~RecordSource() = default;

  virtual int num_records() const = 0;
  virtual int num_images() const = 0;
  /// Number of quality levels addressable (1 for fixed-quality formats).
  virtual int num_scan_groups() const = 0;

  /// Bytes a FetchRecord(record, scan_group) will fetch from storage.
  virtual uint64_t RecordReadBytes(int record, int scan_group) const = 0;

  /// Number of images record `record` holds (known from metadata, no I/O).
  virtual int RecordImages(int record) const = 0;

  /// I/O-only half of a read: fetches the record's raw bytes at the given
  /// quality, touching storage but doing no parsing or decoding. scan_group
  /// is clamped to [1, num_scan_groups()]. Thread-safe.
  virtual Result<RawRecord> FetchRecord(int record, int scan_group) = 0;

  /// CPU-only half of a read: parses a fetched payload into standalone JPEG
  /// streams and labels. Performs no I/O. Thread-safe.
  virtual Result<RecordBatch> AssembleRecord(RawRecord raw) const = 0;

  /// Convenience: FetchRecord + AssembleRecord in one call.
  Result<RecordBatch> ReadRecord(int record, int scan_group) {
    PCR_ASSIGN_OR_RETURN(RawRecord raw, FetchRecord(record, scan_group));
    return AssembleRecord(std::move(raw));
  }

  /// Human-readable format name for benchmark output.
  virtual std::string format_name() const = 0;

  /// Total on-disk bytes of the dataset (all records, full quality).
  virtual uint64_t total_bytes() const = 0;

  /// Mean bytes per image at the given scan group — the E[s(x, g)] of the
  /// paper's Lemma A.2.
  double MeanImageBytes(int scan_group) const {
    uint64_t total = 0;
    for (int r = 0; r < num_records(); ++r) {
      total += RecordReadBytes(r, scan_group);
    }
    return num_images() > 0
               ? static_cast<double>(total) / num_images()
               : 0.0;
  }
};

}  // namespace pcr
