// RecordSource: the storage-format abstraction the data loader consumes.
// Implementations: PcrDataset (scan-group aware), RecordDataset (TFRecord /
// RecordIO-style baseline), FilePerImageDataset (ImageFolder-style baseline).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace pcr {

/// The images+labels yielded by one record read.
struct RecordBatch {
  std::vector<int64_t> labels;
  std::vector<std::string> jpegs;  // Standalone decodable JPEG streams.
  uint64_t bytes_read = 0;         // Bytes fetched from storage for this read.

  int size() const { return static_cast<int>(jpegs.size()); }
};

/// A randomly-accessible collection of records, each holding a batch of
/// compressed images. Reads may be parameterized by scan group: PCRs return
/// reduced-quality data with proportionally fewer bytes; fixed-quality
/// formats ignore the parameter.
class RecordSource {
 public:
  virtual ~RecordSource() = default;

  virtual int num_records() const = 0;
  virtual int num_images() const = 0;
  /// Number of quality levels addressable (1 for fixed-quality formats).
  virtual int num_scan_groups() const = 0;

  /// Bytes a ReadRecord(record, scan_group) will fetch from storage.
  virtual uint64_t RecordReadBytes(int record, int scan_group) const = 0;

  /// Number of images record `record` holds (known from metadata, no I/O).
  virtual int RecordImages(int record) const = 0;

  /// Fetches a record at the given quality. scan_group is clamped to
  /// [1, num_scan_groups()].
  virtual Result<RecordBatch> ReadRecord(int record, int scan_group) = 0;

  /// Human-readable format name for benchmark output.
  virtual std::string format_name() const = 0;

  /// Total on-disk bytes of the dataset (all records, full quality).
  virtual uint64_t total_bytes() const = 0;

  /// Mean bytes per image at the given scan group — the E[s(x, g)] of the
  /// paper's Lemma A.2.
  double MeanImageBytes(int scan_group) const {
    uint64_t total = 0;
    for (int r = 0; r < num_records(); ++r) {
      total += RecordReadBytes(r, scan_group);
    }
    return num_images() > 0
               ? static_cast<double>(total) / num_images()
               : 0.0;
  }
};

}  // namespace pcr
