// RecordSource: the storage-format abstraction the data loader consumes.
// Implementations: PcrDataset (scan-group aware), RecordDataset (TFRecord /
// RecordIO-style baseline), FilePerImageDataset (ImageFolder-style baseline).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/env.h"
#include "util/result.h"

namespace pcr {

/// The raw bytes fetched from storage for one record read, before any
/// parsing or decoding. Produced by the I/O stage of the loader pipeline and
/// consumed by the decode stage (RecordSource::AssembleRecord).
struct RawRecord {
  int record = -1;
  int scan_group = 0;   // Clamped group the payload was fetched at.
  std::string payload;  // Exact on-storage bytes of the (partial) record.
  uint64_t bytes_read = 0;
};

/// One contiguous byte range of a fetch plan. A resident segment's bytes are
/// already in memory (see FetchPlan::resident_bytes) and must not be read
/// from storage; CompleteFetch stitches them back into the payload.
struct FetchSegment {
  std::string path;
  uint64_t offset = 0;
  uint64_t length = 0;
  bool resident = false;
};

/// Bytes of a record already held in memory from an earlier, lower-fidelity
/// fetch: the on-storage prefix of the record's file as read at `scan_group`.
/// Passed to PlanFetch so the plan can skip re-reading that prefix —
/// upgrading a record from group g to g' only fetches the delta bytes.
/// Fixed-quality formats only honor bytes covering the whole record.
struct FetchResident {
  int scan_group = 0;
  std::shared_ptr<const std::string> bytes;
};

/// The I/O recipe for one record read at one quality: which byte ranges to
/// read through which Env, with no format knowledge needed by the reader.
/// Produced by RecordSource::PlanFetch (metadata only, no I/O); the fetched
/// bytes — non-resident segments concatenated in plan order — go back
/// through CompleteFetch, which splices resident segments in from
/// `resident_bytes`. Callers submit the non-resident segments through
/// `env`'s IoScheduler as one scatter-gather ReadRequest (ToReadRequest), or
/// read them synchronously via ReadFetchPlan.
/// An equivalent way to serve a plan's fetched bytes from another replica:
/// same record, same scan group, same byte layout, different backend and
/// paths. Replicated sources attach these to their plans so the reader can
/// fail over a dead fetch — or hedge a slow one — without a planning round
/// trip.
struct FetchAlternate {
  int replica = 0;     // Replica index that planned these segments.
  Env* env = nullptr;  // Backend serving them.
  std::vector<FetchSegment> segments;
};

struct FetchPlan {
  int record = -1;
  int scan_group = 0;  // Clamped group the plan fetches at.
  Env* env = nullptr;  // Backend serving the segments (sharding routes it).
  std::vector<FetchSegment> segments;
  /// Backing for resident segments: the record file's in-memory prefix, so a
  /// resident segment's bytes live at resident_bytes->data() + offset.
  std::shared_ptr<const std::string> resident_bytes;
  /// Replica index that planned `segments` (0 for unreplicated sources).
  int replica = 0;
  /// Untried equivalent servings from other replicas, in preference order.
  std::vector<FetchAlternate> alternates;

  /// Re-points the plan at `alt` (read failover / hedged-read win): the
  /// fetched segments and backend swap, everything else — record, scan
  /// group, resident bytes — is replica-agnostic and stays.
  void UseAlternate(const FetchAlternate& alt) {
    env = alt.env;
    segments = alt.segments;
    replica = alt.replica;
  }

  uint64_t total_bytes() const {
    uint64_t total = 0;
    for (const FetchSegment& s : segments) total += s.length;
    return total;
  }

  /// Bytes that must actually be fetched from storage (non-resident only).
  uint64_t fetch_bytes() const {
    uint64_t total = 0;
    for (const FetchSegment& s : segments) {
      if (!s.resident) total += s.length;
    }
    return total;
  }

  /// True when every planned byte is already in memory: zero I/O needed.
  bool fully_resident() const {
    for (const FetchSegment& s : segments) {
      if (!s.resident) return false;
    }
    return true;
  }

  /// The plan's non-resident segments as one scatter-gather scheduler
  /// request. Empty-segment requests are valid and complete immediately
  /// (fully-resident plans reach the scheduler as zero-byte reads).
  ReadRequest ToReadRequest(uint64_t user_data = 0) const {
    ReadRequest request;
    request.user_data = user_data;
    for (const FetchSegment& s : segments) {
      if (!s.resident) {
        request.segments.push_back(ReadSegment{s.path, s.offset, s.length});
      }
    }
    return request;
  }
};

/// Synchronous plan execution: blocking reads of every non-resident segment
/// through plan.env, concatenated in plan order (resident segments are
/// skipped — CompleteFetch splices them back in). The adapter under
/// RecordSource::FetchRecord, also handy for tests and tools.
Result<std::string> ReadFetchPlan(const FetchPlan& plan);

/// The images+labels yielded by one record read. The JPEG streams are
/// (offset, length) spans into one backing buffer instead of per-image
/// strings: formats whose payload already contains standalone streams
/// (record / file-per-image) hand out views straight into the fetched bytes
/// with zero copying, and PCR assembly stitches all images into a single
/// arena. Spans are offsets, not pointers, so moving the batch (including
/// small-string moves that relocate the bytes) cannot dangle them.
struct RecordBatch {
  std::vector<int64_t> labels;
  std::vector<ByteSpan> spans;  // One standalone JPEG stream per image.
  std::string backing;          // The bytes every span points into.
  uint64_t bytes_read = 0;      // Bytes fetched from storage for this read.

  int size() const { return static_cast<int>(spans.size()); }

  /// The i-th image's JPEG stream; valid while this batch is alive and
  /// unmoved.
  Slice jpeg(int i) const {
    return Slice(backing.data() + spans[i].offset, spans[i].length);
  }
};

/// A randomly-accessible collection of records, each holding a batch of
/// compressed images. Reads may be parameterized by scan group: PCRs return
/// reduced-quality data with proportionally fewer bytes; fixed-quality
/// formats ignore the parameter.
///
/// Reads decompose into three first-class operations so the staged loader
/// pipeline can run them on different resources, and so fetches can be kept
/// in flight through an Env's submission/completion IoScheduler without the
/// reader knowing the format:
///   PlanFetch      — metadata only: which byte ranges to read through which
///                    Env for (record, scan group). No I/O.
///   CompleteFetch  — wraps a plan's fetched bytes into a RawRecord. No I/O.
///   AssembleRecord — pure CPU: parse the payload into JPEG streams+labels.
/// FetchRecord (plan + blocking read + complete) and ReadRecord (+ assemble)
/// compose them for synchronous callers.
class RecordSource {
 public:
  virtual ~RecordSource() = default;

  virtual int num_records() const = 0;
  virtual int num_images() const = 0;
  /// Number of quality levels addressable (1 for fixed-quality formats).
  virtual int num_scan_groups() const = 0;

  /// Bytes a FetchRecord(record, scan_group) will fetch from storage.
  virtual uint64_t RecordReadBytes(int record, int scan_group) const = 0;

  /// Number of images record `record` holds (known from metadata, no I/O).
  virtual int RecordImages(int record) const = 0;

  /// Plans the I/O for one record read at the given quality: the byte
  /// segments to fetch and the Env to fetch them through. scan_group is
  /// clamped to [1, num_scan_groups()]. When `resident` carries a usable
  /// in-memory prefix of the record (from an earlier lower-fidelity fetch),
  /// the plan marks those bytes resident and only fetches the remainder — a
  /// fully-resident plan needs no I/O at all. Performs no I/O. Thread-safe.
  virtual Result<FetchPlan> PlanFetch(int record, int scan_group,
                                      const FetchResident* resident) const = 0;

  /// Resident-less convenience overload: always fetches every planned byte.
  Result<FetchPlan> PlanFetch(int record, int scan_group) const {
    return PlanFetch(record, scan_group, nullptr);
  }

  /// Format half of a completed fetch: stitches the plan's fetched bytes
  /// (non-resident segments concatenated in plan order) and its resident
  /// bytes into a RawRecord for AssembleRecord. RawRecord::bytes_read counts
  /// only the fetched bytes — resident bytes cost no I/O. Performs no I/O.
  /// Thread-safe. The default validates byte counts and stamps the plan's
  /// record/scan group; sources that route plans (ShardedRecordSource) or
  /// post-process payloads override it.
  virtual Result<RawRecord> CompleteFetch(const FetchPlan& plan,
                                          std::string bytes) const;

  /// CPU-only half of a read: parses a fetched payload into standalone JPEG
  /// streams and labels. Performs no I/O. Thread-safe.
  virtual Result<RecordBatch> AssembleRecord(RawRecord raw) const = 0;

  /// Read-path health feedback: the reader reports how fetching `plan`
  /// (possibly re-pointed at an alternate) went, once per completed attempt.
  /// Replicated sources score replica health from this — ejecting failing
  /// replicas from planning, reopening them by probe; everything else
  /// ignores it. `status` is the fetch's I/O outcome. Thread-safe; no I/O.
  virtual void ReportFetchOutcome(const FetchPlan& plan,
                                  const Status& status) const {
    (void)plan;
    (void)status;
  }

  /// Synchronous I/O adapter: PlanFetch + blocking segment reads +
  /// CompleteFetch. Thread-safe.
  Result<RawRecord> FetchRecord(int record, int scan_group,
                                const FetchResident* resident = nullptr) {
    PCR_ASSIGN_OR_RETURN(FetchPlan plan,
                         PlanFetch(record, scan_group, resident));
    PCR_ASSIGN_OR_RETURN(std::string bytes, ReadFetchPlan(plan));
    return CompleteFetch(plan, std::move(bytes));
  }

  /// Convenience: FetchRecord + AssembleRecord in one call.
  Result<RecordBatch> ReadRecord(int record, int scan_group) {
    PCR_ASSIGN_OR_RETURN(RawRecord raw, FetchRecord(record, scan_group));
    return AssembleRecord(std::move(raw));
  }

  /// Human-readable format name for benchmark output.
  virtual std::string format_name() const = 0;

  /// Total on-disk bytes of the dataset (all records, full quality).
  virtual uint64_t total_bytes() const = 0;

  /// Mean bytes per image at the given scan group — the E[s(x, g)] of the
  /// paper's Lemma A.2.
  double MeanImageBytes(int scan_group) const {
    uint64_t total = 0;
    for (int r = 0; r < num_records(); ++r) {
      total += RecordReadBytes(r, scan_group);
    }
    return num_images() > 0
               ? static_cast<double>(total) / num_images()
               : 0.0;
  }
};

}  // namespace pcr
