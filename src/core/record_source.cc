#include "core/record_source.h"

namespace pcr {

Result<std::string> ReadFetchPlan(const FetchPlan& plan) {
  if (plan.env == nullptr) {
    return Status::InvalidArgument("fetch plan has no env");
  }
  std::string bytes;
  for (const FetchSegment& segment : plan.segments) {
    if (segment.resident) continue;  // Already in memory; nothing to read.
    std::string segment_bytes;
    PCR_RETURN_IF_ERROR(plan.env->ReadRange(segment.path, segment.offset,
                                            segment.length, &segment_bytes));
    if (bytes.empty()) {
      bytes = std::move(segment_bytes);  // Single-segment plans: no copy.
    } else {
      bytes += segment_bytes;
    }
  }
  return bytes;
}

Result<RawRecord> RecordSource::CompleteFetch(const FetchPlan& plan,
                                              std::string bytes) const {
  if (bytes.size() != plan.fetch_bytes()) {
    return Status::IOError("fetch delivered " + std::to_string(bytes.size()) +
                           " of " + std::to_string(plan.fetch_bytes()) +
                           " planned bytes");
  }
  RawRecord raw;
  raw.record = plan.record;
  raw.scan_group = plan.scan_group;
  raw.bytes_read = bytes.size();  // Resident bytes cost no I/O.
  if (plan.fetch_bytes() == plan.total_bytes()) {
    raw.payload = std::move(bytes);  // No resident segments: nothing to stitch.
    return raw;
  }
  std::string payload;
  payload.reserve(static_cast<size_t>(plan.total_bytes()));
  size_t fetched_cursor = 0;
  for (const FetchSegment& segment : plan.segments) {
    const size_t length = static_cast<size_t>(segment.length);
    if (segment.resident) {
      if (plan.resident_bytes == nullptr ||
          segment.offset + segment.length > plan.resident_bytes->size()) {
        return Status::InvalidArgument(
            "resident segment exceeds the plan's resident bytes");
      }
      payload.append(
          plan.resident_bytes->data() + static_cast<size_t>(segment.offset),
          length);
    } else {
      payload.append(bytes.data() + fetched_cursor, length);
      fetched_cursor += length;
    }
  }
  raw.payload = std::move(payload);
  return raw;
}

}  // namespace pcr
