#include "core/record_source.h"

namespace pcr {

Result<std::string> ReadFetchPlan(const FetchPlan& plan) {
  if (plan.env == nullptr) {
    return Status::InvalidArgument("fetch plan has no env");
  }
  std::string bytes;
  for (const FetchSegment& segment : plan.segments) {
    std::string segment_bytes;
    PCR_RETURN_IF_ERROR(plan.env->ReadRange(segment.path, segment.offset,
                                            segment.length, &segment_bytes));
    if (bytes.empty()) {
      bytes = std::move(segment_bytes);  // Single-segment plans: no copy.
    } else {
      bytes += segment_bytes;
    }
  }
  return bytes;
}

Result<RawRecord> RecordSource::CompleteFetch(const FetchPlan& plan,
                                              std::string bytes) const {
  if (bytes.size() != plan.total_bytes()) {
    return Status::IOError("fetch delivered " + std::to_string(bytes.size()) +
                           " of " + std::to_string(plan.total_bytes()) +
                           " planned bytes");
  }
  RawRecord raw;
  raw.record = plan.record;
  raw.scan_group = plan.scan_group;
  raw.bytes_read = bytes.size();
  raw.payload = std::move(bytes);
  return raw;
}

}  // namespace pcr
