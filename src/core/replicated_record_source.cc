#include "core/replicated_record_source.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace pcr {

ReplicatedRecordSource::ReplicatedRecordSource(
    std::vector<std::unique_ptr<RecordSource>> replicas,
    ReplicationOptions options)
    : replicas_(std::move(replicas)), options_(options),
      clock_(options.clock != nullptr ? options.clock : RealClock::Get()),
      states_(replicas_.size()) {
  format_name_ = StrFormat("replicated[%dx %s]", num_replicas(),
                           replicas_[0]->format_name().c_str());
}

Result<std::unique_ptr<ReplicatedRecordSource>> ReplicatedRecordSource::Create(
    std::vector<std::unique_ptr<RecordSource>> replicas,
    ReplicationOptions options) {
  if (replicas.empty()) {
    return Status::InvalidArgument(
        "replicated source needs at least one replica");
  }
  for (size_t r = 0; r < replicas.size(); ++r) {
    if (replicas[r] == nullptr) {
      return Status::InvalidArgument(
          StrFormat("replicated source: replica %zu is null", r));
    }
    if (replicas[r]->num_records() != replicas[0]->num_records() ||
        replicas[r]->num_images() != replicas[0]->num_images() ||
        replicas[r]->num_scan_groups() != replicas[0]->num_scan_groups()) {
      return Status::InvalidArgument(StrFormat(
          "replicated source: replica %zu (%d records, %d images, %d groups) "
          "does not mirror replica 0 (%d records, %d images, %d groups)",
          r, replicas[r]->num_records(), replicas[r]->num_images(),
          replicas[r]->num_scan_groups(), replicas[0]->num_records(),
          replicas[0]->num_images(), replicas[0]->num_scan_groups()));
    }
  }
  return std::unique_ptr<ReplicatedRecordSource>(
      new ReplicatedRecordSource(std::move(replicas), options));
}

int ReplicatedRecordSource::PickPrimaryLocked(int64_t now_nanos) const {
  const int n = num_replicas();
  // An expired ejection makes the replica the preferred pick exactly once:
  // the plan doubles as its recovery probe.
  for (int r = 0; r < n; ++r) {
    ReplicaState& state = states_[r];
    if (state.ejected_until_nanos != 0 &&
        now_nanos >= state.ejected_until_nanos) {
      state.ejected_until_nanos = 0;
      ++state.probes;
      return r;
    }
  }
  std::vector<int> healthy;
  healthy.reserve(n);
  for (int r = 0; r < n; ++r) {
    if (states_[r].ejected_until_nanos == 0) healthy.push_back(r);
  }
  if (!healthy.empty()) {
    return healthy[rotation_++ % healthy.size()];
  }
  // Everything is ejected: serve from whichever replica reopens soonest
  // rather than failing the plan outright.
  int best = 0;
  for (int r = 1; r < n; ++r) {
    if (states_[r].ejected_until_nanos < states_[best].ejected_until_nanos) {
      best = r;
    }
  }
  return best;
}

Result<FetchPlan> ReplicatedRecordSource::PlanFetch(
    int record, int scan_group, const FetchResident* resident) const {
  int primary;
  {
    std::lock_guard<std::mutex> lock(mu_);
    primary = PickPrimaryLocked(clock_->NowNanos());
    ++states_[primary].plans;
  }
  auto plan = replicas_[primary]->PlanFetch(record, scan_group, resident);
  if (!plan.ok()) {
    return plan.status().WithContext(StrFormat("replica %d", primary));
  }
  plan->replica = primary;
  // Alternates in rotation order after the primary, healthiest first is
  // approximated by skipping currently-ejected replicas; they are appended
  // last so a fetch with every healthy replica failing still has somewhere
  // to go.
  const int n = num_replicas();
  const int max_alternates =
      std::min(options_.max_alternates, n - 1);
  std::vector<int> order;
  order.reserve(static_cast<size_t>(n) - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int step = 1; step < n; ++step) {
      const int r = (primary + step) % n;
      if (states_[r].ejected_until_nanos == 0) order.push_back(r);
    }
    for (int step = 1; step < n; ++step) {
      const int r = (primary + step) % n;
      if (states_[r].ejected_until_nanos != 0) order.push_back(r);
    }
  }
  for (const int r : order) {
    if (static_cast<int>(plan->alternates.size()) >= max_alternates) break;
    auto alt_plan = replicas_[r]->PlanFetch(record, scan_group, resident);
    if (!alt_plan.ok()) continue;  // A replica that cannot plan is no backup.
    FetchAlternate alternate;
    alternate.replica = r;
    alternate.env = alt_plan->env;
    alternate.segments = std::move(alt_plan->segments);
    plan->alternates.push_back(std::move(alternate));
  }
  return plan;
}

Result<RawRecord> ReplicatedRecordSource::CompleteFetch(
    const FetchPlan& plan, std::string bytes) const {
  if (plan.replica < 0 || plan.replica >= num_replicas()) {
    return Status::InvalidArgument(
        StrFormat("plan names replica %d of %d", plan.replica,
                  num_replicas()));
  }
  // Replicas share one local numbering, so the plan routes by replica only.
  return replicas_[plan.replica]->CompleteFetch(plan, std::move(bytes));
}

Result<RecordBatch> ReplicatedRecordSource::AssembleRecord(
    RawRecord raw) const {
  // Assembly is pure CPU on format-identical replicas; replica 0 serves.
  return replicas_[0]->AssembleRecord(std::move(raw));
}

void ReplicatedRecordSource::ReportFetchOutcome(const FetchPlan& plan,
                                                const Status& status) const {
  if (plan.replica < 0 || plan.replica >= num_replicas()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ReplicaState& state = states_[plan.replica];
  if (status.ok()) {
    ++state.successes;
    state.consecutive_failures = 0;
    // A success clears ejection entirely (a probe that came back healthy)
    // and resets the backoff window.
    state.ejected_until_nanos = 0;
    state.eject_window_sec = 0.0;
    return;
  }
  ++state.failures;
  if (++state.consecutive_failures < options_.eject_after_failures) return;
  if (state.ejected_until_nanos != 0) return;  // Already ejected.
  state.eject_window_sec =
      state.eject_window_sec == 0.0
          ? options_.eject_duration_sec
          : std::min(state.eject_window_sec * 2.0,
                     options_.max_eject_duration_sec);
  state.ejected_until_nanos =
      clock_->NowNanos() + SecondsToNanos(state.eject_window_sec);
  ++state.ejections;
  state.consecutive_failures = 0;  // Counting restarts at the probe.
}

std::vector<ReplicaHealth> ReplicatedRecordSource::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = clock_->NowNanos();
  std::vector<ReplicaHealth> health(replicas_.size());
  for (int r = 0; r < num_replicas(); ++r) {
    const ReplicaState& state = states_[r];
    ReplicaHealth& h = health[static_cast<size_t>(r)];
    h.replica = r;
    h.plans = state.plans;
    h.successes = state.successes;
    h.failures = state.failures;
    h.consecutive_failures = state.consecutive_failures;
    h.ejections = state.ejections;
    h.probes = state.probes;
    h.ejected = state.ejected_until_nanos != 0 &&
                now < state.ejected_until_nanos;
  }
  return health;
}

}  // namespace pcr
