#include "core/pcr_dataset.h"

#include <algorithm>

#include "jpeg/codec.h"
#include "jpeg/scan_parser.h"
#include "util/string_util.h"
#include "wire/wire.h"

namespace pcr {

namespace {

constexpr char kDbName[] = "metadata.kvlog";

// Wire fields for the per-record manifest entry.
constexpr int kRecFieldPath = 1;
constexpr int kRecFieldNumImages = 2;
constexpr int kRecFieldPrefixBytes = 3;
constexpr int kRecFieldFileBytes = 4;
constexpr int kRecFieldHeaderBytes = 5;

std::string RecordKey(int index) { return StrFormat("rec/%08d", index); }
std::string RecordFileName(int index) {
  return StrFormat("record-%06d.pcr", index);
}

}  // namespace

// ----------------------------------------------------------------- Writer

PcrDatasetWriter::PcrDatasetWriter(Env* env, std::string dir,
                                   PcrWriterOptions options)
    : env_(env), dir_(std::move(dir)), options_(options) {}

Result<std::unique_ptr<PcrDatasetWriter>> PcrDatasetWriter::Create(
    Env* env, const std::string& dir, const PcrWriterOptions& options) {
  if (options.images_per_record < 1) {
    return Status::InvalidArgument("images_per_record must be >= 1");
  }
  if (options.num_scan_groups < 1 ||
      options.num_scan_groups > kMaxScanGroups) {
    return Status::InvalidArgument("num_scan_groups out of range");
  }
  PCR_RETURN_IF_ERROR(env->CreateDir(dir));
  std::unique_ptr<PcrDatasetWriter> writer(
      new PcrDatasetWriter(env, dir, options));
  PCR_ASSIGN_OR_RETURN(writer->db_, KvStore::Open(env, dir + "/" + kDbName));
  return writer;
}

Status PcrDatasetWriter::AddImage(Slice jpeg, int64_t label) {
  if (finished_) return Status::FailedPrecondition("writer already finished");

  // Ensure progressive form ("Our implementation uses JPEGTRAN to losslessly
  // transform JPEG images into progressive JPEG images").
  std::string progressive;
  PCR_ASSIGN_OR_RETURN(auto index, jpeg::IndexScans(jpeg));
  if (!index.progressive) {
    if (!options_.transcode_to_progressive) {
      return Status::InvalidArgument(
          "baseline input with transcoding disabled");
    }
    PCR_ASSIGN_OR_RETURN(progressive, jpeg::TranscodeToProgressive(jpeg));
    PCR_ASSIGN_OR_RETURN(index, jpeg::IndexScans(progressive));
    jpeg = Slice(progressive);
  }

  StagedImage staged;
  staged.label = label;
  staged.jpeg_header = std::string(jpeg.data(), index.header_end);
  staged.scans.resize(options_.num_scan_groups);
  const int num_scans = static_cast<int>(index.scans.size());
  for (int s = 0; s < num_scans; ++s) {
    // Surplus scans merge into the last group; missing groups stay empty.
    const int group = std::min(s, options_.num_scan_groups - 1);
    staged.scans[group].append(jpeg.data() + index.scans[s].start,
                               index.scans[s].size());
  }
  staged_.push_back(std::move(staged));
  ++images_added_;

  if (static_cast<int>(staged_.size()) >= options_.images_per_record) {
    return FlushRecord();
  }
  return Status::OK();
}

Status PcrDatasetWriter::FlushRecord() {
  if (staged_.empty()) return Status::OK();

  PcrHeader header;
  header.num_images = static_cast<int>(staged_.size());
  header.num_groups = options_.num_scan_groups;
  header.group_sizes.assign(options_.num_scan_groups,
                            std::vector<uint64_t>(staged_.size(), 0));
  for (size_t i = 0; i < staged_.size(); ++i) {
    header.labels.push_back(staged_[i].label);
    header.jpeg_headers.push_back(staged_[i].jpeg_header);
    for (int g = 0; g < options_.num_scan_groups; ++g) {
      header.group_sizes[g][i] = staged_[i].scans[g].size();
    }
  }

  const std::string header_bytes = SerializePcrHeader(&header);
  const std::string file_name = RecordFileName(records_written_);
  const std::string path = dir_ + "/" + file_name;
  PCR_ASSIGN_OR_RETURN(auto file, env_->NewWritableFile(path));
  PCR_RETURN_IF_ERROR(file->Append(header_bytes));
  // Scan groups in quality order, each holding every image's delta.
  for (int g = 0; g < options_.num_scan_groups; ++g) {
    for (const auto& staged : staged_) {
      PCR_RETURN_IF_ERROR(file->Append(staged.scans[g]));
    }
  }
  PCR_RETURN_IF_ERROR(file->Close());

  // Manifest entry with precomputed prefix byte counts so the loader can
  // issue a single partial sequential read per (record, scan group).
  wire::WireWriter entry;
  entry.PutString(kRecFieldPath, file_name);
  entry.PutUint64(kRecFieldNumImages, staged_.size());
  std::vector<uint64_t> prefix_bytes;
  for (int g = 1; g <= options_.num_scan_groups; ++g) {
    prefix_bytes.push_back(header.header_bytes +
                           header.PrefixPayloadBytes(g));
  }
  entry.PutPackedUint64(kRecFieldPrefixBytes, prefix_bytes);
  entry.PutUint64(kRecFieldFileBytes, prefix_bytes.back());
  // Header size lets the reader plan header and scan-group payload as
  // separate scatter-gather segments.
  entry.PutUint64(kRecFieldHeaderBytes, header.header_bytes);
  PCR_RETURN_IF_ERROR(
      db_->Put(RecordKey(records_written_), Slice(entry.buffer())));

  ++records_written_;
  staged_.clear();
  return Status::OK();
}

Status PcrDatasetWriter::Finish() {
  if (finished_) return Status::OK();
  PCR_RETURN_IF_ERROR(FlushRecord());
  wire::WireWriter meta;
  meta.PutUint64(1, records_written_);
  meta.PutUint64(2, images_added_);
  meta.PutUint64(3, options_.num_scan_groups);
  PCR_RETURN_IF_ERROR(db_->Put("meta", Slice(meta.buffer())));
  PCR_RETURN_IF_ERROR(db_->Flush());
  finished_ = true;
  return Status::OK();
}

// ----------------------------------------------------------------- Reader

Result<std::unique_ptr<PcrDataset>> PcrDataset::Open(Env* env,
                                                     const std::string& dir) {
  std::unique_ptr<PcrDataset> ds(new PcrDataset(env, dir));
  PCR_ASSIGN_OR_RETURN(auto db, KvStore::Open(env, dir + "/" + kDbName));

  PCR_ASSIGN_OR_RETURN(std::string meta_bytes, db->Get("meta"));
  int num_records = 0;
  {
    wire::WireReader reader((Slice(meta_bytes)));
    wire::WireField field;
    while (reader.Next(&field)) {
      if (field.field == 1) num_records = static_cast<int>(field.varint);
      if (field.field == 2) ds->num_images_ = static_cast<int>(field.varint);
      if (field.field == 3) ds->num_groups_ = static_cast<int>(field.varint);
    }
    PCR_RETURN_IF_ERROR(reader.status());
  }
  if (num_records <= 0 || ds->num_groups_ <= 0) {
    return Status::Corruption("pcr dataset: bad manifest meta");
  }

  ds->records_.reserve(num_records);
  for (int r = 0; r < num_records; ++r) {
    PCR_ASSIGN_OR_RETURN(std::string entry, db->Get(RecordKey(r)));
    RecordMeta meta;
    wire::WireReader reader((Slice(entry)));
    wire::WireField field;
    while (reader.Next(&field)) {
      switch (field.field) {
        case kRecFieldPath:
          meta.path = ds->dir_ + "/" + field.bytes.ToString();
          break;
        case kRecFieldNumImages:
          meta.num_images = static_cast<int>(field.varint);
          break;
        case kRecFieldPrefixBytes: {
          PCR_ASSIGN_OR_RETURN(
              meta.prefix_bytes,
              wire::WireReader::DecodePackedUint64(field.bytes));
          break;
        }
        case kRecFieldFileBytes:
          meta.file_bytes = field.varint;
          break;
        case kRecFieldHeaderBytes:
          meta.header_bytes = field.varint;
          break;
        default:
          break;
      }
    }
    PCR_RETURN_IF_ERROR(reader.status());
    if (meta.path.empty() ||
        static_cast<int>(meta.prefix_bytes.size()) != ds->num_groups_) {
      return Status::Corruption("pcr dataset: bad record entry");
    }
    ds->records_.push_back(std::move(meta));
  }
  return ds;
}

uint64_t PcrDataset::RecordReadBytes(int record, int scan_group) const {
  PCR_CHECK(record >= 0 && record < num_records());
  scan_group = std::clamp(scan_group, 1, num_groups_);
  return records_[record].prefix_bytes[scan_group - 1];
}

Result<FetchPlan> PcrDataset::PlanFetch(int record, int scan_group,
                                        const FetchResident* resident) const {
  if (record < 0 || record >= num_records()) {
    return Status::OutOfRange("record index out of range");
  }
  scan_group = std::clamp(scan_group, 1, num_groups_);
  const RecordMeta& meta = records_[record];
  const uint64_t want = meta.prefix_bytes[scan_group - 1];
  FetchPlan plan;
  plan.record = record;
  plan.scan_group = scan_group;
  plan.env = env_;

  // An in-memory prefix from an earlier fetch covers the file's first
  // prefix_bytes[g'-1] bytes; only the delta up to the requested group needs
  // I/O. Bytes shorter than the claimed group are ignored defensively.
  uint64_t covered = 0;
  if (resident != nullptr && resident->bytes != nullptr &&
      resident->scan_group >= 1) {
    const int have = std::min(resident->scan_group, num_groups_);
    const uint64_t have_bytes = meta.prefix_bytes[have - 1];
    if (resident->bytes->size() >= have_bytes) {
      covered = std::min(have_bytes, want);
    }
  }
  if (covered > 0) {
    plan.resident_bytes = resident->bytes;
    plan.segments.push_back(FetchSegment{meta.path, 0, covered, true});
    if (covered < want) {
      plan.segments.push_back(
          FetchSegment{meta.path, covered, want - covered, false});
    }
    return plan;
  }

  // Cold read: header and scan-group payload as separate segments. They are
  // adjacent on disk, so a vectored backend still serves them with one op,
  // while the split keeps each range individually skippable/cacheable.
  if (meta.header_bytes > 0 && meta.header_bytes < want) {
    plan.segments.push_back(
        FetchSegment{meta.path, 0, meta.header_bytes, false});
    plan.segments.push_back(FetchSegment{
        meta.path, meta.header_bytes, want - meta.header_bytes, false});
  } else {
    // Manifest predates the header-size field (or the prefix is all
    // header): one sequential read of the prefix.
    plan.segments.push_back(FetchSegment{meta.path, 0, want, false});
  }
  return plan;
}


Result<RecordBatch> PcrDataset::AssembleRecord(RawRecord raw) const {
  PCR_ASSIGN_OR_RETURN(
      PcrRecordContent content,
      AssembleRecordPrefix(Slice(raw.payload), raw.scan_group));
  RecordBatch batch;
  batch.labels = std::move(content.labels);
  batch.spans = std::move(content.spans);
  batch.backing = std::move(content.arena);
  batch.bytes_read = raw.bytes_read;
  return batch;
}

uint64_t PcrDataset::total_bytes() const {
  uint64_t total = 0;
  for (const auto& r : records_) total += r.file_bytes;
  return total;
}

}  // namespace pcr
