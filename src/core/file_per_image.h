// FilePerImageDataset: the PyTorch-ImageFolder-style baseline — one file per
// image. Reads are small and random ("File-per-Image formats have highly
// random read behavior", Figure 1), which is what record layouts and PCRs
// fix.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/record_source.h"
#include "kv/kv_store.h"
#include "storage/env.h"

namespace pcr {

/// Writes one .jpg per image plus a label manifest.
class FilePerImageWriter {
 public:
  static Result<std::unique_ptr<FilePerImageWriter>> Create(
      Env* env, const std::string& dir);

  Status AddImage(Slice jpeg, int64_t label);
  Status Finish();

 private:
  FilePerImageWriter(Env* env, std::string dir)
      : env_(env), dir_(std::move(dir)) {}

  Env* env_;
  std::string dir_;
  std::unique_ptr<KvStore> db_;
  int images_added_ = 0;
  bool finished_ = false;
};

/// Read side. Each "record" is a single image (record == image index).
class FilePerImageDataset : public RecordSource {
 public:
  static Result<std::unique_ptr<FilePerImageDataset>> Open(
      Env* env, const std::string& dir);

  int num_records() const override {
    return static_cast<int>(images_.size());
  }
  int num_images() const override {
    return static_cast<int>(images_.size());
  }
  int num_scan_groups() const override { return 1; }
  uint64_t RecordReadBytes(int record, int scan_group) const override;
  int RecordImages(int) const override { return 1; }
  using RecordSource::PlanFetch;
  Result<FetchPlan> PlanFetch(int record, int scan_group,
                              const FetchResident* resident) const override;
  Result<RecordBatch> AssembleRecord(RawRecord raw) const override;
  std::string format_name() const override { return "file_per_image"; }
  uint64_t total_bytes() const override;

 private:
  struct ImageMeta {
    std::string path;
    int64_t label = 0;
    uint64_t file_bytes = 0;
  };

  FilePerImageDataset(Env* env, std::string dir)
      : env_(env), dir_(std::move(dir)) {}

  Env* env_;
  std::string dir_;
  std::vector<ImageMeta> images_;
};

}  // namespace pcr
