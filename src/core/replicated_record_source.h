// ReplicatedRecordSource: one logical shard served by N identical replicas —
// the availability half of the async read path (ShardedRecordSource is the
// scale-out half; compose them as sharded-over-replicated). Every replica
// holds the same records under the same local numbering, so a fetch planned
// against one replica can be re-driven verbatim against another: PlanFetch
// picks a healthy primary (rotating for load spread) and attaches the other
// replicas' segment layouts as FetchPlan::alternates, the reader fails over
// or hedges against those, and ReportFetchOutcome feeds a per-replica health
// score — consecutive failures eject a replica from planning for a doubling
// backoff window, after which one probe plan tests whether it recovered.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/record_source.h"

namespace pcr {

struct ReplicationOptions {
  /// Alternates attached to each plan (capped by replica count - 1).
  int max_alternates = 2;
  /// Consecutive fetch failures before a replica is ejected from planning.
  int eject_after_failures = 3;
  /// First ejection window; each further ejection doubles it, up to the max.
  double eject_duration_sec = 2.0;
  double max_eject_duration_sec = 60.0;
  /// Time source for ejection windows; null uses RealClock (tests inject the
  /// replicas' virtual clock).
  Clock* clock = nullptr;
};

/// Health snapshot of one replica (tests, tooling, bench reporting).
struct ReplicaHealth {
  int replica = 0;
  int64_t plans = 0;      // Times picked as primary.
  int64_t successes = 0;  // Reported successful fetches.
  int64_t failures = 0;   // Reported failed fetches.
  int consecutive_failures = 0;
  int64_t ejections = 0;  // Times the replica entered ejection.
  int64_t probes = 0;     // Ejection-expired plans that tested recovery.
  bool ejected = false;   // Currently out of planning rotation.
};

class ReplicatedRecordSource : public RecordSource {
 public:
  /// Takes ownership of the replicas. Fails when the list is empty, a
  /// replica is null, or the replicas disagree on record/image/scan-group
  /// counts (they must be byte-layout-identical copies of one shard).
  static Result<std::unique_ptr<ReplicatedRecordSource>> Create(
      std::vector<std::unique_ptr<RecordSource>> replicas,
      ReplicationOptions options = {});

  int num_records() const override { return replicas_[0]->num_records(); }
  int num_images() const override { return replicas_[0]->num_images(); }
  int num_scan_groups() const override {
    return replicas_[0]->num_scan_groups();
  }
  uint64_t RecordReadBytes(int record, int scan_group) const override {
    return replicas_[0]->RecordReadBytes(record, scan_group);
  }
  int RecordImages(int record) const override {
    return replicas_[0]->RecordImages(record);
  }
  using RecordSource::PlanFetch;
  Result<FetchPlan> PlanFetch(int record, int scan_group,
                              const FetchResident* resident) const override;
  Result<RawRecord> CompleteFetch(const FetchPlan& plan,
                                  std::string bytes) const override;
  Result<RecordBatch> AssembleRecord(RawRecord raw) const override;
  void ReportFetchOutcome(const FetchPlan& plan,
                          const Status& status) const override;
  std::string format_name() const override { return format_name_; }
  uint64_t total_bytes() const override { return replicas_[0]->total_bytes(); }

  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  RecordSource* replica(int index) const { return replicas_[index].get(); }
  std::vector<ReplicaHealth> health() const;

 private:
  ReplicatedRecordSource(std::vector<std::unique_ptr<RecordSource>> replicas,
                         ReplicationOptions options);

  struct ReplicaState {
    int64_t plans = 0;
    int64_t successes = 0;
    int64_t failures = 0;
    int consecutive_failures = 0;
    int64_t ejections = 0;
    int64_t probes = 0;
    /// Ejected until this instant; 0 = in rotation.
    int64_t ejected_until_nanos = 0;
    /// Current ejection window (doubles per ejection).
    double eject_window_sec = 0.0;
  };

  /// Picks the primary replica for a plan (rotation over healthy replicas;
  /// an expired ejection turns into a probe; all-ejected falls back to the
  /// least-recently-ejected). Caller holds mu_.
  int PickPrimaryLocked(int64_t now_nanos) const;

  const std::vector<std::unique_ptr<RecordSource>> replicas_;
  const ReplicationOptions options_;
  Clock* const clock_;
  std::string format_name_;

  mutable std::mutex mu_;
  mutable std::vector<ReplicaState> states_;
  mutable uint64_t rotation_ = 0;
};

}  // namespace pcr
