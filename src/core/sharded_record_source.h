// ShardedRecordSource: one logical dataset fanned out over N child
// RecordSources — the storage-side scale-out half of the async read path.
// Each shard keeps its own Env and paths (several disks, several storage
// pools, several simulated devices); the composite presents a single stable
// global record numbering, and every fetch plan routes to the owning
// shard's backend, so the loader pipeline keeps reads in flight against all
// shards at once without knowing the dataset is sharded.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/record_source.h"

namespace pcr {

/// Global record numbering is the concatenation of the shards in
/// construction order: shard 0 owns records [0, n0), shard 1 owns
/// [n0, n0+n1), and so on. The numbering is stable as long as the shard
/// list (order and sizes) is, so samplers, decode-cache keys, and epoch
/// bookkeeping survive re-opens.
class ShardedRecordSource : public RecordSource {
 public:
  /// Takes ownership of the shards. Fails when the list is empty, a shard is
  /// null, or the shards disagree on num_scan_groups (mixing quality ladders
  /// would silently change what a scan-group index means per record).
  static Result<std::unique_ptr<ShardedRecordSource>> Create(
      std::vector<std::unique_ptr<RecordSource>> shards);

  int num_records() const override { return total_records_; }
  int num_images() const override { return total_images_; }
  int num_scan_groups() const override { return num_groups_; }
  uint64_t RecordReadBytes(int record, int scan_group) const override;
  int RecordImages(int record) const override;
  using RecordSource::PlanFetch;
  Result<FetchPlan> PlanFetch(int record, int scan_group,
                              const FetchResident* resident) const override;
  Result<RawRecord> CompleteFetch(const FetchPlan& plan,
                                  std::string bytes) const override;
  Result<RecordBatch> AssembleRecord(RawRecord raw) const override;
  void ReportFetchOutcome(const FetchPlan& plan,
                          const Status& status) const override;
  std::string format_name() const override { return format_name_; }
  uint64_t total_bytes() const override;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// The shard owning global record `record` (for tooling and tests).
  int shard_of(int record) const;
  RecordSource* shard(int index) const { return shards_[index].get(); }

 private:
  explicit ShardedRecordSource(
      std::vector<std::unique_ptr<RecordSource>> shards);

  struct Locator {
    int shard = 0;
    int local = 0;
  };
  Result<Locator> Locate(int record) const;

  std::vector<std::unique_ptr<RecordSource>> shards_;
  /// starts_[s] = first global record of shard s; starts_.back() = total.
  std::vector<int> starts_;
  int total_records_ = 0;
  int total_images_ = 0;
  int num_groups_ = 1;
  std::string format_name_;
};

}  // namespace pcr
