// The Progressive Compressed Record (.pcr) on-disk format.
//
// A PCR packs n images so that *all* deltas (JPEG scans) of the same quality
// level are contiguous (a "scan group"), preceded by the metadata every
// quality level needs (labels + per-image JPEG headers). Reading the byte
// prefix up to scan group g yields every image in the record at quality g
// with one sequential I/O and zero space overhead — the paper's Figure 3:
//
//   [magic|header: labels, per-image JPEG headers, group index]
//   [scan group 1: img0.scan1, img1.scan1, ... imgN.scan1]
//   [scan group 2: img0.scan2, ...]
//   ...
//   [scan group G: ...]
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/slice.h"

namespace pcr {

/// Format magic ("PCR1") and limits.
inline constexpr char kPcrMagic[4] = {'P', 'C', 'R', '1'};
inline constexpr int kMaxScanGroups = 64;

/// Parsed .pcr header.
struct PcrHeader {
  int num_images = 0;
  int num_groups = 0;
  std::vector<int64_t> labels;             // One per image.
  std::vector<std::string> jpeg_headers;   // SOI..SOF bytes, one per image.
  /// group_sizes[g][i]: bytes image i contributes to scan group g.
  std::vector<std::vector<uint64_t>> group_sizes;

  /// Payload offset where scan group g (0-based) starts. Group offsets are
  /// relative to the end of the header.
  uint64_t GroupStart(int g) const;
  /// Payload bytes covering groups [0, g) — i.e. a prefix read up to scan
  /// group g (1-based count of groups to include).
  uint64_t PrefixPayloadBytes(int groups) const;
  /// Total serialized header size (magic + varint + body); filled by
  /// ParsePcrHeader and SerializePcrHeader.
  uint64_t header_bytes = 0;
};

/// Serializes header (magic + length varint + wire body). Returns the bytes
/// and sets header->header_bytes.
std::string SerializePcrHeader(PcrHeader* header);

/// Parses a header from the front of `data` (which may be just a prefix of
/// the record file as long as it covers the header).
Result<PcrHeader> ParsePcrHeader(Slice data);

/// A record materialized at some quality: per-image standalone JPEGs
/// (header + available scans + EOI) plus labels. The streams are spans
/// into one arena buffer (a single allocation per record instead of one
/// per image) so downstream decode can run allocation-free.
struct PcrRecordContent {
  std::vector<int64_t> labels;
  std::vector<ByteSpan> spans;  // One JPEG stream per image, into `arena`.
  std::string arena;
  int scan_groups_included = 0;

  int num_images() const { return static_cast<int>(spans.size()); }
  Slice jpeg(int i) const {
    return Slice(arena.data() + spans[i].offset, spans[i].length);
  }
};

/// Reassembles per-image JPEGs from a prefix of the record file. `file_data`
/// must cover the header plus the payload of the first `groups` scan groups
/// (PrefixPayloadBytes). The per-image streams are terminated with EOI so
/// any JPEG decoder renders them (§3.2 "We terminate the byte stream with an
/// End-of-Image (EOI) JPEG token").
Result<PcrRecordContent> AssembleRecordPrefix(Slice file_data, int groups);

}  // namespace pcr
