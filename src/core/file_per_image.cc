#include "core/file_per_image.h"

#include "util/string_util.h"
#include "wire/wire.h"

namespace pcr {

namespace {
constexpr char kDbName[] = "metadata.kvlog";
std::string ImageKey(int index) { return StrFormat("img/%08d", index); }
}  // namespace

Result<std::unique_ptr<FilePerImageWriter>> FilePerImageWriter::Create(
    Env* env, const std::string& dir) {
  PCR_RETURN_IF_ERROR(env->CreateDir(dir));
  std::unique_ptr<FilePerImageWriter> writer(new FilePerImageWriter(env, dir));
  PCR_ASSIGN_OR_RETURN(writer->db_, KvStore::Open(env, dir + "/" + kDbName));
  return writer;
}

Status FilePerImageWriter::AddImage(Slice jpeg, int64_t label) {
  if (finished_) return Status::FailedPrecondition("writer already finished");
  const std::string file_name = StrFormat("image-%08d.jpg", images_added_);
  PCR_RETURN_IF_ERROR(
      env_->WriteStringToFile(dir_ + "/" + file_name, jpeg));
  wire::WireWriter entry;
  entry.PutString(1, file_name);
  entry.PutSint64(2, label);
  entry.PutUint64(3, jpeg.size());
  PCR_RETURN_IF_ERROR(db_->Put(ImageKey(images_added_), Slice(entry.buffer())));
  ++images_added_;
  return Status::OK();
}

Status FilePerImageWriter::Finish() {
  if (finished_) return Status::OK();
  wire::WireWriter meta;
  meta.PutUint64(1, images_added_);
  PCR_RETURN_IF_ERROR(db_->Put("meta", Slice(meta.buffer())));
  PCR_RETURN_IF_ERROR(db_->Flush());
  finished_ = true;
  return Status::OK();
}

Result<std::unique_ptr<FilePerImageDataset>> FilePerImageDataset::Open(
    Env* env, const std::string& dir) {
  std::unique_ptr<FilePerImageDataset> ds(new FilePerImageDataset(env, dir));
  PCR_ASSIGN_OR_RETURN(auto db, KvStore::Open(env, dir + "/" + kDbName));
  PCR_ASSIGN_OR_RETURN(std::string meta_bytes, db->Get("meta"));
  int num_images = 0;
  {
    wire::WireReader reader((Slice(meta_bytes)));
    wire::WireField field;
    while (reader.Next(&field)) {
      if (field.field == 1) num_images = static_cast<int>(field.varint);
    }
    PCR_RETURN_IF_ERROR(reader.status());
  }
  for (int i = 0; i < num_images; ++i) {
    PCR_ASSIGN_OR_RETURN(std::string entry, db->Get(ImageKey(i)));
    ImageMeta meta;
    wire::WireReader reader((Slice(entry)));
    wire::WireField field;
    while (reader.Next(&field)) {
      if (field.field == 1) meta.path = ds->dir_ + "/" + field.bytes.ToString();
      if (field.field == 2) meta.label = field.AsSint64();
      if (field.field == 3) meta.file_bytes = field.varint;
    }
    PCR_RETURN_IF_ERROR(reader.status());
    ds->images_.push_back(std::move(meta));
  }
  return ds;
}

uint64_t FilePerImageDataset::RecordReadBytes(int record, int) const {
  PCR_CHECK(record >= 0 && record < num_records());
  return images_[record].file_bytes;
}

Result<FetchPlan> FilePerImageDataset::PlanFetch(
    int record, int, const FetchResident* resident) const {
  if (record < 0 || record >= num_records()) {
    return Status::OutOfRange("image index out of range");
  }
  const ImageMeta& meta = images_[record];
  FetchPlan plan;
  plan.record = record;
  plan.scan_group = 1;  // Fixed-quality format.
  plan.env = env_;
  // Resident bytes only help when they cover the whole file — there is no
  // lower fidelity to upgrade from.
  if (resident != nullptr && resident->bytes != nullptr &&
      resident->scan_group >= 1 &&
      resident->bytes->size() >= meta.file_bytes) {
    plan.resident_bytes = resident->bytes;
    plan.segments.push_back(FetchSegment{meta.path, 0, meta.file_bytes, true});
  } else {
    plan.segments.push_back(
        FetchSegment{meta.path, 0, meta.file_bytes, false});
  }
  return plan;
}

Result<RecordBatch> FilePerImageDataset::AssembleRecord(RawRecord raw) const {
  if (raw.record < 0 || raw.record >= num_records()) {
    return Status::OutOfRange("image index out of range");
  }
  RecordBatch batch;
  batch.bytes_read = raw.bytes_read;
  batch.labels.push_back(images_[raw.record].label);
  // Zero copy: the file IS the JPEG.
  batch.spans.push_back(ByteSpan{0, raw.payload.size()});
  batch.backing = std::move(raw.payload);
  return batch;
}

uint64_t FilePerImageDataset::total_bytes() const {
  uint64_t total = 0;
  for (const auto& img : images_) total += img.file_bytes;
  return total;
}

}  // namespace pcr
