#include "core/pcr_format.h"

#include <cstring>

#include "util/logging.h"
#include "wire/wire.h"

namespace pcr {

namespace {
// Wire field numbers for the header message.
constexpr int kFieldNumImages = 1;
constexpr int kFieldNumGroups = 2;
constexpr int kFieldLabels = 3;        // Packed sint64 (zigzag).
constexpr int kFieldJpegHeader = 4;    // Repeated bytes, one per image.
constexpr int kFieldGroupSizes = 5;    // Repeated packed uint64, one per group.
}  // namespace

uint64_t PcrHeader::GroupStart(int g) const {
  PCR_CHECK(g >= 0 && g <= num_groups);
  uint64_t off = 0;
  for (int k = 0; k < g; ++k) {
    for (uint64_t s : group_sizes[k]) off += s;
  }
  return off;
}

uint64_t PcrHeader::PrefixPayloadBytes(int groups) const {
  if (groups > num_groups) groups = num_groups;
  return GroupStart(groups);
}

std::string SerializePcrHeader(PcrHeader* header) {
  wire::WireWriter body;
  body.PutUint64(kFieldNumImages, header->num_images);
  body.PutUint64(kFieldNumGroups, header->num_groups);
  {
    std::vector<uint64_t> zz;
    zz.reserve(header->labels.size());
    for (int64_t l : header->labels) zz.push_back(wire::ZigZagEncode(l));
    body.PutPackedUint64(kFieldLabels, zz);
  }
  for (const auto& h : header->jpeg_headers) {
    body.PutBytes(kFieldJpegHeader, Slice(h));
  }
  for (const auto& sizes : header->group_sizes) {
    body.PutPackedUint64(kFieldGroupSizes, sizes);
  }

  std::string out(kPcrMagic, 4);
  wire::PutVarint(&out, body.size());
  out += body.buffer();
  header->header_bytes = out.size();
  return out;
}

Result<PcrHeader> ParsePcrHeader(Slice data) {
  if (data.size() < 5 || memcmp(data.data(), kPcrMagic, 4) != 0) {
    return Status::InvalidArgument("not a PCR file (bad magic)");
  }
  Slice cursor = data.SubSlice(4, data.size() - 4);
  uint64_t body_len;
  if (!wire::GetVarint(&cursor, &body_len)) {
    return Status::Corruption("pcr header: bad length varint");
  }
  if (body_len > cursor.size()) {
    return Status::Corruption("pcr header: truncated header body");
  }
  const uint64_t header_bytes =
      4 + wire::VarintLength(body_len) + body_len;

  PcrHeader header;
  wire::WireReader reader(cursor.SubSlice(0, body_len));
  wire::WireField field;
  while (reader.Next(&field)) {
    switch (field.field) {
      case kFieldNumImages:
        header.num_images = static_cast<int>(field.varint);
        break;
      case kFieldNumGroups:
        header.num_groups = static_cast<int>(field.varint);
        break;
      case kFieldLabels: {
        PCR_ASSIGN_OR_RETURN(auto packed,
                             wire::WireReader::DecodePackedUint64(field.bytes));
        header.labels.reserve(packed.size());
        for (uint64_t v : packed) {
          header.labels.push_back(wire::ZigZagDecode(v));
        }
        break;
      }
      case kFieldJpegHeader:
        header.jpeg_headers.push_back(field.bytes.ToString());
        break;
      case kFieldGroupSizes: {
        PCR_ASSIGN_OR_RETURN(auto sizes,
                             wire::WireReader::DecodePackedUint64(field.bytes));
        header.group_sizes.push_back(std::move(sizes));
        break;
      }
      default:
        break;  // Unknown fields are skippable (forward compatibility).
    }
  }
  PCR_RETURN_IF_ERROR(reader.status());

  if (header.num_images <= 0 || header.num_groups <= 0 ||
      header.num_groups > kMaxScanGroups) {
    return Status::Corruption("pcr header: bad counts");
  }
  if (static_cast<int>(header.labels.size()) != header.num_images ||
      static_cast<int>(header.jpeg_headers.size()) != header.num_images ||
      static_cast<int>(header.group_sizes.size()) != header.num_groups) {
    return Status::Corruption("pcr header: inconsistent sizes");
  }
  for (const auto& sizes : header.group_sizes) {
    if (static_cast<int>(sizes.size()) != header.num_images) {
      return Status::Corruption("pcr header: group size vector mismatch");
    }
  }
  header.header_bytes = header_bytes;
  return header;
}

Result<PcrRecordContent> AssembleRecordPrefix(Slice file_data, int groups) {
  PCR_ASSIGN_OR_RETURN(PcrHeader header, ParsePcrHeader(file_data));
  if (groups < 1) groups = 1;
  if (groups > header.num_groups) groups = header.num_groups;

  const uint64_t payload_needed = header.PrefixPayloadBytes(groups);
  if (file_data.size() < header.header_bytes + payload_needed) {
    return Status::OutOfRange(
        "pcr prefix too short for requested scan group");
  }
  const Slice payload = file_data.SubSlice(
      header.header_bytes, file_data.size() - header.header_bytes);

  PcrRecordContent content;
  content.labels = header.labels;
  content.scan_groups_included = groups;
  content.spans.resize(header.num_images);

  // Lay out every image's stream (header + scans + EOI) in one arena:
  // a single allocation for the whole record.
  std::vector<uint64_t> image_total(header.num_images, 0);
  for (int g = 0; g < groups; ++g) {
    for (int i = 0; i < header.num_images; ++i) {
      image_total[i] += header.group_sizes[g][i];
    }
  }
  size_t arena_bytes = 0;
  for (int i = 0; i < header.num_images; ++i) {
    content.spans[i].offset = arena_bytes;
    content.spans[i].length = header.jpeg_headers[i].size() +
                              static_cast<size_t>(image_total[i]) + 2;
    arena_bytes += content.spans[i].length;
  }
  content.arena.resize(arena_bytes);
  char* arena = content.arena.data();

  // Per-image write cursors: start each stream with its JPEG header.
  std::vector<size_t> cursor(header.num_images);
  for (int i = 0; i < header.num_images; ++i) {
    cursor[i] = content.spans[i].offset;
    const std::string& jh = header.jpeg_headers[i];
    std::memcpy(arena + cursor[i], jh.data(), jh.size());
    cursor[i] += jh.size();
  }

  // Ungroup: walk each group sequentially, appending each image's delta.
  uint64_t offset = 0;
  for (int g = 0; g < groups; ++g) {
    for (int i = 0; i < header.num_images; ++i) {
      const uint64_t size = header.group_sizes[g][i];
      std::memcpy(arena + cursor[i], payload.data() + offset,
                  static_cast<size_t>(size));
      cursor[i] += static_cast<size_t>(size);
      offset += size;
    }
  }
  for (int i = 0; i < header.num_images; ++i) {
    arena[cursor[i]] = static_cast<char>(0xff);
    arena[cursor[i] + 1] = static_cast<char>(0xd9);  // EOI.
  }
  return content;
}

}  // namespace pcr
