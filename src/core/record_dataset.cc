#include "core/record_dataset.h"

#include "util/string_util.h"
#include "wire/wire.h"

namespace pcr {

namespace {
constexpr char kDbName[] = "metadata.kvlog";
constexpr int kEntryFieldLabel = 1;
constexpr int kEntryFieldJpeg = 2;

constexpr int kRecFieldPath = 1;
constexpr int kRecFieldNumImages = 2;
constexpr int kRecFieldFileBytes = 3;

std::string RecordKey(int index) { return StrFormat("rec/%08d", index); }
}  // namespace

Result<std::unique_ptr<RecordDatasetWriter>> RecordDatasetWriter::Create(
    Env* env, const std::string& dir, const RecordWriterOptions& options) {
  if (options.images_per_record < 1) {
    return Status::InvalidArgument("images_per_record must be >= 1");
  }
  PCR_RETURN_IF_ERROR(env->CreateDir(dir));
  std::unique_ptr<RecordDatasetWriter> writer(
      new RecordDatasetWriter(env, dir, options));
  PCR_ASSIGN_OR_RETURN(writer->db_, KvStore::Open(env, dir + "/" + kDbName));
  return writer;
}

Status RecordDatasetWriter::AddImage(Slice jpeg, int64_t label) {
  if (finished_) return Status::FailedPrecondition("writer already finished");
  wire::WireWriter entry;
  entry.PutSint64(kEntryFieldLabel, label);
  entry.PutBytes(kEntryFieldJpeg, jpeg);
  wire::PutVarint(&staged_, entry.size());
  staged_ += entry.buffer();
  ++staged_count_;
  ++images_added_;
  if (staged_count_ >= options_.images_per_record) return FlushRecord();
  return Status::OK();
}

Status RecordDatasetWriter::FlushRecord() {
  if (staged_count_ == 0) return Status::OK();
  const std::string file_name = StrFormat("record-%06d.rec", records_written_);
  const std::string path = dir_ + "/" + file_name;
  PCR_RETURN_IF_ERROR(env_->WriteStringToFile(path, Slice(staged_)));

  wire::WireWriter entry;
  entry.PutString(kRecFieldPath, file_name);
  entry.PutUint64(kRecFieldNumImages, staged_count_);
  entry.PutUint64(kRecFieldFileBytes, staged_.size());
  PCR_RETURN_IF_ERROR(
      db_->Put(RecordKey(records_written_), Slice(entry.buffer())));

  ++records_written_;
  staged_.clear();
  staged_count_ = 0;
  return Status::OK();
}

Status RecordDatasetWriter::Finish() {
  if (finished_) return Status::OK();
  PCR_RETURN_IF_ERROR(FlushRecord());
  wire::WireWriter meta;
  meta.PutUint64(1, records_written_);
  meta.PutUint64(2, images_added_);
  PCR_RETURN_IF_ERROR(db_->Put("meta", Slice(meta.buffer())));
  PCR_RETURN_IF_ERROR(db_->Flush());
  finished_ = true;
  return Status::OK();
}

Result<std::unique_ptr<RecordDataset>> RecordDataset::Open(
    Env* env, const std::string& dir) {
  std::unique_ptr<RecordDataset> ds(new RecordDataset(env, dir));
  PCR_ASSIGN_OR_RETURN(auto db, KvStore::Open(env, dir + "/" + kDbName));
  PCR_ASSIGN_OR_RETURN(std::string meta_bytes, db->Get("meta"));
  int num_records = 0;
  {
    wire::WireReader reader((Slice(meta_bytes)));
    wire::WireField field;
    while (reader.Next(&field)) {
      if (field.field == 1) num_records = static_cast<int>(field.varint);
      if (field.field == 2) ds->num_images_ = static_cast<int>(field.varint);
    }
    PCR_RETURN_IF_ERROR(reader.status());
  }
  for (int r = 0; r < num_records; ++r) {
    PCR_ASSIGN_OR_RETURN(std::string entry, db->Get(RecordKey(r)));
    RecordMeta meta;
    wire::WireReader reader((Slice(entry)));
    wire::WireField field;
    while (reader.Next(&field)) {
      if (field.field == kRecFieldPath) {
        meta.path = ds->dir_ + "/" + field.bytes.ToString();
      }
      if (field.field == kRecFieldNumImages) {
        meta.num_images = static_cast<int>(field.varint);
      }
      if (field.field == kRecFieldFileBytes) meta.file_bytes = field.varint;
    }
    PCR_RETURN_IF_ERROR(reader.status());
    ds->records_.push_back(std::move(meta));
  }
  return ds;
}

uint64_t RecordDataset::RecordReadBytes(int record, int) const {
  PCR_CHECK(record >= 0 && record < num_records());
  return records_[record].file_bytes;  // Always full quality.
}

Result<FetchPlan> RecordDataset::PlanFetch(
    int record, int, const FetchResident* resident) const {
  if (record < 0 || record >= num_records()) {
    return Status::OutOfRange("record index out of range");
  }
  const RecordMeta& meta = records_[record];
  FetchPlan plan;
  plan.record = record;
  plan.scan_group = 1;  // Fixed-quality format.
  plan.env = env_;
  // Resident bytes only help when they cover the whole record — there is no
  // lower fidelity to upgrade from.
  if (resident != nullptr && resident->bytes != nullptr &&
      resident->scan_group >= 1 &&
      resident->bytes->size() >= meta.file_bytes) {
    plan.resident_bytes = resident->bytes;
    plan.segments.push_back(FetchSegment{meta.path, 0, meta.file_bytes, true});
  } else {
    plan.segments.push_back(
        FetchSegment{meta.path, 0, meta.file_bytes, false});
  }
  return plan;
}

Result<RecordBatch> RecordDataset::AssembleRecord(RawRecord raw) const {
  RecordBatch batch;
  batch.bytes_read = raw.bytes_read;
  const char* base = raw.payload.data();
  Slice cursor(raw.payload);
  while (!cursor.empty()) {
    uint64_t len;
    if (!wire::GetVarint(&cursor, &len) || len > cursor.size()) {
      return Status::Corruption("record entry framing");
    }
    wire::WireReader reader(cursor.SubSlice(0, len));
    wire::WireField field;
    int64_t label = 0;
    ByteSpan jpeg;
    while (reader.Next(&field)) {
      if (field.field == kEntryFieldLabel) label = field.AsSint64();
      if (field.field == kEntryFieldJpeg) {
        // Zero copy: the embedded stream is already standalone; record
        // where it sits inside the fetched payload.
        jpeg.offset = static_cast<size_t>(field.bytes.data() - base);
        jpeg.length = field.bytes.size();
      }
    }
    PCR_RETURN_IF_ERROR(reader.status());
    batch.labels.push_back(label);
    batch.spans.push_back(jpeg);
    cursor.RemovePrefix(len);
  }
  batch.backing = std::move(raw.payload);
  return batch;
}

uint64_t RecordDataset::total_bytes() const {
  uint64_t total = 0;
  for (const auto& r : records_) total += r.file_bytes;
  return total;
}

}  // namespace pcr
