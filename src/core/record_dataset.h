// RecordDataset: the TFRecord / MXNet-ImageRecord-style baseline format —
// batched records of fixed-quality JPEGs. Sequential and fast, but every
// read fetches full-quality bytes, and serving multiple qualities requires
// duplicating the dataset (exactly the cost PCRs remove).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/record_source.h"
#include "kv/kv_store.h"
#include "storage/env.h"

namespace pcr {

struct RecordWriterOptions {
  int images_per_record = 128;
};

/// Writes records of [entry][entry]... where each entry is a wire message
/// {1: label (sint), 2: jpeg bytes}.
class RecordDatasetWriter {
 public:
  static Result<std::unique_ptr<RecordDatasetWriter>> Create(
      Env* env, const std::string& dir, const RecordWriterOptions& options);

  Status AddImage(Slice jpeg, int64_t label);
  Status Finish();

  int records_written() const { return records_written_; }

 private:
  RecordDatasetWriter(Env* env, std::string dir, RecordWriterOptions options)
      : env_(env), dir_(std::move(dir)), options_(options) {}

  Status FlushRecord();

  Env* env_;
  std::string dir_;
  RecordWriterOptions options_;
  std::unique_ptr<KvStore> db_;
  std::string staged_;
  int staged_count_ = 0;
  int images_added_ = 0;
  int records_written_ = 0;
  bool finished_ = false;
};

class RecordDataset : public RecordSource {
 public:
  static Result<std::unique_ptr<RecordDataset>> Open(Env* env,
                                                     const std::string& dir);

  int num_records() const override {
    return static_cast<int>(records_.size());
  }
  int num_images() const override { return num_images_; }
  int num_scan_groups() const override { return 1; }
  uint64_t RecordReadBytes(int record, int scan_group) const override;
  int RecordImages(int record) const override {
    return records_[record].num_images;
  }
  using RecordSource::PlanFetch;
  Result<FetchPlan> PlanFetch(int record, int scan_group,
                              const FetchResident* resident) const override;
  Result<RecordBatch> AssembleRecord(RawRecord raw) const override;
  std::string format_name() const override { return "record"; }
  uint64_t total_bytes() const override;

 private:
  struct RecordMeta {
    std::string path;
    int num_images = 0;
    uint64_t file_bytes = 0;
  };

  RecordDataset(Env* env, std::string dir)
      : env_(env), dir_(std::move(dir)) {}

  Env* env_;
  std::string dir_;
  std::vector<RecordMeta> records_;
  int num_images_ = 0;
};

}  // namespace pcr
