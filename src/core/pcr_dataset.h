// PCR dataset writer and reader. A dataset is a directory holding a KvStore
// metadata database ("a database for PCR metadata") plus one .pcr file per
// record ("at least one .pcr file").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/pcr_format.h"
#include "core/record_source.h"
#include "kv/kv_store.h"
#include "storage/env.h"
#include "util/result.h"

namespace pcr {

/// Encoder options.
struct PcrWriterOptions {
  int images_per_record = 128;
  /// Scan groups per record; images whose JPEG has more scans get the
  /// surplus merged into the last group, fewer get empty groups.
  int num_scan_groups = 10;
  /// Transcode baseline JPEG inputs to progressive (lossless). When false,
  /// inputs must already be progressive.
  bool transcode_to_progressive = true;
};

/// Streams (jpeg, label) pairs into .pcr record files + metadata DB.
///
///   auto writer = PcrDatasetWriter::Create(env, "/data/train", {}).
///   for (...) writer->AddImage(jpeg_bytes, label);
///   writer->Finish();
class PcrDatasetWriter {
 public:
  static Result<std::unique_ptr<PcrDatasetWriter>> Create(
      Env* env, const std::string& dir, const PcrWriterOptions& options);

  /// Adds one image. `jpeg` may be baseline (transcoded internally, like the
  /// paper's JPEGTRAN step) or already progressive.
  Status AddImage(Slice jpeg, int64_t label);

  /// Flushes the trailing partial record and commits the metadata DB.
  Status Finish();

  int images_added() const { return images_added_; }
  int records_written() const { return records_written_; }

 private:
  PcrDatasetWriter(Env* env, std::string dir, PcrWriterOptions options);

  Status FlushRecord();

  Env* env_;
  std::string dir_;
  PcrWriterOptions options_;
  std::unique_ptr<KvStore> db_;

  // Staged images for the record being built.
  struct StagedImage {
    int64_t label = 0;
    std::string jpeg_header;
    std::vector<std::string> scans;  // One per scan group.
  };
  std::vector<StagedImage> staged_;
  int images_added_ = 0;
  int records_written_ = 0;
  bool finished_ = false;
};

/// Read side: opens the metadata DB once, then serves partial record reads.
class PcrDataset : public RecordSource {
 public:
  static Result<std::unique_ptr<PcrDataset>> Open(Env* env,
                                                  const std::string& dir);

  int num_records() const override {
    return static_cast<int>(records_.size());
  }
  int num_images() const override { return num_images_; }
  int num_scan_groups() const override { return num_groups_; }
  uint64_t RecordReadBytes(int record, int scan_group) const override;
  int RecordImages(int record) const override {
    return records_[record].num_images;
  }
  using RecordSource::PlanFetch;
  Result<FetchPlan> PlanFetch(int record, int scan_group,
                              const FetchResident* resident) const override;
  Result<RecordBatch> AssembleRecord(RawRecord raw) const override;
  std::string format_name() const override { return "pcr"; }
  uint64_t total_bytes() const override;

  /// Per-record path (for tooling).
  const std::string& record_path(int record) const {
    return records_[record].path;
  }

 private:
  struct RecordMeta {
    std::string path;
    int num_images = 0;
    /// prefix_bytes[g-1]: file bytes to read for scan groups [1..g].
    std::vector<uint64_t> prefix_bytes;
    uint64_t file_bytes = 0;
    /// Serialized PcrHeader size; 0 when the manifest predates the field,
    /// in which case plans fall back to one header+payload segment.
    uint64_t header_bytes = 0;
  };

  PcrDataset(Env* env, std::string dir) : env_(env), dir_(std::move(dir)) {}

  Env* env_;
  std::string dir_;
  std::vector<RecordMeta> records_;
  int num_images_ = 0;
  int num_groups_ = 0;
};

}  // namespace pcr
