#include "storage/io_retry.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace pcr {

bool IsTransientIoError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIOError:
    case StatusCode::kResourceExhausted:
    case StatusCode::kUnknown:
      return true;
    default:
      return false;
  }
}

double RetryPolicy::BackoffSec(int failures) const {
  const double backoff =
      initial_backoff_sec * std::pow(backoff_multiplier,
                                     std::max(0, failures - 1));
  return std::min(backoff, max_backoff_sec);
}

namespace {

class RetryingIoScheduler : public IoScheduler {
 public:
  RetryingIoScheduler(std::unique_ptr<IoScheduler> inner, RetryPolicy policy,
                      Clock* clock)
      : inner_(std::move(inner)), policy_(policy), clock_(clock) {
    PCR_CHECK(clock != nullptr);
  }

  Status SubmitRead(ReadRequest request) override {
    // The request is remembered until its final completion so a transient
    // failure can be re-driven verbatim.
    Tracked& tracked = tracked_[request.user_data];
    tracked.request = request;
    tracked.failures = 0;
    const Status submitted = inner_->SubmitRead(std::move(request));
    if (!submitted.ok()) tracked_.erase(tracked.request.user_data);
    return submitted;
  }

  Result<ReadCompletion> WaitCompletion() override {
    if (in_flight() == 0) {
      return Status::FailedPrecondition("no reads in flight");
    }
    for (;;) {
      PCR_ASSIGN_OR_RETURN(std::optional<ReadCompletion> completion,
                           WaitCompletionFor(kSliceNanos));
      if (completion.has_value()) return std::move(*completion);
    }
  }

  Result<std::optional<ReadCompletion>> WaitCompletionFor(
      int64_t timeout_nanos) override {
    if (in_flight() == 0) {
      return Status::FailedPrecondition("no reads in flight");
    }
    const int64_t deadline = clock_->NowNanos() + timeout_nanos;
    for (;;) {
      PCR_RETURN_IF_ERROR(ResubmitDue());
      if (!ready_.empty()) {
        ReadCompletion completion = std::move(ready_.front());
        ready_.pop_front();
        return std::optional<ReadCompletion>(std::move(completion));
      }
      const int64_t now = clock_->NowNanos();
      if (now >= deadline) return std::optional<ReadCompletion>(std::nullopt);
      int64_t wait = deadline - now;
      for (const PendingRetry& retry : retries_) {
        wait = std::min(wait, std::max<int64_t>(retry.ready_nanos - now, 0));
      }
      if (inner_->in_flight() > 0) {
        PCR_ASSIGN_OR_RETURN(
            std::optional<ReadCompletion> completion,
            inner_->WaitCompletionFor(std::max<int64_t>(wait, 1)));
        if (completion.has_value()) Classify(std::move(*completion));
      } else if (!retries_.empty()) {
        // Nothing in the backend; the only pending work is backoff timers.
        clock_->SleepNanos(std::max<int64_t>(wait, 1));
      } else {
        return Status::FailedPrecondition("no reads in flight");
      }
    }
  }

  std::optional<ReadCompletion> PollCompletion() override {
    // Backoffs that came due are re-driven before the backend is drained so
    // a poll-only caller still makes retry progress.
    Status resubmitted = ResubmitDue();
    PCR_CHECK(resubmitted.ok()) << resubmitted;
    while (std::optional<ReadCompletion> completion =
               inner_->PollCompletion()) {
      Classify(std::move(*completion));
      if (!ready_.empty()) break;
    }
    if (ready_.empty()) return std::nullopt;
    ReadCompletion completion = std::move(ready_.front());
    ready_.pop_front();
    return completion;
  }

  int in_flight() const override {
    return inner_->in_flight() + static_cast<int>(retries_.size()) +
           static_cast<int>(ready_.size());
  }

  const char* backend_name() const override { return inner_->backend_name(); }

  IoSchedulerStats stats() const override {
    IoSchedulerStats stats = inner_->stats();
    stats.retries += retries_done_;
    return stats;
  }

 private:
  struct Tracked {
    ReadRequest request;
    int failures = 0;
  };
  struct PendingRetry {
    int64_t ready_nanos;
    uint64_t user_data;
  };

  static constexpr int64_t kSliceNanos = 100'000'000;  // 100ms

  /// Routes an inner completion: transient failure with attempts left →
  /// schedule a backoff resubmission; anything else → deliverable.
  void Classify(ReadCompletion completion) {
    auto it = tracked_.find(completion.user_data);
    if (it != tracked_.end() && !completion.status.ok() &&
        IsTransientIoError(completion.status) &&
        it->second.failures + 1 < policy_.max_attempts) {
      const int failures = ++it->second.failures;
      ++retries_done_;
      retries_.push_back(
          {clock_->NowNanos() + SecondsToNanos(policy_.BackoffSec(failures)),
           completion.user_data});
      return;
    }
    if (it != tracked_.end()) tracked_.erase(it);
    ready_.push_back(std::move(completion));
  }

  /// Resubmits every retry whose backoff expired.
  Status ResubmitDue() {
    const int64_t now = clock_->NowNanos();
    for (size_t i = 0; i < retries_.size();) {
      if (retries_[i].ready_nanos > now) {
        ++i;
        continue;
      }
      const uint64_t user_data = retries_[i].user_data;
      retries_.erase(retries_.begin() + static_cast<ptrdiff_t>(i));
      auto it = tracked_.find(user_data);
      PCR_CHECK(it != tracked_.end());
      ReadRequest request = it->second.request;  // Copy; may retry again.
      const Status submitted = inner_->SubmitRead(std::move(request));
      if (!submitted.ok()) {
        // The backend refused the resubmission (full, shut down): surface
        // the failure as this request's completion rather than losing it.
        ReadCompletion completion;
        completion.user_data = user_data;
        completion.status = submitted;
        tracked_.erase(it);
        ready_.push_back(std::move(completion));
      }
    }
    return Status::OK();
  }

  const std::unique_ptr<IoScheduler> inner_;
  const RetryPolicy policy_;
  Clock* const clock_;

  std::map<uint64_t, Tracked> tracked_;
  std::vector<PendingRetry> retries_;
  std::deque<ReadCompletion> ready_;
  int64_t retries_done_ = 0;
};

}  // namespace

std::unique_ptr<IoScheduler> NewRetryingIoScheduler(
    std::unique_ptr<IoScheduler> inner, RetryPolicy policy, Clock* clock) {
  PCR_CHECK(inner != nullptr);
  if (policy.max_attempts <= 1) return inner;
  return std::make_unique<RetryingIoScheduler>(std::move(inner), policy,
                                               clock);
}

}  // namespace pcr
