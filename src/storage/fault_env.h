// FaultInjectionEnv: a deterministic fault-injecting wrapper around any Env.
// Degraded-mode behaviour — transient I/O errors, missing replicas, short
// reads, stalls — is driven by a seeded schedule of FaultRules evaluated in
// read-issue order, so a failure scenario replays bit-identically across
// runs: unit tests assert exact failure counts, and benches measure failover
// and hedging against the same fault sequence every repetition. Works over
// PosixEnv and SimEnv, on both the synchronous RandomAccessFile path and the
// submission/completion IoScheduler path.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "storage/env.h"

namespace pcr {

/// One entry of a fault schedule. Every read (each RandomAccessFile::Read,
/// each SubmitRead) whose path contains `path_substring` advances the rule's
/// match counter; the rule triggers per its schedule fields, and the first
/// triggering rule (in the order given) decides the read's fault. With a
/// fixed seed and read order the whole schedule is deterministic.
struct FaultRule {
  std::string path_substring;  // Empty matches every path.

  /// \name Trigger schedule (over this rule's 1-based match counter).
  /// Zero disables a field; the rule triggers when any enabled field fires.
  /// @{
  int64_t fail_nth = 0;       // Exactly the Nth matching read.
  int64_t fail_every_n = 0;   // Every Nth matching read (N, 2N, 3N, ...).
  int64_t fail_first_n = 0;   // Each of the first N matching reads.
  double probability = 0.0;   // Seeded Bernoulli draw per matching read.
  int64_t max_triggers = -1;  // Cap on total triggers; -1 = unlimited.
  /// @}

  /// \name Effect when triggered.
  /// An error (`code`, unless kOk), a truncated delivery (`short_read`), a
  /// stall (`added_latency_sec`), or combinations: latency applies before
  /// the error/truncation; a latency-only rule sets code = kOk. A stall
  /// charges the wrapped Env's clock, so SimEnv schedules stay virtual.
  /// @{
  StatusCode code = StatusCode::kIOError;
  bool short_read = false;
  uint64_t short_read_bytes = 0;  // Bytes a short read delivers.
  double added_latency_sec = 0.0;
  /// @}
};

struct FaultStats {
  int64_t reads_seen = 0;   // Reads that consulted the schedule.
  int64_t errors = 0;       // Reads failed with an injected error.
  int64_t short_reads = 0;  // Reads delivered truncated.
  int64_t stalls = 0;       // Reads delayed by added latency.
};

/// Env wrapper injecting the schedule on every read path. Metadata
/// operations (FileExists, GetFileSize, ListDir, ...) and writes pass
/// through unfaulted. Not owning: `base` must outlive the wrapper.
class FaultInjectionEnv : public Env {
 public:
  FaultInjectionEnv(Env* base, std::vector<FaultRule> rules,
                    uint64_t seed = 42);

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  std::unique_ptr<IoScheduler> NewIoScheduler(
      const IoSchedulerOptions& options) override;
  Clock* clock() override { return base_->clock(); }

  Env* base() { return base_; }
  FaultStats fault_stats() const;
  /// Restarts every rule's counters and the probability stream (same seed):
  /// the next read sees the schedule from the beginning.
  void ResetSchedule();

  /// The fault decided for one read. Internal to the wrapper's file and
  /// scheduler shims, public so they can live outside the class.
  struct Decision {
    Status status;            // Non-OK: the read fails with this.
    bool short_read = false;  // The read delivers only short_bytes.
    uint64_t short_bytes = 0;
    int64_t stall_nanos = 0;  // Delay before delivery.
  };

  /// Consults the schedule for a read of `path` (advancing counters).
  Decision Evaluate(const std::string& path);

 private:
  Env* const base_;
  const std::vector<FaultRule> rules_;
  const uint64_t seed_;

  mutable std::mutex mu_;
  std::vector<int64_t> matches_;   // Per-rule match counters.
  std::vector<int64_t> triggers_;  // Per-rule trigger counters.
  std::mt19937_64 rng_;
  FaultStats stats_;
};

}  // namespace pcr
