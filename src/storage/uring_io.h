// Raw-syscall io_uring read scheduler. The container toolchain has no
// liburing, so the ring is driven directly: io_uring_setup/enter/register
// via syscall(2) against <linux/io_uring.h>, with the SQ/CQ rings mmap'd and
// ordered through acquire/release atomics. Compiled out (probe returns
// false, factory returns nullptr) on non-Linux hosts or when the uapi
// header is missing, and PosixEnv falls back to the pread-thread backend.
#pragma once

#include <memory>

#include "storage/env.h"

namespace pcr {

class FdCache;

/// True when this build carries the uring scheduler and the running kernel
/// accepts io_uring_setup (one probe per process, cached).
bool UringProbe();

/// A uring scheduler over `fds`, or nullptr when ring setup fails at
/// runtime (callers fall back to the pread backend). Reads honor the full
/// IoScheduler contract: batched submission (`options.submit_batch` SQEs per
/// io_uring_enter), registered files sourced from the fd cache, optional
/// registered buffers (`options.fixed_buffer_bytes`), and one vectored SQE
/// per contiguous run of request segments.
std::unique_ptr<IoScheduler> NewUringIoScheduler(
    FdCache* fds, const IoSchedulerOptions& options);

}  // namespace pcr
