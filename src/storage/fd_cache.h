// FdCache: an LRU of open read-only file descriptors keyed by path. The
// loader's access pattern re-reads a small set of record files over and over
// (every epoch touches every record, partial scan-group reads touch the same
// prefix), so opening the file anew per fetch pays a path-resolution +
// open/close syscall pair per read. The cache hands out shared descriptors:
// repeated reads of the same file reuse one fd, and pread keeps the handle
// positionless so any number of threads read through it concurrently.
//
// Eviction drops the cache's reference only — descriptors stay open while
// any handed-out handle is alive, so a reader holding an evicted fd is never
// invalidated mid-read. Writers must call Invalidate(path) when they
// replace, delete, or rename a file so later opens see the new inode.
#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/result.h"

namespace pcr {

/// A shared open descriptor; closes on destruction of the last reference.
class SharedFd {
 public:
  explicit SharedFd(int fd) : fd_(fd) {}
  ~SharedFd();

  SharedFd(const SharedFd&) = delete;
  SharedFd& operator=(const SharedFd&) = delete;

  int fd() const { return fd_; }

 private:
  int fd_;
};

using SharedFdHandle = std::shared_ptr<const SharedFd>;

struct FdCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;       // Opens performed (cache could not serve).
  int64_t evictions = 0;    // LRU capacity evictions.
  int64_t invalidations = 0;
  int64_t open_fds = 0;     // Descriptors the cache currently references.
};

/// Thread-safe. One instance per PosixEnv.
class FdCache {
 public:
  explicit FdCache(size_t capacity) : capacity_(capacity) {}

  /// Drains under the lock: destruction (e.g. a static PosixEnv at process
  /// exit) must synchronize with the last cache access of any detached
  /// scheduler drain thread still parked in a blocking syscall — those
  /// threads take mu_ for every lookup, so an unlocked teardown would race
  /// their final reads.
  ~FdCache() {
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    index_.clear();
  }

  /// Returns a shared descriptor for `path`, opening and caching it on miss.
  Result<SharedFdHandle> Open(const std::string& path);

  /// Drops the cached descriptor for `path` (if any). Handles already handed
  /// out stay valid; the next Open re-opens the path.
  void Invalidate(const std::string& path);

  /// Drops every cached descriptor.
  void Clear();

  FdCacheStats stats() const;

 private:
  using LruList = std::list<std::pair<std::string, SharedFdHandle>>;

  const size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  // Front = most recently used.
  std::unordered_map<std::string, LruList::iterator> index_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t invalidations_ = 0;
};

}  // namespace pcr
