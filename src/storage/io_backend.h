// I/O backend dispatch: resolves which read backend (sync, pread threads,
// io_uring) serves PosixEnv's IoSchedulers, mirroring the kernel-ISA
// dispatch in src/arch/ — a PCR_FORCE_IO env override, a runtime support
// probe, and a cached process-wide decision with a warning when a forced
// backend is unavailable.
#pragma once

#include <string>

#include "storage/env.h"

namespace pcr {

/// Stable name for a backend ("auto", "sync", "threads", "uring").
const char* IoBackendName(IoBackend backend);

/// Parses "sync"/"threads"/"uring" (the PCR_FORCE_IO vocabulary). Returns
/// false (and leaves *out alone) for anything else, including "auto".
bool ParseIoBackend(const char* s, IoBackend* out);

/// True when this build carries the uring scheduler and the running kernel
/// accepts io_uring_setup (probed once per process, cached; EPERM from
/// /proc/sys/kernel/io_uring_disabled counts as unsupported).
bool UringIoSupported();

/// Pure resolution: applies a PCR_FORCE_IO-style string to pick a concrete
/// backend (never kAuto). Empty/null `force` means auto: uring when
/// `uring_supported`, else threads. Forcing uring without support falls back
/// to threads with a warning; unknown strings warn and take the auto choice.
IoBackend ResolveIoBackend(const char* force, bool uring_supported,
                           std::string* warning);

/// The backend kAuto resolves to: getenv("PCR_FORCE_IO") + the support
/// probe, decided once per process (the first call logs any warning).
IoBackend ActiveIoBackend();

/// Drops the cached ActiveIoBackend decision so tests can vary PCR_FORCE_IO.
void ResetIoBackendForTest();

}  // namespace pcr
