// SimDevice: a virtual-clock storage device model with bandwidth, seek
// latency, and IOPS limits. Used by SimEnv to reproduce the paper's
// bandwidth-bound behaviour (Appendix A.2): the time to read s bytes is
//   t = seek (if not sequential) + s / bandwidth,
// which is exactly the cost model of Lemma A.1.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/logging.h"

namespace pcr {

/// Static description of a device. Presets mirror the paper's hardware.
struct DeviceProfile {
  std::string name = "device";
  double read_bandwidth_bytes_per_sec = 400.0 * (1 << 20);
  double write_bandwidth_bytes_per_sec = 400.0 * (1 << 20);
  /// Charged whenever an access is not sequential with the previous one.
  double seek_latency_sec = 0.0;
  /// Charged on every operation (request setup, network round trip, ...).
  double per_op_latency_sec = 0.0;

  /// 7200RPM HDD (the paper's Seagate ST4000NM0023): ~180 MiB/s sequential,
  /// ~8.5 ms average seek.
  static DeviceProfile Hdd7200();
  /// SATA SSD, ~400 MiB/s as in the paper's reader microbenchmark (§A.5).
  static DeviceProfile SataSsd();
  /// Aggregate bandwidth of the paper's 5-OSD Ceph pool over 40GbE:
  /// "400+ MiB/s of storage bandwidth", with a network round-trip per op.
  static DeviceProfile CephCluster();
  /// Local RAM (effectively infinite bandwidth; used as the compute-bound
  /// reference point "from RAM" in Figure 9).
  static DeviceProfile Ram();
};

/// One time-phased modifier of a device's behaviour. A phase is active for
/// [start_sec, start_sec + duration_sec) measured from the moment the
/// schedule was installed (SetSchedule). Phased slowdowns and outages make
/// stragglers and replica failures reproducible on the device clock: a
/// brownout is a phase with bandwidth_factor 0.1, a crash window is a phase
/// with fail_reads.
struct DevicePhase {
  double start_sec = 0.0;
  double duration_sec = 0.0;      // <= 0 means open-ended.
  double bandwidth_factor = 1.0;  // Scales read bandwidth while active.
  bool fail_reads = false;        // Reads issued while active fail (IOError).
};

/// Accounting counters for a device.
struct DeviceStats {
  int64_t read_ops = 0;
  int64_t write_ops = 0;
  int64_t seeks = 0;
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  /// Reads denied by an active fail_reads phase.
  int64_t failed_reads = 0;
  double busy_seconds = 0.0;
};

/// Charges I/O time against a clock. Thread-safe: accounting is mutexed so
/// the wall-clock loader pipeline's I/O workers may share one device (the
/// clock itself must then be a RealClock — VirtualClock stays
/// single-threaded by design).
class SimDevice {
 public:
  SimDevice(DeviceProfile profile, Clock* clock)
      : profile_(std::move(profile)), clock_(clock) {
    PCR_CHECK(clock != nullptr);
  }

  /// Charges the cost of reading `bytes` at `offset` of stream `stream_id`
  /// (e.g. a file id). Sequential continuation skips the seek. Returns the
  /// charged seconds.
  double ChargeRead(uint64_t stream_id, uint64_t offset, uint64_t bytes);

  /// Charges an append of `bytes` (always sequential).
  double ChargeWrite(uint64_t bytes);

  /// Admits one overlapped (submission/completion) read of `bytes` and
  /// returns its absolute completion time in nanos, WITHOUT advancing the
  /// clock — the waiting scheduler sleeps to the completion it pops.
  ///
  /// The queue-depth model: each request pays a fixed phase (seek + per-op
  /// setup) that overlaps with other in-flight requests' transfers, while
  /// the transfers themselves serialize on the shared medium at full read
  /// bandwidth. At depth 1 (submit, wait, submit, ...) this reduces exactly
  /// to the blocking cost `fixed + bytes/bandwidth`; at depth K the fixed
  /// phases hide behind transfers and throughput climbs to the bandwidth
  /// ceiling. Overlapped reads are modeled as random access (the loader
  /// fetches shuffled records), so the seek is charged on every request.
  int64_t SubmitOverlappedRead(uint64_t bytes);

  /// Installs a speed/failure schedule whose phase times are relative to
  /// `now` on the device clock (replacing any previous schedule). When
  /// several phases are active at once, the last one listed wins.
  void SetSchedule(std::vector<DevicePhase> phases);

  /// True when a read issued now lands in a fail_reads phase. Callers (the
  /// sim scheduler, sim files) consult this at issue time and record the
  /// denial via RecordFailedRead.
  bool ReadFailsNow() const;
  void RecordFailedRead();

  const DeviceProfile& profile() const { return profile_; }
  DeviceStats stats() const;
  void ResetStats();
  Clock* clock() const { return clock_; }

 private:
  /// The active phase at `now_nanos`, or nullptr. Caller holds mu_.
  const DevicePhase* ActivePhaseLocked(int64_t now_nanos) const;
  /// Read bandwidth with the active phase's factor applied. Caller holds mu_.
  double ReadBandwidthLocked(int64_t now_nanos) const;

  DeviceProfile profile_;
  Clock* clock_;
  mutable std::mutex mu_;
  DeviceStats stats_;
  uint64_t last_stream_ = ~0ULL;
  uint64_t next_sequential_offset_ = 0;
  /// When the shared transfer medium frees (overlapped-read bookkeeping).
  int64_t transfer_free_nanos_ = 0;
  std::vector<DevicePhase> schedule_;
  int64_t schedule_epoch_nanos_ = 0;
};

}  // namespace pcr
