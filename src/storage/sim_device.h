// SimDevice: a virtual-clock storage device model with bandwidth, seek
// latency, and IOPS limits. Used by SimEnv to reproduce the paper's
// bandwidth-bound behaviour (Appendix A.2): the time to read s bytes is
//   t = seek (if not sequential) + s / bandwidth,
// which is exactly the cost model of Lemma A.1.
#pragma once

#include <cstdint>
#include <string>

#include "util/clock.h"
#include "util/logging.h"

namespace pcr {

/// Static description of a device. Presets mirror the paper's hardware.
struct DeviceProfile {
  std::string name = "device";
  double read_bandwidth_bytes_per_sec = 400.0 * (1 << 20);
  double write_bandwidth_bytes_per_sec = 400.0 * (1 << 20);
  /// Charged whenever an access is not sequential with the previous one.
  double seek_latency_sec = 0.0;
  /// Charged on every operation (request setup, network round trip, ...).
  double per_op_latency_sec = 0.0;

  /// 7200RPM HDD (the paper's Seagate ST4000NM0023): ~180 MiB/s sequential,
  /// ~8.5 ms average seek.
  static DeviceProfile Hdd7200();
  /// SATA SSD, ~400 MiB/s as in the paper's reader microbenchmark (§A.5).
  static DeviceProfile SataSsd();
  /// Aggregate bandwidth of the paper's 5-OSD Ceph pool over 40GbE:
  /// "400+ MiB/s of storage bandwidth", with a network round-trip per op.
  static DeviceProfile CephCluster();
  /// Local RAM (effectively infinite bandwidth; used as the compute-bound
  /// reference point "from RAM" in Figure 9).
  static DeviceProfile Ram();
};

/// Accounting counters for a device.
struct DeviceStats {
  int64_t read_ops = 0;
  int64_t write_ops = 0;
  int64_t seeks = 0;
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  double busy_seconds = 0.0;
};

/// Charges I/O time against a clock. Thread-compatible: the simulator drives
/// it from one thread (or externally synchronized).
class SimDevice {
 public:
  SimDevice(DeviceProfile profile, Clock* clock)
      : profile_(std::move(profile)), clock_(clock) {
    PCR_CHECK(clock != nullptr);
  }

  /// Charges the cost of reading `bytes` at `offset` of stream `stream_id`
  /// (e.g. a file id). Sequential continuation skips the seek. Returns the
  /// charged seconds.
  double ChargeRead(uint64_t stream_id, uint64_t offset, uint64_t bytes);

  /// Charges an append of `bytes` (always sequential).
  double ChargeWrite(uint64_t bytes);

  const DeviceProfile& profile() const { return profile_; }
  const DeviceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DeviceStats{}; }
  Clock* clock() const { return clock_; }

 private:
  DeviceProfile profile_;
  Clock* clock_;
  DeviceStats stats_;
  uint64_t last_stream_ = ~0ULL;
  uint64_t next_sequential_offset_ = 0;
};

}  // namespace pcr
