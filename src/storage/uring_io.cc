#include "storage/uring_io.h"

#if defined(__linux__) && defined(PCR_HAVE_URING)

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "storage/fd_cache.h"
#include "util/logging.h"

#ifdef __NR_io_uring_setup

namespace pcr {

namespace {

int SysUringSetup(unsigned entries, struct io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int SysUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

int SysUringRegister(int ring_fd, unsigned opcode, const void* arg,
                     unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, ring_fd, opcode, arg, nr_args));
}

unsigned LoadAcquire(const unsigned* p) {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}

void StoreRelease(unsigned* p, unsigned v) {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

unsigned NextPow2(unsigned v) {
  unsigned p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Registered-file table slots per ring. The loader's working set is a
/// handful of record files per shard, so a small fixed table covers the hot
/// paths; overflow just falls back to plain descriptors in the SQE.
constexpr size_t kRegisteredFileSlots = 32;

/// One ring per scheduler, one submitting thread (the IoScheduler contract),
/// raw syscalls throughout. SubmitRead turns each request into one vectored
/// READV SQE per contiguous run of segments (adjacent same-file segments
/// share an SQE, one iovec per segment) reading straight into the
/// completion's byte storage; SQEs accumulate until `submit_batch` of them
/// (or a Wait/Poll) flush in a single io_uring_enter, which is where the
/// syscalls-per-record win over the pread backend comes from.
class UringIoScheduler final : public IoScheduler {
 public:
  static std::unique_ptr<IoScheduler> Create(FdCache* fds,
                                             const IoSchedulerOptions& options) {
    std::unique_ptr<UringIoScheduler> scheduler(
        new UringIoScheduler(fds, options));
    if (!scheduler->Init()) return nullptr;
    return scheduler;
  }

  ~UringIoScheduler() override {
    Drain();
    Teardown();
  }

  Status SubmitRead(ReadRequest request) override {
    if (broken_) return Status::Aborted("io_uring scheduler broken");
    if (in_flight_ >= depth_) {
      return Status::ResourceExhausted("io scheduler full");
    }
    ++stats_.requests;
    stats_.segments += static_cast<int64_t>(request.segments.size());
    const size_t slot = AllocRequest();
    Request& req = *requests_[slot];
    req.user_data = request.user_data;
    req.status = Status::OK();
    req.failed = false;
    req.outstanding_ops = 0;
    req.bytes.assign(request.total_length(), '\0');
    ++in_flight_;

    // Coalesce adjacent same-file segments into runs; one vectored SQE each.
    const auto& segs = request.segments;
    Status fail = Status::OK();
    size_t dest_offset = 0;
    size_t i = 0;
    while (i < segs.size()) {
      uint64_t run_end = segs[i].offset + segs[i].length;
      size_t j = i + 1;
      while (j < segs.size() && segs[j].path == segs[i].path &&
             segs[j].offset == run_end) {
        run_end += segs[j].length;
        ++j;
      }
      const uint64_t run_bytes = run_end - segs[i].offset;
      if (run_bytes == 0) {
        i = j;
        continue;
      }
      auto fd = fds_->Open(segs[i].path);
      if (!fd.ok()) {
        fail = fd.status();
        break;
      }
      req.fds.push_back(*fd);
      char* const run_dest = req.bytes.data() + dest_offset;
      dest_offset += run_bytes;

      const size_t op_index = AllocOp();
      Op& op = *ops_[op_index];
      op.request_slot = slot;
      op.path = segs[i].path;
      op.file_offset = segs[i].offset;
      op.fd = (*fd)->fd();
      op.fixed_file = RegisteredFileIndex(op.path, op.fd, *fd);
      op.iov.clear();
      op.iov_next = 0;
      size_t seg_dest = 0;
      for (size_t k = i; k < j; ++k) {
        if (segs[k].length == 0) continue;
        op.iov.push_back(
            {run_dest + seg_dest, static_cast<size_t>(segs[k].length)});
        seg_dest += segs[k].length;
      }
      op.buffer_slot = -1;
      op.copy_dest = nullptr;
      op.copy_remaining = 0;
      if (buffers_registered_ && run_bytes <= buffer_bytes_ &&
          !free_buffers_.empty()) {
        op.buffer_slot = free_buffers_.back();
        free_buffers_.pop_back();
        op.copy_dest = run_dest;
        op.copy_remaining = static_cast<size_t>(run_bytes);
      }
      ++req.outstanding_ops;
      const Status queued = QueueSqe(op_index);
      if (!queued.ok()) {
        --req.outstanding_ops;
        ReleaseBuffer(&op);
        FreeOp(op_index);
        fail = queued;
        break;
      }
      i = j;
    }
    if (!fail.ok()) {
      req.failed = true;
      req.status = fail;
    }
    // Zero-byte requests and submit-time failures with no kernel ops finish
    // here; everything else finalizes as its CQEs arrive.
    if (req.outstanding_ops == 0) {
      Finalize(slot);
    } else if (unflushed_ >= static_cast<unsigned>(submit_batch_)) {
      (void)FlushSubmissions();
    }
    return Status::OK();
  }

  Result<ReadCompletion> WaitCompletion() override {
    if (in_flight_ == 0) {
      return Status::FailedPrecondition("no reads in flight");
    }
    for (;;) {
      if (!ready_.empty()) return PopReady();
      ReapCompletions();
      if (!ready_.empty()) continue;
      if (kernel_outstanding_ == 0 && unflushed_ == 0) {
        return Status::Unknown("io_uring scheduler lost a completion");
      }
      // One syscall both submits anything queued and waits for a CQE.
      const unsigned to_submit = unflushed_;
      const int ret =
          SysUringEnter(ring_fd_, to_submit, 1, IORING_ENTER_GETEVENTS);
      ++stats_.syscalls;
      if (ret < 0) {
        if (errno == EINTR || errno == EBUSY) continue;
        broken_ = true;
        return Status::IOError(std::string("io_uring_enter: ") +
                               strerror(errno));
      }
      if (ret > 0) {
        if (to_submit > 0) ++stats_.submits;
        kernel_outstanding_ += ret;
        unflushed_ -= static_cast<unsigned>(ret);
      }
    }
  }

  std::optional<ReadCompletion> PollCompletion() override {
    if (ready_.empty()) {
      if (unflushed_ > 0) (void)FlushSubmissions();
      ReapCompletions();
    }
    if (ready_.empty()) return std::nullopt;
    return PopReady();
  }

  int in_flight() const override { return in_flight_; }

  const char* backend_name() const override { return "uring"; }

  IoSchedulerStats stats() const override { return stats_; }

 private:
  struct Request {
    uint64_t user_data = 0;
    Status status;
    std::string bytes;                // Destination; stable until finalize.
    std::vector<SharedFdHandle> fds;  // Pinned for the request's lifetime.
    int outstanding_ops = 0;
    bool failed = false;
  };

  /// One SQE's bookkeeping (slab-allocated so iovec arrays stay put while
  /// the kernel reads them). Short reads advance `iov_next`/the first
  /// partial iovec (or `copy_*` for fixed-buffer ops) and resubmit.
  struct Op {
    size_t request_slot = 0;
    std::string path;
    uint64_t file_offset = 0;
    int fd = -1;
    int fixed_file = -1;          // Registered-file slot, or -1 for a raw fd.
    std::vector<struct iovec> iov;
    size_t iov_next = 0;
    int buffer_slot = -1;         // Registered buffer, or -1 to read in place.
    char* copy_dest = nullptr;    // Fixed-buffer ops copy out at completion.
    size_t copy_remaining = 0;
  };

  struct RegisteredFile {
    std::string path;
    SharedFdHandle handle;
    int fd = -1;
  };

  UringIoScheduler(FdCache* fds, const IoSchedulerOptions& options)
      : fds_(fds),
        depth_(std::max(1, options.queue_depth)),
        submit_batch_(std::max(1, options.submit_batch)),
        buffer_bytes_(options.fixed_buffer_bytes) {}

  bool Init() {
    struct io_uring_params params;
    memset(&params, 0, sizeof(params));
    // Room for a few SQEs per request (one per discontiguous run) plus
    // short-read continuations; the kernel consumes SQEs during enter, so
    // an occasional full ring just forces an early flush.
    const unsigned entries = NextPow2(std::min(
        1024u, std::max(8u, static_cast<unsigned>(depth_) * 4u)));
    ring_fd_ = SysUringSetup(entries, &params);
    if (ring_fd_ < 0) return false;

    size_t sq_len = params.sq_off.array + params.sq_entries * sizeof(unsigned);
    size_t cq_len =
        params.cq_off.cqes + params.cq_entries * sizeof(struct io_uring_cqe);
    const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) sq_len = cq_len = std::max(sq_len, cq_len);
    sq_ring_len_ = sq_len;
    sq_ring_ = mmap(nullptr, sq_len, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) {
      sq_ring_ = nullptr;
      Teardown();
      return false;
    }
    if (single_mmap) {
      cq_ring_ = sq_ring_;
      cq_ring_len_ = 0;  // Shared mapping; unmapped via sq_ring_.
    } else {
      cq_ring_len_ = cq_len;
      cq_ring_ = mmap(nullptr, cq_len, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
      if (cq_ring_ == MAP_FAILED) {
        cq_ring_ = nullptr;
        Teardown();
        return false;
      }
    }
    sqes_len_ = params.sq_entries * sizeof(struct io_uring_sqe);
    void* sqes = mmap(nullptr, sqes_len_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
    if (sqes == MAP_FAILED) {
      Teardown();
      return false;
    }
    sqes_ = static_cast<struct io_uring_sqe*>(sqes);

    auto sq_at = [&](size_t off) {
      return reinterpret_cast<unsigned*>(static_cast<char*>(sq_ring_) + off);
    };
    auto cq_at = [&](size_t off) {
      return reinterpret_cast<unsigned*>(static_cast<char*>(cq_ring_) + off);
    };
    sq_head_ = sq_at(params.sq_off.head);
    sq_tail_ = sq_at(params.sq_off.tail);
    sq_mask_ = *sq_at(params.sq_off.ring_mask);
    sq_entries_ = params.sq_entries;
    sq_array_ = sq_at(params.sq_off.array);
    cq_head_ = cq_at(params.cq_off.head);
    cq_tail_ = cq_at(params.cq_off.tail);
    cq_mask_ = *cq_at(params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<struct io_uring_cqe*>(
        static_cast<char*>(cq_ring_) + params.cq_off.cqes);
    sq_tail_local_ = *sq_tail_;

    // Registered files: a sparse table filled lazily via FILES_UPDATE as
    // paths show up. Kernels without sparse registration just leave the
    // optimization off.
    std::vector<int32_t> sparse(kRegisteredFileSlots, -1);
    if (SysUringRegister(ring_fd_, IORING_REGISTER_FILES, sparse.data(),
                         kRegisteredFileSlots) == 0) {
      files_registered_ = true;
      registered_files_.resize(kRegisteredFileSlots);
    }

    // Optional registered (kernel-pinned) buffers; registration failure
    // (e.g. RLIMIT_MEMLOCK) silently degrades to in-place reads.
    if (buffer_bytes_ > 0) {
      buffers_.resize(static_cast<size_t>(depth_));
      std::vector<struct iovec> regions(buffers_.size());
      for (size_t b = 0; b < buffers_.size(); ++b) {
        buffers_[b].assign(buffer_bytes_, '\0');
        regions[b] = {buffers_[b].data(), buffers_[b].size()};
      }
      if (SysUringRegister(ring_fd_, IORING_REGISTER_BUFFERS, regions.data(),
                           static_cast<unsigned>(regions.size())) == 0) {
        buffers_registered_ = true;
        for (size_t b = 0; b < buffers_.size(); ++b) {
          free_buffers_.push_back(static_cast<int>(b));
        }
      } else {
        buffers_.clear();
      }
    }
    return true;
  }

  void Teardown() {
    if (sqes_ != nullptr) munmap(sqes_, sqes_len_);
    if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
      munmap(cq_ring_, cq_ring_len_);
    }
    if (sq_ring_ != nullptr) munmap(sq_ring_, sq_ring_len_);
    sqes_ = nullptr;
    cq_ring_ = nullptr;
    sq_ring_ = nullptr;
    if (ring_fd_ >= 0) ::close(ring_fd_);
    ring_fd_ = -1;
  }

  /// Waits out every op the kernel has seen so it stops writing into our
  /// buffers before they die; SQEs never flushed are simply abandoned (the
  /// kernel only consumes the SQ during enter).
  void Drain() {
    draining_ = true;
    int spins = 0;
    while (kernel_outstanding_ > 0) {
      ReapCompletions();
      if (kernel_outstanding_ == 0) break;
      const int ret = SysUringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
      if (ret < 0 && errno != EINTR && errno != EBUSY && ++spins > 64) break;
    }
  }

  size_t AllocRequest() {
    if (!free_requests_.empty()) {
      const size_t slot = free_requests_.back();
      free_requests_.pop_back();
      return slot;
    }
    requests_.push_back(std::make_unique<Request>());
    return requests_.size() - 1;
  }

  void FreeRequest(size_t slot) { free_requests_.push_back(slot); }

  size_t AllocOp() {
    if (!free_ops_.empty()) {
      const size_t index = free_ops_.back();
      free_ops_.pop_back();
      return index;
    }
    ops_.push_back(std::make_unique<Op>());
    return ops_.size() - 1;
  }

  void FreeOp(size_t index) { free_ops_.push_back(index); }

  void ReleaseBuffer(Op* op) {
    if (op->buffer_slot >= 0) free_buffers_.push_back(op->buffer_slot);
    op->buffer_slot = -1;
  }

  /// Slot in the ring's registered-file table for (path, fd), registering or
  /// refreshing it as needed; -1 when the table is full or registration is
  /// unavailable (the SQE then carries the raw fd).
  int RegisteredFileIndex(const std::string& path, int fd,
                          const SharedFdHandle& handle) {
    if (!files_registered_) return -1;
    int free_slot = -1;
    int found = -1;
    for (size_t s = 0; s < registered_files_.size(); ++s) {
      if (registered_files_[s].fd < 0) {
        if (free_slot < 0) free_slot = static_cast<int>(s);
      } else if (registered_files_[s].path == path) {
        found = static_cast<int>(s);
        break;
      }
    }
    const int slot = found >= 0 ? found : free_slot;
    if (slot < 0) return -1;
    if (found >= 0 && registered_files_[slot].fd == fd) return slot;
    // New path, or the fd cache re-opened the path (invalidation): point the
    // table slot at the current descriptor.
    struct io_uring_files_update update;
    memset(&update, 0, sizeof(update));
    int32_t raw = fd;
    update.offset = static_cast<unsigned>(slot);
    update.fds = reinterpret_cast<uint64_t>(&raw);
    ++stats_.syscalls;
    if (SysUringRegister(ring_fd_, IORING_REGISTER_FILES_UPDATE, &update, 1) <
        0) {
      files_registered_ = false;
      return -1;
    }
    registered_files_[slot] = {path, handle, fd};
    return slot;
  }

  Status QueueSqe(size_t op_index) {
    Op& op = *ops_[op_index];
    while (sq_tail_local_ - LoadAcquire(sq_head_) >= sq_entries_) {
      // Ring full: flushing lets the kernel consume the queued SQEs.
      const unsigned before = LoadAcquire(sq_head_);
      PCR_RETURN_IF_ERROR(FlushSubmissions());
      if (LoadAcquire(sq_head_) == before && unflushed_ == 0) {
        return Status::Unknown("io_uring SQ ring stuck");
      }
    }
    const unsigned index = sq_tail_local_ & sq_mask_;
    struct io_uring_sqe* sqe = &sqes_[index];
    memset(sqe, 0, sizeof(*sqe));
    if (op.buffer_slot >= 0) {
      sqe->opcode = IORING_OP_READ_FIXED;
      sqe->addr = reinterpret_cast<uint64_t>(buffers_[op.buffer_slot].data());
      sqe->len = static_cast<unsigned>(op.copy_remaining);
      sqe->buf_index = static_cast<uint16_t>(op.buffer_slot);
    } else {
      sqe->opcode = IORING_OP_READV;
      sqe->addr = reinterpret_cast<uint64_t>(op.iov.data() + op.iov_next);
      sqe->len = static_cast<unsigned>(op.iov.size() - op.iov_next);
    }
    sqe->off = op.file_offset;
    if (op.fixed_file >= 0) {
      sqe->fd = op.fixed_file;
      sqe->flags |= IOSQE_FIXED_FILE;
    } else {
      sqe->fd = op.fd;
    }
    sqe->user_data = op_index;
    sq_array_[index] = index;
    ++sq_tail_local_;
    StoreRelease(sq_tail_, sq_tail_local_);
    ++unflushed_;
    ++stats_.ops;
    return Status::OK();
  }

  /// One io_uring_enter submitting everything queued, without waiting.
  Status FlushSubmissions() {
    while (unflushed_ > 0) {
      const int ret = SysUringEnter(ring_fd_, unflushed_, 0, 0);
      ++stats_.syscalls;
      if (ret < 0) {
        if (errno == EINTR) continue;
        if (errno == EBUSY) {
          ReapCompletions();
          continue;
        }
        broken_ = true;
        return Status::IOError(std::string("io_uring_enter: ") +
                               strerror(errno));
      }
      if (ret > 0) ++stats_.submits;
      kernel_outstanding_ += ret;
      unflushed_ -= static_cast<unsigned>(ret);
    }
    return Status::OK();
  }

  void ReapCompletions() {
    for (;;) {
      const unsigned head = *cq_head_;
      if (head == LoadAcquire(cq_tail_)) return;
      const struct io_uring_cqe cqe = cqes_[head & cq_mask_];
      StoreRelease(cq_head_, head + 1);
      --kernel_outstanding_;
      HandleCqe(cqe);
    }
  }

  void HandleCqe(const struct io_uring_cqe& cqe) {
    const size_t op_index = static_cast<size_t>(cqe.user_data);
    Op& op = *ops_[op_index];
    if (draining_) {
      ReleaseBuffer(&op);
      FreeOp(op_index);
      return;
    }
    Request& req = *requests_[op.request_slot];
    const int res = cqe.res;
    bool finished = false;
    if (res < 0) {
      FailRequest(&req, Status::IOError("read " + op.path + ": " +
                                        strerror(-res)));
      finished = true;
    } else if (res == 0) {
      FailRequest(&req, Status::IOError("short read of " + op.path));
      finished = true;
    } else if (op.buffer_slot >= 0) {
      const size_t n = std::min(static_cast<size_t>(res), op.copy_remaining);
      memcpy(op.copy_dest, buffers_[op.buffer_slot].data(), n);
      op.copy_dest += n;
      op.copy_remaining -= n;
      op.file_offset += n;
      finished = op.copy_remaining == 0;
    } else {
      size_t n = static_cast<size_t>(res);
      while (n > 0 && op.iov_next < op.iov.size()) {
        struct iovec& v = op.iov[op.iov_next];
        if (v.iov_len <= n) {
          n -= v.iov_len;
          ++op.iov_next;
        } else {
          v.iov_base = static_cast<char*>(v.iov_base) + n;
          v.iov_len -= n;
          n = 0;
        }
      }
      op.file_offset += static_cast<uint64_t>(res);
      finished = op.iov_next >= op.iov.size();
    }
    if (!finished && !req.failed) {
      // Partial read (EOF-free short read): resubmit the remainder.
      const Status queued = QueueSqe(op_index);
      if (queued.ok()) return;
      FailRequest(&req, queued);
    }
    const size_t slot = op.request_slot;
    ReleaseBuffer(&op);
    FreeOp(op_index);
    if (--req.outstanding_ops == 0) Finalize(slot);
  }

  void FailRequest(Request* req, Status status) {
    if (req->failed) return;
    req->failed = true;
    req->status = std::move(status);
  }

  void Finalize(size_t slot) {
    Request& req = *requests_[slot];
    ReadCompletion completion;
    completion.user_data = req.user_data;
    completion.status = req.failed ? req.status : Status::OK();
    if (!req.failed) completion.bytes = std::move(req.bytes);
    req.bytes.clear();
    req.fds.clear();
    ready_.push_back(std::move(completion));
    FreeRequest(slot);
  }

  ReadCompletion PopReady() {
    ReadCompletion completion = std::move(ready_.front());
    ready_.pop_front();
    --in_flight_;
    return completion;
  }

  FdCache* const fds_;
  const int depth_;
  const int submit_batch_;
  const size_t buffer_bytes_;

  int ring_fd_ = -1;
  void* sq_ring_ = nullptr;
  size_t sq_ring_len_ = 0;
  void* cq_ring_ = nullptr;
  size_t cq_ring_len_ = 0;
  struct io_uring_sqe* sqes_ = nullptr;
  size_t sqes_len_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned sq_tail_local_ = 0;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  struct io_uring_cqe* cqes_ = nullptr;

  bool files_registered_ = false;
  std::vector<RegisteredFile> registered_files_;
  bool buffers_registered_ = false;
  std::vector<std::string> buffers_;
  std::vector<int> free_buffers_;

  std::vector<std::unique_ptr<Request>> requests_;
  std::vector<size_t> free_requests_;
  std::vector<std::unique_ptr<Op>> ops_;
  std::vector<size_t> free_ops_;
  std::deque<ReadCompletion> ready_;

  unsigned unflushed_ = 0;      // SQEs queued but not yet passed to enter.
  int kernel_outstanding_ = 0;  // SQEs entered, CQE not yet reaped.
  int in_flight_ = 0;           // Requests accepted, completion not delivered.
  bool draining_ = false;
  bool broken_ = false;
  IoSchedulerStats stats_;
};

}  // namespace

bool UringProbe() {
  static const bool supported = [] {
    struct io_uring_params params;
    memset(&params, 0, sizeof(params));
    const int fd = SysUringSetup(4, &params);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return supported;
}

std::unique_ptr<IoScheduler> NewUringIoScheduler(
    FdCache* fds, const IoSchedulerOptions& options) {
  if (!UringProbe()) return nullptr;
  return UringIoScheduler::Create(fds, options);
}

}  // namespace pcr

#else  // !defined(__NR_io_uring_setup)

namespace pcr {
bool UringProbe() { return false; }
std::unique_ptr<IoScheduler> NewUringIoScheduler(FdCache*,
                                                 const IoSchedulerOptions&) {
  return nullptr;
}
}  // namespace pcr

#endif

#else  // Non-Linux or header-less build: pread-thread fallback only.

namespace pcr {
bool UringProbe() { return false; }
std::unique_ptr<IoScheduler> NewUringIoScheduler(FdCache*,
                                                 const IoSchedulerOptions&) {
  return nullptr;
}
}  // namespace pcr

#endif
