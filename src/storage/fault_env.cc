#include "storage/fault_env.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>

#include "util/logging.h"

namespace pcr {

namespace {

/// Sync-path shim: consults the schedule before delegating the read.
class FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(FaultInjectionEnv* env, std::string path,
                        std::unique_ptr<RandomAccessFile> inner)
      : env_(env), path_(std::move(path)), inner_(std::move(inner)) {}

  Status Read(uint64_t offset, size_t n, char* scratch,
              Slice* out) const override {
    FaultInjectionEnv::Decision d = env_->Evaluate(path_);
    if (d.stall_nanos > 0) env_->clock()->SleepNanos(d.stall_nanos);
    if (!d.status.ok()) return d.status;
    PCR_RETURN_IF_ERROR(inner_->Read(offset, n, scratch, out));
    if (d.short_read && out->size() > d.short_bytes) {
      // Truncated delivery: Env::ReadRange and the record readers turn this
      // into the same "short read" IOError a truncated file produces.
      *out = Slice(out->data(), static_cast<size_t>(d.short_bytes));
    }
    return Status::OK();
  }

  Result<uint64_t> Size() const override { return inner_->Size(); }

 private:
  FaultInjectionEnv* const env_;
  const std::string path_;
  const std::unique_ptr<RandomAccessFile> inner_;
};

/// Async-path shim. The fault decision is made at SubmitRead — submission
/// order is deterministic even when the inner backend completes out of
/// order — and applied at delivery: erroring reads never reach the inner
/// backend (their faulty completion queues locally), stalled reads complete
/// normally but are held past their release time.
class FaultIoScheduler : public IoScheduler {
 public:
  FaultIoScheduler(FaultInjectionEnv* env, std::unique_ptr<IoScheduler> inner)
      : env_(env), inner_(std::move(inner)) {}

  Status SubmitRead(ReadRequest request) override {
    const std::string& path =
        request.segments.empty() ? std::string() : request.segments[0].path;
    FaultInjectionEnv::Decision d = env_->Evaluate(path);
    const int64_t release = d.stall_nanos > 0
                                ? env_->clock()->NowNanos() + d.stall_nanos
                                : 0;
    if (!d.status.ok() || d.short_read) {
      // The completion contract promises exactly total_length() bytes, so a
      // scheduler-level short read surfaces as the IOError a truncated file
      // would produce; the inner backend never sees the request.
      ReadCompletion completion;
      completion.user_data = request.user_data;
      completion.status = d.short_read && d.status.ok()
                              ? Status::IOError("injected short read of " +
                                                path)
                              : d.status;
      ++local_faults_;
      held_.push_back({release, std::move(completion)});
      return Status::OK();
    }
    if (release > 0) stalled_release_[request.user_data] = release;
    return inner_->SubmitRead(std::move(request));
  }

  Result<ReadCompletion> WaitCompletion() override {
    if (in_flight() == 0) {
      return Status::FailedPrecondition("no reads in flight");
    }
    for (;;) {
      PCR_ASSIGN_OR_RETURN(std::optional<ReadCompletion> completion,
                           WaitCompletionFor(kSliceNanos));
      if (completion.has_value()) return std::move(*completion);
    }
  }

  Result<std::optional<ReadCompletion>> WaitCompletionFor(
      int64_t timeout_nanos) override {
    if (in_flight() == 0) {
      return Status::FailedPrecondition("no reads in flight");
    }
    const int64_t deadline = env_->clock()->NowNanos() + timeout_nanos;
    for (;;) {
      if (std::optional<ReadCompletion> ready = PollCompletion()) {
        return std::optional<ReadCompletion>(std::move(*ready));
      }
      const int64_t now = env_->clock()->NowNanos();
      if (now >= deadline) return std::optional<ReadCompletion>(std::nullopt);
      int64_t wait = deadline - now;
      // Never sleep past the earliest held release: a stalled completion
      // becoming ready is exactly what the caller is waiting for.
      for (const HeldCompletion& held : held_) {
        wait = std::min(wait, std::max<int64_t>(held.release_nanos - now, 0));
      }
      if (inner_->in_flight() > 0) {
        PCR_ASSIGN_OR_RETURN(
            std::optional<ReadCompletion> completion,
            inner_->WaitCompletionFor(std::max<int64_t>(wait, 1)));
        if (completion.has_value()) Hold(std::move(*completion));
      } else {
        // Only held completions remain; advance the clock to the release
        // (virtual clocks advance exactly this way).
        env_->clock()->SleepNanos(std::max<int64_t>(wait, 1));
      }
    }
  }

  std::optional<ReadCompletion> PollCompletion() override {
    while (std::optional<ReadCompletion> completion =
               inner_->PollCompletion()) {
      Hold(std::move(*completion));
    }
    const int64_t now = env_->clock()->NowNanos();
    for (auto it = held_.begin(); it != held_.end(); ++it) {
      if (it->release_nanos <= now) {
        ReadCompletion completion = std::move(it->completion);
        held_.erase(it);
        return completion;
      }
    }
    return std::nullopt;
  }

  int in_flight() const override {
    return inner_->in_flight() + static_cast<int>(held_.size());
  }

  const char* backend_name() const override { return inner_->backend_name(); }

  IoSchedulerStats stats() const override {
    IoSchedulerStats stats = inner_->stats();
    stats.requests += local_faults_;  // Faulted before reaching the backend.
    return stats;
  }

 private:
  struct HeldCompletion {
    int64_t release_nanos;  // 0 = deliverable immediately.
    ReadCompletion completion;
  };

  /// Queues an inner completion, honoring any stall decided at submit.
  void Hold(ReadCompletion completion) {
    int64_t release = 0;
    auto it = stalled_release_.find(completion.user_data);
    if (it != stalled_release_.end()) {
      release = it->second;
      stalled_release_.erase(it);
    }
    held_.push_back({release, std::move(completion)});
  }

  static constexpr int64_t kSliceNanos = 100'000'000;  // 100ms

  FaultInjectionEnv* const env_;
  const std::unique_ptr<IoScheduler> inner_;
  std::deque<HeldCompletion> held_;
  std::map<uint64_t, int64_t> stalled_release_;
  int64_t local_faults_ = 0;
};

}  // namespace

FaultInjectionEnv::FaultInjectionEnv(Env* base, std::vector<FaultRule> rules,
                                     uint64_t seed)
    : base_(base), rules_(std::move(rules)), seed_(seed),
      matches_(rules_.size(), 0), triggers_(rules_.size(), 0), rng_(seed) {
  PCR_CHECK(base != nullptr);
}

FaultInjectionEnv::Decision FaultInjectionEnv::Evaluate(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.reads_seen;
  Decision decision;
  bool decided = false;
  for (size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& rule = rules_[i];
    if (!rule.path_substring.empty() &&
        path.find(rule.path_substring) == std::string::npos) {
      continue;
    }
    const int64_t match = ++matches_[i];
    // The probability stream always draws for a matching read, so whether
    // earlier rules triggered never perturbs later draws: the schedule stays
    // a pure function of (seed, read order).
    bool fired = false;
    if (rule.probability > 0.0) {
      std::uniform_real_distribution<double> uniform(0.0, 1.0);
      fired = uniform(rng_) < rule.probability;
    }
    fired = fired || (rule.fail_nth > 0 && match == rule.fail_nth) ||
            (rule.fail_every_n > 0 && match % rule.fail_every_n == 0) ||
            (rule.fail_first_n > 0 && match <= rule.fail_first_n);
    if (!fired || decided) continue;
    if (rule.max_triggers >= 0 && triggers_[i] >= rule.max_triggers) continue;
    ++triggers_[i];
    decided = true;
    if (rule.added_latency_sec > 0) {
      decision.stall_nanos = SecondsToNanos(rule.added_latency_sec);
      ++stats_.stalls;
    }
    if (rule.short_read) {
      decision.short_read = true;
      decision.short_bytes = rule.short_read_bytes;
      ++stats_.short_reads;
    } else if (rule.code != StatusCode::kOk) {
      decision.status =
          Status(rule.code, "injected fault reading " + path);
      ++stats_.errors;
    }
  }
  return decision;
}

Result<std::unique_ptr<RandomAccessFile>>
FaultInjectionEnv::NewRandomAccessFile(const std::string& path) {
  PCR_ASSIGN_OR_RETURN(auto inner, base_->NewRandomAccessFile(path));
  return std::unique_ptr<RandomAccessFile>(
      new FaultRandomAccessFile(this, path, std::move(inner)));
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  return base_->NewWritableFile(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectionEnv::GetFileSize(const std::string& path) {
  return base_->GetFileSize(path);
}

Status FaultInjectionEnv::DeleteFile(const std::string& path) {
  return base_->DeleteFile(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& path) {
  return base_->ListDir(path);
}

std::unique_ptr<IoScheduler> FaultInjectionEnv::NewIoScheduler(
    const IoSchedulerOptions& options) {
  return std::make_unique<FaultIoScheduler>(this,
                                            base_->NewIoScheduler(options));
}

FaultStats FaultInjectionEnv::fault_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void FaultInjectionEnv::ResetSchedule() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(matches_.begin(), matches_.end(), 0);
  std::fill(triggers_.begin(), triggers_.end(), 0);
  rng_.seed(seed_);
  stats_ = FaultStats{};
}

}  // namespace pcr
