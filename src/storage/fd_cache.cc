#include "storage/fd_cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pcr {

SharedFd::~SharedFd() {
  if (fd_ >= 0) ::close(fd_);
}

Result<SharedFdHandle> FdCache::Open(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(path);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      return it->second->second;
    }
    ++misses_;
  }
  // Open outside the lock: a slow open (network filesystem) must not block
  // unrelated hits. A racing open of the same path wastes one fd briefly;
  // the loser's handle closes when its last reader drops it.
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  auto handle = std::make_shared<const SharedFd>(fd);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(path);
  if (it != index_.end()) {
    // Lost the race; serve the cached winner and let ours close via RAII.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  lru_.emplace_front(path, handle);
  index_[path] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
  return handle;
}

void FdCache::Invalidate(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(path);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
  ++invalidations_;
}

void FdCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  invalidations_ += static_cast<int64_t>(lru_.size());
  lru_.clear();
  index_.clear();
}

FdCacheStats FdCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FdCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.invalidations = invalidations_;
  stats.open_fds = static_cast<int64_t>(lru_.size());
  return stats;
}

}  // namespace pcr
