// Retry-with-backoff at the IoScheduler boundary. Failures are classified
// here — the one place every storage backend's errors flow through — into
// transient (worth re-driving against the same backend) and permanent (the
// caller must fail over to another replica or give up). The retrying wrapper
// makes transient failures invisible to the loader: a completion only
// surfaces after the policy's attempts are exhausted.
#pragma once

#include <memory>

#include "storage/env.h"

namespace pcr {

/// True for failures a second attempt against the same backend may clear:
/// I/O errors (EIO blips, dropped connections), exhausted resources, and
/// unclassified failures. NotFound and Corruption are permanent for this
/// replica (the bytes are not there; failover, don't retry), Aborted means
/// shutdown, and the remaining codes are caller bugs.
bool IsTransientIoError(const Status& status);

struct RetryPolicy {
  /// Total submissions per request; 1 disables retry.
  int max_attempts = 3;
  /// Exponential backoff: attempt k (1-based failure count) waits
  /// initial_backoff_sec * multiplier^(k-1), capped at max_backoff_sec.
  double initial_backoff_sec = 0.5e-3;
  double backoff_multiplier = 2.0;
  double max_backoff_sec = 50e-3;

  /// Backoff before re-driving after the `failures`-th failure (1-based).
  double BackoffSec(int failures) const;
};

/// Wraps a scheduler so transient completion failures are resubmitted (with
/// backoff on the Env's clock) until the policy is exhausted. Requests must
/// carry distinct user_data while in flight — true of every caller in the
/// tree (slot-indexed pipelines, monotonic test cookies). The wrapper's
/// stats add the `retries` counter on top of the inner backend's.
std::unique_ptr<IoScheduler> NewRetryingIoScheduler(
    std::unique_ptr<IoScheduler> inner, RetryPolicy policy, Clock* clock);

}  // namespace pcr
