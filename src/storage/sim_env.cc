#include "storage/sim_env.h"

#include <algorithm>
#include <cstring>
#include <queue>
#include <utility>
#include <vector>

namespace pcr {

class SimRandomAccessFile : public RandomAccessFile {
 public:
  SimRandomAccessFile(std::shared_ptr<std::string> data, uint64_t stream_id,
                      SimDevice* device)
      : data_(std::move(data)), stream_id_(stream_id), device_(device) {}

  Status Read(uint64_t offset, size_t n, char* scratch,
              Slice* out) const override {
    if (device_->ReadFailsNow()) {
      device_->RecordFailedRead();
      return Status::IOError("simulated device failure (scheduled outage)");
    }
    if (offset >= data_->size()) {
      *out = Slice();
      device_->ChargeRead(stream_id_, offset, 0);
      return Status::OK();
    }
    const size_t avail =
        std::min<uint64_t>(n, data_->size() - offset);
    memcpy(scratch, data_->data() + offset, avail);
    *out = Slice(scratch, avail);
    device_->ChargeRead(stream_id_, offset, avail);
    return Status::OK();
  }

  Result<uint64_t> Size() const override { return data_->size(); }

 private:
  std::shared_ptr<std::string> data_;
  uint64_t stream_id_;
  SimDevice* device_;
};

class SimWritableFile : public WritableFile {
 public:
  SimWritableFile(std::shared_ptr<std::string> data, SimDevice* device)
      : data_(std::move(data)), device_(device) {}

  Status Append(Slice s) override {
    data_->append(s.data(), s.size());
    device_->ChargeWrite(s.size());
    written_ += s.size();
    return Status::OK();
  }
  Status Flush() override { return Status::OK(); }
  Status Close() override { return Status::OK(); }
  uint64_t BytesWritten() const override { return written_; }

 private:
  std::shared_ptr<std::string> data_;
  SimDevice* device_;
  uint64_t written_ = 0;
};

/// Overlapped reads against the shared SimDevice: every submission is
/// admitted immediately (SimDevice::SubmitOverlappedRead assigns its
/// completion time under the queue-depth model) and WaitCompletion advances
/// the clock to the earliest outstanding completion. One scheduler belongs
/// to one submitting thread; several schedulers may share the device, whose
/// transfer-medium bookkeeping interleaves their requests.
class SimIoScheduler : public IoScheduler {
 public:
  SimIoScheduler(SimEnv* env, IoSchedulerOptions options)
      : env_(env), depth_(std::max(1, options.queue_depth)) {}

  Status SubmitRead(ReadRequest request) override {
    if (static_cast<int>(pending_.size()) >= depth_) {
      return Status::ResourceExhausted("io scheduler full");
    }
    ++stats_.requests;
    stats_.segments += static_cast<int64_t>(request.segments.size());
    stats_.ops += static_cast<int64_t>(request.segments.size());
    ++stats_.submits;  // The whole request is one modeled submission.
    ReadCompletion completion;
    completion.user_data = request.user_data;
    completion.bytes.reserve(request.total_length());
    if (env_->device()->ReadFailsNow()) {
      env_->device()->RecordFailedRead();
      completion.status =
          Status::IOError("simulated device failure (scheduled outage)");
    }
    for (const ReadSegment& segment : request.segments) {
      if (!completion.status.ok()) break;
      auto data = env_->FileData(segment.path);
      if (!data.ok()) {
        completion.status = data.status();
        break;
      }
      if (segment.offset + segment.length > (*data)->size()) {
        completion.status = Status::IOError("short read of " + segment.path);
        break;
      }
      completion.bytes.append((*data)->data() + segment.offset,
                              static_cast<size_t>(segment.length));
    }
    if (!completion.status.ok()) completion.bytes.clear();
    // Failures complete immediately (no bytes move); successful reads
    // complete when the modeled device delivers them. A multi-segment
    // request charges one submission for its total bytes — the device
    // model's per-op setup phase is paid once per request, mirroring the
    // uring backend's one-SQE-per-plan batching.
    const int64_t done =
        completion.status.ok()
            ? env_->device()->SubmitOverlappedRead(request.total_length())
            : env_->clock()->NowNanos();
    pending_.emplace(done, order_++, std::move(completion));
    return Status::OK();
  }

  Result<ReadCompletion> WaitCompletion() override {
    if (pending_.empty()) {
      return Status::FailedPrecondition("no reads in flight");
    }
    Pending next = PopPending();
    const int64_t now = env_->clock()->NowNanos();
    if (next.done > now) env_->clock()->SleepNanos(next.done - now);
    return std::move(next.completion);
  }

  std::optional<ReadCompletion> PollCompletion() override {
    if (pending_.empty() ||
        pending_.top().done > env_->clock()->NowNanos()) {
      return std::nullopt;
    }
    return PopPending().completion;
  }

  Result<std::optional<ReadCompletion>> WaitCompletionFor(
      int64_t timeout_nanos) override {
    if (pending_.empty()) {
      return Status::FailedPrecondition("no reads in flight");
    }
    // Virtual-clock aware: time only passes when someone sleeps the clock,
    // so a timeout must advance it too — otherwise a bounded wait under a
    // VirtualClock would never see its deadline arrive.
    const int64_t now = env_->clock()->NowNanos();
    if (pending_.top().done - now > timeout_nanos) {
      env_->clock()->SleepNanos(timeout_nanos);
      return std::optional<ReadCompletion>(std::nullopt);
    }
    Pending next = PopPending();
    if (next.done > now) env_->clock()->SleepNanos(next.done - now);
    return std::optional<ReadCompletion>(std::move(next.completion));
  }

  int in_flight() const override {
    return static_cast<int>(pending_.size());
  }

  const char* backend_name() const override { return "sim"; }

  // `syscalls` stays 0: the device is virtual, nothing reaches the kernel.
  IoSchedulerStats stats() const override { return stats_; }

 private:
  struct Pending {
    int64_t done;
    uint64_t order;  // FIFO tiebreak for identical completion times.
    ReadCompletion completion;
    Pending(int64_t d, uint64_t o, ReadCompletion c)
        : done(d), order(o), completion(std::move(c)) {}
    bool operator>(const Pending& other) const {
      return done != other.done ? done > other.done : order > other.order;
    }
  };

  /// Moves the earliest completion out of the heap (top() is const-ref
  /// only; moving is safe because pop() discards the slot immediately).
  Pending PopPending() {
    Pending next = std::move(const_cast<Pending&>(pending_.top()));
    pending_.pop();
    return next;
  }

  SimEnv* env_;
  const int depth_;
  uint64_t order_ = 0;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
      pending_;
  IoSchedulerStats stats_;
};

SimEnv::SimEnv(DeviceProfile profile, Clock* clock)
    : device_(std::move(profile), clock) {
  dirs_[""] = true;
}

Result<std::shared_ptr<std::string>> SimEnv::FileData(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second.data;
}

std::unique_ptr<IoScheduler> SimEnv::NewIoScheduler(
    const IoSchedulerOptions& options) {
  return std::make_unique<SimIoScheduler>(this, options);
}

Result<std::unique_ptr<RandomAccessFile>> SimEnv::NewRandomAccessFile(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return std::unique_ptr<RandomAccessFile>(new SimRandomAccessFile(
      it->second.data, it->second.stream_id, &device_));
}

Result<std::unique_ptr<WritableFile>> SimEnv::NewWritableFile(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  FileNode node;
  node.data = std::make_shared<std::string>();
  node.stream_id = next_stream_id_++;
  files_[path] = node;
  return std::unique_ptr<WritableFile>(
      new SimWritableFile(node.data, &device_));
}

bool SimEnv::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0 || dirs_.count(path) > 0;
}

Result<uint64_t> SimEnv::GetFileSize(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second.data->size();
}

Status SimEnv::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) {
    return Status::NotFound("no such file: " + path);
  }
  return Status::OK();
}

Status SimEnv::RenameFile(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no such file: " + from);
  files_[to] = it->second;
  files_.erase(it);
  return Status::OK();
}

Status SimEnv::CreateDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string cur;
  for (const char c : path) {
    if (c == '/') {
      if (!cur.empty()) dirs_[cur] = true;
    }
    cur += c;
  }
  dirs_[path] = true;
  return Status::OK();
}

Result<std::vector<std::string>> SimEnv::ListDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string prefix = path.empty() ? "" : path + "/";
  std::vector<std::string> names;
  auto add_child = [&](const std::string& full) {
    if (full.size() <= prefix.size() || full.compare(0, prefix.size(), prefix) != 0) {
      return;
    }
    std::string rest = full.substr(prefix.size());
    const size_t slash = rest.find('/');
    if (slash != std::string::npos) rest = rest.substr(0, slash);
    if (!rest.empty() &&
        std::find(names.begin(), names.end(), rest) == names.end()) {
      names.push_back(rest);
    }
  };
  for (const auto& [name, node] : files_) add_child(name);
  for (const auto& [name, is_dir] : dirs_) add_child(name);
  std::sort(names.begin(), names.end());
  return names;
}

Status SimEnv::ImportTree(Env* src, const std::string& src_dir,
                          const std::string& dst_dir) {
  PCR_ASSIGN_OR_RETURN(auto children, src->ListDir(src_dir));
  PCR_RETURN_IF_ERROR(CreateDir(dst_dir));
  for (const auto& child : children) {
    const std::string src_path = src_dir + "/" + child;
    const std::string dst_path = dst_dir + "/" + child;
    if (src->GetFileSize(src_path).ok()) {
      std::string data;
      PCR_RETURN_IF_ERROR(src->ReadFileToString(src_path, &data));
      // Import without charging simulated write time: staging the dataset is
      // not part of the measured experiment.
      std::lock_guard<std::mutex> lock(mu_);
      FileNode node;
      node.data = std::make_shared<std::string>(std::move(data));
      node.stream_id = next_stream_id_++;
      files_[dst_path] = node;
    } else {
      PCR_RETURN_IF_ERROR(ImportTree(src, src_path, dst_path));
    }
  }
  return Status::OK();
}

uint64_t SimEnv::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, node] : files_) total += node.data->size();
  return total;
}

}  // namespace pcr
