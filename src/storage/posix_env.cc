// PosixEnv: Env backed by the host filesystem. Reads go through a
// process-wide LRU fd cache and positionless pread, so repeated fetches of
// the same record file share one descriptor and any number of threads read
// concurrently through it. NewIoScheduler picks a backend per PCR_FORCE_IO
// and kernel support: a real io_uring ring (storage/uring_io.cc), this
// file's pread-thread emulation, or the synchronous base fallback — all over
// the same cached descriptors.
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "storage/env.h"
#include "storage/fd_cache.h"
#include "storage/io_backend.h"
#include "storage/uring_io.h"
#include "util/bounded_queue.h"
#include "util/logging.h"

namespace pcr {

namespace {

namespace fs = std::filesystem;

constexpr size_t kFdCacheCapacity = 128;

Status ErrnoStatus(const std::string& context) {
  return Status::IOError(context + ": " + strerror(errno));
}

/// Full pread: loops over partial reads, returns the bytes read (fewer than
/// `n` only at EOF).
Result<size_t> PreadAll(int fd, const std::string& path, uint64_t offset,
                        size_t n, char* scratch) {
  size_t total = 0;
  while (total < n) {
    const ssize_t r = ::pread(fd, scratch + total, n - total,
                              static_cast<off_t>(offset + total));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("read " + path);
    }
    if (r == 0) break;  // EOF.
    total += static_cast<size_t>(r);
  }
  return total;
}

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, SharedFdHandle fd)
      : path_(std::move(path)), fd_(std::move(fd)) {}

  Status Read(uint64_t offset, size_t n, char* scratch,
              Slice* out) const override {
    PCR_ASSIGN_OR_RETURN(const size_t read,
                         PreadAll(fd_->fd(), path_, offset, n, scratch));
    *out = Slice(scratch, read);
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    struct stat st;
    if (fstat(fd_->fd(), &st) != 0) return ErrnoStatus("stat " + path_);
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  std::string path_;
  SharedFdHandle fd_;
};

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string path, FILE* f)
      : path_(std::move(path)), file_(f) {}
  ~PosixWritableFile() override {
    if (file_ != nullptr) fclose(file_);
  }

  Status Append(Slice data) override {
    if (file_ == nullptr) return Status::IOError("append to closed file");
    if (fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return ErrnoStatus("write " + path_);
    }
    written_ += data.size();
    return Status::OK();
  }

  Status Flush() override {
    if (file_ != nullptr && fflush(file_) != 0) {
      return ErrnoStatus("flush " + path_);
    }
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    FILE* f = file_;
    file_ = nullptr;
    if (fclose(f) != 0) return ErrnoStatus("close " + path_);
    return Status::OK();
  }

  uint64_t BytesWritten() const override { return written_; }

 private:
  std::string path_;
  FILE* file_;
  uint64_t written_ = 0;
};

/// Submission/completion reads over the fd cache: SubmitRead enqueues into a
/// bounded queue served by internal threads (each blocked pread occupies
/// one), completions drain through a second queue. The submission bound is
/// the strict in-flight cap: SubmitRead blocks while `queue_depth` reads are
/// outstanding, matching a fixed-size io_uring SQ.
///
/// Shutdown must not depend on the kernel: a pread wedged inside a dying
/// backend (hung NFS server, failing disk) would once hang the destructor's
/// join — and with it pipeline teardown. The queues and counters therefore
/// live in a shared State that each detached service thread co-owns; the
/// destructor just closes the queues and walks away, and a wedged thread
/// drains itself whenever its pread finally returns (its completion lands in
/// a closed queue and is discarded).
class PosixIoScheduler : public IoScheduler {
 public:
  PosixIoScheduler(FdCache* fds, IoSchedulerOptions options)
      : state_(std::make_shared<State>(fds, std::max(1, options.queue_depth))),
        max_threads_(std::max(1, options.io_threads)) {}

  ~PosixIoScheduler() override {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->stopping = true;
    }
    state_->submissions.Close();
    state_->completions.Close();
    state_->submit_cv.notify_all();
  }

  Status SubmitRead(ReadRequest request) override {
    State& s = *state_;
    s.requests.fetch_add(1, std::memory_order_relaxed);
    s.segments.fetch_add(static_cast<int64_t>(request.segments.size()),
                         std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lock(s.mu);
      s.submit_cv.wait(lock,
                       [&] { return s.stopping || s.outstanding < s.depth; });
      if (s.stopping) return Status::Aborted("io scheduler shut down");
      ++s.outstanding;
      // Service threads spawn on demand, one per concurrently-outstanding
      // read up to the cap: a scheduler that never sees deep queues (or any
      // reads at all — e.g. an idle shard backend) stays thread-free.
      if (s.spawned < max_threads_ && s.outstanding > s.spawned) {
        ++s.spawned;
        std::thread([state = state_] { ServeLoop(*state); }).detach();
      }
    }
    if (!s.submissions.Push(std::move(request))) {
      std::lock_guard<std::mutex> lock(s.mu);
      --s.outstanding;
      return Status::Aborted("io scheduler shut down");
    }
    return Status::OK();
  }

  Result<ReadCompletion> WaitCompletion() override {
    if (in_flight() == 0) {
      return Status::FailedPrecondition("no reads in flight");
    }
    std::optional<ReadCompletion> completion = state_->completions.Pop();
    if (!completion.has_value()) {
      return Status::Aborted("io scheduler shut down");
    }
    Release();
    return std::move(*completion);
  }

  Result<std::optional<ReadCompletion>> WaitCompletionFor(
      int64_t timeout_nanos) override {
    if (in_flight() == 0) {
      return Status::FailedPrecondition("no reads in flight");
    }
    std::optional<ReadCompletion> completion =
        state_->completions.PopFor(timeout_nanos);
    if (!completion.has_value()) {
      if (state_->completions.closed()) {
        return Status::Aborted("io scheduler shut down");
      }
      return std::optional<ReadCompletion>(std::nullopt);  // Timed out.
    }
    Release();
    return std::optional<ReadCompletion>(std::move(*completion));
  }

  std::optional<ReadCompletion> PollCompletion() override {
    std::optional<ReadCompletion> completion = state_->completions.TryPop();
    if (completion.has_value()) Release();
    return completion;
  }

  int in_flight() const override {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->outstanding;
  }

  const char* backend_name() const override { return "threads"; }

  IoSchedulerStats stats() const override {
    IoSchedulerStats stats;
    stats.requests = state_->requests.load(std::memory_order_relaxed);
    stats.segments = state_->segments.load(std::memory_order_relaxed);
    // Every segment is one pread issued as its own submission: this backend
    // has no batching to amortize, which is exactly what the uring numbers
    // are compared against.
    stats.ops = state_->preads.load(std::memory_order_relaxed);
    stats.submits = stats.ops;
    stats.syscalls = stats.ops;
    return stats;
  }

 private:
  struct State {
    State(FdCache* fds_in, int depth_in)
        : fds(fds_in), depth(depth_in),
          submissions(static_cast<size_t>(depth_in)),
          completions(static_cast<size_t>(depth_in)) {}

    FdCache* const fds;
    const int depth;
    BoundedQueue<ReadRequest> submissions;
    BoundedQueue<ReadCompletion> completions;

    std::mutex mu;
    std::condition_variable submit_cv;
    int outstanding = 0;  // Guarded by mu.
    int spawned = 0;      // Guarded by mu.
    bool stopping = false;

    std::atomic<int64_t> requests{0};
    std::atomic<int64_t> segments{0};
    std::atomic<int64_t> preads{0};  // Incremented by service threads.
  };

  void Release() {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      --state_->outstanding;
    }
    state_->submit_cv.notify_one();
  }

  static void ServeLoop(State& s) {
    for (;;) {
      std::optional<ReadRequest> request = s.submissions.Pop();
      if (!request.has_value()) return;  // Closed and drained.
      ReadCompletion completion;
      completion.user_data = request->user_data;
      completion.status = Serve(s, *request, &completion.bytes);
      if (!completion.status.ok()) completion.bytes.clear();
      // Capacity == depth and outstanding <= depth, so this never blocks;
      // false only on shutdown, where the completion is discarded anyway.
      s.completions.Push(std::move(completion));
    }
  }

  static Status Serve(State& s, const ReadRequest& request, std::string* out) {
    out->resize(static_cast<size_t>(request.total_length()));
    size_t dest = 0;
    for (const ReadSegment& segment : request.segments) {
      PCR_ASSIGN_OR_RETURN(SharedFdHandle fd, s.fds->Open(segment.path));
      s.preads.fetch_add(1, std::memory_order_relaxed);
      PCR_ASSIGN_OR_RETURN(
          const size_t read,
          PreadAll(fd->fd(), segment.path, segment.offset,
                   static_cast<size_t>(segment.length), out->data() + dest));
      if (read != segment.length) {
        return Status::IOError("short read of " + segment.path);
      }
      dest += read;
    }
    return Status::OK();
  }

  const std::shared_ptr<State> state_;  // Co-owned by detached threads.
  const int max_threads_;
};

class PosixEnv : public Env {
 public:
  PosixEnv() : fds_(kFdCacheCapacity) {}

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    PCR_ASSIGN_OR_RETURN(SharedFdHandle fd, fds_.Open(path));
    return std::unique_ptr<RandomAccessFile>(
        new PosixRandomAccessFile(path, std::move(fd)));
  }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    // The path's contents are about to change: a cached descriptor would
    // keep serving the old inode.
    fds_.Invalidate(path);
    FILE* f = fopen(path.c_str(), "wb");
    if (f == nullptr) return ErrnoStatus("create " + path);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(path, f));
  }

  std::unique_ptr<IoScheduler> NewIoScheduler(
      const IoSchedulerOptions& options) override {
    IoBackend backend = options.backend == IoBackend::kAuto
                            ? ActiveIoBackend()
                            : options.backend;
    if (backend == IoBackend::kUring) {
      auto uring = NewUringIoScheduler(&fds_, options);
      if (uring != nullptr) return uring;
      backend = IoBackend::kThreads;  // Probe passed but ring setup failed.
    }
    if (backend == IoBackend::kSync) {
      // The base-class synchronous fallback (inline reads over the cached
      // descriptors) — the degenerate tier PCR_FORCE_IO=sync pins for
      // apples-to-apples comparisons.
      return Env::NewIoScheduler(options);
    }
    return std::make_unique<PosixIoScheduler>(&fds_, options);
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return stat(path.c_str(), &st) == 0;
  }

  Result<uint64_t> GetFileSize(const std::string& path) override {
    struct stat st;
    if (stat(path.c_str(), &st) != 0) return ErrnoStatus("stat " + path);
    return static_cast<uint64_t>(st.st_size);
  }

  Status DeleteFile(const std::string& path) override {
    fds_.Invalidate(path);
    if (remove(path.c_str()) != 0) return ErrnoStatus("delete " + path);
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    fds_.Invalidate(from);
    fds_.Invalidate(to);
    if (rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename " + from + " -> " + to);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) return Status::IOError("mkdir " + path + ": " + ec.message());
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    std::error_code ec;
    std::vector<std::string> names;
    for (auto it = fs::directory_iterator(path, ec);
         !ec && it != fs::directory_iterator(); it.increment(ec)) {
      names.push_back(it->path().filename().string());
    }
    if (ec) return Status::IOError("listdir " + path + ": " + ec.message());
    std::sort(names.begin(), names.end());
    return names;
  }

  Clock* clock() override { return RealClock::Get(); }

 private:
  FdCache fds_;
};

}  // namespace

Status Env::ReadFileToString(const std::string& path, std::string* out) {
  PCR_ASSIGN_OR_RETURN(auto file, NewRandomAccessFile(path));
  PCR_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  out->resize(size);
  Slice result;
  PCR_RETURN_IF_ERROR(file->Read(0, size, out->data(), &result));
  if (result.size() != size) {
    return Status::IOError("short read of " + path);
  }
  // Read may have pointed result at internal storage; copy if needed.
  if (result.data() != out->data()) {
    out->assign(result.data(), result.size());
  }
  return Status::OK();
}

Status Env::WriteStringToFile(const std::string& path, Slice data) {
  PCR_ASSIGN_OR_RETURN(auto file, NewWritableFile(path));
  PCR_RETURN_IF_ERROR(file->Append(data));
  return file->Close();
}

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

}  // namespace pcr
