// PosixEnv: Env backed by the host filesystem via stdio.
#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "storage/env.h"
#include "util/logging.h"

namespace pcr {

namespace {

namespace fs = std::filesystem;

Status ErrnoStatus(const std::string& context) {
  return Status::IOError(context + ": " + strerror(errno));
}

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, FILE* f)
      : path_(std::move(path)), file_(f) {}
  ~PosixRandomAccessFile() override {
    if (file_ != nullptr) fclose(file_);
  }

  Status Read(uint64_t offset, size_t n, char* scratch,
              Slice* out) const override {
    if (fseeko(file_, static_cast<off_t>(offset), SEEK_SET) != 0) {
      return ErrnoStatus("seek " + path_);
    }
    const size_t read = fread(scratch, 1, n, file_);
    if (read < n && ferror(file_)) {
      clearerr(file_);
      return ErrnoStatus("read " + path_);
    }
    *out = Slice(scratch, read);
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    struct stat st;
    if (stat(path_.c_str(), &st) != 0) return ErrnoStatus("stat " + path_);
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  std::string path_;
  FILE* file_;
};

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string path, FILE* f)
      : path_(std::move(path)), file_(f) {}
  ~PosixWritableFile() override {
    if (file_ != nullptr) fclose(file_);
  }

  Status Append(Slice data) override {
    if (file_ == nullptr) return Status::IOError("append to closed file");
    if (fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return ErrnoStatus("write " + path_);
    }
    written_ += data.size();
    return Status::OK();
  }

  Status Flush() override {
    if (file_ != nullptr && fflush(file_) != 0) {
      return ErrnoStatus("flush " + path_);
    }
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    FILE* f = file_;
    file_ = nullptr;
    if (fclose(f) != 0) return ErrnoStatus("close " + path_);
    return Status::OK();
  }

  uint64_t BytesWritten() const override { return written_; }

 private:
  std::string path_;
  FILE* file_;
  uint64_t written_ = 0;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    FILE* f = fopen(path.c_str(), "rb");
    if (f == nullptr) return ErrnoStatus("open " + path);
    return std::unique_ptr<RandomAccessFile>(
        new PosixRandomAccessFile(path, f));
  }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    FILE* f = fopen(path.c_str(), "wb");
    if (f == nullptr) return ErrnoStatus("create " + path);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(path, f));
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return stat(path.c_str(), &st) == 0;
  }

  Result<uint64_t> GetFileSize(const std::string& path) override {
    struct stat st;
    if (stat(path.c_str(), &st) != 0) return ErrnoStatus("stat " + path);
    return static_cast<uint64_t>(st.st_size);
  }

  Status DeleteFile(const std::string& path) override {
    if (remove(path.c_str()) != 0) return ErrnoStatus("delete " + path);
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename " + from + " -> " + to);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) return Status::IOError("mkdir " + path + ": " + ec.message());
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    std::error_code ec;
    std::vector<std::string> names;
    for (auto it = fs::directory_iterator(path, ec);
         !ec && it != fs::directory_iterator(); it.increment(ec)) {
      names.push_back(it->path().filename().string());
    }
    if (ec) return Status::IOError("listdir " + path + ": " + ec.message());
    std::sort(names.begin(), names.end());
    return names;
  }

  Clock* clock() override { return RealClock::Get(); }
};

}  // namespace

Status Env::ReadFileToString(const std::string& path, std::string* out) {
  PCR_ASSIGN_OR_RETURN(auto file, NewRandomAccessFile(path));
  PCR_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  out->resize(size);
  Slice result;
  PCR_RETURN_IF_ERROR(file->Read(0, size, out->data(), &result));
  if (result.size() != size) {
    return Status::IOError("short read of " + path);
  }
  // Read may have pointed result at internal storage; copy if needed.
  if (result.data() != out->data()) {
    out->assign(result.data(), result.size());
  }
  return Status::OK();
}

Status Env::WriteStringToFile(const std::string& path, Slice data) {
  PCR_ASSIGN_OR_RETURN(auto file, NewWritableFile(path));
  PCR_RETURN_IF_ERROR(file->Append(data));
  return file->Close();
}

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

}  // namespace pcr
